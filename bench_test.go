// Benchmarks, one per experiment of the evaluation (DESIGN.md E1-E18).
// The paper is a tutorial with no quantitative tables, so these benches
// measure the executable form of each figure: the baseline ring, the
// fault-tolerant transformations' overhead, recovery cost per failure,
// both termination protocols, leader election, validate_all, and the
// transports. Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// benchRing runs one ring world per iteration and reports time per ring
// iteration as a custom metric.
func benchRing(b *testing.B, size int, cfg core.Config, mut func(*mpi.Config)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mcfg := mpi.Config{Size: size, Deadline: 60 * time.Second}
		if mut != nil {
			mut(&mcfg)
		}
		_, res, err := core.Run(mcfg, cfg)
		if err != nil {
			b.Fatalf("ring: %v", err)
		}
		if res.FinishedCount() == 0 {
			b.Fatal("nothing finished")
		}
	}
}

// BenchmarkE1UnawareRing is the Fig. 2 baseline (per world size).
func BenchmarkE1UnawareRing(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRing(b, n, core.Config{Iters: 32, Variant: core.VariantUnaware}, nil)
		})
	}
}

// BenchmarkE2FTRingNoFault measures the full FT design with no failures —
// the failure-free overhead the paper's transformations cost.
func BenchmarkE2FTRingNoFault(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRing(b, n, core.Config{Iters: 32, Variant: core.VariantFull}, nil)
		})
	}
}

// BenchmarkE3NaiveDeadlockDetection measures how fast the harness turns
// the Fig. 6 hang into a reported deadlock (watchdog path).
func BenchmarkE3NaiveDeadlockDetection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
		mcfg := mpi.Config{Size: 4, Deadline: 50 * time.Millisecond, Hook: plan.Hook()}
		_, _, err := core.Run(mcfg, core.Config{Iters: 6, Variant: core.VariantNaive})
		if !errors.Is(err, mpi.ErrTimedOut) {
			b.Fatalf("expected deadlock, got %v", err)
		}
	}
}

// BenchmarkE4RecoveryResend measures a complete run that includes one
// Fig. 7 failure + resend recovery.
func BenchmarkE4RecoveryResend(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
		mcfg := mpi.Config{Size: 4, Deadline: 60 * time.Second, Hook: plan.Hook()}
		report, _, err := core.Run(mcfg, core.Config{Iters: 6, Variant: core.VariantFull})
		if err != nil {
			b.Fatal(err)
		}
		if report.TotalResends() < 1 {
			b.Fatal("no resend happened")
		}
	}
}

// BenchmarkE5NoMarkerDuplicates runs the Fig. 8 schedule (duplicates
// forwarded) and BenchmarkE6MarkerDedup the Fig. 10 one (suppressed).
func BenchmarkE5NoMarkerDuplicates(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
		mcfg := mpi.Config{Size: 4, Deadline: 60 * time.Second, Hook: plan.Hook()}
		report, _, err := core.Run(mcfg, core.Config{Iters: 4, Variant: core.VariantNoMarker})
		if err != nil {
			b.Fatal(err)
		}
		if report.TotalDupsForwarded() < 1 {
			b.Fatal("expected duplicates")
		}
	}
}

// BenchmarkE6MarkerDedup is the same schedule with markers enabled.
func BenchmarkE6MarkerDedup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
		mcfg := mpi.Config{Size: 4, Deadline: 60 * time.Second, Hook: plan.Hook()}
		report, _, err := core.Run(mcfg, core.Config{Iters: 4, Variant: core.VariantFull})
		if err != nil {
			b.Fatal(err)
		}
		if report.TotalDupsForwarded() != 0 {
			b.Fatal("marker failed")
		}
	}
}

// BenchmarkE7TermRootBcast measures the Fig. 11 termination protocol.
func BenchmarkE7TermRootBcast(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRing(b, n, core.Config{
				Iters: 8, Variant: core.VariantFull, Termination: core.TermRootBcast,
			}, nil)
		})
	}
}

// BenchmarkE8Election measures the Fig. 12 local leader scan embedded in
// a failover run (root dies, survivors elect).
func BenchmarkE8Election(b *testing.B) {
	for _, n := range []int{5, 9, 17, 33} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 2))
				mcfg := mpi.Config{Size: n, Deadline: 60 * time.Second, Hook: plan.Hook()}
				report, _, err := core.Run(mcfg, core.Config{
					Iters: 4, Variant: core.VariantFull,
					Termination: core.TermValidateAll, RootPolicy: core.RootElect,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !report.Rank(1).BecameRoot {
					b.Fatal("no election happened")
				}
			}
		})
	}
}

// BenchmarkE9TermValidateAll measures the Fig. 13 termination protocol.
func BenchmarkE9TermValidateAll(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRing(b, n, core.Config{
				Iters: 8, Variant: core.VariantFull, Termination: core.TermValidateAll,
			}, nil)
		})
	}
}

// BenchmarkE10RunThrough measures complete runs with f failures spread
// over the execution — the paper's run-through claim as a cost curve.
func BenchmarkE10RunThrough(b *testing.B) {
	for _, f := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("failures=%d", f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan, _ := inject.RandomPlan(int64(i)+1, nonRoots(16), f, 8)
				mcfg := mpi.Config{Size: 16, Deadline: 60 * time.Second, Hook: plan.Hook()}
				_, res, err := core.Run(mcfg, core.Config{
					Iters: 16, Variant: core.VariantFull, Termination: core.TermValidateAll,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.FinishedCount() != 16-f {
					b.Fatalf("finished %d, want %d", res.FinishedCount(), 16-f)
				}
			}
		})
	}
}

// BenchmarkE11DedupAblation compares the marker scheme against the
// separate-resend-tag alternative of Section III-B.
func BenchmarkE11DedupAblation(b *testing.B) {
	for _, v := range []core.Variant{core.VariantFull, core.VariantSeparateTag} {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
				mcfg := mpi.Config{Size: 8, Deadline: 60 * time.Second, Hook: plan.Hook()}
				if _, _, err := core.Run(mcfg, core.Config{Iters: 16, Variant: v}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12RootFailover measures the Section III-D control-regain
// path end to end.
func BenchmarkE12RootFailover(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 3))
		mcfg := mpi.Config{Size: 9, Deadline: 60 * time.Second, Hook: plan.Hook()}
		report, _, err := core.Run(mcfg, core.Config{
			Iters: 8, Variant: core.VariantFull,
			Termination: core.TermValidateAll, RootPolicy: core.RootElect,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !report.Rank(1).BecameRoot {
			b.Fatal("root never failed over")
		}
	}
}

// BenchmarkE13ValidateAll measures the agreement alone, per call.
func BenchmarkE13ValidateAll(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			w, err := mpi.NewWorld(n, mpi.WithDeadline(5*time.Minute))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Run(func(p *mpi.Proc) error {
				p.World().SetErrhandler(mpi.ErrorsReturn)
				for i := 0; i < b.N; i++ {
					if _, err := p.World().ValidateAll(); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE14Collectives measures the collective algorithms themselves
// (barrier, bcast, allreduce) per operation.
func BenchmarkE14Collectives(b *testing.B) {
	run := func(b *testing.B, n int, op func(c *mpi.Comm) error) {
		b.Helper()
		b.ReportAllocs()
		w, err := mpi.NewWorld(n, mpi.WithDeadline(5*time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(func(p *mpi.Proc) error {
			p.World().SetErrhandler(mpi.ErrorsReturn)
			for i := 0; i < b.N; i++ {
				if err := op(p.World()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	payload := collective.EncodeInt64s(make([]int64, 16))
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("barrier/n=%d", n), func(b *testing.B) {
			run(b, n, func(c *mpi.Comm) error { return collective.Barrier(c) })
		})
		b.Run(fmt.Sprintf("bcast/n=%d", n), func(b *testing.B) {
			run(b, n, func(c *mpi.Comm) error {
				_, err := collective.Bcast(c, 0, payload)
				return err
			})
		})
		b.Run(fmt.Sprintf("allreduce/n=%d", n), func(b *testing.B) {
			run(b, n, func(c *mpi.Comm) error {
				_, err := collective.Allreduce(c, payload, collective.SumInt64)
				return err
			})
		})
	}
}

// BenchmarkE15Transports runs the identical FT ring over each fabric:
// the in-memory baseline and TCP loopback under both wire codecs (the
// gob baseline the fabric used to ship vs the pooled binary framing).
func BenchmarkE15Transports(b *testing.B) {
	const n = 8
	fabrics := []struct {
		name string
		make func() transport.Fabric
	}{
		{"local", func() transport.Fabric { return transport.NewLocal() }},
		{"tcp-gob", func() transport.Fabric { return transport.NewTCPCodec(n, transport.CodecGob) }},
		{"tcp-binary", func() transport.Fabric { return transport.NewTCP(n) }},
	}
	for _, f := range fabrics {
		b.Run(f.name, func(b *testing.B) {
			benchRing(b, n, core.Config{Iters: 16, Variant: core.VariantFull},
				func(m *mpi.Config) { m.Fabric = f.make() })
		})
	}
}

// BenchmarkE17LargeN scales the two matching-heavy workloads to world
// sizes far beyond the paper's examples, over the Local fabric: the full
// FT ring (per-hop cost) and a world-wide validate_all (agreement over
// N-1 voters). With the indexed matching engine both stay near-flat per
// operation as N grows; the pre-index linear-scan engine degraded with
// queue depth (see internal/mpi BenchmarkPostedMatch* for the isolated
// head-to-head, and EXPERIMENTS.md E17 for recorded numbers).
func BenchmarkE17LargeN(b *testing.B) {
	sizes := []int{256, 1024, 4096}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("ring/n=%d", n), func(b *testing.B) {
			benchRing(b, n, core.Config{Iters: 4, Variant: core.VariantFull}, nil)
		})
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("validate/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second))
				if err != nil {
					b.Fatal(err)
				}
				_, err = w.Run(func(p *mpi.Proc) error {
					c := p.World()
					c.SetErrhandler(mpi.ErrorsReturn)
					cnt, verr := c.ValidateAll()
					if verr != nil {
						return verr
					}
					if cnt != 0 {
						return fmt.Errorf("agreed on %d failures, want 0", cnt)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE18ChaosSoak measures the FT ring completing over a fabric
// injecting the E18 fault mix (10% drop, 5% dup, 1% corrupt per link),
// against the same ring on a clean fabric — the price of running through
// a hostile network with the reliability sublayer on.
func BenchmarkE18ChaosSoak(b *testing.B) {
	cfg := core.Config{Iters: 8, Variant: core.VariantFull, Termination: core.TermValidateAll}
	b.Run("clean", func(b *testing.B) {
		benchRing(b, 4, cfg, nil)
	})
	b.Run("chaos", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan := chaos.NewPlan(int64(i + 1)).Default(chaos.Rates{Drop: 0.10, Dup: 0.05, Corrupt: 0.01})
			mcfg := mpi.Config{Size: 4, Deadline: 60 * time.Second, Chaos: plan}
			_, res, err := core.Run(mcfg, cfg)
			if err != nil {
				b.Fatalf("chaotic ring: %v", err)
			}
			if res.FinishedCount() == 0 {
				b.Fatal("nothing finished")
			}
		}
	})
}

// nonRoots lists ranks 1..n-1.
func nonRoots(n int) []int {
	out := make([]int, 0, n-1)
	for r := 1; r < n; r++ {
		out = append(out, r)
	}
	return out
}
