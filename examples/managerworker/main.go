// Managerworker: the Gropp-Lusk fault-tolerant manager/worker pattern
// (the paper's Section IV related work) rebuilt on run-through
// stabilization: the manager detects worker deaths through failed
// MPI_ANY_SOURCE receives, recognizes them with validate_clear, and
// reassigns the lost tasks. Two of five workers die mid-computation; all
// 40 tasks still complete.
//
//	go run ./examples/managerworker
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/ftmpi"
	"repro/internal/inject"
	"repro/internal/managerworker"
)

func main() {
	const (
		ranks = 6 // one manager + five workers
		tasks = 40
	)
	plan := inject.NewPlan().Add(
		inject.AtCheckpoint(2, "computed"), // dies holding a finished task
		inject.AfterNthSend(4, 1),          // dies right after its 1st result
	)
	w, err := ftmpi.NewWorld(ranks, ftmpi.WithDeadline(15*time.Second), ftmpi.WithHook(plan.Hook()))
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var stats *managerworker.Stats
	workerDone := map[int]int{}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		if p.Rank() == 0 {
			s, err := managerworker.RunManager(p, managerworker.MakeTasks(tasks))
			mu.Lock()
			stats = s
			mu.Unlock()
			return err
		}
		n, err := managerworker.RunWorker(p, nil)
		mu.Lock()
		workerDone[p.Rank()] = n
		mu.Unlock()
		if ftmpi.IsRankFailStop(err) {
			return nil
		}
		return err
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Printf("completed %d/%d tasks in %v\n", len(stats.Results), tasks, res.Elapsed)
	fmt.Printf("workers lost: %d; tasks reassigned after deaths: %d\n",
		stats.WorkersLost, stats.Reassigned)
	for _, l := range plan.Log() {
		fmt.Printf("  injected: %s\n", l)
	}
	perWorker := map[int]int{}
	for _, r := range stats.Results {
		perWorker[r.Worker]++
	}
	for rank := 1; rank < ranks; rank++ {
		state := "survived"
		if res.Ranks[rank].Killed {
			state = "KILLED"
		}
		fmt.Printf("  worker %d: %-8s results credited: %d\n", rank, state, perWorker[rank])
	}
	// Verify every output.
	for id, r := range stats.Results {
		want := int64(id+1) * int64(id+1)
		if r.Output != want {
			log.Fatalf("task %d wrong: got %d want %d", id, r.Output, want)
		}
	}
	fmt.Println("all task outputs verified correct")
}
