// Quickstart: the paper's fault-tolerant ring in a dozen lines of
// harness code. Eight ranks circulate a counter sixteen times; rank 3 is
// killed right after its fifth receive; the ring rides through the
// failure (Fig. 7 recovery), suppresses the duplicate (Fig. 10), and
// terminates with the non-blocking validate_all agreement (Fig. 13).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/ftmpi"
	"repro/internal/core"
	"repro/internal/inject"
)

func main() {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(3, 5))

	report, res, err := core.Run(
		ftmpi.Config{Size: 8, Deadline: 10 * time.Second, Hook: plan.Hook()},
		core.Config{
			Iters:       16,
			Variant:     core.VariantFull,     // Fig. 3/4/5/9/10 design
			Termination: core.TermValidateAll, // Fig. 13
			RootPolicy:  core.RootElect,       // Sec. III-D, just in case
		},
	)
	if err != nil {
		log.Fatalf("ring failed: %v", err)
	}

	fmt.Printf("ring of %d completed %d iterations in %v, through these failures:\n",
		8, 16, res.Elapsed)
	for _, l := range plan.Log() {
		fmt.Printf("  %s\n", l)
	}
	root := report.Rank(0)
	markers := make([]int, 0, len(root.RootValues))
	for m := range root.RootValues {
		markers = append(markers, int(m))
	}
	sort.Ints(markers)
	fmt.Printf("root absorbed iterations %v\n", markers)
	fmt.Printf("recovery: %d resends, %d duplicates dropped\n",
		report.TotalResends(), report.TotalDupsDropped())
	for rank := 0; rank < report.Size(); rank++ {
		s := report.Rank(rank)
		state := "finished"
		if res.Ranks[rank].Killed {
			state = "killed"
		}
		fmt.Printf("  rank %d: %-8s participated in %2d iterations\n",
			rank, state, s.Iterations)
	}
}
