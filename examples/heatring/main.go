// Heatring: fault-tolerant 1-D heat diffusion — the ABFT application
// domain the paper's related work cites (heat transfer, Ltaief et al.),
// built from the same communication-level pieces as the ring: fault-aware
// neighbor selection, send failover, posted-receive failure detection and
// step-stamped (marker-style) duplicate suppression.
//
// A heat spike diffuses across 8 ranks x 10 cells; rank 4 dies mid-run;
// the survivors splice the domain and keep integrating. The final field
// is rendered as an ASCII heat map.
//
//	go run ./examples/heatring
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"sync"
	"time"

	"repro/ftmpi"
	"repro/internal/heat"
	"repro/internal/inject"
)

func main() {
	const (
		ranks = 8
		cells = 10
		steps = 60
	)
	plan := inject.NewPlan().Add(inject.AfterNthRecv(4, 20))
	w, err := ftmpi.NewWorld(ranks,
		ftmpi.WithDeadline(15*time.Second), ftmpi.WithHook(plan.Hook()))
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	fields := map[int][]float64{}
	cfg := heat.Config{CellsPerRank: cells, Steps: steps, Alpha: 0.4, InitialPeak: true}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		r, err := heat.Run(p, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		fields[p.Rank()] = r.Block
		mu.Unlock()
		if r.NeighborChanges > 0 {
			fmt.Printf("rank %d failed over its halo partner %d time(s)\n",
				p.Rank(), r.NeighborChanges)
		}
		return nil
	})
	if err != nil {
		log.Fatalf("heat run failed: %v", err)
	}

	fmt.Printf("\n%d steps on %d ranks in %v; failures injected:\n", steps, ranks, res.Elapsed)
	for _, l := range plan.Log() {
		fmt.Printf("  %s\n", l)
	}

	fmt.Println("\nfinal temperature field (X = lost block):")
	var peak float64
	for _, f := range fields {
		for _, v := range f {
			peak = math.Max(peak, v)
		}
	}
	rankIDs := make([]int, 0, len(fields))
	for r := range fields {
		rankIDs = append(rankIDs, r)
	}
	sort.Ints(rankIDs)
	shades := []byte(" .:-=+*#%@")
	for r := 0; r < ranks; r++ {
		fmt.Printf("rank %d |", r)
		f, ok := fields[r]
		if !ok {
			for i := 0; i < cells; i++ {
				fmt.Print("X")
			}
			fmt.Println("|  (fail-stopped; block lost)")
			continue
		}
		total := 0.0
		for _, v := range f {
			idx := 0
			if peak > 0 {
				idx = int(v / peak * float64(len(shades)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Printf("%c", shades[idx])
			total += v
		}
		fmt.Printf("|  local heat %.4f\n", total)
	}
	fmt.Println("\nthe survivors ran through the failure with an approximately correct")
	fmt.Println("field — the \"natural fault tolerance\" mode of the paper's Section IV.")
}
