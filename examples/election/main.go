// Election: the paper's Figure 12 leader election (lowest alive rank)
// next to the message-based Chang-Roberts ring election built from the
// same fault-aware neighbor machinery. The three lowest ranks are killed;
// both algorithms converge on rank 3 at every survivor.
//
//	go run ./examples/election
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/ftmpi"
	"repro/internal/election"
)

func main() {
	const ranks = 8
	w, err := ftmpi.NewWorld(ranks, ftmpi.WithDeadline(15*time.Second))
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	type outcome struct{ scan, ring int }
	results := map[int]outcome{}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		if p.Rank() < 3 {
			p.Die() // ranks 0,1,2 fail-stop immediately
		}
		for p.Registry().AliveCount() > ranks-3 {
			time.Sleep(time.Millisecond)
		}
		scan := election.LowestAlive(p, c) // Fig. 12: local state scan
		ring, err := election.ChangRoberts(p, c)
		if err != nil {
			return err
		}
		mu.Lock()
		results[p.Rank()] = outcome{scan: scan, ring: ring}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Printf("ranks 0,1,2 fail-stopped; election results at survivors (%v):\n", res.Elapsed)
	fmt.Println("  rank   Fig.12-scan   Chang-Roberts")
	agree := true
	for rank := 3; rank < ranks; rank++ {
		o := results[rank]
		fmt.Printf("  %4d   %11d   %13d\n", rank, o.scan, o.ring)
		if o.scan != 3 || o.ring != 3 {
			agree = false
		}
	}
	if !agree {
		log.Fatal("algorithms disagreed")
	}
	fmt.Println("both algorithms unanimously elected rank 3, the lowest alive rank")
}
