// Command traceconv converts a JSONL event stream captured with
// ftring -trace-out into Chrome trace-event JSON, viewable in Perfetto
// (ui.perfetto.dev) or chrome://tracing with one lane per rank.
//
//	ftring -n 8 -chaos -trace-out ring.jsonl
//	traceconv -in ring.jsonl -out ring.trace.json
//	traceconv -check ring.trace.json     # validate a converted file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/ftmpi"
)

func main() {
	var (
		in    = flag.String("in", "", "input JSONL event stream (from ftring -trace-out)")
		out   = flag.String("out", "", "output Chrome trace JSON file (\"-\" = stdout)")
		check = flag.String("check", "", "validate a Chrome trace JSON file and exit")
	)
	flag.Parse()

	if *check != "" {
		if err := checkTrace(*check); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("missing -in FILE.jsonl (or -check FILE.json)"))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	events, err := ftmpi.ReadTraceJSONL(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	blob, err := ftmpi.ChromeTrace(events)
	if err != nil {
		fatal(err)
	}
	if *out == "" || *out == "-" {
		os.Stdout.Write(blob)
		os.Stdout.Write([]byte("\n"))
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %d events -> %s\n", len(events), *out)
}

// checkTrace validates the Chrome trace-event shape traceconv produces:
// a traceEvents array whose entries carry the required phase fields, with
// at least one rank lane (thread_name metadata) and one instant event.
func checkTrace(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tf); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: empty traceEvents", path)
	}
	lanes, instants := 0, 0
	for _, ev := range tf.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			return fmt.Errorf("%s: event missing name/ph", path)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			lanes++
		case ev.Ph == "i":
			instants++
		}
	}
	if lanes == 0 {
		return fmt.Errorf("%s: no rank lanes (thread_name metadata)", path)
	}
	if instants == 0 {
		return fmt.Errorf("%s: no instant events", path)
	}
	fmt.Printf("%s: OK (%d events, %d rank lanes, %d instants)\n",
		path, len(tf.TraceEvents), lanes, instants)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
