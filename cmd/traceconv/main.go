// Command traceconv converts and analyzes JSONL event streams captured
// with ftring -trace-out.
//
// Conversion renders Chrome trace-event JSON, viewable in Perfetto
// (ui.perfetto.dev) or chrome://tracing with one lane per rank
// incarnation (elastic replacements get their own generation lanes).
// Analysis modes read the causal stamps the v5 frame header carries — a
// hybrid logical clock and a per-message token — to reconstruct
// cross-rank message lifecycles, recovery timelines, and a message
// conservation audit.
//
//	ftring -n 8 -chaos -trace-out ring.jsonl
//	traceconv -in ring.jsonl -out ring.trace.json
//	traceconv -check ring.trace.json     # validate a converted file
//	traceconv -check ring.jsonl          # validate causal-clock sanity
//	traceconv -causal ring.jsonl -top 5  # slowest message lifecycles
//	traceconv -recovery ring.jsonl       # per-incident recovery forensics
//	traceconv -audit ring.jsonl          # conservation audit (non-zero on loss)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/ftmpi"
)

func main() {
	var (
		in       = flag.String("in", "", "input JSONL event stream (from ftring -trace-out)")
		out      = flag.String("out", "", "output Chrome trace JSON file (\"-\" = stdout)")
		check    = flag.String("check", "", "validate a trace file (Chrome JSON shape, or JSONL causal sanity) and exit")
		causal   = flag.String("causal", "", "JSONL stream: show the slowest message lifecycles with per-hop causal deltas")
		recovery = flag.String("recovery", "", "JSONL stream: reconstruct per-incident recovery timelines (one phase table per death)")
		audit    = flag.String("audit", "", "JSONL stream: run the message-conservation audit; exit non-zero on unaccounted loss")
		top      = flag.Int("top", 3, "lifecycles to show with -causal")
	)
	flag.Parse()

	switch {
	case *check != "":
		if err := checkFile(*check); err != nil {
			fatal(err)
		}
	case *causal != "":
		if err := causalReport(*causal, *top); err != nil {
			fatal(err)
		}
	case *recovery != "":
		if err := recoveryReport(*recovery); err != nil {
			fatal(err)
		}
	case *audit != "":
		if err := auditReport(*audit); err != nil {
			fatal(err)
		}
	case *in != "":
		if err := convert(*in, *out); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("missing -in FILE.jsonl (or -check/-causal/-recovery/-audit FILE)"))
	}
}

// convert renders the JSONL stream as Chrome trace-event JSON.
func convert(in, out string) error {
	events, err := readEvents(in)
	if err != nil {
		return err
	}
	blob, err := ftmpi.ChromeTrace(events)
	if err != nil {
		return err
	}
	if out == "" || out == "-" {
		os.Stdout.Write(blob)
		os.Stdout.Write([]byte("\n"))
		return nil
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("converted %d events -> %s\n", len(events), out)
	return nil
}

// readEvents loads a JSONL event stream.
func readEvents(path string) ([]ftmpi.TraceEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ftmpi.ReadTraceJSONL(f)
}

// causalReport prints the slowest delivered lifecycles with per-hop
// causal deltas — the trace's critical messages.
func causalReport(path string, top int) error {
	events, err := readEvents(path)
	if err != nil {
		return err
	}
	spans := ftmpi.SlowestTraceSpans(events, top)
	if len(spans) == 0 {
		fmt.Println("no delivered message lifecycles in trace")
		return nil
	}
	all := ftmpi.AssembleTraceSpans(events)
	fmt.Printf("%d message lifecycles; %d slowest by end-to-end causal latency:\n\n",
		len(all), len(spans))
	for _, sp := range spans {
		fmt.Println(ftmpi.RenderTraceSpan(sp))
	}
	return nil
}

// recoveryReport prints one phase table per death incident.
func recoveryReport(path string) error {
	events, err := readEvents(path)
	if err != nil {
		return err
	}
	incidents := ftmpi.TraceRecoveries(events)
	if len(incidents) == 0 {
		fmt.Println("no rank deaths in trace")
		return nil
	}
	fmt.Printf("%d recovery incident(s):\n\n", len(incidents))
	for _, in := range incidents {
		fmt.Println(ftmpi.RenderTraceIncident(in))
	}
	return nil
}

// auditReport runs the conservation audit and exits non-zero when any
// send is unaccounted for.
func auditReport(path string) error {
	events, err := readEvents(path)
	if err != nil {
		return err
	}
	rep := ftmpi.AuditTrace(events)
	fmt.Println(rep)
	if !rep.Clean() {
		return fmt.Errorf("audit failed: %d unaccounted message(s), %d orphan delivery(ies)",
			len(rep.Unaccounted), len(rep.OrphanDelivers))
	}
	return nil
}

// checkFile dispatches on the file's shape: a Chrome trace JSON object is
// validated structurally, a JSONL event stream is validated for
// causal-clock sanity (per-rank HLC uniqueness, send-before-deliver per
// token, and token closure). Both fail non-zero on violation.
func checkFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &probe); err == nil && probe.TraceEvents != nil {
		return checkChrome(path, blob)
	}
	return checkCausal(path)
}

// checkCausal validates a JSONL stream's causal stamps.
func checkCausal(path string) error {
	events, err := readEvents(path)
	if err != nil {
		return err
	}
	violations := ftmpi.CheckTraceCausal(events)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "violation:", v)
		}
		return fmt.Errorf("%s: %d causal violation(s)", path, len(violations))
	}
	fmt.Printf("%s: OK (%d events, causally consistent)\n", path, len(events))
	return nil
}

// checkChrome validates the Chrome trace-event shape traceconv produces:
// a traceEvents array whose entries carry the required phase fields, with
// at least one rank lane (thread_name metadata) and one instant event.
func checkChrome(path string, blob []byte) error {
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tf); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: empty traceEvents", path)
	}
	lanes, instants := 0, 0
	for _, ev := range tf.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			return fmt.Errorf("%s: event missing name/ph", path)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			lanes++
		case ev.Ph == "i":
			instants++
		}
	}
	if lanes == 0 {
		return fmt.Errorf("%s: no rank lanes (thread_name metadata)", path)
	}
	if instants == 0 {
		return fmt.Errorf("%s: no instant events", path)
	}
	fmt.Printf("%s: OK (%d events, %d rank lanes, %d instants)\n",
		path, len(tf.TraceEvents), lanes, instants)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}
