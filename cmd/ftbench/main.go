// Command ftbench runs the experiment suite (DESIGN.md E1-E24) and prints
// the result tables recorded in EXPERIMENTS.md.
//
//	ftbench                # full suite
//	ftbench -exp e7        # one experiment
//	ftbench -quick         # shrunken sweeps
//	ftbench -list          # show the experiment index
//	ftbench -json out.json # also write aggregated counters + quantiles
//	ftbench -obs :9464     # live /metrics while the suite runs
//	ftbench -exp e1 -detector heartbeat   # ring experiments without the oracle
//	ftbench -exp e20 -quick               # SWIM scaling soak, CI sizes
//	ftbench -exp e21 -quick               # elastic shrink/respawn soak
//	ftbench -exp e22 -quick               # replication soak: transparent failover
//	ftbench -exp e23 -quick               # recovery forensics: traced phase decomposition
//	ftbench -exp e24 -quick               # durability soak: tail-acks, auto re-replication
//	ftbench -exp e22 -rep-mode chain      # replication kill sweep over the chain relay
//	ftbench -exp e1 -detector swim -agreement tree   # gossip detection + tree votes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/ftmpi"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "", "run a single experiment (e1..e24)")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 1, "seed for randomized failure schedules")
		jsonOut = flag.String("json", "", "write aggregated metrics JSON to this file (\"-\" = stdout)")
		obsAddr = flag.String("obs", "", "serve live /metrics for the world currently running")

		detMode    = flag.String("detector", "", "failure detection for the generic ring worlds: oracle|heartbeat|swim (\"\" = oracle; E19 always uses heartbeat, E20 swim)")
		hbInterval = flag.Duration("hb-interval", 0, "heartbeat ping interval (0 = default 2ms; with -detector heartbeat)")
		hbTimeout  = flag.Duration("hb-timeout", 0, "heartbeat suspicion timeout (0 = 8x interval; with -detector heartbeat)")
		swPeriod   = flag.Duration("swim-period", 0, "SWIM protocol period (0 = default; with -detector swim)")
		swIndirect = flag.Int("swim-indirect", 0, "SWIM indirect-probe fanout k (0 = default; with -detector swim)")
		agreeMode  = flag.String("agreement", "", "validate_all topology for the generic ring worlds: coordinator|tree (\"\" = coordinator)")
		repMode    = flag.String("rep-mode", "", "replication propagation mode for the E22 kill sweep: fanout|chain (\"\" = fanout; E24 always runs both)")
	)
	flag.Parse()
	switch *repMode {
	case "", ftmpi.ReplFanout, ftmpi.ReplChain:
	default:
		fmt.Fprintf(os.Stderr, "ftbench: unknown -rep-mode %q: valid modes are %q, %q\n",
			*repMode, ftmpi.ReplFanout, ftmpi.ReplChain)
		os.Exit(2)
	}

	if *list {
		for _, e := range workload.All() {
			fmt.Printf("%-4s %-45s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	var toRun []workload.Experiment
	if *exp != "" {
		e, ok := workload.ByID(*exp)
		if !ok {
			fmt.Fprintln(os.Stderr, unknownExpErr(*exp))
			os.Exit(2)
		}
		toRun = []workload.Experiment{e}
	} else {
		toRun = workload.All()
	}

	opt := workload.Options{
		Quick: *quick, Seed: *seed,
		Detector:  *detMode,
		Heartbeat: ftmpi.HeartbeatOptions{Interval: *hbInterval, Timeout: *hbTimeout},
		Swim:      ftmpi.SwimOptions{Period: *swPeriod, IndirectK: *swIndirect},
		Agreement: *agreeMode,
		RepMode:   *repMode,
	}
	if *jsonOut != "" || *obsAddr != "" {
		opt.Collector = workload.NewCollector()
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, opt.Collector.Source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: obs endpoint: %v\n", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("observability endpoint: http://%s/metrics\n", srv.Addr())
	}
	start := time.Now()
	failed := 0
	for _, e := range toRun {
		fmt.Printf("---- %s: %s (%s) ----\n", e.ID, e.Title, e.PaperRef)
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	fmt.Printf("suite finished in %v (%d experiments, %d failed)\n",
		time.Since(start).Round(time.Millisecond), len(toRun), failed)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, opt.Collector); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: write json: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// unknownExpErr builds the diagnostic for an -exp value that matches no
// experiment: it names every valid identifier so the user does not need a
// second invocation with -list just to learn the id space.
func unknownExpErr(id string) string {
	all := workload.All()
	ids := make([]string, 0, len(all))
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	return fmt.Sprintf("ftbench: unknown experiment %q (valid: %s; -list shows titles)",
		id, strings.Join(ids, ", "))
}

// writeJSON emits the collector aggregate to path ("-" = stdout).
func writeJSON(path string, c *workload.Collector) error {
	if path == "-" {
		return c.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
