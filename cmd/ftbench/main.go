// Command ftbench runs the experiment suite (DESIGN.md E1-E17) and prints
// the result tables recorded in EXPERIMENTS.md.
//
//	ftbench                # full suite
//	ftbench -exp e7        # one experiment
//	ftbench -quick         # shrunken sweeps
//	ftbench -list          # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "", "run a single experiment (e1..e18)")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		list  = flag.Bool("list", false, "list experiments and exit")
		seed  = flag.Int64("seed", 1, "seed for randomized failure schedules")
	)
	flag.Parse()

	if *list {
		for _, e := range workload.All() {
			fmt.Printf("%-4s %-45s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	var toRun []workload.Experiment
	if *exp != "" {
		e, ok := workload.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []workload.Experiment{e}
	} else {
		toRun = workload.All()
	}

	opt := workload.Options{Quick: *quick, Seed: *seed}
	start := time.Now()
	failed := 0
	for _, e := range toRun {
		fmt.Printf("---- %s: %s (%s) ----\n", e.ID, e.Title, e.PaperRef)
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	fmt.Printf("suite finished in %v (%d experiments, %d failed)\n",
		time.Since(start).Round(time.Millisecond), len(toRun), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
