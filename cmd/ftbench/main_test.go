package main

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestUnknownExpErrListsAllExperiments pins the contract of the unknown
// -exp diagnostic: it quotes the bad id and names every registered
// experiment, so the message can never silently fall out of date when a
// new experiment lands.
func TestUnknownExpErrListsAllExperiments(t *testing.T) {
	msg := unknownExpErr("e99")
	if !strings.Contains(msg, `"e99"`) {
		t.Errorf("diagnostic does not quote the bad id: %s", msg)
	}
	for _, e := range workload.All() {
		if !strings.Contains(msg, e.ID) {
			t.Errorf("diagnostic does not mention experiment %s: %s", e.ID, msg)
		}
	}
	// The ids this PR's experiment space must include — a direct guard
	// that e22 registered, not just whatever All() happens to return.
	for _, id := range []string{"e1", "e21", "e22"} {
		if !strings.Contains(msg, id) {
			t.Errorf("diagnostic missing %s: %s", id, msg)
		}
	}
}
