// Command scenario replays the failure-scenario figures of the paper
// (Figs. 6, 7, 8, 10 plus the Section III-D root failover) as executable,
// traced runs — the diagrams of the paper regenerated as event timelines.
//
//	scenario -fig 6    # naive receive deadlock
//	scenario -fig 7    # Irecv detector + resend recovery
//	scenario -fig 8    # duplicate completions without markers
//	scenario -fig 10   # marker-suppressed duplicates
//	scenario -fig 12   # leader election after root failure (Sec. III-D)
//	scenario -all
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/ftmpi"
	"repro/internal/core"
	"repro/internal/inject"
)

type scenario struct {
	fig   string
	title string
	run   func() error
}

func main() {
	fig := flag.String("fig", "", "figure to replay: 6|7|8|10|12")
	all := flag.Bool("all", false, "replay every scenario")
	flag.Parse()

	scenarios := []scenario{
		{"6", "Fig. 6: naive receive hangs when P2 dies holding the buffer", fig6},
		{"7", "Fig. 7: Irecv failure detector triggers the resend", fig7},
		{"8", "Fig. 8: resend without markers duplicates an iteration", fig8},
		{"10", "Fig. 10: iteration marker suppresses the duplicate", fig10},
		{"12", "Sec. III-D/Fig. 12: root dies, new root regains control", fig12},
	}

	ran := false
	for _, s := range scenarios {
		if *all || s.fig == *fig {
			ran = true
			fmt.Printf("==== %s ====\n", s.title)
			if err := s.run(); err != nil {
				fmt.Fprintln(os.Stderr, "scenario:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "usage: scenario -fig 6|7|8|10|12 (or -all)")
		os.Exit(2)
	}
}

// replay runs a 4-rank ring under the given plan and prints the outcome
// plus the per-rank event timeline.
func replay(cfg core.Config, plan *inject.Plan, deadline time.Duration) (*core.Report, *ftmpi.RunResult, *ftmpi.Tracer, error) {
	rec := ftmpi.NewTracer(0)
	mcfg := ftmpi.Config{Size: 4, Deadline: deadline, Hook: plan.Hook(), Tracer: rec}
	report, res, err := core.Run(mcfg, cfg)
	return report, res, rec, err
}

func fig6() error {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
	_, res, rec, err := replay(core.Config{Iters: 6, Variant: core.VariantNaive}, plan, 500*time.Millisecond)
	if !errors.Is(err, ftmpi.ErrTimedOut) {
		return fmt.Errorf("expected the deadlock, got %v", err)
	}
	fmt.Printf("P2 killed after receiving iteration 1 from P1, before forwarding to P3.\n")
	fmt.Printf("Outcome: DEADLOCK — watchdog fired; stuck ranks %v (the paper: \"the\n", res.Stuck)
	fmt.Printf("parallel program hangs waiting for progress in the ring that will never\n")
	fmt.Printf("occur because the control was lost with P2\").\n\n")
	fmt.Print(rec.RenderByRank())
	return nil
}

func fig7() error {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
	report, res, rec, err := replay(core.Config{Iters: 6, Variant: core.VariantFull}, plan, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("Same failure as Fig. 6, now with the Fig. 9 receive: P1's posted Irecv\n")
	fmt.Printf("to P2 completes in error, P1 resends the buffer to P3.\n")
	fmt.Printf("Outcome: completed in %v; resends=%d; root absorbed %d/6 iterations.\n\n",
		res.Elapsed, report.TotalResends(), len(report.Rank(0).RootValues))
	fmt.Print(rec.RenderByRank())
	return nil
}

func fig8() error {
	plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
	report, _, rec, err := replay(core.Config{Iters: 4, Variant: core.VariantNoMarker}, plan, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("P2 killed right after forwarding iteration 1 to P3; P1's resend is a\n")
	fmt.Printf("duplicate that P3 cannot distinguish without markers.\n")
	fmt.Printf("Outcome: duplicates forwarded=%d — \"multiple completions of the same\n",
		report.TotalDupsForwarded())
	fmt.Printf("ring iteration\".\n\n")
	fmt.Print(rec.RenderByRank())
	return nil
}

func fig10() error {
	plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
	report, _, rec, err := replay(core.Config{Iters: 4, Variant: core.VariantFull}, plan, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("Same failure as Fig. 8, with the iteration marker: the duplicate is\n")
	fmt.Printf("detected and dropped.\n")
	fmt.Printf("Outcome: dups dropped=%d, dups forwarded=%d, root absorbed %d/4.\n\n",
		report.TotalDupsDropped(), report.TotalDupsForwarded(), len(report.Rank(0).RootValues))
	fmt.Print(rec.RenderByRank())
	return nil
}

func fig12() error {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 3))
	rec := ftmpi.NewTracer(0)
	mcfg := ftmpi.Config{Size: 5, Deadline: 15 * time.Second, Hook: plan.Hook(), Tracer: rec}
	report, res, err := core.Run(mcfg, core.Config{
		Iters: 6, Variant: core.VariantFull,
		Termination: core.TermValidateAll, RootPolicy: core.RootElect,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Root (rank 0) killed after absorbing iteration 2. Rank 1 — the lowest\n")
	fmt.Printf("alive rank per Fig. 12 — regains control at iteration %d and leads the\n", 3)
	fmt.Printf("ring to completion; termination via MPI_Icomm_validate_all (Fig. 13).\n")
	fmt.Printf("Outcome: completed in %v; rank 1 became root: %v; new root absorbed %d\n",
		res.Elapsed, report.Rank(1).BecameRoot, len(report.Rank(1).RootValues))
	fmt.Printf("iterations, old root had absorbed %d.\n\n", len(report.Rank(0).RootValues))
	fmt.Print(rec.RenderByRank())
	return nil
}
