// Command ftring runs the fault-tolerant ring application (Hursey &
// Graham 2011) over the in-process MPI runtime, with every design variant
// and failure schedule the paper discusses available from flags.
//
// Examples:
//
//	ftring -n 8 -iters 16                         # full FT ring, no failures
//	ftring -n 8 -iters 16 -kill 3:recv:2          # rank 3 dies after 2nd recv
//	ftring -n 4 -variant naive -kill 2:recv:2     # reproduce the Fig. 6 hang
//	ftring -n 8 -term validate-all -root elect -kill 0:recv:3
//	ftring -n 8 -transport tcp -trace             # TCP loopback with a trace dump
//	ftring -n 16 -random-failures 3 -seed 7       # seeded random schedule
//	ftring -n 8 -chaos -chaos-drop 0.1            # lossy links, reliability on
//	ftring -n 4 -chaos-partition 0:1:1:0          # blackhole 0->1 until escalation
//	ftring -n 4 -detector heartbeat -kill 2:recv:2  # real detection, no oracle
//	ftring -n 4 -detector heartbeat -hb-interval 5ms -hb-timeout 40ms -kill 2:recv:2
//	ftring -n 16 -detector swim -kill 5:recv:2      # gossip detection, O(1) traffic
//	ftring -n 16 -detector swim -swim-period 8ms -agreement tree -term validate-all -kill 5:recv:3
//	ftring -elastic -seed 3                         # elastic repair demo: kill, respawn, resume
//	ftring -elastic -obs 127.0.0.1:9464 -obs-linger 5s   # scrape respawn/shrink counters
//	ftring -replicas 2 -seed 3                      # replication demo: a replica dies, failover is invisible
//	ftring -replicas 2 -rep-mode chain -seed 3      # chain relay with tail-acks instead of sender fan-out
//	ftring -replicas 2 -rep-refill=false            # leave the killed slot empty (no auto re-replication)
//	ftring -replicas 2 -obs 127.0.0.1:9464 -obs-linger 5s   # scrape promotion/dedup/refill counters
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/ftmpi"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 8, "number of ranks")
		iters    = flag.Int("iters", 16, "ring iterations (the paper's max_iter)")
		variant  = flag.String("variant", "full", "receive design: unaware|naive|no-marker|separate-tag|full")
		term     = flag.String("term", "root-bcast", "termination: none|root-bcast|validate-all")
		rootPol  = flag.String("root", "abort", "root policy: abort|elect")
		kills    killFlags
		randomF  = flag.Int("random-failures", 0, "kill this many random non-root ranks")
		seed     = flag.Int64("seed", 1, "seed for -random-failures")
		fabric   = flag.String("transport", "local", "fabric: local|tcp|tcpgob|latency")
		latency  = flag.Duration("latency", 100*time.Microsecond, "per-hop delay for -transport latency")
		deadline = flag.Duration("deadline", 15*time.Second, "watchdog (0 = none)")
		padding  = flag.Int("padding", 0, "extra payload bytes per message")
		doTrace  = flag.Bool("trace", false, "print the event timeline")
		doStats  = flag.Bool("stats", true, "print per-rank statistics")
		traceOut = flag.String("trace-out", "", "stream the event timeline as JSONL to this file (see cmd/traceconv)")
		obsAddr  = flag.String("obs", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. 127.0.0.1:9464)")
		obsHold  = flag.Duration("obs-linger", 0, "keep the -obs endpoint up this long after the run (for scrapers)")
		elastic  = flag.Bool("elastic", false, "run the elastic repair demo instead of the ring: a seeded victim dies holding the token, AutoRespawn reincarnates its slot at the next generation, the ring resumes exactly-once at full size (fixed world size; honors -seed, -obs, -stats)")
		replicas  = flag.Int("replicas", 0, "run the replication demo with this many hot replicas per logical rank: a seeded replica is killed mid-run and a standby is promoted without the fault-unaware ring ever noticing (fixed logical ring size; honors -seed, -obs, -stats, -trace-out; R=1 runs failure-free)")
		repMode   = flag.String("rep-mode", "fanout", "replication propagation mode for -replicas: fanout|chain (chain relays through the primary with tail-acked durability)")
		repRefill = flag.Bool("rep-refill", true, "with -replicas, automatically re-replicate the killed slot (the run waits until the group is back at full degree)")

		detMode    = flag.String("detector", "oracle", "failure detection: oracle|heartbeat|swim")
		hbInterval = flag.Duration("hb-interval", 0, "heartbeat ping interval (0 = default 2ms; with -detector heartbeat)")
		hbTimeout  = flag.Duration("hb-timeout", 0, "heartbeat suspicion timeout (0 = 8x interval; with -detector heartbeat)")
		swPeriod   = flag.Duration("swim-period", 0, "SWIM protocol period (0 = default; with -detector swim)")
		swIndirect = flag.Int("swim-indirect", 0, "SWIM indirect-probe fanout k (0 = default; with -detector swim)")
		agreeMode  = flag.String("agreement", "", "validate_all topology: coordinator|tree (\"\" = coordinator)")

		chaosOn      = flag.Bool("chaos", false, "inject network faults (default rates unless overridden)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for the chaos plan")
		chaosDrop    = flag.Float64("chaos-drop", -1, "per-frame drop probability (implies -chaos)")
		chaosDup     = flag.Float64("chaos-dup", -1, "per-frame duplication probability (implies -chaos)")
		chaosCorrupt = flag.Float64("chaos-corrupt", -1, "per-frame payload corruption probability (implies -chaos)")
		chaosReorder = flag.Float64("chaos-reorder", 0, "per-frame reorder probability (implies -chaos)")
		chaosDelay   = flag.Float64("chaos-delay", 0, "per-frame delay probability (implies -chaos)")
		chaosJitter  = flag.Duration("chaos-jitter", time.Millisecond, "max delay added by -chaos-delay")
		partitions   partitionFlags
	)
	flag.Var(&kills, "kill", "failure spec rank:point:ordinal (point: recv|send|before-send); repeatable")
	flag.Var(&partitions, "chaos-partition", "link partition src:dst:from:to — frame ordinals, 0 = open-ended; repeatable, implies -chaos")
	flag.Parse()

	cfg := core.Config{Iters: *iters, Padding: *padding}
	if err := parseVariant(*variant, &cfg.Variant); err != nil {
		fatal(err)
	}
	if err := parseTermination(*term, &cfg.Termination); err != nil {
		fatal(err)
	}
	if err := parseRootPolicy(*rootPol, &cfg.RootPolicy); err != nil {
		fatal(err)
	}

	plan := inject.NewPlan()
	for _, k := range kills {
		plan.Add(k)
	}
	if *randomF > 0 {
		cands := make([]int, 0, *n-1)
		for r := 1; r < *n; r++ {
			cands = append(cands, r)
		}
		rp, chosen := inject.RandomPlan(*seed, cands, *randomF, *iters/2+1)
		plan = rp
		fmt.Printf("random failure schedule (seed %d): %v\n", *seed, chosen)
	}

	var chaosPlan *ftmpi.ChaosPlan
	if *chaosOn || *chaosDrop >= 0 || *chaosDup >= 0 || *chaosCorrupt >= 0 ||
		*chaosReorder > 0 || *chaosDelay > 0 || len(partitions) > 0 {
		rates := ftmpi.ChaosRates{Drop: 0.05, Dup: 0.02, Corrupt: 0.01}
		if *chaosDrop >= 0 {
			rates.Drop = *chaosDrop
		}
		if *chaosDup >= 0 {
			rates.Dup = *chaosDup
		}
		if *chaosCorrupt >= 0 {
			rates.Corrupt = *chaosCorrupt
		}
		rates.Reorder = *chaosReorder
		rates.Delay = *chaosDelay
		rates.Jitter = *chaosJitter
		chaosPlan = ftmpi.NewChaosPlan(*chaosSeed).Default(rates)
		for _, pt := range partitions {
			chaosPlan.Partition(pt.src, pt.dst, pt.from, pt.to)
		}
		fmt.Printf("chaos plan (seed %d): %s\n", *chaosSeed, chaosPlan)
	}

	rec := ftmpi.NewTracer(0)
	if !*doTrace && *traceOut == "" {
		rec = nil
	}
	var jsonl *ftmpi.TraceJSONLWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		jsonl = ftmpi.NewTraceJSONLWriter(f)
		rec.SetSink(jsonl.Sink())
	}
	if *elastic {
		// The elastic demo protocol is written for a fixed ring size;
		// the counters and histograms must be sized to match.
		*n = workload.ElasticDemoRanks
	}
	if *replicas > 0 {
		switch *repMode {
		case ftmpi.ReplFanout, ftmpi.ReplChain:
		default:
			fatal(fmt.Errorf("unknown -rep-mode %q: valid modes are %q, %q",
				*repMode, ftmpi.ReplFanout, ftmpi.ReplChain))
		}
		// Replication worlds meter every physical slot: logical ring size
		// times the replication degree.
		*n = workload.ReplicaDemoRanks * *replicas
	}
	mets := ftmpi.NewMetrics(*n)
	reg := ftmpi.NewObsRegistry(*n)
	mcfg := ftmpi.Config{
		Size: *n, Deadline: *deadline, Hook: plan.Hook(),
		Tracer: rec, Metrics: mets, Obs: reg, Chaos: chaosPlan,
		Detector: *detMode,
		Heartbeat: ftmpi.HeartbeatOptions{
			Interval: *hbInterval, Timeout: *hbTimeout,
		},
		Swim: ftmpi.SwimOptions{
			Period: *swPeriod, IndirectK: *swIndirect,
		},
		Agreement: *agreeMode,
	}
	var obsSrv *ftmpi.ObsServer
	if *obsAddr != "" {
		srv, err := ftmpi.ServeObs(*obsAddr, func() ftmpi.ObsSource {
			return ftmpi.ObsSource{Metrics: mets, Obs: reg}
		})
		if err != nil {
			fatal(err)
		}
		obsSrv = srv
		fmt.Printf("observability endpoint: http://%s/metrics\n", srv.Addr())
	}

	if *elastic {
		runElasticDemo(*seed, *n, mets, reg, *doStats, obsSrv, *obsHold)
		return
	}
	if *replicas > 0 {
		runReplicaDemo(*seed, *replicas, *repMode, *repRefill, rec, mets, reg, *doStats, obsSrv, *obsHold)
		if jsonl != nil {
			if cerr := jsonl.Close(); cerr != nil {
				fatal(cerr)
			}
			fmt.Printf("trace written: %s (%d events, %d truncated)\n",
				*traceOut, rec.Recorded(), rec.Truncated())
		}
		return
	}

	switch *fabric {
	case "local":
	case "tcp":
		mcfg.Fabric = ftmpi.NewTCPFabric(*n)
	case "tcpgob":
		mcfg.Fabric = ftmpi.NewTCPGobFabric(*n)
	case "latency":
		mcfg.Fabric = ftmpi.NewLatencyFabric(ftmpi.NewLocalFabric(), *latency)
	default:
		fatal(fmt.Errorf("unknown transport %q", *fabric))
	}

	report, res, err := core.Run(mcfg, cfg)
	switch {
	case errors.Is(err, ftmpi.ErrTimedOut):
		fmt.Printf("RESULT: DEADLOCK — watchdog expired after %v; stuck ranks %v\n",
			*deadline, res.Stuck)
	case err != nil:
		var ae *ftmpi.AbortError
		if errors.As(err, &ae) {
			fmt.Printf("RESULT: ABORTED with code %d\n", ae.Code)
		} else {
			fatal(err)
		}
	default:
		fmt.Printf("RESULT: completed in %v\n", res.Elapsed)
	}

	if fired := plan.Log(); len(fired) > 0 {
		fmt.Println("injected failures:")
		for _, l := range fired {
			fmt.Printf("  %s\n", l)
		}
	}

	if chaosPlan != nil {
		fmt.Printf("injected faults: %d dropped, %d duplicated, %d corrupted, %d reordered, %d delayed, %d partitioned\n",
			chaosPlan.Count(chaos.EvDrop), chaosPlan.Count(chaos.EvDup),
			chaosPlan.Count(chaos.EvCorrupt), chaosPlan.Count(chaos.EvReorder),
			chaosPlan.Count(chaos.EvDelay), chaosPlan.Count(chaos.EvPartition))
	}

	if *doStats && report != nil {
		printStats(report, res)
		fmt.Println("\nruntime counters:")
		fmt.Print(mets.Render())
		if lat := reg.Snapshot().Render(); lat != "" {
			fmt.Println("\nlatency quantiles:")
			fmt.Print(lat)
		}
	}
	if *doTrace && rec != nil {
		fmt.Println("\nevent timeline:")
		fmt.Print(rec.RenderByRank())
	}
	if jsonl != nil {
		if cerr := jsonl.Close(); cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("trace written: %s (%d events, %d truncated)\n",
			*traceOut, rec.Recorded(), rec.Truncated())
	}
	if obsSrv != nil && *obsHold > 0 {
		fmt.Printf("keeping observability endpoint up for %v\n", *obsHold)
		time.Sleep(*obsHold)
	}
	if obsSrv != nil {
		_ = obsSrv.Close()
	}
	if err != nil {
		os.Exit(1)
	}
}

// runElasticDemo drives the E21 elastic repair protocol once (kill a
// seeded victim holding the ring token, AutoRespawn its slot at the next
// generation, resume exactly-once, epilogue shrink back to full size)
// over ftring's own metrics recorder and histogram registry, so -obs and
// -stats expose the respawn/shrink/stale-generation counters.
func runElasticDemo(seed int64, n int, mets *ftmpi.Metrics, reg *ftmpi.ObsRegistry,
	doStats bool, obsSrv *ftmpi.ObsServer, obsHold time.Duration) {
	fmt.Printf("elastic repair demo (seed %d): %d ranks under chaos, victim dies holding the token\n", seed, n)
	table, err := workload.RunElasticDemo(seed, mets, reg)
	if err != nil {
		fmt.Printf("RESULT: elastic repair FAILED: %v\n", err)
	} else {
		fmt.Printf("RESULT: elastic repair completed\n")
		fmt.Print(table.Render())
	}
	if doStats {
		fmt.Println("\nruntime counters:")
		fmt.Print(mets.Render())
		if lat := reg.Snapshot().Render(); lat != "" {
			fmt.Println("\nlatency quantiles:")
			fmt.Print(lat)
		}
	}
	if obsSrv != nil && obsHold > 0 {
		fmt.Printf("keeping observability endpoint up for %v\n", obsHold)
		time.Sleep(obsHold)
	}
	if obsSrv != nil {
		_ = obsSrv.Close()
	}
	if err != nil {
		os.Exit(1)
	}
}

// runReplicaDemo drives the E22 replication protocol once (a seeded
// replica of the R-way replicated fault-unaware ring is killed mid-run; a
// standby is promoted and the app never sees an error) over ftring's own
// metrics recorder and histogram registry, so -obs and -stats expose the
// promotion/dedup counters and the replica_promotion latency family.
func runReplicaDemo(seed int64, r int, mode string, refill bool, rec *ftmpi.Tracer,
	mets *ftmpi.Metrics, reg *ftmpi.ObsRegistry,
	doStats bool, obsSrv *ftmpi.ObsServer, obsHold time.Duration) {
	fmt.Printf("replication demo (seed %d): %d logical ranks x %d replicas (%s mode) under chaos, one replica killed mid-run\n",
		seed, workload.ReplicaDemoRanks, r, mode)
	table, err := workload.RunReplicaDemo(seed, r, mode, refill, rec, mets, reg)
	if err != nil {
		fmt.Printf("RESULT: replication soak FAILED: %v\n", err)
	} else {
		fmt.Printf("RESULT: replication soak completed\n")
		fmt.Print(table.Render())
	}
	if doStats {
		fmt.Println("\nruntime counters:")
		fmt.Print(mets.Render())
		if lat := reg.Snapshot().Render(); lat != "" {
			fmt.Println("\nlatency quantiles:")
			fmt.Print(lat)
		}
	}
	if obsSrv != nil && obsHold > 0 {
		fmt.Printf("keeping observability endpoint up for %v\n", obsHold)
		time.Sleep(obsHold)
	}
	if obsSrv != nil {
		_ = obsSrv.Close()
	}
	if err != nil {
		os.Exit(1)
	}
}

func printStats(report *core.Report, res *ftmpi.RunResult) {
	fmt.Println("\nper-rank outcome:")
	for rank := 0; rank < report.Size(); rank++ {
		s := report.Rank(rank)
		rr := res.Ranks[rank]
		state := "finished"
		switch {
		case rr.Killed:
			state = "KILLED"
		case rr.Aborted:
			state = "aborted"
		case rr.Err != nil:
			state = "error: " + rr.Err.Error()
		case !rr.Finished:
			state = "stuck"
		}
		line := fmt.Sprintf("  rank %2d: %-9s iters=%d", rank, state, s.Iterations)
		if s.Resends > 0 {
			line += fmt.Sprintf(" resends=%d", s.Resends)
		}
		if s.DupsDropped > 0 {
			line += fmt.Sprintf(" dups-dropped=%d", s.DupsDropped)
		}
		if s.DupsForwarded > 0 {
			line += fmt.Sprintf(" dups-forwarded=%d", s.DupsForwarded)
		}
		if s.BecameRoot {
			line += " BECAME-ROOT"
		}
		if len(s.RootValues) > 0 {
			markers := make([]int, 0, len(s.RootValues))
			for m := range s.RootValues {
				markers = append(markers, int(m))
			}
			sort.Ints(markers)
			line += fmt.Sprintf(" absorbed=%v", markers)
		}
		fmt.Println(line)
	}
}

// partitionSpec is one parsed -chaos-partition window.
type partitionSpec struct {
	src, dst int
	from, to uint64
}

// partitionFlags parses repeatable -chaos-partition src:dst:from:to specs.
type partitionFlags []partitionSpec

// String implements flag.Value.
func (p *partitionFlags) String() string { return fmt.Sprintf("%d partitions", len(*p)) }

// Set implements flag.Value.
func (p *partitionFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return fmt.Errorf("partition spec %q: want src:dst:from:to", s)
	}
	src, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("partition spec %q: bad src: %w", s, err)
	}
	dst, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("partition spec %q: bad dst: %w", s, err)
	}
	from, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return fmt.Errorf("partition spec %q: bad from: %w", s, err)
	}
	to, err := strconv.ParseUint(parts[3], 10, 64)
	if err != nil {
		return fmt.Errorf("partition spec %q: bad to: %w", s, err)
	}
	if from == 0 {
		from = 1 // frame ordinals are 1-based; 0 means "from the start"
	}
	if to == 0 {
		to = ^uint64(0) // 0 means "never heals"
	}
	*p = append(*p, partitionSpec{src: src, dst: dst, from: from, to: to})
	return nil
}

// killFlags parses repeatable -kill rank:point:ordinal specs.
type killFlags []inject.Trigger

// String implements flag.Value.
func (k *killFlags) String() string { return fmt.Sprintf("%d kill specs", len(*k)) }

// Set implements flag.Value.
func (k *killFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("kill spec %q: want rank:point:ordinal", s)
	}
	rank, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("kill spec %q: bad rank: %w", s, err)
	}
	ord, err := strconv.Atoi(parts[2])
	if err != nil {
		return fmt.Errorf("kill spec %q: bad ordinal: %w", s, err)
	}
	switch parts[1] {
	case "recv":
		*k = append(*k, inject.AfterNthRecv(rank, ord))
	case "send":
		*k = append(*k, inject.AfterNthSend(rank, ord))
	case "before-send":
		*k = append(*k, inject.BeforeNthSend(rank, ord))
	default:
		return fmt.Errorf("kill spec %q: unknown point %q", s, parts[1])
	}
	return nil
}

func parseVariant(s string, out *core.Variant) error {
	switch s {
	case "unaware":
		*out = core.VariantUnaware
	case "naive":
		*out = core.VariantNaive
	case "no-marker":
		*out = core.VariantNoMarker
	case "separate-tag":
		*out = core.VariantSeparateTag
	case "full":
		*out = core.VariantFull
	default:
		return fmt.Errorf("unknown variant %q", s)
	}
	return nil
}

func parseTermination(s string, out *core.Termination) error {
	switch s {
	case "none":
		*out = core.TermNone
	case "root-bcast":
		*out = core.TermRootBcast
	case "validate-all":
		*out = core.TermValidateAll
	default:
		return fmt.Errorf("unknown termination %q", s)
	}
	return nil
}

func parseRootPolicy(s string, out *core.RootPolicy) error {
	switch s {
	case "abort":
		*out = core.RootAbort
	case "elect":
		*out = core.RootElect
	default:
		return fmt.Errorf("unknown root policy %q", s)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftring:", err)
	os.Exit(2)
}
