// Package repro is a Go reproduction of "Building a Fault Tolerant MPI
// Application: A Ring Communication Example" (Joshua Hursey and Richard
// L. Graham, Oak Ridge National Laboratory, 2011).
//
// The repository builds, from scratch and on the standard library only:
//
//   - a message-passing runtime with MPI-1-style point-to-point matching,
//     non-blocking requests, communicators and collectives
//     (internal/mpi, internal/collective, internal/transport);
//   - the MPI Forum Fault Tolerance Working Group's run-through
//     stabilization extensions the paper is written against: per-rank
//     validate operations, per-communicator failure recognition,
//     MPI_ERR_RANK_FAIL_STOP semantics, and validate_all as a built-in
//     fault-tolerant consensus (internal/mpi, internal/detector);
//   - a deterministic fault injector (internal/inject) and an event
//     tracer (internal/trace) that replay the paper's failure-scenario
//     figures exactly;
//   - the paper's contribution — the fault-tolerant ring in every variant
//     discussed (internal/core) — plus leader election
//     (internal/election) and two further applications built on the same
//     checklist: heat diffusion (internal/heat) and a Gropp-Lusk
//     manager/worker (internal/managerworker);
//   - an experiment harness regenerating each figure as a table
//     (internal/workload, cmd/ftbench) and traced scenario replays
//     (cmd/scenario).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go cover each experiment with a testing.B entry point.
package repro
