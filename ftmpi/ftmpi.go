// Package ftmpi is the public facade of the fault-tolerant MPI runtime
// built in this repository after Hursey & Graham, "Building a Fault
// Tolerant MPI Application: A Ring Communication Example" (2011).
//
// It re-exports the stable surface of the internal packages as type
// aliases and thin constructors, so applications depend on one import:
//
//	w, _ := ftmpi.NewWorld(4, ftmpi.WithDeadline(10*time.Second))
//	res, err := w.Run(func(p *ftmpi.Proc) error {
//	    c := p.World()
//	    c.SetErrhandler(ftmpi.ErrorsReturn)
//	    if err := c.Send((p.Rank()+1)%p.Size(), 0, []byte("token")); err != nil {
//	        if ftmpi.IsRankFailStop(err) { /* route around the failure */ }
//	    }
//	    ...
//	})
//
// Everything here is an alias (not a wrapper), so values created through
// ftmpi interoperate with the internal packages and with code that still
// imports them directly. The internal packages remain importable inside
// this module; external consumers should treat ftmpi as the API.
package ftmpi

import (
	"io"
	"time"

	"repro/internal/chaos"
	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/reliable"
	"repro/internal/trace"
	"repro/internal/transport"
)

// --- core types --------------------------------------------------------------

type (
	// World is one MPI universe: a fixed set of ranks, a fabric, and the
	// ground-truth failure registry. Create with NewWorld, execute with Run.
	World = mpi.World
	// Proc is one rank's handle to the world, passed to the rank function.
	Proc = mpi.Proc
	// Comm is a communicator: an ordered group of ranks with isolated
	// communication contexts and per-communicator failure recognition.
	Comm = mpi.Comm
	// Request is a non-blocking operation handle (Wait/Test/Cancel/Free).
	Request = mpi.Request
	// Status describes a completed operation (source, tag, payload length).
	Status = mpi.Status
	// Config is the positional World configuration; prefer NewWorld with
	// functional options.
	Config = mpi.Config
	// Option configures a World under construction (see With*).
	Option = mpi.Option
	// RunResult aggregates a world execution; RankResult is one rank's part.
	RunResult = mpi.RunResult
	// RankResult reports how one rank's function ended.
	RankResult = mpi.RankResult
	// RankInfo pairs a communicator rank with its failure-recognition state.
	RankInfo = mpi.RankInfo
	// RankState is the per-rank failure-recognition state (MPI_RANK_*).
	RankState = mpi.RankState
	// Errhandler mirrors MPI_ERRORS_ARE_FATAL / MPI_ERRORS_RETURN.
	Errhandler = mpi.Errhandler
	// RankError wraps an error with the world rank that raised it.
	RankError = mpi.RankError
	// AbortError reports an MPI_Abort with its exit code.
	AbortError = mpi.AbortError
)

// --- elastic worlds ------------------------------------------------------------

type (
	// RankID is a generation-stamped rank identity: Slot is the world
	// rank, Gen the incarnation number (1 for the original process, bumped
	// by every respawn). See Proc.ID.
	RankID = mpi.RankID
	// ElasticOptions enables elastic-world repair (see WithElastic):
	// confirmed-dead slots may be reoccupied at the next generation via
	// World.Spawn, or automatically when AutoRespawn is set.
	ElasticOptions = mpi.ElasticOptions
	// ShrinkOptions tunes Comm.ShrinkWith, the ULFM MPIX_Comm_shrink
	// analogue that derives a dense survivors-only communicator.
	ShrinkOptions = mpi.ShrinkOptions
	// RespawnResult reports how one reincarnation of a slot ended (see
	// RunResult.Respawns).
	RespawnResult = mpi.RespawnResult
)

// WithElastic enables elastic-world repair with the given options: dead
// slots become respawnable (World.Spawn), survivors observe revivals, and
// stale-generation traffic is fenced at delivery.
func WithElastic(opts ElasticOptions) Option { return mpi.WithElastic(opts) }

// --- replication --------------------------------------------------------------

// ReplicationOptions enables hot-replica fault tolerance (see
// WithReplication): every logical rank is backed by R physical replicas
// with transparent failover.
type ReplicationOptions = mpi.ReplicationOptions

// Replication propagation modes (ReplicationOptions.Mode).
const (
	// ReplFanout sends one physical copy to every live replica of the
	// destination (the default); receivers drop duplicates by sequence.
	ReplFanout = mpi.ReplFanout
	// ReplChain sends one copy to the destination's primary, which relays
	// to its standbys — cheaper uplink, but a primary dying mid-relay can
	// lose the frame for its standbys.
	ReplChain = mpi.ReplChain
)

// WithReplication enables replication mode: NewWorld's size parameter is
// interpreted as the LOGICAL rank count and the world is expanded to
// size*R physical slots. Replica deaths are absorbed by promoting a
// standby; the application observes a failure only when a logical rank's
// last replica dies.
func WithReplication(opts ReplicationOptions) Option { return mpi.WithReplication(opts) }

// --- fault injection hooks ---------------------------------------------------

type (
	// HookFunc observes operation boundaries and may order the rank killed —
	// the attachment point for deterministic fault injection.
	HookFunc = mpi.HookFunc
	// HookEvent describes one operation boundary.
	HookEvent = mpi.HookEvent
	// HookPoint identifies the boundary (before send, after recv, ...).
	HookPoint = mpi.HookPoint
	// Action is a hook's verdict (continue or fail-stop the rank).
	Action = mpi.Action
)

// --- transport and observability --------------------------------------------

type (
	// Fabric moves packets between ranks; see the New*Fabric constructors.
	Fabric = transport.Fabric
	// Packet is one message on the wire.
	Packet = transport.Packet
	// Tracer records communication events for scenario verification.
	Tracer = trace.Recorder
	// TraceEvent is one recorded event (JSONL-serializable; see
	// NewTraceJSONLWriter and ChromeTrace).
	TraceEvent = trace.Event
	// Metrics counts per-rank operations (sends, receives, agreements, ...).
	Metrics = metrics.World
	// ObsRegistry holds per-rank latency histograms for every runtime
	// family (send completion, receive wait, agreement rounds, ...).
	ObsRegistry = obs.Registry
	// ObsFamily identifies one latency histogram family.
	ObsFamily = obs.Family
	// ObsSnapshot is a consistent point-in-time view of a registry.
	ObsSnapshot = obs.Snapshot
	// ObsSource bundles the counter table and histogram registry an
	// exposition server reads from.
	ObsSource = obs.Source
	// ObsServer is a running /metrics + expvar + pprof HTTP endpoint.
	ObsServer = obs.Server
	// TraceJSONLWriter streams recorded events as line-delimited JSON
	// (see NewTraceJSONLWriter).
	TraceJSONLWriter = trace.JSONLWriter
	// TraceSpan is one message lifecycle reassembled from events sharing a
	// causal token (see AssembleTraceSpans).
	TraceSpan = trace.Span
	// TraceAuditReport is the message-conservation verdict of AuditTrace.
	TraceAuditReport = trace.AuditReport
	// TraceIncident is one recovery timeline (death -> suspect -> confirm
	// -> repair -> resume) reconstructed by TraceRecoveries.
	TraceIncident = trace.Incident
)

// --- constants ---------------------------------------------------------------

// Wildcard and null ranks (MPI_PROC_NULL, MPI_ANY_SOURCE, MPI_ANY_TAG).
const (
	ProcNull  = mpi.ProcNull
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Error handlers.
const (
	ErrorsAreFatal = mpi.ErrorsAreFatal
	ErrorsReturn   = mpi.ErrorsReturn
)

// Failure-recognition states (MPI_RANK_OK / MPI_RANK_FAILED / MPI_RANK_NULL).
const (
	RankOK         = mpi.RankOK
	RankFailed     = mpi.RankFailed
	RankNull       = mpi.RankNull
	RankRecognized = mpi.RankNull // alias: recognized == MPI_RANK_NULL semantics
)

// Latency histogram families (see ObsRegistry).
const (
	ObsSendComplete   = obs.SendComplete
	ObsRecvWait       = obs.RecvWait
	ObsValidateAll    = obs.ValidateAll
	ObsAgreementRound = obs.AgreementRound
	ObsElection       = obs.Election
	ObsRetryBackoff   = obs.RetryBackoff
	ObsChaosDelay     = obs.ChaosDelay
	ObsNotifyLatency  = obs.NotifyLatency
	// ObsSuspicionLatency times ground-truth death to the first heartbeat
	// suspicion raised against the dead rank.
	ObsSuspicionLatency = obs.SuspicionLatency
	// ObsFenceRTT times a raised suspicion to its confirmed failure.
	ObsFenceRTT = obs.FenceRTT
	// ObsSwimProbeRTT times one SWIM probe transaction from launch to
	// the direct or indirect ack.
	ObsSwimProbeRTT = obs.SwimProbeRTT
	// ObsGossipConvergence times epidemic dissemination: membership-event
	// origination to each remote rank learning it via piggyback.
	ObsGossipConvergence = obs.GossipConvergence
	// ObsShrinkLatency times Comm.Shrink from entry to the dense survivor
	// communicator being ready (agreement included).
	ObsShrinkLatency = obs.ShrinkLatency
	// ObsRespawnRecovery times a slot's ground-truth death to its next
	// incarnation starting.
	ObsRespawnRecovery = obs.RespawnRecovery
	// ObsReplicaPromotion times a replica's ground-truth death to a
	// standby's promotion to primary of the logical rank.
	ObsReplicaPromotion = obs.ReplicaPromotion
	// ObsReplicationOverhead times the extra send work replication adds:
	// the fan-out copies beyond the first on each logical send.
	ObsReplicationOverhead = obs.ReplicationOverhead
	// ObsMessageE2ELatency times a data message from its origin's HLC send
	// stamp to its acceptance by the destination matching layer.
	ObsMessageE2ELatency = obs.MessageE2ELatency
	// ObsRecoveryTotal times one recovery incident end to end: ground-truth
	// death to the repair restoring service (promotion, respawn, or
	// validate_all concluding on the failure).
	ObsRecoveryTotal = obs.RecoveryTotal
)

// Failure-detection modes (see WithDetector).
const (
	// DetectorOracle is the default: failure notifications come straight
	// from the in-process ground-truth registry (the paper's assumed
	// perfect detector).
	DetectorOracle = mpi.DetectorOracle
	// DetectorHeartbeat detects failures by missed heartbeats over the
	// live fabric, with fencing preserving fail-stop accuracy.
	DetectorHeartbeat = mpi.DetectorHeartbeat
	// DetectorSwim detects failures SWIM-style: one randomized probe per
	// period with k indirect probes through relays, and membership events
	// disseminated epidemically as gossip piggybacked on control frames —
	// O(1) per-rank traffic at any world size.
	DetectorSwim = mpi.DetectorSwim
)

// Agreement topologies for validate_all (see WithAgreement).
const (
	// AgreementCoordinator funnels every vote through one coordinator —
	// the paper-faithful default.
	AgreementCoordinator = mpi.AgreementCoordinator
	// AgreementTree reduces votes up a fault-aware spanning tree over the
	// live membership — the scalable choice for large N.
	AgreementTree = mpi.AgreementTree
)

// Hook points and actions.
const (
	HookBeforeSend = mpi.HookBeforeSend
	HookAfterSend  = mpi.HookAfterSend
	HookAfterRecv  = mpi.HookAfterRecv
	HookCheckpoint = mpi.HookCheckpoint

	ActNone = mpi.ActNone
	ActKill = mpi.ActKill
)

// --- error classes -----------------------------------------------------------

var (
	// ErrRankFailStop is the MPI_ERR_RANK_FAIL_STOP error class: the peer
	// fail-stopped and its failure is not yet recognized.
	ErrRankFailStop = mpi.ErrRankFailStop
	// ErrAborted reports the world was torn down by MPI_Abort.
	ErrAborted = mpi.ErrAborted
	// ErrCancelled reports the request was cancelled before completing.
	ErrCancelled = mpi.ErrCancelled
	// ErrInvalidRank reports a rank outside the communicator.
	ErrInvalidRank = mpi.ErrInvalidRank
	// ErrInvalidArg reports an invalid argument.
	ErrInvalidArg = mpi.ErrInvalidArg
	// ErrTimedOut reports the world deadline expired (a detected deadlock).
	ErrTimedOut = mpi.ErrTimedOut
	// ErrNoDecision reports agreement shut down before deciding.
	ErrNoDecision = mpi.ErrNoDecision
	// ErrNoState reports a FetchState peer that is alive but has no state
	// provider registered.
	ErrNoState = mpi.ErrNoState
)

// IsRankFailStop reports whether err belongs to the MPI_ERR_RANK_FAIL_STOP
// class.
func IsRankFailStop(err error) bool { return mpi.IsRankFailStop(err) }

// FailedRankOf extracts the failed world rank from a fail-stop error, or -1.
func FailedRankOf(err error) int { return mpi.FailedRankOf(err) }

// --- world construction ------------------------------------------------------

// NewWorld builds a world of size ranks configured by functional options.
// The world is single-use: one Run per World.
func NewWorld(size int, opts ...Option) (*World, error) { return mpi.NewWorld(size, opts...) }

// WithFabric selects the transport; the default is the in-memory Local
// fabric.
func WithFabric(f Fabric) Option { return mpi.WithFabric(f) }

// WithTracer attaches an event recorder (see NewTracer).
func WithTracer(t *Tracer) Option { return mpi.WithTracer(t) }

// WithMetrics attaches per-rank operation counters (see NewMetrics).
func WithMetrics(m *Metrics) Option { return mpi.WithMetrics(m) }

// WithObservability attaches a latency-histogram registry (see
// NewObsRegistry); the runtime layers record send-completion, receive-wait,
// agreement, and failure-notification timings into it.
func WithObservability(r *ObsRegistry) Option { return mpi.WithObservability(r) }

// WithHook installs a fault-injection hook.
func WithHook(h HookFunc) Option { return mpi.WithHook(h) }

// WithDeadline bounds Run's wall-clock time, turning deadlocks into
// ErrTimedOut results.
func WithDeadline(d time.Duration) Option { return mpi.WithDeadline(d) }

// WithNotifyDelay delays failure notifications, modelling detection
// latency.
func WithNotifyDelay(d time.Duration) Option { return mpi.WithNotifyDelay(d) }

// WithChaos injects seeded network faults from the plan between the
// engines and the fabric; it implies the reliability sublayer, which is
// what lets the runtime run through the injected faults.
func WithChaos(plan *ChaosPlan) Option { return mpi.WithChaos(plan) }

// WithReliability enables the reliability sublayer (sequencing, acks,
// dedup, bounded retransmission, escalation to fail-stop) without a
// chaos plan. Zero option fields take defaults.
func WithReliability(opts ReliableOptions) Option { return mpi.WithReliability(opts) }

// WithDetector selects the failure-detection mode: DetectorOracle (the
// default) or DetectorHeartbeat.
func WithDetector(mode string) Option { return mpi.WithDetector(mode) }

// WithHeartbeat selects the heartbeat detector and tunes its monitors;
// zero option fields take defaults.
func WithHeartbeat(opts HeartbeatOptions) Option { return mpi.WithHeartbeat(opts) }

// WithSwim selects the SWIM membership detector and tunes its monitors;
// zero option fields take defaults.
func WithSwim(opts SwimOptions) Option { return mpi.WithSwim(opts) }

// WithAgreement selects the validate_all topology: AgreementCoordinator
// (the default) or AgreementTree.
func WithAgreement(mode string) Option { return mpi.WithAgreement(mode) }

// --- request combinators -----------------------------------------------------

// Waitany blocks until one of the requests completes and returns its index
// (the paper's Figure 9/13 combinator).
func Waitany(reqs ...*Request) (int, Status, error) { return mpi.Waitany(reqs...) }

// Testany polls the requests without blocking.
func Testany(reqs ...*Request) (ok bool, idx int, st Status, err error) {
	return mpi.Testany(reqs...)
}

// Waitsome blocks until at least one request completes and drains every
// completed one.
func Waitsome(reqs ...*Request) (indices []int, sts []Status, errs []error, err error) {
	return mpi.Waitsome(reqs...)
}

// Waitall blocks until every request completes.
func Waitall(reqs ...*Request) ([]Status, error) { return mpi.Waitall(reqs...) }

// --- transport constructors --------------------------------------------------

// NewLocalFabric returns the in-memory fabric (direct delivery, the
// deterministic default).
func NewLocalFabric() Fabric { return transport.NewLocal() }

// NewTCPFabric returns a real loopback-TCP fabric for n ranks using the
// pooled binary wire codec.
func NewTCPFabric(n int) Fabric { return transport.NewTCP(n) }

// NewTCPGobFabric returns the loopback-TCP fabric with the baseline gob
// wire codec (the E15 comparison point).
func NewTCPGobFabric(n int) Fabric { return transport.NewTCPCodec(n, transport.CodecGob) }

// NewLatencyFabric wraps inner with a per-hop pipelined delay.
func NewLatencyFabric(inner Fabric, d time.Duration) Fabric {
	return transport.NewLatency(inner, d)
}

// --- chaos & reliability -----------------------------------------------------

type (
	// ChaosPlan is a seeded, deterministic schedule of network faults;
	// build with NewChaosPlan and pass to WithChaos.
	ChaosPlan = chaos.Plan
	// ChaosRates sets per-frame fault probabilities for one link or the
	// plan default.
	ChaosRates = chaos.Rates
	// ChaosEvent is one injected fault in the plan's replayable log.
	ChaosEvent = chaos.Event
	// ReliableOptions tunes the reliability sublayer's retransmission
	// budget (see WithReliability).
	ReliableOptions = reliable.Options
	// HeartbeatOptions tunes the heartbeat detector's monitors (see
	// WithHeartbeat): ping interval, suspicion timeout, phi threshold,
	// and the self-fence horizon.
	HeartbeatOptions = detector.HeartbeatOptions
	// SwimOptions tunes the SWIM detector's monitors (see WithSwim):
	// protocol period, probe timeout, indirect-probe fanout, suspicion
	// timeout, gossip retransmission budget, and the self-fence horizon.
	SwimOptions = membership.Options
)

// NewChaosPlan returns an empty fault plan for the seed: configure it
// with Default, Link, and Partition, then pass it to WithChaos. The same
// seed and traffic reproduce the same fault log.
func NewChaosPlan(seed int64) *ChaosPlan { return chaos.NewPlan(seed) }

// --- observability constructors ----------------------------------------------

// NewTracer returns an event recorder keeping at most limit events
// (0 = unbounded).
func NewTracer(limit int) *Tracer { return trace.New(limit) }

// NewMetrics returns a counter table for n ranks.
func NewMetrics(n int) *Metrics { return metrics.NewWorld(n) }

// NewObsRegistry returns a latency-histogram registry for n ranks; attach
// it with WithObservability and read it with Snapshot or ServeObs.
func NewObsRegistry(n int) *ObsRegistry { return obs.NewRegistry(n) }

// ServeObs starts an HTTP endpoint on addr exposing Prometheus text
// (/metrics), expvar (/debug/vars), and pprof (/debug/pprof/) for whatever
// the source callback returns at scrape time. Close the returned server to
// stop it.
func ServeObs(addr string, src func() ObsSource) (*ObsServer, error) {
	return obs.Serve(addr, src)
}

// NewTraceJSONLWriter wraps w in a line-per-event JSON encoder; attach its
// Sink to a Tracer with SetSink to stream events as they are recorded.
func NewTraceJSONLWriter(w io.Writer) *trace.JSONLWriter { return trace.NewJSONLWriter(w) }

// ReadTraceJSONL decodes a JSONL event stream written by
// NewTraceJSONLWriter.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return trace.ReadJSONL(r) }

// ChromeTrace converts recorded events to Chrome trace-event JSON (one
// lane per rank incarnation: elastic replacements and replica occupants
// get their own generation-labelled lanes), viewable at ui.perfetto.dev
// or chrome://tracing.
func ChromeTrace(events []TraceEvent) ([]byte, error) { return trace.ChromeTrace(events) }

// --- causal trace analysis ---------------------------------------------------

// AssembleTraceSpans groups events by causal token and orders each group
// by hybrid logical clock: one Span per message lifecycle, across every
// rank the message touched.
func AssembleTraceSpans(events []TraceEvent) []*TraceSpan { return trace.AssembleSpans(events) }

// AuditTrace runs the message-conservation audit: every tokened send must
// reconcile to a delivery or a deliberate, accounted loss (chaos drop,
// dedup, stale-generation fence, dead destination, purge). Anything else
// is a runtime bug.
func AuditTrace(events []TraceEvent) *TraceAuditReport { return trace.Audit(events) }

// CheckTraceCausal validates causal-clock sanity: per-rank HLC stamp
// uniqueness, send-before-deliver ordering per token, and token closure
// (every delivery has a matching send). It returns one message per
// violation, empty when the trace is causally consistent.
func CheckTraceCausal(events []TraceEvent) []string { return trace.CheckCausal(events) }

// TraceRecoveries reconstructs per-incident recovery timelines from a
// trace: for each rank death, the suspect/confirm/repair/resume anchors
// and the phase decomposition between them.
func TraceRecoveries(events []TraceEvent) []*TraceIncident { return trace.Recoveries(events) }

// SlowestTraceSpans returns the k delivered message lifecycles with the
// highest end-to-end latency, slowest first — the trace's critical
// messages.
func SlowestTraceSpans(events []TraceEvent, k int) []*TraceSpan {
	return trace.SlowestSpans(events, k)
}

// RenderTraceSpan formats one lifecycle as a per-hop table with causal
// deltas.
func RenderTraceSpan(sp *TraceSpan) string { return trace.RenderSpan(sp) }

// RenderTraceIncident formats one recovery timeline as a phase table.
func RenderTraceIncident(in *TraceIncident) string { return in.Render() }
