package ftmpi_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/ftmpi"
)

// TestFacadeRing exercises the README quickstart shape end to end through
// the facade alone: options-based construction, a send/recv ring, and the
// run-through stabilization path (fail-stop, ErrRankFailStop, failover,
// ValidateAll) — proving the re-exported surface is complete enough to
// write the paper's application against.
func TestFacadeRing(t *testing.T) {
	const n = 4
	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(10*time.Second),
		ftmpi.WithTracer(ftmpi.NewTracer(0)), ftmpi.WithMetrics(ftmpi.NewMetrics(n)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() + p.Size() - 1) % p.Size()
		if err := c.Send(right, 0, []byte("token")); err != nil {
			return err
		}
		payload, st, err := c.Recv(left, 0)
		if err != nil {
			return err
		}
		if string(payload) != "token" || st.Source != left {
			t.Errorf("rank %d: got %q from %d", p.Rank(), payload, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedCount() != n {
		t.Fatalf("finished %d/%d", res.FinishedCount(), n)
	}
}

// TestFacadeChaosRing drives the quickstart ring through a lossy,
// duplicating, corrupting fabric configured entirely through the facade:
// WithChaos implies the reliability sublayer, so the ring completes with
// every token delivered exactly once and intact.
func TestFacadeChaosRing(t *testing.T) {
	const n = 4
	plan := ftmpi.NewChaosPlan(2026).Default(ftmpi.ChaosRates{Drop: 0.1, Dup: 0.05, Corrupt: 0.01})
	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(30*time.Second), ftmpi.WithChaos(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() + p.Size() - 1) % p.Size()
		for i := 0; i < 10; i++ {
			if err := c.Send(right, i, []byte{byte(i)}); err != nil {
				return err
			}
			payload, _, err := c.Recv(left, i)
			if err != nil {
				return err
			}
			if len(payload) != 1 || payload[0] != byte(i) {
				t.Errorf("rank %d iter %d: corrupted payload %v", p.Rank(), i, payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedCount() != n {
		t.Fatalf("finished %d/%d", res.FinishedCount(), n)
	}
	if len(plan.Log()) == 0 {
		t.Fatal("chaos plan injected nothing")
	}
}

func TestFacadeFailStopAndValidate(t *testing.T) {
	const n = 4
	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(10*time.Second),
		ftmpi.WithHook(func(ev ftmpi.HookEvent) ftmpi.Action {
			if ev.Rank == 2 && ev.Point == ftmpi.HookBeforeSend {
				return ftmpi.ActKill
			}
			return ftmpi.ActNone
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		if p.Rank() == 2 {
			_ = c.Send(3, 0, nil) // hook kills rank 2 here
			t.Error("rank 2 survived its kill hook")
		}
		// Irecv-as-failure-detector (paper Fig. 9): the receive completes
		// with the fail-stop error class once rank 2 dies.
		r := c.Irecv(2, 7)
		_, werr := r.Wait()
		if !ftmpi.IsRankFailStop(werr) {
			return werr
		}
		if got := ftmpi.FailedRankOf(werr); got != 2 {
			t.Errorf("rank %d: FailedRankOf = %d, want 2", p.Rank(), got)
		}
		cnt, verr := c.ValidateAll()
		if verr != nil {
			return verr
		}
		if cnt != 1 {
			t.Errorf("rank %d: agreed on %d failures, want 1", p.Rank(), cnt)
		}
		st, err := c.RankState(2)
		if err != nil {
			return err
		}
		if st.State != ftmpi.RankNull {
			t.Errorf("rank %d: state of rank 2 = %v, want RankNull", p.Rank(), st.State)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rank == 2 {
			if !rr.Killed {
				t.Error("rank 2 not recorded as killed")
			}
			continue
		}
		if rr.Err != nil {
			t.Errorf("rank %d: %v", rank, rr.Err)
		}
	}
}

// TestFacadeObservability exercises the PR-4 surface end to end through
// the facade alone: a histogram registry attached with WithObservability,
// a JSONL trace sink, a live /metrics endpoint served from ServeObs, and
// the Chrome trace conversion — the same pipeline cmd/ftring wires up for
// -obs and -trace-out.
func TestFacadeObservability(t *testing.T) {
	const n = 4
	reg := ftmpi.NewObsRegistry(n)
	mets := ftmpi.NewMetrics(n)
	rec := ftmpi.NewTracer(0)
	var buf bytes.Buffer
	jw := ftmpi.NewTraceJSONLWriter(&buf)
	rec.SetSink(jw.Sink())

	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(10*time.Second),
		ftmpi.WithObservability(reg), ftmpi.WithMetrics(mets), ftmpi.WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() + p.Size() - 1) % p.Size()
		sreq := c.Isend(right, 0, []byte("obs"))
		rreq := c.Irecv(left, 0)
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		_, err := sreq.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedCount() != n {
		t.Fatalf("finished %d/%d", res.FinishedCount(), n)
	}

	snap := reg.Snapshot()
	if snap.Family(ftmpi.ObsSendComplete).Merged.Count == 0 {
		t.Error("send_complete histogram recorded no samples")
	}

	srv, err := ftmpi.ServeObs("127.0.0.1:0", func() ftmpi.ObsSource {
		return ftmpi.ObsSource{Metrics: mets, Obs: reg}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`ftmpi_sends_total{rank="0"} 1`,
		"ftmpi_send_complete_seconds_count",
		"ftmpi_recv_wait_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ftmpi.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("JSONL sink captured no events")
	}
	blob, err := ftmpi.ChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"rank 3"`) {
		t.Error("Chrome trace missing the rank 3 lane")
	}
}

// TestFacadeSwimTreeValidate exercises the PR-6 surface end to end
// through the facade alone: the SWIM gossip detector selected and tuned
// with WithSwim, tree-topology agreement selected with WithAgreement,
// one injected death detected without any oracle, and the new histogram
// families visible through the re-exported registry.
func TestFacadeSwimTreeValidate(t *testing.T) {
	const n = 8
	reg := ftmpi.NewObsRegistry(n)
	mets := ftmpi.NewMetrics(n)
	w, err := ftmpi.NewWorld(n,
		ftmpi.WithSwim(ftmpi.SwimOptions{Period: 4 * time.Millisecond, Seed: 1}),
		ftmpi.WithAgreement(ftmpi.AgreementTree),
		ftmpi.WithObservability(reg), ftmpi.WithMetrics(mets),
		ftmpi.WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		if p.Rank() == 3 {
			p.Die()
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			info, err := c.RankState(3)
			if err != nil {
				return err
			}
			if info.State == ftmpi.RankFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Error("rank 3 failure never surfaced through SWIM")
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		if cnt != 1 {
			t.Errorf("rank %d agreed on %d failures, want 1", p.Rank(), cnt)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("run wedged; stuck ranks %v", res.Stuck)
	}
	snap := reg.Snapshot()
	if snap.Family(ftmpi.ObsSwimProbeRTT).Merged.Count == 0 {
		t.Error("no swim_probe_rtt samples reached the facade registry")
	}
	if snap.Family(ftmpi.ObsGossipConvergence).Merged.Count == 0 {
		t.Error("no gossip_convergence samples reached the facade registry")
	}
}

// TestFacadeElasticRespawn drives the full elastic repair chain through
// the public surface alone: WithElastic + AutoRespawn reincarnates a dead
// slot at generation 2, the newcomer recovers neighbor state with
// FetchState, and the whole world — reincarnation included — agrees it is
// healthy again and "shrinks" back to full size.
func TestFacadeElasticRespawn(t *testing.T) {
	const n = 4
	mets := ftmpi.NewMetrics(n)
	reg := ftmpi.NewObsRegistry(n)
	w, err := ftmpi.NewWorld(n,
		ftmpi.WithDeadline(30*time.Second),
		ftmpi.WithMetrics(mets),
		ftmpi.WithObservability(reg),
		ftmpi.WithElastic(ftmpi.ElasticOptions{AutoRespawn: true}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		me := p.Rank()
		p.SetStateProvider(func() []byte { return []byte{byte('a' + me)} })

		switch {
		case me == 3 && p.Gen() == 1:
			p.Die()
		case me == 3: // the reincarnation
			if id := p.ID(); id != (ftmpi.RankID{Slot: 3, Gen: 2}) {
				t.Errorf("reincarnation identity %v", id)
			}
			// The respawn can beat the neighbor's own startup: retry while
			// its provider is not registered yet.
			for {
				st, err := p.FetchState(2)
				if err == nil {
					if string(st) != "c" {
						t.Errorf("FetchState(2) = %q", st)
					}
					break
				}
				if !errors.Is(err, ftmpi.ErrNoState) {
					return err
				}
				time.Sleep(200 * time.Microsecond)
			}
		default:
			// Survivors wait until the slot is reoccupied before the
			// epilogue agreement, so it aligns with the newcomer's first.
			deadline := time.Now().Add(20 * time.Second)
			for {
				info, err := c.RankState(3)
				if err != nil {
					return err
				}
				if info.State == ftmpi.RankOK && info.Generation == 2 {
					break
				}
				if time.Now().After(deadline) {
					return errors.New("slot 3 never came back")
				}
				time.Sleep(200 * time.Microsecond)
			}
		}

		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		if cnt != 0 {
			t.Errorf("rank %d gen %d: %d failures agreed after repair", me, p.Gen(), cnt)
		}
		nc, err := c.Shrink()
		if err != nil {
			return err
		}
		if nc.Size() != n {
			t.Errorf("rank %d: post-repair shrink size %d, want %d", me, nc.Size(), n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("run wedged; stuck ranks %v", res.Stuck)
	}
	if !res.Ranks[3].Killed {
		t.Fatalf("rank 3 gen 1 not recorded killed: %+v", res.Ranks[3])
	}
	if len(res.Respawns) != 1 || res.Respawns[0].Gen != 2 || !res.Respawns[0].Finished {
		t.Fatalf("respawns: %+v", res.Respawns)
	}
	snap := reg.Snapshot()
	if snap.Family(ftmpi.ObsRespawnRecovery).Merged.Count == 0 {
		t.Error("no respawn_recovery samples reached the facade registry")
	}
	if snap.Family(ftmpi.ObsShrinkLatency).Merged.Count != int64(n) {
		t.Errorf("shrink_latency samples = %d, want %d",
			snap.Family(ftmpi.ObsShrinkLatency).Merged.Count, n)
	}
}
