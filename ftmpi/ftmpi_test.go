package ftmpi_test

import (
	"testing"
	"time"

	"repro/ftmpi"
)

// TestFacadeRing exercises the README quickstart shape end to end through
// the facade alone: options-based construction, a send/recv ring, and the
// run-through stabilization path (fail-stop, ErrRankFailStop, failover,
// ValidateAll) — proving the re-exported surface is complete enough to
// write the paper's application against.
func TestFacadeRing(t *testing.T) {
	const n = 4
	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(10*time.Second),
		ftmpi.WithTracer(ftmpi.NewTracer(0)), ftmpi.WithMetrics(ftmpi.NewMetrics(n)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() + p.Size() - 1) % p.Size()
		if err := c.Send(right, 0, []byte("token")); err != nil {
			return err
		}
		payload, st, err := c.Recv(left, 0)
		if err != nil {
			return err
		}
		if string(payload) != "token" || st.Source != left {
			t.Errorf("rank %d: got %q from %d", p.Rank(), payload, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedCount() != n {
		t.Fatalf("finished %d/%d", res.FinishedCount(), n)
	}
}

// TestFacadeChaosRing drives the quickstart ring through a lossy,
// duplicating, corrupting fabric configured entirely through the facade:
// WithChaos implies the reliability sublayer, so the ring completes with
// every token delivered exactly once and intact.
func TestFacadeChaosRing(t *testing.T) {
	const n = 4
	plan := ftmpi.NewChaosPlan(2026).Default(ftmpi.ChaosRates{Drop: 0.1, Dup: 0.05, Corrupt: 0.01})
	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(30*time.Second), ftmpi.WithChaos(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() + p.Size() - 1) % p.Size()
		for i := 0; i < 10; i++ {
			if err := c.Send(right, i, []byte{byte(i)}); err != nil {
				return err
			}
			payload, _, err := c.Recv(left, i)
			if err != nil {
				return err
			}
			if len(payload) != 1 || payload[0] != byte(i) {
				t.Errorf("rank %d iter %d: corrupted payload %v", p.Rank(), i, payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedCount() != n {
		t.Fatalf("finished %d/%d", res.FinishedCount(), n)
	}
	if len(plan.Log()) == 0 {
		t.Fatal("chaos plan injected nothing")
	}
}

func TestFacadeFailStopAndValidate(t *testing.T) {
	const n = 4
	w, err := ftmpi.NewWorld(n, ftmpi.WithDeadline(10*time.Second),
		ftmpi.WithHook(func(ev ftmpi.HookEvent) ftmpi.Action {
			if ev.Rank == 2 && ev.Point == ftmpi.HookBeforeSend {
				return ftmpi.ActKill
			}
			return ftmpi.ActNone
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *ftmpi.Proc) error {
		c := p.World()
		c.SetErrhandler(ftmpi.ErrorsReturn)
		if p.Rank() == 2 {
			_ = c.Send(3, 0, nil) // hook kills rank 2 here
			t.Error("rank 2 survived its kill hook")
		}
		// Irecv-as-failure-detector (paper Fig. 9): the receive completes
		// with the fail-stop error class once rank 2 dies.
		r := c.Irecv(2, 7)
		_, werr := r.Wait()
		if !ftmpi.IsRankFailStop(werr) {
			return werr
		}
		if got := ftmpi.FailedRankOf(werr); got != 2 {
			t.Errorf("rank %d: FailedRankOf = %d, want 2", p.Rank(), got)
		}
		cnt, verr := c.ValidateAll()
		if verr != nil {
			return verr
		}
		if cnt != 1 {
			t.Errorf("rank %d: agreed on %d failures, want 1", p.Rank(), cnt)
		}
		st, err := c.RankState(2)
		if err != nil {
			return err
		}
		if st.State != ftmpi.RankNull {
			t.Errorf("rank %d: state of rank 2 = %v, want RankNull", p.Rank(), st.State)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, rr := range res.Ranks {
		if rank == 2 {
			if !rr.Killed {
				t.Error("rank 2 not recorded as killed")
			}
			continue
		}
		if rr.Err != nil {
			t.Errorf("rank %d: %v", rank, rr.Err)
		}
	}
}
