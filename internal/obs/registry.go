package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Family identifies one latency histogram family. Every family is
// recorded per rank and rendered merged; the set mirrors the recovery
// paths of the runtime layers (engine, reliability, chaos, detector,
// application protocols).
type Family int

const (
	// SendComplete times a send from hand-off to fabric acceptance
	// (eager-send completion, including reliability stamping and chaos
	// passage).
	SendComplete Family = iota
	// RecvWait times a blocking receive wait from post to completion.
	RecvWait
	// ValidateAll times one MPI_Comm_validate_all call end to end.
	ValidateAll
	// AgreementRound times one coordinator round of the consensus
	// protocol (solicit votes -> decision).
	AgreementRound
	// Election times one leader-election convergence (LowestAlive scan or
	// Chang-Roberts token circulation).
	Election
	// RetryBackoff records the backoff applied before each reliability
	//-sublayer retransmission.
	RetryBackoff
	// ChaosDelay records the delay jitter the chaos fabric injected.
	ChaosDelay
	// NotifyLatency times failure detection: Registry.Kill to subscriber
	// notification delivery.
	NotifyLatency
	// SuspicionLatency times heartbeat detection: ground-truth death to
	// the first suspicion raised against the dead rank.
	SuspicionLatency
	// FenceRTT times the fencing protocol: suspicion raised to the
	// observer confirming the failure (fence ack received, or ground-truth
	// death observed by the fence resend loop — whichever wins).
	FenceRTT
	// SwimProbeRTT times one SWIM probe transaction from launch to
	// acknowledgment (direct, or via an indirect relay).
	SwimProbeRTT
	// GossipConvergence times epidemic dissemination: event origination
	// to each other rank first learning it from a piggybacked envelope.
	GossipConvergence
	// ShrinkLatency times one Comm.Shrink end to end: the agreement on the
	// failure set plus construction of the dense survivor communicator.
	ShrinkLatency
	// RespawnRecovery times elastic-world healing: a slot's ground-truth
	// death to its reincarnation rejoining the world at the next
	// generation.
	RespawnRecovery
	// ReplicaPromotion times transparent failover in replication mode: a
	// replica's ground-truth death to a surviving standby taking over as
	// primary of the logical rank.
	ReplicaPromotion
	// ReplicationOverhead times the extra fabric work a replicated send
	// pays beyond its first physical copy (the fan-out or chain-forward
	// cost, the failure-free price of replication).
	ReplicationOverhead
	// MessageE2ELatency times one data message from its origin's send
	// stamp to its acceptance by the destination matching layer, computed
	// from the hybrid-logical-clock physical components carried in the v5
	// frame header — the per-message causal latency the tracing layer
	// measures.
	MessageE2ELatency
	// RecoveryTotal times one complete recovery incident: a rank's
	// ground-truth death to the repair action restoring service (replica
	// promotion, elastic respawn, or validate_all completing after a
	// recognized failure) — the end-to-end timeline traceconv -recovery
	// decomposes into phases.
	RecoveryTotal
	// RereplicationLatency times automatic re-replication: a replica's
	// detector-confirmed death to the world's Spawn-driven refill restoring
	// the group member at the next generation (no app Spawn involved).
	RereplicationLatency
	numFamilies
)

var familyNames = [numFamilies]string{
	"send_complete", "recv_wait", "validate_all", "agreement_round",
	"election", "retry_backoff", "chaos_delay", "notify_latency",
	"suspicion_latency", "fence_rtt", "swim_probe_rtt", "gossip_convergence",
	"shrink_latency", "respawn_recovery", "replica_promotion",
	"replication_overhead", "message_e2e_latency", "recovery_total",
	"rereplication_latency",
}

// String returns the family's exposition name (the Prometheus metric is
// "ftmpi_<name>_seconds").
func (f Family) String() string {
	if f >= 0 && f < numFamilies {
		return familyNames[f]
	}
	return fmt.Sprintf("family(%d)", int(f))
}

// Families returns all family identifiers in exposition order.
func Families() []Family {
	out := make([]Family, numFamilies)
	for i := range out {
		out[i] = Family(i)
	}
	return out
}

// Registry holds one histogram per (family, rank) for one run. Create
// with NewRegistry; a nil *Registry observes nothing, so observability
// can be disabled without branching at every call site.
type Registry struct {
	n     int
	hists [numFamilies][]Hist
}

// NewRegistry creates a histogram registry for n ranks.
func NewRegistry(n int) *Registry {
	if n <= 0 {
		panic(fmt.Sprintf("obs: registry size must be positive, got %d", n))
	}
	r := &Registry{n: n}
	for f := range r.hists {
		r.hists[f] = make([]Hist, n)
	}
	return r
}

// Size returns the number of ranks tracked (0 for a nil registry).
func (r *Registry) Size() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Observe records one duration for the given family and rank. Nil
// registries and out-of-range arguments are ignored.
func (r *Registry) Observe(rank int, f Family, d time.Duration) {
	if r == nil || rank < 0 || rank >= r.n || f < 0 || f >= numFamilies {
		return
	}
	r.hists[f][rank].Observe(d)
}

// Hist returns the live histogram for (family, rank), or nil when out of
// range — which is itself a valid no-op histogram.
func (r *Registry) Hist(f Family, rank int) *Hist {
	if r == nil || rank < 0 || rank >= r.n || f < 0 || f >= numFamilies {
		return nil
	}
	return &r.hists[f][rank]
}

// Merged returns the family's histogram merged over all ranks.
func (r *Registry) Merged(f Family) HistSnapshot {
	var out HistSnapshot
	if r == nil || f < 0 || f >= numFamilies {
		return out
	}
	for rank := 0; rank < r.n; rank++ {
		out = out.Merge(r.hists[f][rank].Snapshot())
	}
	return out
}

// FamilySnapshot is one family's state: per-rank histograms plus the
// cross-rank merge.
type FamilySnapshot struct {
	Family  Family
	Merged  HistSnapshot
	PerRank []HistSnapshot
}

// Snapshot captures every family of the registry. The result is
// self-contained (no references into the live registry) and mergeable
// per family via HistSnapshot.Merge.
type Snapshot struct {
	Ranks    int
	Families []FamilySnapshot
}

// Snapshot captures all families. A nil registry yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{Ranks: r.n, Families: make([]FamilySnapshot, numFamilies)}
	for f := 0; f < int(numFamilies); f++ {
		fs := FamilySnapshot{Family: Family(f), PerRank: make([]HistSnapshot, r.n)}
		for rank := 0; rank < r.n; rank++ {
			fs.PerRank[rank] = r.hists[f][rank].Snapshot()
			fs.Merged = fs.Merged.Merge(fs.PerRank[rank])
		}
		s.Families[f] = fs
	}
	return s
}

// Family returns the snapshot of one family (zero value when absent).
func (s Snapshot) Family(f Family) FamilySnapshot {
	for _, fs := range s.Families {
		if fs.Family == f {
			return fs
		}
	}
	return FamilySnapshot{Family: f}
}

// Render formats the non-empty families as quantile rows, the per-rank
// latency complement to metrics.World.Render.
func (s Snapshot) Render() string {
	var b strings.Builder
	fams := make([]FamilySnapshot, 0, len(s.Families))
	for _, fs := range s.Families {
		if fs.Merged.Count > 0 {
			fams = append(fams, fs)
		}
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Family < fams[j].Family })
	for _, fs := range fams {
		fmt.Fprintf(&b, "%-16s %s\n", fs.Family, fs.Merged)
	}
	return b.String()
}
