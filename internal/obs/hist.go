// Package obs is the live observability layer: low-overhead latency
// histograms, Prometheus/expvar/pprof exposition, and snapshot plumbing
// for the runtime's recovery paths (send completion, receive wait,
// validate_all, agreement rounds, elections, retry backoff, chaos delay,
// failure-notification latency).
//
// The paper's methodology is only verifiable because every recovery
// action is observable as a communication-level event; internal/trace and
// internal/metrics capture those post-mortem. This package adds the
// *while-it-happens* view: HDR-style log-bucketed timers cheap enough to
// stay enabled under benchmark load, mergeable across ranks, and
// renderable as p50/p95/p99/max rows or Prometheus text exposition.
//
// A nil *Hist and a nil *Registry are valid everywhere and record
// nothing, matching the nil-safety discipline of trace.Recorder and
// metrics.World.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values are non-negative int64 nanoseconds. Values below
// subCount get exact unit buckets; above that, each power-of-two octave is
// split into subCount log-linear sub-buckets (the HDR histogram scheme
// with 2 significant bits). The top octave is 62 (bits.Len64 of MaxInt64
// is 63), so 248 buckets cover the whole non-negative int64 range —
// recording never clamps, the last bucket's upper bound is exactly
// MaxInt64, and relative quantile error is bounded at 25%.
const (
	subBits    = 2
	subCount   = 1 << subBits
	numBuckets = ((62-subBits)<<subBits + subCount + subCount)
)

// bucketIndex maps a non-negative value to its bucket index.
func bucketIndex(v int64) int {
	if v < subCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - 1
	sub := int((v >> uint(octave-subBits)) & (subCount - 1))
	return ((octave - subBits) << subBits) + subCount + sub
}

// BucketUpper returns the inclusive upper bound of bucket i — the value
// reported by Quantile when the target quantile lands in bucket i, and
// the "le" label of the Prometheus exposition.
func BucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	b := i - subCount
	octave := (b >> subBits) + subBits
	sub := int64(b & (subCount - 1))
	width := int64(1) << uint(octave-subBits)
	lower := int64(1)<<uint(octave) + sub*width
	return lower + width - 1
}

// Hist is a concurrent log-bucketed latency histogram. All mutating
// operations are single atomic adds (plus a CAS loop for the max), so a
// Hist can stay enabled on benchmark hot paths. The zero value is ready
// to use; a nil *Hist records nothing.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Hist) Observe(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue records one raw value (nanoseconds by convention).
func (h *Hist) RecordValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// recording may make the copy internally torn by a few events (count, sum
// and buckets are read independently); merge and quantile results remain
// well-defined because Quantile walks the bucket array itself.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		total += n
	}
	// Derive the count from the buckets so quantile walks always terminate
	// inside the array even under concurrent recording.
	s.Count = total
	return s
}

// HistSnapshot is an immutable histogram state. Snapshots merge
// associatively and commutatively: merging per-rank snapshots yields
// exactly the histogram a single shared recorder would have produced.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [numBuckets]int64
}

// Merge returns the combination of s and o.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Quantile returns the value at quantile q in [0,1] (in the recorded
// unit, nanoseconds by convention): the upper bound of the bucket holding
// the q-th recorded value, clamped to the observed maximum. Returns 0 for
// an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= target {
			ub := BucketUpper(i)
			if s.Max > 0 && ub > s.Max {
				return s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// String renders the canonical quantile row used by ftbench tables and
// EXPERIMENTS.md: p50/p95/p99/max as durations, plus the sample count.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v n=%d",
		time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.95)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(s.Max).Round(time.Microsecond),
		s.Count)
}
