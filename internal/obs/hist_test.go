package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries sweeps values around every power of two and checks
// the containment invariant: a value's bucket upper bound is >= the value,
// and the previous bucket's upper bound is < the value.
func TestBucketBoundaries(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	for shift := 3; shift < 62; shift++ {
		p := int64(1) << uint(shift)
		vals = append(vals, p-1, p, p+1)
	}
	vals = append(vals, int64(1)<<62, (int64(1)<<62)+12345, int64(^uint64(0)>>1)) // up to MaxInt64
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("value %d: bucket index %d out of range", v, i)
		}
		if up := BucketUpper(i); up < v {
			t.Fatalf("value %d landed in bucket %d with upper bound %d < value", v, i, up)
		}
		if i > 0 {
			if prev := BucketUpper(i - 1); prev >= v {
				t.Fatalf("value %d: previous bucket %d upper bound %d >= value (not tight)", v, i-1, prev)
			}
		}
	}
}

// TestBucketUpperMonotonic checks bucket upper bounds strictly increase.
func TestBucketUpperMonotonic(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		up := BucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d <= bucket %d upper %d", i, up, i-1, prev)
		}
		prev = up
	}
}

// TestRelativeError checks the HDR guarantee: the reported bound
// overshoots the true value by at most one sub-bucket width (25% with
// subBits=2).
func TestRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10000; trial++ {
		v := rng.Int63n(1 << 40)
		up := BucketUpper(bucketIndex(v))
		if v >= subCount {
			if float64(up-v) > 0.25*float64(v)+1 {
				t.Fatalf("value %d reported as %d: relative error %.3f", v, up, float64(up-v)/float64(v))
			}
		} else if up != v {
			t.Fatalf("small value %d must be exact, got %d", v, up)
		}
	}
}

func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func() HistSnapshot {
		var h Hist
		for i := 0; i < 500; i++ {
			h.RecordValue(rng.Int63n(1 << 30))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	ab_c := a.Merge(b).Merge(c)
	a_bc := a.Merge(b.Merge(c))
	ba_c := b.Merge(a).Merge(c)
	if ab_c != a_bc || ab_c != ba_c {
		t.Fatal("merge must be associative and commutative")
	}
	if ab_c.Count != a.Count+b.Count+c.Count || ab_c.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatal("merge must sum counts and sums")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.RecordValue(rng.Int63n(1 << 35))
	}
	s := h.Snapshot()
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %.2f = %d < quantile %.2f = %d", q, v, q-0.01, prev)
		}
		prev = v
	}
	if s.Quantile(1.0) != s.Max {
		t.Fatalf("p100 %d must equal max %d", s.Quantile(1.0), s.Max)
	}
	if s.Quantile(0) <= 0 && s.Count > 0 && s.Max > 0 {
		// p0 is the smallest bucket's bound; it may be 0 only if 0 was recorded.
		if s.Buckets[0] == 0 {
			t.Fatal("p0 returned 0 without zero-valued samples")
		}
	}
}

func TestQuantileExactSmallValues(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.RecordValue(1)
	}
	h.RecordValue(3)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %d want 1", got)
	}
	if got := s.Quantile(1.0); got != 3 {
		t.Fatalf("p100 = %d want 3", got)
	}
}

func TestEmptyAndNilHist(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.String() != "n=0" {
		t.Fatal("empty snapshot must render zeros")
	}
	var h *Hist
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 {
		t.Fatal("nil hist must be inert")
	}
	if h.Snapshot().Count != 0 {
		t.Fatal("nil hist snapshot must be empty")
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Hist
	h.RecordValue(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Buckets[0] != 1 || s.Sum != 0 {
		t.Fatalf("negative value must clamp to zero bucket: %+v", s)
	}
}

// TestConcurrentRecord exercises the atomic hot path under -race.
func TestConcurrentRecord(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines, per = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.RecordValue(rng.Int63n(1 << 25))
				if i%100 == 0 {
					_ = h.Snapshot() // concurrent snapshots must stay well-formed
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d want %d", s.Count, goroutines*per)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// TestMergedPerRankEqualsGlobal is the property test: recording each value
// into its rank's histogram and merging must equal recording everything
// into one global histogram.
func TestMergedPerRankEqualsGlobal(t *testing.T) {
	const ranks = 4
	rng := rand.New(rand.NewSource(99))
	reg := NewRegistry(ranks)
	var global Hist
	for i := 0; i < 20000; i++ {
		rank := rng.Intn(ranks)
		v := rng.Int63n(1 << 33)
		reg.Hist(SendComplete, rank).RecordValue(v)
		global.RecordValue(v)
	}
	merged := reg.Merged(SendComplete)
	want := global.Snapshot()
	if merged != want {
		t.Fatalf("merged per-rank snapshot differs from global:\nmerged: count=%d sum=%d max=%d\nglobal: count=%d sum=%d max=%d",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
}

func TestRegistrySnapshotAndRender(t *testing.T) {
	reg := NewRegistry(2)
	reg.Observe(0, RecvWait, 100*time.Microsecond)
	reg.Observe(1, RecvWait, 300*time.Microsecond)
	reg.Observe(0, ValidateAll, time.Millisecond)
	s := reg.Snapshot()
	if s.Ranks != 2 || len(s.Families) != int(numFamilies) {
		t.Fatalf("snapshot shape wrong: %+v", s)
	}
	rw := s.Family(RecvWait)
	if rw.Merged.Count != 2 || rw.PerRank[0].Count != 1 || rw.PerRank[1].Count != 1 {
		t.Fatalf("recv_wait counts wrong: %+v", rw)
	}
	out := s.Render()
	for _, want := range []string{"recv_wait", "validate_all", "p95="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "election") {
		t.Fatalf("render must skip empty families:\n%s", out)
	}

	// Out-of-range and nil observations must be inert.
	reg.Observe(-1, RecvWait, time.Second)
	reg.Observe(5, RecvWait, time.Second)
	reg.Observe(0, Family(99), time.Second)
	var nilReg *Registry
	nilReg.Observe(0, RecvWait, time.Second)
	if nilReg.Size() != 0 || nilReg.Snapshot().Ranks != 0 {
		t.Fatal("nil registry must be inert")
	}
	if reg.Merged(RecvWait).Count != 2 {
		t.Fatal("out-of-range observations must not land anywhere")
	}
}
