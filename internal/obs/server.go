package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Source is what a live exposition serves: the counter table and the
// histogram registry of the run in flight. Either field may be nil.
type Source struct {
	Metrics *metrics.World
	Obs     *Registry
}

// expvarSource backs the process-global expvar variable "ftmpi". expvar
// registration is permanent, so the variable always renders the most
// recently served source.
var expvarSource atomic.Pointer[func() Source]

var expvarOnce sync.Once

// Server is a live observability endpoint: Prometheus text on /metrics,
// the expvar JSON dump on /debug/vars, and the pprof suite under
// /debug/pprof/ so a chaos soak can be profiled mid-run.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition on addr (":0" picks a free port; use
// Addr to discover it). src is called per scrape, so the caller may swap
// worlds between runs by closing over mutable state.
func Serve(addr string, src func() Source) (*Server, error) {
	if src == nil {
		src = func() Source { return Source{} }
	}
	expvarOnce.Do(func() {
		expvar.Publish("ftmpi", expvar.Func(func() any {
			get := expvarSource.Load()
			if get == nil {
				return nil
			}
			s := (*get)()
			out := map[string]any{}
			if s.Metrics != nil {
				counters := map[string]int64{}
				for _, c := range metrics.Counters() {
					counters[c.String()] = s.Metrics.Total(c)
				}
				out["counters"] = counters
			}
			if s.Obs != nil {
				hists := map[string]map[string]int64{}
				for _, fs := range s.Obs.Snapshot().Families {
					m := fs.Merged
					hists[fs.Family.String()] = map[string]int64{
						"count": m.Count, "sum_ns": m.Sum, "max_ns": m.Max,
						"p50_ns": m.Quantile(0.50), "p95_ns": m.Quantile(0.95),
						"p99_ns": m.Quantile(0.99),
					}
				}
				out["histograms"] = hists
			}
			return out
		}))
	})
	fn := src
	expvarSource.Store(&fn)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := src()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, s.Metrics, s.Obs)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's actual listen address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
