package obs

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// WriteProm renders the Prometheus text exposition (format version
// 0.0.4) for a run: every metrics.World counter as a per-rank counter
// family `ftmpi_<name>_total{rank="r"}`, and every histogram family as a
// classic Prometheus histogram `ftmpi_<name>_seconds` merged over ranks,
// with per-rank sample counts alongside. All families are always emitted
// — an all-zero family is how a scraper learns the run had no such
// events — so scrapes are schema-stable across runs.
func WriteProm(w io.Writer, mets *metrics.World, reg *Registry) error {
	for _, c := range metrics.Counters() {
		name := "ftmpi_" + c.String() + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s per-rank %s counter\n# TYPE %s counter\n",
			name, c, name); err != nil {
			return err
		}
		for rank := 0; rank < mets.Size(); rank++ {
			if _, err := fmt.Fprintf(w, "%s{rank=\"%d\"} %d\n", name, rank, mets.Get(rank, c)); err != nil {
				return err
			}
		}
	}
	snap := reg.Snapshot()
	for _, f := range Families() {
		fs := snap.Family(f) // zero-valued for a nil registry: schema-stable
		name := "ftmpi_" + fs.Family.String() + "_seconds"
		if _, err := fmt.Fprintf(w, "# HELP %s %s latency histogram (merged over ranks)\n# TYPE %s histogram\n",
			name, fs.Family, name); err != nil {
			return err
		}
		if err := writeHist(w, name, fs.Merged); err != nil {
			return err
		}
		for rank, h := range fs.PerRank {
			if _, err := fmt.Fprintf(w, "%s_rank_count{rank=\"%d\"} %d\n", name, rank, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHist emits one histogram's cumulative buckets, sum and count.
// Empty buckets are skipped (except +Inf) to keep the exposition compact;
// cumulative semantics are unaffected.
func writeHist(w io.Writer, name string, s HistSnapshot) error {
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := float64(BucketUpper(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}
