package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestServeMetricsExpvarPprof(t *testing.T) {
	mets := metrics.NewWorld(3)
	mets.Add(0, metrics.Sends, 7)
	mets.Add(2, metrics.FramesRetried, 2)
	reg := NewRegistry(3)
	reg.Observe(1, RecvWait, 250*time.Microsecond)
	reg.Observe(1, SendComplete, 10*time.Microsecond)

	srv, err := Serve("127.0.0.1:0", func() Source { return Source{Metrics: mets, Obs: reg} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`ftmpi_sends_total{rank="0"} 7`,
		`ftmpi_frames_retried_total{rank="2"} 2`,
		"# TYPE ftmpi_recv_wait_seconds histogram",
		"ftmpi_recv_wait_seconds_count 1",
		`ftmpi_recv_wait_seconds_bucket{le="+Inf"} 1`,
		"ftmpi_send_complete_seconds_count 1",
		// schema-stable: empty families still present
		"# TYPE ftmpi_election_seconds histogram",
		"ftmpi_election_seconds_count 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	ft, ok := vars["ftmpi"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing ftmpi object:\n%s", body)
	}
	if _, ok := ft["counters"]; !ok {
		t.Fatalf("ftmpi expvar missing counters: %v", ft)
	}
	if _, ok := ft["histograms"]; !ok {
		t.Fatalf("ftmpi expvar missing histograms: %v", ft)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %q", code, body[:min(len(body), 200)])
	}
}

func TestServeNilSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	// nil metrics world has size 0, nil registry renders all-empty families;
	// the exposition must still be valid and schema-stable.
	if !strings.Contains(body, "ftmpi_send_complete_seconds_count 0") {
		t.Fatalf("nil source must still expose empty families:\n%s", body)
	}
}
