// Package election implements leader election over the fault-tolerant
// runtime.
//
// The paper's Figure 12 election is purely local: every rank scans the
// communicator with validate_rank and takes the lowest alive rank as the
// root. It needs no messages because the proposal's failure detector is
// perfect — all alive ranks converge on the same answer once failure
// notifications have propagated. LowestAlive reproduces it verbatim.
//
// As an extension (the paper cites reliable-broadcast/consensus work
// [11]-[14] as the general tool), ChangRoberts implements the classic
// ring-based election over the same fault-aware neighbor selection the
// ring application uses, electing the minimum alive rank by circulating
// candidate tokens. It demonstrates that an election can also be done
// with the paper's own neighbor-failover machinery when one does not
// want to rely on detector convergence. A failure notification that lands
// mid-election re-initiates the caller's candidacy, so the ring drains
// even when the dead rank swallowed the decisive token.
package election

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// LowestAlive is the paper's Figure 12 get_current_root: the first rank
// of the communicator whose locally known state is MPI_RANK_OK. It aborts
// the world if every rank appears failed (mirroring the figure's
// MPI_Abort), which cannot happen while the caller itself is alive and
// sane — the caller is a member.
func LowestAlive(p *mpi.Proc, c *mpi.Comm) int {
	start := time.Now()
	for r := 0; r < c.Size(); r++ {
		info, err := c.RankState(r)
		if err != nil {
			continue
		}
		if info.State == mpi.RankOK {
			p.Tracer().Record(p.Rank(), trace.Elected, r, -1, -1, "lowest-alive")
			p.Metrics().Inc(p.Rank(), metrics.NeighborScans)
			p.Obs().Observe(p.Rank(), obs.Election, time.Since(start))
			return r
		}
	}
	p.Abort(-1)
	return -1 // unreachable
}

// electionTag is the reserved user-level tag for Chang-Roberts tokens.
// Callers must not use it for application traffic during an election.
const electionTag = 1<<20 + 7

// ChangRoberts elects the minimum alive comm rank by circulating tokens
// around the fault-aware ring: each rank forwards tokens smaller than
// itself, swallows larger ones, and a rank that receives its own token
// has been elected; it then circulates an ELECTED announcement. Right
// neighbors are recomputed on send failure (Fig. 5 failover), and a
// failure notification that interrupts a receive re-injects the caller's
// own token: the dead rank may have swallowed the only token still
// circulating, and Chang-Roberts tolerates duplicate initiations — a
// smaller token swallows a larger one, so re-initiation can delay but
// never corrupt the outcome.
//
// Every alive member of c must call ChangRoberts concurrently. It returns
// the elected comm rank.
func ChangRoberts(p *mpi.Proc, c *mpi.Comm) (int, error) {
	me := c.Rank()
	mets := p.Metrics()
	mets.Inc(p.Rank(), metrics.Elections)
	start := time.Now()
	defer func() { p.Obs().Observe(p.Rank(), obs.Election, time.Since(start)) }()

	send := func(kind byte, val int) error {
		buf := make([]byte, 9)
		buf[0] = kind
		binary.LittleEndian.PutUint64(buf[1:], uint64(val))
		right := me
		for {
			right = nextAlive(c, right)
			if right == me {
				// Alone: elected by default.
				return errAlone
			}
			err := c.Send(right, electionTag, buf)
			if err == nil {
				return nil
			}
			if !mpi.IsRankFailStop(err) {
				return err
			}
			// Right neighbor died between the state scan and the send:
			// advance past it (Fig. 5 failover).
		}
	}

	const (
		kindToken   = 1
		kindElected = 2
	)
	if err := send(kindToken, me); err != nil {
		if err == errAlone {
			return me, nil
		}
		return -1, err
	}
	for {
		pl, _, err := c.Recv(mpi.AnySource, electionTag)
		if err != nil {
			if mpi.IsRankFailStop(err) {
				// A failure occurred mid-election. Recognizing it and
				// retrying the receive is not enough: any token the dead
				// rank held vanished with it, and with no token in flight
				// the ring would never drain. Re-initiate our candidacy —
				// duplicates are harmless, a lost minimum is not.
				recognizeAllKnown(c)
				if err := send(kindToken, me); err != nil {
					if err == errAlone {
						return me, nil
					}
					return -1, err
				}
				continue
			}
			return -1, err
		}
		if len(pl) != 9 {
			return -1, fmt.Errorf("election: malformed token %v", pl)
		}
		kind, val := pl[0], int(binary.LittleEndian.Uint64(pl[1:]))
		switch kind {
		case kindToken:
			switch {
			case val == me:
				// Our token survived the full circle: we are the leader.
				p.Tracer().Record(p.Rank(), trace.Elected, me, -1, -1, "chang-roberts self")
				if err := send(kindElected, me); err != nil && err != errAlone {
					return -1, err
				}
				return me, nil
			case val < me:
				if err := send(kindToken, val); err != nil && err != errAlone {
					return -1, err
				}
			default:
				// Swallow tokens larger than us (our own is still out there).
			}
		case kindElected:
			p.Tracer().Record(p.Rank(), trace.Elected, val, -1, -1, "chang-roberts")
			if val != me {
				if err := send(kindElected, val); err != nil && err != errAlone {
					return -1, err
				}
			}
			return val, nil
		default:
			return -1, fmt.Errorf("election: unknown message kind %d", kind)
		}
	}
}

// errAlone signals that the sender is the only alive member.
var errAlone = fmt.Errorf("election: alone in communicator")

// nextAlive returns the next comm rank to the right of r whose local
// state is OK (possibly wrapping back to the caller).
func nextAlive(c *mpi.Comm, r int) int {
	n := c.Size()
	for i := 0; i < n; i++ {
		r = (r + 1) % n
		info, err := c.RankState(r)
		if err == nil && info.State == mpi.RankOK {
			return r
		}
	}
	return r
}

// recognizeAllKnown locally recognizes every known failed member so that
// AnySource receives can resume.
func recognizeAllKnown(c *mpi.Comm) {
	for _, info := range c.FailedRanks() {
		if info.State == mpi.RankFailed {
			_ = c.RecognizeLocal(info.Rank)
		}
	}
}
