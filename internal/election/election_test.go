package election

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/detector"
	"repro/internal/mpi"
)

func runWorld(t *testing.T, n int, fn func(p *mpi.Proc) error) *mpi.RunResult {
	t.Helper()
	w, err := mpi.NewWorld(n, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		p.World().SetErrhandler(mpi.ErrorsReturn)
		return fn(p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestLowestAliveNoFailures(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 5, func(p *mpi.Proc) error {
		r := LowestAlive(p, p.World())
		mu.Lock()
		elected[p.Rank()] = r
		mu.Unlock()
		return nil
	})
	for rank := range res.Ranks {
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d, want 0", rank, elected[rank])
		}
	}
}

func TestLowestAliveSkipsFailedPrefix(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 5, func(p *mpi.Proc) error {
		if p.Rank() == 0 || p.Rank() == 1 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		r := LowestAlive(p, p.World())
		mu.Lock()
		elected[p.Rank()] = r
		mu.Unlock()
		return nil
	})
	for _, rank := range []int{2, 3, 4} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 2 {
			t.Fatalf("rank %d elected %d, want 2 (Fig. 12)", rank, elected[rank])
		}
	}
}

func TestChangRobertsNoFailures(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 6, func(p *mpi.Proc) error {
		leader, err := ChangRoberts(p, p.World())
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	for rank := range res.Ranks {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d, want 0", rank, elected[rank])
		}
	}
}

func TestChangRobertsWithPreFailedRanks(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 6, func(p *mpi.Proc) error {
		if p.Rank() == 0 || p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 4 {
			time.Sleep(time.Millisecond)
		}
		leader, err := ChangRoberts(p, p.World())
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	for _, rank := range []int{1, 2, 4, 5} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 1 {
			t.Fatalf("rank %d elected %d, want 1", rank, elected[rank])
		}
	}
}

// TestChangRobertsSurvivesMidElectionDeath: rank 2 dies as the election
// starts, but the failure notification is delayed — so survivors route
// tokens through the dead rank and lose them. The re-initiation on the
// eventual notification must drain the ring to the lowest alive rank
// instead of wedging.
func TestChangRobertsSurvivesMidElectionDeath(t *testing.T) {
	const n, victim = 5, 2
	w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second),
		mpi.WithNotifyDelay(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	elected := map[int]int{}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() == victim {
			p.Die()
		}
		leader, err := ChangRoberts(p, c)
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("election wedged; stuck ranks %v", res.Stuck)
	}
	if !res.Ranks[victim].Killed {
		t.Fatal("victim did not die")
	}
	for _, rank := range []int{0, 1, 3, 4} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d, want 0", rank, elected[rank])
		}
	}
}

// TestChangRobertsSurvivesSuspectFenceGapDeath is the heartbeat-detector
// variant: the victim is partitioned (so its peers falsely suspect it,
// and their fences can never arrive), then dies inside the gap between
// suspicion and fence-ack. Survivors' tokens routed through the victim
// are lost to the partition; the ground-truth confirmation must unblock
// the election and converge it on the lowest alive rank.
func TestChangRobertsSurvivesSuspectFenceGapDeath(t *testing.T) {
	const n, victim = 5, 2
	plan := chaos.NewPlan(23).
		Partition(victim, -1, 1, ^uint64(0)).
		Partition(-1, victim, 1, ^uint64(0))
	hb := detector.HeartbeatOptions{
		Interval:       2 * time.Millisecond,
		Timeout:        25 * time.Millisecond,
		SelfFenceAfter: 2 * time.Second, // the scripted death must win
	}
	w, err := mpi.NewWorld(n, mpi.WithChaos(plan), mpi.WithHeartbeat(hb),
		mpi.WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	elected := map[int]int{}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() == victim {
			// Stay alive past the suspicion deadline, then die before any
			// fence (or fence ack) can cross the partition.
			time.Sleep(60 * time.Millisecond)
			p.Die()
		}
		leader, err := ChangRoberts(p, c)
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("election wedged; stuck ranks %v", res.Stuck)
	}
	if !res.Ranks[victim].Killed {
		t.Fatal("victim did not die")
	}
	for _, rank := range []int{0, 1, 3, 4} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d, want 0", rank, elected[rank])
		}
	}
}

func TestChangRobertsPairAndSingleton(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 2, func(p *mpi.Proc) error {
		leader, err := ChangRoberts(p, p.World())
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	for rank := range res.Ranks {
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d", rank, elected[rank])
		}
	}
}
