package election

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

func runWorld(t *testing.T, n int, fn func(p *mpi.Proc) error) *mpi.RunResult {
	t.Helper()
	w, err := mpi.NewWorld(n, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		p.World().SetErrhandler(mpi.ErrorsReturn)
		return fn(p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestLowestAliveNoFailures(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 5, func(p *mpi.Proc) error {
		r := LowestAlive(p, p.World())
		mu.Lock()
		elected[p.Rank()] = r
		mu.Unlock()
		return nil
	})
	for rank := range res.Ranks {
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d, want 0", rank, elected[rank])
		}
	}
}

func TestLowestAliveSkipsFailedPrefix(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 5, func(p *mpi.Proc) error {
		if p.Rank() == 0 || p.Rank() == 1 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		r := LowestAlive(p, p.World())
		mu.Lock()
		elected[p.Rank()] = r
		mu.Unlock()
		return nil
	})
	for _, rank := range []int{2, 3, 4} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 2 {
			t.Fatalf("rank %d elected %d, want 2 (Fig. 12)", rank, elected[rank])
		}
	}
}

func TestChangRobertsNoFailures(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 6, func(p *mpi.Proc) error {
		leader, err := ChangRoberts(p, p.World())
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	for rank := range res.Ranks {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d, want 0", rank, elected[rank])
		}
	}
}

func TestChangRobertsWithPreFailedRanks(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 6, func(p *mpi.Proc) error {
		if p.Rank() == 0 || p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 4 {
			time.Sleep(time.Millisecond)
		}
		leader, err := ChangRoberts(p, p.World())
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	for _, rank := range []int{1, 2, 4, 5} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if elected[rank] != 1 {
			t.Fatalf("rank %d elected %d, want 1", rank, elected[rank])
		}
	}
}

func TestChangRobertsPairAndSingleton(t *testing.T) {
	var mu sync.Mutex
	elected := map[int]int{}
	res := runWorld(t, 2, func(p *mpi.Proc) error {
		leader, err := ChangRoberts(p, p.World())
		if err != nil {
			return err
		}
		mu.Lock()
		elected[p.Rank()] = leader
		mu.Unlock()
		return nil
	})
	for rank := range res.Ranks {
		if elected[rank] != 0 {
			t.Fatalf("rank %d elected %d", rank, elected[rank])
		}
	}
}
