// Package inject builds deterministic fault-injection plans for the MPI
// runtime. The paper (Section III-E) identifies fault injection as "the
// most popular technique available to application developers" for
// validating ABFT designs; this package is that tool for our runtime,
// with a precision real injectors lack: failures are placed at exact
// operation boundaries ("rank 2, immediately after its 3rd receive
// completes"), so every scenario figure of the paper replays identically
// on every run.
//
// A Plan is a set of triggers; Plan.Hook adapts it to mpi.Config.Hook.
// Triggers count events per (rank, hook point) and fire a kill when their
// condition matches. Random plans draw kill points from a seeded
// generator for soak-style testing, remaining reproducible per seed.
package inject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/mpi"
)

// Trigger decides whether the observed event should kill the rank. It
// runs under the plan's lock; implementations must not block.
type Trigger interface {
	// Matches inspects the event together with the per-(rank,point) event
	// ordinal (1-based: this is the n-th such event on this rank).
	Matches(ev mpi.HookEvent, ordinal int) bool
	// Describe renders the trigger for logs and DESIGN/EXPERIMENTS tables.
	Describe() string
}

// Plan is a deterministic fault-injection schedule.
type Plan struct {
	mu       sync.Mutex
	triggers []Trigger
	counts   map[countKey]int
	fired    map[string]bool
	log      []string
}

type countKey struct {
	rank  int
	point mpi.HookPoint
}

// NewPlan creates an empty plan (which never kills anything).
func NewPlan() *Plan {
	return &Plan{
		counts: make(map[countKey]int),
		fired:  make(map[string]bool),
	}
}

// Add appends triggers to the plan and returns the plan for chaining.
func (p *Plan) Add(ts ...Trigger) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.triggers = append(p.triggers, ts...)
	return p
}

// Hook adapts the plan to the runtime's hook interface. Each trigger
// fires at most once (a fail-stop rank cannot die twice).
func (p *Plan) Hook() mpi.HookFunc {
	return func(ev mpi.HookEvent) mpi.Action {
		p.mu.Lock()
		defer p.mu.Unlock()
		key := countKey{rank: ev.Rank, point: ev.Point}
		p.counts[key]++
		ordinal := p.counts[key]
		for _, tr := range p.triggers {
			desc := tr.Describe()
			if p.fired[desc] {
				continue
			}
			if tr.Matches(ev, ordinal) {
				p.fired[desc] = true
				p.log = append(p.log, fmt.Sprintf("kill rank %d at %s #%d (%s)",
					ev.Rank, ev.Point, ordinal, desc))
				return mpi.ActKill
			}
		}
		return mpi.ActNone
	}
}

// Log returns the human-readable record of fired triggers.
func (p *Plan) Log() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.log...)
}

// FiredCount returns how many triggers have fired.
func (p *Plan) FiredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fired)
}

// String lists the plan's triggers.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	descs := make([]string, len(p.triggers))
	for i, tr := range p.triggers {
		descs[i] = tr.Describe()
	}
	return strings.Join(descs, "; ")
}

// --- concrete triggers -------------------------------------------------------

type afterNth struct {
	rank  int
	point mpi.HookPoint
	n     int
}

// Matches implements Trigger.
func (t afterNth) Matches(ev mpi.HookEvent, ordinal int) bool {
	return ev.Rank == t.rank && ev.Point == t.point && ordinal == t.n
}

// Describe implements Trigger.
func (t afterNth) Describe() string {
	return fmt.Sprintf("rank %d @ %s #%d", t.rank, t.point, t.n)
}

// AfterNthRecv kills rank immediately after its n-th (1-based) observed
// receive completion — the Figure 6/7 placement ("P2 fails after
// receiving the buffer but before sending it on").
func AfterNthRecv(rank, n int) Trigger {
	return afterNth{rank: rank, point: mpi.HookAfterRecv, n: n}
}

// AfterNthSend kills rank immediately after its n-th send is accepted by
// the fabric — the Figure 8 placement ("P2 fails as P3 sends to P0"): the
// forwarded message stays deliverable.
func AfterNthSend(rank, n int) Trigger {
	return afterNth{rank: rank, point: mpi.HookAfterSend, n: n}
}

// BeforeNthSend kills rank just before its n-th send would be handed to
// the fabric: the message is never sent.
func BeforeNthSend(rank, n int) Trigger {
	return afterNth{rank: rank, point: mpi.HookBeforeSend, n: n}
}

type atCheckpoint struct {
	rank  int
	label string
}

// Matches implements Trigger. The plan's fired-once bookkeeping limits
// the kill to the first matching checkpoint.
func (t atCheckpoint) Matches(ev mpi.HookEvent, _ int) bool {
	return ev.Rank == t.rank && ev.Point == mpi.HookCheckpoint && ev.Label == t.label
}

// Describe implements Trigger.
func (t atCheckpoint) Describe() string {
	return fmt.Sprintf("rank %d @ checkpoint %q", t.rank, t.label)
}

// AtCheckpoint kills rank at its first Proc.Checkpoint(label).
func AtCheckpoint(rank int, label string) Trigger {
	return atCheckpoint{rank: rank, label: label}
}

// --- random schedules ---------------------------------------------------------

// RandomPlan kills `failures` distinct ranks drawn from candidates, each
// at a receive ordinal drawn from [1, maxOrdinal]. The schedule is fully
// determined by seed, making soak failures reproducible. It returns the
// plan and the chosen (rank, ordinal) pairs sorted by rank.
func RandomPlan(seed int64, candidates []int, failures, maxOrdinal int) (*Plan, [][2]int) {
	if failures > len(candidates) {
		failures = len(candidates)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(candidates))
	chosen := make([][2]int, 0, failures)
	for i := 0; i < failures; i++ {
		rank := candidates[perm[i]]
		ord := 1 + rng.Intn(maxOrdinal)
		chosen = append(chosen, [2]int{rank, ord})
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i][0] < chosen[j][0] })
	plan := NewPlan()
	for _, c := range chosen {
		plan.Add(AfterNthRecv(c[0], c[1]))
	}
	return plan, chosen
}
