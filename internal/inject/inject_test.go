package inject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestAfterNthRecvFiresExactlyOnce(t *testing.T) {
	plan := NewPlan().Add(AfterNthRecv(1, 2))
	hook := plan.Hook()
	ev := mpi.HookEvent{Rank: 1, Point: mpi.HookAfterRecv}
	if hook(ev) != mpi.ActNone {
		t.Fatal("first receive should not kill")
	}
	if hook(ev) != mpi.ActKill {
		t.Fatal("second receive should kill")
	}
	if hook(ev) != mpi.ActNone {
		t.Fatal("trigger must not fire twice")
	}
	if plan.FiredCount() != 1 {
		t.Fatalf("fired %d", plan.FiredCount())
	}
	if len(plan.Log()) != 1 || !strings.Contains(plan.Log()[0], "rank 1") {
		t.Fatalf("log %v", plan.Log())
	}
}

func TestTriggersAreRankAndPointScoped(t *testing.T) {
	plan := NewPlan().Add(AfterNthSend(2, 1))
	hook := plan.Hook()
	if hook(mpi.HookEvent{Rank: 2, Point: mpi.HookAfterRecv}) != mpi.ActNone {
		t.Fatal("recv must not match a send trigger")
	}
	if hook(mpi.HookEvent{Rank: 1, Point: mpi.HookAfterSend}) != mpi.ActNone {
		t.Fatal("other rank must not match")
	}
	if hook(mpi.HookEvent{Rank: 2, Point: mpi.HookAfterSend}) != mpi.ActKill {
		t.Fatal("matching event should kill")
	}
}

func TestBeforeNthSendOrdinalsIndependent(t *testing.T) {
	plan := NewPlan().Add(BeforeNthSend(0, 2))
	hook := plan.Hook()
	// AfterSend events must not advance the BeforeSend ordinal.
	hook(mpi.HookEvent{Rank: 0, Point: mpi.HookAfterSend})
	hook(mpi.HookEvent{Rank: 0, Point: mpi.HookAfterSend})
	if hook(mpi.HookEvent{Rank: 0, Point: mpi.HookBeforeSend}) != mpi.ActNone {
		t.Fatal("first before-send should pass")
	}
	if hook(mpi.HookEvent{Rank: 0, Point: mpi.HookBeforeSend}) != mpi.ActKill {
		t.Fatal("second before-send should kill")
	}
}

func TestAtCheckpoint(t *testing.T) {
	plan := NewPlan().Add(AtCheckpoint(3, "phase-2"))
	hook := plan.Hook()
	if hook(mpi.HookEvent{Rank: 3, Point: mpi.HookCheckpoint, Label: "phase-1"}) != mpi.ActNone {
		t.Fatal("wrong label must not match")
	}
	if hook(mpi.HookEvent{Rank: 3, Point: mpi.HookCheckpoint, Label: "phase-2"}) != mpi.ActKill {
		t.Fatal("matching checkpoint should kill")
	}
}

func TestRandomPlanDeterministicPerSeed(t *testing.T) {
	cands := []int{1, 2, 3, 4, 5, 6, 7}
	_, a := RandomPlan(42, cands, 3, 10)
	_, b := RandomPlan(42, cands, 3, 10)
	_, c := RandomPlan(43, cands, 3, 10)
	if len(a) != 3 {
		t.Fatalf("chose %d failures", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	same := true
	for i := range a {
		if len(c) != len(a) || a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Logf("seeds 42 and 43 coincided (possible but unlikely): %v", a)
	}
	seen := map[int]bool{}
	for _, pair := range a {
		if seen[pair[0]] {
			t.Fatalf("rank %d chosen twice: %v", pair[0], a)
		}
		seen[pair[0]] = true
		if pair[1] < 1 || pair[1] > 10 {
			t.Fatalf("ordinal out of range: %v", a)
		}
	}
}

func TestRandomPlanClampsFailures(t *testing.T) {
	_, chosen := RandomPlan(7, []int{1, 2}, 10, 3)
	if len(chosen) != 2 {
		t.Fatalf("chose %d, want clamp to 2", len(chosen))
	}
}

// TestPlanKillsInsideWorld wires a plan into a real world.
func TestPlanKillsInsideWorld(t *testing.T) {
	plan := NewPlan().Add(AtCheckpoint(1, "die-here"))
	w, err := mpi.NewWorld(2, mpi.WithDeadline(30*time.Second), mpi.WithHook(plan.Hook()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		p.World().SetErrhandler(mpi.ErrorsReturn)
		p.Checkpoint("warm-up")
		p.Checkpoint("die-here")
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Ranks[1].Killed || res.Ranks[0].Killed {
		t.Fatalf("exactly rank 1 should die: %+v", res.Ranks)
	}
	if plan.FiredCount() != 1 {
		t.Fatalf("fired %d", plan.FiredCount())
	}
	if plan.String() == "" {
		t.Fatal("plan description empty")
	}
}
