// Package reliable is the reliability sublayer between the MPI engine and
// a lossy fabric: per-(src,dst) monotonic sequence numbers, receiver-side
// deduplication and in-order resequencing, per-frame acknowledgements with
// bounded exponential-backoff retransmission, and end-to-end payload CRC
// verification. It turns the chaos fabric's lossy, duplicating, corrupting
// links back into the reliable FIFO channels the matching engine assumes.
//
// Escalation is the deliberate design point: when a link's retry budget is
// exhausted the peer is reported to the failure detector as failed. A
// partitioned or hopelessly lossy link thereby degrades into exactly the
// fail-stop failure model of Hursey & Graham 2011 — the run-through
// stabilization machinery (validate_all, iteration markers, Fig. 5
// failover) takes over from there, and the run still terminates with the
// paper's semantics.
//
// Layering: reliable wraps chaos, which wraps the base fabric. The
// reliable fabric intentionally does NOT implement transport.NonRetaining:
// the mpi world therefore makes a defensive copy of every user payload
// before Send, which is precisely what lets this layer retain the packet
// for retransmission without another copy.
package reliable

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// Options tune the retransmission machinery. Zero fields take defaults.
type Options struct {
	// RetryBase is the first retransmission backoff (default 2ms).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 50ms).
	RetryMax time.Duration
	// MaxRetries is the retransmission budget per frame; exceeding it
	// escalates the peer to fail-stop (default 12).
	MaxRetries int
	// Tick is the retry scan interval (default 1ms).
	Tick time.Duration
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 50 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 12
	}
	if o.Tick <= 0 {
		o.Tick = time.Millisecond
	}
	return o
}

// EventKind classifies a reliability event.
type EventKind int

const (
	// EvRetry is one retransmission of an unacknowledged frame.
	EvRetry EventKind = iota
	// EvReject is a frame discarded for an end-to-end payload CRC
	// mismatch; no ack is sent, so the sender retransmits the original.
	EvReject
	// EvDedup is a duplicate frame suppressed by sequence tracking.
	EvDedup
	// EvEscalate is a link whose retry budget was exhausted: the peer is
	// reported to the detector as failed.
	EvEscalate
	// EvDeadDrop is a frame silently dropped because its destination is
	// already marked fail-stop: the loss is deliberate (dead peers receive
	// nothing) and the event is what lets the trace audit account for it.
	EvDeadDrop
	// EvPurged is an inflight or partially resequenced frame abandoned when
	// a peer's link state was purged (PeerDown, PeerUp, escalation, or
	// fabric Close) — the other deliberate loss the audit must see.
	EvPurged
)

var eventNames = map[EventKind]string{
	EvRetry: "retry", EvReject: "reject", EvDedup: "dedup", EvEscalate: "escalate",
	EvDeadDrop: "dead-drop", EvPurged: "purged",
}

// String returns the event-kind name.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one reliability action, reported to the observer (the mpi
// world maps these to metrics counters and trace events). Src and Dst are
// the affected frame's link direction; Attempt is the retransmission
// ordinal for EvRetry/EvEscalate.
type Event struct {
	Kind    EventKind
	Src     int
	Dst     int
	Seq     uint64
	Attempt int
	// Token is the affected frame's causal message token (0 if unstamped),
	// threading the trace layer's message identity through every ARQ
	// action so lifecycles and the conservation audit line up.
	Token uint64
	// Backoff is the retransmission backoff applied for EvRetry events
	// (zero otherwise), so observers can histogram the ARQ's pacing.
	Backoff time.Duration
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d attempt=%d", e.Kind, e.Src, e.Dst, e.Seq, e.Attempt)
}

// ackKey identifies one acknowledgement owed on a directional link: the
// sender, the receiver, and the ARQ sequence number of the frame whose
// ack is being withheld by the ack gate.
type ackKey struct {
	src, dst int
	seq      uint64
}

// pending is one unacknowledged outbound frame.
type pending struct {
	pkt       *transport.Packet
	attempts  int
	nextRetry time.Time
}

// txLink is the sender half of one directional link.
type txLink struct {
	nextSeq  uint64
	inflight map[uint64]*pending
}

// rxLink is the receiver half: frames are deduplicated against next and
// held, and delivered upstream strictly in sequence order.
type rxLink struct {
	next     uint64 // the next sequence number to deliver upstream
	held     map[uint64]*transport.Packet
	draining bool // one goroutine at a time drains held, preserving order
}

// Fabric is the reliability sublayer. Wrap it around a (possibly chaotic)
// fabric and hand it to the mpi world like any other fabric.
type Fabric struct {
	inner   transport.Fabric
	opts    Options
	deliver transport.DeliverFunc

	// escalate, if set (before Start), is invoked — without any fabric
	// lock held — when a link's retry budget is exhausted. The mpi world
	// wires it to the failure detector's Kill.
	escalate func(peer int)
	// onEvent, if set (before Start), observes every reliability action.
	onEvent func(Event)
	// ackGate, if set (before Start), is consulted for every FRESH
	// sequenced data frame before its ack is sent. Returning true defers
	// the ack: the frame is still delivered upstream, but the sender keeps
	// retransmitting until the upper layer calls ReleaseAck — replication
	// chain mode uses this to withhold the primary's hop ack until the
	// frame has been forwarded down the chain. The gate runs without any
	// fabric lock held and must not re-enter the fabric.
	ackGate func(dst int, pkt *transport.Packet) bool

	mu       sync.Mutex
	tx       map[[2]int]*txLink
	rx       map[[2]int]*rxLink
	dead     map[int]bool // peers purged by PeerDown or escalation
	deferred map[ackKey]struct{}

	done    chan struct{}
	closing sync.Once
	wg      sync.WaitGroup
}

// Wrap builds a reliability fabric over inner.
func Wrap(inner transport.Fabric, opts Options) *Fabric {
	return &Fabric{
		inner:    inner,
		opts:     opts.withDefaults(),
		tx:       make(map[[2]int]*txLink),
		rx:       make(map[[2]int]*rxLink),
		dead:     make(map[int]bool),
		deferred: make(map[ackKey]struct{}),
		done:     make(chan struct{}),
	}
}

// Escalate registers the retry-exhaustion callback. Call before Start.
func (f *Fabric) Escalate(fn func(peer int)) { f.escalate = fn }

// Observe registers a reliability-event observer. Call before Start; the
// callback must not re-enter the fabric.
func (f *Fabric) Observe(fn func(Event)) { f.onEvent = fn }

// SetAckGate registers the deferred-ack predicate. Call before Start.
func (f *Fabric) SetAckGate(fn func(dst int, pkt *transport.Packet) bool) { f.ackGate = fn }

// ReleaseAck sends the acknowledgement previously withheld by the ack
// gate for the frame (src -> dst, seq). It is idempotent: if no ack is
// deferred for that frame (already released, purged, or never gated) the
// call is a no-op.
func (f *Fabric) ReleaseAck(src, dst int, seq uint64) {
	key := ackKey{src: src, dst: dst, seq: seq}
	f.mu.Lock()
	_, owed := f.deferred[key]
	delete(f.deferred, key)
	f.mu.Unlock()
	if owed {
		_ = f.inner.Send(&transport.Packet{
			Src: dst, Dst: src, Kind: transport.KindAck, Seq: seq,
		})
	}
}

// dropDeferredLocked discards deferred acks touching rank in either
// direction. Callers hold f.mu. The sender-side inflight state those acks
// would have retired is purged by the same PeerDown/PeerUp call, so no
// retransmission can be stranded by the dropped entries.
func (f *Fabric) dropDeferredLocked(rank int) {
	for key := range f.deferred {
		if key.src == rank || key.dst == rank {
			delete(f.deferred, key)
		}
	}
}

// Inner returns the wrapped fabric.
func (f *Fabric) Inner() transport.Fabric { return f.inner }

// Start starts the wrapped fabric with this layer's receive path spliced
// in, and launches the retransmission loop.
func (f *Fabric) Start(deliver transport.DeliverFunc) error {
	if deliver == nil {
		return fmt.Errorf("reliable: nil delivery callback")
	}
	f.deliver = deliver
	if err := f.inner.Start(f.onDeliver); err != nil {
		return err
	}
	f.wg.Add(1)
	go f.retryLoop()
	return nil
}

// Close stops the retransmission loop (abandoning unacknowledged frames)
// and closes the wrapped fabric. Every abandoned frame is reported as
// purged so the trace audit can account for sends the shutdown stranded.
func (f *Fabric) Close() error {
	f.closing.Do(func() { close(f.done) })
	f.wg.Wait()
	f.mu.Lock()
	f.deferred = make(map[ackKey]struct{})
	var purged []Event
	for key, tx := range f.tx {
		purged = f.appendTxPurges(purged, key, tx)
		delete(f.tx, key)
	}
	for key, rx := range f.rx {
		purged = f.appendRxPurges(purged, key, rx)
		delete(f.rx, key)
	}
	f.mu.Unlock()
	for _, ev := range purged {
		f.emit(ev)
	}
	return f.inner.Close()
}

// appendTxPurges collects one EvPurged per unacknowledged frame of a tx
// link being discarded. Callers hold f.mu; the events must be emitted
// after it is released.
func (f *Fabric) appendTxPurges(evs []Event, key [2]int, tx *txLink) []Event {
	for seq, p := range tx.inflight {
		evs = append(evs, Event{
			Kind: EvPurged, Src: key[0], Dst: key[1],
			Seq: seq, Attempt: p.attempts, Token: p.pkt.Token,
		})
	}
	return evs
}

// appendRxPurges collects one EvPurged per acknowledged-but-undelivered
// frame of an rx link being discarded (held for resequencing when the
// link state died). Callers hold f.mu.
func (f *Fabric) appendRxPurges(evs []Event, key [2]int, rx *rxLink) []Event {
	for seq, p := range rx.held {
		evs = append(evs, Event{
			Kind: EvPurged, Src: key[0], Dst: key[1], Seq: seq, Token: p.Token,
		})
	}
	return evs
}

// emit reports a reliability event to the observer.
func (f *Fabric) emit(e Event) {
	if f.onEvent != nil {
		f.onEvent(e)
	}
}

// PeerDown purges all state toward and from a failed peer: inflight
// frames stop retrying in both directions (frames TO the peer have a dead
// destination — fail-stop, not lossy — and frames FROM it die with the
// sender: a dead process retransmits nothing, and letting its orphaned
// ARQ state exhaust its budget would escalate — kill — the innocent
// receiver). Partially resequenced inbound state is released. The mpi
// world calls it from its detector subscription.
func (f *Fabric) PeerDown(rank int) {
	f.mu.Lock()
	f.dead[rank] = true
	f.dropDeferredLocked(rank)
	var purged []Event
	for key, tx := range f.tx {
		if key[1] == rank || key[0] == rank {
			purged = f.appendTxPurges(purged, key, tx)
			delete(f.tx, key)
		}
	}
	for key, rx := range f.rx {
		if key[0] == rank {
			purged = f.appendRxPurges(purged, key, rx)
			delete(f.rx, key)
		}
	}
	f.mu.Unlock()
	for _, ev := range purged {
		f.emit(ev)
	}
}

// PeerUp reverses PeerDown for a revived peer: the dead flag is cleared
// and every sequencing link touching the slot — both tx directions AND
// both rx directions — is purged so all four restart from sequence 1 with
// the new incarnation. (PeerDown leaves the rx state of links *toward*
// the dead peer in place, since a dead destination sees no new frames; a
// reincarnation reusing the slot would have its fresh seq=1 frames
// deduplicated against that stale watermark.) Stale frames from the old
// incarnation that the restarted links would re-accept are rejected one
// layer up by the engine's generation fence — which is why callers must
// install the slot's new-generation engine (arming that fence) BEFORE
// calling PeerUp: purging rx dedup while the fence still reports the old
// generation would let such a frame be re-accepted.
func (f *Fabric) PeerUp(rank int) {
	f.mu.Lock()
	delete(f.dead, rank)
	f.dropDeferredLocked(rank)
	var purged []Event
	for key, tx := range f.tx {
		if key[0] == rank || key[1] == rank {
			purged = f.appendTxPurges(purged, key, tx)
			delete(f.tx, key)
		}
	}
	for key, rx := range f.rx {
		if key[0] == rank || key[1] == rank {
			purged = f.appendRxPurges(purged, key, rx)
			delete(f.rx, key)
		}
	}
	f.mu.Unlock()
	for _, ev := range purged {
		f.emit(ev)
	}
}

// Send stamps the packet with the link's next sequence number and its
// end-to-end payload CRC, records it for retransmission, and forwards it.
// The packet (header and payload) is retained until acknowledged; callers
// must not mutate it after Send — the mpi world guarantees this by
// copying user buffers (the fabric is not NonRetaining).
func (f *Fabric) Send(pkt *transport.Packet) error {
	select {
	case <-f.done:
		return nil
	default:
	}
	if pkt.Kind == transport.KindControl {
		// Failure-detection control traffic is the liveness signal: it
		// bypasses ARQ (no sequencing, no retransmission — a lost ping is
		// itself information) and ignores this layer's dead-peer bookkeeping,
		// because the detector, not the ARQ, owns liveness verdicts.
		return f.inner.Send(pkt)
	}
	f.mu.Lock()
	if f.dead[pkt.Dst] {
		f.mu.Unlock()
		// Fail-stop peer: silent drop per the Fabric contract, but
		// observable — the trace audit accounts the message as mail to a
		// known-dead destination rather than an unexplained loss.
		f.emit(Event{Kind: EvDeadDrop, Src: pkt.Src, Dst: pkt.Dst, Token: pkt.Token})
		return nil
	}
	key := [2]int{pkt.Src, pkt.Dst}
	tx := f.tx[key]
	if tx == nil {
		tx = &txLink{inflight: make(map[uint64]*pending)}
		f.tx[key] = tx
	}
	tx.nextSeq++
	pkt.Seq = tx.nextSeq
	pkt.Crc = transport.PayloadCrc(pkt.Payload)
	tx.inflight[pkt.Seq] = &pending{pkt: pkt, nextRetry: time.Now().Add(f.opts.RetryBase)}
	f.mu.Unlock()
	return f.inner.Send(pkt)
}

// onDeliver is the receive path: acks retire inflight frames; sequenced
// frames are CRC-checked, acknowledged, deduplicated, and released
// upstream strictly in order. No fabric lock is held while calling the
// inner Send (the ack) or the upstream deliver — over the synchronous
// Local fabric both re-enter this layer on the same goroutine.
func (f *Fabric) onDeliver(dst int, pkt *transport.Packet) {
	if pkt.Kind == transport.KindControl {
		// Control frames carry the heartbeat sequence in Seq, not an ARQ
		// sequence: pass them up before any sequencing or dead-peer check
		// (a "dead" verdict here may be exactly what the detector is busy
		// disproving or confirming).
		f.deliver(dst, pkt)
		return
	}
	if pkt.Kind == transport.KindAck {
		f.mu.Lock()
		if tx := f.tx[[2]int{pkt.Dst, pkt.Src}]; tx != nil {
			delete(tx.inflight, pkt.Seq)
		}
		f.mu.Unlock()
		return
	}
	if pkt.Seq == 0 {
		f.deliver(dst, pkt) // unsequenced traffic passes through
		return
	}
	if transport.PayloadCrc(pkt.Payload) != pkt.Crc {
		// Corrupted above the wire codec (or a codec-less fabric). No ack:
		// the sender's retransmission carries the intact original.
		f.emit(Event{Kind: EvReject, Src: pkt.Src, Dst: dst, Seq: pkt.Seq, Token: pkt.Token})
		return
	}
	// The ack gate runs before any lock: it may consult upper-layer state
	// (replication group shape) but must not re-enter the fabric.
	gated := f.ackGate != nil && f.ackGate(dst, pkt)
	akey := ackKey{src: pkt.Src, dst: dst, seq: pkt.Seq}

	key := [2]int{pkt.Src, dst}
	f.mu.Lock()
	if f.dead[pkt.Src] {
		f.mu.Unlock()
		return // straggler from a fail-stop peer
	}
	rx := f.rx[key]
	if rx == nil {
		rx = &rxLink{next: 1, held: make(map[uint64]*transport.Packet)}
		f.rx[key] = rx
	}
	dup := pkt.Seq < rx.next || rx.held[pkt.Seq] != nil
	withhold := false
	if dup {
		// A retransmission. Normally re-acked (the previous ack may have
		// been lost) — but if the original's ack is still gate-deferred,
		// stay silent: the upper layer has not released the frame yet, and
		// acking the duplicate would defeat the gate.
		_, withhold = f.deferred[akey]
	} else if gated {
		f.deferred[akey] = struct{}{}
		withhold = true
	}
	if dup {
		f.mu.Unlock()
		if !withhold {
			// Ack before anything else: re-acking is what stops the retries.
			_ = f.inner.Send(&transport.Packet{
				Src: dst, Dst: pkt.Src, Kind: transport.KindAck, Seq: pkt.Seq,
			})
		}
		f.emit(Event{Kind: EvDedup, Src: pkt.Src, Dst: dst, Seq: pkt.Seq, Token: pkt.Token})
		return
	}
	f.mu.Unlock()

	if !withhold {
		// Ack first, before delivery: a lost ack is repaired by the dup
		// path above when the retransmission arrives.
		_ = f.inner.Send(&transport.Packet{
			Src: dst, Dst: pkt.Src, Kind: transport.KindAck, Seq: pkt.Seq,
		})
	}

	f.mu.Lock()
	// Re-look up the link: a PeerDown/PeerUp between the two critical
	// sections may have purged and recreated it.
	rx = f.rx[key]
	if rx == nil {
		rx = &rxLink{next: 1, held: make(map[uint64]*transport.Packet)}
		f.rx[key] = rx
	}
	if pkt.Seq < rx.next || rx.held[pkt.Seq] != nil {
		// Raced with a concurrent delivery of the same frame between the
		// two critical sections; treat as the duplicate it is.
		f.mu.Unlock()
		f.emit(Event{Kind: EvDedup, Src: pkt.Src, Dst: dst, Seq: pkt.Seq, Token: pkt.Token})
		return
	}
	rx.held[pkt.Seq] = pkt
	if rx.draining {
		f.mu.Unlock()
		return // the draining goroutine will pick it up in order
	}
	rx.draining = true
	for {
		p := rx.held[rx.next]
		if p == nil {
			rx.draining = false
			f.mu.Unlock()
			return
		}
		delete(rx.held, rx.next)
		rx.next++
		f.mu.Unlock()
		f.deliver(dst, p)
		f.mu.Lock()
	}
}

// retryLoop periodically rescans inflight frames, retransmitting overdue
// ones with exponential backoff and escalating links whose budget is
// exhausted. Sends and escalations run outside the fabric lock.
func (f *Fabric) retryLoop() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.opts.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-f.done:
			return
		case now := <-ticker.C:
			var resend []*transport.Packet
			var retryEvs []Event
			var escalations []Event
			var purged []Event
			f.mu.Lock()
			for key, tx := range f.tx {
				exhausted := false
				for seq, p := range tx.inflight {
					if now.Before(p.nextRetry) {
						continue
					}
					p.attempts++
					if p.attempts > f.opts.MaxRetries {
						exhausted = true
						escalations = append(escalations, Event{
							Kind: EvEscalate, Src: key[0], Dst: key[1],
							Seq: seq, Attempt: p.attempts, Token: p.pkt.Token,
						})
						break
					}
					backoff := f.opts.RetryBase << (p.attempts - 1)
					if backoff > f.opts.RetryMax {
						backoff = f.opts.RetryMax
					}
					p.nextRetry = now.Add(backoff)
					resend = append(resend, p.pkt)
					retryEvs = append(retryEvs, Event{
						Kind: EvRetry, Src: key[0], Dst: key[1],
						Seq: seq, Attempt: p.attempts, Token: p.pkt.Token, Backoff: backoff,
					})
				}
				if exhausted {
					// The peer is being demoted to fail-stop: every frame
					// to it is undeliverable, not just the overdue one.
					// Account the abandoned inflight frames before the link
					// state vanishes (PeerDown below purges the rest).
					f.dead[key[1]] = true
					purged = f.appendTxPurges(purged, key, tx)
					delete(f.tx, key)
				}
			}
			f.mu.Unlock()
			for i, pkt := range resend {
				_ = f.inner.Send(pkt)
				f.emit(retryEvs[i])
			}
			for _, ev := range purged {
				f.emit(ev)
			}
			for _, ev := range escalations {
				f.PeerDown(ev.Dst) // purge every link touching the demoted peer
				f.emit(ev)
				if f.escalate != nil {
					f.escalate(ev.Dst)
				}
			}
		}
	}
}
