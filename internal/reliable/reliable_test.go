package reliable

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// fakeFabric is a scriptable in-memory fabric: mangle, if set, decides
// per send attempt what actually reaches the wire. Delivery is
// synchronous on the sender's goroutine, like transport.Local — the
// harshest reentrancy case for the reliability layer.
type fakeFabric struct {
	mu      sync.Mutex
	deliver transport.DeliverFunc
	// mangle maps one outbound packet to the packets actually delivered
	// (nil = default pass-through). It sees every attempt, including
	// retransmissions and acks.
	mangle func(pkt *transport.Packet) []*transport.Packet
	sends  int
}

func (f *fakeFabric) Start(d transport.DeliverFunc) error { f.deliver = d; return nil }
func (f *fakeFabric) Close() error                        { return nil }

func (f *fakeFabric) Send(pkt *transport.Packet) error {
	f.mu.Lock()
	f.sends++
	mangle := f.mangle
	f.mu.Unlock()
	out := []*transport.Packet{pkt}
	if mangle != nil {
		out = mangle(pkt)
	}
	for _, p := range out {
		f.deliver(p.Dst, p)
	}
	return nil
}

// sink records upstream deliveries.
type sink struct {
	mu  sync.Mutex
	got []*transport.Packet
}

func (s *sink) deliver(_ int, pkt *transport.Packet) {
	s.mu.Lock()
	s.got = append(s.got, pkt)
	s.mu.Unlock()
}

func (s *sink) packets() []*transport.Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*transport.Packet(nil), s.got...)
}

func (s *sink) waitFor(t *testing.T, n int) []*transport.Packet {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := s.packets(); len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d packets (have %d)", n, len(s.packets()))
		}
		time.Sleep(time.Millisecond)
	}
}

// fastOpts keeps retransmission tests snappy.
func fastOpts() Options {
	return Options{RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond, MaxRetries: 8, Tick: time.Millisecond}
}

// assertInOrderTags checks upstream delivery carries tags 0..n-1 exactly
// once, in order.
func assertInOrderTags(t *testing.T, got []*transport.Packet, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("delivered %d packets upstream, want %d", len(got), n)
	}
	for i, pkt := range got {
		if pkt.Tag != i {
			t.Fatalf("position %d holds tag %d — dedup or resequencing failed", i, pkt.Tag)
		}
	}
}

// TestPassThroughInOrder: over a clean fabric the layer is invisible —
// everything arrives exactly once, in order, and all acks retire.
func TestPassThroughInOrder(t *testing.T) {
	inner := &fakeFabric{}
	f := Wrap(inner, fastOpts())
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	assertInOrderTags(t, s.waitFor(t, n), n)
	f.mu.Lock()
	inflight := len(f.tx[[2]int{0, 1}].inflight)
	f.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d frames still inflight after synchronous acks", inflight)
	}
}

// TestRetransmitOnLoss drops the first wire attempt of every data frame:
// retransmission must deliver all of them exactly once, in order.
func TestRetransmitOnLoss(t *testing.T) {
	inner := &fakeFabric{}
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	inner.mangle = func(pkt *transport.Packet) []*transport.Packet {
		if pkt.Kind == transport.KindAck {
			return []*transport.Packet{pkt}
		}
		mu.Lock()
		defer mu.Unlock()
		if !seen[pkt.Seq] {
			seen[pkt.Seq] = true
			return nil // first attempt lost
		}
		return []*transport.Packet{pkt}
	}
	var events []Event
	var evMu sync.Mutex
	f := Wrap(inner, fastOpts())
	f.Observe(func(e Event) {
		evMu.Lock()
		events = append(events, e)
		evMu.Unlock()
	})
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	assertInOrderTags(t, s.waitFor(t, n), n)
	evMu.Lock()
	retries := 0
	for _, e := range events {
		if e.Kind == EvRetry {
			retries++
		}
	}
	evMu.Unlock()
	if retries < n {
		t.Fatalf("observed %d retries, want >= %d (every first attempt was lost)", retries, n)
	}
}

// TestDedupOnDuplicate doubles every wire frame: upstream must still see
// each exactly once.
func TestDedupOnDuplicate(t *testing.T) {
	inner := &fakeFabric{}
	inner.mangle = func(pkt *transport.Packet) []*transport.Packet {
		return []*transport.Packet{pkt, pkt.Clone()}
	}
	f := Wrap(inner, fastOpts())
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // allow any spurious duplicate through
	assertInOrderTags(t, s.waitFor(t, n), n)
}

// TestReorderResequenced swaps adjacent wire frames: upstream delivery
// must still be in sequence order.
func TestReorderResequenced(t *testing.T) {
	inner := &fakeFabric{}
	var held *transport.Packet
	var mu sync.Mutex
	inner.mangle = func(pkt *transport.Packet) []*transport.Packet {
		if pkt.Kind == transport.KindAck {
			return []*transport.Packet{pkt}
		}
		mu.Lock()
		defer mu.Unlock()
		if held == nil {
			held = pkt
			return nil
		}
		out := []*transport.Packet{pkt, held} // newer first: swapped
		held = nil
		return out
	}
	f := Wrap(inner, fastOpts())
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	assertInOrderTags(t, s.waitFor(t, n), n)
}

// TestCorruptionRejectedThenRecovered corrupts the first wire attempt of
// one frame: the CRC check must reject it (no corrupted payload reaches
// upstream) and the retransmission must deliver the intact original.
func TestCorruptionRejectedThenRecovered(t *testing.T) {
	inner := &fakeFabric{}
	corrupted := false
	var mu sync.Mutex
	inner.mangle = func(pkt *transport.Packet) []*transport.Packet {
		mu.Lock()
		defer mu.Unlock()
		if pkt.Kind != transport.KindAck && pkt.Seq == 3 && !corrupted {
			corrupted = true
			bad := pkt.Clone()
			bad.Payload[0] ^= 0xff
			return []*transport.Packet{bad}
		}
		return []*transport.Packet{pkt}
	}
	var rejects int
	var evMu sync.Mutex
	f := Wrap(inner, fastOpts())
	f.Observe(func(e Event) {
		if e.Kind == EvReject {
			evMu.Lock()
			rejects++
			evMu.Unlock()
		}
	})
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const n = 5
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		want[i] = []byte{byte(10 + i), byte(20 + i)}
		if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: i, Payload: want[i]}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.waitFor(t, n)
	assertInOrderTags(t, got, n)
	for i, pkt := range got {
		if !bytes.Equal(pkt.Payload, want[i]) {
			t.Fatalf("payload %d corrupted above the reliability layer: %v", i, pkt.Payload)
		}
	}
	evMu.Lock()
	defer evMu.Unlock()
	if rejects != 1 {
		t.Fatalf("observed %d CRC rejects, want 1", rejects)
	}
}

// TestEscalationOnDeadLink blackholes every frame toward rank 1: the
// retry budget must exhaust and report rank 1 to the escalation callback
// exactly once, after which sends to it drop silently without retrying.
func TestEscalationOnDeadLink(t *testing.T) {
	inner := &fakeFabric{}
	inner.mangle = func(pkt *transport.Packet) []*transport.Packet {
		if pkt.Dst == 1 {
			return nil // partitioned
		}
		return []*transport.Packet{pkt}
	}
	escalated := make(chan int, 4)
	f := Wrap(inner, fastOpts())
	f.Escalate(func(peer int) { escalated <- peer })
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: 0, Payload: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(&transport.Packet{Src: 0, Dst: 2, Tag: 0, Payload: []byte("fine")}); err != nil {
		t.Fatal(err)
	}
	select {
	case peer := <-escalated:
		if peer != 1 {
			t.Fatalf("escalated peer %d, want 1", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry exhaustion never escalated")
	}
	// The healthy link was unaffected.
	got := s.waitFor(t, 1)
	if got[0].Dst != 2 {
		t.Fatalf("unexpected upstream packet %v", got[0])
	}
	// Post-escalation sends are silent drops: no retries, no 2nd escalation.
	if err := f.Send(&transport.Packet{Src: 0, Dst: 1, Tag: 1}); err != nil {
		t.Fatalf("send to escalated peer must drop silently, got %v", err)
	}
	select {
	case peer := <-escalated:
		t.Fatalf("peer %d escalated twice", peer)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestUnsequencedPassThrough: packets with Seq 0 from a world without the
// sublayer's sender half (defensive robustness) pass straight upstream.
func TestUnsequencedPassThrough(t *testing.T) {
	inner := &fakeFabric{}
	f := Wrap(inner, fastOpts())
	s := &sink{}
	if err := f.Start(s.deliver); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inner.deliver(1, &transport.Packet{Src: 0, Dst: 1, Tag: 9})
	if got := s.waitFor(t, 1); got[0].Tag != 9 {
		t.Fatalf("unsequenced packet mangled: %v", got[0])
	}
}
