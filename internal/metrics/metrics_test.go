package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestAddGetTotal(t *testing.T) {
	w := NewWorld(3)
	w.Inc(0, Sends)
	w.Add(1, Sends, 4)
	w.Add(2, BytesSent, 100)
	if w.Get(0, Sends) != 1 || w.Get(1, Sends) != 4 || w.Get(2, Sends) != 0 {
		t.Fatal("per-rank values wrong")
	}
	if w.Total(Sends) != 5 || w.Total(BytesSent) != 100 || w.Total(Recvs) != 0 {
		t.Fatal("totals wrong")
	}
	if w.Size() != 3 {
		t.Fatalf("size %d", w.Size())
	}
}

func TestNilWorldIsInert(t *testing.T) {
	var w *World
	w.Inc(0, Sends)
	w.Add(1, Recvs, 5)
	if w.Get(0, Sends) != 0 || w.Total(Recvs) != 0 || w.Size() != 0 {
		t.Fatal("nil world must be inert")
	}
	if w.Snapshot() != nil || w.Render() != "" {
		t.Fatal("nil world renders nothing")
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	w := NewWorld(2)
	w.Inc(-1, Sends)
	w.Inc(5, Sends)
	w.Add(0, Counter(999), 3)
	if w.Total(Sends) != 0 {
		t.Fatal("out-of-range increments must be dropped")
	}
}

func TestConcurrentCounting(t *testing.T) {
	w := NewWorld(4)
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Inc(rank, Recvs)
			}
		}(rank)
	}
	wg.Wait()
	if w.Total(Recvs) != 4000 {
		t.Fatalf("total %d", w.Total(Recvs))
	}
}

func TestSnapshotShape(t *testing.T) {
	w := NewWorld(2)
	w.Inc(1, Errors)
	snap := w.Snapshot()
	if len(snap) != 2 || snap[1][Errors] != 1 || snap[0][Errors] != 0 {
		t.Fatalf("snapshot %v", snap)
	}
}

func TestRenderShowsOnlyNonZeroColumns(t *testing.T) {
	w := NewWorld(2)
	w.Inc(0, Resends)
	out := w.Render()
	if !strings.Contains(out, "resends") {
		t.Fatalf("missing resends column:\n%s", out)
	}
	if strings.Contains(out, "alltoall") || strings.Contains(out, "bytes_sent") {
		t.Fatalf("zero column rendered:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Fatalf("missing totals row:\n%s", out)
	}
}

func TestCounterNamesComplete(t *testing.T) {
	for _, c := range Counters() {
		if strings.HasPrefix(c.String(), "counter(") {
			t.Fatalf("counter %d missing name", int(c))
		}
	}
	if Counter(999).String() == "" {
		t.Fatal("unknown counter should render")
	}
}
