// Package metrics collects per-rank operation counters for the
// quantitative experiments (EXPERIMENTS.md). Counters are cheap atomic
// increments so they can stay enabled in benchmarks, and a nil *World is
// valid everywhere and counts nothing.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"text/tabwriter"
)

// Counter enumerates the tracked per-rank quantities.
type Counter int

const (
	// Sends counts point-to-point sends handed to the fabric.
	Sends Counter = iota
	// Recvs counts successfully completed receives.
	Recvs
	// BytesSent counts payload bytes handed to the fabric.
	BytesSent
	// BytesRecv counts payload bytes delivered to completed receives.
	BytesRecv
	// Errors counts MPI operations that returned an error.
	Errors
	// Resends counts application-level retransmissions (Fig. 7 recovery).
	Resends
	// DupsDropped counts duplicates suppressed by iteration markers (Fig. 10).
	DupsDropped
	// DupsForwarded counts duplicates forwarded because markers were off (Fig. 8).
	DupsForwarded
	// Iterations counts completed ring iterations.
	Iterations
	// Validates counts completed MPI_Comm_validate_all operations.
	Validates
	// AgreementMsgs counts internal consensus protocol messages.
	AgreementMsgs
	// Elections counts leader-election rounds performed.
	Elections
	// NeighborScans counts fault-aware neighbor recomputations (Fig. 4 loops).
	NeighborScans
	// FramesDropped counts frames the chaos fabric dropped (including
	// frames eaten by a scheduled link partition).
	FramesDropped
	// FramesDuplicated counts frames the chaos fabric sent twice.
	FramesDuplicated
	// FramesCorrupted counts frames whose payload the chaos fabric bit-flipped.
	FramesCorrupted
	// FramesDelayed counts frames the chaos fabric held for delay jitter.
	FramesDelayed
	// FramesReordered counts frames the chaos fabric delivered out of order.
	FramesReordered
	// FramesRetried counts reliability-sublayer retransmissions.
	FramesRetried
	// FramesRejected counts frames the reliability sublayer rejected for an
	// end-to-end payload CRC mismatch (corruption above the wire codec).
	FramesRejected
	// FramesDeduped counts duplicate frames suppressed by receiver-side
	// sequence tracking before they could reach the matching engine.
	FramesDeduped
	// LinkEscalations counts links whose retry budget was exhausted,
	// demoting the peer to fail-stop via the detector.
	LinkEscalations
	// Heartbeats counts heartbeat pings sent by each rank's monitor.
	Heartbeats
	// Suspicions counts suspicions raised by each rank's monitor.
	Suspicions
	// FalseSuspicions counts suspicions raised against ranks that were
	// still alive at the time (chaos delay or partition induced).
	FalseSuspicions
	// SuspicionsCleared counts suspicions withdrawn when a late heartbeat
	// arrived before the fence completed.
	SuspicionsCleared
	// Fences counts fence notices sent (including resends).
	Fences
	// SelfFences counts ranks that fenced themselves on stale acks.
	SelfFences
	// Confirms counts suspected ranks confirmed dead by each observer.
	Confirms
	// ControlFrames counts every failure-detection control frame sent
	// (heartbeats, probes, fences, acks) — the quantity the SWIM mode
	// keeps O(1) per rank per protocol period where the mesh pays O(N).
	ControlFrames
	// SwimProbes counts direct SWIM probes launched.
	SwimProbes
	// SwimIndirectProbes counts indirect probe requests sent to relays.
	SwimIndirectProbes
	// SwimProbeTimeouts counts probe transactions that expired unanswered
	// (the target became a suspect).
	SwimProbeTimeouts
	// GossipEvents counts membership events this rank originated into the
	// gossip stream (suspicions, refutations, confirmations).
	GossipEvents
	// GossipLearns counts membership events first learned from a
	// piggybacked envelope.
	GossipLearns
	// GossipDecodeErrors counts control payloads dropped because they
	// failed to decode (chaos corruption).
	GossipDecodeErrors
	// Respawns counts dead slots reincarnated at a new generation.
	Respawns
	// Shrinks counts Comm.Shrink operations completed.
	Shrinks
	// StaleGenRejected counts frames rejected by the engine's generation
	// fence: traffic stamped for (or by) a dead incarnation of a slot.
	StaleGenRejected
	// ReplicaSends counts physical copies fanned out (or chain-forwarded)
	// to replicas of a logical destination beyond what a non-replicated
	// send would have cost — the wire amplification of replication mode.
	ReplicaSends
	// ReplicaPromotions counts standby replicas promoted to primary after
	// the death of a group member (transparent failover events).
	ReplicaPromotions
	// ReplicaDedupDrops counts fan-out duplicates suppressed by the
	// receiver's replication-sequence tracking.
	ReplicaDedupDrops
	// ReplicaRefills counts replica-group slots automatically respawned by
	// the world after a detector confirm dropped the group below R
	// (re-replication events, as opposed to app-requested Spawns).
	ReplicaRefills
	// ChainResends counts chain-outbox entries re-sent to a freshly
	// promoted primary because the old primary died before every group
	// member confirmed receipt — the tail-ack protocol's repair action.
	ChainResends
	// ChainAcks counts chain-mode receipt confirmations (KindChainAck
	// frames) sent by replicas back to the original sender.
	ChainAcks
	numCounters
)

var counterNames = [numCounters]string{
	"sends", "recvs", "bytes_sent", "bytes_recv", "errors", "resends",
	"dups_dropped", "dups_forwarded", "iterations", "validates",
	"agreement_msgs", "elections", "neighbor_scans",
	"frames_dropped", "frames_duplicated", "frames_corrupted",
	"frames_delayed", "frames_reordered", "frames_retried",
	"frames_rejected", "frames_deduped", "link_escalations",
	"heartbeats", "suspicions", "false_suspicions", "suspicions_cleared",
	"fences", "self_fences", "confirms",
	"control_frames", "swim_probes", "swim_indirect_probes",
	"swim_probe_timeouts", "gossip_events", "gossip_learns",
	"gossip_decode_errors", "respawns", "shrinks", "stale_gen_rejected",
	"replica_sends", "replica_promotions", "replica_dedup_drops",
	"replica_refills", "chain_resends", "chain_acks",
}

// String returns the counter's table-column name.
func (c Counter) String() string {
	if c >= 0 && c < numCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// Counters returns all counter identifiers in column order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// World holds counters for every rank of one run.
type World struct {
	n     int
	cells []atomic.Int64 // n * numCounters
}

// NewWorld creates a counter table for n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("metrics: world size must be positive, got %d", n))
	}
	return &World{n: n, cells: make([]atomic.Int64, n*int(numCounters))}
}

// Add increments counter c for rank by delta. A nil world is a no-op.
func (w *World) Add(rank int, c Counter, delta int64) {
	if w == nil {
		return
	}
	if rank < 0 || rank >= w.n || c < 0 || c >= numCounters {
		return
	}
	w.cells[rank*int(numCounters)+int(c)].Add(delta)
}

// Inc increments counter c for rank by one.
func (w *World) Inc(rank int, c Counter) { w.Add(rank, c, 1) }

// Get returns the value of counter c for rank.
func (w *World) Get(rank int, c Counter) int64 {
	if w == nil || rank < 0 || rank >= w.n || c < 0 || c >= numCounters {
		return 0
	}
	return w.cells[rank*int(numCounters)+int(c)].Load()
}

// Total returns the sum of counter c over all ranks.
func (w *World) Total(c Counter) int64 {
	if w == nil {
		return 0
	}
	var sum int64
	for rank := 0; rank < w.n; rank++ {
		sum += w.Get(rank, c)
	}
	return sum
}

// Size returns the number of ranks tracked.
func (w *World) Size() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Snapshot returns a copy of all counters as [rank][counter].
func (w *World) Snapshot() [][]int64 {
	if w == nil {
		return nil
	}
	out := make([][]int64, w.n)
	for rank := range out {
		row := make([]int64, numCounters)
		for c := range row {
			row[c] = w.Get(rank, Counter(c))
		}
		out[rank] = row
	}
	return out
}

// Render formats a per-rank table of the non-zero counters plus a totals
// row, in the style of the ftbench output tables.
func (w *World) Render() string {
	if w == nil {
		return ""
	}
	snap := w.Snapshot()
	// Choose columns that are non-zero somewhere, to keep tables readable.
	var cols []Counter
	for c := Counter(0); c < numCounters; c++ {
		nonzero := false
		for rank := range snap {
			if snap[rank][c] != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			cols = append(cols, c)
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "rank")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for rank := range snap {
		fmt.Fprintf(tw, "%d", rank)
		for _, c := range cols {
			fmt.Fprintf(tw, "\t%d", snap[rank][c])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "total")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%d", w.Total(c))
	}
	fmt.Fprintln(tw)
	_ = tw.Flush()
	return b.String()
}
