// Package managerworker rebuilds the fault-tolerant manager/worker
// pattern of Gropp & Lusk ("Fault tolerance in message passing interface
// programs", 2004) — the closest related work the paper discusses — on
// top of run-through stabilization instead of intercommunicator tricks.
//
// Where Gropp & Lusk "forget about intercommunicators connecting to lost
// processes", this version keeps the single world intracommunicator and
// uses the proposal's machinery directly, exactly as the paper argues
// libraries should be able to (Section IV):
//
//   - the manager farms tasks to workers and collects results with an
//     MPI_ANY_SOURCE receive;
//   - a worker death surfaces as ErrRankFailStop on that receive;
//   - the manager queries the failed set (MPI_Comm_validate), recognizes
//     the failures locally (MPI_Comm_validate_clear) to re-arm
//     AnySource, and re-queues the dead worker's in-flight tasks;
//   - when every task has completed, surviving workers get a shutdown
//     message.
//
// The manager is a single point of failure here, as in the original
// paper's design; electing a replacement manager is the ring example's
// Section III-D territory and out of scope for this library.
package managerworker

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// Message tags.
const (
	tagTask   = 21
	tagResult = 22
	tagStop   = 23
)

// Task is one unit of work.
type Task struct {
	ID    int
	Input int64
}

// TaskResult is a completed task.
type TaskResult struct {
	ID     int
	Worker int // comm rank that computed it
	Output int64
}

// WorkFn computes a task's output. It must be deterministic for the
// duplicate-result checks in the tests to hold.
type WorkFn func(input int64) int64

// Square is the default workload.
func Square(x int64) int64 { return x * x }

// encodeTask / decodeTask serialize tasks as fixed 12-byte frames.
func encodeTask(t Task) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, uint32(t.ID))
	binary.LittleEndian.PutUint64(buf[4:], uint64(t.Input))
	return buf
}

func decodeTask(b []byte) (Task, error) {
	if len(b) != 12 {
		return Task{}, fmt.Errorf("managerworker: malformed task (%d bytes)", len(b))
	}
	return Task{
		ID:    int(binary.LittleEndian.Uint32(b)),
		Input: int64(binary.LittleEndian.Uint64(b[4:])),
	}, nil
}

func encodeResult(r TaskResult) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, uint32(r.ID))
	binary.LittleEndian.PutUint64(buf[4:], uint64(r.Output))
	return buf
}

func decodeResult(b []byte) (TaskResult, error) {
	if len(b) != 12 {
		return TaskResult{}, fmt.Errorf("managerworker: malformed result (%d bytes)", len(b))
	}
	return TaskResult{
		ID:     int(binary.LittleEndian.Uint32(b)),
		Output: int64(binary.LittleEndian.Uint64(b[4:])),
	}, nil
}

// Stats describes a completed manager run.
type Stats struct {
	// Results maps task ID to its result.
	Results map[int]TaskResult
	// Reassigned counts tasks re-queued after their worker died.
	Reassigned int
	// WorkersLost counts worker deaths the manager rode through.
	WorkersLost int
}

// RunManager farms tasks from rank 0 (which must be the caller) and
// blocks until every task has a result or no workers remain. On success
// it shuts surviving workers down.
func RunManager(p *mpi.Proc, tasks []Task) (*Stats, error) {
	c := p.World()
	c.SetErrhandler(mpi.ErrorsReturn)
	if p.Rank() != 0 {
		return nil, fmt.Errorf("managerworker: manager must be rank 0: %w", mpi.ErrInvalidRank)
	}

	stats := &Stats{Results: make(map[int]TaskResult, len(tasks))}
	queue := append([]Task(nil), tasks...)
	inflight := make(map[int][]Task) // worker -> assigned tasks
	lost := make(map[int]bool)       // workers counted as dead already
	idle := make([]int, 0, p.Size()-1)
	for r := 1; r < p.Size(); r++ {
		idle = append(idle, r)
	}

	// markLost retires a dead worker exactly once: count it, re-queue its
	// in-flight tasks, and purge it from the idle pool.
	markLost := func(w int) {
		if lost[w] {
			return
		}
		lost[w] = true
		stats.WorkersLost++
		if held := inflight[w]; len(held) > 0 {
			queue = append(queue, held...)
			stats.Reassigned += len(held)
			delete(inflight, w)
		}
		idle = removeRank(idle, w)
	}

	assign := func() error {
		for len(queue) > 0 && len(idle) > 0 {
			w := idle[0]
			task := queue[0]
			if err := c.Send(w, tagTask, encodeTask(task)); err != nil {
				if !mpi.IsRankFailStop(err) {
					return err
				}
				// Worker died before we could use it; drop it from the pool.
				_ = c.RecognizeLocal(w)
				markLost(w)
				continue
			}
			idle = idle[1:]
			queue = queue[1:]
			inflight[w] = append(inflight[w], task)
		}
		return nil
	}

	for len(stats.Results) < len(tasks) {
		if err := assign(); err != nil {
			return stats, err
		}
		if len(inflight) == 0 && len(queue) > 0 {
			return stats, fmt.Errorf("managerworker: %d tasks remain but no workers survive",
				len(queue))
		}
		pl, st, err := c.Recv(mpi.AnySource, tagResult)
		if err != nil {
			if !mpi.IsRankFailStop(err) {
				return stats, err
			}
			// One or more workers died. Recognize each failure on the
			// communicator (validate + validate_clear) to re-arm the
			// AnySource receive, and re-queue the dead workers' tasks.
			for _, info := range c.FailedRanks() {
				if info.State == mpi.RankFailed {
					if err := c.RecognizeLocal(info.Rank); err != nil {
						return stats, err
					}
				}
				markLost(info.Rank)
			}
			continue
		}
		res, derr := decodeResult(pl)
		if derr != nil {
			return stats, derr
		}
		res.Worker = st.Source
		// A task can legitimately complete twice if its first worker died
		// after sending the result; keep the first.
		if _, dup := stats.Results[res.ID]; !dup {
			stats.Results[res.ID] = res
		}
		inflight[st.Source] = removeTask(inflight[st.Source], res.ID)
		if len(inflight[st.Source]) == 0 {
			delete(inflight, st.Source)
		}
		// Validate the worker before returning it to the pool: this can
		// be the posthumous result of a worker that died right after
		// sending (eager delivery outlives the sender). Re-idling a
		// recognized-dead worker would make the next assignment a
		// ProcNull no-op "success" and silently drop the task — the same
		// check-before-use discipline as the ring's Fig. 4 neighbor
		// selection.
		if info, err := c.RankState(st.Source); err == nil && info.State == mpi.RankOK {
			idle = append(idle, st.Source)
		} else {
			markLost(st.Source)
		}
	}

	// Shut down the survivors; failures here are irrelevant.
	for r := 1; r < p.Size(); r++ {
		_ = c.Send(r, tagStop, nil)
	}
	return stats, nil
}

// RunWorker processes tasks until the shutdown message arrives. Worker
// deaths are injected from outside (fault plans); a worker that survives
// returns the number of tasks it completed.
func RunWorker(p *mpi.Proc, fn WorkFn) (int, error) {
	c := p.World()
	c.SetErrhandler(mpi.ErrorsReturn)
	if fn == nil {
		fn = Square
	}
	done := 0
	for {
		pl, st, err := c.Recv(0, mpi.AnyTag)
		if err != nil {
			// The manager died: nothing sensible left to do (manager
			// failure is out of scope, as in Gropp & Lusk).
			return done, err
		}
		if st.Tag == tagStop {
			return done, nil
		}
		task, derr := decodeTask(pl)
		if derr != nil {
			return done, derr
		}
		out := TaskResult{ID: task.ID, Output: fn(task.Input)}
		p.Checkpoint("computed") // fault-injection point: die holding a result
		if err := c.Send(0, tagResult, encodeResult(out)); err != nil {
			return done, err
		}
		done++
	}
}

// MakeTasks builds n tasks with inputs 1..n.
func MakeTasks(n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: i, Input: int64(i + 1)}
	}
	return out
}

func removeRank(ranks []int, r int) []int {
	out := ranks[:0]
	for _, x := range ranks {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

func removeTask(tasks []Task, id int) []Task {
	out := tasks[:0]
	for _, t := range tasks {
		if t.ID != id {
			out = append(out, t)
		}
	}
	return out
}

// SortedIDs lists result task IDs in order (test/report helper).
func SortedIDs(results map[int]TaskResult) []int {
	out := make([]int, 0, len(results))
	for id := range results {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
