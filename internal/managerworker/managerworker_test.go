package managerworker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/mpi"
)

// runMW executes a manager/worker world; rank 0 manages.
func runMW(t *testing.T, n, tasks int, opts ...mpi.Option) (*Stats, *mpi.RunResult) {
	t.Helper()
	w, err := mpi.NewWorld(n, append([]mpi.Option{mpi.WithDeadline(30 * time.Second)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var stats *Stats
	res, err := w.Run(func(p *mpi.Proc) error {
		if p.Rank() == 0 {
			s, err := RunManager(p, MakeTasks(tasks))
			mu.Lock()
			stats = s
			mu.Unlock()
			return err
		}
		_, err := RunWorker(p, nil)
		if mpi.IsRankFailStop(err) {
			return nil // manager-side shutdown race; not a worker fault
		}
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats, res
}

func verifyResults(t *testing.T, stats *Stats, tasks int) {
	t.Helper()
	if len(stats.Results) != tasks {
		t.Fatalf("completed %d tasks, want %d (ids %v)", len(stats.Results), tasks, SortedIDs(stats.Results))
	}
	for id, r := range stats.Results {
		want := int64(id+1) * int64(id+1)
		if r.Output != want {
			t.Fatalf("task %d output %d, want %d", id, r.Output, want)
		}
	}
}

func TestAllTasksCompleteFailureFree(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			stats, res := runMW(t, n, 20)
			verifyResults(t, stats, 20)
			if stats.WorkersLost != 0 || stats.Reassigned != 0 {
				t.Fatalf("unexpected failures: %+v", stats)
			}
			for rank, rr := range res.Ranks {
				if rr.Err != nil {
					t.Fatalf("rank %d: %v", rank, rr.Err)
				}
			}
		})
	}
}

// TestWorkerDiesHoldingTask: the worker dies at the "computed" checkpoint,
// before sending its result; the manager must detect the death through
// the failed AnySource receive and reassign.
func TestWorkerDiesHoldingTask(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AtCheckpoint(2, "computed"))
	stats, res := runMW(t, 4, 12, mpi.WithHook(plan.Hook()))
	verifyResults(t, stats, 12)
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 should have died: %+v", res.Ranks[2])
	}
	if stats.WorkersLost != 1 {
		t.Fatalf("workers lost %d, want 1", stats.WorkersLost)
	}
	if stats.Reassigned < 1 {
		t.Fatalf("the held task should have been reassigned: %+v", stats)
	}
}

// TestWorkerDiesAfterSendingResult: the death races the result; the
// eager-delivery guarantee means the result may still arrive, and the
// task must not be double-counted.
func TestWorkerDiesAfterSendingResult(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthSend(2, 1))
	stats, res := runMW(t, 4, 12, mpi.WithHook(plan.Hook()))
	verifyResults(t, stats, 12)
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 should have died")
	}
	if stats.WorkersLost != 1 {
		t.Fatalf("workers lost %d, want 1", stats.WorkersLost)
	}
}

func TestMultipleWorkerDeaths(t *testing.T) {
	plan := inject.NewPlan().Add(
		inject.AtCheckpoint(1, "computed"),
		inject.AtCheckpoint(3, "computed"),
	)
	stats, res := runMW(t, 5, 16, mpi.WithHook(plan.Hook()))
	verifyResults(t, stats, 16)
	if stats.WorkersLost != 2 {
		t.Fatalf("workers lost %d, want 2", stats.WorkersLost)
	}
	for _, rank := range []int{1, 3} {
		if !res.Ranks[rank].Killed {
			t.Fatalf("rank %d should have died", rank)
		}
	}
	// All results must come from surviving workers.
	for id, r := range stats.Results {
		if r.Worker == 1 || r.Worker == 3 {
			// Legitimate only if the worker died after sending (not the
			// case here: checkpoint kills strike before the send).
			t.Fatalf("task %d credited to dead worker %d", id, r.Worker)
		}
	}
}

// TestAllWorkersDie: with every worker dead and tasks remaining, the
// manager reports the stall instead of hanging.
func TestAllWorkersDie(t *testing.T) {
	plan := inject.NewPlan().Add(
		inject.AtCheckpoint(1, "computed"),
		inject.AtCheckpoint(2, "computed"),
	)
	w, err := mpi.NewWorld(3, mpi.WithDeadline(30*time.Second), mpi.WithHook(plan.Hook()))
	if err != nil {
		t.Fatal(err)
	}
	var managerErr error
	_, err = w.Run(func(p *mpi.Proc) error {
		if p.Rank() == 0 {
			_, managerErr = RunManager(p, MakeTasks(10))
			return nil
		}
		_, _ = RunWorker(p, nil)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if managerErr == nil {
		t.Fatal("manager should report that no workers survive")
	}
}

func TestTaskCodecRoundTrip(t *testing.T) {
	task := Task{ID: 7, Input: -40}
	got, err := decodeTask(encodeTask(task))
	if err != nil || got != task {
		t.Fatalf("task round trip: %+v %v", got, err)
	}
	r := TaskResult{ID: 9, Output: 81}
	gr, err := decodeResult(encodeResult(r))
	if err != nil || gr.ID != 9 || gr.Output != 81 {
		t.Fatalf("result round trip: %+v %v", gr, err)
	}
	if _, err := decodeTask(nil); err == nil {
		t.Fatal("nil task accepted")
	}
	if _, err := decodeResult([]byte{1}); err == nil {
		t.Fatal("short result accepted")
	}
}

func TestManagerMustBeRankZero(t *testing.T) {
	w, err := mpi.NewWorld(2, mpi.WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		if p.Rank() == 1 {
			if _, err := RunManager(p, MakeTasks(1)); err == nil {
				return fmt.Errorf("non-zero manager accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[1].Err != nil {
		t.Fatal(res.Ranks[1].Err)
	}
}
