package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDupIsolatesContexts(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		world := p.World()
		dup := world.Dup()
		dup.SetErrhandler(ErrorsReturn)
		if p.Rank() == 0 {
			// Same tag, two communicators: messages must not cross.
			if err := world.Send(1, 5, []byte("world")); err != nil {
				return err
			}
			return dup.Send(1, 5, []byte("dup"))
		}
		// Receive on the dup first: it must get the dup message even
		// though the world message arrived earlier.
		plDup, _, err := dup.Recv(0, 5)
		if err != nil {
			return err
		}
		plWorld, _, err := world.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(plDup) != "dup" || string(plWorld) != "world" {
			return fmt.Errorf("contexts crossed: %q %q", plDup, plWorld)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestDupSeparateRecognition(t *testing.T) {
	res := runWorld(t, 3, func(p *Proc) error {
		world := p.World()
		dup := world.Dup()
		dup.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			p.Die()
		}
		for p.Registry().AliveCount() > 2 {
			time.Sleep(time.Millisecond)
		}
		if p.Rank() != 0 {
			return nil
		}
		// Recognize on the dup only: the world communicator must still
		// see the failure as unrecognized (per-communicator recognition).
		if err := dup.RecognizeLocal(2); err != nil {
			return err
		}
		di, err := dup.RankState(2)
		if err != nil {
			return err
		}
		wi, err := world.RankState(2)
		if err != nil {
			return err
		}
		if di.State != RankNull || wi.State != RankFailed {
			return fmt.Errorf("recognition leaked across communicators: dup=%v world=%v",
				di.State, wi.State)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

func TestSplitByParity(t *testing.T) {
	res := runWorld(t, 6, func(p *Proc) error {
		world := p.World()
		sub, err := world.Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		sub.SetErrhandler(ErrorsReturn)
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		wantRank := p.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("sub rank %d want %d", sub.Rank(), wantRank)
		}
		// Ring within the sub-communicator.
		right := (sub.Rank() + 1) % sub.Size()
		left := (sub.Rank() - 1 + sub.Size()) % sub.Size()
		r := sub.Irecv(left, 1)
		if err := sub.Send(right, 1, []byte{byte(p.Rank())}); err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		gotFrom := int(r.Payload()[0])
		wantFrom, _ := sub.WorldRank(left)
		if gotFrom != wantFrom {
			return fmt.Errorf("got message from world rank %d, want %d", gotFrom, wantFrom)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSplitKeyOrdering(t *testing.T) {
	res := runWorld(t, 4, func(p *Proc) error {
		// Reverse the ranks via descending keys.
		sub, err := p.World().Split(0, -p.Rank())
		if err != nil {
			return err
		}
		want := 3 - p.Rank()
		if sub.Rank() != want {
			return fmt.Errorf("sub rank %d want %d", sub.Rank(), want)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSplitRejectsBadColor(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		if _, err := p.World().Split(-1, 0); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("negative color accepted: %v", err)
		}
		if _, err := p.World().Split(5000, 0); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("huge color accepted: %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestValidateAllOnSubCommunicator(t *testing.T) {
	res := runWorld(t, 6, func(p *Proc) error {
		sub, err := p.World().Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		sub.SetErrhandler(ErrorsReturn)
		// Rank 4 (even group, sub rank 2) dies after the split.
		if p.Rank() == 4 {
			p.Die()
		}
		for p.Registry().AliveCount() > 5 {
			time.Sleep(time.Millisecond)
		}
		cnt, err := sub.ValidateAll()
		if err != nil {
			return err
		}
		want := 0
		if p.Rank()%2 == 0 {
			want = 1 // the dead rank is in the even sub-communicator
		}
		if cnt != want {
			return fmt.Errorf("sub validate count %d want %d", cnt, want)
		}
		return nil
	})
	for rank, rr := range res.Ranks {
		if rank != 4 && rr.Err != nil {
			t.Fatalf("rank %d: %v", rank, rr.Err)
		}
	}
}

func TestGroupAndTranslation(t *testing.T) {
	res := runWorld(t, 4, func(p *Proc) error {
		c := p.World()
		g := c.Group()
		if len(g) != 4 {
			return fmt.Errorf("group %v", g)
		}
		for i, wr := range g {
			if wr != i {
				return fmt.Errorf("world group should be identity: %v", g)
			}
		}
		if _, err := c.WorldRank(9); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("out-of-range comm rank accepted")
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestGoRequestCompletes(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		r := p.World().GoRequest(func() (Status, error) {
			return Status{Len: 42}, nil
		})
		st, err := r.Wait()
		if err != nil || st.Len != 42 {
			return fmt.Errorf("go request: %+v %v", st, err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestErrhandlerStrings(t *testing.T) {
	if ErrorsAreFatal.String() != "MPI_ERRORS_ARE_FATAL" || ErrorsReturn.String() != "MPI_ERRORS_RETURN" {
		t.Fatal("errhandler names changed")
	}
	if RankOK.String() != "MPI_RANK_OK" || RankFailed.String() != "MPI_RANK_FAILED" || RankNull.String() != "MPI_RANK_NULL" {
		t.Fatal("rank state names changed")
	}
}
