package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Replication mode: the second fault-tolerance strategy, opposite in
// philosophy to the paper's ABFT ring. Instead of the application
// recognizing failures and repairing its own protocol (re-entry,
// validate_all, counter repair), every logical rank is backed by R
// physical replicas that all execute the rank function. Sends fan out to
// every live replica of the destination (or travel via the primary in
// chain mode), receivers drop the duplicates by a replication sequence
// number, and a replica's death is absorbed by promoting a standby —
// the application never observes a failure until a logical rank's LAST
// replica dies, at which point the normal fail-stop path takes over.
//
// Physical layout is prefix-striped: a world of L logical ranks at
// replication degree R has N = L*R physical slots, and logical rank l is
// backed by physical slots {l, l+L, l+2L, ...}. Replica 0 of every
// logical rank therefore occupies the physical slot with the same index,
// which keeps logical ids valid indices into every physical-sized table.
const (
	// ReplFanout sends one physical copy to every live replica of the
	// destination (the default). No loss window: any surviving replica has
	// every message the sender produced.
	ReplFanout = "fanout"
	// ReplChain sends one copy to the destination's primary, which
	// forwards to its standbys. Cheaper on the sender's uplink, but a
	// primary that acknowledges a frame and dies before forwarding loses
	// it for the standbys — chain mode trades a loss window for bandwidth.
	ReplChain = "chain"
)

// ReplicationOptions configures replication mode (WithReplication).
type ReplicationOptions struct {
	// R is the replication degree: physical replicas per logical rank.
	// 1 is a valid (if pointless) degree and matches the unreplicated
	// baseline for overhead measurements.
	R int
	// Mode selects the propagation shape: ReplFanout (default, also
	// selected by "") or ReplChain.
	Mode string
}

// replGroup is the live view of one logical rank's replica set.
type replGroup struct {
	members []int        // backing physical slots, replica index order (fixed)
	live    map[int]bool // members still alive
	primary int          // current primary physical slot (-1 when all dead)
	epoch   uint32       // bumped on every membership change, stamped on the wire
}

// replState tracks every replica group of a replicated world. Lock
// ordering: replState.mu may be taken while holding no engine lock, or
// under an engine's mu (read accessors called from delivery paths);
// methods holding mu therefore never call into an engine.
type replState struct {
	w     *World
	r     int    // replication degree
	mode  string // ReplFanout or ReplChain
	lsize int    // logical world size

	mu     sync.Mutex
	groups []replGroup
}

// newReplState lays out lsize replica groups of degree r over the
// physical slot table.
func newReplState(w *World, lsize, r int, mode string) *replState {
	if mode == "" {
		mode = ReplFanout
	}
	s := &replState{w: w, r: r, mode: mode, lsize: lsize}
	s.groups = make([]replGroup, lsize)
	for l := 0; l < lsize; l++ {
		g := &s.groups[l]
		g.members = make([]int, 0, r)
		g.live = make(map[int]bool, r)
		for i := 0; i < r; i++ {
			p := l + i*lsize
			g.members = append(g.members, p)
			g.live[p] = true
		}
		g.primary = l // replica 0
	}
	return s
}

// handleDeath offers a confirmed physical death to the replica-group
// state. It reports true when the death was absorbed (the logical rank
// still has a live replica — a standby was promoted if the primary died)
// and false when the group is now empty and the death must escalate to
// the app-visible fail-stop path. Idempotent: a second notification for
// the same slot reports the group's current fate without re-promoting.
func (s *replState) handleDeath(f int) bool {
	l := f % s.lsize
	s.mu.Lock()
	g := &s.groups[l]
	if g.live[f] {
		delete(g.live, f)
		g.epoch++
	}
	if len(g.live) == 0 {
		g.primary = -1
		s.mu.Unlock()
		return false
	}
	promoted := -1
	if g.primary == f {
		// Promote the lowest-index live replica: deterministic, so every
		// observer that consults the group agrees on the new primary.
		for _, m := range g.members {
			if g.live[m] {
				g.primary = m
				promoted = m
				break
			}
		}
	}
	s.mu.Unlock()

	if promoted >= 0 {
		w := s.w
		w.metrics.Inc(promoted, metrics.ReplicaPromotions)
		if lat, ok := w.registry.SinceDeath(f); ok {
			w.obs.Observe(promoted, obs.ReplicaPromotion, lat)
			// Promotion IS the repair in replication mode: the same death-to
			// -service-restored latency feeds the cross-mode recovery family.
			w.obs.Observe(promoted, obs.RecoveryTotal, lat)
		}
		w.tracer.RecordMsg(promoted, trace.Promoted, f, -1, -1, int(w.genOf(promoted)), 0, 0,
			fmt.Sprintf("primary of logical %d (replacing %d)", l, f))
		// A standby that just became primary may be parked in a passive
		// agreement loop waiting to take over the coordinator or tree-root
		// role; roll every engine's agreement channel so it re-evaluates.
		for i := 0; i < w.size; i++ {
			e := w.eng(i)
			e.mu.Lock()
			e.agreeBumpLocked()
			e.mu.Unlock()
		}
	}
	return true
}

// onRevive re-admits a respawned physical slot to its replica group
// (elastic worlds: Spawn refills a depleted group).
func (s *replState) onRevive(p int) {
	l := p % s.lsize
	s.mu.Lock()
	g := &s.groups[l]
	if !g.live[p] {
		g.live[p] = true
		g.epoch++
		if g.primary < 0 {
			g.primary = p
		}
	}
	s.mu.Unlock()
}

// livePhys returns the live physical replicas of logical rank l in
// replica-index order.
func (s *replState) livePhys(l int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := &s.groups[l]
	out := make([]int, 0, len(g.live))
	for _, m := range g.members {
		if g.live[m] {
			out = append(out, m)
		}
	}
	return out
}

// sendTargets returns the physical destinations one logical send must
// reach: every live replica in fanout mode, just the primary in chain
// mode (it forwards to the standbys).
func (s *replState) sendTargets(l int) []int {
	if s.mode == ReplChain {
		s.mu.Lock()
		defer s.mu.Unlock()
		if p := s.groups[l].primary; p >= 0 {
			return []int{p}
		}
		return nil
	}
	return s.livePhys(l)
}

// primaryPhys returns the current primary physical slot of logical rank
// l (-1 when the whole group is dead).
func (s *replState) primaryPhys(l int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[l].primary
}

// isPrimary reports whether physical slot p currently leads its group.
func (s *replState) isPrimary(p int) bool {
	l := p % s.lsize
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[l].primary == p
}

// liveSiblings returns the live physical replicas sharing p's logical
// rank, excluding p itself (the chain-forward targets).
func (s *replState) liveSiblings(p int) []int {
	l := p % s.lsize
	var out []int
	s.mu.Lock()
	g := &s.groups[l]
	for _, m := range g.members {
		if m != p && g.live[m] {
			out = append(out, m)
		}
	}
	s.mu.Unlock()
	return out
}

// epochOf returns the replica-set epoch of logical rank l, the value
// stamped into Packet.RepEpoch (diagnostic: dedup is by RepSeq alone).
func (s *replState) epochOf(l int) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[l].epoch
}

// groupDead reports whether logical rank l has no live replica left.
func (s *replState) groupDead(l int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.groups[l].live) == 0
}

// --- world-level logical views ----------------------------------------------

// logicalOf maps a physical slot to its logical rank (identity outside
// replication mode).
func (w *World) logicalOf(p int) int {
	if w.repl == nil {
		return p
	}
	return p % w.lsize
}

// LogicalSize returns the number of application-visible ranks: Size()/R
// in replication mode, Size() otherwise.
func (w *World) LogicalSize() int { return w.lsize }

// appFailed reports whether logical rank l is failed from the
// application's point of view: its registry slot outside replication
// mode, its whole replica group within it.
func (w *World) appFailed(l int) bool {
	if w.repl == nil {
		return w.registry.Failed(l)
	}
	return w.repl.groupDead(l)
}

// appGeneration returns the incarnation generation the application
// observes for logical rank l: the primary replica's generation while
// one lives, the replica-0 slot's otherwise.
func (w *World) appGeneration(l int) int {
	if w.repl == nil {
		return w.registry.Generation(l)
	}
	if p := w.repl.primaryPhys(l); p >= 0 {
		return w.registry.Generation(p)
	}
	return w.registry.Generation(l)
}

// lowestAliveIn returns the lowest logical rank in group that the
// application still observes as alive.
func (w *World) lowestAliveIn(group []int) (int, bool) {
	if w.repl == nil {
		return w.registry.LowestAliveIn(group)
	}
	best, ok := -1, false
	for _, l := range group {
		if !w.appFailed(l) && (!ok || l < best) {
			best, ok = l, true
		}
	}
	return best, ok
}

// notifyFailure routes a confirmed physical death into the engines'
// failure views. In replication mode the death is first offered to the
// replica-group state: while the logical rank still has a live replica,
// the failure is absorbed by promotion and no engine's app-visible view
// changes. Only the last replica's death escalates, and it escalates
// under the LOGICAL rank id, because that is the identity every engine's
// failure view speaks in replication mode.
func (w *World) notifyFailure(f int) {
	if w.repl == nil {
		for i := 0; i < w.size; i++ {
			if i != f {
				w.eng(i).onPeerFailure(f)
			}
		}
		return
	}
	if w.repl.handleDeath(f) {
		return
	}
	lf := w.logicalOf(f)
	for i := 0; i < w.size; i++ {
		if w.logicalOf(i) != lf {
			w.eng(i).onPeerFailure(lf)
		}
	}
}

// notifyRevive routes a registry revival into the engines' views (the
// logical-id counterpart of notifyFailure).
func (w *World) notifyRevive(slot int) {
	if w.repl == nil {
		for i := 0; i < w.size; i++ {
			if i != slot {
				w.eng(i).onPeerRevive(slot)
			}
		}
		return
	}
	w.repl.onRevive(slot)
	ls := w.logicalOf(slot)
	for i := 0; i < w.size; i++ {
		if w.logicalOf(i) != ls {
			w.eng(i).onPeerRevive(ls)
		}
	}
}

// replSend fans one logical data message out to the physical replicas
// of logical destination ldst: every live replica in fanout mode, the
// primary in chain mode. Each copy carries the same replication sequence
// number — sender replicas execute identical programs and stamp
// identical sequences, so receivers drop the duplicates by RepSeq alone.
// Must be called with no engine lock held.
func (e *engine) replSend(ldst, tag, ctx int, payload []byte) error {
	w := e.w
	targets := w.repl.sendTargets(ldst)
	if len(targets) == 0 {
		return failStop(ldst)
	}
	seq := e.nextRepSeq(ldst, ctx, tag)
	epoch := w.repl.epochOf(ldst)
	// One causal token for the whole fan-out: every physical copy is the
	// same logical message, so the deduplicated losers and the delivered
	// winner reconcile to one identity in the conservation audit.
	// (sendPacket assigns tokens only when unset, so this survives it.)
	tok := transport.MakeToken(e.rank, w.nextTokenSeq(e.rank))
	var start time.Time
	var firstErr error
	for i, phys := range targets {
		buf := payload
		if !w.nonRetaining {
			// Retaining fabrics (Local, and anything layered on it) keep the
			// payload pointer, so every physical copy needs its own buffer.
			buf = make([]byte, len(payload))
			copy(buf, payload)
		}
		if i == 1 && w.obs != nil {
			start = time.Now() // overhead clock: copies beyond the first
		}
		pkt := &transport.Packet{
			Src: e.rank, Dst: phys, Tag: tag, Context: ctx,
			Kind: transport.KindData, Payload: buf,
			RepSeq: seq, RepEpoch: epoch, Token: tok,
		}
		if err := e.sendPacket(pkt); err != nil && firstErr == nil {
			firstErr = err
		}
		if i > 0 {
			w.metrics.Inc(e.rank, metrics.ReplicaSends)
		}
	}
	if len(targets) > 1 && w.obs != nil {
		w.obs.Observe(e.rank, obs.ReplicationOverhead, time.Since(start))
	}
	return firstErr
}

// chainForward relays a chain-mode data frame from the group's primary
// to its live standbys, preserving the original sender's identity and
// generation stamp (re-stamping with the forwarder's would trip the
// receiver's generation fence against the true source). Runs on the
// delivery goroutine with no engine lock held.
func (e *engine) chainForward(pkt *transport.Packet) {
	w := e.w
	for _, sib := range w.repl.liveSiblings(e.rank) {
		fwd := *pkt
		fwd.Dst = sib
		fwd.DstGen = w.genOf(sib)
		if !w.nonRetaining && pkt.Payload != nil {
			fwd.Payload = make([]byte, len(pkt.Payload))
			copy(fwd.Payload, pkt.Payload)
		}
		_ = w.fabric.Send(&fwd)
		w.metrics.Inc(e.rank, metrics.ReplicaSends)
	}
}
