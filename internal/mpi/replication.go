package mpi

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Replication mode: the second fault-tolerance strategy, opposite in
// philosophy to the paper's ABFT ring. Instead of the application
// recognizing failures and repairing its own protocol (re-entry,
// validate_all, counter repair), every logical rank is backed by R
// physical replicas that all execute the rank function. Sends fan out to
// every live replica of the destination (or travel via the primary in
// chain mode), receivers drop the duplicates by a replication sequence
// number, and a replica's death is absorbed by promoting a standby —
// the application never observes a failure until a logical rank's LAST
// replica dies, at which point the normal fail-stop path takes over.
//
// Physical layout is prefix-striped: a world of L logical ranks at
// replication degree R has N = L*R physical slots, and logical rank l is
// backed by physical slots {l, l+L, l+2L, ...}. Replica 0 of every
// logical rank therefore occupies the physical slot with the same index,
// which keeps logical ids valid indices into every physical-sized table.
const (
	// ReplFanout sends one physical copy to every live replica of the
	// destination (the default). No loss window: any surviving replica has
	// every message the sender produced.
	ReplFanout = "fanout"
	// ReplChain sends one copy to the destination's primary, which
	// forwards to its standbys. Cheaper on the sender's uplink, but a
	// primary that acknowledges a frame and dies before forwarding loses
	// it for the standbys — chain mode trades a loss window for bandwidth.
	ReplChain = "chain"
)

// ReplicationOptions configures replication mode (WithReplication).
type ReplicationOptions struct {
	// R is the replication degree: physical replicas per logical rank.
	// 1 is a valid (if pointless) degree and matches the unreplicated
	// baseline for overhead measurements.
	R int
	// Mode selects the propagation shape: ReplFanout (default, also
	// selected by "") or ReplChain.
	Mode string
	// AutoRefill makes the world heal depleted replica groups itself:
	// every detector-confirmed replica death schedules a Spawn-driven
	// reincarnation of the slot (at the next generation, with replication
	// sequence state seeded from a surviving sibling) so groups return to
	// R live members with zero app-level Spawn calls. Implies elastic
	// worlds: a nil Config.Elastic is upgraded to the zero ElasticOptions.
	// The refilled incarnation joins as a warm standby — it cannot replay
	// history its group already consumed, so rank functions should park
	// reincarnations (Proc.Gen() > 1) rather than re-run the protocol.
	AutoRefill bool
	// RefillDelay is how long after the confirmed death the first refill
	// attempt fires. Zero refills as soon as the notification lands.
	RefillDelay time.Duration
	// RefillBackoff is the initial retry backoff when a refill attempt is
	// refused (racing kill, in-flight Spawn); it doubles per retry up to
	// 500ms. Zero means 2ms.
	RefillBackoff time.Duration
	// MaxRefills caps automatic refills per run; 0 means unlimited.
	MaxRefills int
}

// chainKey identifies one chain-outbox entry: a logical data message the
// sender must see confirmed by every live replica of the destination
// group before it can forget the payload.
type chainKey struct {
	ldst   int // logical destination rank
	ctx    int
	tag    int
	repSeq uint32
}

// chainPending is one unconfirmed chain-mode send: the payload kept for a
// promotion-triggered re-send, the causal token that keeps the re-send
// the SAME message for the conservation audit, and the set of physical
// replicas whose receipt confirmation (KindChainAck) is still owed.
type chainPending struct {
	payload []byte
	tok     uint64
	waiting map[int]struct{}
}

// replGroup is the live view of one logical rank's replica set.
type replGroup struct {
	members []int        // backing physical slots, replica index order (fixed)
	live    map[int]bool // members still alive
	primary int          // current primary physical slot (-1 when all dead)
	epoch   uint32       // bumped on every membership change, stamped on the wire
}

// replState tracks every replica group of a replicated world. Lock
// ordering: replState.mu may be taken while holding no engine lock, or
// under an engine's mu (read accessors called from delivery paths);
// methods holding mu therefore never call into an engine.
type replState struct {
	w     *World
	r     int    // replication degree
	mode  string // ReplFanout or ReplChain
	lsize int    // logical world size
	opts  ReplicationOptions

	mu      sync.Mutex
	groups  []replGroup
	refills int // automatic refills launched (budget bookkeeping)
}

// newReplState lays out lsize replica groups of degree opts.R over the
// physical slot table.
func newReplState(w *World, lsize int, opts ReplicationOptions) *replState {
	r, mode := opts.R, opts.Mode
	if mode == "" {
		mode = ReplFanout
	}
	s := &replState{w: w, r: r, mode: mode, lsize: lsize, opts: opts}
	s.groups = make([]replGroup, lsize)
	for l := 0; l < lsize; l++ {
		g := &s.groups[l]
		g.members = make([]int, 0, r)
		g.live = make(map[int]bool, r)
		for i := 0; i < r; i++ {
			p := l + i*lsize
			g.members = append(g.members, p)
			g.live[p] = true
		}
		g.primary = l // replica 0
	}
	return s
}

// handleDeath offers a confirmed physical death to the replica-group
// state. It reports true when the death was absorbed (the logical rank
// still has a live replica — a standby was promoted if the primary died)
// and false when the group is now empty and the death must escalate to
// the app-visible fail-stop path. Idempotent: a second notification for
// the same slot reports the group's current fate without re-promoting.
func (s *replState) handleDeath(f int) bool {
	l := f % s.lsize
	s.mu.Lock()
	g := &s.groups[l]
	if g.live[f] {
		delete(g.live, f)
		g.epoch++
	}
	if len(g.live) == 0 {
		g.primary = -1
		s.mu.Unlock()
		s.pruneChainAcks(f)
		s.scheduleRefill(f)
		return false
	}
	promoted := -1
	if g.primary == f {
		// Promote the lowest-index live replica: deterministic, so every
		// observer that consults the group agrees on the new primary.
		for _, m := range g.members {
			if g.live[m] {
				g.primary = m
				promoted = m
				break
			}
		}
	}
	s.mu.Unlock()

	// Drop the corpse from every sender's chain-outbox wait sets first, so
	// the promotion re-send below skips entries the survivors already hold.
	s.pruneChainAcks(f)

	if promoted >= 0 {
		w := s.w
		w.metrics.Inc(promoted, metrics.ReplicaPromotions)
		if lat, ok := w.registry.SinceDeath(f); ok {
			w.obs.Observe(promoted, obs.ReplicaPromotion, lat)
			// Promotion IS the repair in replication mode: the same death-to
			// -service-restored latency feeds the cross-mode recovery family.
			w.obs.Observe(promoted, obs.RecoveryTotal, lat)
		}
		w.tracer.RecordMsg(promoted, trace.Promoted, f, -1, -1, int(w.genOf(promoted)), 0, 0,
			fmt.Sprintf("primary of logical %d (replacing %d)", l, f))
		// A standby that just became primary may be parked in a passive
		// agreement loop waiting to take over the coordinator or tree-root
		// role; roll every engine's agreement channel so it re-evaluates.
		for i := 0; i < w.size; i++ {
			e := w.eng(i)
			e.mu.Lock()
			e.agreeBumpLocked()
			e.mu.Unlock()
		}
		// Tail-ack repair: any chain frame the dead primary accepted (or
		// was sent) but whose group-wide receipt is still unconfirmed is
		// re-sent to the new primary, which re-forwards down the chain.
		s.resendChainPending(l, promoted)
	}
	s.scheduleRefill(f)
	return true
}

// onRevive re-admits a respawned physical slot to its replica group
// (elastic worlds: Spawn refills a depleted group).
func (s *replState) onRevive(p int) {
	l := p % s.lsize
	s.mu.Lock()
	g := &s.groups[l]
	if !g.live[p] {
		g.live[p] = true
		g.epoch++
		if g.primary < 0 {
			g.primary = p
		}
	}
	s.mu.Unlock()
}

// livePhys returns the live physical replicas of logical rank l in
// replica-index order.
func (s *replState) livePhys(l int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := &s.groups[l]
	out := make([]int, 0, len(g.live))
	for _, m := range g.members {
		if g.live[m] {
			out = append(out, m)
		}
	}
	return out
}

// sendTargets returns the physical destinations one logical send must
// reach: every live replica in fanout mode, just the primary in chain
// mode (it forwards to the standbys).
func (s *replState) sendTargets(l int) []int {
	if s.mode == ReplChain {
		s.mu.Lock()
		defer s.mu.Unlock()
		if p := s.groups[l].primary; p >= 0 {
			return []int{p}
		}
		return nil
	}
	return s.livePhys(l)
}

// primaryPhys returns the current primary physical slot of logical rank
// l (-1 when the whole group is dead).
func (s *replState) primaryPhys(l int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[l].primary
}

// isPrimary reports whether physical slot p currently leads its group.
func (s *replState) isPrimary(p int) bool {
	l := p % s.lsize
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[l].primary == p
}

// liveSiblings returns the live physical replicas sharing p's logical
// rank, excluding p itself (the chain-forward targets).
func (s *replState) liveSiblings(p int) []int {
	l := p % s.lsize
	var out []int
	s.mu.Lock()
	g := &s.groups[l]
	for _, m := range g.members {
		if m != p && g.live[m] {
			out = append(out, m)
		}
	}
	s.mu.Unlock()
	return out
}

// epochOf returns the replica-set epoch of logical rank l, the value
// stamped into Packet.RepEpoch (diagnostic: dedup is by RepSeq alone).
func (s *replState) epochOf(l int) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[l].epoch
}

// groupDead reports whether logical rank l has no live replica left.
func (s *replState) groupDead(l int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.groups[l].live) == 0
}

// --- world-level logical views ----------------------------------------------

// logicalOf maps a physical slot to its logical rank (identity outside
// replication mode).
func (w *World) logicalOf(p int) int {
	if w.repl == nil {
		return p
	}
	return p % w.lsize
}

// LogicalSize returns the number of application-visible ranks: Size()/R
// in replication mode, Size() otherwise.
func (w *World) LogicalSize() int { return w.lsize }

// appFailed reports whether logical rank l is failed from the
// application's point of view: its registry slot outside replication
// mode, its whole replica group within it.
func (w *World) appFailed(l int) bool {
	if w.repl == nil {
		return w.registry.Failed(l)
	}
	return w.repl.groupDead(l)
}

// appGeneration returns the incarnation generation the application
// observes for logical rank l: the primary replica's generation while
// one lives, the replica-0 slot's otherwise.
func (w *World) appGeneration(l int) int {
	if w.repl == nil {
		return w.registry.Generation(l)
	}
	if p := w.repl.primaryPhys(l); p >= 0 {
		return w.registry.Generation(p)
	}
	return w.registry.Generation(l)
}

// lowestAliveIn returns the lowest logical rank in group that the
// application still observes as alive.
func (w *World) lowestAliveIn(group []int) (int, bool) {
	if w.repl == nil {
		return w.registry.LowestAliveIn(group)
	}
	best, ok := -1, false
	for _, l := range group {
		if !w.appFailed(l) && (!ok || l < best) {
			best, ok = l, true
		}
	}
	return best, ok
}

// notifyFailure routes a confirmed physical death into the engines'
// failure views. In replication mode the death is first offered to the
// replica-group state: while the logical rank still has a live replica,
// the failure is absorbed by promotion and no engine's app-visible view
// changes. Only the last replica's death escalates, and it escalates
// under the LOGICAL rank id, because that is the identity every engine's
// failure view speaks in replication mode.
func (w *World) notifyFailure(f int) {
	if w.repl == nil {
		for i := 0; i < w.size; i++ {
			if i != f {
				w.eng(i).onPeerFailure(f)
			}
		}
		return
	}
	if w.repl.handleDeath(f) {
		return
	}
	lf := w.logicalOf(f)
	for i := 0; i < w.size; i++ {
		if w.logicalOf(i) != lf {
			w.eng(i).onPeerFailure(lf)
		}
	}
}

// notifyRevive routes a registry revival into the engines' views (the
// logical-id counterpart of notifyFailure).
func (w *World) notifyRevive(slot int) {
	if w.repl == nil {
		for i := 0; i < w.size; i++ {
			if i != slot {
				w.eng(i).onPeerRevive(slot)
			}
		}
		return
	}
	w.repl.onRevive(slot)
	ls := w.logicalOf(slot)
	for i := 0; i < w.size; i++ {
		if w.logicalOf(i) != ls {
			w.eng(i).onPeerRevive(ls)
		}
	}
}

// replSend fans one logical data message out to the physical replicas
// of logical destination ldst: every live replica in fanout mode, the
// primary in chain mode. Each copy carries the same replication sequence
// number — sender replicas execute identical programs and stamp
// identical sequences, so receivers drop the duplicates by RepSeq alone.
// Must be called with no engine lock held.
func (e *engine) replSend(ldst, tag, ctx int, payload []byte) error {
	w := e.w
	targets := w.repl.sendTargets(ldst)
	if len(targets) == 0 {
		return failStop(ldst)
	}
	seq := e.nextRepSeq(ldst, ctx, tag)
	epoch := w.repl.epochOf(ldst)
	// One causal token for the whole fan-out: every physical copy is the
	// same logical message, so the deduplicated losers and the delivered
	// winner reconcile to one identity in the conservation audit.
	// (sendPacket assigns tokens only when unset, so this survives it.)
	tok := transport.MakeToken(e.rank, w.nextTokenSeq(e.rank))
	if w.repl.mode == ReplChain {
		// Record the outbox entry BEFORE the copy enters the fabric: over
		// the synchronous Local fabric the chain-acks can arrive inside the
		// Send call below, and they must find the entry to retire.
		e.recordChainPending(ldst, ctx, tag, seq, tok, payload)
	}
	var start time.Time
	var firstErr error
	for i, phys := range targets {
		buf := payload
		if !w.nonRetaining {
			// Retaining fabrics (Local, and anything layered on it) keep the
			// payload pointer, so every physical copy needs its own buffer.
			buf = make([]byte, len(payload))
			copy(buf, payload)
		}
		if i == 1 && w.obs != nil {
			start = time.Now() // overhead clock: copies beyond the first
		}
		pkt := &transport.Packet{
			Src: e.rank, Dst: phys, Tag: tag, Context: ctx,
			Kind: transport.KindData, Payload: buf,
			RepSeq: seq, RepEpoch: epoch, Token: tok,
		}
		if err := e.sendPacket(pkt); err != nil && firstErr == nil {
			firstErr = err
		}
		if i > 0 {
			w.metrics.Inc(e.rank, metrics.ReplicaSends)
		}
	}
	if len(targets) > 1 && w.obs != nil {
		w.obs.Observe(e.rank, obs.ReplicationOverhead, time.Since(start))
	}
	return firstErr
}

// chainForward relays a chain-mode data frame from the group's primary
// to its live standbys, preserving the original sender's identity and
// generation stamp (re-stamping with the forwarder's would trip the
// receiver's generation fence against the true source). Runs on the
// delivery goroutine with no engine lock held.
func (e *engine) chainForward(pkt *transport.Packet) {
	w := e.w
	for _, sib := range w.repl.liveSiblings(e.rank) {
		if w.hook != nil && w.hook(HookEvent{
			Rank: e.arank(), Point: HookChainForward, Peer: w.logicalOf(sib), Tag: pkt.Tag,
		}) == ActKill {
			// The injected death lands INSIDE the forward window: the frame
			// is accepted here but not (fully) forwarded — the loss the
			// tail-ack protocol repairs. fireHook's die() would panic the
			// delivering goroutine, which is not this rank's own, so the
			// kill goes through the registry instead.
			w.registry.Kill(e.rank)
		}
		if e.dead.Load() {
			return // died mid-forward: remaining standbys rely on the re-send
		}
		fwd := *pkt
		fwd.Dst = sib
		fwd.DstGen = w.genOf(sib)
		if !w.nonRetaining && pkt.Payload != nil {
			fwd.Payload = make([]byte, len(pkt.Payload))
			copy(fwd.Payload, pkt.Payload)
		}
		_ = w.fabric.Send(&fwd)
		w.metrics.Inc(e.rank, metrics.ReplicaSends)
	}
}

// --- chain tail-acks ---------------------------------------------------------
//
// Chain mode's documented loss window: the primary's ARQ ack (and its
// RepSeq acceptance) used to commit a frame the standbys might never see
// if the primary died before chainForward completed. The tail-ack
// protocol closes it sender-side: every chain send is held in a per
// -sender outbox until EVERY live replica of the destination group has
// confirmed receipt with a KindChainAck frame; a primary death re-sends
// the unconfirmed entries (same RepSeq, same causal token) to the
// promoted survivor, which re-forwards down the chain. The reliability
// layer's ack gate complements this by keeping the hop-level ARQ ack
// honest (withheld until the frame is forwarded), so the sender's
// retransmission machinery also keeps racing a mid-forward death.

// recordChainPending registers one chain-mode send in the sender's
// outbox, awaiting receipt confirmation from every live member of the
// destination group. Called with no engine lock held, before the first
// physical copy enters the fabric.
func (e *engine) recordChainPending(ldst, ctx, tag int, seq uint32, tok uint64, payload []byte) {
	members := e.w.repl.livePhys(ldst)
	if len(members) == 0 {
		return
	}
	waiting := make(map[int]struct{}, len(members))
	for _, m := range members {
		waiting[m] = struct{}{}
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	k := chainKey{ldst: ldst, ctx: ctx, tag: tag, repSeq: seq}
	e.mu.Lock()
	e.chainPend[k] = &chainPending{payload: cp, tok: tok, waiting: waiting}
	e.mu.Unlock()
}

// sendChainAck confirms receipt of a chain data frame to its ORIGINAL
// sender (pkt.Src survives the chain forward untouched). The ack is
// ARQ-sequenced — it must survive the same chaos the data did — but
// carries no causal token: it is protocol overhead, like the ARQ acks,
// not a message the conservation audit tracks.
func (e *engine) sendChainAck(pkt *transport.Packet) {
	w := e.w
	ack := &transport.Packet{
		Src: e.rank, Dst: pkt.Src, Tag: pkt.Tag, Context: pkt.Context,
		Kind: transport.KindChainAck, RepSeq: pkt.RepSeq,
		SrcGen: e.gen, DstGen: w.genOf(pkt.Src),
	}
	_ = w.fabric.Send(ack)
	w.metrics.Inc(e.rank, metrics.ChainAcks)
}

// onChainAck retires one replica's receipt confirmation from the
// matching outbox entry; the entry itself is released once every awaited
// replica has confirmed.
func (e *engine) onChainAck(pkt *transport.Packet) {
	k := chainKey{
		ldst: e.w.logicalOf(pkt.Src), ctx: pkt.Context,
		tag: pkt.Tag, repSeq: pkt.RepSeq,
	}
	e.mu.Lock()
	if ent := e.chainPend[k]; ent != nil {
		delete(ent.waiting, pkt.Src)
		if len(ent.waiting) == 0 {
			delete(e.chainPend, k)
		}
	}
	e.mu.Unlock()
}

// pruneChainAcks removes a dead physical slot from every sender's
// chain-outbox wait sets (a corpse will never confirm), releasing entries
// it was the last holdout of. No-op outside chain mode.
func (s *replState) pruneChainAcks(f int) {
	if s.mode != ReplChain {
		return
	}
	w := s.w
	for i := 0; i < w.size; i++ {
		e := w.eng(i)
		e.mu.Lock()
		for k, ent := range e.chainPend {
			if _, ok := ent.waiting[f]; ok {
				delete(ent.waiting, f)
				if len(ent.waiting) == 0 {
					delete(e.chainPend, k)
				}
			}
		}
		e.mu.Unlock()
	}
}

// resendChainPending re-sends every still-unconfirmed chain-outbox entry
// addressed to logical rank l to its freshly promoted primary, in RepSeq
// order per channel (a standby that accepted X+1 would dedup-drop a
// later-arriving X). The re-send reuses the original causal token — it
// is the same message, and the audit reconciles all copies to one span —
// and the promoted primary re-forwards it chain-style, which also covers
// standbys that missed the old primary's forward. Replicas that already
// hold the frame dedup-drop it and re-confirm. Called with no locks held.
func (s *replState) resendChainPending(l, promoted int) {
	if s.mode != ReplChain {
		return
	}
	w := s.w
	epoch := s.epochOf(l)
	for i := 0; i < w.size; i++ {
		e := w.eng(i)
		if e.dead.Load() {
			continue
		}
		type item struct {
			k   chainKey
			ent *chainPending
		}
		var items []item
		e.mu.Lock()
		for k, ent := range e.chainPend {
			if k.ldst == l {
				items = append(items, item{k, ent})
			}
		}
		e.mu.Unlock()
		if len(items) == 0 {
			continue
		}
		sort.Slice(items, func(a, b int) bool {
			ka, kb := items[a].k, items[b].k
			if ka.ctx != kb.ctx {
				return ka.ctx < kb.ctx
			}
			if ka.tag != kb.tag {
				return ka.tag < kb.tag
			}
			return ka.repSeq < kb.repSeq
		})
		for _, it := range items {
			// Fresh payload copy per re-send: the fabric (and ultimately the
			// application) may retain and mutate delivered buffers, and the
			// outbox copy must stay intact for a second promotion.
			cp := make([]byte, len(it.ent.payload))
			copy(cp, it.ent.payload)
			pkt := &transport.Packet{
				Src: e.rank, Dst: promoted, Tag: it.k.tag, Context: it.k.ctx,
				Kind: transport.KindData, Payload: cp,
				RepSeq: it.k.repSeq, RepEpoch: epoch, Token: it.ent.tok,
			}
			_ = e.sendPacket(pkt)
			w.metrics.Inc(e.rank, metrics.ChainResends)
		}
	}
}

// --- automatic re-replication ------------------------------------------------

// refillAttempts bounds one refill goroutine's Spawn retries; combined
// with the backoff doubling it spans several seconds of transient
// refusals (racing kills, in-flight Spawns) before giving up.
const refillAttempts = 10

// scheduleRefill launches the Spawn-driven group refill for a confirmed
// -dead replica slot, subject to the AutoRefill budget. Runs on the
// failure-notification path with no locks held; the refill itself runs
// on its own goroutine.
func (s *replState) scheduleRefill(slot int) {
	if !s.opts.AutoRefill {
		return
	}
	s.mu.Lock()
	if s.opts.MaxRefills > 0 && s.refills >= s.opts.MaxRefills {
		s.mu.Unlock()
		return
	}
	s.refills++
	s.mu.Unlock()
	go s.refill(slot, time.Now())
}

// refill retries Spawn(slot) with backoff until the slot is reoccupied,
// someone else revived it, or the attempt budget runs out (teardown and
// budget refusals surface as Spawn errors and simply exhaust the loop).
// deathAt anchors the rereplication_latency observation: confirm-to-heal.
func (s *replState) refill(slot int, deathAt time.Time) {
	w := s.w
	backoff := s.opts.RefillBackoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}
	for attempt := 0; attempt < refillAttempts; attempt++ {
		if attempt == 0 {
			if s.opts.RefillDelay > 0 {
				time.Sleep(s.opts.RefillDelay)
			}
		} else {
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
		if !w.registry.Confirmed(slot) {
			return // already revived by a racing Spawn — group is healing
		}
		if _, err := w.Spawn(slot); err == nil {
			w.metrics.Inc(slot, metrics.ReplicaRefills)
			w.obs.Observe(slot, obs.RereplicationLatency, time.Since(deathAt))
			return
		}
	}
}

// seedRepState copies the most advanced surviving sibling's replication
// sequence state into a reincarnation's still-unpublished engine: repNext
// fences inbound frames the group already consumed (late forwards and
// retransmits of old laps dedup-drop instead of queueing stale state),
// and repSeq keeps outbound numbering continuous if the incarnation ever
// sends after recovering application state. Called from join before the
// engine is installed, so no frame can race the seeding.
func (s *replState) seedRepState(slot int, e2 *engine) {
	w := s.w
	for _, sib := range s.livePhys(w.logicalOf(slot)) {
		if sib == slot {
			continue
		}
		e := w.eng(sib)
		if e == nil || e.dead.Load() {
			continue
		}
		e.mu.Lock()
		for k, v := range e.repSeq {
			if v > e2.repSeq[k] {
				e2.repSeq[k] = v
			}
		}
		for k, v := range e.repNext {
			if v > e2.repNext[k] {
				e2.repNext[k] = v
			}
		}
		e.mu.Unlock()
	}
}

// LiveReplicas returns the live physical replica slots backing logical
// rank l in replica-index order, or nil outside replication mode. Soaks
// use it to assert depleted groups healed back to R by the epilogue.
func (w *World) LiveReplicas(l int) []int {
	if w.repl == nil || l < 0 || l >= w.lsize {
		return nil
	}
	return w.repl.livePhys(l)
}
