package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestValidateAllNoFailures(t *testing.T) {
	res := runWorld(t, 4, func(p *Proc) error {
		cnt, err := p.World().ValidateAll()
		if err != nil {
			return err
		}
		if cnt != 0 {
			return fmt.Errorf("want 0 failures, got %d", cnt)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestValidateAllAgreesOnFailures(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	res := runWorld(t, 6, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 2 || p.Rank() == 4 {
			p.Die()
		}
		for p.Registry().AliveCount() > 4 {
			time.Sleep(time.Millisecond)
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		// Agreed failures must now be recognized (MPI_RANK_NULL).
		for _, failed := range []int{2, 4} {
			info, err := c.RankState(failed)
			if err != nil {
				return err
			}
			if info.State != RankNull {
				return fmt.Errorf("rank %d state %v after validate", failed, info.State)
			}
		}
		return nil
	})
	for _, rank := range []int{0, 1, 3, 5} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 2 {
			t.Fatalf("rank %d agreed on %d failures, want 2 (all: %v)", rank, counts[rank], counts)
		}
	}
}

// TestValidateAllCoordinatorDies kills the would-be coordinator (lowest
// alive rank) while the agreement is running; the survivors must still
// agree, and on a set that includes the dead coordinator.
func TestValidateAllCoordinatorDies(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	res := runWorld(t, 5, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			// Coordinator enters the agreement and dies mid-protocol: wait
			// for at least one vote to arrive, then die. We approximate
			// "mid-protocol" by dying immediately — the point is that
			// survivors must re-coordinate under rank 1.
			p.Die()
		}
		for p.Registry().AliveCount() > 4 {
			time.Sleep(time.Millisecond)
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		return nil
	})
	for rank := 1; rank < 5; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failures, want 1 (all: %v)", rank, counts[rank], counts)
		}
	}
}

// TestValidateAllKillDuringAgreement arranges a death *after* some ranks
// have already entered the agreement, exercising the mid-protocol
// failure-discovery path (pending voters dying).
func TestValidateAllKillDuringAgreement(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	w, err := NewWorld(4, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 3 {
			// Never calls ValidateAll: dies while others wait for its vote.
			time.Sleep(50 * time.Millisecond)
			p.Die()
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for rank := 0; rank < 3; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failures, want 1 (all: %v)", rank, counts[rank], counts)
		}
	}
}

func TestIvalidateAllCompletesAsRequest(t *testing.T) {
	res := runWorld(t, 4, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		r := c.IvalidateAll()
		st, err := r.Wait()
		if err != nil {
			return err
		}
		if r.Result() != 1 || st.Len != 1 {
			return fmt.Errorf("agreed count %d (status %+v), want 1", r.Result(), st)
		}
		return nil
	})
	for rank := 0; rank < 3; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}

// TestIvalidateAllInWaitany reproduces the Figure 13 wait shape: Waitany
// over {validate request, detector Irecv}; with no failures the validate
// side completes first.
func TestIvalidateAllInWaitany(t *testing.T) {
	res := runWorld(t, 3, func(p *Proc) error {
		c := p.World()
		right := (p.Rank() + 1) % 3
		det := c.Irecv(right, 99)
		val := c.IvalidateAll()
		idx, st, err := Waitany(val, det)
		if err != nil {
			return err
		}
		if idx != 0 {
			return fmt.Errorf("detector completed before validate: idx=%d", idx)
		}
		if st.Len != 0 {
			return fmt.Errorf("agreed failures %d, want 0", st.Len)
		}
		det.Cancel()
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestValidateAllReenablesCollectiveGate(t *testing.T) {
	res := runWorld(t, 3, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			p.Die()
		}
		for p.Registry().AliveCount() > 2 {
			time.Sleep(time.Millisecond)
		}
		if err := c.CollectiveOK(); !IsRankFailStop(err) {
			return fmt.Errorf("collectives should be disabled after failure, got %v", err)
		}
		if _, err := c.ValidateAll(); err != nil {
			return err
		}
		if err := c.CollectiveOK(); err != nil {
			return fmt.Errorf("collectives should be re-enabled: %v", err)
		}
		members := c.CollMembers()
		if len(members) != 2 || members[0] != 0 || members[1] != 2 {
			return fmt.Errorf("participants %v", members)
		}
		if c.ValidateEpoch() != 1 {
			return fmt.Errorf("epoch %d", c.ValidateEpoch())
		}
		return nil
	})
	if res.Ranks[0].Err != nil || res.Ranks[2].Err != nil {
		t.Fatalf("errors: %v / %v", res.Ranks[0].Err, res.Ranks[2].Err)
	}
}

func TestValidateAllSequentialInstances(t *testing.T) {
	res := runWorld(t, 3, func(p *Proc) error {
		c := p.World()
		for i := 0; i < 5; i++ {
			cnt, err := c.ValidateAll()
			if err != nil {
				return err
			}
			if cnt != 0 {
				return fmt.Errorf("instance %d: count %d", i, cnt)
			}
		}
		if c.ValidateEpoch() != 5 {
			return fmt.Errorf("epoch %d", c.ValidateEpoch())
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

// TestValidateAllAgreementProperty is the property-based agreement check:
// for arbitrary failure subsets (never including every rank), all
// survivors return the same count, equal to the number of failures.
func TestValidateAllAgreementProperty(t *testing.T) {
	prop := func(seed uint32) bool {
		n := 3 + int(seed%5)                   // world sizes 3..7
		failMask := int(seed) % (1 << (n - 1)) // rank n-1 always survives
		var failures []int
		for r := 0; r < n-1; r++ {
			if failMask&(1<<r) != 0 {
				failures = append(failures, r)
			}
		}
		var mu sync.Mutex
		counts := map[int]int{}
		w, err := NewWorld(n, WithDeadline(30*time.Second))
		if err != nil {
			return false
		}
		res, err := w.Run(func(p *Proc) error {
			c := p.World()
			c.SetErrhandler(ErrorsReturn)
			for _, f := range failures {
				if p.Rank() == f {
					p.Die()
				}
			}
			cnt, err := c.ValidateAll()
			if err != nil {
				return err
			}
			mu.Lock()
			counts[p.Rank()] = cnt
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Logf("seed %d: run error %v", seed, err)
			return false
		}
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if rr.Err != nil {
				t.Logf("seed %d: rank %d error %v", seed, rank, rr.Err)
				return false
			}
			if counts[rank] < len(failures) {
				// Survivors must agree on at least the injected failures;
				// racing deaths can only add, never remove.
				t.Logf("seed %d: rank %d count %d < %d", seed, rank, counts[rank], len(failures))
				return false
			}
		}
		// All survivors must agree on the same count.
		first := -1
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if first == -1 {
				first = counts[rank]
			} else if counts[rank] != first {
				t.Logf("seed %d: disagreement %v", seed, counts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
