package mpi

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// This file implements the tree topology for MPI_Comm_validate_all. The
// coordinator protocol in agreement.go funnels every vote through a
// single rank — O(N) fan-in at the coordinator, which is exactly the
// funnel SWIM-style membership removes from failure detection. Tree mode
// reduces votes up a fault-aware spanning tree instead:
//
//   - The tree is derived from the sorted live view (the communicator
//     group minus this rank's known failures) by heap indexing: the root
//     is view[0] and the children of the rank at index i sit at indices
//     2i+1 and 2i+2. Every rank derives the same tree from the same
//     view, and the tree re-derives itself as the view shrinks — no
//     repair protocol, just recomputation.
//
//   - Each rank pushes its subtree AGGREGATE (the union of failure
//     reports it has seen, plus the set of ranks those reports cover)
//     up to its current parent, re-pushing whenever the aggregate grows
//     or the parent changes. Coverage is a monotone union, so votes
//     received from ranks that are no longer children remain valid.
//
//   - The root decides once its covered set includes the whole live
//     view: every live member's vote is in the aggregate, so the union
//     is the decision. The decision flows down the tree, each rank
//     forwarding to its current children before returning.
//
// Failure handling falls out of monotonicity:
//
//   - An interior node dying mid-round orphans its subtree; the orphans
//     observe the view change, recompute their parent, and re-push
//     their aggregates along the new edges. Whatever the dead node had
//     absorbed but not yet forwarded is reconstructed from below.
//
//   - A root dying after a partial decide broadcast is covered by two
//     rules: the new root PULLs aggregates from live members missing
//     from its covered set whenever the view changes (ranks that
//     already returned no longer push), and any vote or pull arriving
//     at a rank that holds the decision is answered with the decision
//     reactively (agreement.go), even after that rank returned. If no
//     live rank holds the old decision then no alive rank returned it,
//     so the new root deciding fresh is safe — the same uniqueness
//     argument as coordinator succession.
const (
	// AgreementCoordinator funnels votes through the lowest alive rank —
	// the paper-faithful protocol of agreement.go, and the default.
	AgreementCoordinator = "coordinator"
	// AgreementTree reduces votes up the fault-aware spanning tree
	// implemented in this file — O(log N) depth, O(1) fan-in per rank.
	AgreementTree = "tree"
)

// Tree-mode message types, extending the agreeReq/agreeVote/agreeDecide
// enum in agreement.go.
const (
	// agreeTreeVote carries a subtree aggregate up one tree edge:
	// Failed is the union of failure reports, Covered the ranks whose
	// votes the union includes.
	agreeTreeVote uint8 = 3 + iota
	// agreeTreeDecide carries the decision down the tree (and serves as
	// the reactive answer to votes and pulls arriving post-decision).
	agreeTreeDecide
	// agreeTreePull asks a rank for its aggregate directly. Sent only by
	// a root whose view changed mid-round, to re-cover members that
	// already returned and therefore no longer push.
	agreeTreePull
)

// treeViewLocked returns the live view: group minus this rank's known
// failures. group must be sorted; the view inherits the order.
func (e *engine) treeViewLocked(group []int) []int {
	view := make([]int, 0, len(group))
	for _, m := range group {
		if m >= 0 && m < len(e.knownFailed) && !e.knownFailed[m] {
			view = append(view, m)
		}
	}
	return view
}

// treeParent returns the parent of rank r in the heap-indexed tree over
// view, and ok=false when r is the root or not in the view at all.
func treeParent(view []int, r int) (int, bool) {
	for i, m := range view {
		if m == r {
			if i == 0 {
				return 0, false
			}
			return view[(i-1)/2], true
		}
	}
	return 0, false
}

// treeChildren returns the children of rank r in the heap-indexed tree
// over view (empty for leaves and for ranks not in the view).
func treeChildren(view []int, r int) []int {
	for i, m := range view {
		if m == r {
			var kids []int
			if l := 2*i + 1; l < len(view) {
				kids = append(kids, view[l])
			}
			if rt := 2*i + 2; rt < len(view) {
				kids = append(kids, view[rt])
			}
			return kids
		}
	}
	return nil
}

// treeAggregateLocked folds this rank's own vote and every recorded
// subtree vote into (covered set, failed union). If any recorded vote
// carries a prior decision, it is surfaced for verbatim adoption.
func (e *engine) treeAggregateLocked(key agreeKey, group []int) (covered, failed map[int]bool, adopted []int, haveAdopted bool) {
	covered = map[int]bool{e.arank(): true}
	failed = map[int]bool{}
	for _, f := range e.knownFailedSnapshotLocked(group) {
		failed[f] = true
	}
	for _, v := range e.agree.votes[key] {
		covered[v.From] = true
		for _, r := range v.Covered {
			covered[r] = true
		}
		if v.Decided {
			adopted, haveAdopted = v.Failed, true
			continue
		}
		for _, f := range v.Failed {
			failed[f] = true
		}
	}
	return covered, failed, adopted, haveAdopted
}

// treeAggregateVoteLocked packages the current aggregate as a tree vote
// message (used for pull replies; the driver builds its own).
func (e *engine) treeAggregateVoteLocked(key agreeKey, group []int) *agreeMsg {
	covered, failed, adopted, haveAdopted := e.treeAggregateLocked(key, group)
	msg := &agreeMsg{Type: agreeTreeVote, Inst: key.inst, From: e.arank(),
		Covered: sortedKeys(covered)}
	if haveAdopted {
		msg.Failed, msg.Decided = adopted, true
	} else {
		msg.Failed = sortedKeys(failed)
	}
	return msg
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// covers reports whether the covered set includes every view member.
func covers(covered map[int]bool, view []int) bool {
	for _, m := range view {
		if !covered[m] {
			return false
		}
	}
	return true
}

// treeAgreementDriver runs one tree-mode agreement instance. The shape
// mirrors validateAllDriver's passive loop: all state changes (vote and
// decide arrivals, failure notifications) bump the engine's agreement
// generation channel, and each wake recomputes the view, the aggregate,
// and this rank's tree position from scratch.
func (c *Comm) treeAgreementDriver(key agreeKey) ([]int, error) {
	e := c.eng
	me := c.proc.rank
	group := append([]int(nil), c.Group()...)
	sort.Ints(group)
	start := time.Now()

	// Push/pull dedup fingerprints, local to this instance. Aggregates
	// are monotone unions, so (parent, |covered|, |failed|) identifies a
	// push; a pull round is re-armed only when the view changes.
	lastParent, lastCovered, lastFailed := -1, -1, -1
	lastPullView := e.fingerprintView(nil)

	for {
		var (
			sends    []agreeMsg
			sendDst  []int
			decision []int
			decided  bool
		)

		e.mu.Lock()
		if d, ok := e.agree.decisions[key]; ok {
			decision, decided = d, true
		}
		if !decided {
			if e.dead.Load() {
				e.mu.Unlock()
				panic(killedPanic{rank: e.rank})
			}
			if e.closed.Load() {
				e.mu.Unlock()
				return nil, ErrNoDecision
			}
			if e.w.aborted.Load() {
				e.mu.Unlock()
				panic(abortPanic{code: e.w.abortCode()})
			}
		}
		view := e.treeViewLocked(group)
		if !decided {
			covered, failedU, adopted, haveAdopted := e.treeAggregateLocked(key, group)
			switch {
			case haveAdopted:
				// A subtree surfaced a prior root's decision: adopt it
				// verbatim, exactly as a succeeding coordinator would.
				if adopted == nil {
					adopted = []int{}
				}
				e.agree.decisions[key] = adopted
				decision, decided = adopted, true
				e.agreeBumpLocked()
			// Replication mode: only the PRIMARY replica of the root's
			// logical rank acts as root; its standbys fall through to the
			// default case where treeParent reports no parent, so they park
			// until a decision (or their own promotion) bumps agreeCh and
			// this condition is recomputed.
			case len(view) > 0 && view[0] == me &&
				(e.w.repl == nil || e.w.repl.isPrimary(e.rank)):
				if covers(covered, view) {
					decision = sortedKeys(failedU)
					e.agree.decisions[key] = decision
					decided = true
					e.agreeBumpLocked()
					if e.w.obs != nil {
						e.w.obs.Observe(me, obs.AgreementRound, time.Since(start))
					}
				} else if fp := e.fingerprintView(view); fp != lastPullView {
					// View changed while members are missing from the
					// aggregate: some may have returned already and will
					// never push again — pull them directly.
					lastPullView = fp
					for _, m := range view {
						if m != me && !covered[m] {
							sends = append(sends, agreeMsg{Type: agreeTreePull,
								Inst: key.inst, From: me, Group: group})
							sendDst = append(sendDst, m)
						}
					}
				}
			default:
				if parent, ok := treeParent(view, me); ok &&
					(parent != lastParent || len(covered) != lastCovered || len(failedU) != lastFailed) {
					lastParent, lastCovered, lastFailed = parent, len(covered), len(failedU)
					// Group rides along so that a parent that turns out to
					// be a revived slot for a pre-join instance can serve
					// it reactively (see deliverAgreement).
					sends = append(sends, agreeMsg{Type: agreeTreeVote,
						Inst: key.inst, From: me, Group: group,
						Failed: sortedKeys(failedU), Covered: sortedKeys(covered)})
					sendDst = append(sendDst, parent)
				}
			}
		}
		if decided {
			// Forward the decision to the current children before
			// returning; duplicates are idempotent at the receiver.
			for _, ch := range treeChildren(view, me) {
				sends = append(sends, agreeMsg{Type: agreeTreeDecide,
					Inst: key.inst, From: me, Failed: decision, Decided: true})
				sendDst = append(sendDst, ch)
			}
		}
		var ch chan struct{}
		if !decided {
			ch = e.agreeCh
		}
		e.mu.Unlock()

		for i := range sends {
			msg := sends[i]
			e.sendAgreement(sendDst[i], key.ctx, &msg)
		}
		if decided {
			return decision, nil
		}
		select {
		case <-ch:
		case <-e.downCh:
		case <-e.w.abortCh:
		}
	}
}

// fingerprintView reduces a view to a comparable value for pull-round
// dedup. With elastic worlds a view can shrink and then regrow to a
// previous shape when a slot is revived, so member generations are folded
// in alongside (len, sum): a revival bumps the generation sum even when
// the rank sum repeats.
func (e *engine) fingerprintView(view []int) [3]int {
	sum, gsum := 0, 0
	for _, m := range view {
		sum += m
		// appGeneration speaks the view's identity space: physical slots
		// normally, the primary replica's generation in replication mode.
		gsum += e.w.appGeneration(m)
	}
	return [3]int{len(view), sum, gsum}
}
