package mpi

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObservabilityTaps drives a small world end to end and checks every
// runtime-layer histogram family that the run should populate actually
// received samples: send completion and receive wait from the engines,
// validate_all and agreement rounds from the consensus driver, and
// notification latency from the failure detector.
func TestObservabilityTaps(t *testing.T) {
	const n = 4
	reg := obs.NewRegistry(n)
	w, err := NewWorld(n,
		WithDeadline(30*time.Second),
		WithObservability(reg),
		WithNotifyDelay(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		right := (p.Rank() + 1) % n
		left := (p.Rank() + n - 1) % n
		// One ring exchange: everyone sends right, receives from left.
		sreq := c.Isend(right, 7, []byte{byte(p.Rank())})
		rreq := c.Irecv(left, 7)
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		if _, err := sreq.Wait(); err != nil {
			return err
		}
		// Rank 3 dies; everyone else agrees on the failure set.
		if p.Rank() == 3 {
			p.Die()
		}
		time.Sleep(5 * time.Millisecond) // let the notification propagate
		if _, err := c.ValidateAll(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.FinishedCount() != n-1 {
		t.Fatalf("finished %d ranks, want %d", res.FinishedCount(), n-1)
	}

	snap := reg.Snapshot()
	for _, f := range []obs.Family{obs.SendComplete, obs.RecvWait, obs.ValidateAll, obs.AgreementRound, obs.NotifyLatency} {
		if got := snap.Family(f).Merged.Count; got == 0 {
			t.Errorf("family %s recorded no samples", f)
		}
	}
	// NotifyLatency must reflect the configured 1ms detection delay.
	if nl := snap.Family(obs.NotifyLatency).Merged; nl.Max < int64(time.Millisecond) {
		t.Errorf("notify latency max %v < configured 1ms delay", time.Duration(nl.Max))
	}
	// The agreement coordinator is rank 0: its per-rank histogram holds the
	// agreement-round samples.
	if c := snap.Family(obs.AgreementRound).PerRank[0].Count; c == 0 {
		t.Errorf("agreement rounds not attributed to coordinator rank 0")
	}
}

// TestObservabilityDisabledIsFree checks a world without a registry takes
// none of the timing paths (waitStart stays zero, obs stays nil).
func TestObservabilityDisabledIsFree(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if w.Obs() != nil {
		t.Fatal("unconfigured world must have nil obs registry")
	}
	_, err = w.Run(func(p *Proc) error {
		c := p.World()
		other := 1 - p.Rank()
		if p.Rank() == 0 {
			return c.Send(other, 1, []byte("x"))
		}
		_, _, err := c.Recv(other, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
