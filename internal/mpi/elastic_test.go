package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// runElastic builds a world with the given extra options and runs fn on
// every rank, passing the world handle through so rank bodies can call
// Spawn and inspect registries. The 60s deadline keeps a broken handshake
// from hanging the suite.
func runElastic(t *testing.T, n int, opts []Option, fn func(w *World, p *Proc) error) (*World, *RunResult) {
	t.Helper()
	w, err := NewWorld(n, append([]Option{WithDeadline(60 * time.Second)}, opts...)...)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(w, p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return w, res
}

// pollUntil spins until pred returns true, surfacing pred errors. Bounded
// so a wedged handshake fails the rank instead of tripping the watchdog.
func pollUntil(what string, pred func() (bool, error)) error {
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ok, err := pred()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}

func TestRankIDString(t *testing.T) {
	if s := (RankID{Slot: 3, Gen: 2}).String(); s != "3.2" {
		t.Fatalf("RankID string: %q", s)
	}
	if s := (RankID{Slot: 0, Gen: 1}).String(); s != "0.1" {
		t.Fatalf("RankID string: %q", s)
	}
}

func TestSpawnValidation(t *testing.T) {
	// Non-elastic worlds reject Spawn outright.
	_, _ = runElastic(t, 2, nil, func(w *World, p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if _, err := w.Spawn(1); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("Spawn on non-elastic world: %v", err)
		}
		return nil
	})

	// Elastic worlds validate the slot.
	_, res := runElastic(t, 2, []Option{WithElastic(ElasticOptions{})}, func(w *World, p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if _, err := w.Spawn(-1); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("out-of-range slot: %v", err)
		}
		if _, err := w.Spawn(5); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("out-of-range slot: %v", err)
		}
		if _, err := w.Spawn(1); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("spawning an alive slot: %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)

	// Spawn outside a live run is rejected even for a confirmed-dead slot.
	w, err := NewWorld(2, WithElastic(ElasticOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	w.Kill(1)
	if _, err := w.Spawn(1); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("Spawn outside a run: %v", err)
	}
}

// TestSpawnReincarnatesSlot is the core elastic round trip: a rank dies,
// AutoRespawn reincarnates the slot at generation 2, and the newcomer's
// traffic flows to a survivor that was stuck retrying against the corpse.
func TestSpawnReincarnatesSlot(t *testing.T) {
	w, res := runElastic(t, 3,
		[]Option{WithElastic(ElasticOptions{AutoRespawn: true}), WithMetrics(metrics.NewWorld(3))},
		func(w *World, p *Proc) error {
			c := p.World()
			switch {
			case p.Rank() == 2 && p.Gen() == 1:
				if err := c.Send(0, 5, []byte("dying")); err != nil {
					return err
				}
				p.Die()
				return nil // unreachable
			case p.Rank() == 2: // the reincarnation
				if p.Gen() != 2 {
					return fmt.Errorf("unexpected generation %d", p.Gen())
				}
				if id := p.ID().String(); id != "2.2" {
					return fmt.Errorf("identity %q", id)
				}
				return c.Send(0, 7, []byte("reborn"))
			case p.Rank() == 0:
				if _, _, err := c.Recv(2, 5); err != nil {
					return err
				}
				// The posted receive fails when gen 1 dies and fails fast
				// while the slot is known-failed; once the slot revives the
				// retry blocks and matches the newcomer's send.
				for {
					pl, _, err := c.Recv(2, 7)
					if err == nil {
						if string(pl) != "reborn" {
							return fmt.Errorf("payload %q", pl)
						}
						return nil
					}
					if !IsRankFailStop(err) {
						return err
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			return nil
		})
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 gen 1 should be recorded killed: %+v", res.Ranks[2])
	}
	if len(res.Respawns) != 1 {
		t.Fatalf("respawns: %+v", res.Respawns)
	}
	rr := res.Respawns[0]
	if rr.Slot != 2 || rr.Gen != 2 || !rr.Finished || rr.Err != nil {
		t.Fatalf("respawn result: %+v", rr)
	}
	if got := w.Metrics().Get(2, metrics.Respawns); got != 1 {
		t.Fatalf("respawn counter: %d", got)
	}
	requireNoRankErrors(t, res)
}

// TestSpawnRespawnBudget: MaxRespawns caps reincarnations; a second death
// stays dead.
func TestSpawnRespawnBudget(t *testing.T) {
	_, res := runElastic(t, 3,
		[]Option{WithElastic(ElasticOptions{AutoRespawn: true, MaxRespawns: 1})},
		func(w *World, p *Proc) error {
			c := p.World()
			switch {
			case p.Rank() == 2 && p.Gen() == 1:
				p.Die()
			case p.Rank() == 2: // gen 2: announce, then die again
				if err := c.Send(0, 9, nil); err != nil {
					return err
				}
				p.Die()
			case p.Rank() == 0:
				for {
					_, _, err := c.Recv(2, 9)
					if err == nil {
						break
					}
					if !IsRankFailStop(err) {
						return err
					}
					time.Sleep(200 * time.Microsecond)
				}
				// Wait for gen 2's death to be known, then give a (buggy)
				// third spawn a moment to happen — it must not.
				if err := pollUntil("gen2 death", func() (bool, error) {
					info, err := c.RankState(2)
					if err != nil {
						return false, err
					}
					return info.State != RankOK, nil
				}); err != nil {
					return err
				}
				time.Sleep(20 * time.Millisecond)
				if g := p.Registry().Generation(2); g != 2 {
					return fmt.Errorf("budget exceeded: slot 2 at generation %d", g)
				}
			}
			return nil
		})
	if len(res.Respawns) != 1 {
		t.Fatalf("respawns: %+v", res.Respawns)
	}
	if rr := res.Respawns[0]; rr.Gen != 2 || !rr.Killed {
		t.Fatalf("respawn result: %+v", rr)
	}
	requireNoRankErrors(t, res)
}

// TestShrinkDropsDeadMembers: the basic ULFM MPIX_Comm_shrink analogy — a
// dense survivor communicator over which collectives and p2p work again.
func TestShrinkDropsDeadMembers(t *testing.T) {
	_, res := runElastic(t, 4, nil, func(w *World, p *Proc) error {
		c := p.World()
		if p.Rank() == 3 {
			p.Die()
		}
		if err := pollUntil("death of 3", func() (bool, error) {
			info, err := c.RankState(3)
			if err != nil {
				return false, err
			}
			return info.State != RankOK, nil
		}); err != nil {
			return err
		}
		nc, err := c.Shrink()
		if err != nil {
			return err
		}
		if nc.Size() != 3 {
			return fmt.Errorf("shrunk size %d", nc.Size())
		}
		if nc.Rank() != p.Rank() { // survivors 0,1,2 stay dense in order
			return fmt.Errorf("shrunk rank %d (world %d)", nc.Rank(), p.Rank())
		}
		// The shrunk communicator is fully alive: a ring send works.
		right, left := (nc.Rank()+1)%3, (nc.Rank()+2)%3
		if err := nc.Send(right, 1, []byte{byte(nc.Rank())}); err != nil {
			return err
		}
		pl, _, err := nc.Recv(left, 1)
		if err != nil {
			return err
		}
		if len(pl) != 1 || int(pl[0]) != left {
			return fmt.Errorf("ring payload %v", pl)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

// TestShrinkRacesConcurrentValidate runs Shrink on the world communicator
// while every rank (including the one about to die) drives validates on a
// duplicate. The two agreement streams are keyed by different contexts and
// must not interfere; the shrink's own validate must wait out the victim's
// vote-or-death.
func TestShrinkRacesConcurrentValidate(t *testing.T) {
	for _, mode := range []string{AgreementCoordinator, AgreementTree} {
		t.Run(mode, func(t *testing.T) {
			_, res := runElastic(t, 5, []Option{WithAgreement(mode)}, func(w *World, p *Proc) error {
				c := p.World()
				d := c.Dup()
				var wg sync.WaitGroup
				errCh := make(chan error, 3)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						if _, err := d.ValidateAll(); err != nil {
							errCh <- err
							return
						}
					}
				}()
				if p.Rank() == 4 {
					// The victim joins its side goroutine BEFORE dying: an
					// app goroutine must never make MPI calls on a dead rank.
					wg.Wait()
					p.Die()
				}
				nc, err := c.Shrink()
				if err != nil {
					return err
				}
				wg.Wait()
				close(errCh)
				for e := range errCh {
					return e
				}
				if nc.Size() != 4 {
					return fmt.Errorf("shrunk size %d", nc.Size())
				}
				for _, wr := range nc.Group() {
					if wr == 4 {
						return fmt.Errorf("victim survived shrink: %v", nc.Group())
					}
				}
				return nil
			})
			requireNoRankErrors(t, res)
		})
	}
}

// TestShrinkMidSecondFailure: a second rank dies between the shrink's
// agreement and the survivors' use of the result. Per the ULFM contract the
// first shrink may legitimately still contain the second victim — the
// caller's recovery is to shrink again.
func TestShrinkMidSecondFailure(t *testing.T) {
	_, res := runElastic(t, 5, nil, func(w *World, p *Proc) error {
		c := p.World()
		switch p.Rank() {
		case 4: // first victim: dies before any agreement
			p.Die()
		case 3: // second victim: votes in the shrink's validate, then dies
			if err := pollUntil("death of 4", func() (bool, error) {
				info, err := c.RankState(4)
				if err != nil {
					return false, err
				}
				return info.State != RankOK, nil
			}); err != nil {
				return err
			}
			if _, err := c.ValidateAll(); err != nil {
				return err
			}
			p.Die()
		default:
			nc1, err := c.Shrink()
			if err != nil {
				return err
			}
			// Rank 3 voted, so the agreed decision names only rank 4.
			if nc1.Size() != 4 {
				return fmt.Errorf("first shrink size %d", nc1.Size())
			}
			// The second failure lands after the repair: wait for the
			// notification on the shrunk communicator, then shrink again.
			cr3 := -1
			for i, wr := range nc1.Group() {
				if wr == 3 {
					cr3 = i
				}
			}
			if cr3 < 0 {
				return fmt.Errorf("rank 3 missing from first shrink: %v", nc1.Group())
			}
			if err := pollUntil("death of 3", func() (bool, error) {
				info, err := nc1.RankState(cr3)
				if err != nil {
					return false, err
				}
				return info.State != RankOK, nil
			}); err != nil {
				return err
			}
			nc2, err := nc1.Shrink()
			if err != nil {
				return err
			}
			if nc2.Size() != 3 {
				return fmt.Errorf("second shrink size %d", nc2.Size())
			}
			right, left := (nc2.Rank()+1)%3, (nc2.Rank()+2)%3
			if err := nc2.Send(right, 2, []byte{byte(nc2.Rank())}); err != nil {
				return err
			}
			pl, _, err := nc2.Recv(left, 2)
			if err != nil {
				return err
			}
			if len(pl) != 1 || int(pl[0]) != left {
				return fmt.Errorf("ring payload %v", pl)
			}
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

// TestValidateAcrossRevive exercises the reincarnation's join fence: the
// survivors complete agreement instances while the slot is dead, and the
// newcomer's seeded counters align its FIRST validate with the survivors'
// next one — pre-join instances are answered reactively, never re-entered.
func TestValidateAcrossRevive(t *testing.T) {
	for _, mode := range []string{AgreementCoordinator, AgreementTree} {
		t.Run(mode, func(t *testing.T) {
			_, res := runElastic(t, 4,
				[]Option{WithAgreement(mode), WithElastic(ElasticOptions{})},
				func(w *World, p *Proc) error {
					c := p.World()
					if p.Rank() == 3 && p.Gen() == 2 {
						// The reincarnation runs exactly one validate: its
						// seeded instance counter lines it up with the
						// survivors' post-revive round.
						n, err := c.ValidateAll()
						if err != nil {
							return err
						}
						if n != 0 {
							return fmt.Errorf("gen2 validate reported %d failures", n)
						}
						return nil
					}
					// Instance 0: everyone alive.
					if n, err := c.ValidateAll(); err != nil || n != 0 {
						return fmt.Errorf("validate#0: n=%d err=%v", n, err)
					}
					if p.Rank() == 3 {
						p.Die()
					}
					if err := pollUntil("death of 3", func() (bool, error) {
						info, err := c.RankState(3)
						if err != nil {
							return false, err
						}
						return info.State != RankOK, nil
					}); err != nil {
						return err
					}
					// Instances 1 and 2 run against the dead slot.
					for i := 1; i <= 2; i++ {
						n, err := c.ValidateAll()
						if err != nil {
							return err
						}
						if n != 1 {
							return fmt.Errorf("validate#%d reported %d failures", i, n)
						}
					}
					if p.Rank() == 0 {
						gen, err := w.Spawn(3)
						if err != nil {
							return err
						}
						if gen != 2 {
							return fmt.Errorf("spawned generation %d", gen)
						}
					}
					if err := pollUntil("revival of 3", func() (bool, error) {
						info, err := c.RankState(3)
						if err != nil {
							return false, err
						}
						return info.State == RankOK && info.Generation == 2, nil
					}); err != nil {
						return err
					}
					// Instance 3: aligned with the reincarnation's first.
					n, err := c.ValidateAll()
					if err != nil {
						return err
					}
					if n != 0 {
						return fmt.Errorf("post-revive validate reported %d failures", n)
					}
					return nil
				})
			requireNoRankErrors(t, res)
			if len(res.Respawns) != 1 || !res.Respawns[0].Finished || res.Respawns[0].Err != nil {
				t.Fatalf("respawns: %+v", res.Respawns)
			}
		})
	}
}

// TestStaleGenerationFrameRejected injects frames stamped for (and by) a
// wrong incarnation straight into an engine: the generation fence must
// reject them before matching, so a posted receive only ever sees the
// properly stamped payload.
func TestStaleGenerationFrameRejected(t *testing.T) {
	w, res := runElastic(t, 2, []Option{WithMetrics(metrics.NewWorld(2))}, func(w *World, p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			r := c.Irecv(1, 42)
			if err := c.Send(1, 1, nil); err != nil {
				return err
			}
			if _, err := r.Wait(); err != nil {
				return err
			}
			if pl := r.Payload(); string(pl) != "good" {
				return fmt.Errorf("fence leaked a stale frame: %q", pl)
			}
			return nil
		}
		if _, _, err := c.Recv(0, 1); err != nil {
			return err
		}
		// Craft frames that would match the posted receive except for the
		// generation stamps. ctxP2P is identical on every rank's world comm.
		for _, pkt := range []*transport.Packet{
			{Src: 1, Dst: 0, Tag: 42, Context: c.ctxP2P, Kind: transport.KindData,
				SrcGen: 7, DstGen: 1, Payload: []byte("stale-src")},
			{Src: 1, Dst: 0, Tag: 42, Context: c.ctxP2P, Kind: transport.KindData,
				SrcGen: 1, DstGen: 7, Payload: []byte("stale-dst")},
		} {
			w.eng(0).deliver(pkt)
		}
		return c.Send(0, 42, []byte("good"))
	})
	requireNoRankErrors(t, res)
	if got := w.Metrics().Get(0, metrics.StaleGenRejected); got != 2 {
		t.Fatalf("stale_gen_rejected = %d, want 2", got)
	}
}

// TestFetchStateProtocol covers the state-recovery RPC: provider bytes,
// the no-provider answer, and argument validation.
func TestFetchStateProtocol(t *testing.T) {
	_, res := runElastic(t, 3, nil, func(w *World, p *Proc) error {
		c := p.World()
		switch p.Rank() {
		case 1:
			p.SetStateProvider(func() []byte { return []byte("state-of-1") })
			if err := c.Send(0, 98, nil); err != nil { // provider is ready
				return err
			}
			_, _, err := c.Recv(0, 99) // keep the provider alive until fetched
			return err
		case 2:
			_, _, err := c.Recv(0, 99)
			return err
		case 0:
			// Release the peers no matter which assertion fails, so the
			// real error surfaces instead of a world deadline.
			defer func() {
				for peer := 1; peer <= 2; peer++ {
					_ = c.Send(peer, 99, nil)
				}
			}()
			if _, _, err := c.Recv(1, 98); err != nil {
				return err
			}
			pl, err := p.FetchState(1)
			if err != nil || string(pl) != "state-of-1" {
				return fmt.Errorf("FetchState(1) = %q, %v", pl, err)
			}
			if _, err := p.FetchState(2); !errors.Is(err, ErrNoState) {
				return fmt.Errorf("FetchState(2) without provider: %v", err)
			}
			if _, err := p.FetchState(0); !errors.Is(err, ErrInvalidRank) {
				return fmt.Errorf("FetchState(self): %v", err)
			}
			if _, err := p.FetchState(9); !errors.Is(err, ErrInvalidRank) {
				return fmt.Errorf("FetchState(9): %v", err)
			}
			return nil
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

// TestFetchStateDeadPeer: a fetch against a known-dead rank fails stop
// instead of hanging.
func TestFetchStateDeadPeer(t *testing.T) {
	_, res := runElastic(t, 2, nil, func(w *World, p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			p.Die()
		}
		if err := pollUntil("death of 1", func() (bool, error) {
			info, err := c.RankState(1)
			if err != nil {
				return false, err
			}
			return info.State != RankOK, nil
		}); err != nil {
			return err
		}
		if _, err := p.FetchState(1); !IsRankFailStop(err) {
			return fmt.Errorf("FetchState(dead) = %v", err)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

// TestSpawnConcurrentSingleWinner: many Spawn calls racing for the same
// confirmed-dead slot produce exactly one revival — the losers are refused
// under runMu with ErrInvalidArg instead of reaching Revive on a live rank
// (which panics). Regression for the check-then-lock race between a manual
// Spawn and the AutoRespawn timer, or two survivors reacting to one death.
func TestSpawnConcurrentSingleWinner(t *testing.T) {
	_, res := runElastic(t, 3, []Option{WithElastic(ElasticOptions{})},
		func(w *World, p *Proc) error {
			c := p.World()
			switch {
			case p.Rank() == 2 && p.Gen() == 1:
				p.Die()
			case p.Rank() == 2: // the reincarnation has nothing to prove
				return nil
			case p.Rank() == 0:
				if err := pollUntil("death of 2", func() (bool, error) {
					info, err := c.RankState(2)
					if err != nil {
						return false, err
					}
					return info.State != RankOK, nil
				}); err != nil {
					return err
				}
				const racers = 8
				var wg sync.WaitGroup
				errs := make([]error, racers)
				gens := make([]int, racers)
				for i := 0; i < racers; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						gens[i], errs[i] = w.Spawn(2)
					}(i)
				}
				wg.Wait()
				won := 0
				for i := 0; i < racers; i++ {
					switch {
					case errs[i] == nil:
						won++
						if gens[i] != 2 {
							return fmt.Errorf("winner spawned generation %d", gens[i])
						}
					case !errors.Is(errs[i], ErrInvalidArg):
						return fmt.Errorf("loser error: %v", errs[i])
					}
				}
				if won != 1 {
					return fmt.Errorf("%d racing spawns succeeded, want exactly 1", won)
				}
			}
			return nil
		})
	requireNoRankErrors(t, res)
	if len(res.Respawns) != 1 {
		t.Fatalf("respawns: %+v", res.Respawns)
	}
}

// TestLateFailureNoticeAfterRevive: a failure notification arriving after
// the slot has already been revived (a delayed notification racing a fast
// respawn) must not re-mark the slot failed — but it must still fail the
// state fetches and posted receives aimed at the dead incarnation, whose
// frames were generation-fenced and can never complete. Regression for a
// FetchState that would otherwise block until the world watchdog.
func TestLateFailureNoticeAfterRevive(t *testing.T) {
	_, res := runElastic(t, 3, []Option{WithElastic(ElasticOptions{})},
		func(w *World, p *Proc) error {
			c := p.World()
			if p.Rank() != 0 {
				_, _, err := c.Recv(0, 99) // park until rank 0 is done asserting
				return err
			}
			defer func() {
				for peer := 1; peer <= 2; peer++ {
					_ = c.Send(peer, 99, nil)
				}
			}()
			// Plant a pending FetchState waiter and a posted receive toward
			// rank 1, then deliver a failure notification for a slot the
			// registry reports alive — exactly the engine state after a
			// revive already repaired it.
			e := w.eng(0)
			e.mu.Lock()
			e.stateSeq++
			id := e.stateSeq
			waiter := &stateWaiter{target: 1, ch: make(chan stateReply, 1)}
			e.stateWaiters[id] = waiter
			e.mu.Unlock()
			r := c.Irecv(1, 42)
			e.onPeerFailure(1)
			select {
			case rep := <-waiter.ch:
				if !IsRankFailStop(rep.err) {
					return fmt.Errorf("state waiter completed with %v", rep.err)
				}
			default:
				return fmt.Errorf("late notification left the state waiter pending")
			}
			if _, err := r.Wait(); !IsRankFailStop(err) {
				return fmt.Errorf("posted receive after late notification: %v", err)
			}
			// The alive slot must NOT be marked failed, or it would stay
			// failed forever (onPeerRevive already ran and will not repair).
			if kf := e.knownFailedSnapshot(nil); len(kf) != 0 {
				return fmt.Errorf("late notification stuck knownFailed=%v", kf)
			}
			return nil
		})
	requireNoRankErrors(t, res)
}
