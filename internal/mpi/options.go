package mpi

import (
	"time"

	"repro/internal/chaos"
	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/reliable"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Option configures a World under construction; pass options to NewWorld.
// Options compose left to right, so a later option overrides an earlier
// one for the same field.
type Option func(*Config)

// WithFabric selects the transport that moves packets between ranks.
// The default (nil) is the in-memory Local fabric.
func WithFabric(f transport.Fabric) Option {
	return func(cfg *Config) { cfg.Fabric = f }
}

// WithTracer attaches an event recorder to the world.
func WithTracer(t *trace.Recorder) Option {
	return func(cfg *Config) { cfg.Tracer = t }
}

// WithMetrics attaches a per-rank operation counter table to the world.
func WithMetrics(m *metrics.World) Option {
	return func(cfg *Config) { cfg.Metrics = m }
}

// WithObservability attaches a latency-histogram registry: per-rank
// send-completion, receive-wait, validate_all, agreement-round, election,
// retry-backoff, chaos-delay and failure-notification timings, cheap
// enough to stay on under benchmark load. The registry should be sized to
// the world (obs.NewRegistry(size)).
func WithObservability(r *obs.Registry) Option {
	return func(cfg *Config) { cfg.Obs = r }
}

// WithHook installs an operation-boundary observer, the attachment point
// for deterministic fault injection.
func WithHook(h HookFunc) Option {
	return func(cfg *Config) { cfg.Hook = h }
}

// WithDeadline bounds Run's wall-clock time; on expiry the world is torn
// down and Run reports ErrTimedOut with the still-running ranks. Zero
// means no limit.
func WithDeadline(d time.Duration) Option {
	return func(cfg *Config) { cfg.Deadline = d }
}

// WithNotifyDelay delays failure notifications to surviving ranks,
// modelling failure-detection latency. Zero delivers synchronously.
func WithNotifyDelay(d time.Duration) Option {
	return func(cfg *Config) { cfg.NotifyDelay = d }
}

// WithDetector selects the failure-detection mode: DetectorOracle (the
// default — failures are known the instant they are injected),
// DetectorHeartbeat (failures are detected by missed heartbeats and
// converted to fail-stop by fencing before being reported), or
// DetectorSwim (SWIM-style randomized probing with gossip dissemination,
// O(1) control traffic per rank).
func WithDetector(mode string) Option {
	return func(cfg *Config) { cfg.Detector = mode }
}

// WithHeartbeat selects the heartbeat detector and tunes its monitors;
// zero option fields take the detector package defaults.
func WithHeartbeat(opts detector.HeartbeatOptions) Option {
	return func(cfg *Config) {
		cfg.Detector = DetectorHeartbeat
		cfg.Heartbeat = opts
	}
}

// WithSwim selects the SWIM membership detector and tunes its monitors;
// zero option fields take the membership package defaults.
func WithSwim(opts membership.Options) Option {
	return func(cfg *Config) {
		cfg.Detector = DetectorSwim
		cfg.Swim = opts
	}
}

// WithAgreement selects the validate_all consensus topology:
// AgreementCoordinator (the default — the paper-faithful single
// coordinator funnel) or AgreementTree (votes reduced up a fault-aware
// spanning tree, the scalable choice for large N).
func WithAgreement(mode string) Option {
	return func(cfg *Config) { cfg.Agreement = mode }
}

// WithChaos injects seeded network faults from the plan between the
// engines and the fabric. It implies the reliability sublayer
// (WithReliability), which is what lets the runtime run through the
// injected drop/duplication/corruption rather than hang on them.
func WithChaos(plan *chaos.Plan) Option {
	return func(cfg *Config) { cfg.Chaos = plan }
}

// WithReliability enables the reliability sublayer — per-link sequence
// numbers, acks, receiver-side dedup, bounded retransmission, and
// escalation of exhausted links to fail-stop — without a chaos plan.
// Zero option fields take the reliable package defaults.
func WithReliability(opts reliable.Options) Option {
	return func(cfg *Config) {
		cfg.Reliable = true
		cfg.ReliableOptions = opts
	}
}

// WithElastic enables elastic-world repair: confirmed-dead slots may be
// reoccupied at the next generation via World.Spawn, and automatically
// when opts.AutoRespawn is set. See ElasticOptions.
func WithElastic(opts ElasticOptions) Option {
	return func(cfg *Config) {
		o := opts
		cfg.Elastic = &o
	}
}

// WithReplication enables replication mode: Config.Size is interpreted as
// the LOGICAL world size and every logical rank is backed by opts.R
// physical replicas that all run the rank function. Replica deaths are
// absorbed by promotion; the application sees a failure only when a
// logical rank's last replica dies. See ReplicationOptions.
func WithReplication(opts ReplicationOptions) Option {
	return func(cfg *Config) {
		o := opts
		cfg.Replication = &o
	}
}
