package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DetectorSwim selects SWIM-style gossip membership: each rank probes
// one randomized peer per protocol period, falls back to indirect probes
// via relays, and disseminates suspect/alive/confirm events by
// piggybacking gossip on control frames — O(1) control traffic per rank
// where the heartbeat mesh pays O(N). Suspicion feeds the same fencing
// protocol and confirm-gated registry as DetectorHeartbeat, so fail-stop
// accuracy is identical. See internal/membership.
const DetectorSwim = "swim"

// convTracker measures gossip convergence: the first origination of each
// membership event starts its clock, and every other rank's first learn
// of it records one dissemination latency sample.
type convTracker struct {
	mu      sync.Mutex
	origins map[membership.Event]time.Time
	seen    map[convKey]bool
}

type convKey struct {
	ev   membership.Event
	rank int
}

func newConvTracker() *convTracker {
	return &convTracker{
		origins: make(map[membership.Event]time.Time),
		seen:    make(map[convKey]bool),
	}
}

// origin records the first origination time of ev (later originators of
// the same event, e.g. concurrent confirmers, do not reset the clock).
func (c *convTracker) origin(ev membership.Event) {
	c.mu.Lock()
	if _, ok := c.origins[ev]; !ok {
		c.origins[ev] = time.Now()
	}
	c.mu.Unlock()
}

// learn returns the origination-to-learn latency the first time rank
// learns ev, and ok=false for repeats or events with no recorded origin.
func (c *convTracker) learn(rank int, ev membership.Event) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t0, ok := c.origins[ev]
	if !ok {
		return 0, false
	}
	k := convKey{ev: ev, rank: rank}
	if c.seen[k] {
		return 0, false
	}
	c.seen[k] = true
	return time.Since(t0), true
}

// initSwim switches the registry into confirm-gated mode and builds one
// SWIM monitor per rank over the world's fabric stack. Called from
// newWorldFromConfig; the monitors start inside Run, after the fabric is
// up.
func (w *World) initSwim(opts membership.Options) {
	w.registry.SetConfirmGate(true)
	w.registry.SubscribeSuspicion(w.onSuspicion)
	w.swConv = newConvTracker()
	w.swOpts = opts
	w.sw = make([]atomic.Pointer[membership.Swim], w.size)
	for i := range w.sw {
		w.sw[i].Store(w.makeSwim(i))
	}
}

// makeSwim builds one rank's SWIM monitor. Elastic respawn calls it again
// for the slot's next incarnation; the convergence tracker is shared
// across incarnations (dissemination latency is a world-level quantity).
func (w *World) makeSwim(rank int) *membership.Swim {
	conv := w.swConv
	sw := membership.NewSwim(w.registry, rank, w.size, w.swOpts,
		func(to int, op detector.ControlOp, seq uint64, payload []byte) {
			w.sendControl(rank, to, op, seq, payload)
		})
	sw.Hooks = membership.Hooks{
		ProbeSent: func(r int) { w.metrics.Inc(r, metrics.SwimProbes) },
		IndirectProbe: func(r int) {
			w.metrics.Inc(r, metrics.SwimIndirectProbes)
		},
		ProbeTimeout: func(r, target int) {
			w.metrics.Inc(r, metrics.SwimProbeTimeouts)
			w.tracer.Record(r, trace.ProbeTimeout, target, -1, -1, "")
		},
		ProbeRTT: func(r, target int, rtt time.Duration) {
			w.obs.Observe(r, obs.SwimProbeRTT, rtt)
		},
		FenceSent: func(by, target int) {
			w.metrics.Inc(by, metrics.Fences)
			w.tracer.Record(by, trace.FenceSent, target, -1, -1, "")
		},
		FenceRTT: func(by, target int, rtt time.Duration) {
			w.obs.Observe(by, obs.FenceRTT, rtt)
		},
		SelfFence: func(r int) {
			w.metrics.Inc(r, metrics.SelfFences)
			w.tracer.Record(r, trace.SelfFenced, -1, -1, -1, "probe acks stale")
		},
		GossipOrigin: func(r int, ev membership.Event) {
			w.metrics.Inc(r, metrics.GossipEvents)
			if ev.Kind == membership.EvAlive && ev.Rank == r {
				w.tracer.Record(r, trace.Refuted, -1, -1, -1,
					fmt.Sprintf("incarnation %d", ev.Inc))
			}
			conv.origin(ev)
		},
		GossipLearn: func(r int, ev membership.Event) {
			w.metrics.Inc(r, metrics.GossipLearns)
			if lat, ok := conv.learn(r, ev); ok {
				w.obs.Observe(r, obs.GossipConvergence, lat)
			}
		},
		DecodeError: func(r int) {
			w.metrics.Inc(r, metrics.GossipDecodeErrors)
		},
	}
	return sw
}
