package mpi

import (
	"fmt"
	"testing"

	"repro/internal/transport"
)

// Microbenchmarks for the matching core, run head-to-head against the
// linear-scan reference (matchindex_test.go) that transcribes the
// pre-index engine. The workload is the acceptance shape from the PR
// issue: keys sources × depth posted receives each, matched in steady
// state (every match is immediately reposted so the queue stays deep).
//
// Representative results (Linux, go1.24, -benchtime 1s) are recorded in
// EXPERIMENTS.md E17 alongside the end-to-end large-N runs.

var benchQueueShapes = []struct{ keys, depth int }{
	{16, 8},
	{256, 64},
	{1024, 64},
	{4096, 64},
}

// fillPosted posts keys×depth exact receives in per-source blocks, the
// worst case for a linear scan matching the last source.
func fillPosted(add func(*Request), keys, depth int) []*Request {
	reqs := make([]*Request, 0, keys*depth)
	for s := 0; s < keys; s++ {
		for d := 0; d < depth; d++ {
			r := &Request{srcWorld: s, tag: 0, ctx: 0}
			add(r)
			reqs = append(reqs, r)
		}
	}
	return reqs
}

func BenchmarkPostedMatchIndexed(b *testing.B) {
	for _, shape := range benchQueueShapes {
		b.Run(fmt.Sprintf("keys=%d/depth=%d", shape.keys, shape.depth), func(b *testing.B) {
			ix := newPostedIndex()
			fillPosted(ix.add, shape.keys, shape.depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := i % shape.keys
				r := ix.match(0, src, 0)
				if r == nil {
					b.Fatal("indexed match returned nil")
				}
				ix.add(r)
			}
		})
	}
}

func BenchmarkPostedMatchLinear(b *testing.B) {
	for _, shape := range benchQueueShapes {
		b.Run(fmt.Sprintf("keys=%d/depth=%d", shape.keys, shape.depth), func(b *testing.B) {
			ref := &linearPosted{}
			fillPosted(ref.add, shape.keys, shape.depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := i % shape.keys
				r := ref.match(0, src, 0)
				if r == nil {
					b.Fatal("linear match returned nil")
				}
				ref.add(r)
			}
		})
	}
}

// fillUnexpected queues keys×depth packets in per-source blocks.
func fillUnexpected(add func(*transport.Packet), keys, depth int) {
	for s := 0; s < keys; s++ {
		for d := 0; d < depth; d++ {
			add(&transport.Packet{Src: s, Tag: 0, Context: 0})
		}
	}
}

func BenchmarkUnexpectedTakeIndexed(b *testing.B) {
	for _, shape := range benchQueueShapes {
		b.Run(fmt.Sprintf("keys=%d/depth=%d", shape.keys, shape.depth), func(b *testing.B) {
			ix := newUnexpectedIndex()
			fillUnexpected(ix.add, shape.keys, shape.depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := i % shape.keys
				pkt := ix.take(src, 0, 0)
				if pkt == nil {
					b.Fatal("indexed take returned nil")
				}
				ix.add(pkt)
			}
		})
	}
}

func BenchmarkUnexpectedTakeLinear(b *testing.B) {
	for _, shape := range benchQueueShapes {
		b.Run(fmt.Sprintf("keys=%d/depth=%d", shape.keys, shape.depth), func(b *testing.B) {
			ref := &linearUnexpected{}
			fillUnexpected(ref.add, shape.keys, shape.depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := i % shape.keys
				pkt := ref.take(src, 0, 0)
				if pkt == nil {
					b.Fatal("linear take returned nil")
				}
				ref.add(pkt)
			}
		})
	}
}

// BenchmarkWaitanyFanIn measures Waitany over width pending receives when
// one completes: with per-request signaling only the completed request's
// waiter channel fires; the pre-index engine broadcast to every blocked
// rank on every delivery.
func BenchmarkWaitanyFanIn(b *testing.B) {
	for _, width := range []int{4, 64} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			w, err := NewWorld(2)
			if err != nil {
				b.Fatal(err)
			}
			_, err = w.Run(func(p *Proc) error {
				c := p.World()
				if p.Rank() == 1 {
					for i := 0; i < b.N; i++ {
						if err := c.Send(0, width-1, nil); err != nil {
							return err
						}
						if _, _, err := c.Recv(0, 0); err != nil { // ack: lockstep
							return err
						}
					}
					return nil
				}
				reqs := make([]*Request, width)
				for t := 0; t < width; t++ {
					reqs[t] = c.Irecv(1, t)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx, _, err := Waitany(reqs...)
					if err != nil {
						return err
					}
					reqs[idx].Free()
					reqs[idx] = c.Irecv(1, width-1)
					if err := c.Send(1, 0, nil); err != nil {
						return err
					}
				}
				b.StopTimer()
				for _, r := range reqs {
					r.Cancel()
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
