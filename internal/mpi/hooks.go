package mpi

import "fmt"

// HookPoint identifies an operation boundary at which the fault injector
// may act. Hooks always run on the affected rank's own goroutine, which is
// what makes failure placement deterministic: "kill rank 2 after its 3rd
// receive completes, before its next send" is exact, independent of the
// scheduler — a precision the paper's fault-injection tooling (Section
// III-E) approximates with timing.
type HookPoint int

const (
	// HookBeforeSend fires before a send is handed to the fabric. Killing
	// here means the message is never sent.
	HookBeforeSend HookPoint = iota
	// HookAfterSend fires after the fabric accepted the message. Killing
	// here leaves the message deliverable — the Figure 8 placement.
	HookAfterSend
	// HookAfterRecv fires when the application observes a successful
	// receive completion (at Wait/Waitany, or on a blocking Recv). Killing
	// here is the Figure 6/7 placement: died after receiving, before
	// forwarding.
	HookAfterRecv
	// HookCheckpoint fires at application-defined points via
	// Proc.Checkpoint(label).
	HookCheckpoint
	// HookChainForward fires on a replication-chain primary immediately
	// before it forwards an accepted data frame to one live standby (once
	// per standby). Unlike every other point it runs on the DELIVERY
	// goroutine, not the rank's own: an ActKill verdict fells the primary
	// via the registry (no panic) and aborts the remaining forwards —
	// which is exactly the chain loss window the tail-ack protocol closes,
	// so soaks can seed kills inside it deterministically.
	HookChainForward
)

// String names the hook point.
func (p HookPoint) String() string {
	switch p {
	case HookBeforeSend:
		return "before-send"
	case HookAfterSend:
		return "after-send"
	case HookAfterRecv:
		return "after-recv"
	case HookCheckpoint:
		return "checkpoint"
	case HookChainForward:
		return "chain-forward"
	default:
		return fmt.Sprintf("HookPoint(%d)", int(p))
	}
}

// HookEvent describes one operation boundary.
type HookEvent struct {
	Rank  int       // world rank executing the operation
	Point HookPoint // where in the operation
	Peer  int       // world rank of the peer (-1 for checkpoints)
	Tag   int       // message tag (0 for checkpoints)
	Label string    // checkpoint label
}

// Action is a hook's verdict.
type Action int

const (
	// ActNone continues normally.
	ActNone Action = iota
	// ActKill fail-stops the rank at this exact point.
	ActKill
)

// HookFunc observes operation boundaries and may order the rank killed.
// It must be safe for concurrent use (each rank calls it from its own
// goroutine) and must not call MPI operations.
type HookFunc func(ev HookEvent) Action

// fireHook runs the configured hook and performs the kill if requested.
// Must be called on the rank's own goroutine with no engine lock held.
// It takes the calling ENGINE, not a rank index: in replication mode the
// event's Rank is logical and several physical replicas share it, and a
// kill must fell exactly the replica that hit the hook point.
func (w *World) fireHook(e *engine, ev HookEvent) {
	if w.hook == nil {
		return
	}
	if w.hook(ev) == ActKill {
		e.die()
	}
}
