package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// runRepl builds a replicated world of lsize logical ranks at degree r
// and runs fn on every PHYSICAL replica (all replicas of a logical rank
// execute the same function, distinguishable only via PhysRank/Gen).
func runRepl(t *testing.T, lsize, r int, mode string, opts []Option, fn func(w *World, p *Proc) error) (*World, *RunResult) {
	t.Helper()
	all := append([]Option{
		WithDeadline(60 * time.Second),
		WithReplication(ReplicationOptions{R: r, Mode: mode}),
		WithMetrics(metrics.NewWorld(lsize * r)),
	}, opts...)
	w, err := NewWorld(lsize, all...)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(w, p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return w, res
}

// replRing runs a token ring over the logical ranks: rank 0 injects the
// token each lap, everyone else forwards left to right. victimPhys (if
// >= 0) dies at the top of killLap. No recognition, no validate, no
// resend — the point of replication mode is that the application carries
// zero recovery protocol.
func replRing(laps, victimPhys, killLap int) func(w *World, p *Proc) error {
	return func(w *World, p *Proc) error {
		c := p.World()
		me, n := p.Rank(), p.Size()
		right, left := (me+1)%n, (me-1+n)%n
		for lap := 0; lap < laps; lap++ {
			if victimPhys >= 0 && lap == killLap && p.PhysRank() == victimPhys {
				p.Die()
			}
			if me == 0 {
				if err := c.Send(right, lap, []byte{byte(lap)}); err != nil {
					return err
				}
				pl, _, err := c.Recv(left, lap)
				if err != nil {
					return err
				}
				if len(pl) != 1 || pl[0] != byte(lap) {
					return fmt.Errorf("lap %d: token %v", lap, pl)
				}
			} else {
				pl, _, err := c.Recv(left, lap)
				if err != nil {
					return err
				}
				if err := c.Send(right, lap, pl); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func TestReplicationWorldShape(t *testing.T) {
	if _, err := NewWorld(2, WithReplication(ReplicationOptions{R: 0})); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("R=0 accepted: %v", err)
	}
	if _, err := NewWorld(2, WithReplication(ReplicationOptions{R: 2, Mode: "quorum"})); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("bad mode accepted: %v", err)
	}

	seenPhys := make(map[int]bool)
	var mu sync.Mutex
	w, res := runRepl(t, 3, 2, ReplFanout, nil, func(w *World, p *Proc) error {
		if p.Rank() != p.PhysRank()%3 {
			return fmt.Errorf("rank %d / phys %d: logical mapping broken", p.Rank(), p.PhysRank())
		}
		if p.Size() != 3 {
			return fmt.Errorf("app size %d", p.Size())
		}
		mu.Lock()
		seenPhys[p.PhysRank()] = true
		mu.Unlock()
		return nil
	})
	requireNoRankErrors(t, res)
	if w.Size() != 6 || w.LogicalSize() != 3 {
		t.Fatalf("sizes: physical %d logical %d", w.Size(), w.LogicalSize())
	}
	if len(seenPhys) != 6 {
		t.Fatalf("rank function ran on %d physical slots, want 6", len(seenPhys))
	}
}

// TestReplicationTransparentFailover is the tentpole's core property: the
// PRIMARY replica of a logical rank dies mid-ring and the application —
// which carries no recovery protocol at all — never observes it. The
// standby is promoted and the token keeps circulating.
func TestReplicationTransparentFailover(t *testing.T) {
	const laps = 20
	victim := 1 // primary of logical 1 (L=3, R=2: group {1, 4})
	w, res := runRepl(t, 3, 2, ReplFanout, nil, replRing(laps, victim, 5))

	if !res.Ranks[victim].Killed {
		t.Fatalf("victim %d not recorded killed: %+v", victim, res.Ranks[victim])
	}
	for phys, rr := range res.Ranks {
		if phys == victim {
			continue
		}
		if rr.Err != nil || rr.Killed {
			t.Fatalf("phys %d saw the failure: %+v", phys, rr)
		}
	}
	mets := w.Metrics()
	if got := mets.Total(metrics.ReplicaPromotions); got != 1 {
		t.Fatalf("promotions: %d, want 1", got)
	}
	if mets.Total(metrics.ReplicaSends) == 0 {
		t.Fatal("no replica fan-out sends counted")
	}
	if mets.Total(metrics.ReplicaDedupDrops) == 0 {
		t.Fatal("no duplicate drops counted — fan-out copies were not deduped")
	}
	// Zero app-visible recovery: no validate rounds, no app resends.
	if v, r := mets.Total(metrics.Validates), mets.Total(metrics.Resends); v != 0 || r != 0 {
		t.Fatalf("validates=%d resends=%d, want 0/0 (replication must hide the failure)", v, r)
	}
}

// TestReplicationStandbyDeathInvisible: a STANDBY dying must not even
// cause a promotion, let alone an app-visible failure.
func TestReplicationStandbyDeathInvisible(t *testing.T) {
	const laps = 12
	victim := 4 // standby of logical 1
	w, res := runRepl(t, 3, 2, ReplFanout, nil, replRing(laps, victim, 3))
	for phys, rr := range res.Ranks {
		if phys != victim && (rr.Err != nil || rr.Killed) {
			t.Fatalf("phys %d saw the failure: %+v", phys, rr)
		}
	}
	if got := w.Metrics().Total(metrics.ReplicaPromotions); got != 0 {
		t.Fatalf("promotions: %d, want 0 for a standby death", got)
	}
}

// TestReplicationLastReplicaFailStop: when a logical rank's LAST replica
// dies the failure escalates to the ordinary fail-stop path under the
// LOGICAL rank id, and validate_all agrees on it.
func TestReplicationLastReplicaFailStop(t *testing.T) {
	_, res := runRepl(t, 3, 2, ReplFanout, nil, func(w *World, p *Proc) error {
		c := p.World()
		if p.Rank() == 2 {
			p.Die() // both replicas: the logical rank is extinguished
		}
		// Survivors: the receive from logical 2 must fail-stop with the
		// logical id, then everyone agrees on exactly one failure.
		_, _, err := c.Recv(2, 9)
		if !IsRankFailStop(err) {
			return fmt.Errorf("Recv(2): %v, want fail-stop", err)
		}
		if f := FailedRankOf(err); f != 2 {
			return fmt.Errorf("failed rank %d, want logical 2", f)
		}
		n, err := c.ValidateAll()
		if err != nil {
			return fmt.Errorf("ValidateAll: %w", err)
		}
		if n != 1 {
			return fmt.Errorf("agreed failures %d, want 1", n)
		}
		return nil
	})
	for phys, rr := range res.Ranks {
		if phys%3 == 2 {
			if !rr.Killed {
				t.Fatalf("replica %d of logical 2 not killed: %+v", phys, rr)
			}
			continue
		}
		if rr.Err != nil {
			t.Fatalf("phys %d: %v", phys, rr.Err)
		}
	}
}

// TestReplicationChainMode: chain propagation delivers exactly once (the
// primary relays to standbys, duplicates are dropped), and a TAIL
// (standby) death neither promotes nor surfaces.
func TestReplicationChainMode(t *testing.T) {
	const laps = 12
	victim := 5 // standby of logical 2 (L=3: groups {0,3} {1,4} {2,5})
	w, res := runRepl(t, 3, 2, ReplChain, nil, replRing(laps, victim, 4))
	for phys, rr := range res.Ranks {
		if phys != victim && (rr.Err != nil || rr.Killed) {
			t.Fatalf("phys %d saw the failure: %+v", phys, rr)
		}
	}
	mets := w.Metrics()
	if got := mets.Total(metrics.ReplicaPromotions); got != 0 {
		t.Fatalf("promotions: %d, want 0 for a tail death", got)
	}
	if mets.Total(metrics.ReplicaSends) == 0 {
		t.Fatal("no chain forwards counted")
	}
}

// TestReplicationSpawnRefillsGroup: with elastic repair enabled, Spawn
// reoccupies a dead replica slot and the replica group regains its
// original degree — restoring the failure budget of the logical rank.
func TestReplicationSpawnRefillsGroup(t *testing.T) {
	const laps = 8
	victim := 2 // standby of logical 0 (L=2, R=2: group {0, 2})
	w, res := runRepl(t, 2, 2, ReplFanout,
		[]Option{WithElastic(ElasticOptions{})},
		func(w *World, p *Proc) error {
			if p.Gen() > 1 {
				// The reincarnated replica joins as a warm standby only: it
				// cannot replay the message history its siblings already
				// consumed, so it simply holds the slot.
				return nil
			}
			if err := replRing(laps, victim, 3)(w, p); err != nil {
				return err
			}
			if p.PhysRank() != 0 {
				return nil
			}
			if err := pollUntil("victim confirmed dead", func() (bool, error) {
				return w.Registry().Confirmed(victim), nil
			}); err != nil {
				return err
			}
			gen, err := w.Spawn(victim)
			if err != nil {
				return fmt.Errorf("Spawn(%d): %w", victim, err)
			}
			if gen != 2 {
				return fmt.Errorf("respawn generation %d, want 2", gen)
			}
			return pollUntil("replica group refilled", func() (bool, error) {
				return len(w.repl.livePhys(0)) == 2, nil
			})
		})
	for phys, rr := range res.Ranks {
		if phys != victim && rr.Err != nil {
			t.Fatalf("phys %d: %v", phys, rr.Err)
		}
	}
	if len(res.Respawns) != 1 || res.Respawns[0].Slot != victim {
		t.Fatalf("respawns: %+v", res.Respawns)
	}
	live := w.repl.livePhys(0)
	if len(live) != 2 || live[0] != 0 || live[1] != victim {
		t.Fatalf("replica group of logical 0 after refill: %v", live)
	}
}

// TestSpawnRacesShrink: World.Spawn and Comm.Shrink racing over the same
// confirmed-dead slot must stay live and coherent — no deadlock, no lost
// agreement, every shrunk communicator's width either excludes the dead
// slot or (when the revive overtook the agreement) still carries it, per
// Shrink's documented shrink-again semantics. Run under -race this
// doubles as the data-race regression for the Spawn/Shrink interplay.
func TestSpawnRacesShrink(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	widths := make(map[int]int)
	_, res := runElastic(t, n, []Option{WithElastic(ElasticOptions{})},
		func(w *World, p *Proc) error {
			c := p.World()
			if p.Gen() > 1 {
				// The reincarnation's collective obligations start at its join
				// fence: a fence of 0 means it is a full member of the very
				// instance the survivors are racing to agree on, so it must
				// enter it in program order; a later fence means that instance
				// is answered reactively and calling again would open a fresh
				// instance nobody else joins.
				c.eng.mu.Lock()
				fence := c.validateSeq
				c.eng.mu.Unlock()
				if fence == 0 {
					if _, err := c.Shrink(); err != nil {
						return fmt.Errorf("reincarnation Shrink: %w", err)
					}
				}
				return nil
			}
			if p.Rank() == 3 {
				p.Die()
			}
			// The racing Spawn un-confirms the slot, so the barrier must also
			// accept the revive's generation bump as proof the death landed.
			if err := pollUntil("slot 3 confirmed or revived", func() (bool, error) {
				return w.Registry().Confirmed(3) || w.Registry().Generation(3) > 1, nil
			}); err != nil {
				return err
			}
			// Rank 0 fires the spawn concurrently with everyone's shrink.
			var spawnErr error
			done := make(chan struct{})
			if p.Rank() == 0 {
				go func() {
					defer close(done)
					if _, err := w.Spawn(3); err != nil && !errors.Is(err, ErrInvalidArg) {
						spawnErr = err
					}
				}()
			} else {
				close(done)
			}
			nc, err := c.Shrink()
			if err != nil {
				return fmt.Errorf("Shrink: %w", err)
			}
			<-done
			if spawnErr != nil {
				return fmt.Errorf("Spawn racing Shrink: %w", spawnErr)
			}
			mu.Lock()
			widths[p.Rank()] = nc.Size()
			mu.Unlock()
			return nil
		})
	requireNoRankErrors(t, res)
	for r, got := range widths {
		if got != n-1 && got != n {
			t.Fatalf("rank %d shrunk to %d members, want %d or %d", r, got, n-1, n)
		}
	}
}

// runReplOpts is runRepl with full control over the replication options
// (refill knobs, mode) instead of just (R, mode).
func runReplOpts(t *testing.T, lsize int, ropts ReplicationOptions, opts []Option, fn func(w *World, p *Proc) error) (*World, *RunResult) {
	t.Helper()
	all := append([]Option{
		WithDeadline(60 * time.Second),
		WithReplication(ropts),
		WithMetrics(metrics.NewWorld(lsize * ropts.R)),
	}, opts...)
	w, err := NewWorld(lsize, all...)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(w, p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return w, res
}

// TestChainForwardWindowKill is the tail-ack regression: the primary of a
// logical rank is killed INSIDE the chain forward window — after
// accepting a data frame, before relaying it to its standby — via the
// deterministic HookChainForward placement. Without the sender-side chain
// outbox the relayed frame is simply gone (the sender's ARQ saw the
// primary's link-level ack, the standby never saw the frame) and the ring
// wedges. With it, the promotion re-sends the unconfirmed entry to the
// promoted standby under the same RepSeq, so the fault-unaware ring
// completes exactly once: no drop (every lap's token arrives with the
// right value) and no double-delivery (RepSeq dedup absorbs any copy the
// dying primary did manage to forward).
func TestChainForwardWindowKill(t *testing.T) {
	const laps = 12
	var fires atomic.Int32
	hook := func(ev HookEvent) Action {
		// Kill the primary of logical 1 immediately before its third
		// standby forward. The promoted standby shares the logical rank, so
		// fire exactly once (Add, not a == comparison on Load).
		if ev.Point == HookChainForward && ev.Rank == 1 && fires.Add(1) == 3 {
			return ActKill
		}
		return ActNone
	}
	w, res := runRepl(t, 3, 2, ReplChain, []Option{WithHook(hook)}, replRing(laps, -1, 0))
	for phys, rr := range res.Ranks {
		if phys == 1 {
			continue // the forward-window victim
		}
		if rr.Err != nil || rr.Killed {
			t.Fatalf("phys %d saw the failure: %+v", phys, rr)
		}
	}
	mets := w.Metrics()
	if got := mets.Total(metrics.ReplicaPromotions); got != 1 {
		t.Fatalf("promotions: %d, want exactly 1", got)
	}
	if got := mets.Total(metrics.ChainResends); got == 0 {
		t.Fatal("no chain resends: the unconfirmed outbox entry was not replayed")
	}
	if mets.Total(metrics.ChainAcks) == 0 {
		t.Fatal("no chain acks counted")
	}
}

// TestReplicationAutoRefill: with AutoRefill the world itself heals a
// replica group that a detector confirm dropped below R — no app-level
// Spawn anywhere in the rank function. The refilled incarnation joins as
// a warm standby at generation 2 and the group is back at full degree.
func TestReplicationAutoRefill(t *testing.T) {
	for _, mode := range []string{ReplFanout, ReplChain} {
		t.Run(mode, func(t *testing.T) {
			const laps = 8
			victim := 2 // standby of logical 0 (L=2, R=2: group {0, 2})
			w, res := runReplOpts(t, 2,
				ReplicationOptions{R: 2, Mode: mode, AutoRefill: true, RefillBackoff: time.Millisecond},
				nil,
				func(w *World, p *Proc) error {
					if p.Gen() > 1 {
						return nil // warm standby: hold the slot, no history replay
					}
					if err := replRing(laps, victim, 3)(w, p); err != nil {
						return err
					}
					if p.PhysRank() != 0 {
						return nil
					}
					return pollUntil("replica group auto-refilled", func() (bool, error) {
						return len(w.LiveReplicas(0)) == 2 && w.Registry().Generation(victim) == 2, nil
					})
				})
			for phys, rr := range res.Ranks {
				if phys != victim && rr.Err != nil {
					t.Fatalf("phys %d: %v", phys, rr.Err)
				}
			}
			if len(res.Respawns) != 1 || res.Respawns[0].Slot != victim {
				t.Fatalf("respawns: %+v", res.Respawns)
			}
			mets := w.Metrics()
			if got := mets.Total(metrics.ReplicaRefills); got != 1 {
				t.Fatalf("replica_refills: %d, want 1", got)
			}
			live := w.LiveReplicas(0)
			if len(live) != 2 || live[0] != 0 || live[1] != victim {
				t.Fatalf("replica group of logical 0 after refill: %v", live)
			}
		})
	}
}
