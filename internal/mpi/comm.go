package mpi

import (
	"fmt"
	"sort"
)

// Context identifiers. Every communicator owns two contexts, as real MPI
// implementations separate point-to-point and internal (collective,
// agreement) traffic so that user receives on AnyTag can never swallow
// library messages.
const (
	ctxWorldP2P      = 0
	ctxWorldInternal = 1
)

// Comm is a communicator: an ordered group of world ranks plus isolated
// communication contexts. Comm values are per-process objects (as in
// MPI); communicators with the same contexts on different ranks name the
// same communication universe.
//
// Failure recognition is tracked per communicator, as the proposal
// requires "to guarantee that libraries are able to receive notification
// of the failure, even if the main application has previously recognized
// the failure on a duplicate communicator" (paper Section II).
type Comm struct {
	proc *Proc
	eng  *engine

	group   []int       // world rank by comm rank (immutable)
	indexOf map[int]int // world rank -> comm rank (immutable)
	myRank  int         // this process's comm rank

	ctxP2P      int
	ctxInternal int

	errh Errhandler

	// recognized marks world ranks whose failure this process has
	// recognized on this communicator (MPI_RANK_NULL). Guarded by eng.mu.
	recognized map[int]bool
	// collMembers is the participant list for collective operations: the
	// group minus ranks recognized by the last ValidateAll. Only
	// ValidateAll may shrink it (validate_clear re-enables only
	// point-to-point, per the paper). Guarded by eng.mu.
	collMembers []int
	// validateEpoch counts completed ValidateAll operations. Guarded by eng.mu.
	validateEpoch int

	// collSeq sequences collective operations into the internal tag
	// space. Guarded by eng.mu: ValidateAll resynchronizes it (possibly
	// from the IvalidateAll driver goroutine), see NextCollTag.
	collSeq int
	// validateSeq allocates agreement instances. Guarded by eng.mu:
	// elastic respawn reads it cross-rank to compute the newcomer's join
	// fence (World.captureSeed).
	validateSeq int
}

// collSeqEpochStride spaces the collective tag ranges of successive
// validate epochs. ValidateAll resets the sequence to epoch*stride at
// every rank: ranks that consumed different numbers of collective tags
// inside a failed recovery block (one erroring at the gate, another deep
// inside a tree) re-align here — the concrete form of the paper's remark
// that repairing the communicator lets the implementation re-establish
// its collective machinery.
const collSeqEpochStride = 1 << 20

func newComm(p *Proc, group []int, ctxP2P, ctxInternal int) *Comm {
	c := &Comm{
		proc:        p,
		eng:         p.eng,
		group:       group,
		indexOf:     make(map[int]int, len(group)),
		myRank:      -1,
		ctxP2P:      ctxP2P,
		ctxInternal: ctxInternal,
		errh:        ErrorsAreFatal,
		recognized:  make(map[int]bool),
		collMembers: append([]int(nil), group...),
	}
	for i, wr := range group {
		c.indexOf[wr] = i
		if wr == p.rank {
			c.myRank = i
		}
	}
	// Register with the engine so a peer's revival can repair recognition
	// and collective membership on every communicator that contains it.
	c.eng.mu.Lock()
	c.eng.comms = append(c.eng.comms, c)
	c.eng.mu.Unlock()
	return c
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator size (including failed ranks).
func (c *Comm) Size() int { return len(c.group) }

// Group returns a copy of the communicator's world-rank group, ordered by
// communicator rank.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) (int, error) {
	if commRank < 0 || commRank >= len(c.group) {
		return -1, fmt.Errorf("%w: comm rank %d of %d", ErrInvalidRank, commRank, len(c.group))
	}
	return c.group[commRank], nil
}

// rankOf translates a world rank to a comm rank (-1 if not a member).
// Reads only immutable state, so it is safe under any lock.
func (c *Comm) rankOf(worldRank int) int {
	if r, ok := c.indexOf[worldRank]; ok {
		return r
	}
	return -1
}

// SetErrhandler replaces the communicator's error handler — the paper's
// first required change (Fig. 3 line 10): MPI_ERRORS_RETURN instead of
// the fatal default.
func (c *Comm) SetErrhandler(h Errhandler) { c.errh = h }

// Errhandler returns the communicator's current error handler.
func (c *Comm) Errhandler() Errhandler { return c.errh }

// herr applies the communicator's error handler to err: with
// ErrorsAreFatal any error aborts the world (and does not return); with
// ErrorsReturn the error is handed back.
func (c *Comm) herr(err error) error {
	if err == nil || c.errh == ErrorsReturn {
		return err
	}
	c.proc.Abort(1)
	return err // unreachable
}

// --- recognition state (guarded by eng.mu) ---------------------------------

func (c *Comm) recognizedLocked(worldRank int) bool { return c.recognized[worldRank] }

// memberUnrecognizedLocked reports whether worldRank is a member whose
// failure has not been recognized here.
func (c *Comm) memberUnrecognizedLocked(worldRank int) bool {
	return c.rankOf(worldRank) >= 0 && !c.recognized[worldRank]
}

// collMemberLocked reports whether worldRank is a current collective
// participant (i.e. not excluded by a previous ValidateAll).
func (c *Comm) collMemberLocked(worldRank int) bool {
	for _, wr := range c.collMembers {
		if wr == worldRank {
			return true
		}
	}
	return false
}

// anyCollMemberFailedLocked returns a known-failed collective
// participant, if one exists.
func (c *Comm) anyCollMemberFailedLocked() (int, bool) {
	for _, wr := range c.collMembers {
		if c.eng.knownFailed[wr] {
			return wr, true
		}
	}
	return -1, false
}

// anyUnrecognizedLocked returns some member that is known-failed and
// unrecognized, if one exists.
func (c *Comm) anyUnrecognizedLocked() (int, bool) {
	for _, wr := range c.group {
		if c.eng.knownFailed[wr] && !c.recognized[wr] {
			return wr, true
		}
	}
	return -1, false
}

// --- state queries (the local validate operations, paper Fig. 1) -----------

// RankState is the proposal's three-valued per-rank state.
type RankState int

const (
	// RankOK: running normally (MPI_RANK_OK).
	RankOK RankState = iota
	// RankFailed: failed, not yet recognized here (MPI_RANK_FAILED).
	RankFailed
	// RankNull: failed and recognized; behaves as MPI_PROC_NULL (MPI_RANK_NULL).
	RankNull
)

// String returns the proposal's constant name for the state.
func (s RankState) String() string {
	switch s {
	case RankOK:
		return "MPI_RANK_OK"
	case RankFailed:
		return "MPI_RANK_FAILED"
	case RankNull:
		return "MPI_RANK_NULL"
	default:
		return fmt.Sprintf("RankState(%d)", int(s))
	}
}

// RankInfo mirrors the proposal's MPI_Rank_info object.
type RankInfo struct {
	Rank       int // communicator rank
	Generation int // incarnation (1 until an elastic respawn reoccupies the slot)
	State      RankState
}

// RankState returns the state of a communicator rank as known locally —
// the paper's MPI_Comm_validate_rank. It reflects received failure
// notifications, not instantaneous ground truth.
func (c *Comm) RankState(commRank int) (RankInfo, error) {
	c.eng.checkAlive()
	wr, err := c.WorldRank(commRank)
	if err != nil {
		return RankInfo{}, c.herr(err)
	}
	info := RankInfo{Rank: commRank, Generation: c.proc.w.appGeneration(wr)}
	c.eng.mu.Lock()
	switch {
	case !c.eng.knownFailed[wr]:
		info.State = RankOK
	case c.recognized[wr]:
		info.State = RankNull
	default:
		info.State = RankFailed
	}
	c.eng.mu.Unlock()
	return info, nil
}

// FailedRanks returns RankInfo for every locally known failed member —
// the paper's MPI_Comm_validate (the local array query).
func (c *Comm) FailedRanks() []RankInfo {
	c.eng.checkAlive()
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	var out []RankInfo
	for cr, wr := range c.group {
		if !c.eng.knownFailed[wr] {
			continue
		}
		st := RankFailed
		if c.recognized[wr] {
			st = RankNull
		}
		out = append(out, RankInfo{Rank: cr, Generation: c.proc.w.appGeneration(wr), State: st})
	}
	return out
}

// RecognizeLocal locally recognizes the failures of the given comm ranks —
// the paper's MPI_Comm_validate_clear. It re-enables point-to-point
// operations with those ranks (as MPI_PROC_NULL) but not collectives.
// Recognizing a rank that has not failed is an error: that would violate
// strong accuracy from the application's own viewpoint.
func (c *Comm) RecognizeLocal(commRanks ...int) error {
	c.eng.checkAlive()
	var err error
	c.eng.mu.Lock()
	for _, cr := range commRanks {
		if cr < 0 || cr >= len(c.group) {
			err = fmt.Errorf("%w: comm rank %d", ErrInvalidRank, cr)
			break
		}
		wr := c.group[cr]
		if !c.eng.knownFailed[wr] {
			err = fmt.Errorf("%w: rank %d has not failed", ErrInvalidArg, cr)
			break
		}
		c.recognized[wr] = true
	}
	c.eng.mu.Unlock()
	return c.herr(err)
}

// ValidateEpoch returns how many ValidateAll operations have completed on
// this communicator at this rank.
func (c *Comm) ValidateEpoch() int {
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	return c.validateEpoch
}

// --- collective support ------------------------------------------------------

// CollMembers returns the current collective participant list (world
// ranks, comm-rank order): the group minus ranks recognized by the last
// ValidateAll.
func (c *Comm) CollMembers() []int {
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	return append([]int(nil), c.collMembers...)
}

// CollectiveOK reports whether collective operations are currently
// enabled from this rank's local viewpoint: it returns ErrRankFailStop if
// any collective participant is known-failed (and not yet excluded by a
// ValidateAll), implementing "all collective operations will return an
// error ... until the communicator is repaired" (paper Section II).
func (c *Comm) CollectiveOK() error {
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	for _, wr := range c.collMembers {
		if c.eng.knownFailed[wr] {
			return failStop(wr)
		}
	}
	return nil
}

// NextCollTag allocates the internal tag for the next collective
// operation. MPI requires all members to invoke collectives in the same
// order, which keeps these sequence numbers aligned across ranks; after
// a failure, ValidateAll re-aligns them (see collSeqEpochStride).
func (c *Comm) NextCollTag() int {
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	c.collSeq++
	return c.collSeq
}

// --- communicator management -------------------------------------------------

// Dup duplicates the communicator: same group, fresh contexts, fresh
// recognition state (so libraries can observe failures independently —
// the motivating case for per-communicator recognition). All members must
// call Dup in the same order.
func (c *Comm) Dup() *Comm {
	c.eng.checkAlive()
	p := c.proc
	ctxP2P, ctxInternal := nextCtxPair(p.nextCtxSeq(), 0)
	return newComm(p, c.Group(), ctxP2P, ctxInternal)
}

// nextCtxPair derives the context pair for the seq'th derived
// communicator. Every rank creates derived communicators in the same
// program order (an MPI requirement), so the pair agrees across ranks;
// elastic respawn hands the newcomer the most advanced survivor's
// allocator position so reincarnations stay aligned too. Split mixes in
// the color so sibling sub-communicators get disjoint contexts (colors
// are limited to [0, 4094]).
func nextCtxPair(seq, color int) (int, int) {
	base := 2 * (seq*4096 + color + 1)
	return base, base + 1
}

// Split partitions the communicator by color, ordering members by key
// then by current rank (MPI_Comm_split). Members passing the same color
// get the same new communicator. It is implemented over point-to-point
// internal messages (gather to comm rank 0, then personalized scatter)
// and therefore fails with ErrRankFailStop if a member has failed.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if color < 0 || color > 4094 {
		return nil, c.herr(fmt.Errorf("%w: split color %d outside [0,4094]", ErrInvalidArg, color))
	}
	c.eng.checkAlive()
	p := c.proc
	ctxP2P, ctxInternal := nextCtxPair(p.nextCtxSeq(), color)

	type entry struct{ WorldRank, Color, Key int }
	mine := entry{WorldRank: p.rank, Color: color, Key: key}

	const splitTag = -1 // internal context, cannot collide with collectives (positive tags)
	var all []entry
	if c.myRank == 0 {
		all = make([]entry, len(c.group))
		all[0] = mine
		for i := 1; i < len(c.group); i++ {
			pl, st, err := c.recvInternal(AnySource, splitTag)
			if err != nil {
				return nil, c.herr(err)
			}
			var e entry
			if err := decodeGob(pl, &e); err != nil {
				return nil, c.herr(err)
			}
			_ = st
			all[c.rankOf(e.WorldRank)] = e
		}
		enc, err := encodeGob(all)
		if err != nil {
			return nil, c.herr(err)
		}
		for i := 1; i < len(c.group); i++ {
			if err := c.sendInternal(i, splitTag, enc); err != nil {
				return nil, c.herr(err)
			}
		}
	} else {
		enc, err := encodeGob(mine)
		if err != nil {
			return nil, c.herr(err)
		}
		if err := c.sendInternal(0, splitTag, enc); err != nil {
			return nil, c.herr(err)
		}
		pl, _, err := c.recvInternal(0, splitTag)
		if err != nil {
			return nil, c.herr(err)
		}
		if err := decodeGob(pl, &all); err != nil {
			return nil, c.herr(err)
		}
	}

	var members []entry
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return c.rankOf(members[i].WorldRank) < c.rankOf(members[j].WorldRank)
	})
	group := make([]int, len(members))
	for i, e := range members {
		group[i] = e.WorldRank
	}
	return newComm(p, group, ctxP2P, ctxInternal), nil
}
