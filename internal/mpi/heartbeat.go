package mpi

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Detector mode names for Config.Detector / WithDetector.
const (
	// DetectorOracle is the default: the registry is the ground truth and
	// failure notifications fire directly from the injector's Kill (after
	// the optional NotifyDelay) — the paper's assumed perfect detector.
	DetectorOracle = "oracle"
	// DetectorHeartbeat builds the perfect detector out of an unreliable
	// one: ranks exchange heartbeats over the live fabric, silence raises
	// Suspected (never surfaced to the application), and a fencing
	// protocol forces the suspect to fail-stop before the failure is
	// confirmed and notified. See internal/detector/heartbeat.go.
	DetectorHeartbeat = "heartbeat"
)

// ctxControl is the reserved context for failure-detection control
// traffic. Engine routing keys off transport.KindControl, not the
// context; the negative value exists so control frames are unmistakable
// in traces and can never collide with a communicator context.
const ctxControl = -2

// initHeartbeats switches the registry into confirm-gated (heartbeat)
// mode and builds one monitor per rank over the world's fabric stack.
// Called from newWorldFromConfig; the monitors start inside Run, after
// the fabric is up.
func (w *World) initHeartbeats(opts detector.HeartbeatOptions) {
	w.registry.SetConfirmGate(true)
	w.registry.SubscribeSuspicion(w.onSuspicion)
	w.hbOpts = opts
	w.hb = make([]atomic.Pointer[detector.Heartbeat], w.size)
	for i := range w.hb {
		w.hb[i].Store(w.makeHeartbeat(i))
	}
}

// makeHeartbeat builds one rank's heartbeat monitor. Elastic respawn
// calls it again for the slot's next incarnation: the old monitor's pump
// exited at death and is not restartable.
func (w *World) makeHeartbeat(rank int) *detector.Heartbeat {
	hb := detector.NewHeartbeat(w.registry, rank, w.size, w.hbOpts,
		func(to int, op detector.ControlOp, seq uint64) {
			w.sendControl(rank, to, op, seq, nil)
		})
	hb.Hooks = detector.HeartbeatHooks{
		Ping: func(r int) { w.metrics.Inc(r, metrics.Heartbeats) },
		FenceSent: func(by, target int) {
			w.metrics.Inc(by, metrics.Fences)
			w.tracer.Record(by, trace.FenceSent, target, -1, -1, "")
		},
		FenceRTT: func(by, target int, rtt time.Duration) {
			w.obs.Observe(by, obs.FenceRTT, rtt)
		},
		SelfFence: func(r int) {
			w.metrics.Inc(r, metrics.SelfFences)
			w.tracer.Record(r, trace.SelfFenced, -1, -1, -1, "heartbeat acks stale")
		},
	}
	return hb
}

// sendControl puts one failure-detection control packet on the wire. It
// enters at the top of the fabric stack: the reliability sublayer passes
// control frames through un-sequenced, and the chaos fabric subjects them
// to drops, delays and partitions — heartbeats must take the same weather
// as the traffic whose liveness they vouch for. payload carries the SWIM
// gossip envelope and is nil for heartbeat-mode frames.
func (w *World) sendControl(from, to int, op detector.ControlOp, seq uint64, payload []byte) {
	w.metrics.Inc(from, metrics.ControlFrames)
	_ = w.fabric.Send(&transport.Packet{
		Src: from, Dst: to, Tag: int(op), Context: ctxControl,
		Kind: transport.KindControl, Seq: seq, Payload: payload,
		// Control frames carry generation stamps like everything else, so
		// a monitor's traffic for a dead incarnation is fenced at delivery.
		SrcGen: w.genOf(from), DstGen: w.genOf(to),
	})
}

// onSuspicion maps suspicion-lifecycle events to metrics, traces and
// latency histograms. SinceDeath < 0 flags a false suspicion: the rank
// was still alive when the monitor gave up on it.
func (w *World) onSuspicion(ev detector.SuspicionEvent) {
	switch ev.Kind {
	case detector.SuspectRaised:
		w.metrics.Inc(ev.By, metrics.Suspicions)
		detail := "rank still alive (false suspicion)"
		if ev.SinceDeath >= 0 {
			detail = fmt.Sprintf("dead for %v", ev.SinceDeath.Round(time.Microsecond))
			w.obs.Observe(ev.By, obs.SuspicionLatency, ev.SinceDeath)
		} else {
			w.metrics.Inc(ev.By, metrics.FalseSuspicions)
		}
		w.tracer.Record(ev.By, trace.Suspected, ev.Rank, -1, -1, detail)
	case detector.SuspectCleared:
		w.metrics.Inc(ev.By, metrics.SuspicionsCleared)
		w.tracer.Record(ev.By, trace.SuspectCleared, ev.Rank, -1, -1, "")
	case detector.SuspectConfirmed:
		w.metrics.Inc(ev.By, metrics.Confirms)
		w.tracer.Record(ev.By, trace.Confirmed, ev.Rank, -1, -1, "")
	}
}

// startMonitors launches every rank's detector monitor — heartbeat or
// SWIM, whichever mode configured (no-op in oracle mode).
func (w *World) startMonitors() {
	for i := range w.hb {
		w.hb[i].Load().Start()
	}
	for i := range w.sw {
		w.sw[i].Load().Start()
	}
}

// stopMonitors terminates the monitors before the fabric closes.
func (w *World) stopMonitors() {
	for i := range w.hb {
		w.hb[i].Load().Stop()
	}
	for i := range w.sw {
		w.sw[i].Load().Stop()
	}
}
