package mpi

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Special rank and tag values, mirroring MPI_PROC_NULL, MPI_ANY_SOURCE
// and MPI_ANY_TAG.
const (
	// ProcNull is the null process: sends to it succeed without effect and
	// receives from it complete immediately with no data. Recognized
	// failed ranks behave like ProcNull (run-through stabilization).
	ProcNull = -2
	// AnySource matches a message from any source (MPI_ANY_SOURCE). While
	// an unrecognized failure exists in the communicator, a receive on
	// AnySource fails with ErrRankFailStop (paper Section II).
	AnySource = -3
	// AnyTag matches a message with any tag (MPI_ANY_TAG).
	AnyTag = -4
)

// Status describes a completed receive, like MPI_Status.
type Status struct {
	// Source is the communicator rank the message came from (ProcNull for
	// null receives).
	Source int
	// Tag is the matched message tag.
	Tag int
	// Len is the payload length in bytes. For a completed validate
	// request it carries the agreed failure count.
	Len int
}

// Request is a non-blocking operation handle (MPI_Request). A Request is
// owned by the rank that created it and must only be waited on by that
// rank's goroutine (or by internal service goroutines of the same rank).
type Request struct {
	eng  *engine
	comm *Comm

	// Matching criteria for posted receives; srcWorld is a world rank or
	// AnySource.
	isRecv   bool
	srcWorld int
	tag      int
	ctx      int

	// postSeq is the post-order stamp assigned by the posted index; it
	// arbitrates between an exact-bucket hit and a wildcard hit so the
	// earliest-posted matching receive wins (MPI non-overtaking).
	postSeq uint64

	// Completion state, guarded by eng.mu.
	done         bool
	consumed     bool   // returned by a Waitany/Waitall already
	observedHook bool   // HookAfterRecv already fired for this completion
	doneSeq      uint64 // world-wide completion order, for Waitany fairness
	err          error
	status       Status
	payload      []byte
	result       int // validate_all agreed failure count
	kind         reqKind

	// waiters are the per-request completion signals: each registered
	// channel gets a non-blocking token when the request completes, so
	// only goroutines actually waiting on THIS request wake — there is no
	// engine-wide broadcast on the completion path.
	waiters []chan struct{}
}

type reqKind int

const (
	reqRecv reqKind = iota
	reqSend
	reqValidate
	reqGeneric // goroutine-backed non-blocking collectives
)

// requestPool recycles Request objects on the same sync.Pool discipline
// the transport codec uses for frame and payload buffers: whoever takes
// an object owns it, and it returns to the pool exactly once, only when
// nothing else can reference it (see Request.Free).
var requestPool = sync.Pool{New: func() any { return new(Request) }}

// newRequest takes a zeroed Request from the pool and binds it to an
// engine. Callers must set the remaining matching/completion fields.
func newRequest(e *engine, c *Comm, kind reqKind) *Request {
	r := requestPool.Get().(*Request)
	r.eng, r.comm, r.kind = e, c, kind
	return r
}

// Free returns a COMPLETED request to the internal pool. It is optional —
// unfreed requests are garbage-collected — but hot paths (Recv, the ring
// library) use it to keep the steady state allocation-free. The caller
// must not touch the request after Free; extract Payload/Result first.
// Freeing a pending or waited-on request is a no-op.
func (r *Request) Free() {
	e := r.eng
	if e == nil {
		return
	}
	e.mu.Lock()
	busy := !r.done || len(r.waiters) > 0
	e.mu.Unlock()
	if busy {
		return
	}
	*r = Request{}
	requestPool.Put(r)
}

// waiterPool recycles the cap-1 signal channels used by Wait/Waitany.
var waiterPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

func getWaiter() chan struct{} { return waiterPool.Get().(chan struct{}) }

// putWaiter drains a deregistered signal channel and pools it. Safe only
// after the channel is off every request's waiter list (caller held
// eng.mu while removing it), so no further sends can race the drain.
func putWaiter(ch chan struct{}) {
	select {
	case <-ch:
	default:
	}
	waiterPool.Put(ch)
}

// dropWaiterLocked removes ch from the request's waiter list if the
// completion path has not already consumed the list. Caller holds eng.mu.
func (r *Request) dropWaiterLocked(ch chan struct{}) {
	for i, w := range r.waiters {
		if w == ch {
			last := len(r.waiters) - 1
			r.waiters[i] = r.waiters[last]
			r.waiters[last] = nil
			r.waiters = r.waiters[:last]
			return
		}
	}
}

// Done reports whether the request has completed (without consuming it).
func (r *Request) Done() bool {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.done
}

// Payload returns the received bytes of a completed receive request. It
// must only be called after Wait/Waitany/Test reported completion.
func (r *Request) Payload() []byte { return r.payload }

// Result returns the agreed failure count of a completed validate
// request (Comm.IvalidateAll).
func (r *Request) Result() int { return r.result }

// completeLocked finishes the request and pokes exactly the goroutines
// registered on it. Caller holds eng.mu.
func (r *Request) completeLocked(err error, st Status, payload []byte) {
	if r.done {
		return
	}
	r.done = true
	r.doneSeq = r.eng.w.completionSeq.Add(1)
	r.err = err
	r.status = st
	r.payload = payload
	for _, ch := range r.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	r.waiters = nil
}

// Cancel removes a pending receive from the matching engine and completes
// it with ErrCancelled. Cancelling a completed request is a no-op. The
// ring library uses this to retire the Figure 9 "failure detector" Irecv
// posted to the right neighbor when the neighbor changes — a lifecycle
// detail the paper's pseudocode leaves implicit.
func (r *Request) Cancel() {
	e := r.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.done {
		return
	}
	e.removePostedLocked(r)
	r.completeLocked(ErrCancelled, Status{Source: ProcNull}, nil)
}

// CancelOrPayload atomically retires a receive request: if it has
// already completed successfully, the received payload is returned (ok
// true) so the caller can re-queue or process it — no message is lost;
// otherwise the request is cancelled (or its error swallowed) and ok is
// false. This closes the race inherent in "cancel the failure-detector
// receive": the peer may have sent a legitimate message in the instant
// before cancellation (e.g. when a shrinking ring makes the right
// neighbor also the left neighbor).
func (r *Request) CancelOrPayload() ([]byte, bool) {
	e := r.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.done {
		if r.err == nil && r.isRecv && r.status.Source != ProcNull && r.payload != nil {
			return r.payload, true
		}
		return nil, false
	}
	e.removePostedLocked(r)
	r.completeLocked(ErrCancelled, Status{Source: ProcNull}, nil)
	return nil, false
}

// Wait blocks until the request completes and returns its status and
// error. Waiting again on a completed request returns the same result.
// The wait parks on a per-request channel: completions of OTHER requests
// on the same rank do not wake it. Fail-stop, teardown and abort are
// delivered through closed channels (engine.downCh, World.abortCh).
func (r *Request) Wait() (Status, error) {
	e := r.eng
	var waitStart time.Time
	e.mu.Lock()
	if r.isRecv && !r.done && e.w.obs != nil {
		waitStart = time.Now()
	}
	for !r.done {
		if e.dead.Load() {
			e.mu.Unlock()
			panic(killedPanic{rank: e.rank})
		}
		if e.closed.Load() {
			e.mu.Unlock()
			panic(closedPanic{})
		}
		if e.w.aborted.Load() {
			e.mu.Unlock()
			panic(abortPanic{code: e.w.abortCode()})
		}
		ch := getWaiter()
		r.waiters = append(r.waiters, ch)
		e.mu.Unlock()
		select {
		case <-ch:
		case <-e.downCh:
		case <-e.w.abortCh:
		}
		e.mu.Lock()
		r.dropWaiterLocked(ch)
		putWaiter(ch)
	}
	if e.dead.Load() {
		e.mu.Unlock()
		panic(killedPanic{rank: e.rank})
	}
	st, err := r.status, r.err
	observed := r.isRecv && err == nil && !r.observedHook
	if observed {
		r.observedHook = true
	}
	e.mu.Unlock()
	if !waitStart.IsZero() {
		e.w.obs.Observe(e.rank, obs.RecvWait, time.Since(waitStart))
	}
	if observed && st.Source != ProcNull {
		e.w.fireHook(e, HookEvent{Rank: e.arank(), Point: HookAfterRecv, Peer: r.srcWorld, Tag: st.Tag})
	}
	return st, err
}

// Test reports completion without blocking. If the request has completed
// it returns (true, status, error).
func (r *Request) Test() (bool, Status, error) {
	e := r.eng
	e.mu.Lock()
	if e.dead.Load() {
		e.mu.Unlock()
		panic(killedPanic{rank: e.rank})
	}
	if !r.done {
		e.mu.Unlock()
		return false, Status{}, nil
	}
	st, err := r.status, r.err
	observed := r.isRecv && err == nil && !r.observedHook
	if observed {
		r.observedHook = true
	}
	e.mu.Unlock()
	if observed && st.Source != ProcNull {
		e.w.fireHook(e, HookEvent{Rank: e.arank(), Point: HookAfterRecv, Peer: r.srcWorld, Tag: st.Tag})
	}
	return true, st, err
}

// Waitany blocks until at least one of the requests completes and returns
// its index, status and error — the MPI_Waitany shape the paper's Figures
// 9, 11 and 13 are built around. Completed requests are consumed: a
// subsequent Waitany over the same slice returns a different request.
// Nil entries and already-consumed requests are skipped; if every entry is
// nil or consumed, Waitany returns ErrInvalidArg.
//
// When several requests have completed, the one that completed FIRST is
// returned. This matters for the paper's Figure 9 receive: the failure of
// the right neighbor and the arrival of the next ring buffer can both be
// pending, and handling them in completion order keeps recovery
// (resending the held buffer) ahead of fresh progress deterministically.
//
// One signal channel is registered on every still-pending request, so a
// completion wakes this waiter alone — not every blocked goroutine on
// the rank, as the old engine-wide broadcast did.
func Waitany(reqs ...*Request) (int, Status, error) {
	var e *engine
	live := 0
	for _, r := range reqs {
		if r == nil {
			continue
		}
		live++
		if e == nil {
			e = r.eng
		} else if e != r.eng {
			return -1, Status{}, ErrInvalidArg
		}
	}
	if e == nil {
		return -1, Status{}, ErrInvalidArg
	}

	e.mu.Lock()
	for {
		if e.dead.Load() {
			e.mu.Unlock()
			panic(killedPanic{rank: e.rank})
		}
		if e.closed.Load() {
			e.mu.Unlock()
			panic(closedPanic{})
		}
		if e.w.aborted.Load() {
			e.mu.Unlock()
			panic(abortPanic{code: e.w.abortCode()})
		}
		remaining := 0
		best := -1
		for i, r := range reqs {
			if r == nil || r.consumed {
				continue
			}
			remaining++
			if r.done && (best < 0 || r.doneSeq < reqs[best].doneSeq) {
				best = i
			}
		}
		if best >= 0 {
			r := reqs[best]
			r.consumed = true
			st, err := r.status, r.err
			observed := r.isRecv && err == nil && !r.observedHook
			if observed {
				r.observedHook = true
			}
			e.mu.Unlock()
			if observed && st.Source != ProcNull {
				e.w.fireHook(e, HookEvent{Rank: e.arank(), Point: HookAfterRecv, Peer: r.srcWorld, Tag: st.Tag})
			}
			return best, st, err
		}
		if remaining == 0 {
			e.mu.Unlock()
			return -1, Status{}, ErrInvalidArg
		}
		ch := getWaiter()
		for _, r := range reqs {
			if r != nil && !r.consumed && !r.done {
				r.waiters = append(r.waiters, ch)
			}
		}
		e.mu.Unlock()
		select {
		case <-ch:
		case <-e.downCh:
		case <-e.w.abortCh:
		}
		e.mu.Lock()
		for _, r := range reqs {
			if r != nil {
				r.dropWaiterLocked(ch)
			}
		}
		putWaiter(ch)
	}
}

// Testany is the non-blocking Waitany (MPI_Testany): if some non-nil,
// unconsumed request has completed, it is consumed and returned;
// otherwise ok is false and nothing is consumed.
func Testany(reqs ...*Request) (ok bool, idx int, st Status, err error) {
	var e *engine
	for _, r := range reqs {
		if r != nil {
			e = r.eng
			break
		}
	}
	if e == nil {
		return false, -1, Status{}, ErrInvalidArg
	}
	e.mu.Lock()
	if e.dead.Load() {
		e.mu.Unlock()
		panic(killedPanic{rank: e.rank})
	}
	best := -1
	for i, r := range reqs {
		if r == nil || r.consumed || r.eng != e || !r.done {
			continue
		}
		if best < 0 || r.doneSeq < reqs[best].doneSeq {
			best = i
		}
	}
	if best < 0 {
		e.mu.Unlock()
		return false, -1, Status{}, nil
	}
	r := reqs[best]
	r.consumed = true
	st, err = r.status, r.err
	observed := r.isRecv && err == nil && !r.observedHook
	if observed {
		r.observedHook = true
	}
	e.mu.Unlock()
	if observed && st.Source != ProcNull {
		e.w.fireHook(e, HookEvent{Rank: e.arank(), Point: HookAfterRecv, Peer: r.srcWorld, Tag: st.Tag})
	}
	return true, best, st, err
}

// Waitsome blocks until at least one request completes, then consumes
// and returns ALL currently completed requests in completion order
// (MPI_Waitsome). The statuses and errors slices parallel the returned
// indices.
func Waitsome(reqs ...*Request) (indices []int, sts []Status, errs []error, err error) {
	idx, st, werr := Waitany(reqs...)
	if idx < 0 {
		return nil, nil, nil, werr
	}
	indices = append(indices, idx)
	sts = append(sts, st)
	errs = append(errs, werr)
	for {
		ok, i, s, e := Testany(reqs...)
		if !ok {
			return indices, sts, errs, nil
		}
		indices = append(indices, i)
		sts = append(sts, s)
		errs = append(errs, e)
	}
}

// GoRequest runs fn on a helper goroutine of the calling rank and returns
// a Request that completes with fn's result. It is the building block for
// goroutine-backed non-blocking operations (Ibarrier, Ibcast) — the moral
// equivalent of an MPI implementation's progress thread. If the rank is
// killed while fn runs, the request never completes; its waiters unwind
// through the usual fail-stop path.
func (c *Comm) GoRequest(fn func() (Status, error)) *Request {
	c.eng.checkAlive()
	r := newRequest(c.eng, c, reqGeneric)
	r.ctx = c.ctxInternal
	go func() {
		defer func() {
			switch recover().(type) {
			case nil:
			case killedPanic, closedPanic, abortPanic:
				// Rank died or world ended; nobody can be waiting safely.
			}
		}()
		st, err := fn()
		c.eng.mu.Lock()
		r.completeLocked(err, st, nil)
		c.eng.mu.Unlock()
	}()
	return r
}

// Waitall blocks until every non-nil request completes. It returns the
// per-request statuses and the first error encountered (in index order),
// matching the paper's observation that collective-style completions need
// not agree across requests.
func Waitall(reqs ...*Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		if r == nil {
			continue
		}
		st, err := r.Wait()
		sts[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}
