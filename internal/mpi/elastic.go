package mpi

import (
	"fmt"
	"time"

	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// RankID is a generation-stamped rank identity. A world slot that fails
// and is respawned is occupied by a NEW process identity: same Slot,
// higher Gen. The transport stamps both endpoints' generations on every
// frame, so traffic from (or to) a dead incarnation is fenced at delivery
// rather than matched against the reincarnation's queues.
type RankID struct {
	// Slot is the world rank index, stable across incarnations.
	Slot int
	// Gen is the incarnation number, starting at 1.
	Gen int
}

// String renders the identity as "slot.gen" (e.g. "3.2" for the first
// respawn of rank 3).
func (id RankID) String() string { return fmt.Sprintf("%d.%d", id.Slot, id.Gen) }

// ElasticOptions configures elastic-world repair (World.Spawn).
type ElasticOptions struct {
	// AutoRespawn reincarnates every confirmed-dead slot automatically,
	// RespawnDelay after the failure notification.
	AutoRespawn bool
	// RespawnDelay is how long after a confirmed failure the automatic
	// respawn fires. Zero respawns as soon as the notification lands.
	RespawnDelay time.Duration
	// MaxRespawns caps the total number of reincarnations per run;
	// 0 means unlimited.
	MaxRespawns int
}

// procSeed carries the protocol counters a reincarnation inherits from
// the most advanced survivor, so its world communicator speaks the same
// context ids, validate instances and collective epoch as everyone else.
type procSeed struct {
	ctxSeq        int
	validateSeq   int
	validateEpoch int
	collSeq       int
	recognized    map[int]bool
	collMembers   []int
}

// apply installs the seed on a freshly built proc, before the proc is
// published or its rank function starts.
func (s *procSeed) apply(p *Proc) {
	p.ctxSeq = s.ctxSeq
	wc := p.worldComm
	wc.validateSeq = s.validateSeq
	wc.validateEpoch = s.validateEpoch
	wc.collSeq = s.collSeq
	for r := range s.recognized {
		wc.recognized[r] = true
	}
	if s.collMembers != nil {
		wc.collMembers = append([]int(nil), s.collMembers...)
	}
}

// Spawn reincarnates a confirmed-dead slot at the next generation: a
// fresh engine (and detector monitor) is installed, the registry revives
// the slot, survivors repair their communicators, the newcomer inherits
// the protocol counters of the most advanced survivor, and the world's
// rank function is launched on the new incarnation. It returns the new
// generation.
//
// The ULFM analogy is MPI_Comm_spawn + merge collapsed into one step:
// because the world's slot table is fixed, "spawning a replacement and
// merging it into the communicator" reduces to re-occupying the dead slot
// under a fresh identity.
func (w *World) Spawn(slot int) (int, error) {
	if w.elastic == nil {
		return 0, fmt.Errorf("%w: Spawn on a non-elastic world (use WithElastic)", ErrInvalidArg)
	}
	if slot < 0 || slot >= w.size {
		return 0, fmt.Errorf("%w: Spawn(%d) out of range [0,%d)", ErrInvalidArg, slot, w.size)
	}

	w.runMu.Lock()
	defer w.runMu.Unlock()
	if w.runFn == nil || w.closing || w.active == 0 {
		return 0, fmt.Errorf("%w: Spawn(%d) outside a live run", ErrInvalidArg, slot)
	}
	// Checked under runMu: Revive only ever runs under this lock (join
	// below), so when two Spawns race for one slot — a manual call against
	// the AutoRespawn timer, or two survivors reacting to the same death —
	// the loser observes the winner's revive here and is refused, instead
	// of reaching Revive on a live rank (which panics).
	if !w.registry.Confirmed(slot) {
		return 0, fmt.Errorf("%w: Spawn(%d): slot is not confirmed dead", ErrInvalidArg, slot)
	}
	sinceDeath, _ := w.registry.SinceDeath(slot)
	if w.spawning[slot] {
		return 0, fmt.Errorf("%w: Spawn(%d) already in progress", ErrInvalidArg, slot)
	}
	if max := w.elastic.MaxRespawns; max > 0 && w.respawned >= max {
		return 0, fmt.Errorf("%w: respawn budget (%d) exhausted", ErrInvalidArg, max)
	}
	w.spawning[slot] = true
	defer delete(w.spawning, slot)

	gen, seed := w.join(slot)
	w.respawned++

	rr := &RespawnResult{Slot: slot, Gen: gen}
	w.runRes.Respawns = append(w.runRes.Respawns, rr)
	// active > 0 under runMu means the WaitGroup counter is still positive
	// (goroutines decrement active before Done), so Add is race-free.
	w.runWG.Add(1)
	w.active++
	w.launchRankLocked(slot, seed, &rr.RankResult)

	w.metrics.Inc(slot, metrics.Respawns)
	w.obs.Observe(slot, obs.RespawnRecovery, sinceDeath)
	// Respawn IS the repair in elastic mode: the same death-to-service
	// latency feeds the cross-mode recovery family.
	w.obs.Observe(slot, obs.RecoveryTotal, sinceDeath)
	w.tracer.RecordMsg(slot, trace.Respawned, -1, -1, -1, gen, 0, 0,
		fmt.Sprintf("generation %d after %v dead", gen, sinceDeath.Round(time.Microsecond)))
	return gen, nil
}

// join rebuilds the slot's per-rank machinery at the next generation and
// splices it back into the world. Ordering is load-bearing:
//
//  1. build the replacement engine, seeding its failure view from the
//     registry's confirmed deaths (minus the slot itself);
//  2. clear survivors' monitor state for the slot (stale inter-arrival
//     estimators and pending fences must not instantly re-suspect the
//     newcomer) while the registry still says "failed";
//  3. build the slot's replacement monitor — the old incarnation's pump
//     exited at death and is not restartable;
//  4. install the replacement engine, arming the generation fence: from
//     this instant genOf(slot) reports the new generation, so late or
//     retransmitted frames stamped by the dead incarnation are rejected
//     at delivery on every survivor (and frames stamped for the new
//     generation are accepted from the instant they can be produced);
//  5. reset the reliability links in both directions so the newcomer's
//     seq=1 frames are neither deduped nor matched against stale
//     retransmission state — strictly after step 4, because purging rx
//     dedup re-admits frames from the dead incarnation and only the
//     already-armed fence keeps survivors from re-accepting them;
//  6. install the monitor;
//  7. revive the slot in the registry — generation bumps, survivors'
//     engines repair recognition/collectives via the revive subscriber;
//  8. start the new monitor;
//  9. sync protocol counters from the most advanced survivor and set the
//     agreement join fence.
//
// Caller holds runMu.
func (w *World) join(slot int) (int, *procSeed) {
	newGen := uint32(w.registry.Generation(slot) + 1)

	e2 := newEngine(w, slot, newGen)
	if w.repl != nil {
		// The failure view speaks logical ids in replication mode; a logical
		// rank is app-failed only when its whole replica group is gone.
		for l := 0; l < w.lsize; l++ {
			if l != w.logicalOf(slot) && w.appFailed(l) {
				e2.knownFailed[l] = true
			}
		}
	} else {
		for i := 0; i < w.size; i++ {
			if i != slot && w.registry.Confirmed(i) {
				e2.knownFailed[i] = true
			}
		}
	}
	if w.repl != nil {
		// Replication sequence state seeds from a surviving sibling before
		// the engine is published, so no inbound frame can race it: stale
		// forwards for consumed history dedup-drop instead of matching.
		w.repl.seedRepState(slot, e2)
	}

	for i := 0; i < w.size; i++ {
		if i == slot || w.registry.Failed(i) {
			continue
		}
		if hb := w.hbAt(i); hb != nil {
			hb.Resume(slot)
		}
		if sw := w.swAt(i); sw != nil {
			sw.Resume(slot)
		}
	}

	var hb2 *detector.Heartbeat
	var sw2 *membership.Swim
	if w.hb != nil {
		hb2 = w.makeHeartbeat(slot)
	}
	if w.sw != nil {
		sw2 = w.makeSwim(slot)
	}

	w.engines[slot].Store(e2)

	if w.reliable != nil {
		w.reliable.PeerUp(slot)
	}

	if hb2 != nil {
		w.hb[slot].Store(hb2)
	}
	if sw2 != nil {
		w.sw[slot].Store(sw2)
	}

	gen := w.registry.Revive(slot)

	if hb2 != nil {
		hb2.Start()
	}
	if sw2 != nil {
		sw2.Start()
	}

	seed := w.captureSeed(slot)
	// Any agreement instance entered before the revive has every entrant's
	// validateSeq past it by capture time, so taking the max over the
	// survivors makes "instance < joinInst" exactly the set of instances
	// this incarnation must answer reactively instead of reaching in
	// program order.
	e2.setJoinInst(seed.validateSeq)
	return gen, seed
}

// captureSeed snapshots the world-communicator protocol counters of the
// most advanced survivor (highest validateSeq), each snapshot taken under
// that survivor's engine lock.
func (w *World) captureSeed(slot int) *procSeed {
	var best *procSeed
	var bestCtx int
	for i := 0; i < w.size; i++ {
		if i == slot || w.registry.Failed(i) {
			continue
		}
		p := w.procs[i].Load()
		if p == nil || p.eng.dead.Load() {
			continue
		}
		p.eng.mu.Lock()
		s := &procSeed{
			ctxSeq:        p.ctxSeq,
			validateSeq:   p.worldComm.validateSeq,
			validateEpoch: p.worldComm.validateEpoch,
			collSeq:       p.worldComm.collSeq,
			recognized:    make(map[int]bool, len(p.worldComm.recognized)),
			collMembers:   append([]int(nil), p.worldComm.collMembers...),
		}
		for r := range p.worldComm.recognized {
			if r != slot {
				s.recognized[r] = true
			}
		}
		p.eng.mu.Unlock()
		if s.ctxSeq > bestCtx {
			bestCtx = s.ctxSeq // context ids advance independently of validates
		}
		if best == nil || s.validateSeq > best.validateSeq {
			best = s
		}
	}
	if best == nil {
		return &procSeed{recognized: map[int]bool{}}
	}
	best.ctxSeq = bestCtx
	return best
}

// launchRankLocked starts (or restarts) the rank function for a slot on a
// fresh goroutine, recording its outcome in out. Caller holds runMu and
// has already accounted for the goroutine in runWG and active.
func (w *World) launchRankLocked(rank int, seed *procSeed, out *RankResult) {
	w.finished[rank].Store(false)
	go func() {
		defer func() {
			r := recover()
			// Outcome writes happen-before runWG.Done, which is what makes
			// them visible to Run's result inspection after wg.Wait.
			switch r.(type) {
			case nil:
			case killedPanic:
				out.Killed = true
			case abortPanic, closedPanic:
				out.Aborted = true
			}
			w.finished[rank].Store(true)
			w.runMu.Lock()
			w.active--
			w.runMu.Unlock()
			w.runWG.Done()
			if r != nil {
				switch r.(type) {
				case killedPanic, abortPanic, closedPanic:
				default:
					panic(r) // real bug: propagate
				}
			}
		}()
		p := newProc(w, rank)
		if seed != nil {
			seed.apply(p)
		}
		w.procs[rank].Store(p)
		out.Err = w.runFn(p)
		out.Finished = true
	}()
}
