package mpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

// runWorldOn executes fn over an explicit fabric.
func runWorldOn(t *testing.T, n int, fab transport.Fabric, fn func(p *Proc) error) *RunResult {
	t.Helper()
	w, err := NewWorldFromConfig(Config{Size: n, Deadline: 60 * time.Second, Fabric: fab})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// ringBody circulates a counter and checks the accumulated value.
func ringBody(iters int) func(p *Proc) error {
	return func(p *Proc) error {
		c := p.World()
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				if err := c.Send(right, 1, []byte{1}); err != nil {
					return err
				}
				pl, _, err := c.Recv(left, 1)
				if err != nil {
					return err
				}
				if int(pl[0]) != n {
					return fmt.Errorf("iteration %d accumulated %d, want %d", i, pl[0], n)
				}
			} else {
				pl, _, err := c.Recv(left, 1)
				if err != nil {
					return err
				}
				if err := c.Send(right, 1, []byte{pl[0] + 1}); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func TestRingOverTCPFabric(t *testing.T) {
	res := runWorldOn(t, 4, transport.NewTCP(4), ringBody(10))
	requireNoRankErrors(t, res)
}

func TestRingOverLatencyFabric(t *testing.T) {
	fab := transport.NewLatency(transport.NewLocal(), 200*time.Microsecond)
	res := runWorldOn(t, 3, fab, ringBody(5))
	requireNoRankErrors(t, res)
}

// TestFailureSemanticsOverTCP: the Fig. 9 detector property must hold
// over a real network fabric too.
func TestFailureSemanticsOverTCP(t *testing.T) {
	res := runWorldOn(t, 2, transport.NewTCP(2), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			if _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			p.Die()
		}
		det := c.Irecv(1, 9)
		if err := c.Send(1, 1, nil); err != nil {
			return err
		}
		if _, err := det.Wait(); !IsRankFailStop(err) {
			return fmt.Errorf("detector over tcp: %v", err)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

// TestValidateAllOverTCP exercises the agreement protocol's gob frames
// over sockets.
func TestValidateAllOverTCP(t *testing.T) {
	res := runWorldOn(t, 4, transport.NewTCP(4), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		if cnt != 1 {
			return fmt.Errorf("agreed %d, want 1", cnt)
		}
		return nil
	})
	for rank := 0; rank < 3; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}

// TestNotifyDelayDefersDetection: with detection latency configured, a
// send can still slip through to a dead rank (and vanish) before the
// notification lands — the weaker, more realistic detector mode.
func TestNotifyDelayDefersDetection(t *testing.T) {
	w, err := NewWorldFromConfig(Config{Size: 2, Deadline: 60 * time.Second, NotifyDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 1 {
			p.Die()
		}
		// Immediately after the kill the ground truth knows, but this
		// engine may not: the send may succeed into the void.
		for !p.Registry().Failed(1) {
			time.Sleep(time.Millisecond)
		}
		_ = c.Send(1, 0, []byte("may vanish")) // either outcome is legal here
		// Eventually (strong completeness) the failure must surface.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			info, err := c.RankState(1)
			if err != nil {
				return err
			}
			if info.State == RankFailed {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("notification never arrived")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

// --- micro-benchmarks ---------------------------------------------------------

func BenchmarkPingPongLocal(b *testing.B) {
	benchPingPong(b, nil)
}

func BenchmarkPingPongTCP(b *testing.B) {
	benchPingPong(b, transport.NewTCP(2))
}

func benchPingPong(b *testing.B, fab transport.Fabric) {
	b.Helper()
	b.ReportAllocs()
	w, err := NewWorldFromConfig(Config{Size: 2, Deadline: 5 * time.Minute, Fabric: fab})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	if _, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		peer := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				if err := c.Send(peer, 1, payload); err != nil {
					return err
				}
				if _, _, err := c.Recv(peer, 2); err != nil {
					return err
				}
			} else {
				if _, _, err := c.Recv(peer, 1); err != nil {
					return err
				}
				if err := c.Send(peer, 2, payload); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWaitanyTwoRequests(b *testing.B) {
	b.ReportAllocs()
	w, err := NewWorldFromConfig(Config{Size: 2, Deadline: 5 * time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		peer := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			det := c.Irecv(peer, 99) // never completes
			data := c.Irecv(peer, 1)
			if err := c.Send(peer, 1, nil); err != nil {
				return err
			}
			if idx, _, err := Waitany(data, det); err != nil || idx != 0 {
				return fmt.Errorf("waitany idx=%d err=%v", idx, err)
			}
			det.Cancel()
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}
