package mpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/reliable"
	"repro/internal/transport"
)

// runWorldOn executes fn over an explicit fabric.
func runWorldOn(t *testing.T, n int, fab transport.Fabric, fn func(p *Proc) error) *RunResult {
	t.Helper()
	w, err := NewWorld(n, WithFabric(fab), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// ringBody circulates a counter and checks the accumulated value.
func ringBody(iters int) func(p *Proc) error {
	return func(p *Proc) error {
		c := p.World()
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				if err := c.Send(right, 1, []byte{1}); err != nil {
					return err
				}
				pl, _, err := c.Recv(left, 1)
				if err != nil {
					return err
				}
				if int(pl[0]) != n {
					return fmt.Errorf("iteration %d accumulated %d, want %d", i, pl[0], n)
				}
			} else {
				pl, _, err := c.Recv(left, 1)
				if err != nil {
					return err
				}
				if err := c.Send(right, 1, []byte{pl[0] + 1}); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func TestRingOverTCPFabric(t *testing.T) {
	res := runWorldOn(t, 4, transport.NewTCP(4), ringBody(10))
	requireNoRankErrors(t, res)
}

func TestRingOverLatencyFabric(t *testing.T) {
	fab := transport.NewLatency(transport.NewLocal(), 200*time.Microsecond)
	res := runWorldOn(t, 3, fab, ringBody(5))
	requireNoRankErrors(t, res)
}

// TestFailureSemanticsOverTCP: the Fig. 9 detector property must hold
// over a real network fabric too.
func TestFailureSemanticsOverTCP(t *testing.T) {
	res := runWorldOn(t, 2, transport.NewTCP(2), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			if _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			p.Die()
		}
		det := c.Irecv(1, 9)
		if err := c.Send(1, 1, nil); err != nil {
			return err
		}
		if _, err := det.Wait(); !IsRankFailStop(err) {
			return fmt.Errorf("detector over tcp: %v", err)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

// TestValidateAllOverTCP exercises the agreement protocol's gob frames
// over sockets.
func TestValidateAllOverTCP(t *testing.T) {
	res := runWorldOn(t, 4, transport.NewTCP(4), func(p *Proc) error {
		c := p.World()
		if p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		if cnt != 1 {
			return fmt.Errorf("agreed %d, want 1", cnt)
		}
		return nil
	})
	for rank := 0; rank < 3; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}

// TestNotifyDelayDefersDetection: with detection latency configured, a
// send can still slip through to a dead rank (and vanish) before the
// notification lands — the weaker, more realistic detector mode.
func TestNotifyDelayDefersDetection(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(60*time.Second), WithNotifyDelay(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 1 {
			p.Die()
		}
		// Immediately after the kill the ground truth knows, but this
		// engine may not: the send may succeed into the void.
		for !p.Registry().Failed(1) {
			time.Sleep(time.Millisecond)
		}
		_ = c.Send(1, 0, []byte("may vanish")) // either outcome is legal here
		// Eventually (strong completeness) the failure must surface.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			info, err := c.RankState(1)
			if err != nil {
				return err
			}
			if info.State == RankFailed {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("notification never arrived")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

// TestNotifyDelayValidateAllSurvivesMidDeath is the regression companion
// to TestNotifyDelayDefersDetection for collectives: a rank that dies
// mid-validate_all while failure notifications are delayed must not wedge
// the collective — the survivors' agreement completes and they agree on
// the same failed count.
func TestNotifyDelayValidateAllSurvivesMidDeath(t *testing.T) {
	const n = 4
	w, err := NewWorld(n, WithDeadline(60*time.Second), WithNotifyDelay(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			// Enter the collective, then die while it is in flight: the
			// vote may or may not have reached the coordinator, and the
			// delayed notification means the survivors discover the death
			// only after they are already blocked in the agreement.
			req := c.IvalidateAll()
			p.Die()
			_ = req
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		counts[p.Rank()] = cnt
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("validate_all wedged; stuck ranks %v", res.Stuck)
	}
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 did not die")
	}
	for _, rank := range []int{0, 1, 3} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != counts[0] {
			t.Fatalf("survivors disagree on failed count: %v", counts)
		}
	}
	// Rank 2's vote races its death: if the vote landed first the
	// collective legitimately completes with count 0; otherwise the
	// (delayed) failure notification completes it with count 1. Both are
	// correct — what must never happen is a wedge or disagreement.
	if counts[0] != 0 && counts[0] != 1 {
		t.Fatalf("survivors counted %d failed, want 0 or 1", counts[0])
	}
}

// chaosRates is the acceptance-criteria fault mix: 10% drop, 5% dup, 1%
// corruption on every link.
func chaosRates() chaos.Rates {
	return chaos.Rates{Drop: 0.10, Dup: 0.05, Corrupt: 0.01}
}

// TestRingUnderChaos runs the token ring over a lossy, duplicating,
// corrupting Local fabric: the reliability sublayer must deliver every
// message exactly once, intact and in order, so the ring's accumulated
// counter checks still pass.
func TestRingUnderChaos(t *testing.T) {
	plan := chaos.NewPlan(1234).Default(chaosRates())
	m := metrics.NewWorld(4)
	w, err := NewWorld(4, WithChaos(plan), WithMetrics(m), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return ringBody(10)(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	requireNoRankErrors(t, res)
	if len(plan.Log()) == 0 {
		t.Fatal("chaos injected nothing at 10%/5%/1% rates")
	}
	if dropped := m.Total(metrics.FramesDropped); dropped == 0 {
		t.Fatal("no dropped frames counted")
	}
	if retried := m.Total(metrics.FramesRetried); retried == 0 {
		t.Fatal("drops survived without a single retry — reliability layer bypassed?")
	}
	if deduped := m.Total(metrics.FramesDeduped); plan.Count(chaos.EvDup) > 0 && deduped == 0 {
		t.Fatal("duplicates injected but none deduplicated")
	}
}

// TestRingUnderChaosOverTCP repeats the chaotic ring over real sockets:
// chaos corrupts payloads above the wire codec, so the frame CRC stays
// self-consistent and it is the end-to-end payload CRC that must catch
// the mangled frames.
func TestRingUnderChaosOverTCP(t *testing.T) {
	plan := chaos.NewPlan(99).Default(chaosRates())
	w, err := NewWorld(4, WithFabric(transport.NewTCP(4)), WithChaos(plan), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return ringBody(5)(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	requireNoRankErrors(t, res)
	if len(plan.Log()) == 0 {
		t.Fatal("chaos injected nothing")
	}
}

// TestPartitionEscalatesToFailStop blackholes the 0->1 link: the
// reliability layer's retry budget must exhaust and demote rank 1 to
// fail-stop through the detector, so the run terminates with the paper's
// failure semantics instead of hanging.
func TestPartitionEscalatesToFailStop(t *testing.T) {
	plan := chaos.NewPlan(7).Partition(0, 1, 1, ^uint64(0))
	m := metrics.NewWorld(2)
	fast := reliable.Options{RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond, MaxRetries: 5, Tick: time.Millisecond}
	w, err := NewWorld(2, WithChaos(plan), WithReliability(fast), WithMetrics(m), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 1 {
			_, _, err := c.Recv(0, 1) // never arrives: the link is dead
			if IsRankFailStop(err) {
				return nil
			}
			return err
		}
		if err := c.Send(1, 1, []byte("into the void")); err != nil {
			return err
		}
		// Wait for the escalation to declare the peer failed.
		deadline := time.Now().Add(30 * time.Second)
		for !p.Registry().Failed(1) {
			if time.Now().After(deadline) {
				return fmt.Errorf("link partition never escalated to fail-stop")
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("run did not terminate; stuck ranks %v", res.Stuck)
	}
	if rr := res.Ranks[0]; rr.Err != nil {
		t.Fatalf("rank 0: %v", rr.Err)
	}
	// Rank 1 either unwound as killed or observed its own fail-stop.
	if !res.Ranks[1].Killed && res.Ranks[1].Err != nil {
		t.Fatalf("rank 1: killed=%v err=%v", res.Ranks[1].Killed, res.Ranks[1].Err)
	}
	if m.Total(metrics.LinkEscalations) == 0 {
		t.Fatal("no escalation counted")
	}
	if m.Total(metrics.FramesRetried) == 0 {
		t.Fatal("no retries counted before escalation")
	}
}

// --- micro-benchmarks ---------------------------------------------------------

func BenchmarkPingPongLocal(b *testing.B) {
	benchPingPong(b, nil)
}

func BenchmarkPingPongTCP(b *testing.B) {
	benchPingPong(b, transport.NewTCP(2))
}

func benchPingPong(b *testing.B, fab transport.Fabric) {
	b.Helper()
	b.ReportAllocs()
	w, err := NewWorld(2, WithFabric(fab), WithDeadline(5*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	if _, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		peer := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				if err := c.Send(peer, 1, payload); err != nil {
					return err
				}
				if _, _, err := c.Recv(peer, 2); err != nil {
					return err
				}
			} else {
				if _, _, err := c.Recv(peer, 1); err != nil {
					return err
				}
				if err := c.Send(peer, 2, payload); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWaitanyTwoRequests(b *testing.B) {
	b.ReportAllocs()
	w, err := NewWorld(2, WithDeadline(5*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		peer := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			det := c.Irecv(peer, 99) // never completes
			data := c.Irecv(peer, 1)
			if err := c.Send(peer, 1, nil); err != nil {
				return err
			}
			if idx, _, err := Waitany(data, det); err != nil || idx != 0 {
				return fmt.Errorf("waitany idx=%d err=%v", idx, err)
			}
			det.Cancel()
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}
