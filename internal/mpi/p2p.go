package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/trace"
	"repro/internal/transport"
)

// Send transmits payload to the communicator rank dst with the given tag.
// It is the paper's MPI_Send: eager and buffered, so it completes as soon
// as the fabric has the message.
//
// Failure semantics (paper Section II): sending to a rank whose failure
// is known and unrecognized returns ErrRankFailStop — the trigger for the
// FT_Send_right failover loop (Fig. 5). Sending to a recognized failed
// rank has ProcNull semantics and succeeds without effect. A failure that
// is not yet locally known is NOT detected here: the message is handed to
// the fabric and vanishes at the dead rank — exactly the silent loss that
// makes Figure 6's naive receive hang.
func (c *Comm) Send(dst, tag int, payload []byte) error {
	c.eng.checkAlive()
	if tag < 0 {
		return c.herr(fmt.Errorf("%w: negative tag %d", ErrInvalidArg, tag))
	}
	return c.herr(c.send(dst, tag, c.ctxP2P, payload))
}

// send implements Send on an explicit context; internal callers use
// negative tags on the internal context.
func (c *Comm) send(dst, tag, ctx int, payload []byte) error {
	if dst == ProcNull {
		return nil
	}
	wr, err := c.WorldRank(dst)
	if err != nil {
		return err
	}

	c.eng.mu.Lock()
	recognized := c.recognized[wr]
	failed := c.eng.knownFailed[wr]
	c.eng.mu.Unlock()
	if recognized {
		return nil // MPI_PROC_NULL semantics
	}

	c.proc.w.fireHook(c.eng, HookEvent{Rank: c.proc.rank, Point: HookBeforeSend, Peer: wr, Tag: tag})
	if failed {
		return failStop(wr)
	}
	if c.proc.w.repl != nil {
		// Replication mode: wr is a LOGICAL destination; fan the message out
		// to its live physical replicas (replSend makes the per-copy
		// defensive copies itself).
		if err := c.eng.replSend(wr, tag, ctx, payload); err != nil {
			return err
		}
		c.proc.w.fireHook(c.eng, HookEvent{Rank: c.proc.rank, Point: HookAfterSend, Peer: wr, Tag: tag})
		return nil
	}
	// A NonRetaining fabric copies everything it needs inside Send, so the
	// caller's payload can be handed over zero-copy. Retaining fabrics
	// (Local) keep the slice queued at the destination indefinitely, so a
	// defensive copy is required to honor Send's value semantics.
	buf := payload
	if !c.proc.w.nonRetaining {
		buf = make([]byte, len(payload))
		copy(buf, payload)
	}
	err = c.eng.sendPacket(&transport.Packet{
		Src: c.eng.rank, Dst: wr, Tag: tag, Context: ctx,
		Kind: transport.KindData, Payload: buf,
	})
	if err != nil {
		return err
	}
	c.proc.w.fireHook(c.eng, HookEvent{Rank: c.proc.rank, Point: HookAfterSend, Peer: wr, Tag: tag})
	return nil
}

// Isend starts a non-blocking send. Sends are eager, so the returned
// request is already complete; errors surface at Wait, as in MPI.
func (c *Comm) Isend(dst, tag int, payload []byte) *Request {
	c.eng.checkAlive()
	var err error
	if tag < 0 {
		err = fmt.Errorf("%w: negative tag %d", ErrInvalidArg, tag)
	} else {
		err = c.send(dst, tag, c.ctxP2P, payload)
	}
	r := newRequest(c.eng, c, reqSend)
	r.tag, r.ctx = tag, c.ctxP2P
	c.eng.mu.Lock()
	r.completeLocked(err, Status{Source: c.myRank, Tag: tag, Len: len(payload)}, nil)
	c.eng.mu.Unlock()
	return r
}

// Irecv posts a non-blocking receive from communicator rank src (or
// AnySource) with the given tag (or AnyTag).
//
// This operation doubles as the paper's failure detector (Fig. 9): a
// receive posted to a peer that never sends completes only if that peer
// fails, in which case it completes with ErrRankFailStop.
func (c *Comm) Irecv(src, tag int) *Request {
	c.eng.checkAlive()
	return c.irecv(src, tag, c.ctxP2P)
}

func (c *Comm) irecv(src, tag, ctx int) *Request {
	r := newRequest(c.eng, c, reqRecv)
	r.isRecv, r.tag, r.ctx = true, tag, ctx
	if src == ProcNull {
		r.srcWorld = ProcNull
		c.eng.mu.Lock()
		r.completeLocked(nil, Status{Source: ProcNull, Tag: tag}, nil)
		c.eng.mu.Unlock()
		return r
	}
	if src == AnySource {
		r.srcWorld = AnySource
	} else {
		wr, err := c.WorldRank(src)
		if err != nil {
			c.eng.mu.Lock()
			r.completeLocked(err, Status{}, nil)
			c.eng.mu.Unlock()
			return r
		}
		r.srcWorld = wr
		c.eng.mu.Lock()
		recognized := c.recognized[wr]
		c.eng.mu.Unlock()
		if recognized {
			// MPI_PROC_NULL semantics: complete immediately, no data.
			c.eng.mu.Lock()
			r.completeLocked(nil, Status{Source: ProcNull, Tag: tag}, nil)
			c.eng.mu.Unlock()
			return r
		}
	}
	c.proc.w.tracer.Record(c.proc.rank, trace.RecvPosted, src, tag, -1, "")
	c.eng.postRecv(r)
	return r
}

// Recv blocks until a matching message arrives and returns its payload.
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	r := c.Irecv(src, tag)
	st, err := r.Wait()
	if err != nil {
		return nil, st, c.herr(err)
	}
	c.proc.w.tracer.Record(c.proc.rank, trace.RecvCompleted, st.Source, st.Tag, -1, "")
	payload := r.Payload()
	r.Free()
	return payload, st, nil
}

// Sendrecv posts the receive, performs the send, then waits for the
// receive — the deadlock-free exchange used by the collective algorithms.
func (c *Comm) Sendrecv(dst, sendTag int, payload []byte, src, recvTag int) ([]byte, Status, error) {
	r := c.Irecv(src, recvTag)
	if err := c.Send(dst, sendTag, payload); err != nil {
		r.Cancel()
		return nil, Status{}, err
	}
	st, err := r.Wait()
	if err != nil {
		return nil, st, c.herr(err)
	}
	got := r.Payload()
	r.Free()
	return got, st, nil
}

// Iprobe reports whether a matching message is queued, without receiving
// it (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (bool, Status, error) {
	c.eng.checkAlive()
	srcWorld := src
	if src != AnySource {
		wr, err := c.WorldRank(src)
		if err != nil {
			return false, Status{}, c.herr(err)
		}
		srcWorld = wr
	}
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	if pkt := c.eng.unexpected.probe(srcWorld, tag, c.ctxP2P); pkt != nil {
		return true, Status{Source: c.rankOf(pkt.Src), Tag: pkt.Tag, Len: len(pkt.Payload)}, nil
	}
	return false, Status{}, nil
}

// --- internal-context point-to-point (collectives, comm management) ---------

// sendInternal sends on the communicator's internal context. Tags here
// are library-owned and may be negative.
func (c *Comm) sendInternal(dst, tag int, payload []byte) error {
	c.eng.checkAlive()
	return c.send(dst, tag, c.ctxInternal, payload)
}

// irecvInternal posts a receive on the internal context.
func (c *Comm) irecvInternal(src, tag int) *Request {
	c.eng.checkAlive()
	return c.irecv(src, tag, c.ctxInternal)
}

// recvInternal is the blocking internal-context receive.
func (c *Comm) recvInternal(src, tag int) ([]byte, Status, error) {
	r := c.irecvInternal(src, tag)
	st, err := r.Wait()
	if err != nil {
		return nil, st, err
	}
	return r.Payload(), st, nil
}

// SendInternal exposes internal-context sends to in-repo library packages
// (internal/collective). Application code should use Send.
func (c *Comm) SendInternal(dst, tag int, payload []byte) error {
	return c.sendInternal(dst, tag, payload)
}

// IrecvInternal exposes internal-context receives to in-repo library
// packages (internal/collective). Application code should use Irecv.
func (c *Comm) IrecvInternal(src, tag int) *Request {
	return c.irecvInternal(src, tag)
}

// RecvInternal exposes blocking internal-context receives to in-repo
// library packages (internal/collective).
func (c *Comm) RecvInternal(src, tag int) ([]byte, Status, error) {
	return c.recvInternal(src, tag)
}

// --- gob helpers -------------------------------------------------------------

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("mpi: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("mpi: gob decode: %w", err)
	}
	return nil
}
