package mpi

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ShrinkOptions configures Comm.ShrinkWith.
type ShrinkOptions struct {
	// Validate runs a ValidateAll before constructing the survivor group,
	// so the group is the agreed failure-free membership rather than this
	// rank's local view. Shrink() sets it; turn it off only when the
	// caller has just validated itself.
	Validate bool
}

// Shrink builds a new communicator containing only the agreed survivors
// of this one, densely re-ranked in the current communicator's rank order
// — the ULFM MPIX_Comm_shrink. All members that are alive must call it
// (it is collective: it runs the validate_all agreement and exchanges no
// further messages).
//
// If another member fails while Shrink is running, the agreement may
// still include it in the survivor group (the failure was not yet agreed
// on); as with MPIX_Comm_shrink, the caller detects this on first use of
// the new communicator and simply shrinks again.
func (c *Comm) Shrink() (*Comm, error) {
	return c.ShrinkWith(ShrinkOptions{Validate: true})
}

// ShrinkWith is Shrink with explicit options.
func (c *Comm) ShrinkWith(opt ShrinkOptions) (*Comm, error) {
	c.eng.checkAlive()
	start := time.Now()
	if opt.Validate {
		if _, err := c.ValidateAll(); err != nil {
			return nil, c.herr(err)
		}
	}
	p := c.proc
	c.eng.mu.Lock()
	group := append([]int(nil), c.collMembers...)
	p.ctxSeq++
	seq := p.ctxSeq
	c.eng.mu.Unlock()
	if len(group) == 0 {
		return nil, c.herr(fmt.Errorf("%w: no survivors to shrink onto", ErrInvalidArg))
	}
	// collMembers after a ValidateAll is the agreed survivor set in
	// comm-rank order at every member, so every survivor derives the same
	// group and the same context pair without any extra exchange.
	ctxP2P, ctxInternal := nextCtxPair(seq, 0)
	nc := newComm(p, group, ctxP2P, ctxInternal)
	w := p.w
	w.metrics.Inc(p.rank, metrics.Shrinks)
	w.obs.Observe(p.rank, obs.ShrinkLatency, time.Since(start))
	w.tracer.Record(p.rank, trace.ShrinkDone, -1, -1, -1,
		fmt.Sprintf("%d -> %d members", len(c.group), len(group)))
	return nc, nil
}
