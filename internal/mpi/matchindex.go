package mpi

import (
	"sort"

	"repro/internal/transport"
)

// This file holds the engine's matching index: posted receives and
// unexpected packets bucketed by their fully-specified (context, source,
// tag) key, with separate per-context wildcard lists for receives using
// AnySource and/or AnyTag. Delivery and Irecv therefore match in ~O(1)
// in the common (no-wildcard) case instead of scanning the whole queue.
//
// MPI's non-overtaking rule is preserved by construction:
//
//   - each bucket is a FIFO, so among receives with the same exact key
//     the earliest-posted one matches first, and among packets with the
//     same key the earliest-arrived one is received first;
//   - every posted receive carries a monotonically increasing postSeq;
//     when a packet could match both the exact bucket's head and a
//     wildcard receive, the smaller postSeq wins — exactly the request
//     the old linear scan (first match in post order) would have picked;
//   - a wildcard receive consumes the earliest queued packet by scanning
//     the per-context arrival-order list, the same packet the old
//     linear scan over the unexpected queue would have returned.
//
// Removal is eager everywhere (no tombstones), so a *Request popped out
// of the index is referenced by no index structure and may be pooled and
// reused immediately. All methods must be called with the owning
// engine's mutex held.

// bucketKey is the (context, source, tag) triple that fully determines
// matching for non-wildcard operations. It is the hash-bucket key: Go's
// map hashes the struct, and two operations land in the same bucket iff
// all three fields are equal (see FuzzBucketKey).
type bucketKey struct {
	ctx, src, tag int
}

// isWild reports whether a receive posted with (src, tag) needs the
// wildcard path.
func isWild(srcWorld, tag int) bool { return srcWorld == AnySource || tag == AnyTag }

// --- posted receives ---------------------------------------------------------

// postedIndex indexes the posted-receive queue.
type postedIndex struct {
	exact map[bucketKey][]*Request // fully-specified receives, FIFO per key
	wild  map[int][]*Request       // wildcard receives per context, post order
	live  int
	seq   uint64 // post-order stamp source
}

func newPostedIndex() postedIndex {
	return postedIndex{
		exact: make(map[bucketKey][]*Request),
		wild:  make(map[int][]*Request),
	}
}

// add appends the receive in post order.
func (ix *postedIndex) add(r *Request) {
	ix.seq++
	r.postSeq = ix.seq
	if isWild(r.srcWorld, r.tag) {
		ix.wild[r.ctx] = append(ix.wild[r.ctx], r)
	} else {
		k := bucketKey{r.ctx, r.srcWorld, r.tag}
		ix.exact[k] = append(ix.exact[k], r)
	}
	ix.live++
}

// match finds, removes and returns the earliest-posted receive matching a
// packet with the given header, or nil.
func (ix *postedIndex) match(ctx, src, tag int) *Request {
	k := bucketKey{ctx, src, tag}
	var exactHit *Request
	if q := ix.exact[k]; len(q) > 0 {
		exactHit = q[0]
	}
	wl := ix.wild[ctx]
	wildAt := -1
	for i, r := range wl {
		if (r.tag == AnyTag || r.tag == tag) && (r.srcWorld == AnySource || r.srcWorld == src) {
			wildAt = i
			break
		}
	}
	switch {
	case exactHit == nil && wildAt < 0:
		return nil
	case wildAt < 0 || (exactHit != nil && exactHit.postSeq < wl[wildAt].postSeq):
		ix.popExact(k)
		return exactHit
	default:
		r := wl[wildAt]
		ix.removeWildAt(ctx, wildAt)
		return r
	}
}

// popExact drops the head of an exact bucket.
func (ix *postedIndex) popExact(k bucketKey) {
	q := ix.exact[k]
	q[0] = nil
	if len(q) == 1 {
		delete(ix.exact, k)
	} else {
		ix.exact[k] = q[1:]
	}
	ix.live--
}

// removeWildAt drops entry i of a wildcard list.
func (ix *postedIndex) removeWildAt(ctx, i int) {
	wl := ix.wild[ctx]
	copy(wl[i:], wl[i+1:])
	wl[len(wl)-1] = nil
	if len(wl) == 1 {
		delete(ix.wild, ctx)
	} else {
		ix.wild[ctx] = wl[:len(wl)-1]
	}
	ix.live--
}

// remove unlinks a specific posted receive (Cancel). It reports whether
// the request was present.
func (ix *postedIndex) remove(r *Request) bool {
	if isWild(r.srcWorld, r.tag) {
		for i, q := range ix.wild[r.ctx] {
			if q == r {
				ix.removeWildAt(r.ctx, i)
				return true
			}
		}
		return false
	}
	k := bucketKey{r.ctx, r.srcWorld, r.tag}
	q := ix.exact[k]
	for i, p := range q {
		if p != r {
			continue
		}
		if i == 0 {
			ix.popExact(k)
			return true
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = nil
		ix.exact[k] = q[:len(q)-1]
		ix.live--
		return true
	}
	return false
}

// collect removes and returns every posted receive satisfying pred, in
// post order — the failure-notification sweep. Failures are rare, so the
// full iteration here is off the hot path by design.
func (ix *postedIndex) collect(pred func(*Request) bool) []*Request {
	var out []*Request
	for k, q := range ix.exact {
		kept := q[:0]
		for _, r := range q {
			if pred(r) {
				out = append(out, r)
			} else {
				kept = append(kept, r)
			}
		}
		if len(kept) == len(q) {
			continue
		}
		for i := len(kept); i < len(q); i++ {
			q[i] = nil
		}
		if len(kept) == 0 {
			delete(ix.exact, k)
		} else {
			ix.exact[k] = kept
		}
	}
	for ctx, wl := range ix.wild {
		kept := wl[:0]
		for _, r := range wl {
			if pred(r) {
				out = append(out, r)
			} else {
				kept = append(kept, r)
			}
		}
		if len(kept) == len(wl) {
			continue
		}
		for i := len(kept); i < len(wl); i++ {
			wl[i] = nil
		}
		if len(kept) == 0 {
			delete(ix.wild, ctx)
		} else {
			ix.wild[ctx] = kept
		}
	}
	ix.live -= len(out)
	sort.Slice(out, func(i, j int) bool { return out[i].postSeq < out[j].postSeq })
	return out
}

// --- unexpected packets ------------------------------------------------------

// uEntry is one queued unexpected packet. Entries live in an exact bucket
// AND the per-context arrival-order list; the taken flag tombstones the
// order-list reference when the bucket path consumed the packet (entries
// are index-owned and never reused, so tombstoning is safe here).
type uEntry struct {
	pkt   *transport.Packet
	taken bool
}

// orderList is one context's arrival-order list with its tombstone count.
type orderList struct {
	entries []*uEntry
	stale   int // taken entries not yet compacted away
}

// unexpectedIndex indexes the unexpected-message queue.
type unexpectedIndex struct {
	exact map[bucketKey][]*uEntry // FIFO per key
	order map[int]*orderList      // per-context arrival order, for wildcards
	live  int
}

func newUnexpectedIndex() unexpectedIndex {
	return unexpectedIndex{
		exact: make(map[bucketKey][]*uEntry),
		order: make(map[int]*orderList),
	}
}

// add queues a packet in arrival order.
func (ix *unexpectedIndex) add(pkt *transport.Packet) {
	e := &uEntry{pkt: pkt}
	k := bucketKey{pkt.Context, pkt.Src, pkt.Tag}
	ix.exact[k] = append(ix.exact[k], e)
	ol := ix.order[pkt.Context]
	if ol == nil {
		ol = &orderList{}
		ix.order[pkt.Context] = ol
	}
	ol.entries = append(ol.entries, e)
	ix.live++
}

// take finds, removes and returns the earliest-arrived packet matching
// the receive criteria, or nil.
func (ix *unexpectedIndex) take(srcWorld, tag, ctx int) *transport.Packet {
	if !isWild(srcWorld, tag) {
		k := bucketKey{ctx, srcWorld, tag}
		q := ix.exact[k]
		if len(q) == 0 {
			return nil
		}
		e := q[0]
		ix.popExactLocked(k, q)
		return e.pkt
	}
	ol := ix.order[ctx]
	if ol == nil {
		return nil
	}
	for i, e := range ol.entries {
		if e.taken {
			continue
		}
		if (tag == AnyTag || tag == e.pkt.Tag) && (srcWorld == AnySource || srcWorld == e.pkt.Src) {
			ix.removeFromBucket(e)
			ix.removeOrderAt(ctx, i)
			return e.pkt
		}
	}
	return nil
}

// probe reports the earliest matching packet without removing it.
func (ix *unexpectedIndex) probe(srcWorld, tag, ctx int) *transport.Packet {
	if !isWild(srcWorld, tag) {
		if q := ix.exact[bucketKey{ctx, srcWorld, tag}]; len(q) > 0 {
			return q[0].pkt
		}
		return nil
	}
	ol := ix.order[ctx]
	if ol == nil {
		return nil
	}
	for _, e := range ol.entries {
		if e.taken {
			continue
		}
		if (tag == AnyTag || tag == e.pkt.Tag) && (srcWorld == AnySource || srcWorld == e.pkt.Src) {
			return e.pkt
		}
	}
	return nil
}

// popExactLocked consumes the head of bucket k (already fetched as q) and
// tombstones its order-list reference.
func (ix *unexpectedIndex) popExactLocked(k bucketKey, q []*uEntry) {
	e := q[0]
	q[0] = nil
	if len(q) == 1 {
		delete(ix.exact, k)
	} else {
		ix.exact[k] = q[1:]
	}
	e.taken = true
	ix.live--
	if ol := ix.order[e.pkt.Context]; ol != nil {
		ol.stale++
		ix.maybeCompactOrder(e.pkt.Context)
	}
}

// removeFromBucket unlinks an entry found via the order list from its
// exact bucket. The caller accounts for the order-list side.
func (ix *unexpectedIndex) removeFromBucket(e *uEntry) {
	k := bucketKey{e.pkt.Context, e.pkt.Src, e.pkt.Tag}
	q := ix.exact[k]
	for i, p := range q {
		if p != e {
			continue
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = nil
		if len(q) == 1 {
			delete(ix.exact, k)
		} else {
			ix.exact[k] = q[:len(q)-1]
		}
		break
	}
	e.taken = true
	ix.live--
}

// removeOrderAt drops the entry at position i, which the caller already
// unlinked from its bucket.
func (ix *unexpectedIndex) removeOrderAt(ctx, i int) {
	ol := ix.order[ctx]
	copy(ol.entries[i:], ol.entries[i+1:])
	ol.entries[len(ol.entries)-1] = nil
	ol.entries = ol.entries[:len(ol.entries)-1]
	if len(ol.entries) == 0 {
		delete(ix.order, ctx)
	}
}

// maybeCompactOrder rebuilds a context's order list once tombstones
// outnumber live entries, keeping wildcard scans amortized O(live).
func (ix *unexpectedIndex) maybeCompactOrder(ctx int) {
	ol := ix.order[ctx]
	if ol.stale < 32 || ol.stale*2 < len(ol.entries) {
		return
	}
	kept := ol.entries[:0]
	for _, e := range ol.entries {
		if !e.taken {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(ol.entries); i++ {
		ol.entries[i] = nil
	}
	ol.entries = kept
	ol.stale = 0
	if len(kept) == 0 {
		delete(ix.order, ctx)
	}
}
