package mpi

import (
	"fmt"

	"repro/internal/transport"
)

// Neighbor state recovery (elastic worlds): a reincarnated rank starts
// with empty application state, so the runtime offers a tiny pull
// protocol over its own fabric. Each rank may register a StateProvider —
// a function serializing whatever the application would need to adopt
// the rank's role — and any rank may FetchState from an alive peer. The
// heat workload uses this to hand a respawned rank its block and step.
//
// The protocol is two KindState frames: a request (ctxStateReq, tag =
// request id) and a reply (ctxStateRep, same tag, payload = one presence
// byte + provider bytes). Replies travel through the reliability sublayer
// like data; liveness against a dying peer comes from the failure
// detector (onPeerFailure fails pending fetches), never from timers —
// the same discipline as the rest of the runtime.

// Internal context ids for the state protocol (world p2p contexts are
// >= 0, control is -2).
const (
	ctxStateReq = -3
	ctxStateRep = -4
)

// ErrNoState reports that the queried peer is alive but has not
// registered a state provider.
var ErrNoState = fmt.Errorf("mpi: peer has no state provider registered")

type stateReply struct {
	payload []byte
	err     error
}

type stateWaiter struct {
	target int
	ch     chan stateReply // buffered(1): completers never block
}

// SetStateProvider registers fn as this rank's state serializer. fn runs
// on fabric delivery goroutines, so it must be safe to call concurrently
// with the rank's own progress and should be quick. A nil fn deregisters.
func (p *Proc) SetStateProvider(fn func() []byte) {
	e := p.eng
	e.mu.Lock()
	e.stateProvider = fn
	e.mu.Unlock()
}

// FetchState pulls the serialized application state of an alive peer
// (world rank — logical in replication mode). It blocks until the reply
// arrives, the peer is reported failed (fail-stop error), or the world
// aborts. ErrNoState reports an alive peer without a provider.
func (p *Proc) FetchState(peer int) ([]byte, error) {
	e := p.eng
	e.checkAlive()
	if peer < 0 || peer >= p.w.lsize || peer == p.rank {
		return nil, fmt.Errorf("%w: FetchState(%d)", ErrInvalidRank, peer)
	}
	e.mu.Lock()
	if e.knownFailed[peer] {
		e.mu.Unlock()
		return nil, failStop(peer)
	}
	e.stateSeq++
	id := e.stateSeq
	waiter := &stateWaiter{target: peer, ch: make(chan stateReply, 1)}
	e.stateWaiters[id] = waiter
	e.mu.Unlock()

	// In replication mode the request fans out to every live replica of
	// the logical peer: asking only the primary would hang if the primary
	// dies while a standby survives (the group death never escalates, so
	// onPeerFailure would never fail the waiter). Duplicate replies are
	// dropped by the waiter-removal path below.
	targets := []int{peer}
	if p.w.repl != nil {
		targets = p.w.repl.livePhys(peer)
		if len(targets) == 0 {
			e.mu.Lock()
			delete(e.stateWaiters, id)
			e.mu.Unlock()
			return nil, failStop(peer)
		}
	}
	var sendErr error
	for _, t := range targets {
		pkt := &transport.Packet{
			Src: e.rank, Dst: t, Tag: int(id),
			Context: ctxStateReq, Kind: transport.KindState,
		}
		e.stampGen(pkt)
		if err := e.w.fabric.Send(pkt); err != nil && sendErr == nil {
			sendErr = err
		}
	}
	if sendErr != nil {
		e.mu.Lock()
		delete(e.stateWaiters, id)
		e.mu.Unlock()
		return nil, sendErr
	}

	select {
	case rep := <-waiter.ch:
		return rep.payload, rep.err
	case <-e.downCh:
		e.mu.Lock()
		delete(e.stateWaiters, id)
		e.mu.Unlock()
		e.checkAlive() // panics killedPanic when this rank died
		return nil, ErrCancelled
	case <-e.w.abortCh:
		e.mu.Lock()
		delete(e.stateWaiters, id)
		e.mu.Unlock()
		panic(abortPanic{code: e.w.abortCode()})
	}
}

// deliverState routes a KindState frame: requests are answered with the
// provider's serialization (presence byte 1) or a bare absence byte;
// replies complete the matching waiter. Runs on delivery goroutines.
func (e *engine) deliverState(pkt *transport.Packet) {
	switch pkt.Context {
	case ctxStateReq:
		e.mu.Lock()
		if e.dead.Load() || e.closed.Load() {
			e.mu.Unlock()
			return // requests to a dead rank vanish; the detector does the rest
		}
		fn := e.stateProvider
		e.mu.Unlock()
		payload := []byte{0}
		if fn != nil {
			payload = append([]byte{1}, fn()...) // provider runs outside all locks
		}
		reply := &transport.Packet{
			Src: e.rank, Dst: pkt.Src, Tag: pkt.Tag,
			Context: ctxStateRep, Kind: transport.KindState, Payload: payload,
		}
		e.stampGen(reply)
		_ = e.w.fabric.Send(reply)
	case ctxStateRep:
		e.mu.Lock()
		waiter := e.stateWaiters[uint64(pkt.Tag)]
		// The waiter's target is a logical rank; in replication mode any of
		// the peer's replicas may answer, and the first reply wins (later
		// duplicates find the waiter already removed).
		if waiter != nil && waiter.target == e.w.logicalOf(pkt.Src) {
			delete(e.stateWaiters, uint64(pkt.Tag))
		} else {
			waiter = nil
		}
		e.mu.Unlock()
		if waiter == nil {
			return // already failed by onPeerFailure, or stale duplicate
		}
		if len(pkt.Payload) == 0 || pkt.Payload[0] == 0 {
			waiter.ch <- stateReply{err: ErrNoState}
			return
		}
		waiter.ch <- stateReply{payload: pkt.Payload[1:]}
	}
}
