package mpi

import (
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ValidateAll is the proposal's MPI_Comm_validate_all: a collective,
// fault-tolerant agreement on the communicator's failed ranks. On
// success:
//
//   - every alive member obtains the same failure count (the return
//     value),
//   - all agreed failures become recognized on this communicator
//     (MPI_RANK_NULL), and
//   - collective operations are re-enabled over the surviving members.
//
// All alive members of the communicator must call it (in the same order
// relative to other collectives), but it tolerates any member failing
// before or during the call — including the coordinator, per the
// agreement protocol in agreement.go.
func (c *Comm) ValidateAll() (int, error) {
	c.eng.checkAlive()
	inst := c.nextValidateInst()
	decision, err := c.validateAllDriver(inst)
	if err != nil {
		return 0, c.herr(err)
	}
	c.applyValidateDecision(decision)
	return len(decision), nil
}

// IvalidateAll is the non-blocking MPI_Icomm_validate_all of the paper's
// Figure 13: it starts the agreement and returns a request that completes
// when the decision is reached, so the caller can Waitany over it
// together with the right-neighbor failure-detector receive. The agreed
// failure count is available from Request.Result (and Status.Len).
func (c *Comm) IvalidateAll() *Request {
	c.eng.checkAlive()
	inst := c.nextValidateInst()
	r := newRequest(c.eng, c, reqValidate)
	r.tag, r.ctx = 0, c.ctxInternal
	go func() {
		defer func() {
			switch recover().(type) {
			case nil:
			case killedPanic, closedPanic, abortPanic:
				// The proc died or the world ended; nobody is waiting.
			}
		}()
		decision, err := c.validateAllDriver(inst)
		if err == nil {
			c.applyValidateDecision(decision)
		}
		c.eng.mu.Lock()
		r.result = len(decision)
		r.completeLocked(err, Status{Source: c.myRank, Len: len(decision)}, nil)
		c.eng.mu.Unlock()
	}()
	return r
}

// nextValidateInst allocates the next agreement instance under the engine
// lock: elastic respawn reads validateSeq cross-rank to compute a
// reincarnation's join fence, so the increment must be coherent with that
// read.
func (c *Comm) nextValidateInst() int {
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	inst := c.validateSeq
	c.validateSeq++
	return inst
}

// applyValidateDecision recognizes the agreed failures and rebuilds the
// collective participant list.
func (c *Comm) applyValidateDecision(decision []int) {
	c.eng.mu.Lock()
	dec := make(map[int]bool, len(decision))
	var newly []int
	for _, f := range decision {
		// An agreement can conclude across a revive boundary, in which
		// case the decision names an incarnation that is already gone.
		// Recognizing the slot now would poison the new incarnation
		// (onPeerRevive cannot repair retroactively), so agreed failures
		// apply only while the registry still reports the slot dead.
		// Checked under eng.mu, where onPeerRevive's repair serializes.
		if !c.proc.w.appFailed(f) {
			continue
		}
		if !c.recognized[f] {
			newly = append(newly, f)
		}
		c.recognized[f] = true
		dec[f] = true
	}
	// The participant list is rebuilt from the agreed decision alone (not
	// from locally recognized ranks) so that every alive member computes
	// the identical list.
	members := make([]int, 0, len(c.group)-len(decision))
	for _, wr := range c.group {
		if !dec[wr] {
			members = append(members, wr)
		}
	}
	c.collMembers = members
	c.validateEpoch++
	// Re-align the collective tag sequence across ranks: members of a
	// failed collective epoch may have consumed different tag counts.
	c.collSeq = c.validateEpoch * collSeqEpochStride
	c.eng.mu.Unlock()
	w := c.proc.w
	w.metrics.Inc(c.proc.rank, metrics.Validates)
	w.tracer.Record(c.proc.rank, trace.ValidateDone, -1, -1, -1, "")
	if w.repl == nil {
		// ABFT repair: the agreement concluding on a newly recognized
		// failure is the moment run-through stabilization restores service
		// for this rank, so it closes the cross-mode recovery clock.
		// (Replication mode observes at promotion instead; elastic at
		// respawn. Decision ids are physical ranks outside replication.)
		for _, f := range newly {
			if lat, ok := w.registry.SinceDeath(f); ok {
				w.obs.Observe(c.proc.rank, obs.RecoveryTotal, lat)
			}
		}
	}
}
