// Package mpi is a message-passing runtime that reproduces, in Go, the
// MPI semantics the paper "Building a Fault Tolerant MPI Application: A
// Ring Communication Example" (Hursey & Graham, 2011) depends on — both
// the MPI-1 subset (point-to-point matching with tags and communicator
// contexts, non-blocking requests, Waitany, collective operations via
// internal/collective) and the MPI Forum Fault Tolerance Working Group's
// run-through stabilization extensions (per-communicator failure
// recognition, the MPI_ERR_RANK_FAIL_STOP error class, validate_all as a
// built-in fault-tolerant consensus).
//
// Ranks are goroutines inside a World. Fail-stop process failure is
// modelled by killing a rank: its next (or currently blocked) MPI call
// unwinds the goroutine, the perfect failure detector records the death,
// and every other rank's engine fails the posted receives that can no
// longer complete — which is exactly the mechanism the paper's Figure 9
// exploits to use MPI_Irecv as a failure detector.
//
// Semantics implemented (paper Section II):
//
//   - Point-to-point with a non-failed rank works normally even while
//     unrecognized failures exist in the communicator.
//   - Communication with an unrecognized failed rank returns
//     ErrRankFailStop; so does a posted receive on MPI_ANY_SOURCE while
//     any unrecognized failure exists.
//   - Messages sent by a rank before its death remain deliverable (eager
//     delivery), enabling the Figure 8 duplicate-message race.
//   - Recognized failed ranks have MPI_PROC_NULL semantics.
//   - Collective operations fail with ErrRankFailStop once a participant
//     has failed, until the communicator is repaired with validate_all;
//     return codes across ranks are intentionally not consistent (a
//     broadcast tree lets some ranks exit early).
//   - Comm.ValidateAll / Comm.IvalidateAll implement the proposal's
//     fault-tolerant consensus (see agreement.go).
package mpi
