package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// runWorld executes fn on n ranks with ErrorsReturn pre-set on the world
// communicator and a safety deadline, failing the test on harness errors.
func runWorld(t *testing.T, n int, fn func(p *Proc) error) *RunResult {
	t.Helper()
	res, err := runWorldErr(t, n, fn)
	if err != nil {
		t.Fatalf("world run failed: %v\n", err)
	}
	return res
}

func runWorldErr(t *testing.T, n int, fn func(p *Proc) error) (*RunResult, error) {
	t.Helper()
	w, err := NewWorld(n, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(p)
	})
}

func requireNoRankErrors(t *testing.T, res *RunResult) {
	t.Helper()
	for rank, rr := range res.Ranks {
		if rr.Err != nil {
			t.Fatalf("rank %d returned error: %v", rank, rr.Err)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		switch p.Rank() {
		case 0:
			return c.Send(1, 7, []byte("hello"))
		case 1:
			pl, st, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(pl) != "hello" {
				return fmt.Errorf("payload %q", pl)
			}
			if st.Source != 0 || st.Tag != 7 || st.Len != 5 {
				return fmt.Errorf("status %+v", st)
			}
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSendBuffersAreCopied(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			buf := []byte{1}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
			return nil
		}
		pl, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if pl[0] != 1 {
			return fmt.Errorf("send buffer was not copied: got %d", pl[0])
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestTagMatching(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			if err := c.Send(1, 1, []byte("a")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("b"))
		}
		// Receive tag 2 first even though tag 1 arrived first.
		pl2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		pl1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(pl1) != "a" || string(pl2) != "b" {
			return fmt.Errorf("got %q %q", pl1, pl2)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	const msgs = 100
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			pl, _, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if pl[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order: %d", i, pl[0])
			}
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestAnySourceAnyTag(t *testing.T) {
	res := runWorld(t, 3, func(p *Proc) error {
		c := p.World()
		if p.Rank() != 0 {
			return c.Send(0, 10+p.Rank(), []byte{byte(p.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			pl, st, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(pl[0]) != st.Source || st.Tag != 10+st.Source {
				return fmt.Errorf("mismatched status %+v payload %v", st, pl)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("sources seen: %v", seen)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestProcNullSemantics(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		c := p.World()
		if err := c.Send(ProcNull, 0, []byte("x")); err != nil {
			return err
		}
		pl, st, err := c.Recv(ProcNull, 0)
		if err != nil {
			return err
		}
		if pl != nil || st.Source != ProcNull {
			return fmt.Errorf("null recv: payload=%v status=%+v", pl, st)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSendToSelf(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		c := p.World()
		r := c.Irecv(0, 3)
		if err := c.Send(0, 3, []byte("self")); err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		if string(r.Payload()) != "self" {
			return fmt.Errorf("payload %q", r.Payload())
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSendToFailedUnrecognizedFails(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			p.Die()
		}
		// Rank 0: wait until the failure notification lands, then send.
		for {
			info, err := c.RankState(1)
			if err != nil {
				return err
			}
			if info.State == RankFailed {
				break
			}
			time.Sleep(time.Millisecond)
		}
		err := c.Send(1, 0, []byte("x"))
		if !IsRankFailStop(err) {
			return fmt.Errorf("want ErrRankFailStop, got %v", err)
		}
		if FailedRankOf(err) != 1 {
			return fmt.Errorf("want failed rank 1, got %d", FailedRankOf(err))
		}
		return nil
	})
	if !res.Ranks[1].Killed {
		t.Fatalf("rank 1 should be killed: %+v", res.Ranks[1])
	}
	if res.Ranks[0].Err != nil {
		t.Fatalf("rank 0: %v", res.Ranks[0].Err)
	}
}

// TestPostedRecvFailsOnPeerDeath is the heart of the paper's Figure 9: an
// Irecv posted to a peer that never sends completes with an error when
// the peer dies, making MPI itself the failure detector.
func TestPostedRecvFailsOnPeerDeath(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			// Die only after rank 0 posted its receive, signalled via a message.
			if _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			p.Die()
		}
		det := c.Irecv(1, 9) // rank 1 will never send on tag 9
		if err := c.Send(1, 1, nil); err != nil {
			return err
		}
		_, err := det.Wait()
		if !IsRankFailStop(err) {
			return fmt.Errorf("detector should report fail-stop, got %v", err)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatalf("rank 0: %v", res.Ranks[0].Err)
	}
}

func TestAnySourceRecvFailsOnUnrecognizedFailure(t *testing.T) {
	res := runWorld(t, 3, func(p *Proc) error {
		c := p.World()
		switch p.Rank() {
		case 2:
			p.Die()
		case 0:
			for p.Registry().AliveCount() > 2 {
				time.Sleep(time.Millisecond)
			}
			_, _, err := c.Recv(AnySource, 0)
			if !IsRankFailStop(err) {
				return fmt.Errorf("any-source recv should fail, got %v", err)
			}
			// After recognizing, AnySource works again.
			if err := c.RecognizeLocal(2); err != nil {
				return err
			}
			pl, st, err := c.Recv(AnySource, 0)
			if err != nil {
				return err
			}
			if st.Source != 1 || string(pl) != "ok" {
				return fmt.Errorf("status %+v payload %q", st, pl)
			}
		case 1:
			return c.Send(0, 0, []byte("ok"))
		}
		return nil
	})
	if res.Ranks[0].Err != nil || res.Ranks[1].Err != nil {
		t.Fatalf("errors: %v / %v", res.Ranks[0].Err, res.Ranks[1].Err)
	}
}

func TestRecognizedRankHasProcNullSemantics(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			p.Die()
		}
		for p.Registry().AliveCount() > 1 {
			time.Sleep(time.Millisecond)
		}
		if err := c.RecognizeLocal(1); err != nil {
			return err
		}
		if err := c.Send(1, 0, []byte("into the void")); err != nil {
			return err
		}
		pl, st, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		if st.Source != ProcNull || pl != nil {
			return fmt.Errorf("recognized recv: %+v %v", st, pl)
		}
		info, err := c.RankState(1)
		if err != nil {
			return err
		}
		if info.State != RankNull {
			return fmt.Errorf("state %v", info.State)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatalf("rank 0: %v", res.Ranks[0].Err)
	}
}

// TestEagerDeliveryOutlivesSender verifies the Figure 8 precondition:
// messages sent before the sender's death remain deliverable.
func TestEagerDeliveryOutlivesSender(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			if err := c.Send(0, 0, []byte("last words")); err != nil {
				return err
			}
			p.Die()
		}
		for p.Registry().AliveCount() > 1 {
			time.Sleep(time.Millisecond)
		}
		// The sender is long dead, but its message must still match.
		pl, _, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		if string(pl) != "last words" {
			return fmt.Errorf("payload %q", pl)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatalf("rank 0: %v", res.Ranks[0].Err)
	}
}

func TestWaitanyPrefersCompletedAndConsumes(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			if err := c.Send(1, 1, []byte("one")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("two"))
		}
		r1 := c.Irecv(0, 1)
		r2 := c.Irecv(0, 2)
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			idx, _, err := Waitany(r1, r2)
			if err != nil {
				return err
			}
			if seen[idx] {
				return fmt.Errorf("Waitany returned index %d twice", idx)
			}
			seen[idx] = true
		}
		if _, _, err := Waitany(r1, r2); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("exhausted Waitany should error, got %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestCancelPendingRecv(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		c := p.World()
		r := c.Irecv(0, 42)
		r.Cancel()
		_, err := r.Wait()
		if !errors.Is(err, ErrCancelled) {
			return fmt.Errorf("want ErrCancelled, got %v", err)
		}
		r.Cancel() // idempotent
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSendrecvExchange(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		peer := 1 - p.Rank()
		pl, st, err := c.Sendrecv(peer, 0, []byte{byte(p.Rank())}, peer, 0)
		if err != nil {
			return err
		}
		if st.Source != peer || int(pl[0]) != peer {
			return fmt.Errorf("exchange wrong: %+v %v", st, pl)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestIprobe(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			return c.Send(1, 6, []byte("probe me"))
		}
		for {
			ok, st, err := c.Iprobe(0, 6)
			if err != nil {
				return err
			}
			if ok {
				if st.Len != 8 || st.Source != 0 {
					return fmt.Errorf("probe status %+v", st)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
		_, _, err := c.Recv(0, 6)
		return err
	})
	requireNoRankErrors(t, res)
}

func TestAbortUnwindsEveryone(t *testing.T) {
	w, err := NewWorld(3, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 0 {
			p.Abort(42)
		}
		_, _, err := c.Recv(0, 0) // blocks forever; must be unwound by the abort
		return err
	})
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Code != 42 {
		t.Fatalf("want AbortError(42), got %v", err)
	}
	if !res.Aborted || res.AbortCode != 42 {
		t.Fatalf("result %+v", res)
	}
	for rank := 1; rank < 3; rank++ {
		if !res.Ranks[rank].Aborted {
			t.Fatalf("rank %d not marked aborted: %+v", rank, res.Ranks[rank])
		}
	}
}

func TestDeadlineReportsStuckRanks(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 0 {
			_, _, err := c.Recv(1, 0) // never sent: deadlock
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("want ErrTimedOut, got %v", err)
	}
	if !res.TimedOut || len(res.Stuck) != 1 || res.Stuck[0] != 0 {
		t.Fatalf("stuck ranks %v (timedout=%v)", res.Stuck, res.TimedOut)
	}
}

func TestErrorsAreFatalAborts(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Run(func(p *Proc) error {
		c := p.World() // default handler: ErrorsAreFatal
		if p.Rank() == 1 {
			p.Die()
		}
		for p.Registry().AliveCount() > 1 {
			time.Sleep(time.Millisecond)
		}
		return c.Send(1, 0, nil) // must abort the world, not return
	})
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("fatal handler should abort, got %v", err)
	}
}

func TestHookKillAfterNthRecvIsDeterministic(t *testing.T) {
	var recvs int
	w, err := NewWorld(2,
		WithDeadline(30*time.Second),
		WithHook(func(ev HookEvent) Action {
			if ev.Rank == 1 && ev.Point == HookAfterRecv {
				recvs++
				if recvs == 3 {
					return ActKill
				}
			}
			return ActNone
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	res, _ := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				if err := c.Send(1, 0, []byte{byte(i)}); err != nil {
					return nil // peer died: expected
				}
				sent++
				// Ack keeps the two ranks in lockstep so the count is exact.
				if _, _, err := c.Recv(1, 1); err != nil {
					return nil
				}
			}
			return nil
		}
		for {
			if _, _, err := c.Recv(0, 0); err != nil {
				return err
			}
			if err := c.Send(0, 1, nil); err != nil {
				return err
			}
		}
	})
	if !res.Ranks[1].Killed {
		t.Fatalf("rank 1 should have been killed: %+v", res.Ranks[1])
	}
	if recvs != 3 {
		t.Fatalf("kill fired after %d receives, want exactly 3", recvs)
	}
}

func TestKillWakesBlockedRank(t *testing.T) {
	w, err := NewWorld(2, WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		w.Kill(0)
	}()
	res, _ := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 0 {
			_, _, err := c.Recv(1, 0) // blocked until killed externally
			return err
		}
		for p.Registry().AliveCount() > 1 {
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if !res.Ranks[0].Killed {
		t.Fatalf("rank 0 should be killed, got %+v", res.Ranks[0])
	}
	if res.Ranks[1].Err != nil {
		t.Fatalf("rank 1: %v", res.Ranks[1].Err)
	}
}
