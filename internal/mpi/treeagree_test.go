package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// runTreeWorld runs fn on an n-rank world with tree-mode agreement.
func runTreeWorld(t *testing.T, n int, fn func(p *Proc) error) *RunResult {
	t.Helper()
	w, err := NewWorld(n, WithAgreement(AgreementTree), WithDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *Proc) error {
		p.World().SetErrhandler(ErrorsReturn)
		return fn(p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TimedOut {
		t.Fatalf("tree agreement wedged; stuck ranks %v", res.Stuck)
	}
	return res
}

func TestTreeAgreementNoFailures(t *testing.T) {
	res := runTreeWorld(t, 8, func(p *Proc) error {
		cnt, err := p.World().ValidateAll()
		if err != nil {
			return err
		}
		if cnt != 0 {
			return fmt.Errorf("want 0 failures, got %d", cnt)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestTreeAgreementAgreesOnFailures(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	res := runTreeWorld(t, 9, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 3 || p.Rank() == 7 {
			p.Die()
		}
		for p.Registry().AliveCount() > 7 {
			time.Sleep(time.Millisecond)
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		return nil
	})
	for rank := 0; rank < 9; rank++ {
		if rank == 3 || rank == 7 {
			continue
		}
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 2 {
			t.Fatalf("rank %d agreed on %d failures, want 2 (all: %v)", rank, counts[rank], counts)
		}
	}
}

// TestTreeAgreementInteriorNodeDies kills rank 1 — an interior node of
// the 7-rank tree (children 3 and 4) — while the round runs. Its orphaned
// subtree must reparent and re-push so the survivors still converge.
func TestTreeAgreementInteriorNodeDies(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	res := runTreeWorld(t, 7, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			// Enter the collective so subtree votes land here first, then
			// die before forwarding them up.
			req := c.IvalidateAll()
			time.Sleep(10 * time.Millisecond)
			p.Die()
			_ = req
		}
		if p.Rank() == 6 {
			// Hold the round open past rank 1's death: the root cannot
			// decide before this leaf joins, so the death is mid-round.
			for p.Registry().AliveCount() > 6 {
				time.Sleep(time.Millisecond)
			}
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		return nil
	})
	if !res.Ranks[1].Killed {
		t.Fatal("rank 1 did not die")
	}
	for _, rank := range []int{0, 2, 3, 4, 5, 6} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failures, want 1 (all: %v)", rank, counts[rank], counts)
		}
	}
}

// TestTreeAgreementRootDies kills rank 0 — the tree root — mid-round;
// rank 1 must take over as the new root, pull whatever coverage it lacks,
// and the survivors must agree on a set that includes the dead root.
func TestTreeAgreementRootDies(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	res := runTreeWorld(t, 6, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			req := c.IvalidateAll()
			time.Sleep(10 * time.Millisecond)
			p.Die()
			_ = req
		}
		if p.Rank() == 5 {
			// Hold the round open until the root is dead, forcing the
			// succession path rather than a clean 0-failure decision.
			for p.Registry().AliveCount() > 5 {
				time.Sleep(time.Millisecond)
			}
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		return nil
	})
	if !res.Ranks[0].Killed {
		t.Fatal("rank 0 did not die")
	}
	for rank := 1; rank < 6; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failures, want 1 (all: %v)", rank, counts[rank], counts)
		}
	}
}

// TestTreeAgreementLateEntrantDies reproduces the pending-voter shape of
// TestValidateAllKillDuringAgreement under tree mode: rank 5 never calls
// ValidateAll and dies while everyone waits on its coverage.
func TestTreeAgreementLateEntrantDies(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	res := runTreeWorld(t, 6, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 5 {
			time.Sleep(50 * time.Millisecond)
			p.Die()
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		mu.Lock()
		counts[p.Rank()] = cnt
		mu.Unlock()
		return nil
	})
	for rank := 0; rank < 5; rank++ {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failures, want 1 (all: %v)", rank, counts[rank], counts)
		}
	}
}

func TestTreeAgreementSequentialInstances(t *testing.T) {
	res := runTreeWorld(t, 5, func(p *Proc) error {
		c := p.World()
		for i := 0; i < 5; i++ {
			cnt, err := c.ValidateAll()
			if err != nil {
				return err
			}
			if cnt != 0 {
				return fmt.Errorf("instance %d: count %d", i, cnt)
			}
		}
		if c.ValidateEpoch() != 5 {
			return fmt.Errorf("epoch %d", c.ValidateEpoch())
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

// TestTreeAgreementParityWithCoordinator runs the same failure pattern at
// N=32 under both topologies and requires identical agreed counts — the
// tree is an optimization, not a semantic change.
func TestTreeAgreementParityWithCoordinator(t *testing.T) {
	const n = 32
	failures := []int{3, 11, 17, 30} // leaf, interior, interior, leaf
	run := func(mode string) map[int]int {
		t.Helper()
		var mu sync.Mutex
		counts := map[int]int{}
		w, err := NewWorld(n, WithAgreement(mode), WithDeadline(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(func(p *Proc) error {
			c := p.World()
			c.SetErrhandler(ErrorsReturn)
			for _, f := range failures {
				if p.Rank() == f {
					p.Die()
				}
			}
			for p.Registry().AliveCount() > n-len(failures) {
				time.Sleep(time.Millisecond)
			}
			cnt, err := c.ValidateAll()
			if err != nil {
				return err
			}
			mu.Lock()
			counts[p.Rank()] = cnt
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("%s agreement wedged; stuck ranks %v", mode, res.Stuck)
		}
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if rr.Err != nil {
				t.Fatalf("%s: rank %d: %v", mode, rank, rr.Err)
			}
		}
		return counts
	}
	coord := run(AgreementCoordinator)
	tree := run(AgreementTree)
	for rank, want := range coord {
		if tree[rank] != want {
			t.Fatalf("rank %d: tree agreed %d, coordinator %d", rank, tree[rank], want)
		}
		if want != len(failures) {
			t.Fatalf("rank %d agreed on %d failures, want %d", rank, want, len(failures))
		}
	}
}

// TestTreeAgreementProperty is the tree-mode twin of the coordinator
// property test: arbitrary failure subsets, all survivors agree.
func TestTreeAgreementProperty(t *testing.T) {
	prop := func(seed uint32) bool {
		n := 3 + int(seed%6)                   // world sizes 3..8
		failMask := int(seed) % (1 << (n - 1)) // rank n-1 always survives
		var failures []int
		for r := 0; r < n-1; r++ {
			if failMask&(1<<r) != 0 {
				failures = append(failures, r)
			}
		}
		var mu sync.Mutex
		counts := map[int]int{}
		w, err := NewWorld(n, WithAgreement(AgreementTree), WithDeadline(30*time.Second))
		if err != nil {
			return false
		}
		res, err := w.Run(func(p *Proc) error {
			c := p.World()
			c.SetErrhandler(ErrorsReturn)
			for _, f := range failures {
				if p.Rank() == f {
					p.Die()
				}
			}
			cnt, err := c.ValidateAll()
			if err != nil {
				return err
			}
			mu.Lock()
			counts[p.Rank()] = cnt
			mu.Unlock()
			return nil
		})
		if err != nil || res.TimedOut {
			t.Logf("seed %d: run error %v (timed out %v)", seed, err, res != nil && res.TimedOut)
			return false
		}
		first := -1
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if rr.Err != nil {
				t.Logf("seed %d: rank %d error %v", seed, rank, rr.Err)
				return false
			}
			if counts[rank] < len(failures) {
				t.Logf("seed %d: rank %d count %d < %d", seed, rank, counts[rank], len(failures))
				return false
			}
			if first == -1 {
				first = counts[rank]
			} else if counts[rank] != first {
				t.Logf("seed %d: disagreement %v", seed, counts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
