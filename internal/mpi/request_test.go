package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestTestanyNonBlocking(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			// Wait for the go-ahead, then send.
			if _, _, err := c.Recv(1, 0); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("now"))
		}
		r := c.Irecv(0, 1)
		if ok, _, _, _ := Testany(r); ok {
			return fmt.Errorf("Testany claimed completion before any send")
		}
		if err := c.Send(0, 0, nil); err != nil {
			return err
		}
		for {
			ok, idx, st, err := Testany(r)
			if err != nil {
				return err
			}
			if ok {
				if idx != 0 || st.Tag != 1 {
					return fmt.Errorf("testany idx=%d st=%+v", idx, st)
				}
				break
			}
		}
		if ok, _, _, _ := Testany(r); ok {
			return fmt.Errorf("consumed request returned again")
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestWaitsomeReturnsBatch(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			for tag := 1; tag <= 3; tag++ {
				if err := c.Send(1, tag, []byte{byte(tag)}); err != nil {
					return err
				}
			}
			return nil
		}
		r1, r2, r3 := c.Irecv(0, 1), c.Irecv(0, 2), c.Irecv(0, 3)
		got := map[int]bool{}
		for len(got) < 3 {
			idxs, sts, errs, err := Waitsome(r1, r2, r3)
			if err != nil {
				return err
			}
			if len(idxs) == 0 {
				return fmt.Errorf("waitsome returned empty batch")
			}
			for k, idx := range idxs {
				if errs[k] != nil {
					return errs[k]
				}
				if got[idx] {
					return fmt.Errorf("index %d returned twice", idx)
				}
				got[idx] = true
				if sts[k].Tag != idx+1 {
					return fmt.Errorf("idx %d tag %d", idx, sts[k].Tag)
				}
			}
		}
		if _, _, _, err := Waitsome(r1, r2, r3); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("exhausted waitsome should error, got %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestWaitallCollectsFirstError(t *testing.T) {
	res := runWorld(t, 2, func(p *Proc) error {
		c := p.World()
		if p.Rank() == 1 {
			if _, _, err := c.Recv(0, 0); err != nil {
				return err
			}
			p.Die()
		}
		det := c.Irecv(1, 9) // fails when rank 1 dies
		ok := c.Irecv(1, 8)  // also fails
		if err := c.Send(1, 0, nil); err != nil {
			return err
		}
		sts, err := Waitall(det, ok, nil)
		if !IsRankFailStop(err) {
			return fmt.Errorf("waitall should surface the failure, got %v", err)
		}
		if len(sts) != 3 {
			return fmt.Errorf("statuses %v", sts)
		}
		return nil
	})
	if res.Ranks[0].Err != nil {
		t.Fatal(res.Ranks[0].Err)
	}
}

func TestIrecvInvalidRankCompletesWithError(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		r := p.World().Irecv(7, 0)
		if _, err := r.Wait(); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("want ErrInvalidRank, got %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestSendValidation(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		c := p.World()
		if err := c.Send(0, -5, nil); !errors.Is(err, ErrInvalidArg) {
			return fmt.Errorf("negative tag accepted: %v", err)
		}
		if err := c.Send(42, 0, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("bad rank accepted: %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestWorldRunTwiceRejected(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(p *Proc) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(p *Proc) error { return nil }); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("second Run should be rejected, got %v", err)
	}
}

// TestNewWorldValidation exercises size validation through the one
// remaining constructor (the positional NewWorldFromConfig is gone).
func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("zero-size world accepted: %v", err)
	}
	if _, err := NewWorld(-3); !errors.Is(err, ErrInvalidArg) {
		t.Fatalf("negative world accepted: %v", err)
	}
}

func TestCancelOrPayloadKeepsData(t *testing.T) {
	res := runWorld(t, 1, func(p *Proc) error {
		c := p.World()
		r := c.Irecv(0, 1)
		if err := c.Send(0, 1, []byte("rescued")); err != nil {
			return err
		}
		// The request has completed with data: CancelOrPayload must hand
		// the payload back instead of dropping it.
		pl, ok := r.CancelOrPayload()
		if !ok || string(pl) != "rescued" {
			return fmt.Errorf("payload lost: %q ok=%v", pl, ok)
		}
		// A pending request is cancelled instead.
		r2 := c.Irecv(0, 2)
		if pl, ok := r2.CancelOrPayload(); ok || pl != nil {
			return fmt.Errorf("pending request should cancel, got %q", pl)
		}
		if _, err := r2.Wait(); !errors.Is(err, ErrCancelled) {
			return fmt.Errorf("want ErrCancelled, got %v", err)
		}
		return nil
	})
	requireNoRankErrors(t, res)
}

func TestRankErrorFormatting(t *testing.T) {
	err := failStop(3)
	if !IsRankFailStop(err) || FailedRankOf(err) != 3 {
		t.Fatalf("failStop broken: %v", err)
	}
	if FailedRankOf(errors.New("other")) != -1 {
		t.Fatal("unrelated error should report -1")
	}
	var re *RankError
	if !errors.As(err, &re) || re.Error() == "" {
		t.Fatal("RankError unwrap broken")
	}
}
