package mpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// hbFast is the heartbeat tuning used across these tests: tight enough to
// detect within milliseconds, with a self-fence horizon far enough out
// that tests controlling the death themselves stay deterministic under
// -race scheduling noise.
func hbFast() detector.HeartbeatOptions {
	return detector.HeartbeatOptions{
		Interval:       2 * time.Millisecond,
		Timeout:        25 * time.Millisecond,
		SelfFenceAfter: 2 * time.Second,
	}
}

// awaitRankFailed polls RankState until the failure notification lands.
func awaitRankFailed(c *Comm, rank int) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.RankState(rank)
		if err != nil {
			return err
		}
		if info.State == RankFailed {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("rank %d failure never surfaced", rank)
}

// TestHeartbeatDetectsInjectedKill is the heartbeat-mode smoke test: no
// oracle shortcut — survivors learn of an injected kill only through
// missed heartbeats, fencing, and confirmation, and the detection latency
// lands in the suspicion_latency histogram.
func TestHeartbeatDetectsInjectedKill(t *testing.T) {
	const n = 3
	m := metrics.NewWorld(n)
	o := obs.NewRegistry(n)
	w, err := NewWorld(n, WithHeartbeat(hbFast()), WithMetrics(m),
		WithObservability(o), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			p.Die()
		}
		return awaitRankFailed(c, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 did not die")
	}
	for _, rank := range []int{0, 1} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
	if m.Total(metrics.Heartbeats) == 0 {
		t.Fatal("no heartbeats counted")
	}
	// No fence needs to go out here: the suspect is already ground-truth
	// dead when the fence loop first looks, so the resend loop confirms
	// directly (fences may legitimately stay 0).
	if m.Total(metrics.Suspicions) == 0 || m.Total(metrics.Confirms) == 0 {
		t.Fatalf("detection pipeline incomplete: suspicions=%d confirms=%d",
			m.Total(metrics.Suspicions), m.Total(metrics.Confirms))
	}
	if m.Total(metrics.FalseSuspicions) != 0 {
		t.Fatalf("%d false suspicions on a quiet fabric", m.Total(metrics.FalseSuspicions))
	}
	if o.Merged(obs.SuspicionLatency).Count == 0 {
		t.Fatal("suspicion latency never observed")
	}
	if o.Merged(obs.FenceRTT).Count == 0 {
		t.Fatal("fence RTT (suspicion-to-confirmation) never observed")
	}
}

// isolate cuts every link into and out of rank from frame 1 onward.
func isolate(plan *chaos.Plan, rank int) *chaos.Plan {
	return plan.Partition(rank, -1, 1, ^uint64(0)).Partition(-1, rank, 1, ^uint64(0))
}

// TestHeartbeatValidateAllSurvivesSuspectFenceGapDeath is the satellite
// regression: rank 2 enters validate_all fully partitioned, is suspected
// (a FALSE suspicion — it is alive), and then dies in the window between
// suspicion and fence-ack (the fence can never reach it). The fencers must
// converge via ground truth, the collective must complete, and no healthy
// rank may be reported failed.
func TestHeartbeatValidateAllSurvivesSuspectFenceGapDeath(t *testing.T) {
	const n = 4
	plan := isolate(chaos.NewPlan(42), 2)
	m := metrics.NewWorld(n)
	w, err := NewWorld(n, WithChaos(plan), WithHeartbeat(hbFast()),
		WithMetrics(m), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			// Enter the collective, outlive the suspicion deadline, then
			// die before any fence (or ack) can cross the partition.
			req := c.IvalidateAll()
			time.Sleep(60 * time.Millisecond)
			p.Die()
			_ = req
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		counts[p.Rank()] = cnt
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("validate_all wedged; stuck ranks %v", res.Stuck)
	}
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 did not die")
	}
	for _, rank := range []int{0, 1, 3} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failed, want 1 (rank 2): %v", rank, counts[rank], counts)
		}
	}
	// Exactly the partitioned rank died: nobody fenced a healthy survivor.
	if failed := w.registry.Snapshot(); len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed set %v, want [2]", failed)
	}
}

// TestHeartbeatFencesHealthyRankAcrossOneWayPartition: a one-way partition
// silences rank 2 toward rank 0 only. Rank 0's suspicion is false — rank 2
// is healthy — so the detector must fence (kill) rank 2 BEFORE reporting
// it failed, keeping the fail-stop contract intact.
func TestHeartbeatFencesHealthyRankAcrossOneWayPartition(t *testing.T) {
	const n = 3
	plan := chaos.NewPlan(11).Partition(2, 0, 1, ^uint64(0))
	m := metrics.NewWorld(n)
	w, err := NewWorld(n, WithChaos(plan), WithHeartbeat(hbFast()),
		WithMetrics(m), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			// Healthy by its own lights: loop until the fence kills us
			// (RankState's liveness check unwinds the goroutine).
			for {
				if _, err := c.RankState(0); err != nil {
					return err
				}
				time.Sleep(time.Millisecond)
			}
		}
		return awaitRankFailed(c, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 was reported failed without being fenced")
	}
	for _, rank := range []int{0, 1} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
	if failed := w.registry.Snapshot(); len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed set %v, want [2]", failed)
	}
	if m.Total(metrics.FalseSuspicions) == 0 {
		t.Fatal("suspecting a healthy rank must count as a false suspicion")
	}
	if m.Total(metrics.Fences) == 0 || m.Total(metrics.Confirms) == 0 {
		t.Fatalf("fence pipeline incomplete: fences=%d confirms=%d",
			m.Total(metrics.Fences), m.Total(metrics.Confirms))
	}
}

// TestHeartbeatSelfFenceOnTotalIsolation: rank 2 is partitioned in both
// directions, so no fence notice can ever reach it. Its own ack stream
// going stale must make it fence itself, after which the survivors confirm
// from ground truth.
func TestHeartbeatSelfFenceOnTotalIsolation(t *testing.T) {
	const n = 3
	plan := isolate(chaos.NewPlan(7), 2)
	hb := hbFast()
	hb.SelfFenceAfter = 120 * time.Millisecond
	m := metrics.NewWorld(n)
	w, err := NewWorld(n, WithChaos(plan), WithHeartbeat(hb),
		WithMetrics(m), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			for {
				if _, err := c.RankState(0); err != nil {
					return err
				}
				time.Sleep(time.Millisecond)
			}
		}
		return awaitRankFailed(c, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ranks[2].Killed {
		t.Fatal("isolated rank did not fail-stop")
	}
	for _, rank := range []int{0, 1} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
	if m.Total(metrics.SelfFences) != 1 {
		t.Fatalf("self-fences %d, want 1", m.Total(metrics.SelfFences))
	}
	if failed := w.registry.Snapshot(); len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed set %v, want [2]", failed)
	}
}

// TestDetectorModeValidation: unknown detector and agreement names must
// be rejected at construction.
func TestDetectorModeValidation(t *testing.T) {
	if _, err := NewWorld(2, WithDetector("telepathy")); err == nil {
		t.Fatal("bogus detector mode accepted")
	}
	for _, mode := range []string{"", DetectorOracle, DetectorHeartbeat, DetectorSwim} {
		if _, err := NewWorld(2, WithDetector(mode)); err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
	}
	if _, err := NewWorld(2, WithAgreement("gossip-only")); err == nil {
		t.Fatal("bogus agreement mode accepted")
	}
	for _, mode := range []string{"", AgreementCoordinator, AgreementTree} {
		if _, err := NewWorld(2, WithAgreement(mode)); err != nil {
			t.Fatalf("agreement mode %q rejected: %v", mode, err)
		}
	}
}
