package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// engine is the per-rank message-matching machinery: the posted-receive
// index, the unexpected-message index, and this rank's view of failure
// notifications. All mutable matching state is guarded by mu.
//
// Signaling is per-request, not per-engine: a completing request pokes
// only the waiters registered on it (Request.waiters), so a rank blocked
// in Wait is not woken by unrelated traffic. Three terminal events can
// unblock every waiter at once and use closed channels instead:
//
//   - downCh closes when the rank fail-stops or the world is torn down
//     (markDead/markClosed);
//   - World.abortCh closes on MPI_Abort;
//   - agreeCh is a generation channel for the agreement service: it is
//     closed and replaced on every agreement-relevant state change
//     (vote/decide arrival, failure notification), waking only the
//     rare waiters inside validate_all.
//
// The dead/closed flags are additionally mirrored in atomics so that
// checkAlive — called at the top of every user-facing operation — never
// touches the matching lock.
//
// Lock discipline: an engine's methods never call another engine or the
// fabric while holding mu. Cross-rank delivery locks exactly one engine at
// a time, so there is no lock-ordering cycle by construction.
type engine struct {
	w    *World
	rank int
	// gen is the incarnation this engine serves, immutable for the
	// engine's lifetime. A slot's first engine is generation 1; every
	// Spawn installs a brand-new engine at the next generation, so stale
	// frames addressed to (or stamped by) a dead incarnation are fenced
	// at deliver by a plain equality check — the matching layer never has
	// to reason about "the same rank, but earlier".
	gen uint32

	dead   atomic.Bool // this rank has fail-stopped
	closed atomic.Bool // world torn down (normal completion path)

	mu      sync.Mutex
	downCh  chan struct{} // closed once dead or closed
	downOne sync.Once
	agreeCh chan struct{} // generation channel for agreement waiters

	posted     postedIndex
	unexpected unexpectedIndex

	// knownFailed is this engine's failure-notification view: which world
	// ranks this rank has been told are dead. With zero notification delay
	// it tracks the registry exactly; with a delay it lags, modelling
	// detection latency. In replication mode it is indexed by LOGICAL
	// rank: individual replica deaths are absorbed by promotion and only a
	// logical rank's last death is recorded here.
	knownFailed []bool

	// repSeq/repNext are replication mode's logical-channel sequence
	// state: repSeq numbers outbound data messages per (logical dst, ctx,
	// tag) channel — identically on every sender replica, since replicas
	// execute identical programs — and repNext tracks the next acceptable
	// inbound number per (logical src, ctx, tag), which is what drops the
	// fan-out duplicates. Guarded by mu; nil maps outside replication mode.
	repSeq  map[repChan]uint32
	repNext map[repChan]uint32

	// chainPend is the chain-mode tail-ack outbox: every chain send this
	// engine originated that some live replica of the destination group
	// has not yet confirmed (KindChainAck). A primary death re-sends the
	// surviving entries to the promoted successor. Guarded by mu; nil
	// outside chain mode.
	chainPend map[chainKey]*chainPending

	// comms lists every communicator created by this incarnation's proc,
	// so a peer's revival can repair recognition and collective membership
	// on all of them. Guarded by mu.
	comms []*Comm

	// joinInst is the first world-communicator agreement instance this
	// incarnation participates in (0 for generation 1). Vote requests for
	// earlier instances are answered reactively instead of parked — the
	// reincarnation will never reach those validate_all calls. Guarded by mu.
	joinInst int

	agree agreementState

	// stateProvider serializes this rank's application state on demand
	// (elastic-world neighbor recovery); stateWaiters holds the pending
	// FetchState calls keyed by request id. Guarded by mu.
	stateProvider func() []byte
	stateWaiters  map[uint64]*stateWaiter
	stateSeq      uint64
}

// repChan keys the replication sequence maps: one logical data channel.
type repChan struct {
	peer int // logical peer (dst on send, src on receive)
	ctx  int
	tag  int
}

func newEngine(w *World, rank int, gen uint32) *engine {
	nf := w.size
	if w.repl != nil {
		nf = w.lsize // failure view speaks logical ids in replication mode
	}
	e := &engine{
		w:            w,
		rank:         rank,
		gen:          gen,
		downCh:       make(chan struct{}),
		agreeCh:      make(chan struct{}),
		posted:       newPostedIndex(),
		unexpected:   newUnexpectedIndex(),
		knownFailed:  make([]bool, nf),
		stateWaiters: make(map[uint64]*stateWaiter),
	}
	if w.repl != nil {
		e.repSeq = make(map[repChan]uint32)
		e.repNext = make(map[repChan]uint32)
		if w.repl.mode == ReplChain {
			e.chainPend = make(map[chainKey]*chainPending)
		}
	}
	e.agree.init()
	return e
}

// arank returns this engine's application-visible rank: the logical rank
// in replication mode, the physical rank otherwise. Protocol messages
// that carry a rank identity in their body (agreement votes, state
// targets) speak arank; the wire's Src/Dst stay physical.
func (e *engine) arank() int { return e.w.logicalOf(e.rank) }

// nextRepSeq assigns the replication sequence number for the next
// outbound data message on the (logical dst, ctx, tag) channel, starting
// at 1 (0 on the wire means "unstamped").
func (e *engine) nextRepSeq(dst, ctx, tag int) uint32 {
	k := repChan{peer: dst, ctx: ctx, tag: tag}
	e.mu.Lock()
	e.repSeq[k]++
	s := e.repSeq[k]
	e.mu.Unlock()
	return s
}

// --- liveness -------------------------------------------------------------

// checkAlive panics with the fail-stop sentinel if this rank was killed.
// Every user-facing operation calls it first, so a killed rank unwinds at
// its next MPI call. The flags are atomics, so this check never contends
// with the matching lock.
func (e *engine) checkAlive() {
	if e.dead.Load() {
		panic(killedPanic{rank: e.rank})
	}
	if e.w.aborted.Load() {
		panic(abortPanic{code: e.w.abortCode()})
	}
}

// die fail-stops this rank from its own goroutine: registers the death
// with the perfect failure detector (which notifies every other engine)
// and unwinds the goroutine. It does not return.
func (e *engine) die() {
	e.w.registry.Kill(e.rank) // subscriber marks us dead and notifies peers
	panic(killedPanic{rank: e.rank})
}

// markDead flips the engine's dead flag and wakes all waiters. Called by
// the registry subscriber (for both self-kills and external kills).
func (e *engine) markDead() {
	e.mu.Lock()
	e.dead.Store(true)
	e.mu.Unlock()
	e.downOne.Do(func() { close(e.downCh) })
}

// markClosed wakes any lingering internal waiters at world teardown.
func (e *engine) markClosed() {
	e.mu.Lock()
	e.closed.Store(true)
	e.mu.Unlock()
	e.downOne.Do(func() { close(e.downCh) })
}

// agreeBumpLocked wakes agreement waiters by rolling the generation
// channel. Caller holds mu.
func (e *engine) agreeBumpLocked() {
	close(e.agreeCh)
	e.agreeCh = make(chan struct{})
}

// --- failure notification --------------------------------------------------

// onPeerFailure records that world rank f has failed and fails the posted
// receives that can no longer complete: receives posted directly to f, and
// AnySource receives on communicators where f is an unrecognized member
// (paper Section II).
func (e *engine) onPeerFailure(f int) {
	e.mu.Lock()
	if e.knownFailed[f] {
		e.mu.Unlock()
		return
	}
	// A delayed notification can outlive the incarnation it reports: with
	// elastic respawn the slot may already be alive again at a higher
	// generation, and marking it failed now would never be repaired
	// (onPeerRevive already ran). Checked under e.mu so a concurrent
	// revive cannot interleave between the check and the write. The sweep
	// below still runs even then: requests and state fetches aimed at the
	// dead incarnation were generation-fenced, so nothing will ever
	// complete them — a FetchState that raced the respawn would otherwise
	// block forever — and the app's recovery path re-issues them against
	// the reincarnation.
	revived := !e.w.appFailed(f)
	if !revived {
		e.knownFailed[f] = true
	}
	// doomed classifies a posted receive that can no longer complete and
	// picks the Status.Source the old linear sweep reported for it.
	doomed := func(r *Request) (int, bool) {
		switch {
		case r.srcWorld == f && !r.comm.recognizedLocked(f):
			return r.comm.rankOf(f), true
		case r.srcWorld == AnySource && r.comm.memberUnrecognizedLocked(f):
			return AnySource, true
		case r.ctx == r.comm.ctxInternal && r.comm.collMemberLocked(f):
			// Section II: once any rank fails, ALL collective operations
			// on the communicator return an error until it is repaired —
			// including collectives already in flight. Without this, a
			// rank blocked mid-collective on an ALIVE peer that errored
			// at the entry gate would wait forever.
			return r.comm.rankOf(f), true
		}
		return 0, false
	}
	victims := e.posted.collect(func(r *Request) bool {
		_, bad := doomed(r)
		return bad
	})
	for _, r := range victims {
		src, _ := doomed(r)
		r.completeLocked(failStop(f), Status{Source: src, Tag: r.tag}, nil)
	}
	// State fetches directed at the dead rank can never be answered.
	for id, sw := range e.stateWaiters {
		if sw.target == f {
			delete(e.stateWaiters, id)
			sw.ch <- stateReply{err: failStop(f)} // buffered, never blocks
		}
	}
	if !revived {
		e.agreeBumpLocked() // agreement waiters watch knownFailed, unchanged above
	}
	e.mu.Unlock()
}

// onPeerRevive repairs this engine's view after world rank p rejoined at a
// new generation: the failure notification is withdrawn, recognition of
// the old incarnation is cleared (sends to the new one must flow again),
// and p is re-admitted to collective membership on every communicator that
// contains it. Survivors re-admit deterministically in communicator-rank
// order, and they all start from the same agreed collective membership, so
// the repaired memberships match without another agreement round.
func (e *engine) onPeerRevive(p int) {
	e.mu.Lock()
	if p >= 0 && p < len(e.knownFailed) {
		e.knownFailed[p] = false
	}
	for _, c := range e.comms {
		if c.rankOf(p) < 0 {
			continue
		}
		delete(c.recognized, p)
		keep := make(map[int]bool, len(c.collMembers)+1)
		for _, wr := range c.collMembers {
			keep[wr] = true
		}
		keep[p] = true
		members := make([]int, 0, len(keep))
		for _, wr := range c.group {
			if keep[wr] {
				members = append(members, wr)
			}
		}
		c.collMembers = members
	}
	e.agreeBumpLocked()
	e.mu.Unlock()
}

// knownFailedSnapshot returns the world ranks this engine has been
// notified about, restricted to the given group (nil = all).
func (e *engine) knownFailedSnapshot(group []int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.knownFailedSnapshotLocked(group)
}

func (e *engine) knownFailedSnapshotLocked(group []int) []int {
	var out []int
	if group == nil {
		for r, f := range e.knownFailed {
			if f {
				out = append(out, r)
			}
		}
		return out
	}
	for _, r := range group {
		if r >= 0 && r < len(e.knownFailed) && e.knownFailed[r] {
			out = append(out, r)
		}
	}
	return out
}

// --- delivery and matching --------------------------------------------------

// staleGen reports whether the packet was stamped for (or by) a different
// incarnation than the ones currently installed. Generation 0 means
// "unstamped" (frames from fabrics or tests that predate elastic worlds)
// and is always accepted.
func (e *engine) staleGen(pkt *transport.Packet) (bool, string) {
	if pkt.DstGen != 0 && pkt.DstGen != e.gen {
		return true, fmt.Sprintf("dstgen=%d have=%d", pkt.DstGen, e.gen)
	}
	if pkt.SrcGen != 0 && pkt.Src >= 0 && pkt.Src < e.w.size {
		if g := e.w.genOf(pkt.Src); pkt.SrcGen != g {
			return true, fmt.Sprintf("srcgen=%d current=%d", pkt.SrcGen, g)
		}
	}
	return false, ""
}

// deliver accepts an inbound packet. It runs on the sender's goroutine
// (Local fabric) or a fabric reader goroutine (TCP), never on this rank's
// own goroutine while it holds mu.
func (e *engine) deliver(pkt *transport.Packet) {
	// Generation fence: frames addressed to a dead incarnation of this
	// slot, or stamped by a dead incarnation of the sender, are rejected
	// before any routing — including control traffic, so a stale fence ack
	// from an old incarnation can never confirm the live new one.
	if stale, why := e.staleGen(pkt); stale {
		e.w.metrics.Inc(e.rank, metrics.StaleGenRejected)
		e.w.tracer.RecordMsg(e.rank, trace.StaleGenDrop, pkt.Src, pkt.Tag, -1, int(e.gen), pkt.Token, 0, why)
		// A gate-deferred hop ack for this frame must still be released:
		// the drop is deliberate and accounted, and leaving the sender's
		// ARQ retrying a fenced frame would escalate an innocent link.
		e.w.releaseChainAck(e.rank, pkt)
		return
	}
	if pkt.Kind == transport.KindControl {
		// Failure-detection control traffic goes to the rank's detector
		// monitor, not the matching engine — and deliberately without a
		// dead-rank guard: the monitor is the "NIC", which keeps answering
		// fence notices after the process died so a fencer across a
		// half-open link can still learn of the death.
		if hb := e.w.hbAt(e.rank); hb != nil {
			hb.OnControl(pkt.Src, detector.ControlOp(pkt.Tag), pkt.Seq)
		} else if sw := e.w.swAt(e.rank); sw != nil {
			sw.OnControl(pkt.Src, detector.ControlOp(pkt.Tag), pkt.Seq, pkt.Payload)
		}
		return
	}
	if pkt.Kind == transport.KindAgreement {
		e.deliverAgreement(pkt)
		return
	}
	if pkt.Kind == transport.KindState {
		e.deliverState(pkt)
		return
	}
	if pkt.Kind == transport.KindChainAck {
		e.onChainAck(pkt)
		return
	}
	if e.w.repl != nil && e.w.repl.mode == ReplChain &&
		pkt.Kind == transport.KindData && pkt.RepSeq != 0 && !e.dead.Load() {
		if e.w.repl.isPrimary(e.rank) {
			// Chain mode: the group's primary relays the frame to its standbys
			// before consuming its own copy. Forwards from a freshly promoted
			// primary can duplicate the old primary's — RepSeq dedup absorbs it.
			e.chainForward(pkt)
		}
		if !e.dead.Load() {
			// Tail-ack protocol: every replica — primary or forwarded-to
			// standby — confirms its own receipt to the origin sender, even
			// for a copy the RepSeq dedup below will drop (the re-send may
			// exist precisely because the previous confirmation was lost).
			// Only then is the hop's gate-deferred ARQ ack released: the
			// frame has been forwarded, so the ack no longer understates
			// chain durability. A death inside chainForward skips both —
			// the sender's outbox and ARQ keep racing the corpse honestly.
			e.sendChainAck(pkt)
			e.w.releaseChainAck(e.rank, pkt)
		}
	}
	e.mu.Lock()
	if e.dead.Load() || e.closed.Load() {
		e.mu.Unlock()
		if pkt.Token != 0 {
			// Accounted loss: mail to a dead letterbox. Without this the
			// conservation audit would flag every frame that raced a death.
			e.w.tracer.RecordMsg(e.rank, trace.DeadDrop, pkt.Src, pkt.Tag, -1, int(e.gen), pkt.Token, 0, "")
		}
		return // packets to a dead rank vanish
	}
	if e.w.repl != nil {
		lsrc := e.w.logicalOf(pkt.Src)
		if pkt.RepSeq != 0 {
			k := repChan{peer: lsrc, ctx: pkt.Context, tag: pkt.Tag}
			if pkt.RepSeq < e.repNext[k] {
				e.mu.Unlock()
				e.w.metrics.Inc(e.rank, metrics.ReplicaDedupDrops)
				e.w.tracer.RecordMsg(e.rank, trace.ReplicaDedup, pkt.Src, pkt.Tag, -1, int(e.gen), pkt.Token, 0, "")
				return // fan-out duplicate: an earlier replica's copy won
			}
			e.repNext[k] = pkt.RepSeq + 1
		}
		// Matching (and everything above it: posted sources, statuses, the
		// unexpected index) speaks logical ranks. Rewrite Src on a shallow
		// clone — the reliability layer retains the original packet for
		// retransmission bookkeeping and must not see it mutated.
		q := *pkt
		q.Src = lsrc
		pkt = &q
	}
	if r := e.posted.match(pkt.Context, pkt.Src, pkt.Tag); r != nil {
		e.completeRecvLocked(r, pkt)
	} else {
		e.unexpected.add(pkt)
	}
	e.mu.Unlock()
	if pkt.Token != 0 {
		// The message reached this incarnation's matching layer: merge the
		// sender's HLC stamp (deliver orders causally after send) and close
		// the conservation-audit span. Recorded outside mu so the tracer's
		// sink never runs under the matching lock.
		hlc := e.w.clockOf(e.rank).Observe(pkt.HLC)
		e.w.tracer.RecordMsg(e.rank, trace.Delivered, pkt.Src, pkt.Tag, -1, int(e.gen), pkt.Token, hlc, "")
		if pkt.HLC != 0 && e.w.obs != nil {
			e2e := time.Duration(trace.HLCPhysical(hlc)-trace.HLCPhysical(pkt.HLC)) * time.Microsecond
			if e2e >= 0 {
				e.w.obs.Observe(e.rank, obs.MessageE2ELatency, e2e)
			}
		}
	}
}

// completeRecvLocked finishes a receive with the packet's payload.
func (e *engine) completeRecvLocked(r *Request, pkt *transport.Packet) {
	st := Status{Source: r.comm.rankOf(pkt.Src), Tag: pkt.Tag, Len: len(pkt.Payload)}
	r.completeLocked(nil, st, pkt.Payload)
	e.w.metrics.Inc(e.rank, metrics.Recvs)
	e.w.metrics.Add(e.rank, metrics.BytesRecv, int64(len(pkt.Payload)))
}

// postRecv installs a receive request: satisfy it from the unexpected
// queue if possible; otherwise fail it immediately when the source can
// never produce a message (failed unrecognized source, or AnySource with
// an unrecognized failure in the communicator); otherwise queue it.
func (e *engine) postRecv(r *Request) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead.Load() {
		panic(killedPanic{rank: e.rank}) // deferred unlock still runs
	}
	// An AnySource receive fails while ANY unrecognized failure exists in
	// the communicator, even if a matching message is already queued: the
	// application cannot know whether the message it would get is the one
	// the dead rank should have sent (paper Section II).
	if r.srcWorld == AnySource {
		if f, ok := r.comm.anyUnrecognizedLocked(); ok {
			r.completeLocked(failStop(f), Status{Source: AnySource, Tag: r.tag}, nil)
			return
		}
	}
	if pkt := e.unexpected.take(r.srcWorld, r.tag, r.ctx); pkt != nil {
		e.completeRecvLocked(r, pkt)
		return
	}
	// A directed receive from a known-failed, unrecognized rank can never
	// be satisfied once the queue holds no matching message: fail it now.
	if r.srcWorld >= 0 && e.knownFailed[r.srcWorld] && !r.comm.recognizedLocked(r.srcWorld) {
		r.completeLocked(failStop(r.srcWorld), Status{Source: r.comm.rankOf(r.srcWorld), Tag: r.tag}, nil)
		return
	}
	// Collective-context receives are disabled while any collective
	// participant is known failed (the Section II gate, applied to
	// receives posted after the notification raced past the entry check).
	if r.ctx == r.comm.ctxInternal {
		if f, ok := r.comm.anyCollMemberFailedLocked(); ok {
			r.completeLocked(failStop(f), Status{Source: r.comm.rankOf(f), Tag: r.tag}, nil)
			return
		}
	}
	e.posted.add(r)
}

// removePostedLocked removes a request from the posted index if present.
func (e *engine) removePostedLocked(r *Request) {
	e.posted.remove(r)
}

// stampGen stamps the packet with the sender's incarnation and the
// incarnation the sender currently believes the destination to be, arming
// the receiver-side generation fence.
func (e *engine) stampGen(pkt *transport.Packet) {
	pkt.SrcGen = e.gen
	if pkt.Dst >= 0 && pkt.Dst < e.w.size {
		pkt.DstGen = e.w.genOf(pkt.Dst)
	}
}

// sendPacket hands a fully addressed packet to the fabric, tracing and
// counting it. Must be called with no engine lock held.
//
// This is where a data message acquires its causal identity: a token
// (origin rank + per-origin sequence, owned by the World so reincarnations
// never reuse a predecessor's tokens) and the sender's HLC stamp. Both
// ride the v5 frame header, so every later event — retransmit, chaos
// fault, fan-out copy, delivery — carries the same identity. Replication
// pre-assigns one token for a whole fan-out (Token != 0 is preserved).
func (e *engine) sendPacket(pkt *transport.Packet) error {
	e.stampGen(pkt)
	if pkt.Kind == transport.KindData && pkt.Token == 0 {
		pkt.Token = transport.MakeToken(e.rank, e.w.nextTokenSeq(e.rank))
	}
	pkt.HLC = e.w.clockOf(e.rank).Now()
	e.w.metrics.Inc(e.rank, metrics.Sends)
	e.w.metrics.Add(e.rank, metrics.BytesSent, int64(len(pkt.Payload)))
	e.w.tracer.RecordMsg(e.rank, trace.SendPosted, pkt.Dst, pkt.Tag, -1, int(e.gen), pkt.Token, pkt.HLC, "")
	if e.w.obs == nil {
		return e.w.fabric.Send(pkt)
	}
	start := time.Now()
	err := e.w.fabric.Send(pkt)
	e.w.obs.Observe(e.rank, obs.SendComplete, time.Since(start))
	return err
}
