package mpi

import (
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/transport"
)

// This file implements the fault-tolerant consensus behind
// MPI_Comm_validate_all. The paper (Section II) states that validate_all
// "provides the application with an implementation of a fault tolerant
// consensus algorithm [9]": all alive members of the communicator agree
// on the set (and therefore count) of failed ranks, and the operation
// returns success everywhere or an error at each alive rank.
//
// Protocol. Instances are numbered per communicator (MPI's collective
// ordering rule keeps the numbering aligned across ranks). Within an
// instance:
//
//   - The coordinator is the lowest alive member (the same choice as the
//     paper's Figure 12 leader election).
//   - The coordinator requests a VOTE from every alive member, unions the
//     reported failure sets (plus any deaths it observes while
//     collecting), records the decision, and sends DECIDE to all alive
//     members.
//   - Non-coordinators respond to vote requests reactively — the response
//     logic runs at packet-delivery time inside the engine, so a rank
//     blocked in unrelated point-to-point code still answers, the way a
//     real MPI implementation's progress engine would.
//   - If a non-coordinator observes the coordinator's death before a
//     decision arrives, it re-evaluates: by strong accuracy of the
//     failure detector, a new coordinator arises only after the previous
//     one really died, so coordinator succession is sequential.
//
// Uniqueness: a new coordinator collects votes from every alive member;
// any member that saw a previous DECIDE reports it, and the new
// coordinator adopts it verbatim. If no alive member saw the previous
// DECIDE then no alive member returned it, so deciding fresh is safe.
// Hence all alive ranks return the same failure set per instance.
const (
	agreeReq uint8 = iota
	agreeVote
	agreeDecide
)

// agreeMsg is the gob-encoded payload of KindAgreement packets.
type agreeMsg struct {
	Type    uint8
	Inst    int   // per-communicator instance number
	From    int   // sender's world rank
	Failed  []int // vote payload or decision (world ranks)
	Decided bool  // Failed carries an already-made decision
	Group   []int // REQ/PULL only: the communicator group (world ranks)
	Covered []int // tree mode: ranks whose votes this aggregate includes
}

type agreeKey struct {
	ctx  int // communicator internal context (names the communicator)
	inst int
}

// agreementState is the per-engine slice of the protocol, guarded by the
// engine mutex.
type agreementState struct {
	decisions map[agreeKey][]int
	votes     map[agreeKey]map[int]agreeMsg // votes received while coordinating
	// started marks instances this rank has entered (called validate_all
	// for). Vote requests arriving earlier are parked in pendingReqs and
	// answered at entry: validate_all is a collective, so a rank must not
	// vote in an instance it has not reached — otherwise the coordinator
	// could decide "no failures" using votes from ranks that die before
	// ever making the call.
	started     map[agreeKey]bool
	pendingReqs map[agreeKey][]agreeMsg
	// reactive marks pre-join instances this engine is already serving as
	// a reactive coordinator (elastic worlds: coordinator succession can
	// land on a revived slot for an instance its previous incarnation was
	// part of — see reactiveCoordinate).
	reactive map[agreeKey]bool
}

func (a *agreementState) init() {
	a.decisions = make(map[agreeKey][]int)
	a.votes = make(map[agreeKey]map[int]agreeMsg)
	a.started = make(map[agreeKey]bool)
	a.pendingReqs = make(map[agreeKey][]agreeMsg)
	a.reactive = make(map[agreeKey]bool)
}

// preJoin reports that the instance predates this incarnation's join into
// an elastic world: the reincarnation will never reach that validate_all
// call in program order, so it must answer for it reactively. Caller
// holds mu.
func (e *engine) preJoinLocked(key agreeKey) bool {
	return e.joinInst > 0 && key.ctx == ctxWorldInternal && key.inst < e.joinInst
}

// deliverAgreement handles an inbound agreement packet reactively. Runs
// on the delivering goroutine; never blocks; sends replies only after
// releasing the engine lock (lock discipline: one engine lock at a time).
func (e *engine) deliverAgreement(pkt *transport.Packet) {
	var msg agreeMsg
	if err := decodeGob(pkt.Payload, &msg); err != nil {
		return // corrupt internal message: drop
	}
	key := agreeKey{ctx: pkt.Context, inst: msg.Inst}

	var reply *agreeMsg
	var coordGroup []int // non-nil: serve the instance as reactive coordinator
	e.mu.Lock()
	if e.dead.Load() || e.closed.Load() {
		e.mu.Unlock()
		return
	}
	switch msg.Type {
	case agreeReq:
		_, haveDecision := e.agree.decisions[key]
		switch {
		case haveDecision:
			reply = &agreeMsg{Type: agreeVote, Inst: msg.Inst, From: e.arank(),
				Failed: e.agree.decisions[key], Decided: true}
		case e.agree.started[key] || e.preJoinLocked(key):
			// Entered in program order, or a pre-join instance of an
			// elastic reincarnation: either way, vote with the current
			// failure view (the newcomer will never reach pre-join
			// validate_all calls, so parking would starve the coordinator).
			reply = &agreeMsg{Type: agreeVote, Inst: msg.Inst, From: e.arank(),
				Failed: e.knownFailedSnapshotLocked(msg.Group)}
		default:
			// Not in the collective yet: park the request; enterInstance
			// answers it when this rank reaches its validate_all call.
			e.agree.pendingReqs[key] = append(e.agree.pendingReqs[key], msg)
		}
	case agreeVote, agreeTreeVote:
		m, ok := e.agree.votes[key]
		if !ok {
			m = make(map[int]agreeMsg)
			e.agree.votes[key] = m
		}
		m[msg.From] = msg
		if d, ok := e.agree.decisions[key]; ok {
			// Reactive decide rule: a vote arriving at a rank that already
			// holds the decision (this rank may have returned from
			// validate_all long ago, or learned it before a DECIDE that
			// was broadcast while the sender had not yet entered) is
			// answered immediately.
			typ := agreeDecide
			if msg.Type == agreeTreeVote {
				typ = agreeTreeDecide
			}
			reply = &agreeMsg{Type: typ, Inst: msg.Inst,
				From: e.arank(), Failed: d, Decided: true}
		} else if e.preJoinLocked(key) && msg.Group != nil && !e.agree.reactive[key] {
			// Elastic corner: coordinator succession landed on this revived
			// slot for an instance that predates its join — every other
			// member is waiting passively and pushed its vote here. The
			// incarnation will never reach that validate_all call, so it
			// coordinates reactively.
			e.agree.reactive[key] = true
			coordGroup = append([]int(nil), msg.Group...)
		}
		e.agreeBumpLocked()
	case agreeDecide, agreeTreeDecide:
		if _, ok := e.agree.decisions[key]; !ok {
			if msg.Failed == nil {
				msg.Failed = []int{} // gob flattens empty slices to nil
			}
			e.agree.decisions[key] = msg.Failed
		}
		e.agreeBumpLocked()
	case agreeTreePull:
		if d, ok := e.agree.decisions[key]; ok {
			reply = &agreeMsg{Type: agreeTreeDecide, Inst: msg.Inst,
				From: e.arank(), Failed: d, Decided: true}
		} else if e.agree.started[key] || e.preJoinLocked(key) {
			reply = e.treeAggregateVoteLocked(key, msg.Group)
		} else {
			// Not in the collective yet: park; answered at enterInstance.
			e.agree.pendingReqs[key] = append(e.agree.pendingReqs[key], msg)
		}
	}
	e.mu.Unlock()

	if reply != nil {
		// Reply to the sender's LOGICAL rank: in replication mode the reply
		// fans out to every replica of it, so a coordinator replica that
		// dies before reading the reply leaves its successor holding it.
		e.sendAgreement(e.w.logicalOf(pkt.Src), pkt.Context, reply)
	}
	if coordGroup != nil {
		go e.reactiveCoordinate(key, coordGroup)
	}
}

// reactiveCoordinate runs the coordinator role for an instance this
// incarnation never entered in program order (see deliverAgreement). It
// runs on its own goroutine; terminal panics are absorbed because no app
// goroutine is waiting on it.
func (e *engine) reactiveCoordinate(key agreeKey, group []int) {
	defer func() {
		r := recover()
		switch r.(type) {
		case nil, killedPanic, closedPanic, abortPanic:
		default:
			panic(r)
		}
	}()
	_, _ = e.coordinateInstance(key, group)
}

// sendAgreement transmits an agreement message to a LOGICAL destination
// rank. Errors are ignored: a message to a dead rank simply vanishes, and
// the protocol's liveness rests on the failure detector, not on delivery
// acknowledgements. In replication mode the message fans out to every
// live replica of the destination (skipping the sender's own slot), so
// vote and decision state accumulates on standbys and survives their
// promotion.
func (e *engine) sendAgreement(dstWorld, ctx int, msg *agreeMsg) {
	payload, err := encodeGob(msg)
	if err != nil {
		return
	}
	e.w.metrics.Inc(e.rank, metrics.AgreementMsgs)
	if e.w.repl != nil {
		for _, phys := range e.w.repl.livePhys(dstWorld) {
			if phys == e.rank {
				continue
			}
			// Per-copy payload: retaining fabrics keep the slice, and the
			// chaos layer may mutate one copy in flight.
			pl := append([]byte(nil), payload...)
			pkt := &transport.Packet{
				Src: e.rank, Dst: phys, Tag: 0, Context: ctx,
				Kind: transport.KindAgreement, Payload: pl,
			}
			e.stampGen(pkt)
			_ = e.w.fabric.Send(pkt)
		}
		return
	}
	pkt := &transport.Packet{
		Src: e.rank, Dst: dstWorld, Tag: 0, Context: ctx,
		Kind: transport.KindAgreement, Payload: payload,
	}
	e.stampGen(pkt)
	_ = e.w.fabric.Send(pkt)
}

// setJoinInst installs the join fence on a freshly spawned incarnation's
// engine and retroactively applies it: vote requests for pre-join
// instances that were parked before the fence existed are answered now,
// and votes that were already pushed here (coordinator succession onto
// this slot) trigger reactive coordination.
func (e *engine) setJoinInst(inst int) {
	type pendingReply struct {
		dst int
		ctx int
		msg agreeMsg
	}
	var replies []pendingReply
	var coordKeys []agreeKey
	var coordGroups [][]int
	e.mu.Lock()
	e.joinInst = inst
	for key, reqs := range e.agree.pendingReqs {
		if !e.preJoinLocked(key) {
			continue
		}
		delete(e.agree.pendingReqs, key)
		for _, req := range reqs {
			var vote agreeMsg
			if req.Type == agreeTreePull {
				vote = *e.treeAggregateVoteLocked(key, req.Group)
			} else {
				vote = agreeMsg{Type: agreeVote, Inst: key.inst, From: e.arank(),
					Failed: e.knownFailedSnapshotLocked(req.Group)}
			}
			replies = append(replies, pendingReply{dst: req.From, ctx: key.ctx, msg: vote})
		}
	}
	for key, votes := range e.agree.votes {
		if !e.preJoinLocked(key) || e.agree.reactive[key] {
			continue
		}
		if _, ok := e.agree.decisions[key]; ok {
			continue
		}
		for _, v := range votes {
			if v.Group != nil {
				e.agree.reactive[key] = true
				coordKeys = append(coordKeys, key)
				coordGroups = append(coordGroups, append([]int(nil), v.Group...))
				break
			}
		}
	}
	e.mu.Unlock()
	for i := range replies {
		e.sendAgreement(replies[i].dst, replies[i].ctx, &replies[i].msg)
	}
	for i := range coordKeys {
		go e.reactiveCoordinate(coordKeys[i], coordGroups[i])
	}
}

// validateAllDriver runs one agreement instance for comm c and returns
// the agreed set of failed world ranks within c's group. It blocks the
// calling goroutine; IvalidateAll wraps it in a request-completing
// goroutine.
func (c *Comm) validateAllDriver(inst int) ([]int, error) {
	e := c.eng
	if e.w.obs != nil {
		start := time.Now()
		defer func() { e.w.obs.Observe(e.rank, obs.ValidateAll, time.Since(start)) }()
	}
	key := agreeKey{ctx: c.ctxInternal, inst: inst}
	e.enterInstance(key, c)

	if e.w.agreement == AgreementTree {
		return c.treeAgreementDriver(key)
	}

	lastPushed := -1
	for {
		e.mu.Lock()
		if d, ok := e.agree.decisions[key]; ok {
			e.mu.Unlock()
			return d, nil
		}
		if e.dead.Load() {
			e.mu.Unlock()
			panic(killedPanic{rank: e.rank})
		}
		if e.closed.Load() {
			e.mu.Unlock()
			return nil, ErrNoDecision
		}
		e.mu.Unlock()

		coord, ok := e.w.lowestAliveIn(c.group)
		if !ok {
			return nil, ErrNoDecision // unreachable while the caller lives
		}
		if coord == c.proc.rank {
			// Replication mode: only the group's PRIMARY replica coordinates;
			// standbys park in the passive loop below (their votes fan out to
			// the primary, and a promotion wakes them to take over). Two
			// replicas coordinating the same instance would be a split brain.
			if e.w.repl == nil || e.w.repl.isPrimary(e.rank) {
				return c.coordinateAgreement(key)
			}
		} else if coord != lastPushed {
			// Push the vote to (each successive) coordinator instead of waiting
			// to be solicited. A coordinator that solicited before this rank
			// entered still folds the pushed vote in; and in an elastic world a
			// coordinator seat can pass to a revived slot that will never
			// solicit for this pre-join instance — the pushed vote (which
			// carries the group) is what triggers its reactive coordination.
			vote := &agreeMsg{Type: agreeVote, Inst: key.inst, From: e.arank(),
				Failed: e.knownFailedSnapshot(c.group), Group: c.Group()}
			e.sendAgreement(coord, c.ctxInternal, vote)
			lastPushed = coord
		}

		// Passive role: wait for the decision, the coordinator's death, or
		// shutdown. Vote/decide arrivals and failure notifications bump the
		// agreement generation channel; death/teardown/abort close their
		// dedicated channels.
		e.mu.Lock()
		for {
			if _, ok := e.agree.decisions[key]; ok {
				break
			}
			if e.dead.Load() || e.closed.Load() {
				break
			}
			if e.w.aborted.Load() {
				e.mu.Unlock()
				panic(abortPanic{code: e.w.abortCode()})
			}
			if e.knownFailed[coord] {
				break // coordinator died: re-evaluate
			}
			if e.w.repl != nil && coord == c.proc.rank && e.w.repl.isPrimary(e.rank) {
				break // promoted to primary: re-evaluate and take the coordinator role
			}
			ch := e.agreeCh
			e.mu.Unlock()
			select {
			case <-ch:
			case <-e.downCh:
			case <-e.w.abortCh:
			}
			e.mu.Lock()
		}
		e.mu.Unlock()
	}
}

// enterInstance marks the instance as joined by this rank and answers any
// vote requests that arrived before the rank reached its validate_all
// call.
func (e *engine) enterInstance(key agreeKey, c *Comm) {
	type pendingReply struct {
		dst int
		msg agreeMsg
	}
	var replies []pendingReply
	e.mu.Lock()
	if e.agree.started[key] {
		e.mu.Unlock()
		return
	}
	e.agree.started[key] = true
	parked := e.agree.pendingReqs[key]
	delete(e.agree.pendingReqs, key)
	for _, req := range parked {
		if req.Type == agreeTreePull {
			var vote agreeMsg
			if d, ok := e.agree.decisions[key]; ok {
				vote = agreeMsg{Type: agreeTreeDecide, Inst: key.inst,
					From: e.arank(), Failed: d, Decided: true}
			} else {
				vote = *e.treeAggregateVoteLocked(key, req.Group)
			}
			replies = append(replies, pendingReply{dst: req.From, msg: vote})
			continue
		}
		vote := agreeMsg{Type: agreeVote, Inst: key.inst, From: e.arank()}
		if d, ok := e.agree.decisions[key]; ok {
			vote.Failed, vote.Decided = d, true
		} else {
			vote.Failed = e.knownFailedSnapshotLocked(req.Group)
		}
		replies = append(replies, pendingReply{dst: req.From, msg: vote})
	}
	e.mu.Unlock()
	for _, r := range replies {
		msg := r.msg
		e.sendAgreement(r.dst, key.ctx, &msg)
	}
}

// coordinateAgreement runs the coordinator role for a communicator-level
// validate_all call.
func (c *Comm) coordinateAgreement(key agreeKey) ([]int, error) {
	return c.eng.coordinateInstance(key, c.Group())
}

// coordinateInstance runs the coordinator role over group: gather votes
// from every alive member, decide, distribute. It lives on the engine so
// an elastic reincarnation can serve instances that predate its join
// (reactiveCoordinate) without a Comm for them.
func (e *engine) coordinateInstance(key agreeKey, group []int) ([]int, error) {
	me := e.arank()
	if e.w.obs != nil {
		start := time.Now()
		defer func() { e.w.obs.Observe(me, obs.AgreementRound, time.Since(start)) }()
	}

	// Solicit votes from everyone this rank believes alive.
	union := make(map[int]bool)
	pending := make(map[int]bool)
	e.mu.Lock()
	for _, m := range group {
		if e.knownFailed[m] {
			union[m] = true
		} else if m != me {
			pending[m] = true
		}
	}
	e.mu.Unlock()

	req := &agreeMsg{Type: agreeReq, Inst: key.inst, From: me, Group: append([]int(nil), group...)}
	for m := range pending {
		e.sendAgreement(m, key.ctx, req)
	}

	var adopted []int
	haveAdopted := false
	e.mu.Lock()
	for {
		if d, ok := e.agree.decisions[key]; ok {
			adopted, haveAdopted = d, true // a previous coordinator's DECIDE raced in
			break
		}
		for from, v := range e.agree.votes[key] {
			if !pending[from] {
				continue
			}
			delete(pending, from)
			if v.Decided {
				adopted, haveAdopted = v.Failed, true
			} else {
				for _, f := range v.Failed {
					union[f] = true
				}
			}
		}
		for m := range pending {
			if e.knownFailed[m] {
				delete(pending, m)
				union[m] = true // died before voting: part of the decision
			}
		}
		if haveAdopted || len(pending) == 0 {
			break
		}
		if e.dead.Load() {
			e.mu.Unlock()
			panic(killedPanic{rank: e.rank})
		}
		if e.closed.Load() {
			e.mu.Unlock()
			return nil, ErrNoDecision
		}
		if e.w.aborted.Load() {
			e.mu.Unlock()
			panic(abortPanic{code: e.w.abortCode()})
		}
		ch := e.agreeCh
		e.mu.Unlock()
		select {
		case <-ch:
		case <-e.downCh:
		case <-e.w.abortCh:
		}
		e.mu.Lock()
	}

	decision := adopted
	if !haveAdopted {
		decision = make([]int, 0, len(union))
		for f := range union {
			decision = append(decision, f)
		}
		sort.Ints(decision)
	} else if decision == nil {
		decision = []int{} // gob flattens empty slices to nil
	}
	if _, ok := e.agree.decisions[key]; !ok {
		e.agree.decisions[key] = decision
	} else {
		decision = e.agree.decisions[key]
	}
	e.mu.Unlock()

	// Broadcast the decision to EVERY member, dead or not: a DECIDE to a
	// corpse vanishes harmlessly, while skipping known-failed members
	// loses the decision for an elastic reincarnation whose revive raced
	// the broadcast (its pushed vote was already folded in, so it will
	// never push again and would wait forever).
	dec := &agreeMsg{Type: agreeDecide, Inst: key.inst, From: me, Failed: decision}
	for _, m := range group {
		if m == me {
			if e.w.repl != nil {
				// Own logical rank: sendAgreement's fan-out skips this physical
				// slot, so this reaches exactly the standby siblings — a later
				// promotion must find the decision already recorded there.
				e.sendAgreement(me, key.ctx, dec)
			}
			continue
		}
		e.sendAgreement(m, key.ctx, dec)
	}
	return decision, nil
}
