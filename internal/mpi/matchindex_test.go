package mpi

import (
	"math/rand"
	"testing"

	"repro/internal/transport"
)

// This file checks the indexed matching core against a linear-scan
// reference — a direct transcription of the pre-index engine, which kept
// one posted-receive slice in post order and one unexpected-packet slice
// in arrival order and always took the first match. The property test
// drives both through randomized (src, tag, wildcard, failure)
// interleavings and demands identical results at every step, which is
// exactly the MPI non-overtaking guarantee the index must preserve.

// linearPosted is the reference posted-receive queue: post order, first
// match wins.
type linearPosted struct {
	q []*Request
}

func (l *linearPosted) add(r *Request) { l.q = append(l.q, r) }

func (l *linearPosted) match(ctx, src, tag int) *Request {
	for i, r := range l.q {
		if r.ctx == ctx &&
			(r.tag == AnyTag || r.tag == tag) &&
			(r.srcWorld == AnySource || r.srcWorld == src) {
			l.q = append(l.q[:i], l.q[i+1:]...)
			return r
		}
	}
	return nil
}

func (l *linearPosted) remove(r *Request) bool {
	for i, p := range l.q {
		if p == r {
			l.q = append(l.q[:i], l.q[i+1:]...)
			return true
		}
	}
	return false
}

func (l *linearPosted) collect(pred func(*Request) bool) []*Request {
	var out []*Request
	kept := l.q[:0]
	for _, r := range l.q {
		if pred(r) {
			out = append(out, r)
		} else {
			kept = append(kept, r)
		}
	}
	l.q = kept
	return out
}

// linearUnexpected is the reference unexpected-message queue: arrival
// order, first match wins.
type linearUnexpected struct {
	q []*transport.Packet
}

func (l *linearUnexpected) add(pkt *transport.Packet) { l.q = append(l.q, pkt) }

func (l *linearUnexpected) take(srcWorld, tag, ctx int) *transport.Packet {
	for i, pkt := range l.q {
		if pkt.Context == ctx &&
			(tag == AnyTag || tag == pkt.Tag) &&
			(srcWorld == AnySource || srcWorld == pkt.Src) {
			l.q = append(l.q[:i], l.q[i+1:]...)
			return pkt
		}
	}
	return nil
}

func (l *linearUnexpected) probe(srcWorld, tag, ctx int) *transport.Packet {
	for _, pkt := range l.q {
		if pkt.Context == ctx &&
			(tag == AnyTag || tag == pkt.Tag) &&
			(srcWorld == AnySource || srcWorld == pkt.Src) {
			return pkt
		}
	}
	return nil
}

// randSrcTag draws a (src, tag) pair, wildcarded with probability ~1/4
// each so exact/exact, exact/wild, wild/exact and wild/wild receives all
// occur.
func randSrcTag(rng *rand.Rand, nSrc, nTag int) (int, int) {
	src := rng.Intn(nSrc)
	if rng.Intn(4) == 0 {
		src = AnySource
	}
	tag := rng.Intn(nTag)
	if rng.Intn(4) == 0 {
		tag = AnyTag
	}
	return src, tag
}

// TestPostedIndexMatchesLinearReference drives the posted-receive index
// and the linear reference through the same randomized interleaving of
// posts, deliveries, cancels and failure sweeps.
func TestPostedIndexMatchesLinearReference(t *testing.T) {
	const (
		rounds = 200
		steps  = 400
		nSrc   = 5
		nTag   = 4
		nCtx   = 3
	)
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		ix := newPostedIndex()
		ref := &linearPosted{}
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // post a receive
				src, tag := randSrcTag(rng, nSrc, nTag)
				r := &Request{srcWorld: src, tag: tag, ctx: rng.Intn(nCtx)}
				ix.add(r)
				ref.add(r)
			case op < 8: // deliver a packet header
				ctx, src, tag := rng.Intn(nCtx), rng.Intn(nSrc), rng.Intn(nTag)
				got, want := ix.match(ctx, src, tag), ref.match(ctx, src, tag)
				if got != want {
					t.Fatalf("round %d step %d: match(%d,%d,%d) = %p, reference %p",
						round, step, ctx, src, tag, got, want)
				}
			case op < 9: // cancel a random still-posted receive
				if len(ref.q) == 0 {
					continue
				}
				r := ref.q[rng.Intn(len(ref.q))]
				gi, gr := ix.remove(r), ref.remove(r)
				if gi != gr {
					t.Fatalf("round %d step %d: remove = %v, reference %v", round, step, gi, gr)
				}
			default: // failure sweep: rank f died, fail receives posted to it
				f := rng.Intn(nSrc)
				wildToo := rng.Intn(2) == 0 // model the AnySource-fails rule
				pred := func(r *Request) bool {
					return r.srcWorld == f || (wildToo && r.srcWorld == AnySource)
				}
				got, want := ix.collect(pred), ref.collect(pred)
				if len(got) != len(want) {
					t.Fatalf("round %d step %d: collect returned %d victims, reference %d",
						round, step, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("round %d step %d: collect[%d] = %p, reference %p (completion order diverged)",
							round, step, i, got[i], want[i])
					}
				}
			}
			if ix.live != len(ref.q) {
				t.Fatalf("round %d step %d: live = %d, reference holds %d", round, step, ix.live, len(ref.q))
			}
		}
	}
}

// TestUnexpectedIndexMatchesLinearReference does the same for the
// unexpected-packet side: arrivals, takes and probes must agree with the
// arrival-order linear scan packet-for-packet.
func TestUnexpectedIndexMatchesLinearReference(t *testing.T) {
	const (
		rounds = 200
		steps  = 400
		nSrc   = 5
		nTag   = 4
		nCtx   = 3
	)
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) + 1e9))
		ix := newUnexpectedIndex()
		ref := &linearUnexpected{}
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // packet arrives
				pkt := &transport.Packet{
					Src: rng.Intn(nSrc), Tag: rng.Intn(nTag), Context: rng.Intn(nCtx),
				}
				ix.add(pkt)
				ref.add(pkt)
			case op < 8: // a receive is posted and shops the queue
				src, tag := randSrcTag(rng, nSrc, nTag)
				ctx := rng.Intn(nCtx)
				got, want := ix.take(src, tag, ctx), ref.take(src, tag, ctx)
				if got != want {
					t.Fatalf("round %d step %d: take(%d,%d,%d) = %p, reference %p",
						round, step, src, tag, ctx, got, want)
				}
			default: // Iprobe
				src, tag := randSrcTag(rng, nSrc, nTag)
				ctx := rng.Intn(nCtx)
				got, want := ix.probe(src, tag, ctx), ref.probe(src, tag, ctx)
				if got != want {
					t.Fatalf("round %d step %d: probe(%d,%d,%d) = %p, reference %p",
						round, step, src, tag, ctx, got, want)
				}
			}
			if ix.live != len(ref.q) {
				t.Fatalf("round %d step %d: live = %d, reference holds %d", round, step, ix.live, len(ref.q))
			}
		}
	}
}

// TestUnexpectedIndexCompaction forces the tombstone-compaction path:
// deep exact consumption inside one context must not disturb wildcard
// matching there or in other contexts.
func TestUnexpectedIndexCompaction(t *testing.T) {
	ix := newUnexpectedIndex()
	ref := &linearUnexpected{}
	const n = 200
	for i := 0; i < n; i++ {
		for _, ctx := range []int{0, 1} {
			pkt := &transport.Packet{Src: i % 3, Tag: 0, Context: ctx}
			ix.add(pkt)
			ref.add(pkt)
		}
	}
	// Exact takes in ctx 0 tombstone its order list past the compaction
	// threshold; ctx 1 must be untouched.
	for i := 0; i < n-10; i++ {
		got, want := ix.take(i%3, 0, 0), ref.take(i%3, 0, 0)
		if got != want {
			t.Fatalf("exact take %d: %p, reference %p", i, got, want)
		}
	}
	for {
		got, want := ix.take(AnySource, AnyTag, 1), ref.take(AnySource, AnyTag, 1)
		if got != want {
			t.Fatalf("wildcard drain: %p, reference %p", got, want)
		}
		if got == nil {
			break
		}
	}
	if rest := ix.take(AnySource, AnyTag, 0); rest == nil || rest != ref.take(AnySource, AnyTag, 0) {
		t.Fatalf("ctx 0 leftovers diverged")
	}
}

// FuzzBucketKey checks the hash-bucket key discriminates exactly on the
// (context, source, tag) triple: two operations share a bucket iff all
// three fields are equal.
func FuzzBucketKey(f *testing.F) {
	f.Add(0, 0, 0, 0, 0, 0)
	f.Add(1, 2, 3, 1, 2, 3)
	f.Add(0, 1, 2, 0, 1, -4)
	f.Add(-1, AnySource, AnyTag, -1, 0, 0)
	f.Fuzz(func(t *testing.T, ctx1, src1, tag1, ctx2, src2, tag2 int) {
		k1 := bucketKey{ctx1, src1, tag1}
		k2 := bucketKey{ctx2, src2, tag2}
		wantEqual := ctx1 == ctx2 && src1 == src2 && tag1 == tag2
		if (k1 == k2) != wantEqual {
			t.Fatalf("bucketKey equality: %+v == %+v is %v, field-wise %v", k1, k2, k1 == k2, wantEqual)
		}
		m := map[bucketKey]int{k1: 1}
		if _, hit := m[k2]; hit != wantEqual {
			t.Fatalf("map lookup: %+v found under %+v = %v, want %v", k2, k1, hit, wantEqual)
		}
	})
}
