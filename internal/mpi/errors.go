package mpi

import (
	"errors"
	"fmt"
)

// Error classes. ErrRankFailStop corresponds to the proposal's
// MPI_ERR_RANK_FAIL_STOP class: the operation involved (directly or
// indirectly) a failed, unrecognized rank.
var (
	// ErrRankFailStop reports that a peer of the operation has failed and
	// has not been recognized on the communicator (MPI_ERR_RANK_FAIL_STOP).
	ErrRankFailStop = errors.New("mpi: rank failed (MPI_ERR_RANK_FAIL_STOP)")
	// ErrAborted reports that the world was aborted (MPI_Abort) while the
	// operation was in progress.
	ErrAborted = errors.New("mpi: world aborted")
	// ErrCancelled reports that the request was cancelled before completing.
	ErrCancelled = errors.New("mpi: request cancelled")
	// ErrInvalidRank reports a rank outside the communicator.
	ErrInvalidRank = errors.New("mpi: invalid rank")
	// ErrInvalidArg reports a malformed argument.
	ErrInvalidArg = errors.New("mpi: invalid argument")
	// ErrTimedOut reports that the world watchdog expired before the run
	// completed — how the harness surfaces the paper's Figure 6 deadlock.
	ErrTimedOut = errors.New("mpi: world deadline exceeded")
	// ErrNoDecision reports that a validate operation could not reach a
	// decision because the world shut down underneath it.
	ErrNoDecision = errors.New("mpi: agreement shut down before decision")
)

// RankError wraps an error class with the world rank that triggered it,
// so application-level failover code (the paper's FT_Send_right) can tell
// which peer died.
type RankError struct {
	Rank int // world rank of the failed peer (-1 if unknown)
	Err  error
}

// Error implements the error interface.
func (e *RankError) Error() string {
	return fmt.Sprintf("%v (world rank %d)", e.Err, e.Rank)
}

// Unwrap exposes the error class for errors.Is.
func (e *RankError) Unwrap() error { return e.Err }

func failStop(rank int) error { return &RankError{Rank: rank, Err: ErrRankFailStop} }

// IsRankFailStop reports whether err is in the rank-fail-stop class.
func IsRankFailStop(err error) bool { return errors.Is(err, ErrRankFailStop) }

// FailedRankOf extracts the world rank carried by a rank-fail-stop error,
// or -1 when unavailable.
func FailedRankOf(err error) int {
	var re *RankError
	if errors.As(err, &re) {
		return re.Rank
	}
	return -1
}

// Errhandler selects how errors raised by operations on a communicator
// are handled, mirroring MPI_ERRORS_ARE_FATAL / MPI_ERRORS_RETURN.
type Errhandler int

const (
	// ErrorsAreFatal aborts the world on any error — the MPI default. The
	// paper's first fault-tolerance change (Fig. 3 line 10) is to replace
	// this with ErrorsReturn.
	ErrorsAreFatal Errhandler = iota
	// ErrorsReturn surfaces errors through return values.
	ErrorsReturn
)

// String returns the MPI-style name of the handler.
func (h Errhandler) String() string {
	switch h {
	case ErrorsAreFatal:
		return "MPI_ERRORS_ARE_FATAL"
	case ErrorsReturn:
		return "MPI_ERRORS_RETURN"
	default:
		return fmt.Sprintf("Errhandler(%d)", int(h))
	}
}

// killedPanic unwinds a killed rank's goroutine at its next MPI call:
// fail-stop. Recovered by the world runner.
type killedPanic struct{ rank int }

// abortPanic unwinds every rank after MPI_Abort. Recovered by the runner.
type abortPanic struct{ code int }

// closedPanic unwinds internal service goroutines at world teardown.
type closedPanic struct{}

// AbortError is returned by World.Run when the application called Abort.
type AbortError struct{ Code int }

// Error implements the error interface.
func (e *AbortError) Error() string { return fmt.Sprintf("mpi: aborted with code %d", e.Code) }
