package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/reliable"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config configures a World.
//
// Construct worlds with NewWorld(size, opts...) and the functional
// options in options.go. The struct itself stays exported for callers
// that assemble a configuration positionally and feed it through an
// Option (an Option is just func(*Config)); the old NewWorldFromConfig
// constructor is gone.
type Config struct {
	// Size is the number of ranks (required, > 0).
	Size int
	// Fabric moves packets; nil selects the in-memory Local fabric.
	Fabric transport.Fabric
	// Tracer records communication events; nil disables tracing.
	Tracer *trace.Recorder
	// Metrics counts per-rank operations; nil disables counting.
	Metrics *metrics.World
	// Hook observes operation boundaries for fault injection; nil disables.
	Hook HookFunc
	// Deadline bounds Run's wall-clock time. When it expires the world is
	// torn down and Run reports ErrTimedOut together with the ranks that
	// were still running — how the harness turns the paper's Figure 6
	// deadlock into an observable, testable outcome. Zero means no limit.
	Deadline time.Duration
	// NotifyDelay delays failure notifications to surviving ranks,
	// modelling failure-detection latency. Zero delivers synchronously.
	// Oracle mode only: with the heartbeat detector, detection latency is
	// real (heartbeat timeout plus fencing), not modelled, and this field
	// is ignored.
	NotifyDelay time.Duration
	// Detector selects the failure-detection mode: DetectorOracle (the
	// default, also selected by ""), DetectorHeartbeat, or DetectorSwim.
	// See the mode constants in heartbeat.go and swim.go.
	Detector string
	// Heartbeat tunes the heartbeat monitors when Detector is
	// DetectorHeartbeat; zero fields take the detector package defaults.
	Heartbeat detector.HeartbeatOptions
	// Swim tunes the SWIM monitors when Detector is DetectorSwim; zero
	// fields take the membership package defaults.
	Swim membership.Options
	// Agreement selects the validate_all consensus topology:
	// AgreementCoordinator (the default, also selected by "") funnels
	// votes through the lowest alive rank, AgreementTree reduces them up
	// a fault-aware spanning tree — the scalable choice for large N. See
	// the constants in treeagree.go.
	Agreement string
	// Chaos injects seeded network faults (drop, duplication, corruption,
	// jitter, reordering, partitions) between the engines and the fabric;
	// nil disables. Setting it implies the reliability sublayer, which is
	// what lets the runtime survive the injected faults.
	Chaos *chaos.Plan
	// Reliable enables the reliability sublayer (sequence numbers, acks,
	// dedup, bounded retransmission with fail-stop escalation) even
	// without a chaos plan.
	Reliable bool
	// ReliableOptions tunes the reliability sublayer; zero fields take
	// the package defaults.
	ReliableOptions reliable.Options
	// Obs records per-rank latency histograms (send completion, receive
	// wait, validate_all, agreement rounds, elections, retry backoff,
	// chaos delay, failure-notification latency); nil disables.
	Obs *obs.Registry
	// Elastic enables elastic-world repair: dead slots may be reoccupied
	// by a new incarnation at the next generation via World.Spawn (and
	// automatically, when Elastic.AutoRespawn is set). Nil keeps the
	// classic fixed-membership semantics where death is forever.
	Elastic *ElasticOptions
	// Replication enables hot-replica mode: Size is interpreted as the
	// LOGICAL rank count and the world is expanded to Size*R physical
	// slots, each logical rank backed by R replicas with transparent
	// failover. Nil keeps the one-slot-per-rank semantics. See
	// replication.go.
	Replication *ReplicationOptions
}

// World is one MPI universe: a set of rank slots, a fabric, and the
// ground-truth failure registry. Create with NewWorld, execute with Run.
//
// A slot's identity is generation-stamped (RankID): the slice elements
// below that describe a slot's live machinery — engine, detector monitor,
// proc — are atomic pointers swapped wholesale when an elastic world
// reincarnates a dead slot at the next generation. Readers always see a
// complete incarnation, never a half-rebuilt one.
type World struct {
	size      int
	registry  *detector.Registry
	fabric    transport.Fabric
	engines   []atomic.Pointer[engine]
	procs     []atomic.Pointer[Proc]
	tracer    *trace.Recorder
	metrics   *metrics.World
	obs       *obs.Registry
	hook      HookFunc
	deadline  time.Duration
	reliable  *reliable.Fabric                     // non-nil when the reliability sublayer is on
	hb        []atomic.Pointer[detector.Heartbeat] // per-rank heartbeat monitors; nil unless heartbeat mode
	sw        []atomic.Pointer[membership.Swim]    // per-rank SWIM monitors; nil unless swim mode
	hbOpts    detector.HeartbeatOptions            // retained to build replacement monitors at respawn
	swOpts    membership.Options
	swConv    *convTracker // gossip-convergence probe shared across incarnations
	agreement string       // validate_all topology (AgreementCoordinator / AgreementTree)
	elastic   *ElasticOptions
	lsize     int        // logical rank count (== size unless replicated)
	repl      *replState // replica-group state; nil outside replication mode

	// Causal tracing state, owned by the World (not the engine) so it
	// survives elastic reincarnation: a respawned slot inherits its
	// predecessor's hybrid logical clock (per-rank HLC monotonicity holds
	// across generations) and its token counter (a replacement never
	// reissues a dead incarnation's message identities).
	clocks  []trace.HLC
	tokSeqs []atomic.Uint64

	// nonRetaining records that the fabric copies everything it needs
	// inside Send (transport.NonRetaining), so the p2p send path may hand
	// the caller's payload to Send without a defensive copy.
	nonRetaining bool

	aborted       atomic.Bool
	abortVal      atomic.Int64
	abortCh       chan struct{} // closed on Abort; waiters select on it
	abortOnce     sync.Once
	completionSeq atomic.Uint64 // request-completion order for Waitany
	startOnce     sync.Once
	started       bool

	// Run-lifecycle state shared with Spawn. runMu guards every field
	// below; the invariant that makes WaitGroup reuse safe is that rank
	// goroutines decrement active under runMu strictly before calling
	// runWG.Done, so Spawn observing active > 0 under runMu may Add.
	runMu     sync.Mutex
	runFn     func(p *Proc) error
	runRes    *RunResult
	runWG     *sync.WaitGroup
	active    int
	closing   bool
	spawning  map[int]bool // slots with a Spawn in flight
	respawned int          // total reincarnations this run
	finished  []atomic.Bool
}

// eng returns the slot's current engine.
func (w *World) eng(i int) *engine { return w.engines[i].Load() }

// clockOf returns the slot's hybrid logical clock (shared across
// incarnations).
func (w *World) clockOf(i int) *trace.HLC { return &w.clocks[i] }

// nextTokenSeq issues the slot's next per-origin message sequence for
// causal-token assignment.
func (w *World) nextTokenSeq(i int) uint64 { return w.tokSeqs[i].Add(1) }

// genOf returns the generation of the slot's current incarnation.
func (w *World) genOf(i int) uint32 { return w.engines[i].Load().gen }

// hbAt returns the slot's current heartbeat monitor (nil outside
// heartbeat mode).
func (w *World) hbAt(i int) *detector.Heartbeat {
	if w.hb == nil {
		return nil
	}
	return w.hb[i].Load()
}

// swAt returns the slot's current SWIM monitor (nil outside swim mode).
func (w *World) swAt(i int) *membership.Swim {
	if w.sw == nil {
		return nil
	}
	return w.sw[i].Load()
}

// NewWorld builds a world of size ranks, configured by functional
// options (WithFabric, WithTracer, WithMetrics, WithHook, WithDeadline,
// WithNotifyDelay, WithElastic, ...). The world is single-use: one Run
// per World.
func NewWorld(size int, opts ...Option) (*World, error) {
	cfg := Config{Size: size}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return newWorldFromConfig(cfg)
}

// newWorldFromConfig builds a world from an assembled Config.
func newWorldFromConfig(cfg Config) (*World, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("%w: world size %d", ErrInvalidArg, cfg.Size)
	}
	switch cfg.Detector {
	case "", DetectorOracle, DetectorHeartbeat, DetectorSwim:
	default:
		return nil, fmt.Errorf("%w: unknown detector mode %q (want %q, %q or %q)",
			ErrInvalidArg, cfg.Detector, DetectorOracle, DetectorHeartbeat, DetectorSwim)
	}
	switch cfg.Agreement {
	case "", AgreementCoordinator, AgreementTree:
	default:
		return nil, fmt.Errorf("%w: unknown agreement mode %q (want %q or %q)",
			ErrInvalidArg, cfg.Agreement, AgreementCoordinator, AgreementTree)
	}
	lsize := cfg.Size
	if cfg.Replication != nil {
		if cfg.Replication.R < 1 {
			return nil, fmt.Errorf("%w: replication degree %d (want >= 1)",
				ErrInvalidArg, cfg.Replication.R)
		}
		switch cfg.Replication.Mode {
		case "", ReplFanout, ReplChain:
		default:
			return nil, fmt.Errorf("%w: unknown replication mode %q (want %q or %q)",
				ErrInvalidArg, cfg.Replication.Mode, ReplFanout, ReplChain)
		}
		// Size is the logical rank count; the physical world is R times
		// larger. Everything below (registry, engines, monitors, fabric
		// delivery) is sized physically.
		cfg.Size = lsize * cfg.Replication.R
		if cfg.Replication.AutoRefill && cfg.Elastic == nil {
			// Automatic re-replication rides the elastic-world Spawn
			// machinery; enable it with defaults when the app didn't.
			cfg.Elastic = &ElasticOptions{}
		}
	}
	fabric := cfg.Fabric
	if fabric == nil {
		fabric = transport.NewLocal()
	}
	// Layer the adversarial network and its antidote over the base fabric:
	// engine -> reliable -> chaos -> base. Chaos injects faults on the way
	// down; the reliability sublayer re-sequences, deduplicates, CRC-checks
	// and retransmits on the way up, escalating dead links to fail-stop.
	var chaosFab *chaos.Fabric
	var relFab *reliable.Fabric
	if cfg.Chaos != nil {
		chaosFab = chaos.Wrap(fabric, cfg.Chaos)
		fabric = chaosFab
	}
	if cfg.Chaos != nil || cfg.Reliable {
		relFab = reliable.Wrap(fabric, cfg.ReliableOptions)
		fabric = relFab
	}
	// The reliability fabric retains packets for retransmission, so it is
	// never NonRetaining: the p2p path's defensive payload copy is exactly
	// what hands it an ownable buffer.
	_, nonRetaining := fabric.(transport.NonRetaining)
	w := &World{
		size:         cfg.Size,
		registry:     detector.New(cfg.Size),
		fabric:       fabric,
		tracer:       cfg.Tracer,
		metrics:      cfg.Metrics,
		obs:          cfg.Obs,
		hook:         cfg.Hook,
		deadline:     cfg.Deadline,
		reliable:     relFab,
		nonRetaining: nonRetaining,
		abortCh:      make(chan struct{}),
		elastic:      cfg.Elastic,
		spawning:     make(map[int]bool),
		lsize:        lsize,
		clocks:       make([]trace.HLC, cfg.Size),
		tokSeqs:      make([]atomic.Uint64, cfg.Size),
	}
	if cfg.Replication != nil {
		w.repl = newReplState(w, lsize, *cfg.Replication)
		if relFab != nil && w.repl.mode == ReplChain {
			// Tail-ack gating: a chain primary's hop-level ARQ ack for a
			// fresh data frame is withheld until the engine has forwarded
			// the frame down the chain (deliver releases it), so an ack
			// never claims durability the standbys don't have yet.
			relFab.SetAckGate(func(dst int, pkt *transport.Packet) bool {
				return pkt.Kind == transport.KindData && pkt.RepSeq != 0 &&
					w.repl.isPrimary(dst)
			})
		}
	}
	w.agreement = cfg.Agreement
	if w.agreement == "" {
		w.agreement = AgreementCoordinator
	}
	if cfg.NotifyDelay > 0 {
		w.registry.SetNotifyDelay(cfg.NotifyDelay)
	}
	switch cfg.Detector {
	case DetectorHeartbeat:
		w.initHeartbeats(cfg.Heartbeat)
	case DetectorSwim:
		w.initSwim(cfg.Swim)
	}
	if cfg.Obs != nil {
		w.registry.SetNotifyObserver(func(rank int, lat time.Duration) {
			w.obs.Observe(rank, obs.NotifyLatency, lat)
		})
	}
	if chaosFab != nil {
		chaosFab.Observe(w.onChaosEvent)
	}
	if relFab != nil {
		relFab.Observe(w.onReliableEvent)
		relFab.Escalate(func(peer int) { w.registry.Kill(peer) })
	}
	w.engines = make([]atomic.Pointer[engine], cfg.Size)
	w.procs = make([]atomic.Pointer[Proc], cfg.Size)
	for i := range w.engines {
		w.engines[i].Store(newEngine(w, i, 1))
	}
	return w, nil
}

// releaseChainAck releases the gate-deferred hop-level ARQ ack for a
// chain data frame delivered to dst. ReleaseAck is idempotent, so this
// is a cheap no-op when nothing was deferred (fanout mode, control
// traffic, already released).
func (w *World) releaseChainAck(dst int, pkt *transport.Packet) {
	if w.reliable != nil {
		w.reliable.ReleaseAck(pkt.Src, dst, pkt.Seq)
	}
}

// onChaosEvent maps an injected network fault to metrics counters and a
// trace event, attributed to the sending side of the link.
func (w *World) onChaosEvent(e chaos.Event) {
	var counter metrics.Counter
	var kind trace.Kind
	switch e.Kind {
	case chaos.EvDrop:
		counter, kind = metrics.FramesDropped, trace.ChaosDrop
	case chaos.EvDup:
		counter, kind = metrics.FramesDuplicated, trace.ChaosDup
	case chaos.EvCorrupt:
		counter, kind = metrics.FramesCorrupted, trace.ChaosCorrupt
	case chaos.EvDelay:
		counter, kind = metrics.FramesDelayed, trace.ChaosDelay
	case chaos.EvReorder:
		counter, kind = metrics.FramesReordered, trace.ChaosReorder
	case chaos.EvPartition:
		counter, kind = metrics.FramesDropped, trace.ChaosPartition
	default:
		return
	}
	w.metrics.Inc(e.Src, counter)
	w.tracer.RecordMsg(e.Src, kind, e.Dst, -1, -1, 0, e.Token, 0,
		fmt.Sprintf("frame=%d seq=%d", e.Frame, e.Seq))
	if e.Kind == chaos.EvDelay {
		w.obs.Observe(e.Src, obs.ChaosDelay, e.Delay)
	}
}

// onReliableEvent maps a reliability-sublayer action to metrics counters
// and a trace event. Retries and escalations are attributed to the
// sender; rejects and dedups to the receiver.
func (w *World) onReliableEvent(e reliable.Event) {
	switch e.Kind {
	case reliable.EvRetry:
		w.metrics.Inc(e.Src, metrics.FramesRetried)
		w.tracer.RecordMsg(e.Src, trace.FrameRetry, e.Dst, -1, -1, 0, e.Token, 0,
			fmt.Sprintf("seq=%d attempt=%d", e.Seq, e.Attempt))
		w.obs.Observe(e.Src, obs.RetryBackoff, e.Backoff)
	case reliable.EvReject:
		w.metrics.Inc(e.Dst, metrics.FramesRejected)
		w.tracer.RecordMsg(e.Dst, trace.FrameReject, e.Src, -1, -1, 0, e.Token, 0,
			fmt.Sprintf("seq=%d crc mismatch", e.Seq))
	case reliable.EvDedup:
		w.metrics.Inc(e.Dst, metrics.FramesDeduped)
		w.tracer.RecordMsg(e.Dst, trace.FrameDedup, e.Src, -1, -1, 0, e.Token, 0,
			fmt.Sprintf("seq=%d", e.Seq))
	case reliable.EvEscalate:
		w.metrics.Inc(e.Src, metrics.LinkEscalations)
		w.tracer.RecordMsg(e.Src, trace.LinkEscalated, e.Dst, -1, -1, 0, e.Token, 0,
			fmt.Sprintf("seq=%d retries exhausted after %d attempts", e.Seq, e.Attempt-1))
	case reliable.EvDeadDrop:
		w.tracer.RecordMsg(e.Src, trace.DeadDrop, e.Dst, -1, -1, 0, e.Token, 0,
			"dead destination")
	case reliable.EvPurged:
		w.tracer.RecordMsg(e.Src, trace.FramePurged, e.Dst, -1, -1, 0, e.Token, 0,
			fmt.Sprintf("seq=%d", e.Seq))
	}
}

// Size returns the number of PHYSICAL rank slots in the world (alive or
// failed). In replication mode this is LogicalSize()*R; the application
// sees LogicalSize() ranks.
func (w *World) Size() int { return w.size }

// Registry exposes the ground-truth failure registry (the perfect
// failure detector's backing store).
func (w *World) Registry() *detector.Registry { return w.registry }

// Tracer returns the configured event recorder (possibly nil).
func (w *World) Tracer() *trace.Recorder { return w.tracer }

// Metrics returns the configured counter table (possibly nil).
func (w *World) Metrics() *metrics.World { return w.metrics }

// Obs returns the configured latency-histogram registry (possibly nil).
func (w *World) Obs() *obs.Registry { return w.obs }

// Kill fail-stops a rank from outside (e.g. a test driver). If the rank
// is blocked in an MPI call it unwinds immediately; if it is computing,
// it unwinds at its next MPI call. Prefer hook-based kills for
// deterministic placement.
func (w *World) Kill(rank int) {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: Kill(%d) out of range [0,%d)", rank, w.size))
	}
	w.registry.Kill(rank)
}

// abortCode returns the code passed to Abort.
func (w *World) abortCode() int { return int(w.abortVal.Load()) }

// abort tears the world down with the given code (MPI_Abort semantics):
// every rank unwinds at its next (or current) MPI call. Blocked waiters
// learn about it through the closed abortCh.
func (w *World) abort(code int) {
	if w.aborted.CompareAndSwap(false, true) {
		w.abortVal.Store(int64(code))
	}
	w.abortOnce.Do(func() { close(w.abortCh) })
	w.registry.BroadcastWaiters()
}

// RankResult reports how one rank's function ended.
type RankResult struct {
	// Err is the value returned by the rank function (nil on success).
	// Killed and aborted ranks report nil here; inspect Killed/Aborted.
	Err error
	// Killed reports the rank fail-stopped (fault injection or World.Kill).
	Killed bool
	// Aborted reports the rank unwound due to MPI_Abort or teardown.
	Aborted bool
	// Finished reports the rank function returned normally.
	Finished bool
}

// RespawnResult reports how one reincarnation of a slot ended. Each
// respawn gets its own entry — the slot's Ranks[slot] entry keeps the
// first incarnation's outcome — so outcomes of an old incarnation still
// unwinding and its replacement never race on one struct.
type RespawnResult struct {
	// Slot is the world rank the incarnation occupied.
	Slot int
	// Gen is the incarnation's generation (2 for the first respawn).
	Gen int
	RankResult
}

// RunResult aggregates a world execution.
type RunResult struct {
	// Ranks holds one result per world rank (the first incarnation).
	Ranks []RankResult
	// Respawns holds one result per reincarnation, in spawn order.
	Respawns []*RespawnResult
	// TimedOut reports that the watchdog expired — the run deadlocked or
	// overran the configured deadline.
	TimedOut bool
	// Stuck lists ranks that had neither finished nor been killed when the
	// watchdog expired: the hung processes of the paper's Figure 6.
	Stuck []int
	// AbortCode is the MPI_Abort exit code, meaningful when Aborted.
	AbortCode int
	// Aborted reports that some rank called Abort.
	Aborted bool
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// FirstError returns the first non-nil rank error, or nil.
func (r *RunResult) FirstError() error {
	for _, rr := range r.Ranks {
		if rr.Err != nil {
			return rr.Err
		}
	}
	return nil
}

// FinishedCount returns how many ranks returned normally.
func (r *RunResult) FinishedCount() int {
	n := 0
	for _, rr := range r.Ranks {
		if rr.Finished {
			n++
		}
	}
	return n
}

// Run executes fn on every rank concurrently and waits for the world to
// drain. It returns the per-rank outcomes; err is non-nil only for
// harness-level failures (fabric startup, deadline, abort).
func (w *World) Run(fn func(p *Proc) error) (*RunResult, error) {
	var startErr error
	w.startOnce.Do(func() {
		startErr = w.fabric.Start(func(dst int, pkt *transport.Packet) {
			if dst >= 0 && dst < w.size {
				w.eng(dst).deliver(pkt)
			}
		})
		if startErr != nil {
			return
		}
		if w.hb != nil || w.sw != nil {
			// Monitored modes (heartbeat or SWIM): ground-truth death
			// unwinds the victim immediately — it IS dead, whatever its
			// peers believe — while the survivors' notifications wait for
			// the detection/fencing pipeline to Confirm the failure.
			w.registry.OnDeath(func(f int) {
				w.tracer.RecordMsg(f, trace.Killed, -1, -1, -1, int(w.genOf(f)), 0, 0, "fail-stop")
				w.eng(f).markDead()
			})
			w.registry.Subscribe(func(f int) {
				if w.reliable != nil {
					w.reliable.PeerDown(f)
				}
				w.notifyFailure(f)
			})
			w.startMonitors()
		} else {
			w.registry.Subscribe(func(f int) {
				w.tracer.RecordMsg(f, trace.Killed, -1, -1, -1, int(w.genOf(f)), 0, 0, "fail-stop")
				if w.reliable != nil {
					// Stop retransmitting toward the dead rank before the
					// engines learn of the failure: fail-stop, not lossy.
					w.reliable.PeerDown(f)
				}
				w.eng(f).markDead()
				w.notifyFailure(f)
			})
		}
		// Elastic worlds: every survivor learns of revivals, and (when
		// configured) a confirmed death schedules its own replacement.
		w.registry.SubscribeRevive(func(slot, gen int) {
			w.notifyRevive(slot)
		})
		if w.elastic != nil && w.elastic.AutoRespawn {
			w.registry.Subscribe(func(f int) {
				time.AfterFunc(w.elastic.RespawnDelay, func() {
					_, _ = w.Spawn(f) // refused spawns (budget/teardown) are fine
				})
			})
		}
		w.started = true
	})
	if startErr != nil {
		return nil, startErr
	}
	if !w.started {
		return nil, fmt.Errorf("%w: World.Run called twice", ErrInvalidArg)
	}
	w.started = false // consume the single use

	begin := time.Now()
	res := &RunResult{Ranks: make([]RankResult, w.size)}
	var wg sync.WaitGroup
	w.runMu.Lock()
	w.runFn = fn
	w.runRes = res
	w.runWG = &wg
	w.finished = make([]atomic.Bool, w.size)
	for rank := 0; rank < w.size; rank++ {
		wg.Add(1)
		w.active++
		w.launchRankLocked(rank, nil, &res.Ranks[rank])
	}
	w.runMu.Unlock()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	if w.deadline > 0 {
		timer := time.NewTimer(w.deadline)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			res.TimedOut = true
			for rank := 0; rank < w.size; rank++ {
				if !w.finished[rank].Load() && !w.registry.Failed(rank) {
					res.Stuck = append(res.Stuck, rank)
				}
			}
			w.abort(-1) // unwind everything
			<-done
		}
	} else {
		<-done
	}

	// Teardown: refuse further respawns, wake any internal service
	// goroutines, stop the detector monitors while the fabric can still
	// carry their last acks, close the fabric, and cancel any delayed
	// failure notifications still pending in the registry (they must not
	// fire into torn-down state).
	w.runMu.Lock()
	w.closing = true
	w.runMu.Unlock()
	for i := 0; i < w.size; i++ {
		w.eng(i).markClosed()
	}
	w.registry.BroadcastWaiters()
	w.stopMonitors()
	_ = w.fabric.Close()
	w.registry.Close()

	res.Elapsed = time.Since(begin)
	if w.aborted.Load() && !res.TimedOut {
		res.Aborted = true
		res.AbortCode = w.abortCode()
		return res, &AbortError{Code: res.AbortCode}
	}
	if res.TimedOut {
		return res, ErrTimedOut
	}
	return res, nil
}
