package mpi

import (
	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Proc is one rank's handle to the world, passed to the rank function by
// World.Run. All MPI operations hang off the communicators it owns; the
// world communicator is Proc.World().
type Proc struct {
	w         *World
	rank      int
	eng       *engine
	worldComm *Comm
	// ctxSeq is the per-proc communicator-context allocator (see
	// nextCtxPair). Guarded by eng.mu: elastic respawn reads it cross-rank
	// to seed a reincarnation's allocator.
	ctxSeq int
}

// newProc builds the per-rank application handle. rank is the PHYSICAL
// slot; in replication mode the proc presents the logical identity (its
// Rank, Size and world-communicator group are logical) while keeping the
// physical engine underneath.
func newProc(w *World, rank int) *Proc {
	p := &Proc{w: w, rank: w.logicalOf(rank), eng: w.eng(rank)}
	group := make([]int, w.lsize)
	for i := range group {
		group[i] = i
	}
	p.worldComm = newComm(p, group, ctxWorldP2P, ctxWorldInternal)
	return p
}

// nextCtxSeq advances the context allocator and returns its new position.
func (p *Proc) nextCtxSeq() int {
	p.eng.mu.Lock()
	defer p.eng.mu.Unlock()
	p.ctxSeq++
	return p.ctxSeq
}

// Rank returns this process's world rank (the logical rank in
// replication mode — replicas of one logical rank all report it).
func (p *Proc) Rank() int { return p.rank }

// PhysRank returns the physical slot this process occupies (equal to
// Rank outside replication mode). Harness-level assertions use it;
// application code should not.
func (p *Proc) PhysRank() int { return p.eng.rank }

// Gen returns this process's incarnation number (1 unless the rank was
// respawned into an elastic world).
func (p *Proc) Gen() int { return int(p.eng.gen) }

// ID returns this process's generation-stamped identity.
func (p *Proc) ID() RankID { return RankID{Slot: p.rank, Gen: int(p.eng.gen)} }

// Size returns the world size (including failed ranks — fail-stop ranks
// are never removed from the universe, per run-through stabilization).
// In replication mode this is the LOGICAL size the application addresses.
func (p *Proc) Size() int { return p.w.lsize }

// World returns the world communicator (MPI_COMM_WORLD).
func (p *Proc) World() *Comm { return p.worldComm }

// Registry exposes the perfect failure detector's registry. Application
// code normally goes through Comm.RankState (the paper's validate_rank);
// the registry is for harness-level assertions.
func (p *Proc) Registry() *detector.Registry { return p.w.registry }

// Tracer returns the world's event recorder (possibly nil; a nil recorder
// accepts and drops events).
func (p *Proc) Tracer() *trace.Recorder { return p.w.tracer }

// Metrics returns the world's counter table (possibly nil; a nil table
// accepts and drops increments).
func (p *Proc) Metrics() *metrics.World { return p.w.metrics }

// Obs returns the world's latency-histogram registry (possibly nil; a nil
// registry accepts and drops observations).
func (p *Proc) Obs() *obs.Registry { return p.w.obs }

// Checkpoint announces an application-defined point to the fault
// injector, which may fail-stop the rank exactly here.
func (p *Proc) Checkpoint(label string) {
	p.eng.checkAlive()
	p.w.fireHook(p.eng, HookEvent{Rank: p.rank, Point: HookCheckpoint, Peer: -1, Label: label})
}

// Abort tears down the whole world (MPI_Abort on MPI_COMM_WORLD). It does
// not return: the calling rank unwinds immediately and every other rank
// unwinds at its next MPI call.
func (p *Proc) Abort(code int) {
	p.w.tracer.Record(p.rank, trace.Note, -1, -1, -1, "MPI_Abort")
	p.w.abort(code)
	panic(abortPanic{code: code})
}

// Die fail-stops the calling rank (used by scripted failure scenarios
// that kill from application level rather than via hooks). Does not
// return.
func (p *Proc) Die() {
	p.eng.die()
}
