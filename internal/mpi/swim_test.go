package mpi

import (
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// swimFast is the SWIM tuning used across these tests: tight enough to
// detect within tens of milliseconds, with a self-fence horizon far
// enough out that tests controlling the death stay deterministic.
func swimFast() membership.Options {
	return membership.Options{
		Period:         4 * time.Millisecond,
		SelfFenceAfter: 2 * time.Second,
		Seed:           1,
	}
}

// TestSwimDetectsInjectedKill is the swim-mode smoke test: survivors
// learn of an injected kill only through missed probes, fencing, and
// confirmation — and the full metrics/obs pipeline lights up.
func TestSwimDetectsInjectedKill(t *testing.T) {
	const n = 5
	m := metrics.NewWorld(n)
	o := obs.NewRegistry(n)
	w, err := NewWorld(n, WithSwim(swimFast()), WithMetrics(m),
		WithObservability(o), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 3 {
			p.Die()
		}
		return awaitRankFailed(c, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ranks[3].Killed {
		t.Fatal("rank 3 did not die")
	}
	for _, rank := range []int{0, 1, 2, 4} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
	if m.Total(metrics.SwimProbes) == 0 {
		t.Fatal("no probes counted")
	}
	if m.Total(metrics.ControlFrames) == 0 {
		t.Fatal("no control frames counted")
	}
	if m.Total(metrics.Suspicions) == 0 || m.Total(metrics.Confirms) == 0 {
		t.Fatalf("detection pipeline incomplete: suspicions=%d confirms=%d",
			m.Total(metrics.Suspicions), m.Total(metrics.Confirms))
	}
	if m.Total(metrics.FalseSuspicions) != 0 {
		t.Fatalf("%d false suspicions on a quiet fabric", m.Total(metrics.FalseSuspicions))
	}
	if o.Merged(obs.SwimProbeRTT).Count == 0 {
		t.Fatal("probe RTT never observed")
	}
	if o.Merged(obs.SuspicionLatency).Count == 0 {
		t.Fatal("suspicion latency never observed")
	}
	if m.Total(metrics.GossipEvents) == 0 {
		t.Fatal("confirm was never gossiped")
	}
}

// TestSwimGossipConvergenceObserved: with enough ranks, the confirm of a
// death must reach ranks that did not fence it through gossip alone, and
// each first learn lands one sample in the gossip_convergence histogram.
func TestSwimGossipConvergenceObserved(t *testing.T) {
	const n = 8
	m := metrics.NewWorld(n)
	o := obs.NewRegistry(n)
	w, err := NewWorld(n, WithSwim(swimFast()), WithMetrics(m),
		WithObservability(o), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 5 {
			p.Die()
		}
		if err := awaitRankFailed(c, 5); err != nil {
			return err
		}
		// Give gossip a few periods to fan the confirm out everywhere.
		time.Sleep(100 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		if rank == 5 {
			continue
		}
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
	if m.Total(metrics.GossipLearns) == 0 {
		t.Fatal("no rank learned the confirm through gossip")
	}
	if o.Merged(obs.GossipConvergence).Count == 0 {
		t.Fatal("gossip convergence latency never observed")
	}
	if m.Total(metrics.GossipDecodeErrors) != 0 {
		t.Fatalf("%d gossip decode errors on a clean fabric", m.Total(metrics.GossipDecodeErrors))
	}
}

// TestSwimValidateAllWithTreeAgreement runs the full PR stack end to
// end: SWIM membership below, tree agreement above, one injected death.
func TestSwimValidateAllWithTreeAgreement(t *testing.T) {
	const n = 8
	m := metrics.NewWorld(n)
	w, err := NewWorld(n, WithSwim(swimFast()), WithAgreement(AgreementTree),
		WithMetrics(m), WithDeadline(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	res, err := w.Run(func(p *Proc) error {
		c := p.World()
		c.SetErrhandler(ErrorsReturn)
		if p.Rank() == 2 {
			p.Die()
		}
		if err := awaitRankFailed(c, 2); err != nil {
			return err
		}
		cnt, err := c.ValidateAll()
		if err != nil {
			return err
		}
		counts[p.Rank()] = cnt
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("validate_all wedged; stuck ranks %v", res.Stuck)
	}
	for rank := 0; rank < n; rank++ {
		if rank == 2 {
			continue
		}
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
		if counts[rank] != 1 {
			t.Fatalf("rank %d agreed on %d failures, want 1: %v", rank, counts[rank], counts)
		}
	}
}
