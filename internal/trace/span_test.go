package trace

import (
	"math/rand"
	"testing"
)

// genLifecycles builds nmsg synthetic message lifecycles stamped by one
// shared HLC (so the causal order across all events is total and known),
// returning the combined event list and the expected per-token kind
// sequence. Lifecycles mix clean deliveries, retried deliveries, and
// accounted losses, across several ranks.
func genLifecycles(rng *rand.Rand, nmsg int) ([]Event, map[uint64][]Kind) {
	var clock HLC
	var all []Event
	want := make(map[uint64][]Kind, nmsg)
	seq := 0
	emit := func(rank int, k Kind, tok uint64) {
		all = append(all, Event{Seq: seq, Rank: rank, Kind: k,
			Peer: -1, Tag: -1, Iter: -1, Tok: tok, HLC: clock.Now()})
		seq++
	}
	for m := 0; m < nmsg; m++ {
		origin := rng.Intn(4)
		dest := (origin + 1 + rng.Intn(3)) % 4
		tok := uint64(origin)<<tokenBits | uint64(m+1)
		kinds := []Kind{SendPosted}
		for r := rng.Intn(3); r > 0; r-- {
			kinds = append(kinds, FrameRetry)
		}
		if rng.Intn(4) == 0 {
			kinds = append(kinds, ChaosDrop)
		} else {
			kinds = append(kinds, Delivered)
		}
		for i, k := range kinds {
			rank := origin
			if i == len(kinds)-1 && k == Delivered {
				rank = dest
			}
			emit(rank, k, tok)
		}
		want[tok] = kinds
	}
	// Untokened control traffic must be invisible to span assembly.
	emit(0, IterDone, 0)
	emit(1, Confirmed, 0)
	return all, want
}

// TestSpanAssemblyReassemblesRandomInterleavings is the property test of
// span assembly: however the per-rank event streams interleave in the
// recorded log, grouping by token and sorting causally must reconstruct
// each message's original lifecycle exactly.
func TestSpanAssemblyReassemblesRandomInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nmsg := 1 + rng.Intn(8)
		all, want := genLifecycles(rng, nmsg)
		shuffled := append([]Event(nil), all...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		spans := AssembleSpans(shuffled)
		if len(spans) != nmsg {
			t.Fatalf("trial %d: %d spans, want %d", trial, len(spans), nmsg)
		}
		for _, sp := range spans {
			kinds := want[sp.Tok]
			if kinds == nil {
				t.Fatalf("trial %d: span for unknown token %s", trial, FormatTok(sp.Tok))
			}
			if len(sp.Events) != len(kinds) {
				t.Fatalf("trial %d tok %s: %d events, want %d",
					trial, FormatTok(sp.Tok), len(sp.Events), len(kinds))
			}
			for i, e := range sp.Events {
				if e.Kind != kinds[i] {
					t.Fatalf("trial %d tok %s event %d: %v, want %v (order not reconstructed)",
						trial, FormatTok(sp.Tok), i, e.Kind, kinds[i])
				}
			}
		}
	}
}

// TestAuditReconcilesGeneratedLifecycles checks the conservation audit on
// the same generated streams: every send is either delivered or carries
// an accounted loss, so the audit must come back clean — and stripping a
// loss event must surface exactly that token as unaccounted.
func TestAuditReconcilesGeneratedLifecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		all, want := genLifecycles(rng, 1+rng.Intn(8))
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		rep := Audit(all)
		if !rep.Clean() {
			t.Fatalf("trial %d: audit not clean: %d unaccounted, %d orphans",
				trial, len(rep.Unaccounted), len(rep.OrphanDelivers))
		}
		if rep.Sends != len(want) {
			t.Fatalf("trial %d: %d sends audited, want %d", trial, rep.Sends, len(want))
		}

		// Remove one lossy message's loss event: conservation must break
		// for that token and no other.
		victim := uint64(0)
		for tok, kinds := range want {
			if kinds[len(kinds)-1] == ChaosDrop {
				victim = tok
				break
			}
		}
		if victim == 0 {
			continue // all-delivered trial
		}
		var pruned []Event
		for _, e := range all {
			if e.Tok == victim && e.Kind == ChaosDrop {
				continue
			}
			pruned = append(pruned, e)
		}
		rep = Audit(pruned)
		if len(rep.Unaccounted) != 1 || rep.Unaccounted[0] != victim {
			t.Fatalf("trial %d: pruned audit unaccounted=%v, want exactly token %s",
				trial, rep.Unaccounted, FormatTok(victim))
		}
	}
}

// TestCheckCausalFlagsViolations drives the validator with a healthy
// stream, then with the two violation classes it must catch.
func TestCheckCausalFlagsViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all, _ := genLifecycles(rng, 6)
	if v := CheckCausal(all); len(v) != 0 {
		t.Fatalf("healthy stream flagged: %v", v)
	}

	// Duplicate HLC stamp on one rank.
	dup := append([]Event(nil), all...)
	dup = append(dup, Event{Seq: 9000, Rank: all[0].Rank, Kind: Note,
		Peer: -1, Tag: -1, Iter: -1, HLC: all[0].HLC})
	if v := CheckCausal(dup); len(v) == 0 {
		t.Fatal("duplicate per-rank HLC stamp not flagged")
	}

	// A delivery whose token was never sent.
	orphan := append([]Event(nil), all...)
	orphan = append(orphan, Event{Seq: 9001, Rank: 2, Kind: Delivered,
		Peer: -1, Tag: -1, Iter: -1, Tok: uint64(3)<<tokenBits | 999, HLC: ^uint64(0) - 1})
	if v := CheckCausal(orphan); len(v) == 0 {
		t.Fatal("delivery without a send not flagged")
	}
}
