package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndQuery(t *testing.T) {
	r := New(0)
	r.Record(1, SendPosted, 2, 5, 0, "")
	r.Record(2, Killed, -1, -1, -1, "fail-stop")
	r.Record(1, Resend, 3, 5, 0, "")
	if r.Len() != 3 {
		t.Fatalf("len %d", r.Len())
	}
	if r.Count(Resend) != 1 || r.CountBy(1, SendPosted) != 1 || r.CountBy(2, SendPosted) != 0 {
		t.Fatal("counts wrong")
	}
	ev, ok := r.First(Killed)
	if !ok || ev.Rank != 2 || ev.Note != "fail-stop" {
		t.Fatalf("first killed %+v ok=%v", ev, ok)
	}
	if got := len(r.Filter(func(e Event) bool { return e.Rank == 1 })); got != 2 {
		t.Fatalf("filter got %d", got)
	}
}

func TestHappensBefore(t *testing.T) {
	r := New(0)
	r.Record(2, Killed, -1, -1, -1, "")
	r.Record(1, Resend, 3, 1, 2, "")
	kill := func(e Event) bool { return e.Kind == Killed }
	resend := func(e Event) bool { return e.Kind == Resend }
	if !r.HappensBefore(kill, resend) {
		t.Fatal("kill should precede resend")
	}
	if r.HappensBefore(resend, kill) {
		t.Fatal("resend must not precede kill")
	}
	if r.HappensBefore(kill, kill) {
		t.Fatal("single event cannot precede itself")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, Note, -1, -1, -1, "dropped")
	r.Notef(0, "also dropped %d", 1)
	if r.Len() != 0 || r.Events() != nil || r.Count(Note) != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestLimitCapsEvents(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(0, Note, -1, -1, i, "x")
	}
	if r.Len() != 2 {
		t.Fatalf("len %d want 2", r.Len())
	}
}

func TestRenderByRankGroupsLanes(t *testing.T) {
	r := New(0)
	r.Record(1, IterDone, -1, -1, 0, "")
	r.Record(0, IterDone, -1, -1, 0, "")
	out := r.RenderByRank()
	p0 := strings.Index(out, "P0:")
	p1 := strings.Index(out, "P1:")
	if p0 < 0 || p1 < 0 || p0 > p1 {
		t.Fatalf("lanes wrong:\n%s", out)
	}
	if !strings.Contains(r.Render(), "iter-done") {
		t.Fatalf("render missing kind name:\n%s", r.Render())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(g, SendPosted, 0, 0, i, "")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len %d want 800", r.Len())
	}
	// Sequence numbers must be unique and dense.
	seen := make(map[int]bool)
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestKindNames(t *testing.T) {
	for k := SendPosted; k <= Note; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d missing name", int(k))
		}
	}
}
