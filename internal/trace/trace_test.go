package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRecordAndQuery(t *testing.T) {
	r := New(0)
	r.Record(1, SendPosted, 2, 5, 0, "")
	r.Record(2, Killed, -1, -1, -1, "fail-stop")
	r.Record(1, Resend, 3, 5, 0, "")
	if r.Len() != 3 {
		t.Fatalf("len %d", r.Len())
	}
	if r.Count(Resend) != 1 || r.CountBy(1, SendPosted) != 1 || r.CountBy(2, SendPosted) != 0 {
		t.Fatal("counts wrong")
	}
	ev, ok := r.First(Killed)
	if !ok || ev.Rank != 2 || ev.Note != "fail-stop" {
		t.Fatalf("first killed %+v ok=%v", ev, ok)
	}
	if got := len(r.Filter(func(e Event) bool { return e.Rank == 1 })); got != 2 {
		t.Fatalf("filter got %d", got)
	}
}

func TestHappensBefore(t *testing.T) {
	r := New(0)
	r.Record(2, Killed, -1, -1, -1, "")
	r.Record(1, Resend, 3, 1, 2, "")
	kill := func(e Event) bool { return e.Kind == Killed }
	resend := func(e Event) bool { return e.Kind == Resend }
	if !r.HappensBefore(kill, resend) {
		t.Fatal("kill should precede resend")
	}
	if r.HappensBefore(resend, kill) {
		t.Fatal("resend must not precede kill")
	}
	if r.HappensBefore(kill, kill) {
		t.Fatal("single event cannot precede itself")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, Note, -1, -1, -1, "dropped")
	r.Notef(0, "also dropped %d", 1)
	if r.Len() != 0 || r.Events() != nil || r.Count(Note) != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestLimitCapsEvents(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(0, Note, -1, -1, i, "x")
	}
	if r.Len() != 2 {
		t.Fatalf("len %d want 2", r.Len())
	}
}

func TestRenderByRankGroupsLanes(t *testing.T) {
	r := New(0)
	r.Record(1, IterDone, -1, -1, 0, "")
	r.Record(0, IterDone, -1, -1, 0, "")
	out := r.RenderByRank()
	p0 := strings.Index(out, "P0:")
	p1 := strings.Index(out, "P1:")
	if p0 < 0 || p1 < 0 || p0 > p1 {
		t.Fatalf("lanes wrong:\n%s", out)
	}
	if !strings.Contains(r.Render(), "iter-done") {
		t.Fatalf("render missing kind name:\n%s", r.Render())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(g, SendPosted, 0, 0, i, "")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len %d want 800", r.Len())
	}
	// Sequence numbers must be unique and dense.
	seen := make(map[int]bool)
	for _, e := range r.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestKindNames(t *testing.T) {
	for k := SendPosted; k <= Note; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d missing name", int(k))
		}
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
}

func TestFlightRecorderKeepsNewest(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Record(0, Note, -1, -1, i, "x")
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len %d want 3", len(evs))
	}
	for i, e := range evs {
		if want := 7 + i; e.Iter != want {
			t.Fatalf("event %d iter %d, want %d (ring must keep newest)", i, e.Iter, want)
		}
	}
	if r.Truncated() != 7 {
		t.Fatalf("truncated %d want 7", r.Truncated())
	}
	if r.Recorded() != 10 {
		t.Fatalf("recorded %d want 10", r.Recorded())
	}
	// Tallies and First cover ALL recorded events, including evicted ones.
	if r.Count(Note) != 10 || r.CountBy(0, Note) != 10 {
		t.Fatalf("counts must include evicted events: %d / %d", r.Count(Note), r.CountBy(0, Note))
	}
	if first, ok := r.First(Note); !ok || first.Iter != 0 {
		t.Fatalf("First must report the earliest recorded event, got %+v ok=%v", first, ok)
	}
}

func TestFlightRecorderShardCapsSumToLimit(t *testing.T) {
	const limit = 1000
	r := New(limit)
	for i := 0; i < 4*limit; i++ {
		r.Record(i%8, SendPosted, -1, -1, i, "")
	}
	if r.Len() != limit {
		t.Fatalf("len %d want %d", r.Len(), limit)
	}
	if got := r.Truncated(); got != 3*limit {
		t.Fatalf("truncated %d want %d", got, 3*limit)
	}
}

func TestSinkStreamsEvents(t *testing.T) {
	r := New(2) // tiny ring: the sink must still see every event
	var mu sync.Mutex
	var got []Event
	r.SetSink(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		r.Record(0, IterDone, -1, -1, i, "")
	}
	r.SetSink(nil)
	r.Record(0, IterDone, -1, -1, 99, "after detach")
	if len(got) != 5 {
		t.Fatalf("sink saw %d events, want 5", len(got))
	}
	for i, e := range got {
		if e.Iter != i {
			t.Fatalf("sink event %d iter %d", i, e.Iter)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(0)
	r.Record(0, SendPosted, 1, 7, 3, "")
	r.Record(1, Killed, -1, -1, -1, "fail-stop")
	r.Notef(2, "checkpoint %d", 9)

	var buf strings.Builder
	w := NewJSONLWriter(&noopCloser{&buf})
	r.SetSink(w.Sink())
	for _, e := range r.Events() {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Events()
	if len(back) != len(orig) {
		t.Fatalf("round-trip %d events, want %d", len(back), len(orig))
	}
	for i := range back {
		if back[i].Seq != orig[i].Seq || back[i].Kind != orig[i].Kind ||
			back[i].Rank != orig[i].Rank || back[i].Note != orig[i].Note {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, back[i], orig[i])
		}
		if !back[i].At.Equal(orig[i].At) {
			t.Fatalf("event %d timestamp mismatch: %v vs %v", i, back[i].At, orig[i].At)
		}
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"no-such-kind"}`)); err == nil {
		t.Fatal("unknown kind must fail to decode")
	}
}

type noopCloser struct{ *strings.Builder }

func (n *noopCloser) Close() error { return nil }

func TestChromeTraceOneLanePerIncarnation(t *testing.T) {
	r := New(0)
	r.Record(0, SendPosted, 1, 0, 0, "")
	r.Record(1, RecvCompleted, 0, 0, 0, "")
	r.Record(2, Killed, -1, -1, -1, "")
	// A respawned incarnation of rank 2 must get its own labelled lane.
	r.RecordMsg(2, Respawned, -1, -1, -1, 2, 0, 0, "generation 2")
	b, err := ChromeTrace(r.Events())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome output does not parse: %v", err)
	}
	lanes := map[float64]string{}
	instants := 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				lanes[ev["tid"].(float64)] = ev["args"].(map[string]any)["name"].(string)
			}
		case "i":
			instants++
		}
	}
	for rank := 0; rank < 3; rank++ {
		tid := float64(chromeTID(rank, 1))
		if want := fmt.Sprintf("rank %d", rank); lanes[tid] != want {
			t.Fatalf("lane %v = %q want %q; lanes=%v", tid, lanes[tid], want, lanes)
		}
	}
	if tid := float64(chromeTID(2, 2)); lanes[tid] != "rank 2 gen 2" {
		t.Fatalf("gen-2 lane %v = %q want %q; lanes=%v", tid, lanes[tid], "rank 2 gen 2", lanes)
	}
	if instants != 4 {
		t.Fatalf("instant events %d want 4", instants)
	}
}
