package trace

import (
	"sync/atomic"
	"testing"
)

// The benchmarks model the hot path the observability layer creates:
// every rank's goroutine records events while a live exposition endpoint
// (/metrics, expvar) periodically polls Count. The old single-mutex
// recorder pays twice there — all ranks convoy on one lock, and every
// Count copies the entire event log under it — so its record throughput
// collapses as the log grows. The sharded flight recorder keeps counts
// incrementally and scans nothing.

// pollEvery is how many records each goroutine performs per Count poll —
// roughly one scrape per screenful of events, far gentler than a real
// 1Hz Prometheus scrape against a µs-scale record path.
const pollEvery = 512

func BenchmarkRecorderSharded(b *testing.B) {
	r := New(0)
	var rank atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(rank.Add(1)) - 1
		i := 0
		for pb.Next() {
			r.Record(me, SendPosted, (me+1)%8, 0, i, "")
			i++
			if i%pollEvery == 0 {
				_ = r.Count(SendPosted)
			}
		}
	})
	if r.Len() != b.N {
		b.Fatalf("recorded %d events, want %d", r.Len(), b.N)
	}
}

func BenchmarkRecorderMutex(b *testing.B) {
	r := newMutexRecorder(0)
	var rank atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(rank.Add(1)) - 1
		i := 0
		for pb.Next() {
			r.Record(me, SendPosted, (me+1)%8, 0, i, "")
			i++
			if i%pollEvery == 0 {
				_ = r.Count(SendPosted)
			}
		}
	})
	if r.Len() != b.N {
		b.Fatalf("recorded %d events, want %d", r.Len(), b.N)
	}
}

// Record-only variants isolate the raw record path with no reader.

func BenchmarkRecordOnlySharded(b *testing.B) {
	r := New(0)
	var rank atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(rank.Add(1)) - 1
		for pb.Next() {
			r.Record(me, SendPosted, (me+1)%8, 0, 1, "")
		}
	})
}

func BenchmarkRecordOnlyMutex(b *testing.B) {
	r := newMutexRecorder(0)
	var rank atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(rank.Add(1)) - 1
		for pb.Next() {
			r.Record(me, SendPosted, (me+1)%8, 0, 1, "")
		}
	})
}

// Flight-recorder mode: bounded ring under concurrent load.

func BenchmarkRecordOnlyShardedBounded(b *testing.B) {
	r := New(4096)
	var rank atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		me := int(rank.Add(1)) - 1
		for pb.Next() {
			r.Record(me, SendPosted, (me+1)%8, 0, 1, "")
		}
	})
}
