package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Chrome trace-event conversion: one lane per rank INCARNATION, viewable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Every trace event
// becomes an instant event ("ph":"i") on the thread whose tid encodes
// (rank, generation), so an elastic world's dead incarnation and its
// replacement — or a replicated slot's successive occupants — render as
// separate labelled lanes instead of being merged into one.

// chromeGenLanes bounds the generations given distinct lanes per rank;
// generations at or above the bound share the last lane (tid arithmetic
// must stay collision-free across ranks).
const chromeGenLanes = 32

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object flavour of the format, which lets
// viewers show displayTimeUnit and tolerates trailing metadata.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps a (rank, generation) pair to a stable thread id. Events
// recorded without a generation stamp (Gen 0, i.e. world-level observers)
// land on the rank's first-generation lane.
func chromeTID(rank, gen int) int {
	if gen <= 1 {
		gen = 1
	}
	if gen >= chromeGenLanes {
		gen = chromeGenLanes - 1
	}
	return rank*chromeGenLanes + (gen - 1)
}

// ChromeTrace converts recorded events to Chrome trace-event JSON. Events
// are sorted by Seq; timestamps are microseconds relative to the earliest
// event (events without wall-clock timestamps fall back to Seq-as-µs so
// ordering survives). Thread-name metadata labels each incarnation's
// lane: "rank 3" for the first generation, "rank 3 gen 2" for its elastic
// replacement.
func ChromeTrace(events []Event) ([]byte, error) {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	var baseNS int64
	haveBase := false
	lanes := map[int][2]int{} // tid -> (rank, gen)
	for _, e := range sorted {
		tid := chromeTID(e.Rank, e.Gen)
		gen := e.Gen
		if gen <= 1 {
			gen = 1
		}
		if cur, ok := lanes[tid]; !ok || gen > cur[1] {
			lanes[tid] = [2]int{e.Rank, gen}
		}
		if !e.At.IsZero() && (!haveBase || e.At.UnixNano() < baseNS) {
			baseNS = e.At.UnixNano()
			haveBase = true
		}
	}

	tidList := make([]int, 0, len(lanes))
	for tid := range lanes {
		tidList = append(tidList, tid)
	}
	sort.Ints(tidList)

	out := chromeTraceFile{
		TraceEvents:     make([]chromeEvent, 0, len(sorted)+len(tidList)+1),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "ftmpi ring"},
	})
	for _, tid := range tidList {
		rank, gen := lanes[tid][0], lanes[tid][1]
		name := fmt.Sprintf("rank %d", rank)
		if gen > 1 {
			name = fmt.Sprintf("rank %d gen %d", rank, gen)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range sorted {
		ts := float64(e.Seq) // fallback: 1 µs per Seq step keeps order visible
		if haveBase && !e.At.IsZero() {
			ts = float64(e.At.UnixNano()-baseNS) / 1e3
		}
		args := map[string]any{"seq": e.Seq}
		if e.Peer >= 0 {
			args["peer"] = e.Peer
		}
		if e.Tag >= 0 {
			args["tag"] = e.Tag
		}
		if e.Iter >= 0 {
			args["iter"] = e.Iter
		}
		if e.Gen > 0 {
			args["gen"] = e.Gen
		}
		if e.Tok != 0 {
			args["tok"] = FormatTok(e.Tok)
		}
		if e.HLC != 0 {
			args["hlc"] = e.HLC
		}
		if e.Note != "" {
			args["note"] = e.Note
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Phase: "i", TS: ts, PID: 0, TID: chromeTID(e.Rank, e.Gen),
			Scope: "t", Cat: category(e.Kind), Args: args,
		})
	}
	return json.MarshalIndent(out, "", " ")
}

// category groups kinds into Chrome trace categories for viewer filtering.
func category(k Kind) string {
	switch k {
	case ChaosDrop, ChaosDup, ChaosCorrupt, ChaosDelay, ChaosReorder, ChaosPartition:
		return "chaos"
	case FrameRetry, FrameReject, FrameDedup, LinkEscalated:
		return "reliable"
	case StaleGenDrop, DeadDrop, ReplicaDedup, FramePurged:
		return "loss"
	case Killed, OpFailed, Elected, ValidateDone:
		return "failure"
	case TermSent, TermRecv, IterDone:
		return "protocol"
	default:
		return "comm"
	}
}
