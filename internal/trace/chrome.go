package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Chrome trace-event conversion: one lane per rank, viewable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Every trace event becomes an
// instant event ("ph":"i") on the thread whose tid is the rank, so the
// viewer renders the same per-process lanes as the paper's figures.

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object flavour of the format, which lets
// viewers show displayTimeUnit and tolerates trailing metadata.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace converts recorded events to Chrome trace-event JSON. Events
// are sorted by Seq; timestamps are microseconds relative to the earliest
// event (events without wall-clock timestamps fall back to Seq-as-µs so
// ordering survives). Thread-name metadata gives each rank a labelled
// lane.
func ChromeTrace(events []Event) ([]byte, error) {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	var baseNS int64
	haveBase := false
	ranks := map[int]bool{}
	for _, e := range sorted {
		ranks[e.Rank] = true
		if !e.At.IsZero() && (!haveBase || e.At.UnixNano() < baseNS) {
			baseNS = e.At.UnixNano()
			haveBase = true
		}
	}

	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)

	out := chromeTraceFile{
		TraceEvents:     make([]chromeEvent, 0, len(sorted)+len(rankList)+1),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "ftmpi ring"},
	})
	for _, r := range rankList {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, e := range sorted {
		ts := float64(e.Seq) // fallback: 1 µs per Seq step keeps order visible
		if haveBase && !e.At.IsZero() {
			ts = float64(e.At.UnixNano()-baseNS) / 1e3
		}
		args := map[string]any{"seq": e.Seq}
		if e.Peer >= 0 {
			args["peer"] = e.Peer
		}
		if e.Tag >= 0 {
			args["tag"] = e.Tag
		}
		if e.Iter >= 0 {
			args["iter"] = e.Iter
		}
		if e.Note != "" {
			args["note"] = e.Note
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Phase: "i", TS: ts, PID: 0, TID: e.Rank,
			Scope: "t", Cat: category(e.Kind), Args: args,
		})
	}
	return json.MarshalIndent(out, "", " ")
}

// category groups kinds into Chrome trace categories for viewer filtering.
func category(k Kind) string {
	switch k {
	case ChaosDrop, ChaosDup, ChaosCorrupt, ChaosDelay, ChaosReorder, ChaosPartition:
		return "chaos"
	case FrameRetry, FrameReject, FrameDedup, LinkEscalated:
		return "reliable"
	case Killed, OpFailed, Elected, ValidateDone:
		return "failure"
	case TermSent, TermRecv, IterDone:
		return "protocol"
	default:
		return "comm"
	}
}
