package trace

import (
	"sync"
	"testing"
	"time"
)

func TestHLCNowStrictlyIncreases(t *testing.T) {
	var c HLC
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		cur := c.Now()
		if cur <= prev {
			t.Fatalf("Now not strictly increasing: %d after %d", cur, prev)
		}
		prev = cur
	}
}

func TestHLCObserveDominatesBothClocks(t *testing.T) {
	var c HLC
	local := c.Now()
	// A remote clock running far ahead of physical time: the merge must
	// land strictly after it, and the local clock must stay there.
	remote := (uint64(time.Now().Add(time.Hour).UnixMicro()) << hlcLogicalBits) | 7
	got := c.Observe(remote)
	if got <= remote || got <= local {
		t.Fatalf("Observe(%d) = %d, not strictly after remote and local %d", remote, got, local)
	}
	if n := c.Now(); n <= got {
		t.Fatalf("Now()=%d regressed below the merged stamp %d", n, got)
	}
	// A zero remote stamp (unstamped traffic) still advances.
	if z := c.Observe(0); z <= got {
		t.Fatalf("Observe(0)=%d did not advance past %d", z, got)
	}
}

func TestHLCNilIsInert(t *testing.T) {
	var c *HLC
	if c.Now() != 0 || c.Observe(42) != 0 {
		t.Fatal("nil clock must return 0")
	}
}

func TestHLCConcurrentStampsUnique(t *testing.T) {
	var c HLC
	const goroutines, per = 8, 2000
	out := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stamps := make([]uint64, per)
			for i := range stamps {
				stamps[i] = c.Now()
			}
			out[g] = stamps
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*per)
	for g, stamps := range out {
		prev := uint64(0)
		for i, s := range stamps {
			if s <= prev {
				t.Fatalf("goroutine %d stamp %d: %d not above previous %d", g, i, s, prev)
			}
			prev = s
			if seen[s] {
				t.Fatalf("duplicate stamp %d across goroutines", s)
			}
			seen[s] = true
		}
	}
}

func TestHLCFieldHelpers(t *testing.T) {
	phys := int64(1_700_000_000_000_000) // µs
	ts := uint64(phys)<<hlcLogicalBits | 9
	if HLCPhysical(ts) != phys {
		t.Fatalf("physical %d want %d", HLCPhysical(ts), phys)
	}
	if HLCLogical(ts) != 9 {
		t.Fatalf("logical %d want 9", HLCLogical(ts))
	}
	if !HLCTime(ts).Equal(time.UnixMicro(phys)) {
		t.Fatalf("time %v want %v", HLCTime(ts), time.UnixMicro(phys))
	}
}
