package trace

import (
	"sync"
	"time"
)

// mutexRecorder is the pre-sharding recorder, reproduced verbatim from the
// old implementation: one world-wide mutex, a single append slice, and
// accessors that copy the whole event log per query. It is kept
// (unexported) solely as the baseline for BenchmarkRecorder*, which
// documents the speedup of the sharded flight recorder once a live
// exposition endpoint polls counters while ranks record.
type mutexRecorder struct {
	mu     sync.Mutex
	events []Event
	seq    int
	limit  int
}

func newMutexRecorder(limit int) *mutexRecorder {
	return &mutexRecorder{limit: limit}
}

func (r *mutexRecorder) Record(rank int, kind Kind, peer, tag, iter int, note string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{
		Seq: r.seq, At: time.Now(), Rank: rank, Kind: kind, Peer: peer, Tag: tag, Iter: iter, Note: note,
	})
	r.seq++
}

// Events copies the whole log under the lock — the old accessor shape.
func (r *mutexRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count scans a fresh copy of the log, exactly as the old Count did.
func (r *mutexRecorder) Count(kind Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func (r *mutexRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
