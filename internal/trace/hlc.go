package trace

import (
	"sync/atomic"
	"time"
)

// Hybrid Logical Clock (Kulkarni et al., "Logical Physical Clocks"): a
// 64-bit timestamp that is close to physical time yet respects causality
// across ranks. The high 52 bits carry physical microseconds since the
// Unix epoch; the low 12 bits are a logical counter that breaks ties when
// events happen inside one microsecond or when a remote clock runs ahead.
//
// Two properties the forensics layer builds on:
//
//   - per-clock monotonicity: successive Now/Observe calls on one clock
//     strictly increase, so a rank's timeline is totally ordered even when
//     the OS clock stalls or steps backwards;
//   - causal ordering: Observe(remote) returns a timestamp strictly
//     greater than the remote stamp, so send happens-before deliver holds
//     numerically across ranks without synchronized clocks.
//
// A world keeps one HLC per SLOT (not per incarnation): a respawned rank
// inherits its predecessor's clock, so per-rank monotonicity survives
// elastic repair and traceconv -check can assert it unconditionally.
const hlcLogicalBits = 12

// HLC is one hybrid logical clock. The zero value is ready to use. A nil
// *HLC is valid and returns 0 from every method, so stamping can be
// disabled without branching at call sites.
type HLC struct {
	state atomic.Uint64
}

// HLCPhysical extracts the physical component (microseconds since the
// Unix epoch) of an HLC timestamp.
func HLCPhysical(ts uint64) int64 { return int64(ts >> hlcLogicalBits) }

// HLCLogical extracts the logical tie-break counter of an HLC timestamp.
func HLCLogical(ts uint64) uint64 { return ts & (1<<hlcLogicalBits - 1) }

// HLCTime converts an HLC timestamp's physical component to wall time.
func HLCTime(ts uint64) time.Time { return time.UnixMicro(HLCPhysical(ts)) }

// wall returns physical now in the HLC's shifted representation.
func hlcWall() uint64 { return uint64(time.Now().UnixMicro()) << hlcLogicalBits }

// Now advances the clock for a local event (a send) and returns the new
// timestamp.
func (c *HLC) Now() uint64 {
	if c == nil {
		return 0
	}
	for {
		cur := c.state.Load()
		next := hlcWall()
		if next <= cur {
			next = cur + 1 // clock stalled or behind: bump the logical part
		}
		if c.state.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Observe merges a remote timestamp (a received frame's stamp) into the
// clock and returns the new local timestamp, strictly greater than both
// the remote stamp and every previous local stamp. A zero remote stamp
// (unstamped traffic) degrades to Now.
func (c *HLC) Observe(remote uint64) uint64 {
	if c == nil {
		return 0
	}
	for {
		cur := c.state.Load()
		next := hlcWall()
		if next <= cur {
			next = cur
		}
		if next <= remote {
			next = remote
		}
		next++ // strictly after both predecessors
		if c.state.CompareAndSwap(cur, next) {
			return next
		}
	}
}
