package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// jsonEvent is the JSONL wire form of an Event. Kind travels by name so
// the stream stays readable and stable across kind-enum reordering.
type jsonEvent struct {
	Seq  int    `json:"seq"`
	At   int64  `json:"at_ns"` // UnixNano; 0 when the event carried no timestamp
	Rank int    `json:"rank"`
	Kind string `json:"kind"`
	Peer int    `json:"peer,omitempty"`
	Tag  int    `json:"tag,omitempty"`
	Iter int    `json:"iter,omitempty"`
	Gen  int    `json:"gen,omitempty"`
	Tok  uint64 `json:"tok,omitempty"`
	HLC  uint64 `json:"hlc,omitempty"`
	Note string `json:"note,omitempty"`
}

// MarshalJSON encodes the event in its JSONL wire form.
func (e Event) MarshalJSON() ([]byte, error) {
	je := jsonEvent{
		Seq: e.Seq, Rank: e.Rank, Kind: e.Kind.String(),
		Peer: e.Peer, Tag: e.Tag, Iter: e.Iter,
		Gen: e.Gen, Tok: e.Tok, HLC: e.HLC, Note: e.Note,
	}
	if !e.At.IsZero() {
		je.At = e.At.UnixNano()
	}
	return json.Marshal(je)
}

// UnmarshalJSON decodes the JSONL wire form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return err
	}
	k, ok := ParseKind(je.Kind)
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", je.Kind)
	}
	*e = Event{Seq: je.Seq, Rank: je.Rank, Kind: k, Peer: je.Peer, Tag: je.Tag, Iter: je.Iter,
		Gen: je.Gen, Tok: je.Tok, HLC: je.HLC, Note: je.Note}
	if je.At != 0 {
		e.At = time.Unix(0, je.At)
	}
	return nil
}

// JSONLWriter streams events as one JSON object per line. It is safe for
// concurrent use as a Recorder sink; writes are buffered, so Close (or
// Flush) must be called to drain the tail.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		jw.c = c
	}
	return jw
}

// Write emits one event line. The first error is sticky and returned by
// every subsequent call and by Close.
func (w *JSONLWriter) Write(e Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	b, err := json.Marshal(e)
	if err == nil {
		_, err = w.bw.Write(b)
	}
	if err == nil {
		err = w.bw.WriteByte('\n')
	}
	w.err = err
	return err
}

// Sink adapts the writer to Recorder.SetSink, dropping write errors (the
// first error is still reported by Close).
func (w *JSONLWriter) Sink() func(Event) {
	return func(e Event) { _ = w.Write(e) }
}

// Flush drains buffered lines.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Close flushes and closes the underlying writer (when it is a Closer).
func (w *JSONLWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	ferr := w.err
	if ferr == nil {
		ferr = w.bw.Flush()
		w.err = ferr
	}
	if w.c != nil {
		if cerr := w.c.Close(); ferr == nil {
			ferr = cerr
		}
		w.c = nil
	}
	return ferr
}

// ReadJSONL decodes an event stream written by JSONLWriter. Blank lines
// are skipped; any malformed line aborts with an error naming its number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl read: %w", err)
	}
	return out, nil
}
