// Package trace records the communication-level events of a run so that
// the paper's failure-scenario figures (Figs. 6, 7, 8 and 10) can be
// reproduced and *verified* rather than merely narrated. The fault
// injector, the MPI engine, and the ring application all emit events; the
// scenario tests then assert on the recorded sequences (e.g. "rank 1
// resent the iteration-2 buffer to rank 3 after rank 2 failed", or "rank 3
// never forwarded a duplicate").
//
// The recorder is built to stay enabled under benchmark load: events land
// in per-shard append buffers (sharded by rank) behind per-shard locks,
// per-kind and per-(rank,kind) tallies are maintained incrementally so
// Count/CountBy/First never copy the event log, and bounded recorders run
// in flight-recorder mode — a ring that keeps the NEWEST events, because
// when something goes wrong it is the failure tail, not the warm-up, that
// explains it. Events can additionally be streamed to a sink (SetSink)
// for JSONL export and Chrome-trace conversion (cmd/traceconv).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a recorded event.
type Kind int

const (
	// SendPosted is a send handed to the fabric.
	SendPosted Kind = iota
	// RecvPosted is a receive posted to the matching engine.
	RecvPosted
	// RecvCompleted is a receive that matched and completed successfully.
	RecvCompleted
	// OpFailed is any operation that returned an error (e.g. rank-fail-stop).
	OpFailed
	// Killed marks a rank's fail-stop death.
	Killed
	// Resend marks an application-level retransmission (Fig. 7).
	Resend
	// DupDropped marks a duplicate suppressed by the iteration marker (Fig. 10).
	DupDropped
	// DupForwarded marks a duplicate forwarded because markers were
	// disabled — the Fig. 8 failure mode.
	DupForwarded
	// IterDone marks a rank completing one ring iteration.
	IterDone
	// Elected marks a rank discovering a new root (Fig. 12 outcome).
	Elected
	// TermSent and TermRecv bracket termination-detection messages (Fig. 11).
	TermSent
	// TermRecv marks termination notification receipt.
	TermRecv
	// ValidateDone marks completion of MPI_Comm_validate_all (Fig. 13).
	ValidateDone
	// ChaosDrop marks a frame dropped by the chaos fabric.
	ChaosDrop
	// ChaosDup marks a frame duplicated by the chaos fabric.
	ChaosDup
	// ChaosCorrupt marks a payload bit-flipped by the chaos fabric.
	ChaosCorrupt
	// ChaosDelay marks a frame held for delay jitter by the chaos fabric.
	ChaosDelay
	// ChaosReorder marks a frame delivered out of order by the chaos fabric.
	ChaosReorder
	// ChaosPartition marks a frame eaten by a scheduled link partition.
	ChaosPartition
	// FrameRetry marks a reliability-sublayer retransmission.
	FrameRetry
	// FrameReject marks a frame rejected for an end-to-end CRC mismatch.
	FrameReject
	// FrameDedup marks a duplicate frame suppressed by sequence tracking.
	FrameDedup
	// LinkEscalated marks a peer demoted to fail-stop after retry exhaustion.
	LinkEscalated
	// Suspected marks a heartbeat monitor raising suspicion of a peer.
	Suspected
	// SuspectCleared marks a suspicion withdrawn (a heartbeat arrived).
	SuspectCleared
	// FenceSent marks a fence notice ordered at a suspected peer.
	FenceSent
	// SelfFenced marks a rank fencing itself (heartbeat acks stale).
	SelfFenced
	// Confirmed marks a suspected peer confirmed dead (fence ack or
	// ground truth), releasing the failure notification.
	Confirmed
	// ProbeTimeout marks a SWIM probe transaction expiring unanswered
	// (direct and indirect probes both failed; the target is suspected).
	ProbeTimeout
	// Refuted marks a rank bumping its incarnation to refute a gossiped
	// suspicion of itself.
	Refuted
	// StaleGenDrop marks a frame rejected by the engine's generation
	// fence: stamped for (or by) a dead incarnation of its slot.
	StaleGenDrop
	// Respawned marks a dead slot reincarnated at a new generation.
	Respawned
	// ShrinkDone marks a completed Comm.Shrink on the recording rank.
	ShrinkDone
	// Promoted marks a standby replica taking over as primary of its
	// logical rank after the previous primary died (replication mode).
	Promoted
	// Delivered marks a data message completing a receive on the
	// destination rank (matched against a posted or later-arriving
	// receive). Together with SendPosted and the accounted-loss kinds it
	// is one side of the conservation audit: every tokened send must end
	// in a Delivered or an accounted loss.
	Delivered
	// DeadDrop marks a frame vanishing at a dead or closed destination
	// engine — the fail-stop analogue of mail to a dead letterbox.
	DeadDrop
	// ReplicaDedup marks a replication fan-out duplicate suppressed by
	// the logical-channel sequence (RepSeq) below the matching layer.
	ReplicaDedup
	// FramePurged marks an inflight frame abandoned by the reliability
	// sublayer when its link was torn down (peer death, peer reset, or
	// fabric close) — an accounted loss, not a silent one.
	FramePurged
	// Note is a free-form annotation.
	Note
)

// numKinds bounds the dense per-kind tally arrays. Note is the last kind.
const numKinds = int(Note) + 1

var kindNames = map[Kind]string{
	SendPosted:     "send",
	RecvPosted:     "recv-post",
	RecvCompleted:  "recv",
	OpFailed:       "op-failed",
	Killed:         "killed",
	Resend:         "resend",
	DupDropped:     "dup-dropped",
	DupForwarded:   "dup-forwarded",
	IterDone:       "iter-done",
	Elected:        "elected",
	TermSent:       "term-sent",
	TermRecv:       "term-recv",
	ValidateDone:   "validate-done",
	ChaosDrop:      "chaos-drop",
	ChaosDup:       "chaos-dup",
	ChaosCorrupt:   "chaos-corrupt",
	ChaosDelay:     "chaos-delay",
	ChaosReorder:   "chaos-reorder",
	ChaosPartition: "chaos-partition",
	FrameRetry:     "frame-retry",
	FrameReject:    "frame-reject",
	FrameDedup:     "frame-dedup",
	LinkEscalated:  "link-escalated",
	Suspected:      "suspect",
	SuspectCleared: "suspect-clear",
	FenceSent:      "fence",
	SelfFenced:     "self-fence",
	Confirmed:      "confirm",
	ProbeTimeout:   "probe-timeout",
	Refuted:        "refuted",
	StaleGenDrop:   "stale-gen-drop",
	Respawned:      "respawned",
	ShrinkDone:     "shrink-done",
	Promoted:       "promoted",
	Delivered:      "delivered",
	DeadDrop:       "dead-drop",
	ReplicaDedup:   "replica-dedup",
	FramePurged:    "frame-purged",
	Note:           "note",
}

// kindByName is the reverse of kindNames, for JSONL decoding.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, s := range kindNames {
		m[s] = k
	}
	return m
}()

// String returns the event-kind name used in rendered timelines.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a rendered kind name back to its Kind.
func ParseKind(s string) (Kind, bool) {
	k, ok := kindByName[s]
	return k, ok
}

// Event is one recorded occurrence. Peer is the other rank involved (-1
// when not applicable); Iter is the ring iteration marker (-1 when not
// applicable).
//
// Gen, Tok and HLC are the causal-tracing fields (zero when not
// applicable): Gen is the recording rank's incarnation, Tok the message
// identity shared by every event touching one data message on any rank
// (transport.Packet.Token layout: origin rank << 48 | per-origin seq),
// and HLC the hybrid-logical-clock stamp ordering events causally across
// ranks (see HLC).
type Event struct {
	Seq  int
	At   time.Time
	Rank int
	Kind Kind
	Peer int
	Tag  int
	Iter int
	Gen  int
	Tok  uint64
	HLC  uint64
	Note string
}

// String renders one event in the compact timeline form.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%04d r%d %-13s", e.Seq, e.Rank, e.Kind)
	if e.Peer >= 0 {
		fmt.Fprintf(&b, " peer=%d", e.Peer)
	}
	if e.Iter >= 0 {
		fmt.Fprintf(&b, " iter=%d", e.Iter)
	}
	if e.Tok != 0 {
		// Token layout: origin rank << 48 | per-origin sequence.
		fmt.Fprintf(&b, " tok=%d.%d", e.Tok>>48, e.Tok&(1<<48-1))
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " %s", e.Note)
	}
	return b.String()
}

// Sharding. Events are bucketed by rank: each rank records from its own
// goroutine (plus the delivery goroutine of its fabric), so rank-sharding
// turns the old world-wide lock convoy into mostly-uncontended per-shard
// locks. Bounded recorders use fewer shards so that small limits keep
// exact ring semantics within a shard.
const (
	maxShards         = 8
	minEventsPerShard = 64
)

// shard is one append buffer plus its incremental tallies. In bounded
// mode events is a ring of capacity cap: start is the read head, and the
// newest capacity events are retained (per-shard recency, like a per-CPU
// flight-recorder ring).
type shard struct {
	mu       sync.Mutex
	events   []Event
	start    int
	capacity int // ring capacity; 0 = unbounded append

	kindCounts [numKinds]int64
	rankKinds  map[int64]int64 // rank*numKinds + kind -> count (in-range kinds)
	extra      map[[2]int]int64
}

// put stores one event, evicting the oldest when the ring is full.
// Returns true when an event was evicted. Caller holds mu.
func (s *shard) put(e Event) bool {
	if s.capacity <= 0 || len(s.events) < s.capacity {
		s.events = append(s.events, e)
		return false
	}
	s.events[s.start] = e
	s.start = (s.start + 1) % s.capacity
	return true
}

// each iterates the retained events oldest-first. Caller holds mu.
func (s *shard) each(fn func(Event)) {
	for i := s.start; i < len(s.events); i++ {
		fn(s.events[i])
	}
	for i := 0; i < s.start; i++ {
		fn(s.events[i])
	}
}

// tally bumps the incremental counters. Caller holds mu.
func (s *shard) tally(rank int, kind Kind) {
	if kind >= 0 && int(kind) < numKinds {
		s.kindCounts[kind]++
		if s.rankKinds == nil {
			s.rankKinds = make(map[int64]int64, 8)
		}
		s.rankKinds[int64(rank)*int64(numKinds)+int64(kind)]++
		return
	}
	if s.extra == nil {
		s.extra = make(map[[2]int]int64, 2)
	}
	s.extra[[2]int{rank, int(kind)}]++
}

// Recorder accumulates events. The zero value is unusable; use New. A nil
// *Recorder is valid everywhere and records nothing, so tracing can be
// disabled without branching at every call site.
type Recorder struct {
	limit  int
	shards []shard

	seq       atomic.Int64
	truncated atomic.Int64
	firsts    [numKinds]atomic.Pointer[Event]
	sink      atomic.Pointer[func(Event)]
}

// New creates a recorder. limit 0 means unbounded; limit > 0 selects
// flight-recorder mode: the newest events are retained (per shard),
// evicted events are tallied in Truncated, and the incremental counters
// (Count, CountBy, First, Len-independent tallies) keep covering ALL
// recorded events — exactly what a post-mortem needs after a long soak.
func New(limit int) *Recorder {
	nShards := maxShards
	if limit > 0 {
		nShards = limit / minEventsPerShard
		if nShards < 1 {
			nShards = 1
		}
		if nShards > maxShards {
			nShards = maxShards
		}
	}
	r := &Recorder{limit: limit, shards: make([]shard, nShards)}
	if limit > 0 {
		base, rem := limit/nShards, limit%nShards
		for i := range r.shards {
			r.shards[i].capacity = base
			if i < rem {
				r.shards[i].capacity++
			}
		}
	}
	return r
}

// shardFor picks the shard for a rank.
func (r *Recorder) shardFor(rank int) *shard {
	n := len(r.shards)
	idx := rank % n
	if idx < 0 {
		idx += n
	}
	return &r.shards[idx]
}

// Record appends an event. Safe for concurrent use; a nil recorder drops
// the event.
func (r *Recorder) Record(rank int, kind Kind, peer, tag, iter int, note string) {
	r.RecordMsg(rank, kind, peer, tag, iter, 0, 0, 0, note)
}

// RecordMsg appends an event carrying the causal-tracing fields: the
// recording incarnation's generation, the message token, and the HLC
// stamp. The runtime's message-lifecycle taps use it; Record remains the
// entry point for events with no message identity.
func (r *Recorder) RecordMsg(rank int, kind Kind, peer, tag, iter, gen int, tok, hlc uint64, note string) {
	if r == nil {
		return
	}
	e := Event{
		Seq:  int(r.seq.Add(1)) - 1,
		At:   time.Now(),
		Rank: rank,
		Kind: kind,
		Peer: peer,
		Tag:  tag,
		Iter: iter,
		Gen:  gen,
		Tok:  tok,
		HLC:  hlc,
		Note: note,
	}
	s := r.shardFor(rank)
	s.mu.Lock()
	evicted := s.put(e)
	s.tally(rank, kind)
	s.mu.Unlock()
	if evicted {
		r.truncated.Add(1)
	}
	r.noteFirst(e)
	if fn := r.sink.Load(); fn != nil {
		(*fn)(e)
	}
}

// noteFirst keeps the earliest-recorded event per kind, lock-free. The
// CAS loop settles on the minimum Seq even when records race.
func (r *Recorder) noteFirst(e Event) {
	if e.Kind < 0 || int(e.Kind) >= numKinds {
		return
	}
	slot := &r.firsts[e.Kind]
	for {
		cur := slot.Load()
		if cur != nil && cur.Seq <= e.Seq {
			return
		}
		ec := e
		if slot.CompareAndSwap(cur, &ec) {
			return
		}
	}
}

// SetSink registers a streaming observer called once per recorded event,
// outside the recorder's locks. Events from different shards may arrive
// out of Seq order; consumers that need total order sort by Seq (as
// cmd/traceconv does). Pass nil to detach.
func (r *Recorder) SetSink(fn func(Event)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&fn)
}

// Notef records a free-form annotation for rank.
func (r *Recorder) Notef(rank int, format string, args ...any) {
	r.Record(rank, Note, -1, -1, -1, fmt.Sprintf(format, args...))
}

// Events returns a copy of the retained events in record (Seq) order. In
// flight-recorder mode this is the newest window; Truncated reports how
// many older events were evicted.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.each(func(e Event) { out = append(out, e) })
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Recorded returns the total number of events ever recorded, including
// any evicted by flight-recorder mode.
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Truncated returns how many events flight-recorder mode has evicted.
func (r *Recorder) Truncated() int64 {
	if r == nil {
		return 0
	}
	return r.truncated.Load()
}

// Filter returns the retained events matching pred, in record order. Only
// the matches are copied.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.each(func(e Event) {
			if pred(e) {
				out = append(out, e)
			}
		})
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Count returns the number of recorded events of the given kind
// (including events evicted by flight-recorder mode), from the
// incremental tallies — no event copying.
func (r *Recorder) Count(kind Kind) int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if kind >= 0 && int(kind) < numKinds {
			n += s.kindCounts[kind]
		} else {
			for key, c := range s.extra {
				if key[1] == int(kind) {
					n += c
				}
			}
		}
		s.mu.Unlock()
	}
	return n
}

// CountBy returns the number of recorded events of the given kind at the
// given rank, from the incremental tallies.
func (r *Recorder) CountBy(rank int, kind Kind) int64 {
	if r == nil {
		return 0
	}
	if kind < 0 || int(kind) >= numKinds {
		var n int64
		for i := range r.shards {
			s := &r.shards[i]
			s.mu.Lock()
			n += s.extra[[2]int{rank, int(kind)}]
			s.mu.Unlock()
		}
		return n
	}
	s := r.shardFor(rank)
	key := int64(rank)*int64(numKinds) + int64(kind)
	s.mu.Lock()
	n := s.rankKinds[key]
	s.mu.Unlock()
	return n
}

// First returns the earliest-recorded event of the given kind, if any.
// The answer covers all recorded events, even ones later evicted by
// flight-recorder mode.
func (r *Recorder) First(kind Kind) (Event, bool) {
	if r == nil {
		return Event{}, false
	}
	if kind >= 0 && int(kind) < numKinds {
		if e := r.firsts[kind].Load(); e != nil {
			return *e, true
		}
		return Event{}, false
	}
	best, found := Event{}, false
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.each(func(e Event) {
			if e.Kind == kind && (!found || e.Seq < best.Seq) {
				best, found = e, true
			}
		})
		s.mu.Unlock()
	}
	return best, found
}

// HappensBefore reports whether some retained event satisfying a precedes
// (in record order) some retained event satisfying b. Scenario tests use
// it to check causal claims such as "rank 2's death precedes rank 1's
// resend". The scan allocates nothing.
func (r *Recorder) HappensBefore(a, b func(Event) bool) bool {
	if r == nil {
		return false
	}
	firstA := -1
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.each(func(e Event) {
			if a(e) && (firstA < 0 || e.Seq < firstA) {
				firstA = e.Seq
			}
		})
		s.mu.Unlock()
	}
	if firstA < 0 {
		return false
	}
	found := false
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.each(func(e Event) {
			if !found && e.Seq > firstA && b(e) {
				found = true
			}
		})
		s.mu.Unlock()
		if found {
			return true
		}
	}
	return false
}

// Render formats the full event log, one event per line.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderByRank formats per-rank timelines, ranks in ascending order, the
// way the paper's figures present one horizontal lane per process.
func (r *Recorder) RenderByRank() string {
	lanes := make(map[int][]Event)
	for _, e := range r.Events() {
		lanes[e.Rank] = append(lanes[e.Rank], e)
	}
	ranks := make([]int, 0, len(lanes))
	for rank := range lanes {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	var b strings.Builder
	for _, rank := range ranks {
		fmt.Fprintf(&b, "P%d:\n", rank)
		for _, e := range lanes[rank] {
			fmt.Fprintf(&b, "  %s\n", e.String())
		}
	}
	return b.String()
}
