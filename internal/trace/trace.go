// Package trace records the communication-level events of a run so that
// the paper's failure-scenario figures (Figs. 6, 7, 8 and 10) can be
// reproduced and *verified* rather than merely narrated. The fault
// injector, the MPI engine, and the ring application all emit events; the
// scenario tests then assert on the recorded sequences (e.g. "rank 1
// resent the iteration-2 buffer to rank 3 after rank 2 failed", or "rank 3
// never forwarded a duplicate").
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a recorded event.
type Kind int

const (
	// SendPosted is a send handed to the fabric.
	SendPosted Kind = iota
	// RecvPosted is a receive posted to the matching engine.
	RecvPosted
	// RecvCompleted is a receive that matched and completed successfully.
	RecvCompleted
	// OpFailed is any operation that returned an error (e.g. rank-fail-stop).
	OpFailed
	// Killed marks a rank's fail-stop death.
	Killed
	// Resend marks an application-level retransmission (Fig. 7).
	Resend
	// DupDropped marks a duplicate suppressed by the iteration marker (Fig. 10).
	DupDropped
	// DupForwarded marks a duplicate forwarded because markers were
	// disabled — the Fig. 8 failure mode.
	DupForwarded
	// IterDone marks a rank completing one ring iteration.
	IterDone
	// Elected marks a rank discovering a new root (Fig. 12 outcome).
	Elected
	// TermSent and TermRecv bracket termination-detection messages (Fig. 11).
	TermSent
	// TermRecv marks termination notification receipt.
	TermRecv
	// ValidateDone marks completion of MPI_Comm_validate_all (Fig. 13).
	ValidateDone
	// ChaosDrop marks a frame dropped by the chaos fabric.
	ChaosDrop
	// ChaosDup marks a frame duplicated by the chaos fabric.
	ChaosDup
	// ChaosCorrupt marks a payload bit-flipped by the chaos fabric.
	ChaosCorrupt
	// ChaosDelay marks a frame held for delay jitter by the chaos fabric.
	ChaosDelay
	// ChaosReorder marks a frame delivered out of order by the chaos fabric.
	ChaosReorder
	// ChaosPartition marks a frame eaten by a scheduled link partition.
	ChaosPartition
	// FrameRetry marks a reliability-sublayer retransmission.
	FrameRetry
	// FrameReject marks a frame rejected for an end-to-end CRC mismatch.
	FrameReject
	// FrameDedup marks a duplicate frame suppressed by sequence tracking.
	FrameDedup
	// LinkEscalated marks a peer demoted to fail-stop after retry exhaustion.
	LinkEscalated
	// Note is a free-form annotation.
	Note
)

var kindNames = map[Kind]string{
	SendPosted:     "send",
	RecvPosted:     "recv-post",
	RecvCompleted:  "recv",
	OpFailed:       "op-failed",
	Killed:         "killed",
	Resend:         "resend",
	DupDropped:     "dup-dropped",
	DupForwarded:   "dup-forwarded",
	IterDone:       "iter-done",
	Elected:        "elected",
	TermSent:       "term-sent",
	TermRecv:       "term-recv",
	ValidateDone:   "validate-done",
	ChaosDrop:      "chaos-drop",
	ChaosDup:       "chaos-dup",
	ChaosCorrupt:   "chaos-corrupt",
	ChaosDelay:     "chaos-delay",
	ChaosReorder:   "chaos-reorder",
	ChaosPartition: "chaos-partition",
	FrameRetry:     "frame-retry",
	FrameReject:    "frame-reject",
	FrameDedup:     "frame-dedup",
	LinkEscalated:  "link-escalated",
	Note:           "note",
}

// String returns the event-kind name used in rendered timelines.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence. Peer is the other rank involved (-1
// when not applicable); Iter is the ring iteration marker (-1 when not
// applicable).
type Event struct {
	Seq  int
	At   time.Time
	Rank int
	Kind Kind
	Peer int
	Tag  int
	Iter int
	Note string
}

// String renders one event in the compact timeline form.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%04d r%d %-13s", e.Seq, e.Rank, e.Kind)
	if e.Peer >= 0 {
		fmt.Fprintf(&b, " peer=%d", e.Peer)
	}
	if e.Iter >= 0 {
		fmt.Fprintf(&b, " iter=%d", e.Iter)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " %s", e.Note)
	}
	return b.String()
}

// Recorder accumulates events. The zero value is unusable; use New. A nil
// *Recorder is valid everywhere and records nothing, so tracing can be
// disabled without branching at every call site.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    int
	limit  int
}

// New creates a recorder retaining at most limit events (0 = unlimited).
func New(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Record appends an event. Safe for concurrent use; a nil recorder drops
// the event.
func (r *Recorder) Record(rank int, kind Kind, peer, tag, iter int, note string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{
		Seq:  r.seq,
		At:   time.Now(),
		Rank: rank,
		Kind: kind,
		Peer: peer,
		Tag:  tag,
		Iter: iter,
		Note: note,
	})
	r.seq++
}

// Notef records a free-form annotation for rank.
func (r *Recorder) Notef(rank int, format string, args ...any) {
	r.Record(rank, Note, -1, -1, -1, fmt.Sprintf(format, args...))
}

// Events returns a copy of all recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Filter returns the events matching pred, in record order.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events of the given kind.
func (r *Recorder) Count(kind Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// CountBy returns the number of events of the given kind at the given rank.
func (r *Recorder) CountBy(rank int, kind Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == kind && e.Rank == rank {
			n++
		}
	}
	return n
}

// First returns the earliest event of the given kind, if any.
func (r *Recorder) First(kind Kind) (Event, bool) {
	for _, e := range r.Events() {
		if e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}

// HappensBefore reports whether some event satisfying a precedes (in
// record order) some event satisfying b. Scenario tests use it to check
// causal claims such as "rank 2's death precedes rank 1's resend".
func (r *Recorder) HappensBefore(a, b func(Event) bool) bool {
	events := r.Events()
	firstA := -1
	for i, e := range events {
		if a(e) {
			firstA = i
			break
		}
	}
	if firstA < 0 {
		return false
	}
	for _, e := range events[firstA+1:] {
		if b(e) {
			return true
		}
	}
	return false
}

// Render formats the full event log, one event per line.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderByRank formats per-rank timelines, ranks in ascending order, the
// way the paper's figures present one horizontal lane per process.
func (r *Recorder) RenderByRank() string {
	lanes := make(map[int][]Event)
	for _, e := range r.Events() {
		lanes[e.Rank] = append(lanes[e.Rank], e)
	}
	ranks := make([]int, 0, len(lanes))
	for rank := range lanes {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	var b strings.Builder
	for _, rank := range ranks {
		fmt.Fprintf(&b, "P%d:\n", rank)
		for _, e := range lanes[rank] {
			fmt.Fprintf(&b, "  %s\n", e.String())
		}
	}
	return b.String()
}
