package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span assembly and forensics: reconstructing per-message lifecycles,
// recovery timelines and the conservation audit from a recorded event
// stream (in-memory or decoded from JSONL). Everything here operates on a
// plain []Event, so traceconv can analyze a file from a finished run and
// E23 can assert on a live recorder's events with the same code.

// Token field helpers, mirroring transport.Packet.Token's layout
// (origin physical rank << 48 | per-origin sequence) without importing
// the transport package.
const tokenBits = 48

// TokOrigin extracts the origin physical rank of a causal token.
func TokOrigin(tok uint64) int { return int(tok >> tokenBits) }

// TokSeq extracts the per-origin sequence of a causal token.
func TokSeq(tok uint64) uint64 { return tok & (1<<tokenBits - 1) }

// FormatTok renders a token as "origin.seq".
func FormatTok(tok uint64) string {
	return fmt.Sprintf("%d.%d", TokOrigin(tok), TokSeq(tok))
}

// AccountedLoss reports whether an event kind explains a message that was
// sent but never delivered: the frame was visibly consumed by a fault
// injector, a dedup layer, a fence, or a teardown purge. A tokened send
// with neither a delivery nor one of these is a conservation violation.
func AccountedLoss(k Kind) bool {
	switch k {
	case ChaosDrop, ChaosPartition, FrameDedup, ReplicaDedup,
		StaleGenDrop, DeadDrop, FramePurged:
		return true
	}
	return false
}

// Span is one message's reconstructed lifecycle: every recorded event on
// any rank carrying the message's causal token, ordered causally (by HLC
// stamp, record sequence breaking ties for unstamped events).
type Span struct {
	Tok    uint64
	Events []Event
}

// Origin returns the physical rank that originated the message.
func (s *Span) Origin() int { return TokOrigin(s.Tok) }

// first returns the earliest event satisfying pred, in causal order.
func (s *Span) first(pred func(Event) bool) (Event, bool) {
	for _, e := range s.Events {
		if pred(e) {
			return e, true
		}
	}
	return Event{}, false
}

// Sent reports the first send of the message, if recorded.
func (s *Span) Sent() (Event, bool) {
	return s.first(func(e Event) bool { return e.Kind == SendPosted })
}

// Delivered reports the first delivery of the message, if any copy of it
// reached a destination engine's matching layer.
func (s *Span) Delivered() (Event, bool) {
	return s.first(func(e Event) bool { return e.Kind == Delivered })
}

// Losses returns the accounted-loss events of the span.
func (s *Span) Losses() []Event {
	var out []Event
	for _, e := range s.Events {
		if AccountedLoss(e.Kind) {
			out = append(out, e)
		}
	}
	return out
}

// Retries counts reliability-sublayer retransmissions of the message.
func (s *Span) Retries() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == FrameRetry {
			n++
		}
	}
	return n
}

// E2E returns the send-to-first-delivery latency from the HLC physical
// components, and whether the span has both endpoints stamped.
func (s *Span) E2E() (time.Duration, bool) {
	snd, ok1 := s.Sent()
	del, ok2 := s.Delivered()
	if !ok1 || !ok2 || snd.HLC == 0 || del.HLC == 0 {
		return 0, false
	}
	return time.Duration(HLCPhysical(del.HLC)-HLCPhysical(snd.HLC)) * time.Microsecond, true
}

// causalLess orders events by HLC stamp where both are stamped, falling
// back to record sequence (unstamped events and same-microsecond ties).
func causalLess(a, b Event) bool {
	if a.HLC != 0 && b.HLC != 0 && a.HLC != b.HLC {
		return a.HLC < b.HLC
	}
	return a.Seq < b.Seq
}

// AssembleSpans groups the tokened events of a stream into per-message
// spans, each causally ordered. Events without a token (control traffic,
// detector events, app-level annotations) are ignored. Spans are returned
// ordered by their first event's causal position.
func AssembleSpans(events []Event) []*Span {
	byTok := make(map[uint64]*Span)
	for _, e := range events {
		if e.Tok == 0 {
			continue
		}
		sp := byTok[e.Tok]
		if sp == nil {
			sp = &Span{Tok: e.Tok}
			byTok[e.Tok] = sp
		}
		sp.Events = append(sp.Events, e)
	}
	out := make([]*Span, 0, len(byTok))
	for _, sp := range byTok {
		sort.Slice(sp.Events, func(i, j int) bool { return causalLess(sp.Events[i], sp.Events[j]) })
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return causalLess(out[i].Events[0], out[j].Events[0]) })
	return out
}

// --- conservation audit -------------------------------------------------------

// AuditReport is the outcome of the conservation check over one event
// stream: every tokened send reconciles to a delivery or an accounted
// loss; anything else is a runtime bug surfaced in Unaccounted.
type AuditReport struct {
	// Sends is the number of distinct messages (unique tokens) sent.
	Sends int
	// Delivers is how many of them reached a destination matching layer
	// at least once.
	Delivers int
	// Accounted is how many undelivered messages have an accounted loss
	// (chaos drop/partition, dedup, stale-generation fence, dead-engine
	// drop, teardown purge).
	Accounted int
	// Unaccounted lists the tokens that were sent but neither delivered
	// nor accounted for — conservation violations.
	Unaccounted []uint64
	// OrphanDelivers lists tokens with a delivery but no recorded send —
	// impossible message identities (a stamping or decoding bug).
	OrphanDelivers []uint64
	// LossKinds tallies the accounted-loss events by kind across the
	// stream (delivered messages' losses included: a dropped fan-out copy
	// of a delivered message still shows up here).
	LossKinds map[Kind]int
}

// Clean reports a fully reconciled stream.
func (a *AuditReport) Clean() bool {
	return len(a.Unaccounted) == 0 && len(a.OrphanDelivers) == 0
}

// String renders the one-line audit summary.
func (a *AuditReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: sends=%d delivered=%d accounted-losses=%d unaccounted=%d orphan-delivers=%d",
		a.Sends, a.Delivers, a.Accounted, len(a.Unaccounted), len(a.OrphanDelivers))
	if len(a.LossKinds) > 0 {
		kinds := make([]Kind, 0, len(a.LossKinds))
		for k := range a.LossKinds {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		b.WriteString(" (")
		for i, k := range kinds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%d", k, a.LossKinds[k])
		}
		b.WriteString(")")
	}
	return b.String()
}

// Audit runs the conservation check over an event stream.
func Audit(events []Event) *AuditReport {
	rep := &AuditReport{LossKinds: map[Kind]int{}}
	for _, sp := range AssembleSpans(events) {
		_, sent := sp.Sent()
		_, delivered := sp.Delivered()
		losses := sp.Losses()
		for _, e := range losses {
			rep.LossKinds[e.Kind]++
		}
		if !sent {
			if delivered {
				rep.OrphanDelivers = append(rep.OrphanDelivers, sp.Tok)
			}
			continue
		}
		rep.Sends++
		switch {
		case delivered:
			rep.Delivers++
		case len(losses) > 0:
			rep.Accounted++
		default:
			rep.Unaccounted = append(rep.Unaccounted, sp.Tok)
		}
	}
	return rep
}

// --- causal validation (traceconv -check) ------------------------------------

// CheckCausal validates the causal-tracing invariants of a stream and
// returns a description of every violation found (empty = clean):
//
//   - per-rank HLC monotonicity: one rank's clock never repeats a stamp
//     (the clock is strictly monotonic, so two events on one rank with
//     equal stamps mean a stamping bug). Record order is deliberately NOT
//     used here: a rank's send path and its fabric delivery goroutine
//     race the log append, so stamps may land out of sequence order
//     without any clock violation.
//   - send-before-deliver: every delivery's HLC stamp is strictly after
//     its message's send stamp.
//   - token closure: every delivery references a token with a recorded
//     send.
func CheckCausal(events []Event) []string {
	var bad []string

	perRank := map[int][]uint64{}
	for _, e := range events {
		if e.HLC != 0 {
			perRank[e.Rank] = append(perRank[e.Rank], e.HLC)
		}
	}
	ranks := make([]int, 0, len(perRank))
	for r := range perRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		stamps := perRank[r]
		sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
		for i := 1; i < len(stamps); i++ {
			if stamps[i] == stamps[i-1] {
				bad = append(bad, fmt.Sprintf("rank %d: HLC stamp %d repeats — clock not strictly monotonic", r, stamps[i]))
			}
		}
	}

	for _, sp := range AssembleSpans(events) {
		snd, sent := sp.Sent()
		del, delivered := sp.Delivered()
		if delivered && !sent {
			bad = append(bad, fmt.Sprintf("token %s: delivered with no recorded send", FormatTok(sp.Tok)))
			continue
		}
		if sent && delivered && snd.HLC != 0 && del.HLC != 0 && del.HLC <= snd.HLC {
			bad = append(bad, fmt.Sprintf("token %s: deliver stamp %d not after send stamp %d",
				FormatTok(sp.Tok), del.HLC, snd.HLC))
		}
	}
	return bad
}

// --- recovery forensics (traceconv -recovery) --------------------------------

// Incident is one rank death and its reconstructed recovery timeline,
// decomposed into the phases the paper narrates: detection (death to
// first suspicion), agreement-or-fence (suspicion to confirmed failure),
// repair (confirmation to the repair action — promotion, respawn, or the
// first application resend), and resume (repair to the first post-repair
// delivery).
type Incident struct {
	Victim int
	// Killed anchors the incident; the remaining events may be absent
	// (Has* flags) depending on detector and repair mode.
	Killed, Suspected, Confirmed, Repair, Resume        Event
	HasSuspected, HasConfirmed, HasRepair, HasResume    bool
	Detection, Agreement, RepairTime, ResumeTime, Total time.Duration
}

// RepairKind names the repair path taken ("promoted", "respawned",
// "resend"), or "none" when the incident has no recorded repair.
func (in *Incident) RepairKind() string {
	if !in.HasRepair {
		return "none"
	}
	return in.Repair.Kind.String()
}

// Recoveries reconstructs one Incident per Killed event in the stream.
// Oracle-detected worlds have no Suspected/Confirmed events — their
// detection and agreement phases render as zero, with the whole latency
// in the repair phase, which is exactly what a perfect detector means.
func Recoveries(events []Event) []*Incident {
	evs := append([]Event(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	var incidents []*Incident
	for i, e := range evs {
		if e.Kind != Killed {
			continue
		}
		in := &Incident{Victim: e.Rank, Killed: e}
		for _, f := range evs[i+1:] {
			switch {
			case !in.HasSuspected && f.Kind == Suspected && f.Peer == in.Victim:
				in.Suspected, in.HasSuspected = f, true
			case !in.HasConfirmed && f.Kind == Confirmed && f.Peer == in.Victim:
				in.Confirmed, in.HasConfirmed = f, true
			case !in.HasRepair && (f.Kind == Promoted && f.Peer == in.Victim ||
				f.Kind == Respawned && f.Rank == in.Victim ||
				f.Kind == Resend):
				in.Repair, in.HasRepair = f, true
			case in.HasRepair && !in.HasResume && f.Kind == Delivered:
				in.Resume, in.HasResume = f, true
			}
			if in.HasRepair && in.HasResume {
				break
			}
		}
		in.decompose()
		incidents = append(incidents, in)
	}
	return incidents
}

// decompose fills the phase durations from the anchored events' wall
// timestamps. Absent phases contribute zero; the repair phase absorbs
// everything between the last detection-side anchor and the repair
// action. Phases clamp at zero: anchors are recorded by different
// goroutines, so causally ordered events can carry wall timestamps a few
// microseconds out of order (e.g. a promotion recorded just before the
// confirmation that triggered it).
func (in *Incident) decompose() {
	last := in.Killed.At
	step := func(at time.Time) time.Duration {
		d := at.Sub(last)
		if d < 0 {
			return 0
		}
		last = at
		return d
	}
	if in.HasSuspected {
		in.Detection = step(in.Suspected.At)
	}
	if in.HasConfirmed {
		in.Agreement = step(in.Confirmed.At)
	}
	if in.HasRepair {
		in.RepairTime = step(in.Repair.At)
	}
	if in.HasResume {
		in.ResumeTime = step(in.Resume.At)
	}
	in.Total = last.Sub(in.Killed.At)
}

// Render formats the incident as the per-death table traceconv -recovery
// prints.
func (in *Incident) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incident: rank %d killed (seq %d)\n", in.Victim, in.Killed.Seq)
	row := func(phase string, has bool, e Event, d time.Duration, detail string) {
		if !has {
			fmt.Fprintf(&b, "  %-22s %12s\n", phase, "-")
			return
		}
		fmt.Fprintf(&b, "  %-22s %12s  by rank %d%s\n", phase, d.Round(time.Microsecond), e.Rank, detail)
	}
	row("detection (suspect)", in.HasSuspected, in.Suspected, in.Detection, "")
	row("agreement/fence", in.HasConfirmed, in.Confirmed, in.Agreement, "")
	detail := ""
	if in.HasRepair {
		detail = " (" + in.RepairKind() + ")"
	}
	row("repair", in.HasRepair, in.Repair, in.RepairTime, detail)
	resumeDetail := ""
	if in.HasResume && in.Resume.Tok != 0 {
		resumeDetail = " tok " + FormatTok(in.Resume.Tok)
	}
	row("resume (first deliver)", in.HasResume, in.Resume, in.ResumeTime, resumeDetail)
	fmt.Fprintf(&b, "  %-22s %12s\n", "total", in.Total.Round(time.Microsecond))
	return b.String()
}

// --- critical path (traceconv -causal) ---------------------------------------

// RenderSpan formats one message lifecycle with per-hop latencies: each
// line is one event with its delta from the span's first event (HLC
// physical time where stamped, wall time otherwise).
func RenderSpan(sp *Span) string {
	var b strings.Builder
	e2e := "undelivered"
	if d, ok := sp.E2E(); ok {
		e2e = d.String()
	}
	fmt.Fprintf(&b, "token %s (origin rank %d, %d events, e2e %s)\n",
		FormatTok(sp.Tok), sp.Origin(), len(sp.Events), e2e)
	base := sp.Events[0]
	for _, e := range sp.Events {
		var delta time.Duration
		if base.HLC != 0 && e.HLC != 0 {
			delta = time.Duration(HLCPhysical(e.HLC)-HLCPhysical(base.HLC)) * time.Microsecond
		} else if !base.At.IsZero() && !e.At.IsZero() {
			delta = e.At.Sub(base.At)
		}
		fmt.Fprintf(&b, "  +%-10s r%-4d %-14s", delta.Round(time.Microsecond), e.Rank, e.Kind)
		if e.Peer >= 0 {
			fmt.Fprintf(&b, " peer=%d", e.Peer)
		}
		if e.Gen > 0 {
			fmt.Fprintf(&b, " gen=%d", e.Gen)
		}
		if e.Note != "" {
			fmt.Fprintf(&b, " %s", e.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SlowestSpans returns the k delivered spans with the highest end-to-end
// latency, slowest first — the critical paths of the run.
func SlowestSpans(events []Event, k int) []*Span {
	var delivered []*Span
	for _, sp := range AssembleSpans(events) {
		if _, ok := sp.E2E(); ok {
			delivered = append(delivered, sp)
		}
	}
	sort.Slice(delivered, func(i, j int) bool {
		di, _ := delivered[i].E2E()
		dj, _ := delivered[j].E2E()
		if di != dj {
			return di > dj
		}
		return delivered[i].Tok < delivered[j].Tok
	})
	if len(delivered) > k {
		delivered = delivered[:k]
	}
	return delivered
}
