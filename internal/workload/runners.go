package workload

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/election"
	"repro/internal/inject"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/transport"
)

// runLowestAliveElection kills the k lowest ranks and has every survivor
// run the Fig. 12 election, returning each survivor's choice.
func runLowestAliveElection(n, k int) (map[int]int, time.Duration, error) {
	w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second))
	if err != nil {
		return nil, 0, err
	}
	var mu sync.Mutex
	elected := map[int]int{}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() < k {
			p.Die()
		}
		for p.Registry().AliveCount() > n-k {
			time.Sleep(time.Millisecond)
		}
		r := election.LowestAlive(p, c)
		mu.Lock()
		elected[p.Rank()] = r
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for rank, rr := range res.Ranks {
		if rank >= k && rr.Err != nil {
			return nil, 0, fmt.Errorf("rank %d: %w", rank, rr.Err)
		}
	}
	return elected, res.Elapsed, nil
}

// runValidateBench measures repeated ValidateAll calls on a world with f
// pre-failed ranks (highest ranks die so rank 0 coordinates).
func runValidateBench(n, f, reps int) (time.Duration, int64, int, error) {
	mets := metrics.NewWorld(n)
	w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second), mpi.WithMetrics(mets))
	if err != nil {
		return 0, 0, 0, err
	}
	var mu sync.Mutex
	var elapsed time.Duration
	agreed := -1
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() >= n-f {
			p.Die()
		}
		for p.Registry().AliveCount() > n-f {
			time.Sleep(time.Millisecond)
		}
		start := time.Now()
		var cnt int
		for i := 0; i < reps; i++ {
			var verr error
			cnt, verr = c.ValidateAll()
			if verr != nil {
				return verr
			}
		}
		if p.Rank() == 0 {
			mu.Lock()
			elapsed = time.Since(start)
			agreed = cnt
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for rank, rr := range res.Ranks {
		if rank < n-f && rr.Err != nil {
			return 0, 0, 0, fmt.Errorf("rank %d: %w", rank, rr.Err)
		}
	}
	return elapsed, mets.Total(metrics.AgreementMsgs), agreed, nil
}

// runCollectiveSemantics reproduces the Section II collective rules as a
// table: per-rank broadcast outcomes under a mid-tree death, the
// collective gate, and the post-validate recovery.
func runCollectiveSemantics() ([]*Table, error) {
	const n = 8
	t1 := NewTable("E14a: Bcast return codes with mid-tree death (Section II)",
		"rank", "bcast-outcome")
	t2 := NewTable("E14b: collective gate and repair",
		"phase", "outcome")

	outcomes := make([]string, n)
	w, err := mpi.NewWorld(n,
		mpi.WithDeadline(60*time.Second),
		mpi.WithHook(func(ev mpi.HookEvent) mpi.Action {
			if ev.Rank == 6 && ev.Point == mpi.HookAfterRecv {
				return mpi.ActKill
			}
			return mpi.ActNone
		}))
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	gateBefore, gateAfter, allreduceSum := "", "", int64(-1)
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		_, bErr := collective.Bcast(c, 0, []byte("payload"))
		mu.Lock()
		switch {
		case bErr == nil:
			outcomes[p.Rank()] = "success"
		case mpi.IsRankFailStop(bErr):
			outcomes[p.Rank()] = "MPI_ERR_RANK_FAIL_STOP"
		default:
			outcomes[p.Rank()] = bErr.Error()
		}
		mu.Unlock()

		// Gate: once the failure notification lands, collectives are
		// disabled until validate_all repairs the communicator. (The root
		// can leave the broadcast before rank 6 dies, so wait for the
		// notification before sampling the gate.)
		for p.Registry().AliveCount() > n-1 {
			time.Sleep(time.Millisecond)
		}
		if gerr := c.CollectiveOK(); p.Rank() == 0 {
			mu.Lock()
			if mpi.IsRankFailStop(gerr) {
				gateBefore = "disabled (MPI_ERR_RANK_FAIL_STOP)"
			} else {
				gateBefore = fmt.Sprint(gerr)
			}
			mu.Unlock()
		}
		if _, verr := c.ValidateAll(); verr != nil {
			return verr
		}
		out, aerr := collective.Allreduce(c, collective.EncodeInt64s([]int64{1}), collective.SumInt64)
		if aerr != nil {
			return aerr
		}
		v, derr := collective.DecodeInt64s(out)
		if derr != nil {
			return derr
		}
		if p.Rank() == 0 {
			mu.Lock()
			gateAfter = "re-enabled"
			allreduceSum = v[0]
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for rank := 0; rank < n; rank++ {
		if rank == 6 {
			t1.Add(rank, "killed mid-tree (after receiving, before forwarding)")
			continue
		}
		if res.Ranks[rank].Err != nil {
			return nil, fmt.Errorf("rank %d: %w", rank, res.Ranks[rank].Err)
		}
		t1.Add(rank, outcomes[rank])
	}
	t1.Note("return codes are intentionally inconsistent: the root left the tree before the death")
	t2.Add("collective gate after failure", gateBefore)
	t2.Add("gate after MPI_Comm_validate_all", gateAfter)
	t2.Add("allreduce(+1) over survivors", fmt.Sprintf("%d (want %d)", allreduceSum, n-1))
	return []*Table{t1, t2}, nil
}

// runPlacementSweep answers the paper's Section III-E question ("how can
// a developer know when they have addressed ALL of the problematic fault
// scenarios?") by brute force over a small ring: every (victim, hook
// point, ordinal) single-failure placement — and, with the root as the
// victim, every placement under RootElect — is executed; the table
// reports how many placements the design survived.
func runPlacementSweep(opt Options) ([]*Table, error) {
	t := NewTable("E16: exhaustive single-failure placement sweep (Sec. III-E)",
		"victim", "placements", "survived", "resends-total", "dups-dropped-total")
	n, iters := 4, 4
	if opt.Quick {
		iters = 3
	}
	points := []func(rank, ord int) inject.Trigger{
		func(r, o int) inject.Trigger { return inject.AfterNthRecv(r, o) },
		func(r, o int) inject.Trigger { return inject.AfterNthSend(r, o) },
		func(r, o int) inject.Trigger { return inject.BeforeNthSend(r, o) },
	}
	for victim := 0; victim < n; victim++ {
		placements, survived := 0, 0
		resends, dropped := 0, 0
		for _, mk := range points {
			for ord := 1; ord <= iters; ord++ {
				placements++
				plan := inject.NewPlan().Add(mk(victim, ord))
				cfg := core.Config{Iters: iters, Variant: core.VariantFull, Termination: core.TermValidateAll}
				if victim == 0 {
					cfg.RootPolicy = core.RootElect
				}
				report, res, _, err := ringOnce(opt, n, cfg,
					func(m *mpi.Config) { m.Hook = plan.Hook() })
				if err != nil {
					continue
				}
				ok := true
				for rank, rr := range res.Ranks {
					if rr.Killed {
						continue
					}
					if !rr.Finished || rr.Err != nil || !report.Rank(rank).Terminated {
						ok = false
					}
				}
				if ok {
					survived++
					resends += report.TotalResends()
					dropped += report.TotalDupsDropped()
				}
			}
		}
		label := fmt.Sprint(victim)
		if victim == 0 {
			label = "0 (root, elect)"
		}
		t.Add(label, placements, survived, resends, dropped)
	}
	t.Note("survived == placements means no single-failure placement breaks the design")
	return []*Table{t}, nil
}

// runLargeN scales the two matching-heavy workloads — the full FT ring
// and a world-wide validate_all — to world sizes far beyond the paper's
// examples, over the Local fabric. It exists to demonstrate that the
// indexed matching engine keeps per-operation cost flat as the number of
// (source, tag) keys grows; the linear-scan engine it replaced degraded
// quadratically here (EXPERIMENTS.md E17 has head-to-head numbers).
func runLargeN(opt Options) ([]*Table, error) {
	t := NewTable("E17: large-N scaling over the indexed matching engine",
		"ranks", "ring-iters", "ring-elapsed", "us/hop", "validate-elapsed", "agreement-msgs")
	iters := 4
	for _, n := range opt.sizes([]int{256, 1024, 4096}) {
		report, res, _, err := ringOnce(opt, n, core.Config{Iters: iters, Variant: core.VariantFull}, nil)
		if err != nil {
			return nil, fmt.Errorf("ring n=%d: %w", n, err)
		}
		if got := len(report.Rank(0).RootValues); got != iters {
			return nil, fmt.Errorf("ring n=%d: root absorbed %d/%d iterations", n, got, iters)
		}
		vElapsed, vMsgs, _, err := runValidateBench(n, 0, 1)
		if err != nil {
			return nil, fmt.Errorf("validate n=%d: %w", n, err)
		}
		hops := iters * n
		t.Add(n, iters, res.Elapsed,
			float64(res.Elapsed.Microseconds())/float64(hops), vElapsed, vMsgs)
	}
	t.Note("us/hop flat in ranks = O(1) matching; the pre-index engine grew linearly with queue depth")
	return []*Table{t}, nil
}

// soakRates is the E18 fault mix — the acceptance-criteria 10% drop, 5%
// duplication, 1% payload corruption on every link.
func soakRates() chaos.Rates {
	return chaos.Rates{Drop: 0.10, Dup: 0.05, Corrupt: 0.01}
}

// latTally merges latency histograms family-by-family across runs.
type latTally map[obs.Family]obs.HistSnapshot

func (l latTally) merge(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, fs := range reg.Snapshot().Families {
		l[fs.Family] = l[fs.Family].Merge(fs.Merged)
	}
}

// addRows renders the non-empty histogram families as quantile rows.
func (l latTally) addRows(t *Table, workload string) {
	for _, f := range obs.Families() {
		snap := l[f]
		if snap.Count == 0 {
			continue
		}
		t.Add(workload, f.String(), snap.Count,
			time.Duration(snap.Quantile(0.50)), time.Duration(snap.Quantile(0.95)),
			time.Duration(snap.Quantile(0.99)), time.Duration(snap.Max))
	}
}

// soakTally aggregates one workload's results across the seed sweep,
// including the merged latency histograms of every run.
type soakTally struct {
	ok, runs                       int
	dropped, duplicated, corrupted int
	retried, deduped, rejected     int64
	elapsed                        time.Duration
	lat                            latTally
}

func (s *soakTally) absorb(ok bool, plan *chaos.Plan, mets *metrics.World, reg *obs.Registry, elapsed time.Duration) {
	s.runs++
	if ok {
		s.ok++
	}
	s.dropped += plan.Count(chaos.EvDrop)
	s.duplicated += plan.Count(chaos.EvDup)
	s.corrupted += plan.Count(chaos.EvCorrupt)
	s.retried += mets.Total(metrics.FramesRetried)
	s.deduped += mets.Total(metrics.FramesDeduped)
	s.rejected += mets.Total(metrics.FramesRejected)
	s.elapsed += elapsed
	if s.lat == nil {
		s.lat = latTally{}
	}
	s.lat.merge(reg)
}

func (s *soakTally) addRow(t *Table, workload string) {
	t.Add(workload, s.runs, s.ok, s.dropped, s.duplicated, s.corrupted,
		s.retried, s.deduped, s.rejected, s.elapsed)
}

// addLatencyRows renders the workload's non-empty histogram families as
// quantile rows of the E18 latency table.
func (s *soakTally) addLatencyRows(t *Table, workload string) {
	s.lat.addRows(t, workload)
}

// runChaosSoak sweeps seeds over three workloads — the full FT ring,
// validate_all with a pre-failed rank, and the lowest-alive election —
// each on a fabric injecting the soakRates fault mix on every link. A run
// counts as ok only when the workload's application-level invariant holds
// (all iterations absorbed exactly once / agreement on the failed count /
// unanimous leader), which is what "no duplicate delivery, no corrupted
// payload above the codec" means observable from the application.
func runChaosSoak(opt Options) ([]*Table, error) {
	t := NewTable("E18: chaos soak — 10% drop, 5% dup, 1% corrupt on every link",
		"workload", "seeds", "ok", "dropped", "duplicated", "corrupted",
		"retried", "deduped", "rejected", "elapsed")
	tLat := NewTable("E18b: latency quantiles under chaos (merged over seeds)",
		"workload", "family", "samples", "p50", "p95", "p99", "max")
	nSeeds := 20
	if opt.Quick {
		nSeeds = 4
	}

	var ring, validate, elect soakTally
	for s := 0; s < nSeeds; s++ {
		seed := opt.Seed + int64(s)

		// Workload 1: the paper's full FT ring with validate_all termination.
		{
			const n, iters = 4, 8
			plan := chaos.NewPlan(seed).Default(soakRates())
			mets := metrics.NewWorld(n)
			reg := obs.NewRegistry(n)
			opt.Collector.Attach(mets, reg)
			report, res, err := core.Run(mpi.Config{
				Size: n, Deadline: 60 * time.Second, Metrics: mets, Chaos: plan, Obs: reg,
			}, core.Config{Iters: iters, Variant: core.VariantFull, Termination: core.TermValidateAll})
			if err != nil {
				return nil, fmt.Errorf("ring seed %d: %w", seed, err)
			}
			ok := len(report.Rank(0).RootValues) == iters
			for _, v := range report.Rank(0).RootValues {
				ok = ok && v == int64(n) // each marker absorbed exactly once per rank
			}
			for _, rr := range res.Ranks {
				ok = ok && rr.Err == nil && rr.Finished
			}
			ring.absorb(ok, plan, mets, reg, res.Elapsed)
			opt.Collector.Absorb(mets, reg)
		}

		// Workload 2: validate_all consensus with one pre-failed rank.
		{
			const n = 4
			plan := chaos.NewPlan(seed).Default(soakRates())
			mets := metrics.NewWorld(n)
			reg := obs.NewRegistry(n)
			opt.Collector.Attach(mets, reg)
			w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second),
				mpi.WithMetrics(mets), mpi.WithChaos(plan), mpi.WithObservability(reg))
			if err != nil {
				return nil, err
			}
			counts := make([]int, n)
			res, err := w.Run(func(p *mpi.Proc) error {
				c := p.World()
				c.SetErrhandler(mpi.ErrorsReturn)
				if p.Rank() == n-1 {
					p.Die()
				}
				for p.Registry().AliveCount() > n-1 {
					time.Sleep(time.Millisecond)
				}
				cnt, verr := c.ValidateAll()
				if verr != nil {
					return verr
				}
				counts[p.Rank()] = cnt
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("validate seed %d: %w", seed, err)
			}
			ok := true
			for rank := 0; rank < n-1; rank++ {
				ok = ok && res.Ranks[rank].Err == nil && counts[rank] == 1
			}
			validate.absorb(ok, plan, mets, reg, res.Elapsed)
			opt.Collector.Absorb(mets, reg)
		}

		// Workload 3: Chang-Roberts ring election after the lowest rank
		// dies — unlike the message-free Fig. 12 scan, its circulating
		// tokens give the chaos fabric traffic to attack.
		{
			const n = 4
			plan := chaos.NewPlan(seed).Default(soakRates())
			mets := metrics.NewWorld(n)
			reg := obs.NewRegistry(n)
			opt.Collector.Attach(mets, reg)
			w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second),
				mpi.WithMetrics(mets), mpi.WithChaos(plan), mpi.WithObservability(reg))
			if err != nil {
				return nil, err
			}
			elected := make([]int, n)
			res, err := w.Run(func(p *mpi.Proc) error {
				c := p.World()
				c.SetErrhandler(mpi.ErrorsReturn)
				if p.Rank() == 0 {
					p.Die()
				}
				for p.Registry().AliveCount() > n-1 {
					time.Sleep(time.Millisecond)
				}
				leader, eerr := election.ChangRoberts(p, c)
				if eerr != nil {
					return eerr
				}
				elected[p.Rank()] = leader
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("election seed %d: %w", seed, err)
			}
			ok := true
			for rank := 1; rank < n; rank++ {
				ok = ok && res.Ranks[rank].Err == nil && elected[rank] == 1
			}
			elect.absorb(ok, plan, mets, reg, res.Elapsed)
			opt.Collector.Absorb(mets, reg)
		}
	}

	ring.addRow(t, "ft ring (Fig. 5)")
	validate.addRow(t, "validate_all")
	elect.addRow(t, "election")
	t.Note("ok must equal seeds: every run completes with exact-once app-level delivery")
	t.Note("rejected = corrupted frames caught by the end-to-end CRC before reaching matching")
	ring.addLatencyRows(tLat, "ft ring (Fig. 5)")
	validate.addLatencyRows(tLat, "validate_all")
	elect.addLatencyRows(tLat, "election")
	tLat.Note("retry_backoff/chaos_delay sample the reliability sublayer pacing and injected jitter")
	return []*Table{t, tLat}, nil
}

// hbTally aggregates one heartbeat-soak workload across the seed sweep.
type hbTally struct {
	ok, runs                          int
	heartbeats, suspicions, falseSusp int64
	cleared, fences, selfFences       int64
	confirms                          int64
	elapsed                           time.Duration
	lat                               latTally
}

func (s *hbTally) absorb(ok bool, mets *metrics.World, reg *obs.Registry, elapsed time.Duration) {
	s.runs++
	if ok {
		s.ok++
	}
	s.heartbeats += mets.Total(metrics.Heartbeats)
	s.suspicions += mets.Total(metrics.Suspicions)
	s.falseSusp += mets.Total(metrics.FalseSuspicions)
	s.cleared += mets.Total(metrics.SuspicionsCleared)
	s.fences += mets.Total(metrics.Fences)
	s.selfFences += mets.Total(metrics.SelfFences)
	s.confirms += mets.Total(metrics.Confirms)
	s.elapsed += elapsed
	if s.lat == nil {
		s.lat = latTally{}
	}
	s.lat.merge(reg)
}

func (s *hbTally) addRow(t *Table, workload string) {
	t.Add(workload, s.runs, s.ok, s.heartbeats, s.suspicions, s.falseSusp,
		s.cleared, s.fences, s.selfFences, s.confirms, s.elapsed)
}

// hbSoakOptions is the heartbeat tuning for the E19 soak: fast enough to
// keep the sweep short, with the self-fence horizon pushed out so only
// the partition workload (which tunes it down) ever self-fences.
func hbSoakOptions() detector.HeartbeatOptions {
	return detector.HeartbeatOptions{
		Interval:       2 * time.Millisecond,
		Timeout:        30 * time.Millisecond,
		SelfFenceAfter: 2 * time.Second,
	}
}

// runHeartbeatSoak sweeps seeds over three workloads running on the
// heartbeat detector — no oracle shortcut anywhere:
//
//  1. the full FT ring under delay jitter with a scripted mid-run kill
//     (detection happens through missed heartbeats while the jitter makes
//     the monitors earn their keep),
//  2. validate_all with a scheduled full partition of one healthy rank
//     (a guaranteed FALSE suspicion whose fences can never arrive — the
//     victim must self-fence before anyone may report it failed), and
//  3. the Chang-Roberts election with a victim dying mid-election.
//
// Delay jitter can make the phi estimator falsely suspect a healthy rank;
// that is not a bug but the detector's contract at work — the fence kills
// the suspect before the failure is reported, so the app only ever sees
// fail-stop. The ok-criteria therefore tolerate extra fenced ranks but
// never a wrong answer: markers absorbed exactly once, survivors agree,
// and nobody unfenced is reported failed (Registry.Confirm panics the
// world on an accuracy violation, so mere completion certifies it).
func runHeartbeatSoak(opt Options) ([]*Table, error) {
	t := NewTable("E19: heartbeat soak — delay jitter, kills, scheduled partitions",
		"workload", "seeds", "ok", "heartbeats", "suspicions", "false-susp",
		"cleared", "fences", "self-fences", "confirms", "elapsed")
	tLat := NewTable("E19b: detection latency quantiles (merged over seeds)",
		"workload", "family", "samples", "p50", "p95", "p99", "max")
	nSeeds := 20
	if opt.Quick {
		nSeeds = 4
	}
	jitter := chaos.Rates{Delay: 0.25, Jitter: 4 * time.Millisecond}

	var ring, validate, elect hbTally
	for s := 0; s < nSeeds; s++ {
		seed := opt.Seed + int64(s)

		// Workload 1: FT ring, delay jitter on every link, rank 2 killed
		// after its second receive. RootElect so a falsely fenced root
		// cannot wedge the run.
		{
			const n, iters, victim = 4, 8, 2
			plan := chaos.NewPlan(seed).Default(jitter)
			kill := inject.NewPlan().Add(inject.AfterNthRecv(victim, 2))
			mets := metrics.NewWorld(n)
			reg := obs.NewRegistry(n)
			opt.Collector.Attach(mets, reg)
			report, res, err := core.Run(mpi.Config{
				Size: n, Deadline: 60 * time.Second, Metrics: mets, Chaos: plan,
				Obs: reg, Hook: kill.Hook(),
				Detector: mpi.DetectorHeartbeat, Heartbeat: hbSoakOptions(),
			}, core.Config{Iters: iters, Variant: core.VariantFull,
				Termination: core.TermValidateAll, RootPolicy: core.RootElect})
			if err != nil {
				return nil, fmt.Errorf("ring seed %d: %w", seed, err)
			}
			killed := 0
			for _, rr := range res.Ranks {
				if rr.Killed {
					killed++
				}
			}
			ok := !res.TimedOut && res.Ranks[victim].Killed
			seen := map[int64]bool{}
			total := 0
			for rank := 0; rank < n; rank++ {
				for marker, v := range report.Rank(rank).RootValues {
					if seen[marker] {
						ok = false // a marker absorbed twice
					}
					seen[marker] = true
					total++
					ok = ok && v >= int64(n-killed) && v <= int64(n)
				}
			}
			ok = ok && total == iters
			for _, rr := range res.Ranks {
				if !rr.Killed {
					ok = ok && rr.Finished && rr.Err == nil
				}
			}
			ring.absorb(ok, mets, reg, res.Elapsed)
			opt.Collector.Absorb(mets, reg)
		}

		// Workload 2: validate_all with rank n-1 fully partitioned from the
		// start. Its peers falsely suspect it, their fences cannot cross the
		// partition, and the victim's own ack silence makes it self-fence —
		// only then may the survivors' agreement count it failed.
		{
			const n = 4
			plan := chaos.NewPlan(seed).
				Partition(n-1, -1, 1, ^uint64(0)).
				Partition(-1, n-1, 1, ^uint64(0))
			hb := hbSoakOptions()
			hb.SelfFenceAfter = 150 * time.Millisecond // beat ARQ escalation (~400ms)
			mets := metrics.NewWorld(n)
			reg := obs.NewRegistry(n)
			opt.Collector.Attach(mets, reg)
			w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second),
				mpi.WithMetrics(mets), mpi.WithChaos(plan), mpi.WithObservability(reg),
				mpi.WithHeartbeat(hb))
			if err != nil {
				return nil, err
			}
			counts := make([]int, n)
			res, err := w.Run(func(p *mpi.Proc) error {
				c := p.World()
				c.SetErrhandler(mpi.ErrorsReturn)
				cnt, verr := c.ValidateAll()
				if verr != nil {
					return verr
				}
				counts[p.Rank()] = cnt
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("validate seed %d: %w", seed, err)
			}
			ok := !res.TimedOut && res.Ranks[n-1].Killed
			for rank := 0; rank < n-1; rank++ {
				rr := res.Ranks[rank]
				ok = ok && !rr.Killed && rr.Err == nil && counts[rank] == 1
			}
			validate.absorb(ok, mets, reg, res.Elapsed)
			opt.Collector.Absorb(mets, reg)
		}

		// Workload 3: Chang-Roberts under jitter with rank 2 dying shortly
		// after the election starts — tokens it held die with it, and the
		// re-initiation on (heartbeat-detected) notification must drain the
		// ring to a leader every survivor agrees on.
		{
			const n, victim = 4, 2
			plan := chaos.NewPlan(seed).Default(jitter)
			mets := metrics.NewWorld(n)
			reg := obs.NewRegistry(n)
			opt.Collector.Attach(mets, reg)
			w, err := mpi.NewWorld(n, mpi.WithDeadline(60*time.Second),
				mpi.WithMetrics(mets), mpi.WithChaos(plan), mpi.WithObservability(reg),
				mpi.WithHeartbeat(hbSoakOptions()))
			if err != nil {
				return nil, err
			}
			elected := make([]int, n)
			res, err := w.Run(func(p *mpi.Proc) error {
				c := p.World()
				c.SetErrhandler(mpi.ErrorsReturn)
				if p.Rank() == victim {
					time.Sleep(5 * time.Millisecond)
					p.Die()
				}
				leader, eerr := election.ChangRoberts(p, c)
				if eerr != nil {
					return eerr
				}
				elected[p.Rank()] = leader
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("election seed %d: %w", seed, err)
			}
			ok := !res.TimedOut && res.Ranks[victim].Killed
			leader := -1
			for rank, rr := range res.Ranks {
				if rr.Killed {
					continue
				}
				ok = ok && rr.Err == nil && rr.Finished
				if leader == -1 {
					leader = elected[rank]
				}
				ok = ok && elected[rank] == leader
			}
			ok = ok && leader >= 0
			elect.absorb(ok, mets, reg, res.Elapsed)
			opt.Collector.Absorb(mets, reg)
		}
	}

	ring.addRow(t, "ft ring + jitter + kill")
	validate.addRow(t, "validate_all + partition")
	elect.addRow(t, "election + jitter + kill")
	t.Note("ok must equal seeds: every run terminates with the app-level invariant intact")
	t.Note("false-susp > 0 is expected (jitter, partitions); each one was fenced before being reported")
	ring.lat.addRows(tLat, "ft ring + jitter + kill")
	validate.lat.addRows(tLat, "validate_all + partition")
	elect.lat.addRows(tLat, "election + jitter + kill")
	tLat.Note("suspicion_latency = ground-truth death to first suspicion; fence_rtt = suspicion to confirmed")
	return []*Table{t, tLat}, nil
}

// runTransportComparison runs the same FT ring over the in-memory fabric,
// TCP loopback with both wire codecs (gob baseline vs the pooled binary
// framing), and a latency-model fabric.
func runTransportComparison(opt Options) ([]*Table, error) {
	t := NewTable("E15: same ring, different fabrics",
		"fabric", "ranks", "iters", "elapsed", "us/iter")
	n, iters := 8, 64
	if opt.Quick {
		iters = 16
	}
	fabrics := []struct {
		name string
		make func() transport.Fabric
	}{
		{"local (in-memory)", func() transport.Fabric { return transport.NewLocal() }},
		{"tcp (gob codec)", func() transport.Fabric { return transport.NewTCPCodec(n, transport.CodecGob) }},
		{"tcp (binary codec)", func() transport.Fabric { return transport.NewTCP(n) }},
		{"local + 100us latency", func() transport.Fabric {
			return transport.NewLatency(transport.NewLocal(), 100*time.Microsecond)
		}},
	}
	for _, f := range fabrics {
		_, res, _, err := ringOnce(opt, n, core.Config{Iters: iters, Variant: core.VariantFull},
			func(m *mpi.Config) { m.Fabric = f.make() })
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		t.Add(f.name, n, iters, res.Elapsed,
			float64(res.Elapsed.Microseconds())/float64(iters))
	}
	t.Note("identical engine semantics over all four; only the wire differs")
	return []*Table{t}, nil
}
