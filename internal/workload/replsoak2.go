package workload

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/collective"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// E24 — the replication DURABILITY soak. E22 proved transparent failover
// for the easy kills: a replica dies at a lap boundary and the fan-out
// absorbs it. This soak attacks the three durability gaps that survive
// E22:
//
//  1. The chain forward window. In ReplChain mode the primary relays each
//     accepted frame to its standbys; killing it between acceptance and
//     relay used to lose a frame the SENDER believed delivered (its ARQ
//     saw the link-level ack). The tail-ack protocol closes this: the
//     sender holds every chain send in an outbox until all live group
//     members confirm, and a promotion replays the unconfirmed entries.
//     E24 seeds kills INSIDE the window via the deterministic
//     HookChainForward placement.
//  2. Collectives over replica groups. A primary dies while every other
//     participant is inside a Bcast/Allreduce; the promotion must happen
//     below the collective layer with no aborted op.
//  3. Replica-group depletion. Every kill permanently lowered the failure
//     budget. With AutoRefill the world respawns the lost member itself;
//     E24 drives a full depletion cycle — kill the primary, wait for the
//     automatic refill, kill the REFILL too — and requires every group
//     back at degree R by the epilogue, with zero app-level Spawn calls.
//
// Each seeded world also records a causal trace and must pass the
// conservation audit (every send delivered, dropped, deduplicated, purged
// or dead-dropped — unaccounted=0) and the HLC/token causality check, so
// the tail-ack replay path is held to the same forensic standard as
// normal traffic.
const (
	durRingRanks = 3 // logical ring size
	durR         = 2 // replicas per logical rank
	durLaps      = 18
	durCollEvery = 3 // collective phase every N laps
	durTagTok    = 2
)

// durRates is the E22 network weather: lossy enough to exercise the ARQ
// under the chain-ack traffic without destabilizing the run.
func durRates() chaos.Rates {
	return chaos.Rates{Drop: 0.05, Dup: 0.05, Corrupt: 0.01}
}

// durRun is the measured outcome of one seeded E24 world.
type durRun struct {
	primVictim    int    // physical slot of the primary victim
	killPlacement string // "forward-window" or "mid-collective"
	standbyVictim int    // physical slot of the standby victim
	laps          int
	promotions    int64
	refills       int64
	chainResends  int64
	chainAcks     int64
	elapsed       time.Duration
}

// runDurabilityWorld runs one seeded E24 world in the given replication
// mode and checks the durability contract end to end.
func runDurabilityWorld(opt Options, mode string, seed int64, rec *trace.Recorder, reg *obs.Registry) (*durRun, error) {
	lsize, r := durRingRanks, durR
	nphys := lsize * r
	run := &durRun{}

	// Seed-derived kill schedule. The primary victim's group takes the
	// full depletion cycle (primary kill -> auto refill -> kill the refill
	// -> second refill); the standby victim belongs to a DIFFERENT group
	// so two groups heal concurrently.
	run.primVictim = int(seed) % lsize // primary of logical l is phys l
	run.standbyVictim = lsize + (run.primVictim+1)%lsize
	standbyKillLap := 2 + int(seed)%6
	// Primary kill placement: in chain mode, even seeds kill inside the
	// forward window (the tail-ack gap); odd seeds — and all fan-out
	// seeds — kill between a Bcast and the Allreduce of a collective
	// phase, so the promotion lands mid-collective for the other ranks.
	forwardWindowKill := mode == mpi.ReplChain && seed%2 == 0
	forwardKillOrdinal := int32(2 + seed%4)
	collKillLap := durCollEvery - 1 + (int(seed)%2)*durCollEvery // lap 2 or 5
	run.killPlacement = "mid-collective"
	if forwardWindowKill {
		run.killPlacement = "forward-window"
	}

	mets := metrics.NewWorld(nphys)
	if reg == nil {
		reg = obs.NewRegistry(nphys)
	}
	opt.Collector.Attach(mets, reg)
	var fired atomic.Int32
	var forwards atomic.Int32
	wopts := []mpi.Option{
		mpi.WithMetrics(mets),
		mpi.WithObservability(reg),
		mpi.WithDeadline(120 * time.Second),
		mpi.WithReplication(mpi.ReplicationOptions{
			R: r, Mode: mode, AutoRefill: true, RefillBackoff: time.Millisecond,
		}),
		mpi.WithChaos(chaos.NewPlan(seed).Default(durRates())),
	}
	if rec != nil {
		wopts = append(wopts, mpi.WithTracer(rec))
	}
	if forwardWindowKill {
		wopts = append(wopts, mpi.WithHook(func(ev mpi.HookEvent) mpi.Action {
			// Fell the primary of the victim logical rank immediately
			// before its Nth standby forward — the frame is accepted but
			// not yet relayed. Fire once: the promoted standby (and any
			// refill) shares the logical rank.
			if ev.Point == mpi.HookChainForward && ev.Rank == run.primVictim {
				if forwards.Add(1) == forwardKillOrdinal && fired.Add(1) == 1 {
					return mpi.ActKill
				}
			}
			return mpi.ActNone
		}))
	}
	w, err := mpi.NewWorld(lsize, wopts...)
	if err != nil {
		return nil, err
	}

	// Depletion watcher: once the automatic refill restores the primary
	// victim's slot at generation 2, kill it again — the world must refill
	// a second time. This runs outside any rank function (the app makes
	// zero Spawn/Kill calls).
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for end := time.Now().Add(60 * time.Second); time.Now().Before(end); time.Sleep(2 * time.Millisecond) {
			if w.Registry().Generation(run.primVictim) == 2 {
				w.Kill(run.primVictim)
				return
			}
		}
	}()

	var mu sync.Mutex
	rootLaps := map[int][]int64{}

	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Gen() > 1 {
			// Automatic refills join as warm standbys: they cannot replay
			// the message history their siblings already consumed, so they
			// hold the slot and restore the failure budget.
			return nil
		}
		me, L, phys := p.Rank(), p.Size(), p.PhysRank()

		buf := make([]byte, 8)
		for lap := 0; lap < durLaps; lap++ {
			if phys == run.standbyVictim && lap == standbyKillLap {
				p.Die()
			}
			// Ring phase: the fault-unaware token pass.
			if me == 0 {
				binary.LittleEndian.PutUint64(buf, uint64(lap))
				if serr := c.Send(1%L, durTagTok, buf); serr != nil {
					return serr
				}
				pl, _, rerr := c.Recv(L-1, durTagTok)
				if rerr != nil {
					return rerr
				}
				got := int64(binary.LittleEndian.Uint64(pl))
				mu.Lock()
				rootLaps[phys] = append(rootLaps[phys], got)
				mu.Unlock()
			} else {
				pl, _, rerr := c.Recv(me-1, durTagTok)
				if rerr != nil {
					return rerr
				}
				if serr := c.Send((me+1)%L, durTagTok, pl); serr != nil {
					return serr
				}
			}
			// Collective phase every durCollEvery laps: Bcast + Allreduce
			// over the replica groups.
			if lap%durCollEvery == durCollEvery-1 {
				want := []byte(fmt.Sprintf("coll-%d", lap))
				var in []byte
				if me == 0 {
					in = want
				}
				got, berr := collective.Bcast(c, 0, in)
				if berr != nil {
					return fmt.Errorf("lap %d Bcast: %w", lap, berr)
				}
				if string(got) != string(want) {
					return fmt.Errorf("lap %d Bcast got %q, want %q", lap, got, want)
				}
				if !forwardWindowKill && phys == run.primVictim && lap == collKillLap {
					p.Die() // others are entering the Allreduce: mid-collective promotion
				}
				sum, aerr := collective.Allreduce(c,
					collective.EncodeInt64s([]int64{int64(me)}), collective.SumInt64)
				if aerr != nil {
					return fmt.Errorf("lap %d Allreduce: %w", lap, aerr)
				}
				vals, derr := collective.DecodeInt64s(sum)
				if derr != nil {
					return derr
				}
				if len(vals) != 1 || vals[0] != int64(L*(L-1)/2) {
					return fmt.Errorf("lap %d Allreduce got %v, want [%d]", lap, vals, L*(L-1)/2)
				}
			}
		}

		// Epilogue: every gen-1 survivor waits for the world to heal every
		// replica group back to full degree — the primary victim's slot
		// through TWO refill generations, the standby victim's through one.
		for end := time.Now().Add(60 * time.Second); ; time.Sleep(2 * time.Millisecond) {
			healed := w.Registry().Generation(run.primVictim) >= 3 &&
				w.Registry().Generation(run.standbyVictim) >= 2
			for l := 0; healed && l < L; l++ {
				healed = len(w.LiveReplicas(l)) == r
			}
			if healed {
				return nil
			}
			if !time.Now().Before(end) {
				gens := []int{w.Registry().Generation(run.primVictim), w.Registry().Generation(run.standbyVictim)}
				return fmt.Errorf("phys %d: groups not healed to R=%d (victim gens %v)", phys, r, gens)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	<-watcherDone
	if res.TimedOut {
		return nil, fmt.Errorf("wedged, stuck ranks %v", res.Stuck)
	}

	victims := map[int]bool{run.primVictim: true, run.standbyVictim: true}
	for rank, rr := range res.Ranks {
		if victims[rank] {
			continue // killed, or their parked refills
		}
		if rr.Err != nil {
			return nil, fmt.Errorf("phys %d saw the failure: %w", rank, rr.Err)
		}
		if !rr.Finished {
			return nil, fmt.Errorf("phys %d did not finish", rank)
		}
	}

	// Exactly-once per replica of logical rank 0: laps 0,1,2,... in order;
	// a victim's own record is a clean prefix (it died between laps or
	// inside a collective, never mid-duplicate).
	full := 0
	for phys, laps := range rootLaps {
		for i, lap := range laps {
			if lap != int64(i) {
				return nil, fmt.Errorf("root replica %d arrival %d carried lap %d — not exactly-once: %v",
					phys, i, lap, laps)
			}
		}
		if victims[phys] {
			continue
		}
		if len(laps) != durLaps {
			return nil, fmt.Errorf("root replica %d recorded %d laps, want %d", phys, len(laps), durLaps)
		}
		full++
	}
	wantFull := r
	for v := range victims {
		if v%lsize == 0 {
			wantFull--
		}
	}
	if full != wantFull {
		return nil, fmt.Errorf("%d complete root records, want %d", full, wantFull)
	}

	run.laps = durLaps
	run.promotions = mets.Total(metrics.ReplicaPromotions)
	run.refills = mets.Total(metrics.ReplicaRefills)
	run.chainResends = mets.Total(metrics.ChainResends)
	run.chainAcks = mets.Total(metrics.ChainAcks)
	run.elapsed = res.Elapsed

	// The primary kill promotes exactly one standby; the standby kill and
	// the depletion kill (a parked gen-2 standby) promote nobody.
	if run.promotions != 1 {
		return nil, fmt.Errorf("%d promotions, want 1", run.promotions)
	}
	// Three automatic refills: primary victim gen 1->2 and 2->3, standby
	// victim gen 1->2 — all world-driven, the app never calls Spawn.
	if run.refills != 3 {
		return nil, fmt.Errorf("%d replica refills, want 3", run.refills)
	}
	if len(res.Respawns) != 3 {
		return nil, fmt.Errorf("%d respawns recorded, want 3: %+v", len(res.Respawns), res.Respawns)
	}
	// Zero app-level recovery protocol, as in E22.
	if v, rs := mets.Total(metrics.Validates), mets.Total(metrics.Resends); v != 0 || rs != 0 {
		return nil, fmt.Errorf("app-level recovery ran (validates=%d resends=%d)", v, rs)
	}
	if mode == mpi.ReplChain {
		if run.chainAcks == 0 {
			return nil, fmt.Errorf("chain mode sent no chain acks")
		}
		if forwardWindowKill && run.chainResends == 0 {
			return nil, fmt.Errorf("forward-window kill produced no chain resend: the outbox replay did not run")
		}
	}
	opt.Collector.Absorb(mets, reg)
	return run, nil
}

// runDurabilitySoak is E24: twenty seeds (four in quick mode) per
// replication mode, each a full durability gauntlet with an in-run
// conservation audit, followed by the re-replication latency quantiles.
func runDurabilitySoak(opt Options) ([]*Table, error) {
	t := NewTable("E24: durability soak — tail-acked chain, auto re-replication, replicated collectives",
		"mode", "seed", "prim-victim", "kill-placement", "standby-victim", "laps",
		"promotions", "refills", "chain-resends", "chain-acks", "elapsed")
	seeds := 20
	if opt.Quick {
		seeds = 4
	}
	lat := latTally{}
	for _, mode := range []string{mpi.ReplFanout, mpi.ReplChain} {
		for s := 0; s < seeds; s++ {
			seed := opt.Seed + int64(s)
			rec := trace.New(0)
			reg := obs.NewRegistry(durRingRanks * durR)
			run, err := runDurabilityWorld(opt, mode, seed, rec, reg)
			if err != nil {
				return nil, fmt.Errorf("e24 %s seed %d: %w", mode, seed, err)
			}
			events := rec.Events()
			rep := trace.Audit(events)
			if !rep.Clean() {
				return nil, fmt.Errorf("e24 %s seed %d: conservation audit failed: %d unaccounted send(s), %d orphan delivery(ies)",
					mode, seed, len(rep.Unaccounted), len(rep.OrphanDelivers))
			}
			if v := trace.CheckCausal(events); len(v) > 0 {
				return nil, fmt.Errorf("e24 %s seed %d: causal violation: %s", mode, seed, v[0])
			}
			opt.Collector.AbsorbAudit(rep)
			lat.merge(reg)
			t.Add(mode, seed, run.primVictim, run.killPlacement, run.standbyVictim,
				run.laps, run.promotions, run.refills, run.chainResends, run.chainAcks,
				run.elapsed)
		}
	}
	t.Note("asserted in-run per seed: every lap exactly-once, conservation audit unaccounted=0, causality clean,")
	t.Note("promotions=1, refills=3 (primary victim heals twice, standby victim once) with ZERO app Spawn calls,")
	t.Note("every replica group back at degree R by the epilogue, validates=resends=0")
	t.Note("forward-window kills (chain, even seeds) additionally assert chain-resends>0: the tail-ack outbox replayed")

	tLat := NewTable("E24b: durability latency quantiles (merged over seeds, both modes)",
		"family", "samples", "p50", "p95", "p99", "max")
	for _, f := range []obs.Family{obs.RereplicationLatency, obs.ReplicaPromotion,
		obs.RecoveryTotal} {
		snap := lat[f]
		if snap.Count == 0 {
			continue
		}
		tLat.Add(f.String(), snap.Count,
			time.Duration(snap.Quantile(0.50)), time.Duration(snap.Quantile(0.95)),
			time.Duration(snap.Quantile(0.99)), time.Duration(snap.Max))
	}
	tLat.Note("rereplication_latency = detector confirm of the lost replica to the automatic Spawn restoring the slot")
	return []*Table{t, tLat}, nil
}
