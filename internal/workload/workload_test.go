package workload

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.Add(1, 2*time.Millisecond)
	tab.Add("x", 3.14159)
	tab.Note("footnote %d", 7)
	out := tab.Render()
	for _, want := range []string{"== demo ==", "a", "b", "2ms", "3.142", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, ok := ByID(e.ID)
		if !ok || got.Title != e.Title {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("e99"); ok {
		t.Fatal("unknown id should not resolve")
	}
}

func TestAllHaveMetadata(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if len(ids) != 24 {
		t.Fatalf("have %d experiments, want 24", len(ids))
	}
}

// TestEveryExperimentRunsQuick executes the full suite in quick mode —
// the same code path cmd/ftbench uses — and sanity-checks each table.
func TestEveryExperimentRunsQuick(t *testing.T) {
	opt := Options{Quick: true, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(opt)
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.PaperRef, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tab.Title)
				}
				if out := tab.Render(); !strings.Contains(out, tab.Title) {
					t.Fatalf("%s render broken", e.ID)
				}
			}
		})
	}
}

// TestChaosSoakAllSeedsOK is the acceptance gate for the chaos fabric:
// every seed of every E18 workload must complete with its application
// invariant intact. Full sweep is 20 seeds x 3 workloads; -short shrinks
// it to the quick sweep.
func TestChaosSoakAllSeedsOK(t *testing.T) {
	opt := Options{Quick: testing.Short(), Seed: 1}
	tables, err := runChaosSoak(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] != row[2] {
			t.Fatalf("workload %q: only %s of %s seeds ok\n%s",
				row[0], row[2], row[1], tables[0].Render())
		}
		if row[3] == "0" {
			t.Fatalf("workload %q injected no drops — chaos not wired?", row[0])
		}
	}
}

// TestHeartbeatSoakAllSeedsOK is the acceptance gate for the heartbeat
// detector: every seed of every E19 workload must terminate with the
// application invariant intact, with failures detected only through
// heartbeats, fencing, and confirmation (no oracle). Full sweep is 20
// seeds x 3 workloads; -short shrinks it to the quick sweep.
func TestHeartbeatSoakAllSeedsOK(t *testing.T) {
	opt := Options{Quick: testing.Short(), Seed: 1}
	tables, err := runHeartbeatSoak(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] != row[2] {
			t.Fatalf("workload %q: only %s of %s seeds ok\n%s",
				row[0], row[2], row[1], tables[0].Render())
		}
		if row[3] == "0" {
			t.Fatalf("workload %q sent no heartbeats — detector not wired?", row[0])
		}
		if row[4] == "0" {
			t.Fatalf("workload %q raised no suspicions — nothing was detected?", row[0])
		}
		if row[9] == "0" {
			t.Fatalf("workload %q confirmed no failures\n%s", row[0], tables[0].Render())
		}
	}
	// The detection latency families must reach the quantile table.
	families := map[string]bool{}
	for _, row := range tables[1].Rows {
		families[row[1]] = true
	}
	for _, want := range []string{"suspicion_latency", "fence_rtt"} {
		if !families[want] {
			t.Fatalf("family %q missing from latency table\n%s", want, tables[1].Render())
		}
	}
}

// TestSwimSoakDetectionFlat is the acceptance gate for the SWIM
// detector: E20 must complete with its two in-run assertions intact —
// detection-latency p99 flat vs N (bounded by the mesh baseline with a
// floor) and O(1) control frames per rank per period. -short shrinks the
// sweep to the quick sizes (mesh at 32, swim up to 1024), as does the
// race detector: `go test -race ./...` runs without -short in CI, and
// the N=4096 world under race instrumentation measures the
// instrumentation, not the detector.
func TestSwimSoakDetectionFlat(t *testing.T) {
	opt := Options{Quick: testing.Short() || raceEnabled, Seed: 1}
	tables, err := runSwimSoak(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if rows[0][0] != "heartbeat mesh" {
		t.Fatalf("first row should be the mesh baseline\n%s", tables[0].Render())
	}
	wantRows := 4 // mesh + swim at 64, 256, 1024
	if raceEnabled {
		wantRows = 3 // race builds cap the sweep at 256
	}
	if len(rows) < wantRows {
		t.Fatalf("want mesh + >=%d swim sizes, got %d rows\n%s", wantRows-1, len(rows), tables[0].Render())
	}
	for _, row := range rows {
		if row[2] == "0" {
			t.Fatalf("detector %q at n=%s observed no detection samples\n%s",
				row[0], row[1], tables[0].Render())
		}
		if row[8] == "0" {
			t.Fatalf("detector %q at n=%s confirmed nothing\n%s",
				row[0], row[1], tables[0].Render())
		}
	}
	// The swim rows must gossip: confirms reach non-fencing ranks only
	// through the piggyback channel.
	for _, row := range rows[1:] {
		if row[7] == "0" {
			t.Fatalf("swim at n=%s had no gossip learns\n%s", row[1], tables[0].Render())
		}
	}
}

// TestElasticSoak is the acceptance gate for elastic worlds: E21 must
// complete every seeded run with its in-run assertions intact — the
// victim respawned at generation 2, rank 0 observed every lap exactly
// once in order (no loss from the token dying with its holder, no
// duplicate from the resend), the verification laps crossed the full
// ring including the reincarnation, and the recovered state was at least
// as fresh as the kill lap. -short and race builds shrink the sweep from
// 20 seeds to 6.
func TestElasticSoak(t *testing.T) {
	opt := Options{Quick: testing.Short() || raceEnabled, Seed: 1}
	tables, err := runElasticSoak(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds := 20
	if opt.Quick {
		wantSeeds = 6
	}
	rows := tables[0].Rows
	if len(rows) != wantSeeds {
		t.Fatalf("want %d seed rows, got %d\n%s", wantSeeds, len(rows), tables[0].Render())
	}
	victims := map[string]bool{}
	for _, row := range rows {
		victims[row[1]] = true
	}
	if len(victims) < 2 {
		t.Fatalf("seeds covered only victim(s) %v — the sweep is not exercising ring positions\n%s",
			victims, tables[0].Render())
	}
}

// TestReplicaSoak is the acceptance gate for replication mode: every
// seeded E22 run must absorb its injected replica kill with ZERO recovery
// protocol in the application — the fault-unaware ring completes every
// lap exactly once, no rank function ever observes an error, the
// validates/resends counters stay at zero, and a promotion happens
// exactly when the victim was a primary. The sweep must cover both roles
// and the overhead table must show R=2 costing more than the R=1
// baseline (replication is not free — that is the trade E22 documents).
// -short and race builds shrink the sweep from 20 seeds to 6.
func TestReplicaSoak(t *testing.T) {
	opt := Options{Quick: testing.Short() || raceEnabled, Seed: 1}
	tables, err := runReplicaSoak(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds := 20
	if opt.Quick {
		wantSeeds = 6
	}
	rows := tables[0].Rows
	if len(rows) != wantSeeds {
		t.Fatalf("want %d seed rows, got %d\n%s", wantSeeds, len(rows), tables[0].Render())
	}
	roles := map[string]bool{}
	for _, row := range rows {
		roles[row[2]] = true
	}
	if !roles["primary"] || !roles["standby"] {
		t.Fatalf("seeds covered only role(s) %v — the sweep must kill both primaries and standbys\n%s",
			roles, tables[0].Render())
	}
	// Overhead table: baseline first, then R=2 rows with overhead-x > 1.
	ov := tables[1].Rows
	if len(ov) != 3 || !strings.Contains(ov[0][0], "R=1") {
		t.Fatalf("overhead table should be R=1 baseline + two R=2 rows\n%s", tables[1].Render())
	}
	for _, row := range ov[1:] {
		if row[6] == "0" {
			t.Fatalf("config %q recorded no replica sends\n%s", row[0], tables[1].Render())
		}
	}
	// Promotion latency must have reached the quantile table.
	families := map[string]bool{}
	for _, row := range tables[2].Rows {
		families[row[0]] = true
	}
	for _, want := range []string{"replica_promotion", "replication_overhead"} {
		if !families[want] {
			t.Fatalf("family %q missing from latency table\n%s", want, tables[2].Render())
		}
	}
}

// TestDurabilitySoak is the acceptance gate for the E24 durability
// gauntlet: every seeded run, in BOTH replication modes, must survive its
// full kill schedule — a primary felled inside the chain forward window
// (even chain seeds) or between a Bcast and an Allreduce, a standby of a
// second group, and a depletion kill of the automatic refill — with
// exactly-once delivery, a clean conservation audit, zero app Spawn
// calls, and every replica group healed back to degree R. -short and
// race builds shrink the sweep from 20 seeds to 4 per mode.
func TestDurabilitySoak(t *testing.T) {
	opt := Options{Quick: testing.Short() || raceEnabled, Seed: 1}
	tables, err := runDurabilitySoak(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * 20
	if opt.Quick {
		wantRows = 2 * 4
	}
	rows := tables[0].Rows
	if len(rows) != wantRows {
		t.Fatalf("want %d seed rows, got %d\n%s", wantRows, len(rows), tables[0].Render())
	}
	placements := map[string]bool{}
	for _, row := range rows {
		placements[row[3]] = true
	}
	if !placements["forward-window"] || !placements["mid-collective"] {
		t.Fatalf("sweep covered only placement(s) %v — kills must land both inside the chain forward window and mid-collective\n%s",
			placements, tables[0].Render())
	}
	// The re-replication latency must have reached the quantile table.
	families := map[string]bool{}
	for _, row := range tables[1].Rows {
		families[row[0]] = true
	}
	if !families["rereplication_latency"] {
		t.Fatalf("family %q missing from latency table\n%s", "rereplication_latency", tables[1].Render())
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int64]int64{3: 1, 1: 1, 2: 1}
	got := sortedKeys(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("sortedKeys %v", got)
	}
}
