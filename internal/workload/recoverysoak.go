package workload

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/inject"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// E23 — recovery forensics. Every prior experiment measures recovery as
// one opaque number (kill -> done). This soak uses the causal trace to
// DECOMPOSE it: each seeded world runs with an in-memory recorder, the
// kill produces a trace incident, and trace.Recoveries splits the
// incident into detection (kill -> first suspicion), agreement/fence
// (suspicion -> confirmation), repair (confirmation -> resend past the
// corpse / respawn / standby promotion) and resume (repair -> first
// post-repair delivery). The sweep crosses all three repair strategies
// the runtime implements with all three failure detectors:
//
//	resend    — the paper's ABFT ring: survivors re-route around the corpse
//	respawn   — elastic worlds: the slot reincarnates at generation+1
//	promotion — replication: a hot standby takes over transparently
//
// Every run is also a conservation check: the audit must account for
// every send (delivered, chaos-dropped, deduplicated, purged or
// dead-dropped — anything else is a runtime bug), CheckCausal must find
// no HLC or token violation, and the kill must leave at least one
// reconstructable incident. Any violation fails the experiment.

// recoveryChaosRates is the network weather the forensics run under:
// lossy enough to exercise the ARQ (so the audit sees drops, dedups and
// purges, not just clean deliveries) without destabilizing the
// millisecond-scale detectors.
func recoveryChaosRates() chaos.Rates {
	return chaos.Rates{Drop: 0.03, Dup: 0.03, Corrupt: 0.01}
}

// recoveryTally accumulates per-phase durations over the seeds of one
// (repair, detector) cell.
type recoveryTally struct {
	seeds, incidents                     int
	detect, agree, repair, resume, total []time.Duration
}

func (t *recoveryTally) absorb(ins []*trace.Incident) {
	t.seeds++
	t.incidents += len(ins)
	for _, in := range ins {
		if in.HasSuspected {
			t.detect = append(t.detect, in.Detection)
		}
		if in.HasConfirmed {
			t.agree = append(t.agree, in.Agreement)
		}
		if in.HasRepair {
			t.repair = append(t.repair, in.RepairTime)
		}
		if in.HasResume {
			t.resume = append(t.resume, in.ResumeTime)
		}
		t.total = append(t.total, in.Total)
	}
}

// runRecoveryForensics is E23's entry point.
func runRecoveryForensics(opt Options) ([]*Table, error) {
	t := NewTable("E23: recovery forensics — trace-derived phase decomposition under chaos",
		"repair", "detector", "seeds", "incidents",
		"detect-p50", "agree-p50", "repair-p50", "resume-p50",
		"total-p50", "total-p95", "unaccounted")
	nSeeds := 20
	if opt.Quick {
		nSeeds = 2
	}
	repairs := []string{"resend", "respawn", "promotion"}
	detectors := []string{mpi.DetectorOracle, mpi.DetectorHeartbeat, mpi.DetectorSwim}
	for _, repair := range repairs {
		for _, det := range detectors {
			var tally recoveryTally
			for s := 0; s < nSeeds; s++ {
				seed := opt.Seed + int64(s)
				rec := trace.New(0)
				if err := runRecoveryWorld(opt, repair, det, seed, rec); err != nil {
					return nil, fmt.Errorf("e23 %s/%s seed %d: %w", repair, det, seed, err)
				}
				events := rec.Events()
				rep := trace.Audit(events)
				if !rep.Clean() {
					return nil, fmt.Errorf(
						"e23 %s/%s seed %d: conservation audit failed: %d unaccounted send(s), %d orphan delivery(ies)",
						repair, det, seed, len(rep.Unaccounted), len(rep.OrphanDelivers))
				}
				if v := trace.CheckCausal(events); len(v) > 0 {
					return nil, fmt.Errorf("e23 %s/%s seed %d: causal violation: %s",
						repair, det, seed, v[0])
				}
				incidents := trace.Recoveries(events)
				if len(incidents) == 0 {
					return nil, fmt.Errorf("e23 %s/%s seed %d: kill left no recovery incident in the trace",
						repair, det, seed)
				}
				tally.absorb(incidents)
				opt.Collector.AbsorbAudit(rep)
			}
			t.Add(repair, det, tally.seeds, tally.incidents,
				durQuantile(tally.detect, 0.50), durQuantile(tally.agree, 0.50),
				durQuantile(tally.repair, 0.50), durQuantile(tally.resume, 0.50),
				durQuantile(tally.total, 0.50), durQuantile(tally.total, 0.95), 0)
		}
	}
	t.Note("detect/agree are 0 under the oracle: deaths confirm instantly, the whole latency lands in repair+resume")
	t.Note("unaccounted is asserted zero in-run: any send the audit cannot reconcile fails the experiment")
	return []*Table{t}, nil
}

// runRecoveryWorld runs one seeded world of the given repair strategy
// under the given detector, recording its causal trace into rec.
func runRecoveryWorld(opt Options, repair, det string, seed int64, rec *trace.Recorder) error {
	// Thread the recorder and detector into the soak worlds; the
	// millisecond-scale monitor tunings keep detection latency visible
	// but small next to the 120s world deadlines.
	opt.Tracer = rec
	opt.Detector = det
	opt.Heartbeat = hbSoakOptions()
	opt.Swim = swimSoakOptions()
	switch repair {
	case "resend":
		return runResendRecovery(opt, det, seed, rec)
	case "respawn":
		// The elastic world respawns ANY confirmed-dead slot, so a false
		// suspicion (a reincarnation's first heartbeats delayed under CI
		// load) becomes respawn churn, not just a mislabeled row. Run
		// these cells' monitors with wide margins; the longer detection
		// phase lands honestly in the table.
		opt.Heartbeat = detector.HeartbeatOptions{
			Interval: 5 * time.Millisecond, Timeout: 150 * time.Millisecond,
			SelfFenceAfter: 10 * time.Second,
		}
		opt.Swim = membership.Options{
			Period: 40 * time.Millisecond, SelfFenceAfter: 10 * time.Second, Seed: 7,
		}
		_, err := runElasticWorld(opt, seed, nil, nil)
		return err
	case "promotion":
		cfg := replicaCfg{r: 2, mode: mpi.ReplFanout, kill: true,
			laps: replicaBaseLaps, chaos: true,
			waitRepair: det != mpi.DetectorOracle}
		_, err := runReplicaWorld(opt, cfg, seed, nil, nil)
		return err
	default:
		return fmt.Errorf("unknown repair strategy %q", repair)
	}
}

// runResendRecovery runs the paper's ABFT ring under chaos with a seeded
// mid-iteration kill: the survivors must recognize the failure, resend
// past the corpse, and revalidate — the trace captures every phase.
func runResendRecovery(opt Options, det string, seed int64, rec *trace.Recorder) error {
	const n, iters = 4, 8
	victim := 1 + int(seed)%(n-1) // never rank 0
	plan := chaos.NewPlan(seed).Default(recoveryChaosRates())
	kill := inject.NewPlan().Add(inject.AfterNthRecv(victim, 2))
	mets := metrics.NewWorld(n)
	reg := opt.newObs(n)
	opt.Collector.Attach(mets, reg)
	mcfg := mpi.Config{
		Size: n, Deadline: 60 * time.Second, Metrics: mets, Chaos: plan,
		Obs: reg, Hook: kill.Hook(), Tracer: rec, Detector: det,
	}
	switch det {
	case mpi.DetectorHeartbeat:
		mcfg.Heartbeat = opt.Heartbeat
	case mpi.DetectorSwim:
		mcfg.Swim = opt.Swim
	}
	_, res, err := core.Run(mcfg, core.Config{Iters: iters, Variant: core.VariantFull,
		Termination: core.TermValidateAll, RootPolicy: core.RootElect})
	opt.Collector.Absorb(mets, reg)
	if err != nil {
		return err
	}
	if res.TimedOut {
		return fmt.Errorf("ring timed out")
	}
	if !res.Ranks[victim].Killed {
		return fmt.Errorf("victim %d not killed", victim)
	}
	return nil
}
