package workload

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Collector aggregates observability across every world an experiment
// sweep creates: counter totals summed over runs, latency histogram
// families merged over runs, and a live view of the most recent world so
// an exposition endpoint (ftbench -obs) can be scraped mid-sweep. A nil
// *Collector is valid and absorbs nothing.
type Collector struct {
	mu       sync.Mutex
	runs     int
	counters map[string]int64
	families map[string]obs.HistSnapshot
	audit    auditTotals

	liveMets atomic.Pointer[metrics.World]
	liveObs  atomic.Pointer[obs.Registry]
}

// auditTotals sums trace conservation audits over every audited run.
type auditTotals struct {
	audited     int // runs that contributed an audit
	sends       int
	delivers    int
	accounted   int
	unaccounted int
	orphans     int
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		counters: map[string]int64{},
		families: map[string]obs.HistSnapshot{},
	}
}

// Attach points the live view at a world about to run, so scrapes during
// the run see its counters and histograms.
func (c *Collector) Attach(mets *metrics.World, reg *obs.Registry) {
	if c == nil {
		return
	}
	if mets != nil {
		c.liveMets.Store(mets)
	}
	if reg != nil {
		c.liveObs.Store(reg)
	}
}

// Absorb folds one finished world into the aggregate.
func (c *Collector) Absorb(mets *metrics.World, reg *obs.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	if mets != nil {
		for _, ctr := range metrics.Counters() {
			c.counters[ctr.String()] += mets.Total(ctr)
		}
	}
	if reg != nil {
		for _, fs := range reg.Snapshot().Families {
			c.families[fs.Family.String()] = c.families[fs.Family.String()].Merge(fs.Merged)
		}
	}
}

// AbsorbAudit folds one run's trace conservation audit into the
// aggregate, so ftbench -json reports message conservation across the
// whole sweep.
func (c *Collector) AbsorbAudit(rep *trace.AuditReport) {
	if c == nil || rep == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.audit.audited++
	c.audit.sends += rep.Sends
	c.audit.delivers += rep.Delivers
	c.audit.accounted += rep.Accounted
	c.audit.unaccounted += len(rep.Unaccounted)
	c.audit.orphans += len(rep.OrphanDelivers)
}

// Source returns the live view for obs.Serve: the most recently attached
// world's counters and histograms.
func (c *Collector) Source() obs.Source {
	if c == nil {
		return obs.Source{}
	}
	return obs.Source{Metrics: c.liveMets.Load(), Obs: c.liveObs.Load()}
}

// Runs returns how many worlds have been absorbed.
func (c *Collector) Runs() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// histJSON is the JSON shape of one aggregated histogram family.
type histJSON struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// auditJSON is the JSON shape of the aggregated conservation audit.
type auditJSON struct {
	AuditedRuns int `json:"audited_runs"`
	Sends       int `json:"sends"`
	Delivers    int `json:"delivers"`
	Accounted   int `json:"accounted_losses"`
	Unaccounted int `json:"unaccounted"`
	Orphans     int `json:"orphan_delivers"`
}

// collectorJSON is the machine-readable run summary ftbench -json emits.
type collectorJSON struct {
	GeneratedAt string              `json:"generated_at"`
	Runs        int                 `json:"runs"`
	Counters    map[string]int64    `json:"counters"`
	Histograms  map[string]histJSON `json:"histograms"`
	Audit       *auditJSON          `json:"audit,omitempty"`
}

// WriteJSON emits the aggregate as indented JSON: every counter total and
// every histogram family's count/mean/quantiles. Families with no samples
// are included (count 0) so the schema is stable across runs.
func (c *Collector) WriteJSON(w io.Writer) error {
	out := collectorJSON{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Counters:    map[string]int64{},
		Histograms:  map[string]histJSON{},
	}
	if c != nil {
		c.mu.Lock()
		out.Runs = c.runs
		for k, v := range c.counters {
			out.Counters[k] = v
		}
		for _, f := range obs.Families() {
			s := c.families[f.String()]
			out.Histograms[f.String()] = histJSON{
				Count: s.Count, MeanNS: s.Mean(),
				P50NS: s.Quantile(0.50), P95NS: s.Quantile(0.95), P99NS: s.Quantile(0.99),
				MaxNS: s.Max,
			}
		}
		if c.audit.audited > 0 {
			out.Audit = &auditJSON{
				AuditedRuns: c.audit.audited,
				Sends:       c.audit.sends,
				Delivers:    c.audit.delivers,
				Accounted:   c.audit.accounted,
				Unaccounted: c.audit.unaccounted,
				Orphans:     c.audit.orphans,
			}
		}
		c.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
