package workload

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// ringOnce runs one ring configuration over a fresh world and returns the
// report, run result, elapsed time and metrics. When opt carries a
// Collector, the world also gets a latency-histogram registry and both
// are absorbed into the sweep-wide aggregate (and exposed live for
// ftbench -obs scrapes).
func ringOnce(opt Options, size int, cfg core.Config, mut func(*mpi.Config)) (*core.Report, *mpi.RunResult, *metrics.World, error) {
	mets := metrics.NewWorld(size)
	mcfg := mpi.Config{Size: size, Deadline: 60 * time.Second, Metrics: mets,
		Detector: opt.Detector, Heartbeat: opt.Heartbeat,
		Swim: opt.Swim, Agreement: opt.Agreement}
	if reg := opt.newObs(size); reg != nil {
		mcfg.Obs = reg
		opt.Collector.Attach(mets, reg)
	}
	if mut != nil {
		mut(&mcfg)
	}
	report, res, err := core.Run(mcfg, cfg)
	opt.Collector.Absorb(mets, mcfg.Obs)
	return report, res, mets, err
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(),
		e9(), e10(), e11(), e12(), e13(), e14(), e15(), e16(), e17(),
		e18(), e19(), e20(), e21(), e22(), e23(), e24(),
	}
}

// ByID finds an experiment by its identifier ("e1".."e24").
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func e1() Experiment {
	return Experiment{
		ID: "e1", Title: "Fault-unaware ring baseline", PaperRef: "Fig. 2",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E1: fault-unaware ring (Fig. 2)",
				"ranks", "iters", "elapsed", "us/iter", "msgs", "value-ok")
			for _, n := range opt.sizes([]int{4, 8, 16, 32, 64}) {
				iters := 128
				report, res, mets, err := ringOnce(opt, n, core.Config{Iters: iters, Variant: core.VariantUnaware}, nil)
				if err != nil {
					return nil, err
				}
				ok := len(report.Rank(0).RootValues) == iters
				for _, v := range report.Rank(0).RootValues {
					ok = ok && v == int64(n)
				}
				t.Add(n, iters, res.Elapsed,
					float64(res.Elapsed.Microseconds())/float64(iters),
					mets.Total(metrics.Sends), ok)
			}
			return []*Table{t}, nil
		},
	}
}

func e2() Experiment {
	return Experiment{
		ID: "e2", Title: "FT ring failure-free overhead", PaperRef: "Figs. 3-5, 9, 10",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E2: full FT ring vs unaware, failure-free",
				"ranks", "iters", "unaware", "ft", "overhead-x", "ft-msgs/unaware-msgs")
			for _, n := range opt.sizes([]int{4, 8, 16, 32, 64}) {
				iters := 128
				_, resU, metsU, err := ringOnce(opt, n, core.Config{Iters: iters, Variant: core.VariantUnaware}, nil)
				if err != nil {
					return nil, err
				}
				_, resF, metsF, err := ringOnce(opt, n, core.Config{Iters: iters, Variant: core.VariantFull}, nil)
				if err != nil {
					return nil, err
				}
				t.Add(n, iters, resU.Elapsed, resF.Elapsed,
					float64(resF.Elapsed)/float64(resU.Elapsed),
					float64(metsF.Total(metrics.Sends))/float64(metsU.Total(metrics.Sends)))
			}
			t.Note("expected shape: small constant-factor overhead (marker field, detector management)")
			return []*Table{t}, nil
		},
	}
}

func e3() Experiment {
	return Experiment{
		ID: "e3", Title: "Naive receive deadlocks", PaperRef: "Fig. 6",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E3: naive receive under mid-ring failure (Fig. 6)",
				"ranks", "kill", "outcome", "stuck-ranks", "iters-done")
			plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
			report, res, _, err := ringOnce(opt, 4, core.Config{Iters: 6, Variant: core.VariantNaive},
				func(m *mpi.Config) { m.Hook = plan.Hook(); m.Deadline = 500 * time.Millisecond })
			outcome := "completed"
			if errors.Is(err, mpi.ErrTimedOut) {
				outcome = "DEADLOCK (watchdog)"
			} else if err != nil {
				return nil, err
			}
			t.Add(4, "rank 2 after recv #2", outcome, fmt.Sprint(res.Stuck), report.TotalIterations())
			t.Note("the control was lost with P2; P1 never notices and P3 waits forever (paper Fig. 6)")
			return []*Table{t}, nil
		},
	}
}

func e4() Experiment {
	return Experiment{
		ID: "e4", Title: "Irecv failure detector recovers via resend", PaperRef: "Fig. 7",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E4: Fig. 9 receive under the same failure (Fig. 7)",
				"ranks", "kill", "outcome", "resends", "root-absorbed", "elapsed")
			plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
			report, res, _, err := ringOnce(opt, 4, core.Config{Iters: 6, Variant: core.VariantFull},
				func(m *mpi.Config) { m.Hook = plan.Hook() })
			if err != nil {
				return nil, err
			}
			t.Add(4, "rank 2 after recv #2", "completed", report.TotalResends(),
				len(report.Rank(0).RootValues), res.Elapsed)
			return []*Table{t}, nil
		},
	}
}

func e5() Experiment {
	return Experiment{
		ID: "e5", Title: "Duplicate completions without markers", PaperRef: "Fig. 8",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E5: resend without marker check (Fig. 8)",
				"ranks", "kill", "dups-forwarded", "root-absorptions", "distinct-markers", "markers-absorbed")
			plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
			report, _, _, err := ringOnce(opt, 4, core.Config{Iters: 4, Variant: core.VariantNoMarker},
				func(m *mpi.Config) { m.Hook = plan.Hook() })
			if err != nil {
				return nil, err
			}
			// The root counts 4 absorptions but some are duplicates of the
			// same marker: distinct-markers < root-absorptions is Fig. 8's
			// "multiple completions of the same ring iteration" — and the
			// last real iterations are silently lost.
			root := report.Rank(0)
			t.Add(4, "rank 2 after send #2", report.TotalDupsForwarded(),
				root.Iterations, len(root.RootValues),
				fmt.Sprint(sortedKeys(root.RootValues)))
			t.Note("root counted %d completions but only %d distinct iterations circulated",
				root.Iterations, len(root.RootValues))
			return []*Table{t}, nil
		},
	}
}

func e6() Experiment {
	return Experiment{
		ID: "e6", Title: "Markers suppress duplicates", PaperRef: "Fig. 10",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E6: same failure schedule with markers (Fig. 10)",
				"ranks", "kill", "dups-dropped", "dups-forwarded", "root-absorbed")
			plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
			report, _, _, err := ringOnce(opt, 4, core.Config{Iters: 4, Variant: core.VariantFull},
				func(m *mpi.Config) { m.Hook = plan.Hook() })
			if err != nil {
				return nil, err
			}
			t.Add(4, "rank 2 after send #2", report.TotalDupsDropped(),
				report.TotalDupsForwarded(), len(report.Rank(0).RootValues))
			return []*Table{t}, nil
		},
	}
}

func e7() Experiment {
	return Experiment{
		ID: "e7", Title: "Root-broadcast termination", PaperRef: "Fig. 11",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E7: root-broadcast termination (Fig. 11)",
				"ranks", "failures", "elapsed", "terminated", "resends")
			for _, n := range opt.sizes([]int{4, 8, 16, 32, 64}) {
				for _, f := range []int{0, 1, 3} {
					if f >= n-1 {
						continue
					}
					plan, _ := inject.RandomPlan(opt.Seed+int64(n*10+f), nonRoots(n), f, 4)
					report, res, _, err := ringOnce(opt, n,
						core.Config{Iters: 8, Variant: core.VariantFull, Termination: core.TermRootBcast},
						func(m *mpi.Config) { m.Hook = plan.Hook() })
					if err != nil {
						return nil, fmt.Errorf("n=%d f=%d: %w", n, f, err)
					}
					term := 0
					for r := 0; r < n; r++ {
						if report.Rank(r).Terminated {
							term++
						}
					}
					t.Add(n, f, res.Elapsed, fmt.Sprintf("%d/%d", term, n-f), report.TotalResends())
				}
			}
			return []*Table{t}, nil
		},
	}
}

func e8() Experiment {
	return Experiment{
		ID: "e8", Title: "Leader election", PaperRef: "Fig. 12",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E8: lowest-alive leader election (Fig. 12)",
				"ranks", "failed-prefix", "elected", "unanimous", "elapsed")
			for _, n := range opt.sizes([]int{4, 16, 64, 256}) {
				for _, k := range []int{0, 1, n / 2} {
					elected, elapsed, err := runLowestAliveElection(n, k)
					if err != nil {
						return nil, err
					}
					unanimous := true
					for _, e := range elected {
						if e != k {
							unanimous = false
						}
					}
					t.Add(n, k, k, unanimous, elapsed)
				}
			}
			return []*Table{t}, nil
		},
	}
}

func e9() Experiment {
	return Experiment{
		ID: "e9", Title: "validate_all termination", PaperRef: "Fig. 13",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E9: validate_all termination (Fig. 13)",
				"ranks", "failures", "root-died", "elapsed", "terminated")
			for _, n := range opt.sizes([]int{4, 8, 16, 32, 64}) {
				for _, rootDies := range []bool{false, true} {
					plan := inject.NewPlan()
					f := 1
					if rootDies {
						plan.Add(inject.AfterNthRecv(0, 3))
					} else {
						plan.Add(inject.AfterNthRecv(n/2, 2))
					}
					report, res, _, err := ringOnce(opt, n,
						core.Config{Iters: 8, Variant: core.VariantFull,
							Termination: core.TermValidateAll, RootPolicy: core.RootElect},
						func(m *mpi.Config) { m.Hook = plan.Hook() })
					if err != nil {
						return nil, fmt.Errorf("n=%d rootDies=%v: %w", n, rootDies, err)
					}
					term := 0
					for r := 0; r < n; r++ {
						if report.Rank(r).Terminated {
							term++
						}
					}
					t.Add(n, f, rootDies, res.Elapsed, fmt.Sprintf("%d/%d", term, n-f))
				}
			}
			t.Note("root death needs no special casing: the agreement's coordinator fails over internally")
			return []*Table{t}, nil
		},
	}
}

func e10() Experiment {
	return Experiment{
		ID: "e10", Title: "Run-through multiple failures", PaperRef: "Section III claim",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E10: run-through f failures, 16 ranks, 16 iterations",
				"failures", "elapsed", "resends", "dups-dropped", "root-absorbed", "survivors-done")
			n := 16
			maxF := 6
			if opt.Quick {
				maxF = 2
			}
			for f := 0; f <= maxF; f += 2 {
				plan, _ := inject.RandomPlan(opt.Seed+int64(f), nonRoots(n), f, 8)
				report, res, _, err := ringOnce(opt, n,
					core.Config{Iters: 16, Variant: core.VariantFull, Termination: core.TermValidateAll},
					func(m *mpi.Config) { m.Hook = plan.Hook() })
				if err != nil {
					return nil, fmt.Errorf("f=%d: %w", f, err)
				}
				done := 0
				for r := 0; r < n; r++ {
					if res.Ranks[r].Finished {
						done++
					}
				}
				t.Add(f, res.Elapsed, report.TotalResends(), report.TotalDupsDropped(),
					len(report.Rank(0).RootValues), fmt.Sprintf("%d/%d", done, n-f))
			}
			return []*Table{t}, nil
		},
	}
}

func e11() Experiment {
	return Experiment{
		ID: "e11", Title: "Duplicate-control ablation", PaperRef: "Section III-B",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E11: marker vs separate-tag duplicate control",
				"scheme", "elapsed", "msgs", "bytes", "root-absorbed")
			for _, v := range []core.Variant{core.VariantFull, core.VariantSeparateTag} {
				plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
				report, res, mets, err := ringOnce(opt, 8, core.Config{Iters: 16, Variant: v},
					func(m *mpi.Config) { m.Hook = plan.Hook() })
				if err != nil {
					return nil, fmt.Errorf("%v: %w", v, err)
				}
				t.Add(v.String(), res.Elapsed, mets.Total(metrics.Sends),
					mets.Total(metrics.BytesSent), len(report.Rank(0).RootValues))
			}
			t.Note("both schemes complete; separate-tag posts an extra receive per iteration")
			return []*Table{t}, nil
		},
	}
}

func e12() Experiment {
	return Experiment{
		ID: "e12", Title: "Root failure and control regain", PaperRef: "Section III-D",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E12: root dies mid-run; new root regains control",
				"ranks", "kill", "new-root", "became-root", "absorbed-old", "absorbed-new", "survivors-terminated")
			for _, n := range opt.sizes([]int{5, 9, 17}) {
				plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 3))
				report, res, _, err := ringOnce(opt, n,
					core.Config{Iters: 8, Variant: core.VariantFull,
						Termination: core.TermValidateAll, RootPolicy: core.RootElect},
					func(m *mpi.Config) { m.Hook = plan.Hook() })
				if err != nil {
					return nil, err
				}
				term := 0
				for r := 1; r < n; r++ {
					if report.Rank(r).Terminated {
						term++
					}
				}
				_ = res
				t.Add(n, "root after recv #3", report.Rank(1).FinalRoot,
					report.Rank(1).BecameRoot, len(report.Rank(0).RootValues),
					len(report.Rank(1).RootValues), fmt.Sprintf("%d/%d", term, n-1))
			}
			return []*Table{t}, nil
		},
	}
}

func e13() Experiment {
	return Experiment{
		ID: "e13", Title: "validate_all cost", PaperRef: "Section II (consensus)",
		Run: func(opt Options) ([]*Table, error) {
			t := NewTable("E13: MPI_Comm_validate_all cost",
				"ranks", "failures", "per-validate", "agreement-msgs/validate", "agreed-count")
			reps := 20
			if opt.Quick {
				reps = 5
			}
			for _, n := range opt.sizes([]int{4, 8, 16, 32, 64}) {
				for _, f := range []int{0, 2} {
					if f >= n-1 {
						continue
					}
					elapsed, msgs, count, err := runValidateBench(n, f, reps)
					if err != nil {
						return nil, err
					}
					t.Add(n, f, elapsed/time.Duration(reps), msgs/int64(reps), count)
				}
			}
			return []*Table{t}, nil
		},
	}
}

func e14() Experiment {
	return Experiment{
		ID: "e14", Title: "Collective failure semantics", PaperRef: "Section II",
		Run: func(opt Options) ([]*Table, error) {
			return runCollectiveSemantics()
		},
	}
}

func e15() Experiment {
	return Experiment{
		ID: "e15", Title: "Transport comparison", PaperRef: "substrate",
		Run: func(opt Options) ([]*Table, error) {
			return runTransportComparison(opt)
		},
	}
}

func e16() Experiment {
	return Experiment{
		ID: "e16", Title: "Exhaustive fault-placement sweep", PaperRef: "Section III-E",
		Run: func(opt Options) ([]*Table, error) {
			return runPlacementSweep(opt)
		},
	}
}

func e17() Experiment {
	return Experiment{
		ID: "e17", Title: "Large-N matching scalability", PaperRef: "engine",
		Run: func(opt Options) ([]*Table, error) {
			return runLargeN(opt)
		},
	}
}

func e18() Experiment {
	return Experiment{
		ID: "e18", Title: "Chaos soak under lossy links", PaperRef: "robustness",
		Run: func(opt Options) ([]*Table, error) {
			return runChaosSoak(opt)
		},
	}
}

func e19() Experiment {
	return Experiment{
		ID: "e19", Title: "Heartbeat detector soak", PaperRef: "Sec. III detector, made real",
		Run: func(opt Options) ([]*Table, error) {
			return runHeartbeatSoak(opt)
		},
	}
}

func e20() Experiment {
	return Experiment{
		ID: "e20", Title: "SWIM membership scaling soak", PaperRef: "Sec. III detector, at scale",
		Run: func(opt Options) ([]*Table, error) {
			return runSwimSoak(opt)
		},
	}
}

func e21() Experiment {
	return Experiment{
		ID: "e21", Title: "Elastic shrink/respawn soak", PaperRef: "beyond run-through: ULFM-style repair",
		Run: func(opt Options) ([]*Table, error) {
			return runElasticSoak(opt)
		},
	}
}

func e22() Experiment {
	return Experiment{
		ID: "e22", Title: "Replication soak: transparent failover", PaperRef: "the other FT strategy: hot replicas vs ABFT",
		Run: func(opt Options) ([]*Table, error) {
			return runReplicaSoak(opt)
		},
	}
}

func e23() Experiment {
	return Experiment{
		ID: "e23", Title: "Recovery forensics: trace-derived phase decomposition", PaperRef: "recovery time, decomposed causally",
		Run: func(opt Options) ([]*Table, error) {
			return runRecoveryForensics(opt)
		},
	}
}

func e24() Experiment {
	return Experiment{
		ID: "e24", Title: "Durability soak: chain tail-acks, auto re-replication, replicated collectives", PaperRef: "replication durability under seeded worst-case kills",
		Run: func(opt Options) ([]*Table, error) {
			return runDurabilitySoak(opt)
		},
	}
}

// nonRoots lists all comm ranks except 0 (failure candidates when the
// root must survive).
func nonRoots(n int) []int {
	out := make([]int, 0, n-1)
	for r := 1; r < n; r++ {
		out = append(out, r)
	}
	return out
}

// sortedKeys returns map keys in ascending order (test/table helper).
func sortedKeys(m map[int64]int64) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
