package workload

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ReplicaDemoRanks is the LOGICAL ring size of the replication protocol;
// cmd/ftring multiplies it by -replicas to size its metrics recorder and
// histogram registry (replication worlds meter every physical slot).
const ReplicaDemoRanks = replicaRingRanks

// RunReplicaDemo runs one seeded replication world (the E22 protocol)
// with R replicas per logical rank in the given replication mode
// (mpi.ReplFanout or mpi.ReplChain) over the caller's metrics recorder
// and histogram registry — both sized to ReplicaDemoRanks*R — and returns
// the one-row result table. This is the entry point behind cmd/ftring's
// -replicas mode, so a live -obs endpoint scrapes the promotion and
// dedup counters as a replica is killed mid-run. With refill set, the
// world re-replicates the killed slot automatically and the run does not
// return until the group is back at degree R. A non-nil rec records the
// causal trace (for -trace-out / traceconv -audit). With R == 1 there is
// no replica to absorb a failure, so the run is failure-free.
func RunReplicaDemo(seed int64, r int, mode string, refill bool,
	rec *trace.Recorder, mets *metrics.World, reg *obs.Registry) (*Table, error) {
	t := NewTable("replication demo — hot replicas, transparent failover under chaos",
		"seed", "R", "mode", "victim-phys", "role", "kill-lap", "laps", "promotions",
		"dedup-drops", "replica-sends", "refills", "elapsed")
	cfg := replicaCfg{r: r, mode: mode, kill: r >= 2,
		laps: replicaBaseLaps, chaos: true, autoRefill: refill && r >= 2}
	run, err := runReplicaWorld(Options{Tracer: rec}, cfg, seed, mets, reg)
	if err != nil {
		return nil, err
	}
	t.Add(seed, r, mode, run.victim, run.role, run.killLap, run.laps, run.promotions,
		run.dedupDrops, run.replicaSends, run.refills, run.elapsed)
	return t, nil
}

// E22 — the replication soak. The paper's answer to failure is an ABFT
// protocol: the application recognizes failures, resends past corpses and
// deduplicates by marker. Replication is the opposite trade: each logical
// rank is backed by R hot replicas, every send fans out to all of them,
// receives are deduplicated below the matching layer, and a replica death
// promotes a standby — so the application needs NO recovery protocol at
// all. E22 proves that claim by running the fault-UNAWARE ring (plain
// Send/Recv, fixed peers, no RecognizeLocal, no resend, no validate) over
// an R=2 replicated world under chaos, killing one replica per seed:
//
//	kill -> detector Confirm -> promotion of the standby (invisible to the
//	app) -> the ring completes every lap exactly once with zero app-level
//	recovery actions.
//
// Exactly-once is asserted structurally: every surviving replica of
// logical rank 0 recorded lap 0,1,2,... with no gap, duplicate or
// reordering, and the Validates/Resends counters — the ABFT protocol's
// fingerprints — are zero.
const (
	replicaRingRanks = 4
	// replicaBaseLaps is how many laps the token makes while the kill and
	// promotion play out; the kill lap is always well inside this.
	replicaBaseLaps = 16
	// replicaOverheadLaps sizes the failure-free overhead measurement
	// (R=1 vs R=2): long enough that per-lap cost dominates world setup.
	replicaOverheadLaps = 64
	replicaTagTok       = 1
)

// replicaRates is the chaos the soak runs under — the elastic-soak mix,
// so E21 and E22 absorb their kills under identical network weather.
func replicaRates() chaos.Rates {
	return chaos.Rates{Drop: 0.05, Dup: 0.05, Corrupt: 0.01}
}

// replicaCfg selects one replication-world configuration.
type replicaCfg struct {
	r     int    // replicas per logical rank
	mode  string // mpi.ReplFanout or mpi.ReplChain
	kill  bool   // kill one seeded replica mid-run
	laps  int
	chaos bool
	// waitRepair parks the logical-0 replicas between the base and the
	// final verify laps until the detector has confirmed the kill and any
	// due promotion has landed. With real (non-oracle) detectors the
	// unaware ring can outrun detection entirely; E23's forensics need
	// the repair — and a post-repair delivery — inside the run.
	waitRepair bool
	// autoRefill turns on automatic re-replication: the world respawns
	// the killed slot itself and the run's epilogue waits until every
	// replica group is back at degree r.
	autoRefill bool
}

// replicaWaitLaps is how many laps run after the repair wait-point when
// waitRepair is set: they traverse the repaired world, giving the trace
// its post-repair deliveries.
const replicaWaitLaps = 2

// waitForRepair polls the world counters until the kill is confirmed
// (and, when the victim was a primary, until the standby promotion
// landed), bounded well inside the world deadline. A timeout falls
// through: the promotion assertions after the run report the failure.
func waitForRepair(mets *metrics.World, needProm bool) {
	for end := time.Now().Add(30 * time.Second); time.Now().Before(end); time.Sleep(2 * time.Millisecond) {
		if mets.Total(metrics.Confirms) >= 1 &&
			(!needProm || mets.Total(metrics.ReplicaPromotions) >= 1) {
			return
		}
	}
}

// replicaRun is the measured outcome of one seeded E22 world.
type replicaRun struct {
	victim       int    // physical slot killed (-1 when cfg.kill is false)
	role         string // "primary" or "standby" (what the victim was)
	killLap      int
	laps         int // laps the longest-lived root replica completed
	promotions   int64
	dedupDrops   int64
	replicaSends int64
	refills      int64
	validates    int64
	resends      int64
	elapsed      time.Duration
}

// runReplicaWorld runs one seeded replication ring world and checks the
// transparent-failover contract end to end: the app is the fault-unaware
// ring, a seeded replica dies, and the run must still deliver every lap
// exactly once with zero app-level recovery. The victim physical slot and
// kill lap derive from the seed, so twenty seeds cover primaries,
// standbys, the root's own replicas, and different phases of the ring.
func runReplicaWorld(opt Options, cfg replicaCfg, seed int64, mets *metrics.World, reg *obs.Registry) (*replicaRun, error) {
	lsize := replicaRingRanks
	nphys := lsize * cfg.r
	run := &replicaRun{victim: -1, killLap: -1, role: "none"}
	if cfg.kill {
		run.victim = int(seed) % nphys
		run.killLap = 2 + int(seed)%8
		run.role = "standby"
		if run.victim < lsize { // prefix-striped: replica 0 of logical l is slot l
			run.role = "primary"
		}
	}

	if mets == nil {
		mets = metrics.NewWorld(nphys)
	}
	if reg == nil {
		// Always metered: the soak's promotion-latency quantiles come from
		// this registry even when no collector is attached.
		reg = obs.NewRegistry(nphys)
	}
	opt.Collector.Attach(mets, reg)
	wopts := []mpi.Option{
		mpi.WithMetrics(mets),
		mpi.WithObservability(reg),
		mpi.WithDeadline(120 * time.Second),
		mpi.WithReplication(mpi.ReplicationOptions{
			R: cfg.r, Mode: cfg.mode,
			AutoRefill: cfg.autoRefill, RefillBackoff: time.Millisecond,
		}),
	}
	if cfg.chaos {
		wopts = append(wopts, mpi.WithChaos(chaos.NewPlan(seed).Default(replicaRates())))
	}
	if opt.Tracer != nil {
		wopts = append(wopts, mpi.WithTracer(opt.Tracer))
	}
	switch opt.Detector {
	case mpi.DetectorHeartbeat:
		wopts = append(wopts, mpi.WithHeartbeat(opt.Heartbeat))
	case mpi.DetectorSwim:
		wopts = append(wopts, mpi.WithSwim(opt.Swim))
	}
	w, err := mpi.NewWorld(lsize, wopts...)
	if err != nil {
		return nil, err
	}

	// Every replica of logical rank 0 records the laps it observed; the
	// exactly-once assertion below runs per replica record.
	var mu sync.Mutex
	rootLaps := map[int][]int64{}

	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Gen() > 1 {
			// An automatic refill joins as a warm standby: it cannot replay
			// the message history its siblings already consumed, so it holds
			// the slot and restores the failure budget.
			return nil
		}
		me, L, phys := p.Rank(), p.Size(), p.PhysRank()

		// The entire application: the paper's Fig. 2 fault-UNAWARE ring.
		// Fixed peers, blocking calls, no failure handling of any kind —
		// the replication layer beneath is what absorbs the kill.
		buf := make([]byte, 8)
		for lap := 0; lap < cfg.laps; lap++ {
			if cfg.kill && phys == run.victim && lap == run.killLap {
				p.Die()
			}
			if cfg.waitRepair && me == 0 && lap == cfg.laps-replicaWaitLaps {
				waitForRepair(mets, run.role == "primary")
			}
			if me == 0 {
				binary.LittleEndian.PutUint64(buf, uint64(lap))
				if serr := c.Send(1%L, replicaTagTok, buf); serr != nil {
					return serr
				}
				pl, _, rerr := c.Recv(L-1, replicaTagTok)
				if rerr != nil {
					return rerr
				}
				got := int64(binary.LittleEndian.Uint64(pl))
				mu.Lock()
				rootLaps[phys] = append(rootLaps[phys], got)
				mu.Unlock()
			} else {
				pl, _, rerr := c.Recv(me-1, replicaTagTok)
				if rerr != nil {
					return rerr
				}
				if serr := c.Send((me+1)%L, replicaTagTok, pl); serr != nil {
					return serr
				}
			}
		}
		if cfg.autoRefill && cfg.kill {
			// Epilogue: survivors hold the world open until the automatic
			// refill has restored every replica group to full degree.
			for end := time.Now().Add(30 * time.Second); ; time.Sleep(2 * time.Millisecond) {
				healed := true
				for l := 0; l < L; l++ {
					if len(w.LiveReplicas(l)) != cfg.r {
						healed = false
						break
					}
				}
				if healed {
					break
				}
				if !time.Now().Before(end) {
					return fmt.Errorf("phys %d: replica groups not refilled to R=%d", phys, cfg.r)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("seed %d: wedged, stuck ranks %v", seed, res.Stuck)
	}
	for rank, rr := range res.Ranks {
		if cfg.kill && rank == run.victim {
			if !rr.Killed {
				return nil, fmt.Errorf("seed %d: victim %d not recorded killed", seed, rank)
			}
			continue
		}
		// Zero app-visible failures: every other replica ran the unaware
		// ring to completion without ever seeing an error.
		if rr.Err != nil {
			return nil, fmt.Errorf("seed %d: phys %d saw the failure: %w", seed, rank, rr.Err)
		}
		if !rr.Finished {
			return nil, fmt.Errorf("seed %d: phys %d did not finish", seed, rank)
		}
	}

	// Exactly-once per surviving root replica: laps 0,1,2,... complete, in
	// order. The victim's own record (when it backed logical 0) is a clean
	// prefix — it died at a lap boundary, never mid-duplicate.
	full := 0
	for phys, laps := range rootLaps {
		for i, lap := range laps {
			if lap != int64(i) {
				return nil, fmt.Errorf("seed %d: root replica %d arrival %d carried lap %d — not exactly-once: %v",
					seed, phys, i, lap, laps)
			}
		}
		if cfg.kill && phys == run.victim {
			continue
		}
		if len(laps) != cfg.laps {
			return nil, fmt.Errorf("seed %d: root replica %d recorded %d laps, want %d",
				seed, phys, len(laps), cfg.laps)
		}
		full++
		run.laps = len(laps)
	}
	if want := cfg.r - boolInt(cfg.kill && run.victim%lsize == 0); full != want {
		return nil, fmt.Errorf("seed %d: %d complete root records, want %d", seed, full, want)
	}

	run.promotions = mets.Total(metrics.ReplicaPromotions)
	run.dedupDrops = mets.Total(metrics.ReplicaDedupDrops)
	run.replicaSends = mets.Total(metrics.ReplicaSends)
	run.refills = mets.Total(metrics.ReplicaRefills)
	run.validates = mets.Total(metrics.Validates)
	run.resends = mets.Total(metrics.Resends)
	run.elapsed = res.Elapsed
	if cfg.autoRefill && cfg.kill && run.refills == 0 {
		return nil, fmt.Errorf("seed %d: auto re-replication never refilled the killed slot", seed)
	}

	// The kill is absorbed below the app: a dead primary promotes exactly
	// one standby, a dead standby promotes nobody.
	wantProm := int64(0)
	if cfg.kill && run.role == "primary" {
		wantProm = 1
	}
	if run.promotions != wantProm {
		return nil, fmt.Errorf("seed %d: %d promotions, want %d (victim %d was a %s)",
			seed, run.promotions, wantProm, run.victim, run.role)
	}
	// Zero recovery protocol: the ABFT counters never move.
	if run.validates != 0 || run.resends != 0 {
		return nil, fmt.Errorf("seed %d: app-level recovery ran (validates=%d resends=%d) — replication must absorb the kill",
			seed, run.validates, run.resends)
	}
	if cfg.r > 1 && cfg.mode == mpi.ReplFanout {
		if run.replicaSends == 0 {
			return nil, fmt.Errorf("seed %d: replica_sends is zero with R=%d", seed, cfg.r)
		}
		if run.dedupDrops == 0 {
			return nil, fmt.Errorf("seed %d: replica_dedup_drops is zero with R=%d fan-out", seed, cfg.r)
		}
	}
	opt.Collector.Absorb(mets, reg)
	return run, nil
}

// runReplicaSoak is E22: twenty seeded replication runs (six in quick
// mode), each asserting transparent failover of the fault-unaware ring,
// followed by the failure-free overhead table (R=1 baseline vs R=2
// fan-out vs R=2 chain) and the promotion-latency quantiles merged over
// the sweep.
func runReplicaSoak(opt Options) ([]*Table, error) {
	mode := opt.RepMode
	if mode == "" {
		mode = mpi.ReplFanout
	}
	t := NewTable(fmt.Sprintf("E22: replication soak — one replica killed per seed, fault-unaware ring, R=2 %s", mode),
		"seed", "victim-phys", "role", "kill-lap", "laps", "promotions",
		"dedup-drops", "replica-sends", "elapsed")
	seeds := 20
	if opt.Quick {
		seeds = 6
	}
	lat := latTally{}
	for s := 0; s < seeds; s++ {
		seed := opt.Seed + int64(s)
		reg := obs.NewRegistry(replicaRingRanks * 2)
		cfg := replicaCfg{r: 2, mode: mode, kill: true,
			laps: replicaBaseLaps, chaos: true}
		r, err := runReplicaWorld(opt, cfg, seed, nil, reg)
		if err != nil {
			return nil, err
		}
		lat.merge(reg)
		t.Add(seed, r.victim, r.role, r.killLap, r.laps, r.promotions,
			r.dedupDrops, r.replicaSends, r.elapsed)
	}
	t.Note("asserted in-run per seed: every surviving replica of rank 0 saw every lap exactly once in order,")
	t.Note("no rank function ever observed an error, validates=resends=0 (the app has NO recovery protocol),")
	t.Note("promotions=1 iff the victim was a primary")

	tOv, err := runReplicaOverhead(opt)
	if err != nil {
		return nil, err
	}

	tLat := NewTable("E22c: replication latency quantiles (merged over seeds)",
		"family", "samples", "p50", "p95", "p99", "max")
	for _, f := range []obs.Family{obs.ReplicaPromotion, obs.ReplicationOverhead,
		obs.NotifyLatency, obs.SendComplete} {
		snap := lat[f]
		if snap.Count == 0 {
			continue
		}
		tLat.Add(f.String(), snap.Count,
			time.Duration(snap.Quantile(0.50)), time.Duration(snap.Quantile(0.95)),
			time.Duration(snap.Quantile(0.99)), time.Duration(snap.Max))
	}
	tLat.Note("replica_promotion = detector Confirm to standby promoted; replication_overhead = extra fan-out copies per send")
	return []*Table{t, tOv, tLat}, nil
}

// runReplicaOverhead measures what replication costs when nothing fails:
// the same ring, same lap count, no chaos and no kill, over the plain
// world (the R=1 baseline), R=2 fan-out and R=2 chain. This is the other
// half of the FT-strategy trade: replication buys app-invisible failover
// with every message sent R times and every rank run R times.
func runReplicaOverhead(opt Options) (*Table, error) {
	t := NewTable("E22b: failure-free overhead — same ring, same laps, no faults",
		"config", "phys-ranks", "laps", "elapsed", "us/lap", "overhead-x", "replica-sends")
	laps := replicaOverheadLaps
	if opt.Quick {
		laps = replicaOverheadLaps / 4
	}

	// R=1 baseline: the plain (non-replicated) runtime path.
	base, err := runPlainRing(laps)
	if err != nil {
		return nil, fmt.Errorf("R=1 baseline: %w", err)
	}
	t.Add("R=1 (no replication)", replicaRingRanks, laps, base,
		float64(base.Microseconds())/float64(laps), 1.0, 0)

	for _, cfg := range []struct {
		name string
		mode string
	}{
		{"R=2 fan-out", mpi.ReplFanout},
		{"R=2 chain", mpi.ReplChain},
	} {
		c := replicaCfg{r: 2, mode: cfg.mode, kill: false, laps: laps, chaos: false}
		r, err := runReplicaWorld(opt, c, opt.Seed, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		t.Add(cfg.name, replicaRingRanks*2, laps, r.elapsed,
			float64(r.elapsed.Microseconds())/float64(laps),
			float64(r.elapsed)/float64(base), r.replicaSends)
	}
	t.Note("overhead-x vs the plain runtime: the price of every send fanned out and every rank duplicated")
	return t, nil
}

// runPlainRing times the identical fault-unaware ring on the plain
// (non-replicated) runtime — the honest R=1 baseline for E22b.
func runPlainRing(laps int) (time.Duration, error) {
	n := replicaRingRanks
	w, err := mpi.NewWorld(n, mpi.WithDeadline(120*time.Second))
	if err != nil {
		return 0, err
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		me := p.Rank()
		buf := make([]byte, 8)
		for lap := 0; lap < laps; lap++ {
			if me == 0 {
				binary.LittleEndian.PutUint64(buf, uint64(lap))
				if serr := c.Send(1%n, replicaTagTok, buf); serr != nil {
					return serr
				}
				if _, _, rerr := c.Recv(n-1, replicaTagTok); rerr != nil {
					return rerr
				}
			} else {
				pl, _, rerr := c.Recv(me-1, replicaTagTok)
				if rerr != nil {
					return rerr
				}
				if serr := c.Send((me+1)%n, replicaTagTok, pl); serr != nil {
					return serr
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for rank, rr := range res.Ranks {
		if rr.Err != nil {
			return 0, fmt.Errorf("rank %d: %w", rank, rr.Err)
		}
	}
	return res.Elapsed, nil
}

// boolInt is 1 when b is true (table/assertion arithmetic helper).
func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
