//go:build !race

package workload

// raceEnabled reports whether the race detector is compiled in. Soak
// tests use it to shrink sweeps: the detector multiplies scheduler and
// memory costs by an order of magnitude, so full-scale worlds under
// -race measure the instrumentation, not the protocol.
const raceEnabled = false
