package workload

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestCollectorCoversAllFamilies is the observability-plumbing gate: one
// swim-mode detection world, one replication world and one E24
// durability world absorbed into a Collector must surface EVERY
// histogram family and EVERY counter in the -json output — the schema is
// complete and stable — and the families recent PRs added
// (swim_probe_rtt, gossip_convergence, replica_promotion,
// replication_overhead, and now rereplication_latency) must carry real
// samples, proving the new hooks flow end to end through obs -> World ->
// Collector -> JSON.
func TestCollectorCoversAllFamilies(t *testing.T) {
	c := NewCollector()
	opt := Options{Quick: true, Seed: 1, Collector: c}
	if _, err := runDetectionWorld(opt, 16, mpi.DetectorSwim); err != nil {
		t.Fatal(err)
	}
	// Seed 1 kills physical slot 1 — a primary, so the run exercises a
	// promotion and its latency sample, not just the fan-out counters.
	rcfg := replicaCfg{r: 2, mode: mpi.ReplFanout, kill: true,
		laps: replicaBaseLaps, chaos: true}
	if _, err := runReplicaWorld(opt, rcfg, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	// One chain-mode durability world with a forward-window kill (seed 2
	// is even) lights the tail-ack counters (chain_acks, a guaranteed
	// chain_resends) and the auto re-replication pipeline (replica_refills
	// + rereplication_latency samples).
	if _, err := runDurabilityWorld(opt, mpi.ReplChain, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if c.Runs() < 3 {
		t.Fatalf("collector absorbed %d worlds, want 3", c.Runs())
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Runs       int                 `json:"runs"`
		Counters   map[string]int64    `json:"counters"`
		Histograms map[string]histJSON `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("ftbench -json output is not valid JSON: %v", err)
	}

	// Schema completeness: every family and counter appears by name even
	// when it has no samples in this particular run.
	for _, f := range obs.Families() {
		if _, ok := out.Histograms[f.String()]; !ok {
			t.Errorf("histogram family %q missing from JSON output", f)
		}
	}
	for _, ctr := range metrics.Counters() {
		if _, ok := out.Counters[ctr.String()]; !ok {
			t.Errorf("counter %q missing from JSON output", ctr)
		}
	}

	// The families and counters these worlds must actually light up.
	// message_e2e_latency comes from the HLC stamps every tokened data
	// message carries; recovery_total from the kill -> promotion incident.
	for _, name := range []string{"swim_probe_rtt", "gossip_convergence", "suspicion_latency",
		"replica_promotion", "replication_overhead", "rereplication_latency",
		"message_e2e_latency", "recovery_total"} {
		if out.Histograms[name].Count == 0 {
			t.Errorf("family %q has no samples after the swim + replication + durability runs\n%s", name, buf.String())
		}
	}
	for _, name := range []string{"control_frames", "swim_probes", "gossip_events", "gossip_learns",
		"replica_sends", "replica_promotions", "replica_dedup_drops",
		"replica_refills", "chain_resends", "chain_acks"} {
		if out.Counters[name] == 0 {
			t.Errorf("counter %q is zero after the swim + replication + durability runs", name)
		}
	}
	if out.Counters["gossip_decode_errors"] != 0 {
		t.Errorf("%d gossip decode errors on a clean fabric", out.Counters["gossip_decode_errors"])
	}
}

// TestCollectorEmitsAuditBlock: the -json audit summary appears exactly
// when a run contributed a conservation audit, with the totals summed.
func TestCollectorEmitsAuditBlock(t *testing.T) {
	c := NewCollector()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Audit *auditJSON `json:"audit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Audit != nil {
		t.Fatal("audit block must be omitted when no run was audited")
	}

	c.AbsorbAudit(&trace.AuditReport{Sends: 10, Delivers: 8, Accounted: 2})
	c.AbsorbAudit(&trace.AuditReport{Sends: 5, Delivers: 5, Unaccounted: []uint64{7}})
	buf.Reset()
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Audit == nil {
		t.Fatal("audit block missing after AbsorbAudit")
	}
	want := auditJSON{AuditedRuns: 2, Sends: 15, Delivers: 13, Accounted: 2, Unaccounted: 1}
	if *out.Audit != want {
		t.Fatalf("audit block %+v, want %+v", *out.Audit, want)
	}
}
