package workload

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// TestCollectorCoversAllFamilies is the observability-plumbing gate: one
// swim-mode detection world absorbed into a Collector must surface EVERY
// histogram family and EVERY counter in the -json output — the schema is
// complete and stable — and the families this PR added (swim_probe_rtt,
// gossip_convergence) must carry real samples, proving the new hooks flow
// end to end through obs -> World -> Collector -> JSON.
func TestCollectorCoversAllFamilies(t *testing.T) {
	c := NewCollector()
	opt := Options{Quick: true, Seed: 1, Collector: c}
	if _, err := runDetectionWorld(opt, 16, mpi.DetectorSwim); err != nil {
		t.Fatal(err)
	}
	if c.Runs() == 0 {
		t.Fatal("collector absorbed no worlds")
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Runs       int                 `json:"runs"`
		Counters   map[string]int64    `json:"counters"`
		Histograms map[string]histJSON `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("ftbench -json output is not valid JSON: %v", err)
	}

	// Schema completeness: every family and counter appears by name even
	// when it has no samples in this particular run.
	for _, f := range obs.Families() {
		if _, ok := out.Histograms[f.String()]; !ok {
			t.Errorf("histogram family %q missing from JSON output", f)
		}
	}
	for _, ctr := range metrics.Counters() {
		if _, ok := out.Counters[ctr.String()]; !ok {
			t.Errorf("counter %q missing from JSON output", ctr)
		}
	}

	// The families and counters this detector mode must actually light up.
	for _, name := range []string{"swim_probe_rtt", "gossip_convergence", "suspicion_latency"} {
		if out.Histograms[name].Count == 0 {
			t.Errorf("family %q has no samples after a swim detection run\n%s", name, buf.String())
		}
	}
	for _, name := range []string{"control_frames", "swim_probes", "gossip_events", "gossip_learns"} {
		if out.Counters[name] == 0 {
			t.Errorf("counter %q is zero after a swim detection run", name)
		}
	}
	if out.Counters["gossip_decode_errors"] != 0 {
		t.Errorf("%d gossip decode errors on a clean fabric", out.Counters["gossip_decode_errors"])
	}
}
