// Package workload is the experiment harness behind cmd/ftbench and
// EXPERIMENTS.md: it programmatically re-runs every experiment in the
// per-experiment index of DESIGN.md (E1-E20) — one per figure or claim of
// the paper — and renders the result tables.
package workload

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Table is an ordered result table for one experiment.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row, formatting each value with %v (durations are
// rendered rounded to the microsecond, floats to three decimals).
func (t *Table) Add(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form footnote rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table for terminals and EXPERIMENTS.md code blocks.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	_ = tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the DESIGN.md experiment identifier (e.g. "e7").
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef names the figure/section being reproduced.
	PaperRef string
	// Run executes the experiment and returns its tables.
	Run func(opt Options) ([]*Table, error)
}

// Options tune experiment scale.
type Options struct {
	// Quick shrinks sweeps for CI-speed runs.
	Quick bool
	// Seed drives the randomized failure schedules.
	Seed int64
	// Collector, when non-nil, aggregates counters and latency histograms
	// across every world the experiments create, for -json output and the
	// live -obs exposition.
	Collector *Collector
	// Detector overrides the failure-detection mode of the generic ring
	// worlds ("" keeps the oracle default). E19 always runs heartbeat
	// monitors and E20 always runs SWIM monitors regardless.
	Detector string
	// Heartbeat tunes the monitors when Detector is "heartbeat".
	Heartbeat detector.HeartbeatOptions
	// Swim tunes the monitors when Detector is "swim".
	Swim membership.Options
	// Agreement selects the validate_all topology for the generic ring
	// worlds ("" keeps the coordinator default).
	Agreement string
	// RepMode selects the replication propagation mode of the E22 kill
	// sweep: mpi.ReplFanout or mpi.ReplChain ("" keeps the fanout
	// default). E24 always sweeps both modes regardless.
	RepMode string
	// Tracer, when non-nil, records every world's causal event stream
	// (E23's recovery forensics run one recorder per seeded world and
	// audit it for message conservation).
	Tracer *trace.Recorder
}

// obsMaxRanks caps the world size that gets a histogram registry: each
// (family, rank) histogram is ~2KB of atomics, so the E17 large-N worlds
// (4096 ranks) would pay tens of MB for timings nobody reads per rank.
const obsMaxRanks = 1024

// newObs returns a fresh histogram registry for a world of n ranks, or
// nil when no collector wants it (or the world is too large).
func (o Options) newObs(n int) *obs.Registry {
	if o.Collector == nil || n > obsMaxRanks {
		return nil
	}
	return obs.NewRegistry(n)
}

// sizes returns the world-size sweep, shrunk in quick mode.
func (o Options) sizes(full []int) []int {
	if !o.Quick {
		return full
	}
	if len(full) > 2 {
		return full[:2]
	}
	return full
}
