package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/detector"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// swimSoakPeriod is the protocol period shared by every E20 world; the
// heartbeat baseline uses it as its ping interval so "frames per rank
// per period" means the same wall-clock budget in both rows.
const swimSoakPeriod = 16 * time.Millisecond

// swimSoakOptions is the SWIM tuning for the E20 soak.
func swimSoakOptions() membership.Options {
	return membership.Options{
		Period:         swimSoakPeriod,
		SelfFenceAfter: 5 * time.Second,
		Seed:           7,
	}
}

// swimSoakBaseline is the heartbeat-mesh tuning the swim rows are judged
// against, at the same protocol period.
func swimSoakBaseline() detector.HeartbeatOptions {
	return detector.HeartbeatOptions{
		Interval:       swimSoakPeriod,
		Timeout:        3 * swimSoakPeriod,
		SelfFenceAfter: 5 * time.Second,
	}
}

// swimFramesPerRankPeriodMax is the in-test O(1) bound on swim control
// traffic: one probe, roughly one ack, the occasional indirect relay and
// fence — per rank per protocol period, independent of world size. The
// mesh baseline pays N-1 pings per interval and exists in the table to
// show exactly that contrast.
const swimFramesPerRankPeriodMax = 8.0

// swimDetectFloor is the absolute detection-latency ceiling used when
// the mesh baseline is itself fast: swim p99 must stay under
// max(2 x mesh p99, floor) at EVERY world size — a bound independent of
// N is what "flat vs N" means operationally. The floor is generous
// because the large worlds run thousands of probe loops on however few
// cores CI has: measured detection at N=4096 is ~170ms alone but
// ~750ms with a full test suite competing for one core, and that
// scheduler tax is not the detector's to answer for. A genuine O(N)
// regression at 4096 ranks x 16ms periods would overshoot this bound
// by an order of magnitude, so it still bites.
const swimDetectFloor = 2 * time.Second

// detectRun is one measured detection world: a handful of ranks die
// mid-run, survivors wait for confirmation, and the run records how the
// detector got there.
type detectRun struct {
	samples                    []time.Duration // ground-truth death -> suspicion raised
	framesPerRankPeriod        float64
	falseSusp, learns, confirm int64
	elapsed                    time.Duration
}

func (r *detectRun) p50() time.Duration { return durQuantile(r.samples, 0.50) }
func (r *detectRun) p99() time.Duration { return durQuantile(r.samples, 0.99) }

// durQuantile returns the q-quantile of samples (nearest-rank).
func durQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runDetectionWorld runs one n-rank world under the given detector mode,
// kills three spread-out ranks after a short warmup, and has every
// survivor wait until all three deaths are confirmed. Suspicion latency
// is sampled straight from the registry's suspicion feed, so it works at
// world sizes past the histogram-registry cap.
func runDetectionWorld(opt Options, n int, mode string) (*detectRun, error) {
	mets := metrics.NewWorld(n)
	reg := opt.newObs(n)
	opt.Collector.Attach(mets, reg)
	wopts := []mpi.Option{
		mpi.WithMetrics(mets),
		mpi.WithDeadline(120 * time.Second),
	}
	if reg != nil {
		wopts = append(wopts, mpi.WithObservability(reg))
	}
	switch mode {
	case mpi.DetectorSwim:
		wopts = append(wopts, mpi.WithSwim(swimSoakOptions()))
	case mpi.DetectorHeartbeat:
		wopts = append(wopts, mpi.WithHeartbeat(swimSoakBaseline()))
	default:
		return nil, fmt.Errorf("runDetectionWorld: detector mode %q", mode)
	}
	w, err := mpi.NewWorld(n, wopts...)
	if err != nil {
		return nil, err
	}

	run := &detectRun{}
	var mu sync.Mutex
	w.Registry().SubscribeSuspicion(func(ev detector.SuspicionEvent) {
		if ev.Kind == detector.SuspectRaised && ev.SinceDeath >= 0 {
			mu.Lock()
			run.samples = append(run.samples, ev.SinceDeath)
			mu.Unlock()
		}
	})

	victims := []int{n / 4, n / 2, 3 * n / 4}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		for _, v := range victims {
			if p.Rank() == v {
				// Die after the detector has a few periods of history, so
				// the latency samples measure detection, not warmup.
				time.Sleep(5 * swimSoakPeriod)
				p.Die()
			}
		}
		// Only rank 0 waits for the confirmations; the world (and every
		// monitor) stays up until all rank functions return, and a
		// thousand ranks polling in parallel would cost more scheduler
		// churn than the protocol under measurement.
		if p.Rank() != 0 {
			return nil
		}
		deadline := time.Now().Add(90 * time.Second)
		for _, v := range victims {
			for !p.Registry().Confirmed(v) {
				if time.Now().After(deadline) {
					return fmt.Errorf("death of rank %d never confirmed", v)
				}
				time.Sleep(swimSoakPeriod / 4)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("n=%d %s: detection wedged, stuck ranks %v", n, mode, res.Stuck)
	}
	isVictim := map[int]bool{}
	for _, v := range victims {
		isVictim[v] = true
	}
	for rank, rr := range res.Ranks {
		if !isVictim[rank] && rr.Err != nil {
			return nil, fmt.Errorf("n=%d %s: rank %d: %w", n, mode, rank, rr.Err)
		}
	}

	periods := float64(res.Elapsed) / float64(swimSoakPeriod)
	run.framesPerRankPeriod = float64(mets.Total(metrics.ControlFrames)) / float64(n) / periods
	run.falseSusp = mets.Total(metrics.FalseSuspicions)
	run.learns = mets.Total(metrics.GossipLearns)
	run.confirm = mets.Total(metrics.Confirms)
	run.elapsed = res.Elapsed
	opt.Collector.Absorb(mets, reg)
	return run, nil
}

// runSwimSoak is E20: the SWIM detector scaled across world sizes, with
// a same-period heartbeat mesh as the baseline. Two properties are
// asserted in-run, not just tabulated:
//
//   - detection latency stays flat as N grows: every swim row's p99 must
//     land under max(2 x mesh p99, swimDetectFloor) — a bound that does
//     not scale with N;
//   - control traffic per rank is O(1): frames/rank/period must stay
//     under swimFramesPerRankPeriodMax at every N, while the mesh
//     baseline's column visibly grows as N-1.
func runSwimSoak(opt Options) ([]*Table, error) {
	t := NewTable("E20: SWIM soak — detection latency and per-rank control traffic vs N",
		"detector", "ranks", "samples", "detect-p50", "detect-p99",
		"frames/rank/period", "false-susp", "gossip-learns", "confirms", "elapsed")

	meshN := 64
	if opt.Quick {
		meshN = 32 // the N^2 mesh is the expensive row under -race CI
	}
	mesh, err := runDetectionWorld(opt, meshN, mpi.DetectorHeartbeat)
	if err != nil {
		return nil, fmt.Errorf("mesh baseline: %w", err)
	}
	t.Add("heartbeat mesh", meshN, len(mesh.samples), mesh.p50(), mesh.p99(),
		mesh.framesPerRankPeriod, mesh.falseSusp, mesh.learns, mesh.confirm, mesh.elapsed)

	bound := 2 * mesh.p99()
	if bound < swimDetectFloor {
		bound = swimDetectFloor
	}

	sizes := []int{64, 256, 1024}
	if raceEnabled {
		// The race detector multiplies scheduler and memory cost by an
		// order of magnitude; a thousand probe loops on a CI core under
		// that instrumentation measures the instrumentation, not the
		// detector. Race builds keep the assertion at the sizes they can
		// schedule honestly; the native short and full runs cover 1024
		// and 4096.
		sizes = []int{64, 256}
	} else if !opt.Quick {
		sizes = append(sizes, 4096)
	}
	for _, n := range sizes {
		r, err := runDetectionWorld(opt, n, mpi.DetectorSwim)
		if err != nil {
			return nil, fmt.Errorf("swim n=%d: %w", n, err)
		}
		if p99 := r.p99(); p99 > bound {
			return nil, fmt.Errorf("swim n=%d: detection p99 %v exceeds %v (2x mesh p99 %v with %v floor) — latency is not flat vs N",
				n, p99, bound, mesh.p99(), swimDetectFloor)
		}
		if r.framesPerRankPeriod > swimFramesPerRankPeriodMax {
			return nil, fmt.Errorf("swim n=%d: %.2f control frames/rank/period exceeds %.1f — traffic is not O(1)",
				n, r.framesPerRankPeriod, swimFramesPerRankPeriodMax)
		}
		t.Add("swim", n, len(r.samples), r.p50(), r.p99(),
			r.framesPerRankPeriod, r.falseSusp, r.learns, r.confirm, r.elapsed)
	}
	t.Note("asserted in-run: swim p99 <= max(2 x mesh p99, %v) at every N, frames/rank/period <= %.1f",
		swimDetectFloor, swimFramesPerRankPeriodMax)
	t.Note("mesh frames/rank/period grows as N-1; swim's stays constant — the point of the gossip detector")
	return []*Table{t}, nil
}
