package workload

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// ElasticDemoRanks is the fixed world size of the elastic ring protocol;
// cmd/ftring sizes its metrics recorder to it for the -elastic demo.
const ElasticDemoRanks = elasticRingRanks

// RunElasticDemo runs one seeded elastic repair world (the E21 protocol)
// over the caller's metrics recorder and histogram registry — both sized
// to ElasticDemoRanks — and returns the one-row result table. This is the
// entry point behind cmd/ftring's -elastic mode, so a live -obs endpoint
// scrapes the respawn/shrink/stale-generation counters of the world as it
// repairs itself.
func RunElasticDemo(seed int64, mets *metrics.World, reg *obs.Registry) (*Table, error) {
	t := NewTable("elastic repair demo — kill, respawn, exactly-once resumption under chaos",
		"seed", "victim", "kill-lap", "laps", "resends", "recovered-lap",
		"stale-rejected", "shrinks", "elapsed")
	r, err := runElasticWorld(Options{}, seed, mets, reg)
	if err != nil {
		return nil, err
	}
	t.Add(seed, r.victim, r.killLap, len(r.laps), r.resends, r.fetched,
		r.staleRejected, r.shrinks, r.elapsed)
	return t, nil
}

// E21 — the elastic-worlds soak. One token circulates a ring of
// elasticRingRanks ranks; a seeded victim dies HOLDING the token (the
// worst case: the message is lost with the process). The run must then
// demonstrate the full elastic repair chain:
//
//	kill -> failure notification -> left neighbor resends past the corpse
//	-> AutoRespawn reincarnates the slot at generation 2 -> the newcomer
//	recovers its position from a neighbor's state provider -> the ring
//	resumes at full size, exactly once per lap.
//
// Exactly-once is asserted structurally: rank 0 records every token
// arrival and the lap sequence must be 0,1,2,... with no gap and no
// duplicate, under seeded chaos (drops, duplicates, corruption) the
// reliability sublayer runs through. The final verification laps must
// carry a hop count proving every slot — including the reincarnation —
// forwarded them.
const (
	elasticRingRanks = 8
	// elasticBaseLaps is how many laps the token makes while the failure
	// and repair play out; the kill lap is always well inside this.
	elasticBaseLaps = 16
	// elasticVerifyLaps run after rank 0 has seen the slot revive: they
	// must traverse the FULL ring (hops == n-1), proving the
	// reincarnation is back in the data path.
	elasticVerifyLaps = 2
	elasticTagTok     = 1
)

// elasticRates is the chaos the soak runs under: lossy and duplicating
// enough to exercise the ARQ under the repair protocol without turning
// the run into a reliability benchmark.
func elasticRates() chaos.Rates {
	return chaos.Rates{Drop: 0.05, Dup: 0.05, Corrupt: 0.01}
}

// tokMsg is the ring token: the lap counter, the number of forwards it
// took this lap, and the stop flag that drains the ring at the end.
type tokMsg struct {
	lap  int64
	hops int64
	stop bool
}

func (m tokMsg) encode() []byte {
	b := make([]byte, 17)
	binary.LittleEndian.PutUint64(b[0:8], uint64(m.lap))
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.hops))
	if m.stop {
		b[16] = 1
	}
	return b
}

func decodeTok(b []byte) (tokMsg, error) {
	if len(b) != 17 {
		return tokMsg{}, fmt.Errorf("token payload %d bytes", len(b))
	}
	return tokMsg{
		lap:  int64(binary.LittleEndian.Uint64(b[0:8])),
		hops: int64(binary.LittleEndian.Uint64(b[8:16])),
		stop: b[16] == 1,
	}, nil
}

// lapRec is one token arrival at rank 0.
type lapRec struct {
	lap, hops int64
}

// elasticRun is the measured outcome of one seeded E21 world.
type elasticRun struct {
	victim, killLap int
	laps            []lapRec // rank 0's arrivals, in order
	fetched         int64    // lap recovered by the reincarnation's FetchState
	resends         int64
	staleRejected   int64
	respawns        int64
	shrinks         int64
	elapsed         time.Duration
}

// runElasticWorld runs one seeded elastic ring world and checks the
// repair chain end to end. The victim rank and kill lap derive from the
// seed, so twenty seeds cover different ring positions and phases. The
// caller may supply its own metrics recorder and histogram registry
// (cmd/ftring's -elastic demo does, to feed its -obs endpoint); nil
// means fresh ones sized to the ring.
func runElasticWorld(opt Options, seed int64, mets *metrics.World, reg *obs.Registry) (*elasticRun, error) {
	n := elasticRingRanks
	run := &elasticRun{
		victim:  1 + int(seed)%(n-1), // never rank 0: the root must survive
		killLap: 3 + int(seed)%8,
		fetched: -1,
	}
	totalLaps := elasticBaseLaps + elasticVerifyLaps

	if mets == nil {
		mets = metrics.NewWorld(n)
	}
	if reg == nil {
		reg = opt.newObs(n)
	}
	opt.Collector.Attach(mets, reg)
	wopts := []mpi.Option{
		mpi.WithMetrics(mets),
		mpi.WithDeadline(120 * time.Second),
		mpi.WithChaos(chaos.NewPlan(seed).Default(elasticRates())),
		mpi.WithElastic(mpi.ElasticOptions{AutoRespawn: true, RespawnDelay: time.Millisecond}),
	}
	if reg != nil {
		wopts = append(wopts, mpi.WithObservability(reg))
	}
	if opt.Tracer != nil {
		wopts = append(wopts, mpi.WithTracer(opt.Tracer))
	}
	switch opt.Detector {
	case mpi.DetectorHeartbeat:
		wopts = append(wopts, mpi.WithHeartbeat(opt.Heartbeat))
	case mpi.DetectorSwim:
		wopts = append(wopts, mpi.WithSwim(opt.Swim))
	}
	w, err := mpi.NewWorld(n, wopts...)
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex // guards run.laps / run.fetched / run.resends

	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		me := p.Rank()

		// Every incarnation publishes the last lap it drove, so a
		// reincarnated neighbor can rejoin at the ring's current position
		// instead of a checkpoint (the paper's "natural fault tolerance").
		var lastLap atomic.Int64
		lastLap.Store(-1)
		p.SetStateProvider(func() []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, uint64(lastLap.Load()))
			return b
		})

		if p.Gen() > 1 {
			// The reincarnation recovers its ring position from its left
			// neighbor (alive by construction: one victim per seed).
			b, ferr := p.FetchState((me - 1 + n) % n)
			if ferr != nil {
				return fmt.Errorf("gen%d FetchState: %w", p.Gen(), ferr)
			}
			if len(b) != 8 {
				return fmt.Errorf("state payload %d bytes", len(b))
			}
			mu.Lock()
			run.fetched = int64(binary.LittleEndian.Uint64(b))
			mu.Unlock()
			// Deliberately do NOT fast-forward lastLap: the in-flight
			// token may be resent to this incarnation and must still be
			// forwarded, not deduplicated away.
		}

		// sendTok forwards to the first alive rank to the right, skipping
		// known-dead slots (paper Fig. 7's "send past the failure").
		var lastMsg []byte
		lastSentTo := -1
		resent := true // nothing outstanding yet
		sendTok := func(msg []byte) error {
			for off := 1; off < n; off++ {
				to := (me + off) % n
				info, rerr := c.RankState(to)
				if rerr != nil {
					return rerr
				}
				if info.State != mpi.RankOK {
					continue
				}
				if serr := c.Send(to, elasticTagTok, msg); serr != nil {
					if mpi.IsRankFailStop(serr) {
						continue // died between the check and the send
					}
					return serr
				}
				lastMsg, lastSentTo, resent = msg, to, false
				return nil
			}
			return fmt.Errorf("rank %d: no alive right neighbor", me)
		}

		// recvTok blocks for the next token. A peer death completes the
		// posted receive with a fail-stop error: recognize the failure to
		// re-arm wildcard receives, and if the dead rank was the last one
		// we handed the token to, the token died with it — resend it past
		// the corpse.
		recvTok := func() (tokMsg, error) {
			for {
				pl, _, rerr := c.Recv(mpi.AnySource, elasticTagTok)
				if rerr == nil {
					return decodeTok(pl)
				}
				if !mpi.IsRankFailStop(rerr) {
					return tokMsg{}, rerr
				}
				f := mpi.FailedRankOf(rerr)
				if f >= 0 {
					_ = c.RecognizeLocal(f) // may race a revive; best effort
				}
				if f == lastSentTo && !resent {
					resent = true
					mu.Lock()
					run.resends++
					mu.Unlock()
					if serr := sendTok(lastMsg); serr != nil {
						return tokMsg{}, serr
					}
				}
			}
		}

		if me == 0 {
			for lap := 0; lap < totalLaps; lap++ {
				if lap == elasticBaseLaps {
					// Verification laps only count once the reincarnation
					// is installed and every slot reports alive.
					deadline := time.Now().Add(60 * time.Second)
					for {
						full := p.Registry().Generation(run.victim) == 2
						for r := 1; r < n && full; r++ {
							info, rerr := c.RankState(r)
							if rerr != nil {
								return rerr
							}
							full = info.State == mpi.RankOK
						}
						if full {
							break
						}
						if time.Now().After(deadline) {
							return fmt.Errorf("ring never returned to full size")
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
				lastLap.Store(int64(lap))
				if serr := sendTok(tokMsg{lap: int64(lap)}.encode()); serr != nil {
					return serr
				}
				for {
					m, rerr := recvTok()
					if rerr != nil {
						return rerr
					}
					mu.Lock()
					run.laps = append(run.laps, lapRec{lap: m.lap, hops: m.hops})
					mu.Unlock()
					if m.lap == int64(lap) {
						break
					}
				}
			}
			// Drain the ring: the stop token makes one full pass.
			if serr := sendTok(tokMsg{stop: true}.encode()); serr != nil {
				return serr
			}
			if _, rerr := recvTok(); rerr != nil {
				return rerr
			}
		} else {
			for {
				m, rerr := recvTok()
				if rerr != nil {
					return rerr
				}
				if m.stop {
					if serr := sendTok(m.encode()); serr != nil {
						return serr
					}
					break
				}
				if m.lap <= lastLap.Load() {
					continue // duplicate of a lap this slot already drove
				}
				if me == run.victim && p.Gen() == 1 && m.lap == int64(run.killLap) {
					p.Die() // dies HOLDING the token: the message is lost
				}
				lastLap.Store(m.lap)
				m.hops++
				if serr := sendTok(m.encode()); serr != nil {
					return serr
				}
			}
		}

		// Epilogue: the whole world — reincarnation included — agrees on
		// the membership and shrinks. Everyone is alive, so the agreed
		// failure set is empty and the "shrunk" communicator is full-size:
		// elasticity undoes the shrink that run-through stabilization
		// would otherwise make permanent.
		nf, verr := c.ValidateAll()
		if verr != nil {
			return verr
		}
		if nf != 0 {
			return fmt.Errorf("rank %d: epilogue validate reported %d failures", me, nf)
		}
		nc, serr := c.Shrink()
		if serr != nil {
			return serr
		}
		if nc.Size() != n {
			return fmt.Errorf("rank %d: epilogue shrink size %d, want %d", me, nc.Size(), n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("seed %d: wedged, stuck ranks %v", seed, res.Stuck)
	}
	for rank, rr := range res.Ranks {
		if rank == run.victim {
			if !rr.Killed {
				return nil, fmt.Errorf("seed %d: victim %d not recorded killed", seed, rank)
			}
			continue
		}
		if rr.Err != nil {
			return nil, fmt.Errorf("seed %d: rank %d: %w", seed, rank, rr.Err)
		}
	}
	if len(res.Respawns) != 1 {
		return nil, fmt.Errorf("seed %d: %d respawns, want 1", seed, len(res.Respawns))
	}
	if rr := res.Respawns[0]; rr.Slot != run.victim || rr.Gen != 2 || !rr.Finished || rr.Err != nil {
		return nil, fmt.Errorf("seed %d: respawn %+v", seed, rr)
	}

	// Exactly-once resumption: rank 0 saw lap 0,1,2,... with no gap, no
	// duplicate, no reordering — even though one lap's token was lost with
	// the victim and resent, under chaos.
	if len(run.laps) != totalLaps {
		return nil, fmt.Errorf("seed %d: rank 0 recorded %d arrivals, want %d: %v",
			seed, len(run.laps), totalLaps, run.laps)
	}
	for i, lr := range run.laps {
		if lr.lap != int64(i) {
			return nil, fmt.Errorf("seed %d: arrival %d carried lap %d — not exactly-once: %v",
				seed, i, lr.lap, run.laps)
		}
	}
	for _, lr := range run.laps[elasticBaseLaps:] {
		if lr.hops != int64(n-1) {
			return nil, fmt.Errorf("seed %d: verification lap %d crossed %d hops, want %d — the reincarnation is not in the data path",
				seed, lr.lap, lr.hops, n-1)
		}
	}
	// The reincarnation recovered state at least as fresh as the kill lap:
	// its left neighbor had already driven the lap the victim died holding.
	if run.fetched < int64(run.killLap) {
		return nil, fmt.Errorf("seed %d: recovered lap %d older than kill lap %d",
			seed, run.fetched, run.killLap)
	}

	run.staleRejected = mets.Total(metrics.StaleGenRejected)
	run.respawns = mets.Total(metrics.Respawns)
	run.shrinks = mets.Total(metrics.Shrinks)
	run.elapsed = res.Elapsed
	if run.respawns != 1 {
		return nil, fmt.Errorf("seed %d: respawn counter %d", seed, run.respawns)
	}
	if run.shrinks != int64(n) {
		return nil, fmt.Errorf("seed %d: shrink counter %d, want %d", seed, run.shrinks, n)
	}
	opt.Collector.Absorb(mets, reg)
	return run, nil
}

// runElasticSoak is E21: twenty seeded elastic repair runs (six in quick
// mode), each asserting the kill -> respawn -> exactly-once-resumption
// chain in-run. The table records per-seed facts for EXPERIMENTS.md.
func runElasticSoak(opt Options) ([]*Table, error) {
	t := NewTable("E21: elastic soak — kill, respawn, exactly-once resumption under chaos",
		"seed", "victim", "kill-lap", "laps", "resends", "recovered-lap",
		"stale-rejected", "shrinks", "elapsed")
	seeds := 20
	if opt.Quick {
		seeds = 6
	}
	for s := 0; s < seeds; s++ {
		seed := opt.Seed + int64(s)
		r, err := runElasticWorld(opt, seed, nil, nil)
		if err != nil {
			return nil, err
		}
		t.Add(seed, r.victim, r.killLap, len(r.laps), r.resends, r.fetched,
			r.staleRejected, r.shrinks, r.elapsed)
	}
	t.Note("asserted in-run per seed: victim respawned at gen 2, rank 0 saw every lap exactly once in order,")
	t.Note("verification laps crossed all %d ranks, recovered state >= kill lap, epilogue shrink returned to full size",
		elasticRingRanks)
	return []*Table{t}, nil
}
