package detector

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file holds the regression tests for the heartbeat-era bug sweep:
// the fence/clear race, the delayed-notify timer leak, the monitor
// start/stop goroutine leak, and the manual-clock migrations of the
// tightest-deadline tests (which used to key off real millisecond
// tickers and false-suspect under CI load).

// manualNet wires n monitors into each other's OnControl synchronously,
// like hbNet, but on a shared ManualClock with NO pump goroutines: the
// test drives every monitor tick by hand, so timing is fully
// deterministic regardless of scheduler load.
type manualNet struct {
	clock *ManualClock
	reg   *Registry
	hbs   []*Heartbeat
	cut   func(from, to int, op ControlOp) bool
}

func newManualNet(t *testing.T, n int, opts HeartbeatOptions, cut func(from, to int, op ControlOp) bool) *manualNet {
	t.Helper()
	p := &manualNet{clock: NewManualClock(time.Unix(1000, 0)), reg: New(n), hbs: make([]*Heartbeat, n), cut: cut}
	p.reg.SetConfirmGate(true)
	opts.Clock = p.clock
	for rank := 0; rank < n; rank++ {
		from := rank
		p.hbs[rank] = NewHeartbeat(p.reg, rank, n, opts, func(to int, op ControlOp, seq uint64) {
			if p.cut != nil && p.cut(from, to, op) {
				return
			}
			p.hbs[to].OnControl(from, op, seq)
		})
		p.hbs[rank].prime(p.clock.Now())
	}
	return p
}

// round advances the clock by the heartbeat interval and runs one tick on
// every monitor, in rank order — the deterministic stand-in for the pump.
func (p *manualNet) round() {
	p.clock.Advance(p.hbs[0].opts.Interval)
	now := p.clock.Now()
	for _, hb := range p.hbs {
		hb.tick(now)
	}
}

var manualOpts = HeartbeatOptions{
	Interval:       time.Millisecond,
	Timeout:        10 * time.Millisecond,
	SelfFenceAfter: 50 * time.Millisecond,
}

// TestManualClockNoFalseConfirms is the deterministic migration of
// TestHeartbeatNoFalseConfirms: on a healthy synchronous net, any number
// of rounds at exactly the heartbeat interval must never raise suspicion
// or kill anyone — no wall-clock sleep for the scheduler to stretch.
func TestManualClockNoFalseConfirms(t *testing.T) {
	p := newManualNet(t, 3, manualOpts, nil)
	for i := 0; i < 200; i++ {
		p.round()
	}
	if p.reg.AliveCount() != 3 {
		t.Fatalf("alive %d after healthy run", p.reg.AliveCount())
	}
	for r := 0; r < 3; r++ {
		if p.reg.Suspected(r) {
			t.Fatalf("rank %d suspected on a healthy link", r)
		}
	}
}

// TestManualClockSuspectFenceConfirm is the deterministic migration of
// TestFenceKillsSilentRankAckPath: rank 1 falls silent, rank 0 suspects
// it after exactly Timeout, the fence kills it before the ack, and the
// ack confirms — every transition pinned to a specific tick.
func TestManualClockSuspectFenceConfirm(t *testing.T) {
	var silent atomic.Bool
	p := newManualNet(t, 2, manualOpts, func(from, to int, op ControlOp) bool {
		return silent.Load() && from == 1 && (op == OpPing || op == OpPingAck)
	})
	for i := 0; i < 20; i++ {
		p.round() // learn the link
	}
	silent.Store(true)
	// Rank 1's heartbeats stop; suspicion must arrive within Timeout plus
	// one tick, then fence, self-kill and ack complete synchronously.
	for i := 0; i < 12 && !p.reg.Confirmed(1); i++ {
		p.round()
	}
	if !p.reg.Failed(1) || !p.reg.Confirmed(1) {
		t.Fatalf("rank 1 not fenced within the deadline: failed=%v confirmed=%v",
			p.reg.Failed(1), p.reg.Confirmed(1))
	}
	if p.reg.Failed(0) {
		t.Fatal("the observer died too")
	}
}

// TestManualClockSoleSurvivorDoesNotSelfFence migrates the slowest
// wall-clock test (it slept 3×SelfFenceAfter for real): with every peer
// ground-truth dead, silence is expected and the survivor must not
// self-fence no matter how far past the deadline the clock runs.
func TestManualClockSoleSurvivorDoesNotSelfFence(t *testing.T) {
	p := newManualNet(t, 2, manualOpts, nil)
	p.reg.Kill(1)
	for i := 0; i < 300; i++ { // 300 × 1ms = 6× the self-fence horizon
		p.round()
	}
	if p.reg.Failed(0) {
		t.Fatal("sole survivor fenced itself")
	}
}

// TestManualClockSelfFenceOnIsolation: the deterministic version of the
// total-isolation self-fence — rank 1 is cut off in both directions with
// live peers remaining, so after SelfFenceAfter of unacknowledged
// heartbeats it must kill itself on an exact tick.
func TestManualClockSelfFenceOnIsolation(t *testing.T) {
	var isolated atomic.Bool
	p := newManualNet(t, 3, manualOpts, func(from, to int, op ControlOp) bool {
		return isolated.Load() && (from == 1 || to == 1)
	})
	var selfFenced atomic.Bool
	p.hbs[1].Hooks.SelfFence = func(rank int) { selfFenced.Store(true) }
	for i := 0; i < 10; i++ {
		p.round()
	}
	isolated.Store(true)
	rounds := int(manualOpts.SelfFenceAfter/manualOpts.Interval) + 2
	for i := 0; i < rounds; i++ {
		p.round()
	}
	if !selfFenced.Load() || !p.reg.Failed(1) {
		t.Fatalf("isolated rank did not self-fence: hook=%v failed=%v", selfFenced.Load(), p.reg.Failed(1))
	}
	if p.reg.Failed(0) || p.reg.Failed(2) {
		t.Fatal("a connected rank died")
	}
}

// --- fence/clear race ---------------------------------------------------------

// TestFenceInFlightSupersedesClear pins the fix for the suspect/clear/
// fence race: the tick loop decides to emit a FENCE under the monitor
// lock but sends it after unlocking, so a late heartbeat processed in
// that window used to clear the suspicion while the fence was already on
// the wire — killing a rank the detector no longer suspected. Now the
// clear must not be visible while the fence is in flight: the fence
// drains, resolving to Confirm if it lands.
func TestFenceInFlightSupersedesClear(t *testing.T) {
	clock := NewManualClock(time.Unix(1000, 0))
	reg := New(2)
	reg.SetConfirmGate(true)
	opts := HeartbeatOptions{Interval: time.Millisecond, Timeout: 10 * time.Millisecond,
		SelfFenceAfter: time.Hour, Clock: clock}
	var sent []ctl
	h := NewHeartbeat(reg, 0, 2, opts, func(to int, op ControlOp, seq uint64) {
		sent = append(sent, ctl{to: to, op: op, seq: seq})
	})
	h.prime(clock.Now())

	// Rank 1 stays silent past the timeout: one tick raises the suspicion
	// and puts a FENCE on the wire.
	clock.Advance(11 * time.Millisecond)
	h.tick(clock.Now())
	if !reg.Suspected(1) {
		t.Fatal("silent rank not suspected")
	}
	fences := 0
	for _, c := range sent {
		if c.op == OpFence {
			fences++
		}
	}
	if fences != 1 {
		t.Fatalf("want exactly one fence on the wire, got %d", fences)
	}

	// The late heartbeat arrives while that fence is in flight. Pre-fix
	// this cleared the suspicion outright; the fence then killed a rank
	// nobody suspected. The suspicion must survive until the fence
	// resolves.
	h.OnControl(1, OpPing, 1)
	if !reg.Suspected(1) {
		t.Fatal("late heartbeat cleared a suspicion whose fence is in flight")
	}

	// The in-flight fence lands: rank 1 dies first, acks second. The
	// drained fence must resolve to a confirmed failure, never to a
	// cleared suspicion of a dead rank.
	var clearedAfterDeath atomic.Bool
	reg.SubscribeSuspicion(func(ev SuspicionEvent) {
		if ev.Kind == SuspectCleared && ev.Rank == 1 {
			clearedAfterDeath.Store(true)
		}
	})
	reg.Kill(1)                                       // the fence's effect at rank 1 (die first...)
	h.OnControl(1, OpFenceAck, sent[len(sent)-1].seq) // (...ack second)
	if !reg.Confirmed(1) {
		t.Fatal("fence ack did not confirm the death")
	}
	if clearedAfterDeath.Load() {
		t.Fatal("drained fence cleared instead of confirming")
	}
}

// TestDrainedFenceClearsWhenLost is the other leg of the race fix: when
// the in-flight fence is lost (chaos drop), the deferred clear must win —
// after one full resend period with the suspect still alive, the
// suspicion is withdrawn, no resend goes out, and nobody dies.
func TestDrainedFenceClearsWhenLost(t *testing.T) {
	clock := NewManualClock(time.Unix(1000, 0))
	reg := New(2)
	reg.SetConfirmGate(true)
	opts := HeartbeatOptions{Interval: time.Millisecond, Timeout: 10 * time.Millisecond,
		FenceResend: 2 * time.Millisecond, SelfFenceAfter: time.Hour, Clock: clock}
	var sent []ctl
	h := NewHeartbeat(reg, 0, 2, opts, func(to int, op ControlOp, seq uint64) {
		sent = append(sent, ctl{to: to, op: op, seq: seq})
	})
	h.prime(clock.Now())

	clock.Advance(11 * time.Millisecond)
	h.tick(clock.Now()) // suspect + fence out (and lost)
	h.OnControl(1, OpPing, 1)
	if !reg.Suspected(1) {
		t.Fatal("suspicion dropped while fence in flight")
	}
	fencesBefore := countOps(sent, OpFence)

	// Drive past the resend period: the draining fence must NOT resend,
	// and once the grace lapses with rank 1 alive the clear goes through.
	for i := 0; i < 4; i++ {
		clock.Advance(time.Millisecond)
		h.tick(clock.Now())
	}
	if got := countOps(sent, OpFence); got != fencesBefore {
		t.Fatalf("draining fence was resent: %d -> %d", fencesBefore, got)
	}
	if reg.Suspected(1) {
		t.Fatal("lost fence never released the suspicion")
	}
	if reg.FailedCount() != 0 {
		t.Fatalf("somebody died: %v", reg.Snapshot())
	}
}

func countOps(sent []ctl, op ControlOp) int {
	n := 0
	for _, c := range sent {
		if c.op == op {
			n++
		}
	}
	return n
}

// TestFenceClearRaceStress interleaves real concurrent late-acks with the
// fence-send path under -race: two monitors, rank 1's pings randomly
// delayed so rank 0 flaps between suspecting and clearing while fences
// fly. The invariant from the fix: a SuspectCleared for a rank must never
// be followed by that rank's death without a fresh SuspectRaised in
// between (no rank is killed by a fence its observer had withdrawn).
func TestFenceClearRaceStress(t *testing.T) {
	var drop atomic.Bool
	p := newHBNet(t, 2, HeartbeatOptions{
		Interval:       time.Millisecond,
		Timeout:        5 * time.Millisecond,
		SelfFenceAfter: time.Hour,
	}, func(from, to int, op ControlOp) bool {
		return drop.Load() && from == 1 && (op == OpPing || op == OpPingAck)
	})
	var mu sync.Mutex
	suspected := false // rank 0's current view of rank 1, per events
	violated := false
	p.reg.SubscribeSuspicion(func(ev SuspicionEvent) {
		if ev.Rank != 1 || ev.By != 0 {
			return
		}
		mu.Lock()
		switch ev.Kind {
		case SuspectRaised:
			suspected = true
		case SuspectCleared:
			suspected = false
			if ev.SinceDeath >= 0 {
				violated = true // cleared a rank that is already dead
			}
		}
		mu.Unlock()
	})
	p.reg.OnDeath(func(rank int) {
		if rank != 1 {
			return
		}
		mu.Lock()
		if !suspected {
			violated = true // killed while the observer did not suspect it
		}
		mu.Unlock()
	})
	p.start()
	// Flap the link hard for a while: each silence window is long enough
	// to raise suspicion and launch a fence, each recovery short enough
	// that late heartbeats race those fences.
	for i := 0; i < 40 && p.reg.AliveCount() == 2; i++ {
		drop.Store(true)
		time.Sleep(6 * time.Millisecond)
		drop.Store(false)
		time.Sleep(4 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if violated {
		t.Fatal("a rank was killed or cleared against the observer's suspicion state")
	}
}

// --- shutdown leaks -----------------------------------------------------------

// TestRegistryCloseStopsPendingNotify pins the oracle-mode timer leak:
// Kill with a NotifyDelay used to arm a bare time.AfterFunc that outlived
// the world — firing subscriber callbacks into torn-down state. Close
// must cancel pending delayed notifications.
func TestRegistryCloseStopsPendingNotify(t *testing.T) {
	reg := New(2)
	reg.SetNotifyDelay(30 * time.Millisecond)
	var fired atomic.Int32
	reg.Subscribe(func(rank int) { fired.Add(1) })
	reg.Kill(1)
	if fired.Load() != 0 {
		t.Fatal("delayed notification fired synchronously")
	}
	reg.Close() // world teardown happens inside the delay window
	time.Sleep(80 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("notify timer fired after Close")
	}
	// Ground truth is unaffected: the rank is dead, only the notification
	// was cancelled.
	if !reg.Failed(1) {
		t.Fatal("Close undid the kill")
	}
}

// TestRegistryNotifyDelayStillDelivers guards the non-leak half: without
// a Close, the delayed notification must still arrive exactly once.
func TestRegistryNotifyDelayStillDelivers(t *testing.T) {
	reg := New(2)
	reg.SetNotifyDelay(5 * time.Millisecond)
	var fired atomic.Int32
	reg.Subscribe(func(rank int) { fired.Add(1) })
	reg.Kill(1)
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("delayed notify fired %d times, want 1", got)
	}
}

// TestHeartbeatStartStopNoGoroutineLeak cycles monitor start/stop 100
// times — with a suspicion raised and a fence resend pending at stop
// time, the historically leak-prone state — and checks the goroutine
// count settles back to the baseline.
func TestHeartbeatStartStopNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		clock := NewManualClock(time.Unix(1000, 0))
		reg := New(2)
		reg.SetConfirmGate(true)
		opts := HeartbeatOptions{Interval: time.Millisecond, Timeout: 5 * time.Millisecond,
			SelfFenceAfter: time.Hour, Clock: clock}
		h := NewHeartbeat(reg, 0, 2, opts, func(to int, op ControlOp, seq uint64) {})
		h.Start()
		// Leave a suspicion + unacked fence in flight when Stop hits.
		clock.Advance(6 * time.Millisecond)
		h.tick(clock.Now())
		if !reg.Suspected(1) {
			t.Fatalf("cycle %d: fence never armed", i)
		}
		h.Stop()
		reg.Close()
	}
	// Let exiting pumps be reaped before counting.
	var after int
	for try := 0; try < 100; try++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d over 100 start/stop cycles", baseline, after)
}
