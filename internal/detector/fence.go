package detector

import "time"

// Fencing converts the heartbeat monitor's unreliable suspicion into the
// fail-stop failures the run-through stabilization machinery requires.
// The rule that restores strong accuracy:
//
//  1. A suspicion never reaches the application. It only arms a fence.
//  2. A fenced rank kills itself FIRST and acks SECOND, so a fence ack
//     happens-after ground-truth death: Confirm on ack receipt can never
//     declare a live rank failed.
//  3. A rank that is ground-truth dead (injected kill, self-fence, or a
//     fence that got through while the ack path is cut) is confirmed by
//     the fencer's resend loop directly from the registry.
//  4. A rank whose own heartbeats go unacknowledged by everyone past the
//     self-fence deadline kills itself — the escape hatch for total
//     isolation, where no fence notice can reach it. The sole survivor is
//     exempt: when every peer is already ground-truth dead, silence is
//     expected and suicide would end the run for nothing.
//
// A falsely suspected rank (chaos delay or a one-way partition) is
// therefore either cleared — a late heartbeat arrives before the fence
// lands — or genuinely killed by the fence before anyone is told it
// failed. Either way, no healthy rank is ever reported Failed to the
// application: eventual perfection, built from an unreliable detector.

// fenceState tracks one (observer, suspect) fence in flight.
type fenceState struct {
	start    time.Time // suspicion raise time, for fence RTT
	gen      int       // suspect's generation when the fence was armed
	lastSend time.Time // zero until the first fence notice goes out
	// clearAt, when non-zero, marks the fence as draining: a late
	// heartbeat asked to withdraw the suspicion after a fence notice was
	// already committed to the wire. Cancelling outright would clear the
	// suspicion of a rank the in-flight fence may still kill (and leave
	// nobody to confirm the death), so the fence stays armed — without
	// resends — until the fence either lands (ground-truth death →
	// Confirm) or has evidently been lost (one resend period elapses with
	// the suspect alive → ClearSuspect).
	clearAt time.Time
}

// fenceConfirm is one suspect resolved by the ground-truth path, with the
// suspicion-raise to confirmation round-trip and the generation the fence
// was armed against (so a stale fence never confirms a reincarnation).
type fenceConfirm struct {
	rank int
	gen  int
	rtt  time.Duration
}

// driveFencesLocked advances every pending fence one step: suspects that
// turn out ground-truth dead are queued for Confirm, draining fences
// (clear requested after a notice went out; see fenceState.clearAt) are
// retired once their last notice has evidently been lost, and the rest
// get a fence (re)send when their resend deadline lapses. Caller holds
// mu; the returned packets are sent (and Confirm/ClearSuspect called)
// outside it.
func (h *Heartbeat) driveFencesLocked(now time.Time) (confirms []fenceConfirm, fenceSends, clears []int, outs []ctl) {
	for p, fs := range h.fences {
		switch {
		case h.reg.Confirmed(p):
			// Another observer finished the job.
			delete(h.fences, p)
		case h.reg.Failed(p):
			// Ground-truth death: confirm directly. This is the path that
			// completes fencing across a cut ack link — the fence (or the
			// original failure) already killed the suspect, and the
			// registry, not the unreachable ack, proves it.
			confirms = append(confirms, fenceConfirm{rank: p, gen: fs.gen, rtt: now.Sub(fs.start)})
			delete(h.fences, p)
		case !fs.clearAt.IsZero():
			// Draining: no resends. If a full resend period passes and the
			// suspect is still alive, the in-flight notice was lost (or
			// dropped by chaos) — the late heartbeat wins and the
			// suspicion is finally withdrawn.
			if now.Sub(fs.clearAt) >= h.opts.FenceResend {
				delete(h.fences, p)
				clears = append(clears, p)
			}
		case fs.lastSend.IsZero() || now.Sub(fs.lastSend) >= h.opts.FenceResend:
			fs.lastSend = now
			outs = append(outs, ctl{to: p, op: OpFence})
			fenceSends = append(fenceSends, p)
		}
	}
	return confirms, fenceSends, clears, outs
}

// selfFenceDueLocked reports whether this rank must fence itself: none of
// its heartbeats have been acknowledged for SelfFenceAfter while at least
// one peer is still alive to miss them. Caller holds mu.
func (h *Heartbeat) selfFenceDueLocked(now time.Time) bool {
	if h.selfFenced || now.Sub(h.lastAck) < h.opts.SelfFenceAfter {
		return false
	}
	for p := 0; p < h.size; p++ {
		if p != h.rank && !h.reg.Failed(p) {
			h.selfFenced = true
			return true
		}
	}
	return false // sole survivor: everyone else is dead, silence is expected
}

// onFenced handles an inbound fence notice while this rank is still
// alive: die first, ack second. The ordering is the accuracy proof — by
// the time the ack is on the wire, the death is ground truth.
func (h *Heartbeat) onFenced(from int, seq uint64) {
	h.reg.Kill(h.rank)
	h.send(from, OpFenceAck, seq)
}

// onFenceAck handles a fence acknowledgment: the suspect killed itself
// before acking, so confirming it failed is safe even though the ack
// travelled a chaotic network. Confirmation is generation-fenced: the ack
// proves the death of the incarnation the fence was armed against, not of
// whatever occupies the slot when the ack finally lands — with elastic
// revival a sufficiently delayed ack can arrive after the slot is alive
// again at a later generation, and must not confirm it. An ack with no
// matching fence entry is dropped: the fence was already resolved by
// another path (duplicate acks re-confirmed as a no-op before; now they
// simply carry no generation evidence and are ignored — liveness is held
// by the ground-truth resend loop in driveFencesLocked).
func (h *Heartbeat) onFenceAck(from int, now time.Time) {
	var rtt time.Duration = -1
	gen := -1
	h.mu.Lock()
	if fs := h.fences[from]; fs != nil {
		rtt = now.Sub(fs.start)
		gen = fs.gen
		delete(h.fences, from)
	}
	h.mu.Unlock()
	if gen < 0 {
		return
	}
	h.reg.ConfirmGen(from, h.rank, gen)
	if rtt >= 0 && h.Hooks.FenceRTT != nil {
		h.Hooks.FenceRTT(h.rank, from, rtt)
	}
}
