package detector

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the monitors' time source so that deadline-coupled
// tests can drive suspicion, fencing and self-fencing deterministically
// instead of keying off real millisecond tickers (which false-suspect
// under CI load). Production code uses WallClock; tests inject a
// ManualClock and call Advance.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the Clock-owned analogue of time.Ticker.
type Ticker interface {
	// Chan returns the tick channel.
	Chan() <-chan time.Time
	// Stop releases the ticker's resources.
	Stop()
}

// wallClock is the production Clock: real time, real tickers.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) NewTicker(d time.Duration) Ticker { return wallTicker{time.NewTicker(d)} }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) Chan() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()                  { w.t.Stop() }

// WallClock returns the real-time Clock (the default when options leave
// the Clock field nil).
func WallClock() Clock { return wallClock{} }

// ManualClock is a test Clock whose time only moves when Advance is
// called. Tickers created from it fire (best-effort, buffered) as
// Advance crosses their periods; deterministic tests usually bypass the
// pump entirely and drive monitor ticks by hand, using the ManualClock
// only as the shared notion of "now".
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*manualTicker
}

// NewManualClock creates a manual clock set to start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current (frozen) time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and delivers any ticks that fall
// inside the advanced window, in timestamp order across tickers.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	type due struct {
		at time.Time
		t  *manualTicker
	}
	var fires []due
	for _, t := range c.tickers {
		for !t.next.After(target) {
			fires = append(fires, due{at: t.next, t: t})
			t.next = t.next.Add(t.period)
		}
	}
	c.now = target
	c.mu.Unlock()
	sort.SliceStable(fires, func(i, j int) bool { return fires[i].at.Before(fires[j].at) })
	for _, f := range fires {
		select {
		case f.t.ch <- f.at:
		default: // receiver lagging: drop the tick, like time.Ticker
		}
	}
}

// NewTicker returns a ticker that fires as Advance crosses multiples of d.
func (c *ManualClock) NewTicker(d time.Duration) Ticker {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTicker{
		clock:  c,
		period: d,
		next:   c.now.Add(d),
		ch:     make(chan time.Time, 1),
	}
	c.tickers = append(c.tickers, t)
	return t
}

type manualTicker struct {
	clock  *ManualClock
	period time.Duration
	next   time.Time
	ch     chan time.Time
}

func (t *manualTicker) Chan() <-chan time.Time { return t.ch }

func (t *manualTicker) Stop() {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, other := range c.tickers {
		if other == t {
			c.tickers = append(c.tickers[:i], c.tickers[i+1:]...)
			return
		}
	}
}
