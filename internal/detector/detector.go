// Package detector implements the failure detector that the run-through
// stabilization proposal assumes the MPI implementation provides (Hursey
// & Graham 2011, Section II).
//
// Two modes are offered:
//
//   - Oracle (the default): the Registry is the ground truth — a rank is
//     marked failed exactly when the fault injector (or the runtime)
//     kills it, never speculatively. This is "perfect" in the
//     Chandra-Toueg sense: strongly accurate (no process reported failed
//     before it fails) and strongly complete (eventually every failure is
//     known everywhere). An optional notification delay models detection
//     latency without ever violating accuracy.
//
//   - Heartbeat (see Heartbeat in heartbeat.go): perfection is *built*
//     out of an unreliable detector plus fencing. Ranks exchange
//     heartbeats over the live (possibly chaotic) fabric; a missed
//     deadline moves a peer to Suspected — an unreliable, possibly wrong
//     verdict — and a fencing protocol (fence.go) then forces the suspect
//     to fail-stop before anyone is told it failed. Only Confirm, which
//     requires ground-truth death, fires the failure subscribers, so
//     strong accuracy is restored by construction: a healthy rank can be
//     (falsely) suspected, but it is fenced — killed — before it is ever
//     reported failed to the application.
//
// The MPI layer still only surfaces a failure to the *application* when
// the application communicates (directly or indirectly) with the failed
// rank, as the paper requires; the Registry is the implementation-internal
// view.
//
// Lock contract: the Registry never invokes a callback — Subscriber,
// suspicion subscriber, death hook, or notify observer — while holding
// its mutex. Callbacks may therefore call back into the Registry's
// read-side (Failed, State, AliveCount, ...) freely; they must not call
// the mutating methods (Kill, Suspect, Confirm, ...) to avoid notification
// recursion. TestSubscribeKillRace pins the contract under -race.
package detector

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is the liveness state of a rank as seen by the detector.
type State int

const (
	// Alive means the rank has not failed and is not suspected.
	Alive State = iota
	// Suspected means some peer's (unreliable) heartbeat monitor has
	// raised suspicion, but the rank has not been confirmed dead. A
	// suspected rank may still be healthy — suspicion never reaches the
	// application; it only triggers fencing.
	Suspected
	// Failed means the rank has permanently stopped (fail-stop).
	Failed
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Alive:
		return "ALIVE"
	case Suspected:
		return "SUSPECTED"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Subscriber is a callback invoked once for every rank failure. Callbacks
// must not block for long and must not call back into the Registry's
// mutating methods (read-side calls are fine; see the package lock
// contract).
type Subscriber func(rank int)

// SuspicionKind classifies a suspicion-lifecycle event.
type SuspicionKind int

const (
	// SuspectRaised means an observer newly suspects a rank.
	SuspectRaised SuspicionKind = iota
	// SuspectCleared means an observer withdrew its suspicion (a
	// heartbeat arrived after all) — a false suspicion that resolved
	// without fencing.
	SuspectCleared
	// SuspectConfirmed means the suspected rank was confirmed dead and
	// failure notifications were delivered.
	SuspectConfirmed
)

// String returns the suspicion-kind name.
func (k SuspicionKind) String() string {
	switch k {
	case SuspectRaised:
		return "raised"
	case SuspectCleared:
		return "cleared"
	case SuspectConfirmed:
		return "confirmed"
	default:
		return fmt.Sprintf("SuspicionKind(%d)", int(k))
	}
}

// SuspicionEvent is one suspicion-lifecycle transition. Rank is the
// suspect, By the observing rank. SinceDeath is the time between the
// rank's ground-truth death and this event; it is negative when the rank
// was still alive (a false suspicion) — the interesting case chaos
// partitions and delay jitter induce.
type SuspicionEvent struct {
	Kind       SuspicionKind
	Rank       int
	By         int
	SinceDeath time.Duration
}

// Registry is the ground-truth liveness table for one World of ranks.
// All methods are safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	failed      []bool
	diedAt      []time.Time
	confirmed   []bool         // gated mode: failure notifications delivered
	suspectedBy []map[int]bool // per rank: set of observers currently suspecting it
	generation  []int
	aliveCount  int
	subscribers []Subscriber
	suspicion   []func(SuspicionEvent)
	deathHooks  []func(rank int)
	reviveSubs  []func(rank, gen int)
	confirmGate bool
	notifyDelay time.Duration
	notifyObs   func(rank int, latency time.Duration)
	epoch       uint64 // incremented on every failure, for change detection
	cond        *sync.Cond
	// timers holds the delayed-notify timers armed by Kill when a
	// NotifyDelay is configured, so Close can stop the ones still pending.
	// Without this, a world that tears down inside the delay window leaks
	// the timer goroutine and fires subscriber callbacks into freed state.
	timers map[*time.Timer]struct{}
	closed bool
}

// New creates a registry for n ranks, all alive, all at generation 1.
func New(n int) *Registry {
	if n <= 0 {
		panic(fmt.Sprintf("detector: registry size must be positive, got %d", n))
	}
	r := &Registry{
		failed:      make([]bool, n),
		diedAt:      make([]time.Time, n),
		confirmed:   make([]bool, n),
		suspectedBy: make([]map[int]bool, n),
		generation:  make([]int, n),
		aliveCount:  n,
	}
	for i := range r.generation {
		r.generation[i] = 1
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Size returns the total number of ranks tracked, alive or failed.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failed)
}

// SetNotifyDelay configures an artificial latency between a failure and the
// delivery of subscriber notifications, modelling failure-detection latency.
// Zero (the default) delivers notifications synchronously from Kill. The
// delay applies only in oracle mode; with the confirm gate on, detection
// latency is real (heartbeat timeout + fencing), not modelled.
func (r *Registry) SetNotifyDelay(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notifyDelay = d
}

// SetNotifyObserver registers a callback invoked once per failure after
// all subscriber notifications have been delivered, with the measured
// Kill-to-delivery latency — the observable detection latency of the
// failure detector. Pass nil to remove.
func (r *Registry) SetNotifyObserver(fn func(rank int, latency time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notifyObs = fn
}

// SetConfirmGate switches the registry into heartbeat mode: Kill records
// ground-truth death (and fires death hooks) but defers the failure
// Subscribers until Confirm promotes the rank. Call before Subscribe/Kill.
func (r *Registry) SetConfirmGate(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.confirmGate = on
}

// OnDeath registers a hook fired synchronously (outside the registry
// mutex) on every ground-truth death, regardless of the confirm gate and
// before any notification delay. The runtime uses it to unwind the victim
// immediately — the victim is dead the moment it is killed, whatever its
// peers believe.
func (r *Registry) OnDeath(fn func(rank int)) {
	r.mu.Lock()
	already := r.snapshotLocked()
	r.deathHooks = append(r.deathHooks, fn)
	r.mu.Unlock()
	for _, rank := range already {
		fn(rank)
	}
}

// Subscribe registers a callback invoked on every subsequent failure
// notification. If ranks have already been notified (oracle mode: killed;
// gated mode: confirmed), the callback is immediately invoked for each of
// them so that late subscribers still satisfy strong completeness.
func (r *Registry) Subscribe(fn Subscriber) {
	r.mu.Lock()
	var already []int
	if r.confirmGate {
		for rank, c := range r.confirmed {
			if c {
				already = append(already, rank)
			}
		}
	} else {
		already = r.snapshotLocked()
	}
	r.subscribers = append(r.subscribers, fn)
	r.mu.Unlock()
	for _, rank := range already {
		fn(rank)
	}
}

// SubscribeSuspicion registers a callback for suspicion-lifecycle events
// (raised, cleared, confirmed). Callbacks run outside the registry mutex.
func (r *Registry) SubscribeSuspicion(fn func(SuspicionEvent)) {
	r.mu.Lock()
	r.suspicion = append(r.suspicion, fn)
	r.mu.Unlock()
}

// Kill marks rank as failed (ground truth). It returns true if this call
// performed the transition, false if the rank was already failed. Death
// hooks fire synchronously. In oracle mode subscribers are then notified
// (after the configured delay, if any) exactly once per failure; with the
// confirm gate on, subscriber notification waits for Confirm.
func (r *Registry) Kill(rank int) bool {
	r.mu.Lock()
	if rank < 0 || rank >= len(r.failed) {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Kill(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if r.failed[rank] {
		r.mu.Unlock()
		return false
	}
	r.failed[rank] = true
	r.diedAt[rank] = time.Now()
	r.aliveCount--
	r.epoch++
	hooks := make([]func(int), len(r.deathHooks))
	copy(hooks, r.deathHooks)
	gated := r.confirmGate
	var subs []Subscriber
	var delay time.Duration
	var obs func(int, time.Duration)
	if !gated {
		r.confirmed[rank] = true // oracle mode: kill and notify are one step
		subs = make([]Subscriber, len(r.subscribers))
		copy(subs, r.subscribers)
		delay = r.notifyDelay
		obs = r.notifyObs
	}
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, fn := range hooks {
		fn(rank)
	}
	if gated {
		return true
	}
	start := time.Now()
	notify := func() {
		for _, fn := range subs {
			fn(rank)
		}
		if obs != nil {
			obs(rank, time.Since(start))
		}
	}
	if delay > 0 {
		r.armNotify(delay, notify)
	} else {
		notify()
	}
	return true
}

// armNotify schedules a delayed notification, tracking the timer so Close
// can cancel it if the registry shuts down inside the delay window.
func (r *Registry) armNotify(delay time.Duration, notify func()) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if r.timers == nil {
		r.timers = make(map[*time.Timer]struct{})
	}
	var t *time.Timer
	t = time.AfterFunc(delay, func() {
		r.mu.Lock()
		_, live := r.timers[t]
		delete(r.timers, t)
		closed := r.closed
		r.mu.Unlock()
		if live && !closed {
			notify()
		}
	})
	r.timers[t] = struct{}{}
	r.mu.Unlock()
}

// Close cancels all pending delayed notifications and marks the registry
// shut down: subsequent delayed notifies are dropped. Read-side methods
// and synchronous notification keep working; Close exists so that a world
// torn down mid-delay does not have oracle notify timers firing
// subscriber callbacks after teardown.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	timers := r.timers
	r.timers = nil
	r.mu.Unlock()
	for t := range timers {
		t.Stop()
	}
}

// Suspect records that observer `by` suspects `rank`, returning true when
// this raises a new (rank, by) suspicion. Suspicion is an unreliable
// verdict: it never reaches failure subscribers and may be withdrawn by
// ClearSuspect. Suspecting an already-confirmed rank is a no-op.
func (r *Registry) Suspect(rank, by int) bool {
	r.mu.Lock()
	if rank < 0 || rank >= len(r.failed) {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Suspect(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if r.confirmed[rank] || (r.suspectedBy[rank] != nil && r.suspectedBy[rank][by]) {
		r.mu.Unlock()
		return false
	}
	if r.suspectedBy[rank] == nil {
		r.suspectedBy[rank] = make(map[int]bool)
	}
	r.suspectedBy[rank][by] = true
	ev := SuspicionEvent{Kind: SuspectRaised, Rank: rank, By: by, SinceDeath: r.sinceDeathLocked(rank)}
	subs := make([]func(SuspicionEvent), len(r.suspicion))
	copy(subs, r.suspicion)
	r.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
	return true
}

// ClearSuspect withdraws observer `by`'s suspicion of `rank` (a heartbeat
// arrived after all). Returns true when a live suspicion was cleared.
func (r *Registry) ClearSuspect(rank, by int) bool {
	r.mu.Lock()
	if rank < 0 || rank >= len(r.failed) {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: ClearSuspect(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if r.suspectedBy[rank] == nil || !r.suspectedBy[rank][by] || r.confirmed[rank] {
		r.mu.Unlock()
		return false
	}
	delete(r.suspectedBy[rank], by)
	ev := SuspicionEvent{Kind: SuspectCleared, Rank: rank, By: by, SinceDeath: r.sinceDeathLocked(rank)}
	subs := make([]func(SuspicionEvent), len(r.suspicion))
	copy(subs, r.suspicion)
	r.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
	return true
}

// Confirm promotes a ground-truth-dead rank to notified-failed: failure
// subscribers fire exactly once, from the first confirming observer. It
// panics if the rank is still alive — that would be a strong-accuracy
// violation, and the fencing protocol exists precisely to make it
// impossible (a fence ack is only ever sent after the suspect killed
// itself). Returns true for the confirming call, false for later ones.
func (r *Registry) Confirm(rank, by int) bool {
	return r.confirm(rank, by, -1)
}

// ConfirmGen is Confirm for elastic worlds: gen is the generation the
// observer captured when it armed the fence. If the slot has since been
// revived past that generation, the confirmation is for a previous
// incarnation — a stale fence ack that raced the revive — and is silently
// dropped instead of panicking. The accuracy panic still fires when the
// generation is current and the rank is alive, because then the fencing
// invariant itself was broken.
func (r *Registry) ConfirmGen(rank, by, gen int) bool {
	return r.confirm(rank, by, gen)
}

// confirm implements Confirm/ConfirmGen; gen < 0 skips the generation
// staleness check (the non-elastic path, where slots never revive).
func (r *Registry) confirm(rank, by, gen int) bool {
	r.mu.Lock()
	if rank < 0 || rank >= len(r.failed) {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Confirm(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if gen >= 0 && r.generation[rank] != gen {
		r.mu.Unlock()
		return false
	}
	if !r.failed[rank] {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Confirm(%d) of a live rank — accuracy violation", rank))
	}
	if r.confirmed[rank] {
		r.mu.Unlock()
		return false
	}
	r.confirmed[rank] = true
	sinceDeath := r.sinceDeathLocked(rank)
	subs := make([]Subscriber, len(r.subscribers))
	copy(subs, r.subscribers)
	ssubs := make([]func(SuspicionEvent), len(r.suspicion))
	copy(ssubs, r.suspicion)
	obs := r.notifyObs
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, fn := range subs {
		fn(rank)
	}
	if obs != nil {
		obs(rank, sinceDeath)
	}
	ev := SuspicionEvent{Kind: SuspectConfirmed, Rank: rank, By: by, SinceDeath: sinceDeath}
	for _, fn := range ssubs {
		fn(ev)
	}
	return true
}

// SubscribeRevive registers a callback invoked (outside the registry
// mutex) whenever a confirmed-dead slot is revived at a new generation.
// Elastic worlds use it to clear per-peer failure state on survivors
// before the reincarnation starts talking.
func (r *Registry) SubscribeRevive(fn func(rank, gen int)) {
	r.mu.Lock()
	r.reviveSubs = append(r.reviveSubs, fn)
	r.mu.Unlock()
}

// Revive returns a confirmed-dead slot to the alive state at the next
// generation, replacing the registry's one-shot death model for elastic
// worlds. It requires the death to have been fully notified (confirmed):
// reviving a dead-but-unconfirmed slot would race the fencing protocol's
// accuracy argument — survivors could Confirm the old incarnation after
// the new one is alive. The new generation number is returned; revive
// subscribers fire outside the mutex, before Revive returns.
func (r *Registry) Revive(rank int) int {
	r.mu.Lock()
	if rank < 0 || rank >= len(r.failed) {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Revive(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if !r.failed[rank] {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Revive(%d) of a live rank", rank))
	}
	if !r.confirmed[rank] {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Revive(%d) before its death was confirmed", rank))
	}
	r.failed[rank] = false
	r.confirmed[rank] = false
	r.diedAt[rank] = time.Time{}
	r.suspectedBy[rank] = nil
	r.generation[rank]++
	gen := r.generation[rank]
	r.aliveCount++
	r.epoch++
	subs := make([]func(int, int), len(r.reviveSubs))
	copy(subs, r.reviveSubs)
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, fn := range subs {
		fn(rank, gen)
	}
	return gen
}

// SinceDeath returns the time elapsed since rank's ground-truth death,
// and ok=false when the rank is alive. Elastic respawn samples it before
// Revive clears the death timestamp, to feed the recovery histogram.
func (r *Registry) SinceDeath(rank int) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.failed) {
		panic(fmt.Sprintf("detector: SinceDeath(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if !r.failed[rank] {
		return 0, false
	}
	return r.sinceDeathLocked(rank), true
}

// sinceDeathLocked returns time since rank's ground-truth death, or a
// negative sentinel when the rank is still alive. Caller holds mu.
func (r *Registry) sinceDeathLocked(rank int) time.Duration {
	if !r.failed[rank] {
		return -1
	}
	return time.Since(r.diedAt[rank])
}

// Failed reports whether rank has failed (ground truth). Panics on
// out-of-range ranks so that indexing bugs surface immediately.
func (r *Registry) Failed(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.failed) {
		panic(fmt.Sprintf("detector: Failed(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	return r.failed[rank]
}

// Confirmed reports whether rank's failure notifications have been
// delivered (in oracle mode this tracks Failed exactly).
func (r *Registry) Confirmed(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.confirmed) {
		panic(fmt.Sprintf("detector: Confirmed(%d) out of range [0,%d)", rank, len(r.confirmed)))
	}
	return r.confirmed[rank]
}

// Suspected reports whether any observer currently suspects rank.
func (r *Registry) Suspected(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.suspectedBy) {
		panic(fmt.Sprintf("detector: Suspected(%d) out of range [0,%d)", rank, len(r.suspectedBy)))
	}
	return len(r.suspectedBy[rank]) > 0
}

// State returns the detector state of rank: ground-truth death wins,
// then live suspicion, then Alive.
func (r *Registry) State(rank int) State {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.failed) {
		panic(fmt.Sprintf("detector: State(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	switch {
	case r.failed[rank]:
		return Failed
	case len(r.suspectedBy[rank]) > 0:
		return Suspected
	default:
		return Alive
	}
}

// Generation returns the incarnation number of rank. It starts at 1 and
// is bumped by every Revive, so a slot's generation names exactly one
// incarnation; the RankInfo plumbing matches the proposal's interface.
func (r *Registry) Generation(rank int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.generation) {
		panic(fmt.Sprintf("detector: Generation(%d) out of range [0,%d)", rank, len(r.generation)))
	}
	return r.generation[rank]
}

// AliveCount returns the number of ranks that have not failed.
func (r *Registry) AliveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aliveCount
}

// FailedCount returns the number of ranks that have failed.
func (r *Registry) FailedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failed) - r.aliveCount
}

// Snapshot returns the sorted list of failed ranks (ground truth).
func (r *Registry) Snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Registry) snapshotLocked() []int {
	out := make([]int, 0, len(r.failed)-r.aliveCount)
	for rank, f := range r.failed {
		if f {
			out = append(out, rank)
		}
	}
	sort.Ints(out)
	return out
}

// Alive returns the sorted list of alive ranks.
func (r *Registry) Alive() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, r.aliveCount)
	for rank, f := range r.failed {
		if !f {
			out = append(out, rank)
		}
	}
	return out
}

// LowestAlive returns the smallest alive rank, mirroring the leader
// election of the paper's Figure 12. ok is false when everyone has failed.
func (r *Registry) LowestAlive() (rank int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, f := range r.failed {
		if !f {
			return i, true
		}
	}
	return -1, false
}

// LowestAliveIn returns the smallest alive rank drawn from the given set,
// used for per-communicator leader election over a sub-group.
func (r *Registry) LowestAliveIn(ranks []int) (rank int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	best, found := -1, false
	for _, cand := range ranks {
		if cand < 0 || cand >= len(r.failed) || r.failed[cand] {
			continue
		}
		if !found || cand < best {
			best, found = cand, true
		}
	}
	return best, found
}

// Epoch returns a counter that increases on every failure. Pollers can use
// it to cheaply detect "some failure happened since I last looked".
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// WaitEpochChange blocks until the failure epoch differs from since, or
// returns immediately if it already does. It returns the current epoch.
// This is used by protocol drivers (e.g. the validate_all coordinator
// hand-off) that must wake when any failure occurs.
func (r *Registry) WaitEpochChange(since uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.epoch == since {
		r.cond.Wait()
	}
	return r.epoch
}

// BroadcastWaiters wakes all WaitEpochChange callers without changing the
// epoch. The runtime uses it during world shutdown so that no protocol
// driver is left blocked forever.
func (r *Registry) BroadcastWaiters() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cond.Broadcast()
}
