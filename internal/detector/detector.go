// Package detector implements the perfect failure detector that the
// run-through stabilization proposal assumes the MPI implementation
// provides (Hursey & Graham 2011, Section II).
//
// The detector is "perfect" in the Chandra-Toueg sense:
//
//   - strongly accurate: no process is reported failed before it actually
//     fails. We obtain this by construction: the Registry is the ground
//     truth — a rank is marked failed exactly when the fault injector (or
//     the runtime) kills it, never speculatively.
//   - strongly complete: eventually every failed process is known to every
//     alive process. Subscribers (one per MPI engine) are notified of every
//     failure; an optional notification delay models detection latency
//     without ever violating accuracy.
//
// The MPI layer still only surfaces a failure to the *application* when the
// application communicates (directly or indirectly) with the failed rank,
// as the paper requires; the Registry is the implementation-internal view.
package detector

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is the liveness state of a rank as seen by the detector.
type State int

const (
	// Alive means the rank has not failed.
	Alive State = iota
	// Failed means the rank has permanently stopped (fail-stop).
	Failed
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Alive:
		return "ALIVE"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Subscriber is a callback invoked once for every rank failure. Callbacks
// must not block for long and must not call back into the Registry's
// mutating methods.
type Subscriber func(rank int)

// Registry is the ground-truth liveness table for one World of ranks.
// All methods are safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	failed      []bool
	generation  []int
	aliveCount  int
	subscribers []Subscriber
	notifyDelay time.Duration
	notifyObs   func(rank int, latency time.Duration)
	epoch       uint64 // incremented on every failure, for change detection
	cond        *sync.Cond
}

// New creates a registry for n ranks, all alive, all at generation 1.
func New(n int) *Registry {
	if n <= 0 {
		panic(fmt.Sprintf("detector: registry size must be positive, got %d", n))
	}
	r := &Registry{
		failed:     make([]bool, n),
		generation: make([]int, n),
		aliveCount: n,
	}
	for i := range r.generation {
		r.generation[i] = 1
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Size returns the total number of ranks tracked, alive or failed.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failed)
}

// SetNotifyDelay configures an artificial latency between a failure and the
// delivery of subscriber notifications, modelling failure-detection latency.
// Zero (the default) delivers notifications synchronously from Kill.
func (r *Registry) SetNotifyDelay(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notifyDelay = d
}

// SetNotifyObserver registers a callback invoked once per failure after
// all subscriber notifications have been delivered, with the measured
// Kill-to-delivery latency — the observable detection latency of the
// (modelled) failure detector. Pass nil to remove.
func (r *Registry) SetNotifyObserver(fn func(rank int, latency time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notifyObs = fn
}

// Subscribe registers a callback invoked on every subsequent failure. If
// ranks have already failed, the callback is immediately invoked for each
// of them so that late subscribers still satisfy strong completeness.
func (r *Registry) Subscribe(fn Subscriber) {
	r.mu.Lock()
	already := r.snapshotLocked()
	r.subscribers = append(r.subscribers, fn)
	r.mu.Unlock()
	for _, rank := range already {
		fn(rank)
	}
}

// Kill marks rank as failed. It returns true if this call performed the
// transition, false if the rank was already failed. Subscribers are
// notified (after the configured delay, if any) exactly once per failure.
func (r *Registry) Kill(rank int) bool {
	r.mu.Lock()
	if rank < 0 || rank >= len(r.failed) {
		r.mu.Unlock()
		panic(fmt.Sprintf("detector: Kill(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	if r.failed[rank] {
		r.mu.Unlock()
		return false
	}
	r.failed[rank] = true
	r.aliveCount--
	r.epoch++
	subs := make([]Subscriber, len(r.subscribers))
	copy(subs, r.subscribers)
	delay := r.notifyDelay
	obs := r.notifyObs
	r.cond.Broadcast()
	r.mu.Unlock()

	start := time.Now()
	notify := func() {
		for _, fn := range subs {
			fn(rank)
		}
		if obs != nil {
			obs(rank, time.Since(start))
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, notify)
	} else {
		notify()
	}
	return true
}

// Failed reports whether rank has failed. Panics on out-of-range ranks so
// that indexing bugs surface immediately.
func (r *Registry) Failed(rank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.failed) {
		panic(fmt.Sprintf("detector: Failed(%d) out of range [0,%d)", rank, len(r.failed)))
	}
	return r.failed[rank]
}

// State returns the detector state of rank.
func (r *Registry) State(rank int) State {
	if r.Failed(rank) {
		return Failed
	}
	return Alive
}

// Generation returns the incarnation number of rank. Run-through
// stabilization does not recover processes, so this is always 1 here; the
// field exists so the RankInfo plumbing matches the proposal's interface.
func (r *Registry) Generation(rank int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rank < 0 || rank >= len(r.generation) {
		panic(fmt.Sprintf("detector: Generation(%d) out of range [0,%d)", rank, len(r.generation)))
	}
	return r.generation[rank]
}

// AliveCount returns the number of ranks that have not failed.
func (r *Registry) AliveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aliveCount
}

// FailedCount returns the number of ranks that have failed.
func (r *Registry) FailedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failed) - r.aliveCount
}

// Snapshot returns the sorted list of failed ranks.
func (r *Registry) Snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Registry) snapshotLocked() []int {
	out := make([]int, 0, len(r.failed)-r.aliveCount)
	for rank, f := range r.failed {
		if f {
			out = append(out, rank)
		}
	}
	sort.Ints(out)
	return out
}

// Alive returns the sorted list of alive ranks.
func (r *Registry) Alive() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, r.aliveCount)
	for rank, f := range r.failed {
		if !f {
			out = append(out, rank)
		}
	}
	return out
}

// LowestAlive returns the smallest alive rank, mirroring the leader
// election of the paper's Figure 12. ok is false when everyone has failed.
func (r *Registry) LowestAlive() (rank int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, f := range r.failed {
		if !f {
			return i, true
		}
	}
	return -1, false
}

// LowestAliveIn returns the smallest alive rank drawn from the given set,
// used for per-communicator leader election over a sub-group.
func (r *Registry) LowestAliveIn(ranks []int) (rank int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	best, found := -1, false
	for _, cand := range ranks {
		if cand < 0 || cand >= len(r.failed) || r.failed[cand] {
			continue
		}
		if !found || cand < best {
			best, found = cand, true
		}
	}
	return best, found
}

// Epoch returns a counter that increases on every failure. Pollers can use
// it to cheaply detect "some failure happened since I last looked".
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// WaitEpochChange blocks until the failure epoch differs from since, or
// returns immediately if it already does. It returns the current epoch.
// This is used by protocol drivers (e.g. the validate_all coordinator
// hand-off) that must wake when any failure occurs.
func (r *Registry) WaitEpochChange(since uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.epoch == since {
		r.cond.Wait()
	}
	return r.epoch
}

// BroadcastWaiters wakes all WaitEpochChange callers without changing the
// epoch. The runtime uses it during world shutdown so that no protocol
// driver is left blocked forever.
func (r *Registry) BroadcastWaiters() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cond.Broadcast()
}
