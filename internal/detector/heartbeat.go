package detector

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ControlOp enumerates the failure-detection control-plane operations
// carried in transport.KindControl packets (op in Tag, heartbeat sequence
// in Seq, empty payload — which also makes control frames immune to the
// chaos fabric's payload corruption).
type ControlOp int

const (
	// OpPing is a heartbeat: "I am alive".
	OpPing ControlOp = iota + 1
	// OpPingAck acknowledges a ping; the sender uses the ack stream to
	// judge whether its own heartbeats are getting through (self-fencing).
	OpPingAck
	// OpFence orders a suspected rank to fail-stop.
	OpFence
	// OpFenceAck is sent by a fenced rank strictly AFTER it has killed
	// itself: receipt proves ground-truth death.
	OpFenceAck
	// OpProbe is a SWIM-style liveness probe (direct, or relayed on
	// behalf of the origin rank named in the gossip envelope).
	OpProbe
	// OpProbeAck acknowledges a probe; relays forward it to the origin.
	OpProbeAck
	// OpProbeReq asks a relay to probe the envelope's target indirectly.
	OpProbeReq
)

// String returns the control-op name.
func (op ControlOp) String() string {
	switch op {
	case OpPing:
		return "ping"
	case OpPingAck:
		return "ping-ack"
	case OpFence:
		return "fence"
	case OpFenceAck:
		return "fence-ack"
	case OpProbe:
		return "probe"
	case OpProbeAck:
		return "probe-ack"
	case OpProbeReq:
		return "probe-req"
	default:
		return fmt.Sprintf("ControlOp(%d)", int(op))
	}
}

// HeartbeatOptions tune one rank's heartbeat monitor. Zero fields take
// defaults.
type HeartbeatOptions struct {
	// Interval is the heartbeat emission period (default 2ms).
	Interval time.Duration
	// Timeout is the fixed-deadline upper bound: a peer silent for this
	// long is suspected regardless of the adaptive estimate (default
	// 8×Interval).
	Timeout time.Duration
	// Phi is the phi-accrual suspicion threshold: phi = -log10 of the
	// probability that a yet-later heartbeat arrival explains the current
	// silence, under the learned inter-arrival distribution. On stable
	// links phi crosses the threshold well before Timeout; under jitter
	// the learned variance widens and Timeout caps detection latency
	// (default 8).
	Phi float64
	// SelfFenceAfter is how long a rank tolerates having none of its own
	// heartbeats acknowledged before it fences itself — the escape hatch
	// for a rank partitioned from everyone, whose peers' fence notices
	// cannot reach it (default 3×Timeout).
	SelfFenceAfter time.Duration
	// FenceResend is the retransmission period for unacknowledged fence
	// notices (default 2×Interval).
	FenceResend time.Duration
	// Clock is the monitor's time source (default: the wall clock).
	// Tests inject a ManualClock to drive deadlines deterministically
	// instead of racing real millisecond tickers against CI load.
	Clock Clock
}

// withDefaults fills zero fields.
func (o HeartbeatOptions) withDefaults() HeartbeatOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = WallClock()
	}
	if o.Timeout <= 0 {
		o.Timeout = 8 * o.Interval
	}
	if o.Phi <= 0 {
		o.Phi = 8
	}
	if o.SelfFenceAfter <= 0 {
		o.SelfFenceAfter = 3 * o.Timeout
	}
	if o.FenceResend <= 0 {
		o.FenceResend = 2 * o.Interval
	}
	return o
}

// HeartbeatHooks observe a monitor's control-plane actions; the mpi world
// maps them to metrics, traces and latency histograms. Nil fields are
// skipped. Hooks run on the monitor's pump or delivery goroutine and must
// not block.
type HeartbeatHooks struct {
	// Ping fires once per heartbeat sent by this rank.
	Ping func(rank int)
	// FenceSent fires for every fence notice (including resends).
	FenceSent func(by, target int)
	// FenceRTT fires when this monitor resolves one of its suspicions into
	// a confirmed failure, with the suspicion-raise to confirmation
	// round-trip (via fence ack or ground-truth observation).
	FenceRTT func(by, target int, rtt time.Duration)
	// SelfFence fires when this rank fences itself.
	SelfFence func(rank int)
}

// arrival is a phi-accrual inter-arrival estimator for one peer: an EWMA
// of the mean and variance of heartbeat gaps, queried for the probability
// that the current silence is still ordinary.
type arrival struct {
	last time.Time
	mean float64 // seconds
	varv float64 // seconds^2
	n    int
}

// arrivalAlpha is the EWMA weight for new inter-arrival samples.
const arrivalAlpha = 0.2

// minSamples gates the adaptive estimate: below it only the fixed
// Timeout applies.
const minSamples = 3

// observe folds one heartbeat arrival into the estimate.
func (a *arrival) observe(now time.Time) {
	if !a.last.IsZero() {
		dt := now.Sub(a.last).Seconds()
		if a.n == 0 {
			a.mean = dt
		} else {
			d := dt - a.mean
			a.mean += arrivalAlpha * d
			a.varv = (1 - arrivalAlpha) * (a.varv + arrivalAlpha*d*d)
		}
		a.n++
	}
	a.last = now
}

// phi returns the phi-accrual suspicion level at time now: -log10 of the
// tail probability of the current silence under a normal model of the
// learned inter-arrival distribution. sigmaFloor guards against a
// degenerate zero-variance estimate on perfectly regular links.
func (a *arrival) phi(now time.Time, sigmaFloor float64) float64 {
	elapsed := now.Sub(a.last).Seconds()
	sigma := math.Sqrt(a.varv)
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	p := 0.5 * math.Erfc((elapsed-a.mean)/(sigma*math.Sqrt2))
	if p < 1e-30 {
		p = 1e-30
	}
	return -math.Log10(p)
}

// Heartbeat is one rank's failure-detection monitor: it emits heartbeats
// to every peer, tracks per-peer arrival deadlines (fixed timeout plus
// phi-accrual), raises suspicion on silence, drives the fencing protocol
// of fence.go, and fences its own rank when its heartbeats go
// unacknowledged for too long. Construct with NewHeartbeat, wire inbound
// control packets to OnControl, and bracket the run with Start/Stop.
type Heartbeat struct {
	reg   *Registry
	rank  int
	size  int
	opts  HeartbeatOptions
	clock Clock
	send  func(to int, op ControlOp, seq uint64)

	// Hooks may be set between NewHeartbeat and Start.
	Hooks HeartbeatHooks

	mu         sync.Mutex
	est        []arrival
	seq        uint64
	lastAck    time.Time
	fences     map[int]*fenceState
	selfFenced bool

	sigmaFloor float64
	done       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

// NewHeartbeat builds the monitor for rank in a world of size ranks.
// send transmits one control packet; it is called without the monitor's
// lock held and may be invoked concurrently.
func NewHeartbeat(reg *Registry, rank, size int, opts HeartbeatOptions, send func(to int, op ControlOp, seq uint64)) *Heartbeat {
	if rank < 0 || rank >= size {
		panic(fmt.Sprintf("detector: heartbeat rank %d out of range [0,%d)", rank, size))
	}
	o := opts.withDefaults()
	return &Heartbeat{
		reg:        reg,
		rank:       rank,
		size:       size,
		opts:       o,
		clock:      o.Clock,
		send:       send,
		est:        make([]arrival, size),
		fences:     make(map[int]*fenceState),
		sigmaFloor: o.Interval.Seconds() / 10,
		done:       make(chan struct{}),
	}
}

// Options returns the monitor's resolved (defaulted) options.
func (h *Heartbeat) Options() HeartbeatOptions { return h.opts }

// Start launches the heartbeat pump. Call after the fabric is started.
func (h *Heartbeat) Start() {
	h.prime(h.clock.Now())
	h.wg.Add(1)
	go h.pump()
}

// prime resets the ack and arrival baselines to now, so the first
// deadlines are measured from monitor start rather than the zero time.
// Deterministic tests call it directly and then drive tick by hand
// instead of starting the pump.
func (h *Heartbeat) prime(now time.Time) {
	h.mu.Lock()
	h.lastAck = now
	for i := range h.est {
		h.est[i].last = now
	}
	h.mu.Unlock()
}

// Stop terminates the pump and waits for it. Safe to call more than once.
func (h *Heartbeat) Stop() {
	h.stopOnce.Do(func() { close(h.done) })
	h.wg.Wait()
}

// Resume resets this monitor's view of peer p ahead of p's reincarnation:
// the arrival estimator restarts from now (a stale `last` from the dead
// incarnation would instantly re-suspect the new one) and any fence
// against the old incarnation is dropped. Call on every survivor BEFORE
// the registry revives the slot — while the slot is still Confirmed the
// deadline scan skips it, so there is no window for a false suspicion.
func (h *Heartbeat) Resume(p int) {
	if p < 0 || p >= h.size || p == h.rank {
		return
	}
	now := h.clock.Now()
	h.mu.Lock()
	h.est[p] = arrival{last: now}
	delete(h.fences, p)
	h.mu.Unlock()
}

// pump is the per-rank monitor loop: one tick per Interval. The ticker
// comes from the injected clock and is stopped on every exit path, so no
// timer outlives Stop even when a fence resend or suspicion is pending.
func (h *Heartbeat) pump() {
	defer h.wg.Done()
	ticker := h.clock.NewTicker(h.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.done:
			return
		case now := <-ticker.Chan():
			if !h.tick(now) {
				return
			}
		}
	}
}

// ctl is one outbound control packet decided under the monitor lock and
// sent outside it (sending under the lock could deadlock two monitors
// delivering into each other over a synchronous fabric).
type ctl struct {
	to  int
	op  ControlOp
	seq uint64
}

// tick runs one monitor round: ping live peers, raise suspicions on
// missed deadlines, drive pending fences, and check the self-fence
// deadline. It returns false when this rank is (or just became) dead.
func (h *Heartbeat) tick(now time.Time) bool {
	if h.reg.Failed(h.rank) {
		return false // dead ranks fall silent; OnControl still acks fences
	}

	var outs []ctl
	var raised, fenceSends []int
	var confirms []fenceConfirm

	h.mu.Lock()
	h.seq++
	seq := h.seq
	for p := 0; p < h.size; p++ {
		if p == h.rank || h.reg.Confirmed(p) {
			continue
		}
		outs = append(outs, ctl{to: p, op: OpPing, seq: seq})
	}
	raised = h.checkDeadlinesLocked(now)
	confirms, fenceSends, clears, fenceOuts := h.driveFencesLocked(now)
	outs = append(outs, fenceOuts...)
	selfFence := h.selfFenceDueLocked(now)
	h.mu.Unlock()

	for _, p := range raised {
		h.reg.Suspect(p, h.rank)
	}
	for _, p := range clears {
		h.reg.ClearSuspect(p, h.rank)
	}
	for _, cf := range confirms {
		if h.reg.ConfirmGen(cf.rank, h.rank, cf.gen) && h.Hooks.FenceRTT != nil {
			// Suspicion-to-confirmation round-trip, same histogram the ack
			// path feeds: with a shared ground-truth registry this path
			// usually wins the race against the (possibly cut) ack.
			h.Hooks.FenceRTT(h.rank, cf.rank, cf.rtt)
		}
	}
	for _, c := range outs {
		h.send(c.to, c.op, c.seq)
		if c.op == OpPing && h.Hooks.Ping != nil {
			h.Hooks.Ping(h.rank)
		}
	}
	for _, p := range fenceSends {
		if h.Hooks.FenceSent != nil {
			h.Hooks.FenceSent(h.rank, p)
		}
	}
	if selfFence {
		if h.Hooks.SelfFence != nil {
			h.Hooks.SelfFence(h.rank)
		}
		h.reg.Kill(h.rank)
		return false
	}
	return true
}

// checkDeadlinesLocked scans peer arrival estimates and returns the peers
// to newly suspect: silent past the fixed Timeout, or past the adaptive
// phi threshold (once enough samples exist). Caller holds mu.
func (h *Heartbeat) checkDeadlinesLocked(now time.Time) []int {
	var raised []int
	for p := 0; p < h.size; p++ {
		if p == h.rank || h.reg.Confirmed(p) || h.fences[p] != nil {
			continue
		}
		a := &h.est[p]
		elapsed := now.Sub(a.last)
		over := elapsed >= h.opts.Timeout
		if !over && a.n >= minSamples && elapsed >= 2*h.opts.Interval {
			over = a.phi(now, h.sigmaFloor) >= h.opts.Phi
		}
		if over {
			// Capture the suspect's generation: the fence (and any eventual
			// Confirm) is against this incarnation only.
			h.fences[p] = &fenceState{start: now, gen: h.reg.Generation(p)}
			raised = append(raised, p)
		}
	}
	return raised
}

// OnControl handles one inbound control packet for this rank. It is
// called from the fabric delivery path — the "NIC" — and keeps answering
// fence notices even after the rank itself is dead, which is what lets a
// fencer confirm a death across a half-open link.
func (h *Heartbeat) OnControl(from int, op ControlOp, seq uint64) {
	if from < 0 || from >= h.size || from == h.rank {
		return
	}
	now := h.clock.Now()
	if h.reg.Failed(h.rank) {
		if op == OpFence {
			h.send(from, OpFenceAck, seq)
		}
		return
	}
	switch op {
	case OpPing:
		h.markAlive(from, now)
		h.send(from, OpPingAck, seq)
	case OpPingAck:
		h.mu.Lock()
		h.lastAck = now
		h.mu.Unlock()
		h.markAlive(from, now)
	case OpFence:
		h.onFenced(from, seq)
	case OpFenceAck:
		h.onFenceAck(from, now)
	}
}

// markAlive folds fresh evidence of `from`'s liveness into its estimator
// and withdraws any suspicion this monitor held against it.
//
// The withdrawal is racy by nature: the tick loop decides to emit a FENCE
// under the lock but sends it after unlocking, so a heartbeat processed in
// that window used to clear the suspicion while the fence was already
// committed to the wire — the rank would then be killed by a fence its
// observer no longer stood behind, with no fence state left to confirm
// the death. The rule now: a suspicion whose fence has not yet been
// emitted clears immediately, but once a fence notice is out the fence
// supersedes the clear — the state drains instead (see fenceState.clearAt
// and driveFencesLocked), resolving to Confirm if the fence lands or to a
// deferred ClearSuspect if it evidently got lost.
func (h *Heartbeat) markAlive(from int, now time.Time) {
	cleared := false
	h.mu.Lock()
	h.est[from].observe(now)
	if fs := h.fences[from]; fs != nil {
		if fs.lastSend.IsZero() {
			delete(h.fences, from)
			cleared = true
		} else if fs.clearAt.IsZero() {
			fs.clearAt = now // fence in flight: drain, don't clear yet
		}
	}
	h.mu.Unlock()
	if cleared {
		h.reg.ClearSuspect(from, h.rank)
	}
}
