package detector

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- phi-accrual estimator ---------------------------------------------------

func TestArrivalPhi(t *testing.T) {
	var a arrival
	base := time.Now()
	interval := 10 * time.Millisecond
	for i := 0; i < 20; i++ {
		a.observe(base.Add(time.Duration(i) * interval))
	}
	last := base.Add(19 * interval)
	floor := interval.Seconds() / 10
	if phi := a.phi(last.Add(interval), floor); phi >= 8 {
		t.Fatalf("one ordinary interval of silence scored phi=%.1f", phi)
	}
	if phi := a.phi(last.Add(10*interval), floor); phi < 8 {
		t.Fatalf("ten intervals of silence scored only phi=%.1f", phi)
	}
	// phi must be monotone in elapsed silence.
	prev := -1.0
	for k := 1; k <= 10; k++ {
		phi := a.phi(last.Add(time.Duration(k)*interval), floor)
		if phi < prev {
			t.Fatalf("phi not monotone: %.2f after %.2f", phi, prev)
		}
		prev = phi
	}
}

func TestArrivalPhiAdaptsToJitter(t *testing.T) {
	steady, jittery := arrival{}, arrival{}
	base := time.Now()
	for i := 0; i < 30; i++ {
		steady.observe(base.Add(time.Duration(i) * 10 * time.Millisecond))
		gap := 10 * time.Millisecond
		if i%2 == 1 {
			gap = 30 * time.Millisecond // alternating heavy jitter
		}
		jittery.observe(base.Add(time.Duration(i) * gap))
	}
	// The same absolute silence must look less alarming on the jittery
	// link: its learned variance is wider.
	floor := 0.001
	silence := 50 * time.Millisecond
	s := steady.phi(steady.last.Add(silence), floor)
	j := jittery.phi(jittery.last.Add(silence), floor)
	if j >= s {
		t.Fatalf("jittery link phi %.1f not below steady link phi %.1f", j, s)
	}
}

func TestHeartbeatOptionsDefaults(t *testing.T) {
	o := HeartbeatOptions{}.withDefaults()
	if o.Interval != 2*time.Millisecond || o.Timeout != 8*o.Interval ||
		o.Phi != 8 || o.SelfFenceAfter != 3*o.Timeout || o.FenceResend != 2*o.Interval {
		t.Fatalf("defaults %+v", o)
	}
	custom := HeartbeatOptions{Interval: 5 * time.Millisecond}.withDefaults()
	if custom.Timeout != 40*time.Millisecond {
		t.Fatalf("derived timeout %v", custom.Timeout)
	}
}

// --- monitors over a programmable loopback net -------------------------------

// hbNet wires n monitors directly into each other's OnControl, with a
// per-(sender, op) cut filter standing in for partitions. Control delivery
// is synchronous, like the Local fabric — which is exactly the regime the
// send-outside-the-lock rule exists for.
type hbNet struct {
	reg *Registry
	hbs []*Heartbeat
	cut func(from, to int, op ControlOp) bool // true = drop the frame
}

func newHBNet(t *testing.T, n int, opts HeartbeatOptions, cut func(from, to int, op ControlOp) bool) *hbNet {
	t.Helper()
	p := &hbNet{reg: New(n), hbs: make([]*Heartbeat, n), cut: cut}
	p.reg.SetConfirmGate(true)
	for rank := 0; rank < n; rank++ {
		from := rank
		p.hbs[rank] = NewHeartbeat(p.reg, rank, n, opts, func(to int, op ControlOp, seq uint64) {
			if p.cut != nil && p.cut(from, to, op) {
				return
			}
			p.hbs[to].OnControl(from, op, seq)
		})
	}
	t.Cleanup(func() {
		for _, hb := range p.hbs {
			hb.Stop()
		}
	})
	return p
}

func (p *hbNet) start() {
	for _, hb := range p.hbs {
		hb.Start()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

var hbTestOpts = HeartbeatOptions{
	Interval:       time.Millisecond,
	Timeout:        20 * time.Millisecond,
	SelfFenceAfter: 300 * time.Millisecond,
}

// TestHeartbeatNoFalseConfirms: on a healthy link nobody is suspected,
// nobody dies.
func TestHeartbeatNoFalseConfirms(t *testing.T) {
	p := newHBNet(t, 2, hbTestOpts, nil)
	p.start()
	time.Sleep(100 * time.Millisecond)
	if p.reg.AliveCount() != 2 {
		t.Fatalf("alive %d after quiet run", p.reg.AliveCount())
	}
	if p.reg.Suspected(0) || p.reg.Suspected(1) {
		t.Fatal("healthy ranks suspected")
	}
}

// TestFenceKillsSilentRankAckPath: rank 1 falls silent (its pings and
// ping-acks are cut) but the fence channel stays open — rank 0 suspects,
// fences, rank 1 kills itself BEFORE acking, and the ack confirms the
// failure with a measured RTT.
func TestFenceKillsSilentRankAckPath(t *testing.T) {
	var silent atomic.Bool
	p := newHBNet(t, 2, hbTestOpts, func(from, to int, op ControlOp) bool {
		return silent.Load() && from == 1 && (op == OpPing || op == OpPingAck)
	})
	var mu sync.Mutex
	var rtts []time.Duration
	deadBeforeAck := true
	p.hbs[0].Hooks.FenceRTT = func(by, target int, rtt time.Duration) {
		mu.Lock()
		rtts = append(rtts, rtt)
		mu.Unlock()
	}
	p.hbs[1].Hooks.SelfFence = func(int) { t.Error("self-fence on a rank whose inbound link is fine") }
	var events []SuspicionEvent
	p.reg.SubscribeSuspicion(func(ev SuspicionEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	p.reg.Subscribe(func(rank int) {
		if rank == 1 && !p.reg.Failed(1) {
			deadBeforeAck = false
		}
	})
	p.start()
	time.Sleep(20 * time.Millisecond) // let the estimators learn the link
	silent.Store(true)
	waitFor(t, "rank 1 confirmed dead", func() bool { return p.reg.Confirmed(1) })
	if !p.reg.Failed(1) || !deadBeforeAck {
		t.Fatal("rank 1 notified before ground-truth death")
	}
	if p.reg.Failed(0) {
		t.Fatal("the observer died too")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rtts) == 0 {
		t.Fatal("fence ack path never measured an RTT")
	}
	var raised, confirmed bool
	for _, ev := range events {
		if ev.Rank == 1 && ev.Kind == SuspectRaised {
			raised = true
			if ev.SinceDeath >= 0 {
				t.Fatal("rank 1 was alive at suspicion time; SinceDeath must be negative")
			}
		}
		if ev.Rank == 1 && ev.Kind == SuspectConfirmed {
			confirmed = true
		}
	}
	if !raised || !confirmed {
		t.Fatalf("suspicion lifecycle incomplete: raised=%v confirmed=%v", raised, confirmed)
	}
}

// TestFenceConfirmsAcrossCutAckLink: rank 1's entire outbound is cut (a
// one-way partition), so the fence gets through but the ack cannot. The
// fencer must still converge by confirming from the registry's ground
// truth on a later tick.
func TestFenceConfirmsAcrossCutAckLink(t *testing.T) {
	var silent atomic.Bool
	p := newHBNet(t, 2, hbTestOpts, func(from, to int, op ControlOp) bool {
		return silent.Load() && from == 1
	})
	p.start()
	time.Sleep(20 * time.Millisecond)
	silent.Store(true)
	waitFor(t, "rank 1 confirmed across the cut ack link", func() bool { return p.reg.Confirmed(1) })
	if !p.reg.Failed(1) || p.reg.Failed(0) {
		t.Fatalf("failed: 0=%v 1=%v", p.reg.Failed(0), p.reg.Failed(1))
	}
}

// TestLateHeartbeatClearsSuspicion: a silence shorter than any fence
// round-trip resolves by clearing, and nobody dies. The cut also eats
// inbound fences so a racing fence cannot kill rank 1 and turn the test
// flaky; what is asserted is that the suspicion CLEARS once heartbeats
// resume and the monitors go back to steady state.
func TestLateHeartbeatClearsSuspicion(t *testing.T) {
	var silent atomic.Bool
	// The cut eats acks in both directions, so a loaded scheduler could
	// stretch the silence past the default self-fence horizon and kill a
	// rank this test needs alive; self-fencing has its own test below.
	opts := hbTestOpts
	opts.SelfFenceAfter = time.Hour
	p := newHBNet(t, 2, opts, func(from, to int, op ControlOp) bool {
		// Fences are cut for the whole test: after the silence ends, a
		// fence resend races the late heartbeat, and losing that race
		// would kill the rank whose survival is the point here.
		if op == OpFence {
			return true
		}
		return silent.Load() && from == 1
	})
	var cleared atomic.Bool
	p.reg.SubscribeSuspicion(func(ev SuspicionEvent) {
		if ev.Kind == SuspectCleared && ev.Rank == 1 {
			cleared.Store(true)
		}
	})
	p.start()
	time.Sleep(20 * time.Millisecond)
	silent.Store(true)
	waitFor(t, "suspicion raised", func() bool { return p.reg.Suspected(1) })
	silent.Store(false) // the late heartbeat arrives after all
	waitFor(t, "suspicion cleared", func() bool { return cleared.Load() })
	waitFor(t, "suspicion withdrawn", func() bool { return !p.reg.Suspected(1) })
	if p.reg.FailedCount() != 0 {
		t.Fatalf("a cleared false suspicion still killed someone: failed %v", p.reg.Snapshot())
	}
}

// TestSelfFenceOnTotalIsolation: both directions around rank 1 are cut, so
// no fence can reach it — rank 1 must notice its own heartbeats going
// unacknowledged and fence itself. Three ranks, not two: ranks 0 and 2
// keep acking each other, so only the isolated rank's ack stream goes
// stale and the self-fence verdict is unambiguous.
func TestSelfFenceOnTotalIsolation(t *testing.T) {
	var isolated atomic.Bool
	p := newHBNet(t, 3, hbTestOpts, func(from, to int, op ControlOp) bool {
		return isolated.Load() && (from == 1 || to == 1)
	})
	var selfFenced atomic.Bool
	p.hbs[1].Hooks.SelfFence = func(rank int) {
		if rank != 1 {
			t.Errorf("self-fence hook for rank %d", rank)
		}
		selfFenced.Store(true)
	}
	p.start()
	time.Sleep(20 * time.Millisecond)
	isolated.Store(true)
	waitFor(t, "rank 1 self-fences", func() bool { return selfFenced.Load() && p.reg.Failed(1) })
	waitFor(t, "survivors confirm via ground truth", func() bool { return p.reg.Confirmed(1) })
	if p.reg.Failed(0) || p.reg.Failed(2) {
		t.Fatal("a survivor died")
	}
}

// TestSoleSurvivorDoesNotSelfFence: when every peer is ground-truth dead,
// unacknowledged heartbeats are expected and suicide would end the run for
// nothing.
func TestSoleSurvivorDoesNotSelfFence(t *testing.T) {
	p := newHBNet(t, 2, hbTestOpts, nil)
	p.reg.Kill(1) // peer dies before the monitors even start
	p.start()
	time.Sleep(3 * hbTestOpts.SelfFenceAfter)
	if p.reg.Failed(0) {
		t.Fatal("sole survivor fenced itself")
	}
}
