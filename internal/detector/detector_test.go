package detector

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewAllAlive(t *testing.T) {
	r := New(5)
	if r.Size() != 5 || r.AliveCount() != 5 || r.FailedCount() != 0 {
		t.Fatalf("fresh registry wrong: size=%d alive=%d failed=%d",
			r.Size(), r.AliveCount(), r.FailedCount())
	}
	for i := 0; i < 5; i++ {
		if r.Failed(i) {
			t.Fatalf("rank %d should be alive", i)
		}
		if r.State(i) != Alive {
			t.Fatalf("rank %d state %v", i, r.State(i))
		}
		if r.Generation(i) != 1 {
			t.Fatalf("rank %d generation %d", i, r.Generation(i))
		}
	}
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("snapshot %d entries", got)
	}
}

func TestKillTransitionsOnce(t *testing.T) {
	r := New(3)
	if !r.Kill(1) {
		t.Fatal("first kill should transition")
	}
	if r.Kill(1) {
		t.Fatal("second kill should be a no-op")
	}
	if !r.Failed(1) || r.State(1) != Failed {
		t.Fatal("rank 1 should be failed")
	}
	if r.AliveCount() != 2 || r.FailedCount() != 1 {
		t.Fatalf("counts alive=%d failed=%d", r.AliveCount(), r.FailedCount())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0] != 1 {
		t.Fatalf("snapshot %v", snap)
	}
	alive := r.Alive()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("alive %v", alive)
	}
}

// TestStrongCompleteness: every subscriber hears about every failure,
// including failures that happened before subscribing.
func TestStrongCompleteness(t *testing.T) {
	r := New(4)
	r.Kill(2)
	var early, late []int
	var mu sync.Mutex
	r.Subscribe(func(rank int) { mu.Lock(); early = append(early, rank); mu.Unlock() })
	r.Kill(0)
	r.Subscribe(func(rank int) { mu.Lock(); late = append(late, rank); mu.Unlock() })
	r.Kill(3)
	mu.Lock()
	defer mu.Unlock()
	if len(early) != 3 { // 2 (replayed), 0, 3
		t.Fatalf("early subscriber heard %v", early)
	}
	if len(late) != 3 { // 2, 0 replayed; 3 live
		t.Fatalf("late subscriber heard %v", late)
	}
}

func TestNotifyDelayStillNotifies(t *testing.T) {
	r := New(2)
	r.SetNotifyDelay(5 * time.Millisecond)
	var n atomic.Int32
	r.Subscribe(func(int) { n.Add(1) })
	r.Kill(1)
	if !r.Failed(1) {
		t.Fatal("ground truth must flip immediately (strong accuracy)")
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n.Load() != 1 {
		t.Fatalf("notification count %d", n.Load())
	}
}

func TestLowestAlive(t *testing.T) {
	r := New(4)
	if got, ok := r.LowestAlive(); !ok || got != 0 {
		t.Fatalf("lowest %d ok=%v", got, ok)
	}
	r.Kill(0)
	r.Kill(1)
	if got, ok := r.LowestAlive(); !ok || got != 2 {
		t.Fatalf("lowest %d ok=%v", got, ok)
	}
	if got, ok := r.LowestAliveIn([]int{3, 1}); !ok || got != 3 {
		t.Fatalf("lowest-in %d ok=%v", got, ok)
	}
	if _, ok := r.LowestAliveIn([]int{0, 1}); ok {
		t.Fatal("no alive rank in {0,1}")
	}
	r.Kill(2)
	r.Kill(3)
	if _, ok := r.LowestAlive(); ok {
		t.Fatal("everyone is dead")
	}
}

func TestEpochAndWaiters(t *testing.T) {
	r := New(3)
	e0 := r.Epoch()
	done := make(chan uint64, 1)
	go func() { done <- r.WaitEpochChange(e0) }()
	time.Sleep(5 * time.Millisecond)
	r.Kill(1)
	select {
	case e := <-done:
		if e != e0+1 {
			t.Fatalf("epoch %d want %d", e, e0+1)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

// TestAccuracyProperty: strong accuracy by construction — Failed(r) is
// true iff Kill(r) was called, for arbitrary kill sequences.
func TestAccuracyProperty(t *testing.T) {
	prop := func(mask uint8) bool {
		r := New(8)
		want := map[int]bool{}
		for i := 0; i < 8; i++ {
			if mask&(1<<i) != 0 {
				r.Kill(i)
				want[i] = true
			}
		}
		for i := 0; i < 8; i++ {
			if r.Failed(i) != want[i] {
				return false
			}
		}
		return r.AliveCount() == 8-len(want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSuspicionLifecycle walks one (observer, suspect) pair through the
// gated-mode state machine: suspicion never notifies, clear withdraws it,
// Kill flips ground truth (and death hooks) without notifying, and only
// Confirm fires the failure subscribers — exactly once.
func TestSuspicionLifecycle(t *testing.T) {
	r := New(3)
	r.SetConfirmGate(true)
	var mu sync.Mutex
	var events []SuspicionEvent
	var notified, deaths []int
	r.SubscribeSuspicion(func(ev SuspicionEvent) { mu.Lock(); events = append(events, ev); mu.Unlock() })
	r.Subscribe(func(rank int) { mu.Lock(); notified = append(notified, rank); mu.Unlock() })
	r.OnDeath(func(rank int) { mu.Lock(); deaths = append(deaths, rank); mu.Unlock() })

	if !r.Suspect(1, 0) {
		t.Fatal("first suspicion should raise")
	}
	if r.Suspect(1, 0) {
		t.Fatal("duplicate suspicion should be a no-op")
	}
	if r.State(1) != Suspected || !r.Suspected(1) {
		t.Fatalf("state %v", r.State(1))
	}
	if r.Failed(1) || r.Confirmed(1) {
		t.Fatal("suspicion must not touch ground truth")
	}
	if !r.ClearSuspect(1, 0) {
		t.Fatal("clear should withdraw the suspicion")
	}
	if r.ClearSuspect(1, 0) {
		t.Fatal("double clear should be a no-op")
	}
	if r.State(1) != Alive {
		t.Fatalf("state after clear %v", r.State(1))
	}

	if !r.Kill(1) {
		t.Fatal("kill should transition")
	}
	mu.Lock()
	if len(notified) != 0 {
		t.Fatalf("gated kill notified %v before confirm", notified)
	}
	if len(deaths) != 1 || deaths[0] != 1 {
		t.Fatalf("death hooks %v", deaths)
	}
	mu.Unlock()
	if !r.Failed(1) || r.Confirmed(1) {
		t.Fatal("killed but unconfirmed expected")
	}

	r.Suspect(1, 2)
	if !r.Confirm(1, 2) {
		t.Fatal("first confirm should notify")
	}
	if r.Confirm(1, 0) {
		t.Fatal("second confirm should be a no-op")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 1 || notified[0] != 1 {
		t.Fatalf("notified %v", notified)
	}
	if len(events) != 4 {
		t.Fatalf("events %v", events)
	}
	wantKinds := []SuspicionKind{SuspectRaised, SuspectCleared, SuspectRaised, SuspectConfirmed}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %v want %v", i, ev.Kind, wantKinds[i])
		}
	}
	if events[0].SinceDeath >= 0 {
		t.Fatal("pre-death suspicion must carry negative SinceDeath (false suspicion)")
	}
	if events[2].SinceDeath < 0 || events[3].SinceDeath < 0 {
		t.Fatal("post-death events must carry the detection latency")
	}
}

// TestConfirmLiveRankPanics: confirming a rank that is not ground-truth
// dead is a strong-accuracy violation and must crash loudly.
func TestConfirmLiveRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Confirm of a live rank did not panic")
		}
	}()
	r := New(2)
	r.SetConfirmGate(true)
	r.Confirm(1, 0)
}

// TestGatedSubscribeReplay: in gated mode a late subscriber replays only
// confirmed failures — a killed-but-unconfirmed rank stays invisible until
// fencing finishes the job.
func TestGatedSubscribeReplay(t *testing.T) {
	r := New(3)
	r.SetConfirmGate(true)
	r.Kill(1)
	var got []int
	r.Subscribe(func(rank int) { got = append(got, rank) })
	if len(got) != 0 {
		t.Fatalf("unconfirmed failure replayed: %v", got)
	}
	r.Confirm(1, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("confirm did not notify the late subscriber: %v", got)
	}
}

// TestSubscribeKillRace pins the package lock contract under -race:
// callbacks never fire while the registry mutex is held, so a subscriber
// that calls back into the read-side cannot deadlock, and concurrent
// Subscribe/Kill/Suspect/Confirm still deliver every failure to every
// subscriber exactly once.
func TestSubscribeKillRace(t *testing.T) {
	const n = 32
	r := New(n)
	var mu sync.Mutex
	var subs []map[int]int
	addSubscriber := func() {
		seen := make(map[int]int)
		mu.Lock()
		subs = append(subs, seen)
		mu.Unlock()
		r.Subscribe(func(rank int) {
			// Read-side reentrancy: deadlocks here if the registry fired
			// this callback under its mutex.
			_ = r.Failed(rank)
			_ = r.State(rank)
			_ = r.AliveCount()
			_ = r.Snapshot()
			mu.Lock()
			seen[rank]++
			mu.Unlock()
		})
	}
	r.SubscribeSuspicion(func(ev SuspicionEvent) {
		_ = r.State(ev.Rank) // same reentrancy check for suspicion events
	})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		rank := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			addSubscriber()
		}()
		go func() {
			defer wg.Done()
			r.Suspect(rank, (rank+1)%n)
			r.Kill(rank)
			r.ClearSuspect(rank, (rank+1)%n)
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(subs) != n {
		t.Fatalf("%d subscribers registered", len(subs))
	}
	for si, seen := range subs {
		for rank := 0; rank < n; rank++ {
			if seen[rank] != 1 {
				t.Fatalf("subscriber %d saw rank %d %d times", si, rank, seen[rank])
			}
		}
	}
}

func TestConcurrentKills(t *testing.T) {
	r := New(64)
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		for j := 0; j < 4; j++ { // four racers per rank
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if r.Kill(rank) {
					wins.Add(1)
				}
			}(i)
		}
	}
	wg.Wait()
	if wins.Load() != 64 {
		t.Fatalf("each rank must be killed exactly once, got %d", wins.Load())
	}
	if r.AliveCount() != 0 {
		t.Fatalf("alive %d", r.AliveCount())
	}
}
