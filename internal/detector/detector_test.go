package detector

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewAllAlive(t *testing.T) {
	r := New(5)
	if r.Size() != 5 || r.AliveCount() != 5 || r.FailedCount() != 0 {
		t.Fatalf("fresh registry wrong: size=%d alive=%d failed=%d",
			r.Size(), r.AliveCount(), r.FailedCount())
	}
	for i := 0; i < 5; i++ {
		if r.Failed(i) {
			t.Fatalf("rank %d should be alive", i)
		}
		if r.State(i) != Alive {
			t.Fatalf("rank %d state %v", i, r.State(i))
		}
		if r.Generation(i) != 1 {
			t.Fatalf("rank %d generation %d", i, r.Generation(i))
		}
	}
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("snapshot %d entries", got)
	}
}

func TestKillTransitionsOnce(t *testing.T) {
	r := New(3)
	if !r.Kill(1) {
		t.Fatal("first kill should transition")
	}
	if r.Kill(1) {
		t.Fatal("second kill should be a no-op")
	}
	if !r.Failed(1) || r.State(1) != Failed {
		t.Fatal("rank 1 should be failed")
	}
	if r.AliveCount() != 2 || r.FailedCount() != 1 {
		t.Fatalf("counts alive=%d failed=%d", r.AliveCount(), r.FailedCount())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0] != 1 {
		t.Fatalf("snapshot %v", snap)
	}
	alive := r.Alive()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("alive %v", alive)
	}
}

// TestStrongCompleteness: every subscriber hears about every failure,
// including failures that happened before subscribing.
func TestStrongCompleteness(t *testing.T) {
	r := New(4)
	r.Kill(2)
	var early, late []int
	var mu sync.Mutex
	r.Subscribe(func(rank int) { mu.Lock(); early = append(early, rank); mu.Unlock() })
	r.Kill(0)
	r.Subscribe(func(rank int) { mu.Lock(); late = append(late, rank); mu.Unlock() })
	r.Kill(3)
	mu.Lock()
	defer mu.Unlock()
	if len(early) != 3 { // 2 (replayed), 0, 3
		t.Fatalf("early subscriber heard %v", early)
	}
	if len(late) != 3 { // 2, 0 replayed; 3 live
		t.Fatalf("late subscriber heard %v", late)
	}
}

func TestNotifyDelayStillNotifies(t *testing.T) {
	r := New(2)
	r.SetNotifyDelay(5 * time.Millisecond)
	var n atomic.Int32
	r.Subscribe(func(int) { n.Add(1) })
	r.Kill(1)
	if !r.Failed(1) {
		t.Fatal("ground truth must flip immediately (strong accuracy)")
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n.Load() != 1 {
		t.Fatalf("notification count %d", n.Load())
	}
}

func TestLowestAlive(t *testing.T) {
	r := New(4)
	if got, ok := r.LowestAlive(); !ok || got != 0 {
		t.Fatalf("lowest %d ok=%v", got, ok)
	}
	r.Kill(0)
	r.Kill(1)
	if got, ok := r.LowestAlive(); !ok || got != 2 {
		t.Fatalf("lowest %d ok=%v", got, ok)
	}
	if got, ok := r.LowestAliveIn([]int{3, 1}); !ok || got != 3 {
		t.Fatalf("lowest-in %d ok=%v", got, ok)
	}
	if _, ok := r.LowestAliveIn([]int{0, 1}); ok {
		t.Fatal("no alive rank in {0,1}")
	}
	r.Kill(2)
	r.Kill(3)
	if _, ok := r.LowestAlive(); ok {
		t.Fatal("everyone is dead")
	}
}

func TestEpochAndWaiters(t *testing.T) {
	r := New(3)
	e0 := r.Epoch()
	done := make(chan uint64, 1)
	go func() { done <- r.WaitEpochChange(e0) }()
	time.Sleep(5 * time.Millisecond)
	r.Kill(1)
	select {
	case e := <-done:
		if e != e0+1 {
			t.Fatalf("epoch %d want %d", e, e0+1)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

// TestAccuracyProperty: strong accuracy by construction — Failed(r) is
// true iff Kill(r) was called, for arbitrary kill sequences.
func TestAccuracyProperty(t *testing.T) {
	prop := func(mask uint8) bool {
		r := New(8)
		want := map[int]bool{}
		for i := 0; i < 8; i++ {
			if mask&(1<<i) != 0 {
				r.Kill(i)
				want[i] = true
			}
		}
		for i := 0; i < 8; i++ {
			if r.Failed(i) != want[i] {
				return false
			}
		}
		return r.AliveCount() == 8-len(want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentKills(t *testing.T) {
	r := New(64)
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		for j := 0; j < 4; j++ { // four racers per rank
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if r.Kill(rank) {
					wins.Add(1)
				}
			}(i)
		}
	}
	wg.Wait()
	if wins.Load() != 64 {
		t.Fatalf("each rank must be killed exactly once, got %d", wins.Load())
	}
	if r.AliveCount() != 0 {
		t.Fatalf("alive %d", r.AliveCount())
	}
}
