package core

import (
	"fmt"
	"sync"
)

// Variant selects which receive-side design from the paper the ring uses.
type Variant int

const (
	// VariantUnaware is the traditional ring of Fig. 2: no error handling
	// at all. It only completes in failure-free worlds.
	VariantUnaware Variant = iota
	// VariantNaive mirrors the send-side failover on the receive side
	// (the rejected first attempt of Section III-A): on receive error,
	// repost to the next left neighbor — and hang when a rank dies
	// holding the buffer, as in Fig. 6.
	VariantNaive
	// VariantNoMarker uses the Fig. 9 Irecv failure detector and resend
	// path but omits the iteration-marker check (Fig. 9 lines 24-28),
	// reproducing the Fig. 8 duplicate-completion bug.
	VariantNoMarker
	// VariantSeparateTag is the Section III-B alternative: resent buffers
	// travel on a dedicated tag (a second communication context) instead
	// of relying solely on in-band markers.
	VariantSeparateTag
	// VariantFull is the paper's complete design: Fig. 3 main loop,
	// Fig. 4 neighbor selection, Fig. 5 send failover, Fig. 9 receive
	// with failure detector, Fig. 10 marker-based duplicate suppression.
	VariantFull
)

// String names the variant for tables and traces.
func (v Variant) String() string {
	switch v {
	case VariantUnaware:
		return "unaware"
	case VariantNaive:
		return "naive-recv"
	case VariantNoMarker:
		return "no-marker"
	case VariantSeparateTag:
		return "separate-tag"
	case VariantFull:
		return "full"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Termination selects the termination-detection protocol (Section III-C/D).
type Termination int

const (
	// TermNone ends each rank as soon as its own iterations are done. Safe
	// only in failure-free runs; used by the overhead benchmarks.
	TermNone Termination = iota
	// TermRootBcast is Fig. 11: the root broadcasts a termination message;
	// non-roots concurrently watch their right neighbor for resends.
	TermRootBcast
	// TermValidateAll is Fig. 13: a non-blocking MPI_Icomm_validate_all
	// doubles as the termination agreement, tolerating root failure.
	TermValidateAll
)

// String names the termination mode.
func (t Termination) String() string {
	switch t {
	case TermNone:
		return "none"
	case TermRootBcast:
		return "root-bcast"
	case TermValidateAll:
		return "validate-all"
	default:
		return fmt.Sprintf("Termination(%d)", int(t))
	}
}

// RootPolicy selects the Section III-D behaviour when the root fails.
type RootPolicy int

const (
	// RootAbort aborts the application on root failure — the simplifying
	// assumption of Sections III-A through III-C.
	RootAbort RootPolicy = iota
	// RootElect elects the lowest alive rank (Fig. 12) as the new root,
	// which regains control of the iteration space (Section III-D).
	RootElect
)

// String names the root policy.
func (r RootPolicy) String() string {
	switch r {
	case RootAbort:
		return "abort"
	case RootElect:
		return "elect"
	default:
		return fmt.Sprintf("RootPolicy(%d)", int(r))
	}
}

// Config parameterizes a ring run.
type Config struct {
	// Iters is the paper's max_iter: how many times the buffer circulates.
	Iters int
	// Variant selects the receive design (default VariantFull).
	Variant Variant
	// Termination selects the termination protocol (default TermNone).
	Termination Termination
	// RootPolicy selects root-failure handling (default RootAbort).
	RootPolicy RootPolicy
	// Padding adds payload bytes to every ring message for size sweeps.
	Padding int
}

// Stats is one rank's account of the run, used by the scenario tests and
// the experiment tables.
type Stats struct {
	// Iterations counts ring iterations this rank participated in
	// (forwards for non-roots, absorptions for the root).
	Iterations int
	// Resends counts Fig. 7-style retransmissions this rank performed.
	Resends int
	// DupsDropped counts duplicates suppressed by the marker (Fig. 10).
	DupsDropped int
	// DupsForwarded counts duplicates forwarded because the marker check
	// was disabled (Fig. 8's bug made observable).
	DupsForwarded int
	// SendFailovers counts right-neighbor replacements in FT_Send_right.
	SendFailovers int
	// RecvFailovers counts left-neighbor replacements in FT_Recv_left.
	RecvFailovers int
	// BecameRoot reports that this rank took over as root (Section III-D).
	BecameRoot bool
	// FinalRoot is the root this rank last considered current.
	FinalRoot int
	// RootValues records, per absorbed iteration marker, the value the
	// root read back — size of the alive ring in failure-free runs.
	RootValues map[int64]int64
	// Terminated reports that the rank completed the termination protocol.
	Terminated bool
}

// Report aggregates per-rank stats for one run.
type Report struct {
	mu      sync.Mutex
	perRank []Stats
}

// NewReport creates a report sized for n ranks.
func NewReport(n int) *Report {
	return &Report{perRank: make([]Stats, n)}
}

// put stores a rank's final stats.
func (r *Report) put(rank int, s Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perRank[rank] = s
}

// Rank returns the stats recorded for one rank.
func (r *Report) Rank(rank int) Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perRank[rank]
}

// Size returns the number of ranks covered by the report.
func (r *Report) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.perRank)
}

// TotalIterations sums iteration participations over all ranks.
func (r *Report) TotalIterations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.perRank {
		n += s.Iterations
	}
	return n
}

// TotalResends sums resends over all ranks.
func (r *Report) TotalResends() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.perRank {
		n += s.Resends
	}
	return n
}

// TotalDupsDropped sums marker-suppressed duplicates over all ranks.
func (r *Report) TotalDupsDropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.perRank {
		n += s.DupsDropped
	}
	return n
}

// TotalDupsForwarded sums wrongly forwarded duplicates over all ranks.
func (r *Report) TotalDupsForwarded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.perRank {
		n += s.DupsForwarded
	}
	return n
}
