// Package core implements the paper's contribution: the fault-tolerant
// ring application of "Building a Fault Tolerant MPI Application: A Ring
// Communication Example" (Hursey & Graham, 2011), in every variant the
// paper discusses:
//
//   - the traditional fault-unaware ring (Fig. 2);
//   - the naive fault-"tolerant" receive that mirrors the send-side
//     failover and deadlocks (Fig. 6);
//   - the Irecv-as-failure-detector receive (Fig. 9) with and without the
//     iteration-marker duplicate suppression of Figs. 3/10 (the without
//     case reproduces the Fig. 8 duplicate-completion bug);
//   - the separate-resend-tag alternative sketched in Section III-B;
//   - both termination-detection protocols: root broadcast (Fig. 11) and
//     non-blocking validate_all (Fig. 13);
//   - both root policies: abort on root failure, or elect a new root
//     (Fig. 12) which regains control of the iteration space
//     (Section III-D).
package core

import (
	"encoding/binary"
	"fmt"
)

// Message tags. TagRing is the paper's T_N (normal ring traffic), TagTerm
// its T_D (termination), and TagResend the extra tag of the Section III-B
// alternative duplicate-control scheme.
const (
	TagRing   = 1
	TagTerm   = 2
	TagResend = 3
)

// Message is the ring buffer: the accumulated value plus the iteration
// marker of Fig. 3 ("struct ring_msg_t {int value; int marker}"),
// followed by optional padding so benchmarks can sweep message sizes.
type Message struct {
	Value  int64
	Marker int64
}

const msgHeaderLen = 16

// Encode serializes the message with pad extra payload bytes.
func (m Message) Encode(pad int) []byte {
	buf := make([]byte, msgHeaderLen+pad)
	binary.LittleEndian.PutUint64(buf[0:], uint64(m.Value))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Marker))
	return buf
}

// DecodeMessage parses a payload produced by Encode.
func DecodeMessage(b []byte) (Message, error) {
	if len(b) < msgHeaderLen {
		return Message{}, fmt.Errorf("core: ring message too short (%d bytes)", len(b))
	}
	return Message{
		Value:  int64(binary.LittleEndian.Uint64(b[0:])),
		Marker: int64(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}
