package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/inject"
	"repro/internal/mpi"
)

// TestChainedRootDeaths kills the root and then its successor: control
// must be regained twice (Section III-D applied transitively).
func TestChainedRootDeaths(t *testing.T) {
	plan := inject.NewPlan().Add(
		inject.AfterNthRecv(0, 2), // root 0 dies absorbing iteration 1
		inject.AfterNthRecv(1, 5), // successor root 1 dies a few iterations later
	)
	report, res := runRing(t, 6,
		Config{Iters: 10, Variant: VariantFull, Termination: TermValidateAll, RootPolicy: RootElect},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[0].Killed || !res.Ranks[1].Killed {
		t.Fatalf("both roots should have died: %+v %+v", res.Ranks[0], res.Ranks[1])
	}
	for rank := 2; rank < 6; rank++ {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d did not terminate", rank)
		}
		if report.Rank(rank).FinalRoot != 2 {
			t.Fatalf("rank %d final root %d, want 2", rank, report.Rank(rank).FinalRoot)
		}
	}
	if !report.Rank(1).BecameRoot || !report.Rank(2).BecameRoot {
		t.Fatalf("expected two successive root takeovers: r1=%+v r2=%+v",
			report.Rank(1).BecameRoot, report.Rank(2).BecameRoot)
	}
	// Every iteration was absorbed by exactly one of the three roots.
	absorbed := map[int64]int{}
	for _, rank := range []int{0, 1, 2} {
		for m := range report.Rank(rank).RootValues {
			absorbed[m]++
		}
	}
	for m, n := range absorbed {
		if n != 1 {
			t.Fatalf("iteration %d absorbed %d times", m, n)
		}
	}
}

// TestSimultaneousAdjacentDeaths kills the root and its right neighbor at
// nearly the same time; rank 2 must still discover it is the new root
// even though the rank that died to its left (rank 1) was not the root
// it had on record.
func TestSimultaneousAdjacentDeaths(t *testing.T) {
	plan := inject.NewPlan().Add(
		inject.AfterNthRecv(0, 2),
		inject.AfterNthRecv(1, 2),
	)
	report, res := runRing(t, 5,
		Config{Iters: 8, Variant: VariantFull, Termination: TermValidateAll, RootPolicy: RootElect},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	for rank := 2; rank < 5; rank++ {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
	}
	if !report.Rank(2).BecameRoot {
		t.Fatalf("rank 2 should have become root: %+v", report.Rank(2))
	}
}

// TestRunThroughProperty is the paper's headline claim as a property:
// for arbitrary failure schedules over non-root ranks (at exact receive
// ordinals), the full design completes every iteration and every
// survivor terminates.
func TestRunThroughProperty(t *testing.T) {
	prop := func(seed uint32) bool {
		n := 4 + int(seed%5) // 4..8 ranks
		iters := 6
		failures := 1 + int(seed>>3)%(n/2) // 1..n/2 failures, never the root
		cands := make([]int, 0, n-1)
		for r := 1; r < n; r++ {
			cands = append(cands, r)
		}
		plan, chosen := inject.RandomPlan(int64(seed), cands, failures, iters-1)
		mcfg := mpi.Config{Size: n, Deadline: 30 * time.Second, Hook: plan.Hook()}
		report, res, err := Run(mcfg, Config{
			Iters: iters, Variant: VariantFull, Termination: TermValidateAll,
		})
		if err != nil {
			t.Logf("seed %d (n=%d kills=%v): %v", seed, n, chosen, err)
			return false
		}
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if !rr.Finished || rr.Err != nil {
				t.Logf("seed %d (n=%d kills=%v): rank %d %+v", seed, n, chosen, rank, rr)
				return false
			}
			if !report.Rank(rank).Terminated {
				t.Logf("seed %d: rank %d not terminated", seed, rank)
				return false
			}
		}
		if got := len(report.Rank(0).RootValues); got != iters {
			t.Logf("seed %d (n=%d kills=%v): root absorbed %d/%d", seed, n, chosen, got, iters)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRunThroughWithRootDeathsProperty extends the property to schedules
// that may kill the root (and successors), under RootElect. At least two
// ranks always survive.
func TestRunThroughWithRootDeathsProperty(t *testing.T) {
	prop := func(seed uint32) bool {
		n := 5 + int(seed%4) // 5..8 ranks
		iters := 8
		// Kill up to n-3 ranks chosen from ALL ranks (root included).
		failures := 1 + int(seed>>4)%(n-3)
		cands := make([]int, n)
		for r := range cands {
			cands[r] = r
		}
		plan, chosen := inject.RandomPlan(int64(seed)*7+3, cands, failures, iters-2)
		mcfg := mpi.Config{Size: n, Deadline: 30 * time.Second, Hook: plan.Hook()}
		report, res, err := Run(mcfg, Config{
			Iters: iters, Variant: VariantFull,
			Termination: TermValidateAll, RootPolicy: RootElect,
		})
		if err != nil {
			t.Logf("seed %d (n=%d kills=%v): %v", seed, n, chosen, err)
			return false
		}
		for rank, rr := range res.Ranks {
			if rr.Killed {
				continue
			}
			if !rr.Finished || rr.Err != nil {
				t.Logf("seed %d (n=%d kills=%v): rank %d %+v", seed, n, chosen, rank, rr)
				return false
			}
			if !report.Rank(rank).Terminated {
				t.Logf("seed %d (n=%d kills=%v): rank %d not terminated", seed, n, chosen, rank)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedSweepDeterminism re-runs one seeded schedule several times and
// demands identical observable outcomes — the reproducibility the
// paper's Section III-E testing discussion asks for.
func TestSeedSweepDeterminism(t *testing.T) {
	type fingerprint struct {
		killed   int
		resends  int
		dropped  int
		absorbed int
	}
	run := func() fingerprint {
		plan, _ := inject.RandomPlan(12345, []int{1, 2, 3, 4, 5}, 2, 5)
		mcfg := mpi.Config{Size: 6, Deadline: 30 * time.Second, Hook: plan.Hook()}
		report, res, err := Run(mcfg, Config{
			Iters: 8, Variant: VariantFull, Termination: TermValidateAll,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		fp := fingerprint{
			resends:  report.TotalResends(),
			dropped:  report.TotalDupsDropped(),
			absorbed: len(report.Rank(0).RootValues),
		}
		for _, rr := range res.Ranks {
			if rr.Killed {
				fp.killed++
			}
		}
		return fp
	}
	first := run()
	if first.killed != 2 || first.absorbed != 8 {
		t.Fatalf("baseline fingerprint wrong: %+v", first)
	}
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, first)
		}
	}
}

// TestVariantStringsAndConfig covers the enum labels used by tables.
func TestVariantStringsAndConfig(t *testing.T) {
	cases := map[fmt.Stringer]string{
		VariantUnaware:     "unaware",
		VariantNaive:       "naive-recv",
		VariantNoMarker:    "no-marker",
		VariantSeparateTag: "separate-tag",
		VariantFull:        "full",
		TermNone:           "none",
		TermRootBcast:      "root-bcast",
		TermValidateAll:    "validate-all",
		RootAbort:          "abort",
		RootElect:          "elect",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("%T: got %q want %q", v, v.String(), want)
		}
	}
}

// TestMessageCodec round-trips ring messages with padding.
func TestMessageCodec(t *testing.T) {
	m := Message{Value: 77, Marker: -3}
	for _, pad := range []int{0, 1, 1024} {
		buf := m.Encode(pad)
		if len(buf) != 16+pad {
			t.Fatalf("pad %d: len %d", pad, len(buf))
		}
		got, err := DecodeMessage(buf)
		if err != nil || got != m {
			t.Fatalf("round trip: %+v %v", got, err)
		}
	}
	if _, err := DecodeMessage([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message accepted")
	}
}
