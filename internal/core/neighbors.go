package core

import (
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// alive reports whether comm rank r is locally known to be running — the
// MPI_Comm_validate_rank check of Fig. 4. Recognized ranks (RankNull) are
// just as unusable as unrecognized ones for neighbor purposes.
func (n *node) alive(r int) bool {
	info, err := n.c.RankState(r)
	return err == nil && info.State == mpi.RankOK
}

// toLeftOf is Fig. 4's fault-aware left-neighbor selection: walk left
// (decreasing rank, wrapping) until an alive rank is found; abort if the
// search wraps all the way back to us (we are alone).
func (n *node) toLeftOf(r int) int {
	n.p.Metrics().Inc(n.me, metrics.NeighborScans)
	for {
		if r == 0 {
			r = n.size - 1
		} else {
			r--
		}
		if n.alive(r) {
			if r == n.me {
				// Alone in the communicator, as in Fig. 4 line 7.
				n.p.Abort(-1)
			}
			return r
		}
		if r == n.me {
			n.p.Abort(-1)
		}
	}
}

// toRightOf is Fig. 4's fault-aware right-neighbor selection.
func (n *node) toRightOf(r int) int {
	n.p.Metrics().Inc(n.me, metrics.NeighborScans)
	for {
		r = (r + 1) % n.size
		if n.alive(r) {
			if r == n.me {
				n.p.Abort(-1)
			}
			return r
		}
		if r == n.me {
			n.p.Abort(-1)
		}
	}
}

// currentRoot is Fig. 12's leader election: the lowest comm rank whose
// local state is MPI_RANK_OK.
func (n *node) currentRoot() int {
	for r := 0; r < n.size; r++ {
		if n.alive(r) {
			return r
		}
	}
	n.p.Abort(-1)
	return -1 // unreachable
}
