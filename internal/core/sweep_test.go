package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/mpi"
)

// TestExhaustiveSingleFaultPlacement answers the paper's Section III-E
// question ("how can a developer know when they have addressed ALL of
// the problematic fault scenarios?") for single failures, by brute
// force: because the injector pins deaths to operation ordinals, the
// space of single-failure placements in a small ring is finite and is
// swept completely. Every non-root rank is killed at every receive and
// at every send ordinal it would reach; every schedule must leave the
// ring complete with all iterations absorbed exactly once.
func TestExhaustiveSingleFaultPlacement(t *testing.T) {
	const (
		n     = 4
		iters = 4
	)
	for victim := 1; victim < n; victim++ {
		for _, point := range []string{"recv", "send", "before-send"} {
			for ordinal := 1; ordinal <= iters; ordinal++ {
				name := fmt.Sprintf("kill-%d-%s-%d", victim, point, ordinal)
				t.Run(name, func(t *testing.T) {
					var trig inject.Trigger
					switch point {
					case "recv":
						trig = inject.AfterNthRecv(victim, ordinal)
					case "send":
						trig = inject.AfterNthSend(victim, ordinal)
					case "before-send":
						trig = inject.BeforeNthSend(victim, ordinal)
					}
					plan := inject.NewPlan().Add(trig)
					mcfg := mpi.Config{Size: n, Deadline: 30 * time.Second, Hook: plan.Hook()}
					report, res, err := Run(mcfg, Config{
						Iters: iters, Variant: VariantFull, Termination: TermValidateAll,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					for rank, rr := range res.Ranks {
						if rr.Killed {
							continue
						}
						if !rr.Finished || rr.Err != nil {
							t.Fatalf("%s: rank %d %+v", name, rank, rr)
						}
						if !report.Rank(rank).Terminated {
							t.Fatalf("%s: rank %d not terminated", name, rank)
						}
					}
					if got := len(report.Rank(0).RootValues); got != iters {
						t.Fatalf("%s: root absorbed %d/%d", name, got, iters)
					}
				})
			}
		}
	}
}

// TestExhaustiveRootFaultPlacement sweeps every kill point of the ROOT
// under RootElect: the successor must regain control at exactly the
// right iteration every time, and jointly the roots must absorb every
// iteration except possibly the one whose absorption record dies with
// the old root.
func TestExhaustiveRootFaultPlacement(t *testing.T) {
	const (
		n     = 5
		iters = 5
	)
	for _, point := range []string{"recv", "send"} {
		for ordinal := 1; ordinal <= iters; ordinal++ {
			name := fmt.Sprintf("kill-root-%s-%d", point, ordinal)
			t.Run(name, func(t *testing.T) {
				var trig inject.Trigger
				if point == "recv" {
					trig = inject.AfterNthRecv(0, ordinal)
				} else {
					trig = inject.AfterNthSend(0, ordinal)
				}
				plan := inject.NewPlan().Add(trig)
				mcfg := mpi.Config{Size: n, Deadline: 30 * time.Second, Hook: plan.Hook()}
				report, res, err := Run(mcfg, Config{
					Iters: iters, Variant: VariantFull,
					Termination: TermValidateAll, RootPolicy: RootElect,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !res.Ranks[0].Killed {
					t.Fatalf("%s: root survived", name)
				}
				for rank := 1; rank < n; rank++ {
					rr := res.Ranks[rank]
					if !rr.Finished || rr.Err != nil {
						t.Fatalf("%s: rank %d %+v", name, rank, rr)
					}
					if !report.Rank(rank).Terminated {
						t.Fatalf("%s: rank %d not terminated", name, rank)
					}
				}
				// Control continuity takes one of three legitimate forms,
				// depending on where the death lands: rank 1 BECOMES root
				// mid-run (Sec. III-D); rank 1 STARTS as root because the
				// death preceded its initial Fig. 12 scan; or no takeover
				// at all because the root died at/after originating the
				// final iteration (the ring is already complete and
				// validate_all termination needs no root). The invariant
				// common to all three: jointly the roots absorbed every
				// iteration except possibly the one in flight at death.
				absorbed := map[int64]bool{}
				for m := range report.Rank(0).RootValues {
					absorbed[m] = true
				}
				for m := range report.Rank(1).RootValues {
					absorbed[m] = true
				}
				if len(absorbed) < iters-1 {
					t.Fatalf("%s: only %d of %d iterations absorbed (%v)",
						name, len(absorbed), iters, absorbed)
				}
				// Every survivor participated in every iteration that was
				// ever originated.
				originated := 0
				for rank := 1; rank < n; rank++ {
					if it := report.Rank(rank).Iterations; it > originated {
						originated = it
					}
				}
				for rank := 2; rank < n; rank++ {
					if got := report.Rank(rank).Iterations; got < originated-1 {
						t.Fatalf("%s: rank %d saw %d iterations, leader saw %d",
							name, rank, got, originated)
					}
				}
			})
		}
	}
}

// TestExhaustiveDualFaultPlacement sweeps ordered pairs of failures over
// two victims at all receive-ordinal combinations — the multi-failure
// corner of the Section III-E question, still fully enumerable.
func TestExhaustiveDualFaultPlacement(t *testing.T) {
	const (
		n     = 5
		iters = 4
	)
	for o1 := 1; o1 <= iters; o1++ {
		for o2 := 1; o2 <= iters; o2++ {
			name := fmt.Sprintf("kill-1@recv%d-3@recv%d", o1, o2)
			t.Run(name, func(t *testing.T) {
				plan := inject.NewPlan().Add(
					inject.AfterNthRecv(1, o1),
					inject.AfterNthRecv(3, o2),
				)
				mcfg := mpi.Config{Size: n, Deadline: 30 * time.Second, Hook: plan.Hook()}
				report, res, err := Run(mcfg, Config{
					Iters: iters, Variant: VariantFull, Termination: TermValidateAll,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for rank, rr := range res.Ranks {
					if rr.Killed {
						continue
					}
					if !rr.Finished || rr.Err != nil {
						t.Fatalf("%s: rank %d %+v", name, rank, rr)
					}
				}
				if got := len(report.Rank(0).RootValues); got != iters {
					t.Fatalf("%s: root absorbed %d/%d", name, got, iters)
				}
			})
		}
	}
}
