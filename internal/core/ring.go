package core

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// errBecameRoot is the internal signal that this rank discovered it is
// the new root (Section III-D) and must regain control of the iteration.
var errBecameRoot = errors.New("core: became root")

// node is the per-rank state of the fault-tolerant ring.
type node struct {
	p   *mpi.Proc
	c   *mpi.Comm
	cfg Config

	me   int
	size int
	pl   int // current left neighbor (comm rank)
	pr   int // current right neighbor (comm rank)
	root int

	curMarker int64   // the iteration this rank expects next
	lastSent  Message // last buffer passed to the right (for resends)
	haveSent  bool

	detector *mpi.Request // Fig. 9: Irecv posted to pr as failure detector
	detTo    int          // comm rank the detector is posted to (-1: none)
	stash    [][]byte     // payloads rescued from retired requests, FIFO

	stats Stats
}

// Body returns the rank function for the configured ring, recording
// per-rank stats into report (which must be sized to the world). It is
// exported so examples and benchmarks can compose the ring with their own
// world configuration.
func Body(cfg Config, report *Report) func(p *mpi.Proc) error {
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	return func(p *mpi.Proc) error {
		n := &node{
			p: p, c: p.World(), cfg: cfg,
			me: p.Rank(), size: p.Size(), detTo: -1,
		}
		n.stats.RootValues = make(map[int64]int64)
		// Fig. 3 line 10: the one-line change that makes everything else
		// possible.
		n.c.SetErrhandler(mpi.ErrorsReturn)
		// Stats are recorded even when this rank is killed or aborted (the
		// goroutine unwinds through this defer): scenario tests inspect
		// what a dead rank had done up to its death. FinalRoot comes from
		// the registry, not an MPI call — dead ranks must not re-enter MPI.
		defer func() {
			if lowest, ok := p.Registry().LowestAlive(); ok {
				n.stats.FinalRoot = lowest
			} else {
				n.stats.FinalRoot = -1
			}
			report.put(n.me, n.stats)
		}()
		return n.run()
	}
}

// Run executes the ring over a fresh world built from mcfg, wiring the
// report automatically. Most callers (tests, benchmarks, cmd/ftring) use
// this entry point.
func Run(mcfg mpi.Config, cfg Config) (*Report, *mpi.RunResult, error) {
	// An Option is func(*Config), so the assembled struct feeds straight
	// into the functional-options constructor.
	w, err := mpi.NewWorld(mcfg.Size, func(c *mpi.Config) { *c = mcfg })
	if err != nil {
		return nil, nil, err
	}
	report := NewReport(mcfg.Size)
	res, err := w.Run(Body(cfg, report))
	return report, res, err
}

func (n *node) run() error {
	if n.cfg.Variant == VariantUnaware {
		return n.runUnaware()
	}

	n.pr = n.toRightOf(n.me)
	n.pl = n.toLeftOf(n.me)
	n.root = n.currentRoot()

	if err := n.mainLoop(); err != nil {
		return err
	}
	err := n.terminate()
	if err == nil {
		n.stats.Terminated = true
	}
	n.dropDetector()
	return err
}

// runUnaware is Fig. 2 verbatim: neighbor arithmetic with no liveness
// checks, plain blocking send/recv, no termination protocol.
func (n *node) runUnaware() error {
	right := (n.me + 1) % n.size
	left := n.me - 1
	if n.me == 0 {
		left = n.size - 1
	}
	n.root = 0
	for i := 0; i < n.cfg.Iters; i++ {
		if n.me == n.root {
			msg := Message{Value: 1, Marker: int64(i)}
			if err := n.c.Send(right, TagRing, msg.Encode(n.cfg.Padding)); err != nil {
				return err
			}
			pl, _, err := n.c.Recv(left, TagRing)
			if err != nil {
				return err
			}
			back, err := DecodeMessage(pl)
			if err != nil {
				return err
			}
			n.stats.RootValues[back.Marker] = back.Value
		} else {
			pl, _, err := n.c.Recv(left, TagRing)
			if err != nil {
				return err
			}
			msg, err := DecodeMessage(pl)
			if err != nil {
				return err
			}
			msg.Value++
			if err := n.c.Send(right, TagRing, msg.Encode(n.cfg.Padding)); err != nil {
				return err
			}
		}
		n.stats.Iterations++
		n.p.Tracer().Record(n.me, trace.IterDone, -1, -1, int(i), "")
		n.p.Metrics().Inc(n.me, metrics.Iterations)
	}
	return nil
}

// mainLoop runs Fig. 3's iteration loop, switching into the root role if
// this rank inherits it (Section III-D).
func (n *node) mainLoop() error {
	for n.curMarker < int64(n.cfg.Iters) {
		var err error
		if n.root == n.me {
			err = n.rootIteration()
		} else {
			err = n.memberIteration()
		}
		switch {
		case err == nil:
		case errors.Is(err, errBecameRoot):
			n.p.Tracer().Record(n.me, trace.Elected, n.me, -1, int(n.curMarker), "assumed root role")
			n.stats.BecameRoot = true
			// Loop re-enters as root at curMarker: the regained control
			// point the paper's Section III-D describes.
		default:
			return err
		}
	}
	return nil
}

// rootIteration is the root side of Fig. 3: originate the buffer for the
// current iteration, then absorb it when it returns.
func (n *node) rootIteration() error {
	msg := Message{Value: 1, Marker: n.curMarker}
	if err := n.ftSendRight(msg); err != nil {
		return err
	}
	back, err := n.ftRecvLeft()
	if err != nil {
		return err
	}
	// Absorption: record the value that accumulated around the ring.
	n.stats.RootValues[back.Marker] = back.Value
	n.stats.Iterations++
	n.p.Tracer().Record(n.me, trace.IterDone, -1, -1, int(back.Marker), fmt.Sprintf("value=%d", back.Value))
	n.p.Metrics().Inc(n.me, metrics.Iterations)
	n.curMarker++
	return nil
}

// memberIteration is the non-root side of Fig. 3: receive from the left,
// increment, pass to the right, and only then advance the local marker
// (Fig. 3 line 25).
func (n *node) memberIteration() error {
	msg, err := n.ftRecvLeft()
	if err != nil {
		return err
	}
	msg.Value++
	if err := n.ftSendRight(msg); err != nil {
		return err
	}
	n.curMarker = msg.Marker + 1
	n.stats.Iterations++
	n.p.Tracer().Record(n.me, trace.IterDone, -1, -1, int(msg.Marker), "")
	n.p.Metrics().Inc(n.me, metrics.Iterations)
	return nil
}
