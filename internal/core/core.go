package core
