package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// ftSendRight is Fig. 5: send the buffer to the current right neighbor,
// and on rank-fail-stop errors advance to the next alive right neighbor
// and retry until the message is placed. The successfully sent buffer is
// remembered for Fig. 7-style resends.
func (n *node) ftSendRight(msg Message) error {
	return n.ftSendRightTag(msg, TagRing)
}

func (n *node) ftSendRightTag(msg Message, tag int) error {
	for {
		err := n.c.Send(n.pr, tag, msg.Encode(n.cfg.Padding))
		if err == nil {
			n.lastSent = msg
			n.haveSent = true
			// The failure detector must watch the rank we now depend on.
			n.ensureDetector()
			return nil
		}
		if !mpi.IsRankFailStop(err) {
			return err
		}
		n.stats.SendFailovers++
		n.p.Tracer().Record(n.me, trace.OpFailed, n.pr, tag, int(msg.Marker), "send failover")
		n.pr = n.toRightOf(n.pr)
	}
}

// resendRight retransmits the last successfully sent buffer to the
// (already advanced) right neighbor — the recovery action of Fig. 7. The
// SeparateTag variant retransmits on TagResend (Section III-B).
func (n *node) resendRight() error {
	if !n.haveSent {
		return nil // nothing ever sent; nothing to recover
	}
	n.stats.Resends++
	n.p.Metrics().Inc(n.me, metrics.Resends)
	n.p.Tracer().Record(n.me, trace.Resend, n.pr, TagRing, int(n.lastSent.Marker), "")
	tag := TagRing
	if n.cfg.Variant == VariantSeparateTag {
		tag = TagResend
	}
	return n.ftSendRightTag(n.lastSent, tag)
}

// retire atomically disposes of an outstanding receive: a payload that
// raced in is stashed for in-order processing rather than dropped.
func (n *node) retire(req *mpi.Request) {
	if req == nil {
		return
	}
	if pl, ok := req.CancelOrPayload(); ok {
		n.stash = append(n.stash, pl)
	}
}

// --- the Fig. 9 failure detector -------------------------------------------

// ensureDetector keeps exactly one Irecv posted to the current right
// neighbor on the ring tag. Since the right neighbor never sends
// backwards, that request completes only if the right neighbor fails
// (Section III-A). The paper's pseudocode reposts it ad hoc; managing it
// as a single tracked request avoids leaking stale detectors to former
// neighbors. Two lifecycle details the pseudocode leaves implicit:
//
//   - In a two-rank ring P_L == P_R, so a detector would steal real ring
//     messages; it is suppressed (the normal receive already reports the
//     peer's death in that topology).
//   - When the ring shrinks concurrently, a legitimate message can land
//     in the detector before it is repositioned; retire() preserves it.
func (n *node) ensureDetector() {
	if n.cfg.Variant == VariantUnaware || n.cfg.Variant == VariantNaive {
		return // these variants have no failure detector
	}
	if n.pr == n.pl {
		n.dropDetector()
		return
	}
	if n.detector != nil && n.detTo == n.pr && !n.detector.Done() {
		return
	}
	n.dropDetector()
	n.detector = n.c.Irecv(n.pr, TagRing)
	n.detTo = n.pr
}

// dropDetector retires the outstanding detector, if any.
func (n *node) dropDetector() {
	if n.detector != nil {
		n.retire(n.detector)
		n.detector = nil
		n.detTo = -1
	}
}

// --- FT_Recv_left ------------------------------------------------------------

// ftRecvLeft is the paper's Figure 9 (plus the Fig. 10 marker handling):
// wait for the next ring buffer from the left while using a posted
// receive to the right neighbor as a failure detector. On the detector
// firing, advance the right neighbor and resend the last buffer; on the
// left failing, advance the left neighbor and wait for its resend; on a
// stale marker, drop the duplicate and keep waiting.
//
// The Naive variant (Fig. 6's broken design) handles only the left-failed
// case. The NoMarker variant skips the staleness check, forwarding
// duplicates (Fig. 8). The SeparateTag variant additionally listens for
// retransmissions on TagResend.
func (n *node) ftRecvLeft() (Message, error) {
	if n.cfg.Variant == VariantNaive {
		return n.naiveRecvLeft()
	}

	normal := n.c.Irecv(n.pl, TagRing)
	normalTo := n.pl
	var resendRx *mpi.Request
	resendTo := -1
	if n.cfg.Variant == VariantSeparateTag {
		resendRx = n.c.Irecv(n.pl, TagResend)
		resendTo = n.pl
	}
	n.ensureDetector()

	cleanup := func() {
		n.retire(normal)
		n.retire(resendRx)
	}

	for {
		var pl []byte
		if len(n.stash) > 0 {
			// A message rescued from a retired request: process it first —
			// it was delivered before anything the live requests hold.
			pl = n.stash[0]
			n.stash = n.stash[1:]
		} else {
			idx, _, err := mpi.Waitany(normal, n.detector, resendRx)
			if err != nil {
				switch idx {
				case 1: // the failure detector fired: right neighbor died
					n.detector = nil
					n.detTo = -1
					if !mpi.IsRankFailStop(err) {
						cleanup()
						return Message{}, err
					}
					n.p.Tracer().Record(n.me, trace.OpFailed, n.pr, TagRing, -1, "right neighbor failed")
					n.pr = n.toRightOf(n.pr)
					n.ensureDetector()
					if rerr := n.resendRight(); rerr != nil {
						cleanup()
						return Message{}, rerr
					}
					continue

				case 0, 2: // the left neighbor died
					if !mpi.IsRankFailStop(err) {
						cleanup()
						return Message{}, err
					}
					// Two receives can be posted to the same dead left
					// neighbor (SeparateTag); only the first failure
					// advances P_L — the second merely reposts.
					failedTarget := normalTo
					if idx == 2 {
						failedTarget = resendTo
					}
					if failedTarget == n.pl {
						n.stats.RecvFailovers++
						n.p.Tracer().Record(n.me, trace.OpFailed, n.pl, TagRing, -1, "left neighbor failed")
						n.pl = n.toLeftOf(n.pl)
						n.ensureDetector() // pl may now equal pr
						// Section III-D: any left failover can mean the
						// ring lost its controller — not only when the
						// dead neighbor IS the root: with simultaneous
						// deaths (e.g. ranks 0 and 1 together) the rank
						// that died next to us need not be the root we
						// still have on record. Re-scan whenever the
						// recorded root is no longer alive.
						if !n.alive(n.root) {
							if n.cfg.RootPolicy == RootAbort {
								// "Root failure is not supported" in the
								// baseline design: abort (Section III-C).
								n.p.Abort(-1)
							}
							newRoot := n.currentRoot()
							if newRoot != n.root {
								n.root = newRoot
								if n.root == n.me {
									cleanup()
									return Message{}, errBecameRoot
								}
							}
						}
					}
					if idx == 0 {
						normal = n.c.Irecv(n.pl, TagRing)
						normalTo = n.pl
					} else {
						resendRx = n.c.Irecv(n.pl, TagResend)
						resendTo = n.pl
					}
					continue

				default:
					cleanup()
					return Message{}, err
				}
			}
			switch idx {
			case 0:
				pl = normal.Payload()
				normal = n.c.Irecv(n.pl, TagRing) // keep one normal receive armed
				normalTo = n.pl
			case 2:
				pl = resendRx.Payload()
				resendRx = n.c.Irecv(n.pl, TagResend)
				resendTo = n.pl
			case 1:
				// The detector completed with data: the ring shrank so the
				// right neighbor is (about to be) also our left; preserve
				// the message and re-arm.
				pl = n.detector.Payload()
				n.detector = nil
				n.detTo = -1
				n.ensureDetector()
			}
		}

		msg, err := DecodeMessage(pl)
		if err != nil {
			cleanup()
			return Message{}, err
		}
		n.p.Tracer().Record(n.me, trace.RecvCompleted, n.pl, TagRing, int(msg.Marker), "")

		if n.cfg.Variant != VariantNoMarker {
			// Fig. 9 lines 24-28 / Fig. 10: drop already-processed resends.
			if msg.Marker < n.curMarker {
				n.stats.DupsDropped++
				n.p.Metrics().Inc(n.me, metrics.DupsDropped)
				n.p.Tracer().Record(n.me, trace.DupDropped, n.pl, TagRing, int(msg.Marker), "")
				continue
			}
			if msg.Marker > n.curMarker {
				// "This will never happen" (Section III-B) absent Byzantine
				// behaviour; surface it loudly if the runtime breaks FIFO.
				cleanup()
				return Message{}, fmt.Errorf("core: rank %d received future marker %d (current %d)",
					n.me, msg.Marker, n.curMarker)
			}
		} else if msg.Marker < n.curMarker {
			// Fig. 8: the duplicate is indistinguishable from the next
			// iteration's buffer and will be forwarded again.
			n.stats.DupsForwarded++
			n.p.Metrics().Inc(n.me, metrics.DupsForwarded)
			n.p.Tracer().Record(n.me, trace.DupForwarded, n.pl, TagRing, int(msg.Marker), "")
		}

		cleanup()
		return msg, nil
	}
}

// naiveRecvLeft is the Section III-A strawman (Fig. 6's design): mirror
// the send-side failover on the receive side with no failure detector.
// When the buffer dies with a mid-ring rank, this design waits forever.
func (n *node) naiveRecvLeft() (Message, error) {
	for {
		pl, _, err := n.c.Recv(n.pl, TagRing)
		if err != nil {
			if !mpi.IsRankFailStop(err) {
				return Message{}, err
			}
			n.stats.RecvFailovers++
			n.pl = n.toLeftOf(n.pl)
			continue
		}
		msg, derr := DecodeMessage(pl)
		if derr != nil {
			return Message{}, derr
		}
		return msg, nil
	}
}
