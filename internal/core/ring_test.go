package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// runRing executes one ring with the given world extras and asserts the
// harness-level run succeeded.
func runRing(t *testing.T, size int, cfg Config, mut func(*mpi.Config)) (*Report, *mpi.RunResult) {
	t.Helper()
	mcfg := mpi.Config{Size: size, Deadline: 30 * time.Second}
	if mut != nil {
		mut(&mcfg)
	}
	report, res, err := Run(mcfg, cfg)
	if err != nil {
		t.Fatalf("ring run failed: %v", err)
	}
	return report, res
}

func TestUnawareRingFailureFree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const iters = 5
			report, res := runRing(t, n, Config{Iters: iters, Variant: VariantUnaware}, nil)
			for rank, rr := range res.Ranks {
				if rr.Err != nil || !rr.Finished {
					t.Fatalf("rank %d: %+v", rank, rr)
				}
			}
			root := report.Rank(0)
			if len(root.RootValues) != iters {
				t.Fatalf("root absorbed %d iterations, want %d", len(root.RootValues), iters)
			}
			for marker, v := range root.RootValues {
				if v != int64(n) {
					t.Fatalf("iteration %d accumulated %d, want ring size %d", marker, v, n)
				}
			}
		})
	}
}

func TestFullRingFailureFreeMatchesUnaware(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const iters = 7
			report, res := runRing(t, n, Config{Iters: iters, Variant: VariantFull}, nil)
			for rank, rr := range res.Ranks {
				if rr.Err != nil || !rr.Finished {
					t.Fatalf("rank %d: %+v", rank, rr)
				}
			}
			root := report.Rank(0)
			if len(root.RootValues) != iters {
				t.Fatalf("root absorbed %d iterations, want %d", len(root.RootValues), iters)
			}
			for marker, v := range root.RootValues {
				if v != int64(n) {
					t.Fatalf("iteration %d accumulated %d, want %d", marker, v, n)
				}
			}
			if report.TotalResends() != 0 || report.TotalDupsDropped() != 0 {
				t.Fatalf("failure-free run should have no recovery traffic: %+v", report)
			}
		})
	}
}

// TestScenarioFig6Hang reproduces Figure 6: with the naive receive, P2
// dying after receiving the buffer (before forwarding) deadlocks the
// ring. The harness makes the hang observable as a watchdog timeout with
// the surviving ranks stuck.
func TestScenarioFig6Hang(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
	mcfg := mpi.Config{Size: 4, Deadline: 400 * time.Millisecond, Hook: plan.Hook()}
	report, res, err := Run(mcfg, Config{Iters: 6, Variant: VariantNaive})
	if !errors.Is(err, mpi.ErrTimedOut) {
		t.Fatalf("naive ring should deadlock, got %v", err)
	}
	if !res.TimedOut {
		t.Fatal("expected watchdog timeout")
	}
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 should have been killed: %+v", res.Ranks[2])
	}
	// Every survivor is stuck: the control was lost with P2.
	if len(res.Stuck) != 3 {
		t.Fatalf("stuck ranks %v, want all three survivors", res.Stuck)
	}
	_ = report
}

// TestScenarioFig7Resend reproduces Figure 7: with the Irecv failure
// detector, P1 notices P2's death and resends the buffer to P3; the ring
// completes all iterations.
func TestScenarioFig7Resend(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
	rec := trace.New(0)
	report, res := runRing(t, 4, Config{Iters: 6, Variant: VariantFull},
		func(m *mpi.Config) { m.Hook = plan.Hook(); m.Tracer = rec })
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 should have been killed: %+v", res.Ranks[2])
	}
	for _, rank := range []int{0, 1, 3} {
		if !res.Ranks[rank].Finished || res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d did not complete: %+v", rank, res.Ranks[rank])
		}
	}
	if got := len(report.Rank(0).RootValues); got != 6 {
		t.Fatalf("root absorbed %d iterations, want 6", got)
	}
	if report.Rank(1).Resends < 1 {
		t.Fatalf("rank 1 should have resent at least once: %+v", report.Rank(1))
	}
	// The causal chain of Fig. 7: P2's death precedes P1's resend.
	if !rec.HappensBefore(
		func(e trace.Event) bool { return e.Kind == trace.Killed && e.Rank == 2 },
		func(e trace.Event) bool { return e.Kind == trace.Resend && e.Rank == 1 },
	) {
		t.Fatalf("trace lacks kill(2) -> resend(1) ordering:\n%s", rec.Render())
	}
}

// TestScenarioFig8Duplicates reproduces Figure 8: without the iteration
// marker, P1's resend after P2's death is indistinguishable from the next
// iteration's buffer and gets forwarded — the same ring iteration
// completes more than once.
func TestScenarioFig8Duplicates(t *testing.T) {
	// Kill P2 right after it forwards iteration 1 to P3 (its 2nd send):
	// the original reaches P3 while P1's detector triggers a resend.
	plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
	report, res := runRing(t, 4, Config{Iters: 4, Variant: VariantNoMarker},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 should have been killed: %+v", res.Ranks[2])
	}
	if report.TotalDupsForwarded() < 1 {
		t.Fatalf("expected at least one duplicate forwarded (Fig. 8), got %d",
			report.TotalDupsForwarded())
	}
}

// TestScenarioFig10Dedup runs the exact Figure 8 failure schedule with
// the marker check enabled (Fig. 10): the duplicate is detected and
// dropped, and the root absorbs every iteration exactly once.
func TestScenarioFig10Dedup(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
	report, res := runRing(t, 4, Config{Iters: 4, Variant: VariantFull},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[2].Killed {
		t.Fatalf("rank 2 should have been killed: %+v", res.Ranks[2])
	}
	for _, rank := range []int{0, 1, 3} {
		if !res.Ranks[rank].Finished || res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d did not complete: %+v", rank, res.Ranks[rank])
		}
	}
	if report.TotalDupsDropped() < 1 {
		t.Fatalf("expected the resend to be dropped as a duplicate, got %d drops",
			report.TotalDupsDropped())
	}
	if report.TotalDupsForwarded() != 0 {
		t.Fatalf("marker variant must not forward duplicates, got %d",
			report.TotalDupsForwarded())
	}
	root := report.Rank(0)
	if len(root.RootValues) != 4 {
		t.Fatalf("root absorbed %d distinct iterations, want 4", len(root.RootValues))
	}
}

// TestSeparateTagVariant checks the Section III-B alternative: resends on
// a dedicated tag, same failure schedule as Fig. 8/10.
func TestSeparateTagVariant(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthSend(2, 2))
	report, res := runRing(t, 4, Config{Iters: 4, Variant: VariantSeparateTag},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 should have been killed")
	}
	for _, rank := range []int{0, 1, 3} {
		if !res.Ranks[rank].Finished || res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d did not complete: %+v", rank, res.Ranks[rank])
		}
	}
	if len(report.Rank(0).RootValues) != 4 {
		t.Fatalf("root absorbed %d iterations, want 4", len(report.Rank(0).RootValues))
	}
}

// TestTerminationRootBcast is Fig. 11 in its baseline form: non-root
// failures during the run, root survives and broadcasts termination.
func TestTerminationRootBcast(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(3, 2))
	report, res := runRing(t, 6,
		Config{Iters: 5, Variant: VariantFull, Termination: TermRootBcast},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[3].Killed {
		t.Fatal("rank 3 should have been killed")
	}
	for _, rank := range []int{0, 1, 2, 4, 5} {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d did not terminate cleanly: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d missed the termination broadcast", rank)
		}
	}
	if len(report.Rank(0).RootValues) != 5 {
		t.Fatalf("root absorbed %d iterations, want 5", len(report.Rank(0).RootValues))
	}
}

// TestTerminationValidateAll is Fig. 13 without failures.
func TestTerminationValidateAll(t *testing.T) {
	report, res := runRing(t, 5,
		Config{Iters: 4, Variant: VariantFull, Termination: TermValidateAll}, nil)
	for rank, rr := range res.Ranks {
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d did not reach agreement", rank)
		}
	}
}

// TestTerminationValidateAllWithFailure: a non-root dies mid-run; the
// validate_all termination still completes everywhere (Fig. 13).
func TestTerminationValidateAllWithFailure(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(2, 2))
	report, res := runRing(t, 5,
		Config{Iters: 5, Variant: VariantFull, Termination: TermValidateAll},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[2].Killed {
		t.Fatal("rank 2 should have been killed")
	}
	for _, rank := range []int{0, 1, 3, 4} {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d did not reach agreement", rank)
		}
	}
}

// TestScenarioRootFailover is Section III-D: the root dies mid-run under
// RootElect; its right neighbor (the lowest alive rank, Fig. 12) regains
// control of the iteration space and leads the ring to completion, with
// termination via validate_all (the paper's root-fault-tolerant choice).
func TestScenarioRootFailover(t *testing.T) {
	// Root (rank 0) dies right after absorbing iteration 2 (its 3rd recv).
	plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 3))
	report, res := runRing(t, 5,
		Config{Iters: 6, Variant: VariantFull, Termination: TermValidateAll, RootPolicy: RootElect},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[0].Killed {
		t.Fatalf("rank 0 should have been killed: %+v", res.Ranks[0])
	}
	for rank := 1; rank < 5; rank++ {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d did not terminate", rank)
		}
		if report.Rank(rank).FinalRoot != 1 {
			t.Fatalf("rank %d final root %d, want 1", rank, report.Rank(rank).FinalRoot)
		}
	}
	if !report.Rank(1).BecameRoot {
		t.Fatalf("rank 1 should have assumed the root role: %+v", report.Rank(1))
	}
	// Control was regained: the old root recorded absorptions 0 and 1 (it
	// was killed at the instant iteration 2's buffer returned, before the
	// record), and the new root took over exactly at iteration 3 — no
	// iteration was re-run and none was skipped.
	absorbed := map[int64]bool{}
	for m := range report.Rank(0).RootValues {
		absorbed[m] = true
	}
	for m := range report.Rank(1).RootValues {
		absorbed[m] = true
	}
	for _, m := range []int64{0, 1, 3, 4, 5} {
		if !absorbed[m] {
			t.Fatalf("iteration %d was never absorbed: %v", m, absorbed)
		}
	}
	if absorbed[2] {
		t.Fatalf("iteration 2's absorption record should have died with the root: %v", absorbed)
	}
	// Every survivor participated in all 6 iterations exactly once each:
	// rank 1 forwarded 0-2 as a member and absorbed 3-5 as root; ranks
	// 2-4 forwarded all 6.
	for rank := 1; rank < 5; rank++ {
		if got := report.Rank(rank).Iterations; got != 6 {
			t.Fatalf("rank %d participated in %d iterations, want 6", rank, got)
		}
	}
}

// TestRootFailoverWithRootBcastTermination: the root dies during the main
// loop (not mid-broadcast — the case the paper itself declares delicate
// and solves with validate_all); the elected root broadcasts termination.
func TestRootFailoverWithRootBcastTermination(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 2))
	report, res := runRing(t, 4,
		Config{Iters: 5, Variant: VariantFull, Termination: TermRootBcast, RootPolicy: RootElect},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	if !res.Ranks[0].Killed {
		t.Fatal("rank 0 should have been killed")
	}
	for rank := 1; rank < 4; rank++ {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d missed termination", rank)
		}
	}
	if !report.Rank(1).BecameRoot {
		t.Fatal("rank 1 should have become root")
	}
}

// TestRootAbortOnRootFailure: under the baseline policy, root failure
// aborts the world (Fig. 11 lines 22-25).
func TestRootAbortOnRootFailure(t *testing.T) {
	plan := inject.NewPlan().Add(inject.AfterNthRecv(0, 2))
	mcfg := mpi.Config{Size: 4, Deadline: 30 * time.Second, Hook: plan.Hook()}
	_, res, err := Run(mcfg, Config{Iters: 5, Variant: VariantFull, Termination: TermRootBcast})
	var ae *mpi.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("root failure under RootAbort should abort, got %v", err)
	}
	if !res.Ranks[0].Killed {
		t.Fatal("rank 0 should have been killed")
	}
}

// TestMultipleFailuresRunThrough is the paper's headline claim: the ring
// "is able to run-through the failure of multiple processes during
// normal operation".
func TestMultipleFailuresRunThrough(t *testing.T) {
	plan := inject.NewPlan().Add(
		inject.AfterNthRecv(2, 1),
		inject.AfterNthRecv(5, 3),
		inject.AfterNthSend(7, 4),
	)
	report, res := runRing(t, 9,
		Config{Iters: 8, Variant: VariantFull, Termination: TermValidateAll},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	killed := 0
	for rank, rr := range res.Ranks {
		if rr.Killed {
			killed++
			continue
		}
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
		if !report.Rank(rank).Terminated {
			t.Fatalf("rank %d did not terminate", rank)
		}
	}
	if killed != 3 {
		t.Fatalf("killed %d ranks, want 3", killed)
	}
	if got := len(report.Rank(0).RootValues); got != 8 {
		t.Fatalf("root absorbed %d iterations, want 8", got)
	}
}

// TestTwoRankRing exercises the P_L == P_R topology where the failure
// detector must be suppressed.
func TestTwoRankRing(t *testing.T) {
	report, res := runRing(t, 2,
		Config{Iters: 6, Variant: VariantFull, Termination: TermValidateAll}, nil)
	for rank, rr := range res.Ranks {
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
	}
	root := report.Rank(0)
	if len(root.RootValues) != 6 {
		t.Fatalf("root absorbed %d iterations, want 6", len(root.RootValues))
	}
	for m, v := range root.RootValues {
		if v != 2 {
			t.Fatalf("iteration %d value %d, want 2", m, v)
		}
	}
}

// TestShrinkToTwo kills ranks until only two remain, crossing the
// detector-suppression boundary mid-run.
func TestShrinkToTwo(t *testing.T) {
	plan := inject.NewPlan().Add(
		inject.AfterNthRecv(1, 2),
		inject.AfterNthRecv(2, 3),
	)
	report, res := runRing(t, 4,
		Config{Iters: 8, Variant: VariantFull, Termination: TermValidateAll},
		func(m *mpi.Config) { m.Hook = plan.Hook() })
	for _, rank := range []int{0, 3} {
		rr := res.Ranks[rank]
		if !rr.Finished || rr.Err != nil {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
	}
	if got := len(report.Rank(0).RootValues); got != 8 {
		t.Fatalf("root absorbed %d iterations, want 8", got)
	}
}
