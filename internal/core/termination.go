package core

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// terminate runs the configured termination-detection protocol after the
// main ring loop (Section III-C/D). In a fault tolerant ring, a rank that
// finished its own iterations "must still stick around to make sure that
// the ring finishes by resending the buffer as necessary" — termination
// detection is what finally releases it.
func (n *node) terminate() error {
	switch n.cfg.Termination {
	case TermNone:
		return nil
	case TermRootBcast:
		return n.terminateRootBcast()
	case TermValidateAll:
		return n.terminateValidateAll()
	default:
		return nil
	}
}

// terminateRootBcast is Fig. 11: the root sends a termination message to
// every other rank (ignoring failures); non-roots wait concurrently for
// the termination message and for their right neighbor's failure (to keep
// resending). If the root fails: abort under RootAbort (the figure's
// baseline), or elect a successor that resumes the broadcast (the
// figure's "root fault tolerant version").
func (n *node) terminateRootBcast() error {
	for {
		if n.root == n.me {
			return n.broadcastTermination()
		}
		err := n.awaitTermination()
		if err == nil {
			return nil
		}
		if errors.Is(err, errBecameRoot) {
			n.stats.BecameRoot = true
			continue // resume the broadcast as the new root
		}
		return err
	}
}

// broadcastTermination is the root side of Fig. 11: send T_D to each
// other rank, explicitly ignoring per-destination failures ("/* Ignore
// fail.*/" in the figure).
func (n *node) broadcastTermination() error {
	for r := 0; r < n.size; r++ {
		if r == n.me {
			continue
		}
		_ = n.c.Send(r, TagTerm, nil) // failures deliberately ignored
		n.p.Tracer().Record(n.me, trace.TermSent, r, TagTerm, -1, "")
	}
	return nil
}

// awaitTermination is the non-root side of Fig. 11: wait for T_D from the
// root while watching the right neighbor; resend on its failure. Root
// failure either aborts (RootAbort) or signals errBecameRoot/retargets
// the wait (RootElect).
func (n *node) awaitTermination() error {
	term := n.c.Irecv(n.root, TagTerm)
	n.ensureDetector()
	for {
		idx, _, err := mpi.Waitany(term, n.detector)
		if err == nil {
			switch idx {
			case 0:
				n.p.Tracer().Record(n.me, trace.TermRecv, n.root, TagTerm, -1, "")
				return nil
			default:
				// Ring message raced into the detector (shrinking ring):
				// everyone upstream already finished, so it is a stale
				// resend; preserve-and-ignore.
				n.retire(n.detector)
				n.detector = nil
				n.detTo = -1
				n.ensureDetector()
				continue
			}
		}
		if !mpi.IsRankFailStop(err) {
			n.retire(term)
			return err
		}
		switch idx {
		case 1: // right neighbor failed: resend the last buffer (Fig. 11 lines 17-21)
			n.detector = nil
			n.detTo = -1
			n.pr = n.toRightOf(n.pr)
			n.ensureDetector()
			if rerr := n.resendRight(); rerr != nil {
				n.retire(term)
				return rerr
			}
		case 0: // the root failed
			if n.cfg.RootPolicy == RootAbort {
				// Fig. 11 lines 22-25: "Root failed, Abort".
				n.p.Abort(-1)
			}
			// Section III-D: elect the new root (Fig. 12) and retarget.
			n.root = n.currentRoot()
			n.p.Metrics().Inc(n.me, metrics.Elections)
			n.p.Tracer().Record(n.me, trace.Elected, n.root, -1, -1, "termination re-election")
			if n.root == n.me {
				return errBecameRoot
			}
			term = n.c.Irecv(n.root, TagTerm)
		}
	}
}

// terminateValidateAll is Fig. 13: a non-blocking
// MPI_Icomm_validate_all serves as the fault-tolerant termination
// agreement — it completes exactly when every alive rank has entered it,
// i.e. when every alive rank has finished the ring — while the right-
// neighbor watch keeps servicing resends. Root failure needs no special
// handling: the agreement's coordinator role fails over internally.
func (n *node) terminateValidateAll() error {
	val := n.c.IvalidateAll()
	n.ensureDetector()
	for {
		idx, _, err := mpi.Waitany(val, n.detector)
		if err == nil {
			switch idx {
			case 0:
				n.p.Tracer().Record(n.me, trace.TermRecv, -1, -1, -1, "validate_all agreement")
				return nil
			default:
				// Stale ring resend raced into the detector; ignore.
				n.retire(n.detector)
				n.detector = nil
				n.detTo = -1
				n.ensureDetector()
				continue
			}
		}
		if !mpi.IsRankFailStop(err) && idx == 0 {
			// "Validate should not fail, but if it does repost" (Fig. 13).
			if errors.Is(err, mpi.ErrNoDecision) {
				return err // world shutting down
			}
			val = n.c.IvalidateAll()
			continue
		}
		if idx == 1 { // right neighbor failed: resend
			n.detector = nil
			n.detTo = -1
			n.pr = n.toRightOf(n.pr)
			n.ensureDetector()
			if rerr := n.resendRight(); rerr != nil {
				return rerr
			}
			continue
		}
		return err
	}
}
