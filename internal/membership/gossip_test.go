package membership

import (
	"reflect"
	"testing"
)

func TestSupersedes(t *testing.T) {
	cases := []struct {
		a, b Event
		want bool
	}{
		// Higher incarnation wins regardless of kind.
		{Event{EvAlive, 3, 2}, Event{EvSuspect, 3, 1}, true},
		{Event{EvSuspect, 3, 2}, Event{EvAlive, 3, 1}, true},
		{Event{EvAlive, 3, 1}, Event{EvSuspect, 3, 2}, false},
		// Equal incarnation: suspect beats alive, never the reverse.
		{Event{EvSuspect, 3, 1}, Event{EvAlive, 3, 1}, true},
		{Event{EvAlive, 3, 1}, Event{EvSuspect, 3, 1}, false},
		{Event{EvAlive, 3, 1}, Event{EvAlive, 3, 1}, false},
		// Confirm beats everything and nothing beats it.
		{Event{EvConfirm, 3, 0}, Event{EvSuspect, 3, 9}, true},
		{Event{EvSuspect, 3, 9}, Event{EvConfirm, 3, 0}, false},
		{Event{EvAlive, 3, 9}, Event{EvConfirm, 3, 0}, false},
		// Different ranks never interact.
		{Event{EvConfirm, 3, 0}, Event{EvAlive, 4, 0}, false},
	}
	for _, c := range cases {
		if got := Supersedes(c.a, c.b); got != c.want {
			t.Errorf("Supersedes(%+v, %+v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestBufferSupersedeDedup: an alive event overriding a suspect by
// incarnation replaces the entry (with a reset send budget); stale news
// is dropped.
func TestBufferSupersedeDedup(t *testing.T) {
	b := NewBuffer(8, 3)
	if !b.Add(Event{EvSuspect, 1, 0}) {
		t.Fatal("fresh suspect rejected")
	}
	b.Pick(1) // one transmission spent
	if b.Add(Event{EvAlive, 1, 0}) {
		t.Fatal("same-incarnation alive must not override suspect")
	}
	if !b.Add(Event{EvAlive, 1, 1}) {
		t.Fatal("refutation (alive at bumped incarnation) rejected")
	}
	got := b.Pick(4)
	if len(got) != 1 || got[0] != (Event{EvAlive, 1, 1}) {
		t.Fatalf("buffer spreads %+v, want the refutation", got)
	}
	// The replacement reset the send budget: two more transmissions left.
	if n := len(b.Pick(4)) + len(b.Pick(4)); n != 2 {
		t.Fatalf("refutation retransmitted %d more times, want 2", n)
	}
	if b.Len() != 0 {
		t.Fatalf("buffer not empty after TTL: %d", b.Len())
	}
}

// TestBufferPickOrder: least-transmitted events travel first, and every
// entry retires after exactly TTL transmissions.
func TestBufferPickOrder(t *testing.T) {
	b := NewBuffer(8, 2)
	b.Add(Event{EvSuspect, 1, 0})
	b.Add(Event{EvSuspect, 2, 0})
	first := b.Pick(2) // both at sends=0, tie broken by rank
	if len(first) != 2 || first[0].Rank != 1 || first[1].Rank != 2 {
		t.Fatalf("first pick %+v", first)
	}
	b.Add(Event{EvSuspect, 3, 0}) // fresh entry: sends=0, must lead next pick
	second := b.Pick(1)
	if len(second) != 1 || second[0].Rank != 3 {
		t.Fatalf("freshest event did not travel first: %+v", second)
	}
	// ranks 1 and 2 have one transmission left each, rank 3 has one.
	rest := append(b.Pick(8), b.Pick(8)...)
	if len(rest) != 3 || b.Len() != 0 {
		t.Fatalf("retirement after TTL broken: rest=%+v len=%d", rest, b.Len())
	}
}

// TestBufferEvictionOrder: a full buffer evicts the most-transmitted
// entry — it has had the most chances to spread — never the freshest.
func TestBufferEvictionOrder(t *testing.T) {
	b := NewBuffer(2, 10)
	b.Add(Event{EvSuspect, 1, 0})
	b.Add(Event{EvSuspect, 2, 0})
	b.Pick(1) // rank 1 (lowest rank at equal sends) now has 1 transmission
	b.Add(Event{EvSuspect, 3, 0})
	if b.Len() != 2 {
		t.Fatalf("capacity not enforced: %d", b.Len())
	}
	got := map[int]bool{}
	for _, ev := range b.Pick(8) {
		got[ev.Rank] = true
	}
	if got[1] || !got[2] || !got[3] {
		t.Fatalf("evicted the wrong entry: remaining %+v", got)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{},
		{Origin: 7, Target: 3},
		{Origin: 4095, Target: 0, Events: []Event{
			{EvSuspect, 12, 0}, {EvAlive, 12, 1}, {EvConfirm, 900, 0},
		}},
	}
	for _, want := range cases {
		got, err := DecodeEnvelope(want.Encode())
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got.Origin != want.Origin || got.Target != want.Target ||
			!reflect.DeepEqual(got.Events, want.Events) {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestDecodeEnvelopeRejectsMalformed(t *testing.T) {
	good := Envelope{Origin: 1, Target: 2, Events: []Event{{EvSuspect, 3, 4}}}.Encode()
	bad := [][]byte{
		nil,
		{},
		{0x00},                                  // wrong magic
		good[:len(good)-1],                      // truncated
		append(append([]byte{}, good...), 0xFF), // trailing garbage
		{envelopeMagic, 0x01, 0x02, 0x01, 0x77, 0x03, 0x04}, // unknown event kind 0x77
		{envelopeMagic, 0x01, 0x02, 0xFF},                   // truncated varint
	}
	for i, data := range bad {
		if _, err := DecodeEnvelope(data); err == nil {
			t.Errorf("case %d: malformed payload decoded without error", i)
		}
	}
}

// FuzzDecodeEnvelope drives the decode path with arbitrary bytes — the
// chaos fabric corrupts control payloads, so decode must fail cleanly
// (never panic) and anything it accepts must re-encode canonically.
func FuzzDecodeEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{envelopeMagic})
	f.Add(Envelope{Origin: 1, Target: 2}.Encode())
	f.Add(Envelope{Origin: 3, Target: 0, Events: []Event{{EvAlive, 5, 9}, {EvConfirm, 2, 0}}}.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		again, err := DecodeEnvelope(env.Encode())
		if err != nil {
			t.Fatalf("accepted envelope did not re-decode: %v", err)
		}
		if again.Origin != env.Origin || again.Target != env.Target ||
			!reflect.DeepEqual(again.Events, env.Events) {
			t.Fatalf("re-encode not canonical: %+v vs %+v", env, again)
		}
	})
}
