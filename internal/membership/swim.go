package membership

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/detector"
)

// Options tune one rank's SWIM monitor. Zero fields take defaults.
type Options struct {
	// Period is the protocol period: one randomized direct probe is
	// launched per period (default 2ms).
	Period time.Duration
	// ProbeTimeout is how long a direct probe may go unacknowledged
	// before the indirect phase starts (default Period/2).
	ProbeTimeout time.Duration
	// SuspectAfter is the total unacknowledged time — direct plus
	// indirect — before the probe target is suspected (default 2×Period).
	SuspectAfter time.Duration
	// IndirectK is the number of relays asked to probe indirectly when
	// the direct probe times out (default 2).
	IndirectK int
	// GossipFanout is the number of buffered events piggybacked on each
	// outbound control frame (default 6).
	GossipFanout int
	// GossipTTL is how many frames each event is piggybacked on before
	// it is retired from the buffer (default 10).
	GossipTTL int
	// GossipCap bounds the piggyback buffer (default 64 events).
	GossipCap int
	// FenceResend is the retransmission period for unacknowledged fence
	// notices (default 2×Period).
	FenceResend time.Duration
	// SelfFenceAfter is how long a rank tolerates none of its probes
	// being acknowledged before it fences itself (default 24×Period).
	SelfFenceAfter time.Duration
	// Seed drives the probe-order shuffle (combined with the rank so
	// every member walks a different permutation).
	Seed int64
	// Clock is the monitor's time source (default: the wall clock).
	Clock detector.Clock
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Period <= 0 {
		o.Period = 2 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.Period / 2
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2 * o.Period
	}
	if o.IndirectK <= 0 {
		o.IndirectK = 2
	}
	if o.GossipFanout <= 0 {
		o.GossipFanout = 6
	}
	if o.GossipTTL <= 0 {
		o.GossipTTL = 10
	}
	if o.GossipCap <= 0 {
		o.GossipCap = 64
	}
	if o.FenceResend <= 0 {
		o.FenceResend = 2 * o.Period
	}
	if o.SelfFenceAfter <= 0 {
		o.SelfFenceAfter = 24 * o.Period
	}
	if o.Clock == nil {
		o.Clock = detector.WallClock()
	}
	return o
}

// Hooks observe a SWIM monitor's protocol actions; the mpi world maps
// them to metrics, traces and latency histograms. Nil fields are
// skipped. Hooks run on the monitor's pump or delivery goroutine and
// must not block.
type Hooks struct {
	// ProbeSent fires once per direct probe launched by this rank.
	ProbeSent func(rank int)
	// IndirectProbe fires once per relay request sent.
	IndirectProbe func(rank int)
	// ProbeTimeout fires when a probe transaction expires unanswered and
	// the target is suspected.
	ProbeTimeout func(rank, target int)
	// ProbeRTT fires when a probe is acknowledged (directly or via a
	// relay), with the launch-to-ack round-trip.
	ProbeRTT func(rank, target int, rtt time.Duration)
	// FenceSent fires for every fence notice (including resends).
	FenceSent func(by, target int)
	// FenceRTT fires when this monitor resolves one of its suspicions
	// into a confirmed failure.
	FenceRTT func(by, target int, rtt time.Duration)
	// SelfFence fires when this rank fences itself.
	SelfFence func(rank int)
	// GossipOrigin fires when this rank originates a gossip event.
	GossipOrigin func(rank int, ev Event)
	// GossipLearn fires the first time this rank learns an event (for a
	// rank-state it did not already hold fresher news about) from a
	// piggybacked envelope.
	GossipLearn func(rank int, ev Event)
	// DecodeError fires when an inbound control payload fails to decode
	// (chaos corruption) and the frame is dropped.
	DecodeError func(rank int)
}

// probe is the single outstanding probe transaction.
type probe struct {
	target   int
	seq      uint64
	sentAt   time.Time
	indirect bool // relay requests already launched
}

// swimFence tracks one (observer, suspect) fence in flight, with the
// same draining semantics as the heartbeat detector's fenceState: once a
// notice is on the wire, alive evidence requests a clear (clearAt)
// rather than performing one, and the fence resolves to Confirm or to a
// deferred ClearSuspect.
type swimFence struct {
	start    time.Time
	gen      int // suspect's generation when the fence was armed
	lastSend time.Time
	clearAt  time.Time
}

// Swim is one rank's SWIM-style membership monitor. Construct with
// NewSwim, wire inbound control packets to OnControl, and bracket the
// run with Start/Stop.
type Swim struct {
	reg   *detector.Registry
	rank  int
	size  int
	opts  Options
	clock detector.Clock
	send  func(to int, op detector.ControlOp, seq uint64, payload []byte)

	// Hooks may be set between NewSwim and Start.
	Hooks Hooks

	buf *Buffer

	mu         sync.Mutex
	rng        *rand.Rand
	perm       []int // shuffled probe order over peers
	permIdx    int
	inc        []uint32 // highest known incarnation per rank
	suspectInc []int64  // highest incarnation each rank was seen suspected at, -1 if never
	cur        *probe
	seq        uint64
	lastAck    time.Time
	nextProbe  time.Time
	fences     map[int]*swimFence
	selfFenced bool

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewSwim builds the monitor for rank in a world of size ranks. send
// transmits one control frame; it is called without the monitor's lock
// held and may be invoked concurrently.
func NewSwim(reg *detector.Registry, rank, size int, opts Options, send func(to int, op detector.ControlOp, seq uint64, payload []byte)) *Swim {
	if rank < 0 || rank >= size {
		panic(fmt.Sprintf("membership: swim rank %d out of range [0,%d)", rank, size))
	}
	o := opts.withDefaults()
	s := &Swim{
		reg:        reg,
		rank:       rank,
		size:       size,
		opts:       o,
		clock:      o.Clock,
		send:       send,
		buf:        NewBuffer(o.GossipCap, o.GossipTTL),
		rng:        rand.New(rand.NewSource(o.Seed*1e6 + int64(rank) + 1)),
		inc:        make([]uint32, size),
		suspectInc: make([]int64, size),
		fences:     make(map[int]*swimFence),
		done:       make(chan struct{}),
	}
	for i := range s.suspectInc {
		s.suspectInc[i] = -1
	}
	return s
}

// Options returns the monitor's resolved (defaulted) options.
func (s *Swim) Options() Options { return s.opts }

// Incarnation returns this rank's current incarnation number.
func (s *Swim) Incarnation() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc[s.rank]
}

// Start launches the protocol pump. Call after the fabric is started.
func (s *Swim) Start() {
	s.prime(s.clock.Now())
	s.wg.Add(1)
	go s.pump()
}

// prime resets the ack baseline to now. Deterministic tests call it
// directly and then drive tick by hand instead of starting the pump.
func (s *Swim) prime(now time.Time) {
	s.mu.Lock()
	s.lastAck = now
	s.nextProbe = now
	s.mu.Unlock()
}

// Stop terminates the pump and waits for it. Safe to call more than once.
func (s *Swim) Stop() {
	s.stopOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Resume resets this monitor's view of peer p ahead of p's reincarnation:
// any outstanding probe transaction or fence against the old incarnation
// is dropped and the suspected-incarnation watermark rewinds so fresh
// suspect gossip about the new incarnation is not deduplicated away. Call
// on every survivor BEFORE the registry revives the slot — while the slot
// is still Confirmed the probe scheduler skips it, so there is no window
// for a false suspicion.
func (s *Swim) Resume(p int) {
	if p < 0 || p >= s.size || p == s.rank {
		return
	}
	s.mu.Lock()
	if s.cur != nil && s.cur.target == p {
		s.cur = nil
	}
	delete(s.fences, p)
	s.suspectInc[p] = -1
	s.mu.Unlock()
}

// pump drives the protocol at a quarter-period resolution so that the
// sub-period probe deadline (ProbeTimeout) is honored without busy
// polling. The ticker is stopped on every exit path.
func (s *Swim) pump() {
	defer s.wg.Done()
	ticker := s.clock.NewTicker(s.opts.Period / 4)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-ticker.Chan():
			if !s.tick(now) {
				return
			}
		}
	}
}

// out is one outbound control frame decided under the monitor lock and
// sent outside it.
type out struct {
	to     int
	op     detector.ControlOp
	seq    uint64
	origin int
	target int
}

// tick runs one protocol step: advance the outstanding probe's state
// machine (indirect phase, suspicion), launch the next probe when the
// period lapses, drive pending fences, and check the self-fence
// deadline. It returns false when this rank is (or just became) dead.
func (s *Swim) tick(now time.Time) bool {
	if s.reg.Failed(s.rank) {
		return false // dead ranks fall silent; OnControl still acks fences
	}

	var outs []out
	var suspects []int          // ranks newly suspected (Registry.Suspect outside lock)
	var suspectEvs []Event      // their gossip events
	var clears []int            // drained fences resolving to ClearSuspect
	var confirms []fenceConfirm // fences resolved from ground truth
	var fenceSends []int
	var indirect, probeSent bool
	timedOut := -1

	s.mu.Lock()
	if c := s.cur; c != nil {
		if s.reg.Confirmed(c.target) {
			s.cur = nil // someone else finished the job mid-probe
		} else if now.Sub(c.sentAt) >= s.opts.SuspectAfter {
			// Probe transaction expired: suspect the target at its highest
			// known incarnation and arm a fence.
			timedOut = c.target
			if s.fences[c.target] == nil {
				s.fences[c.target] = &swimFence{start: now, gen: s.reg.Generation(c.target)}
				suspects = append(suspects, c.target)
				ev := Event{Kind: EvSuspect, Rank: c.target, Inc: s.inc[c.target]}
				s.suspectInc[c.target] = int64(ev.Inc)
				s.buf.Add(ev)
				suspectEvs = append(suspectEvs, ev)
			}
			s.cur = nil
		} else if !c.indirect && now.Sub(c.sentAt) >= s.opts.ProbeTimeout {
			c.indirect = true
			for _, relay := range s.pickRelaysLocked(c.target) {
				outs = append(outs, out{to: relay, op: detector.OpProbeReq, seq: c.seq,
					origin: s.rank, target: c.target})
			}
			indirect = len(outs) > 0
		}
	}
	if s.cur == nil && !now.Before(s.nextProbe) {
		if t, ok := s.nextTargetLocked(); ok {
			s.seq++
			s.cur = &probe{target: t, seq: s.seq, sentAt: now}
			s.nextProbe = now.Add(s.opts.Period)
			outs = append(outs, out{to: t, op: detector.OpProbe, seq: s.seq,
				origin: s.rank, target: t})
			probeSent = true
		}
	}
	confirms, fenceSends, clears, fenceOuts := s.driveFencesLocked(now)
	outs = append(outs, fenceOuts...)
	selfFence := s.selfFenceDueLocked(now)
	s.mu.Unlock()

	for _, p := range suspects {
		s.reg.Suspect(p, s.rank)
	}
	if s.Hooks.GossipOrigin != nil {
		for _, ev := range suspectEvs {
			s.Hooks.GossipOrigin(s.rank, ev)
		}
	}
	if timedOut >= 0 && s.Hooks.ProbeTimeout != nil {
		s.Hooks.ProbeTimeout(s.rank, timedOut)
	}
	for _, p := range clears {
		s.reg.ClearSuspect(p, s.rank)
	}
	for _, cf := range confirms {
		if s.reg.ConfirmGen(cf.rank, s.rank, cf.gen) {
			s.originConfirm(cf.rank)
			if s.Hooks.FenceRTT != nil {
				s.Hooks.FenceRTT(s.rank, cf.rank, cf.rtt)
			}
		}
	}
	s.emit(outs)
	if probeSent && s.Hooks.ProbeSent != nil {
		s.Hooks.ProbeSent(s.rank)
	}
	if indirect && s.Hooks.IndirectProbe != nil {
		s.Hooks.IndirectProbe(s.rank)
	}
	for _, p := range fenceSends {
		if s.Hooks.FenceSent != nil {
			s.Hooks.FenceSent(s.rank, p)
		}
	}
	if selfFence {
		if s.Hooks.SelfFence != nil {
			s.Hooks.SelfFence(s.rank)
		}
		s.reg.Kill(s.rank)
		return false
	}
	return true
}

// emit sends the decided frames, each with a freshly picked gossip
// payload. Called without the lock held.
func (s *Swim) emit(outs []out) {
	for _, o := range outs {
		env := Envelope{Origin: o.origin, Target: o.target, Events: s.buf.Pick(s.opts.GossipFanout)}
		s.send(o.to, o.op, o.seq, env.Encode())
	}
}

// originConfirm gossips a confirmation this rank just performed. Called
// without the monitor lock; the buffer has its own.
func (s *Swim) originConfirm(rank int) {
	ev := Event{Kind: EvConfirm, Rank: rank, Inc: 0}
	if s.buf.Add(ev) && s.Hooks.GossipOrigin != nil {
		s.Hooks.GossipOrigin(s.rank, ev)
	}
}

// nextTargetLocked returns the next probe target from the shuffled
// permutation, skipping dead ranks. Caller holds mu.
func (s *Swim) nextTargetLocked() (int, bool) {
	for tries := 0; tries < s.size; tries++ {
		if s.permIdx >= len(s.perm) {
			s.perm = s.perm[:0]
			for p := 0; p < s.size; p++ {
				if p != s.rank {
					s.perm = append(s.perm, p)
				}
			}
			s.rng.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
			s.permIdx = 0
			if len(s.perm) == 0 {
				return -1, false
			}
		}
		t := s.perm[s.permIdx]
		s.permIdx++
		if !s.reg.Confirmed(t) && s.fences[t] == nil {
			return t, true
		}
	}
	return -1, false
}

// pickRelaysLocked samples up to IndirectK live peers distinct from the
// probe target (and self) to relay an indirect probe. Caller holds mu.
func (s *Swim) pickRelaysLocked(target int) []int {
	var cands []int
	for p := 0; p < s.size; p++ {
		if p != s.rank && p != target && !s.reg.Failed(p) {
			cands = append(cands, p)
		}
	}
	s.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > s.opts.IndirectK {
		cands = cands[:s.opts.IndirectK]
	}
	return cands
}

// driveFencesLocked mirrors the heartbeat detector's fence driver,
// including the draining state for clears requested while a notice was
// in flight. Caller holds mu.
func (s *Swim) driveFencesLocked(now time.Time) (confirms []fenceConfirm, fenceSends, clears []int, outs []out) {
	for p, fs := range s.fences {
		switch {
		case s.reg.Confirmed(p):
			delete(s.fences, p)
		case s.reg.Failed(p):
			confirms = append(confirms, fenceConfirm{rank: p, gen: fs.gen, rtt: now.Sub(fs.start)})
			delete(s.fences, p)
		case !fs.clearAt.IsZero():
			if now.Sub(fs.clearAt) >= s.opts.FenceResend {
				delete(s.fences, p)
				clears = append(clears, p)
			}
		case fs.lastSend.IsZero() || now.Sub(fs.lastSend) >= s.opts.FenceResend:
			fs.lastSend = now
			outs = append(outs, out{to: p, op: detector.OpFence, origin: s.rank, target: p})
			fenceSends = append(fenceSends, p)
		}
	}
	return confirms, fenceSends, clears, outs
}

// fenceConfirm is one suspect resolved by the ground-truth path; gen is
// the generation the fence was armed against, so a stale fence never
// confirms a later incarnation of the slot.
type fenceConfirm struct {
	rank int
	gen  int
	rtt  time.Duration
}

// selfFenceDueLocked reports whether this rank must fence itself: none
// of its probes have been acknowledged for SelfFenceAfter while at least
// one peer is still alive. Caller holds mu.
func (s *Swim) selfFenceDueLocked(now time.Time) bool {
	if s.selfFenced || now.Sub(s.lastAck) < s.opts.SelfFenceAfter {
		return false
	}
	for p := 0; p < s.size; p++ {
		if p != s.rank && !s.reg.Failed(p) {
			s.selfFenced = true
			return true
		}
	}
	return false // sole survivor: silence is expected
}

// OnControl handles one inbound control frame for this rank. It is
// called from the fabric delivery path and keeps answering fence notices
// even after the rank itself is dead. A payload that fails to decode
// (chaos corruption) drops the whole frame — every protocol action here
// is retried or resent by its originator.
func (s *Swim) OnControl(from int, op detector.ControlOp, seq uint64, payload []byte) {
	if from < 0 || from >= s.size || from == s.rank {
		return
	}
	env, err := DecodeEnvelope(payload)
	if err != nil {
		if s.Hooks.DecodeError != nil {
			s.Hooks.DecodeError(s.rank)
		}
		return
	}
	now := s.clock.Now()
	if s.reg.Failed(s.rank) {
		if op == detector.OpFence {
			ack := Envelope{Origin: s.rank, Target: s.rank}
			s.send(from, detector.OpFenceAck, seq, ack.Encode())
		}
		return
	}
	s.applyGossip(env.Events, now)
	switch op {
	case detector.OpProbe:
		// Whether direct (Origin==from) or relayed, ack to the sender; a
		// relay forwards the ack to the origin. The probe itself is alive
		// evidence for the sender.
		s.aliveEvidence(from, now)
		s.emit([]out{{to: from, op: detector.OpProbeAck, seq: seq, origin: env.Origin, target: s.rank}})
	case detector.OpProbeAck:
		s.aliveEvidence(from, now)
		if env.Origin == s.rank {
			s.onProbeAck(env.Target, seq, now)
		} else if env.Origin >= 0 && env.Origin < s.size {
			// We are the relay: forward the ack to the origin.
			s.aliveEvidence(env.Target, now)
			s.emit([]out{{to: env.Origin, op: detector.OpProbeAck, seq: seq,
				origin: env.Origin, target: env.Target}})
		}
	case detector.OpProbeReq:
		s.aliveEvidence(from, now)
		if env.Target >= 0 && env.Target < s.size && env.Target != s.rank {
			s.emit([]out{{to: env.Target, op: detector.OpProbe, seq: seq,
				origin: env.Origin, target: env.Target}})
		}
	case detector.OpFence:
		// Die first, ack second — receipt of the ack proves ground-truth
		// death, exactly as in the heartbeat detector.
		s.reg.Kill(s.rank)
		ack := Envelope{Origin: s.rank, Target: s.rank}
		s.send(from, detector.OpFenceAck, seq, ack.Encode())
	case detector.OpFenceAck:
		s.onFenceAck(from, now)
	}
}

// onProbeAck resolves this rank's outstanding probe.
func (s *Swim) onProbeAck(target int, seq uint64, now time.Time) {
	var rtt time.Duration = -1
	s.mu.Lock()
	s.lastAck = now
	if c := s.cur; c != nil && c.target == target && c.seq == seq {
		rtt = now.Sub(c.sentAt)
		s.cur = nil
	}
	s.mu.Unlock()
	s.aliveEvidence(target, now)
	if rtt >= 0 && s.Hooks.ProbeRTT != nil {
		s.Hooks.ProbeRTT(s.rank, target, rtt)
	}
}

// onFenceAck confirms a suspect that killed itself on our fence. The
// confirmation is generation-fenced (see ConfirmGen): a delayed ack that
// lands after the slot was revived must not confirm the reincarnation.
// An ack with no matching fence entry carries no generation evidence and
// is dropped — the ground-truth resend loop holds confirmation liveness.
func (s *Swim) onFenceAck(from int, now time.Time) {
	var rtt time.Duration = -1
	gen := -1
	s.mu.Lock()
	if fs := s.fences[from]; fs != nil {
		rtt = now.Sub(fs.start)
		gen = fs.gen
		delete(s.fences, from)
	}
	s.mu.Unlock()
	if gen < 0 {
		return
	}
	if s.reg.ConfirmGen(from, s.rank, gen) {
		s.originConfirm(from)
		if rtt >= 0 && s.Hooks.FenceRTT != nil {
			s.Hooks.FenceRTT(s.rank, from, rtt)
		}
	}
}

// aliveEvidence folds direct proof of rank's liveness into the fence
// state: a pending un-sent fence is cancelled outright, a fence already
// on the wire drains (see swimFence), exactly mirroring the heartbeat
// detector's markAlive fix for the suspect/clear/fence race.
func (s *Swim) aliveEvidence(rank int, now time.Time) {
	if rank < 0 || rank >= s.size || rank == s.rank {
		return
	}
	cleared := false
	s.mu.Lock()
	if fs := s.fences[rank]; fs != nil {
		if fs.lastSend.IsZero() {
			delete(s.fences, rank)
			cleared = true
		} else if fs.clearAt.IsZero() {
			fs.clearAt = now
		}
	}
	s.mu.Unlock()
	if cleared {
		s.reg.ClearSuspect(rank, s.rank)
	}
}

// applyGossip folds piggybacked events into local state: refute
// suspicions about self, track incarnations, treat fresher alive news as
// fence-draining evidence, and re-buffer anything that superseded what
// we knew so it keeps spreading.
func (s *Swim) applyGossip(events []Event, now time.Time) {
	var learned []Event
	var refuted *Event
	var aliveOf []int
	s.mu.Lock()
	for _, ev := range events {
		if ev.Rank < 0 || ev.Rank >= s.size {
			continue
		}
		if ev.Rank == s.rank {
			// Someone suspects us at our current (or a future) incarnation:
			// refute by bumping and gossiping alive. The refutation races
			// the fence — exactly the accuracy-preserving race the fencing
			// protocol is built around.
			if ev.Kind == EvSuspect && ev.Inc >= s.inc[s.rank] {
				s.inc[s.rank] = ev.Inc + 1
				r := Event{Kind: EvAlive, Rank: s.rank, Inc: s.inc[s.rank]}
				s.buf.Add(r)
				refuted = &r
			}
			continue
		}
		fresh := false
		switch ev.Kind {
		case EvAlive:
			if ev.Inc > s.inc[ev.Rank] {
				s.inc[ev.Rank] = ev.Inc
				fresh = true
				// Fresher-incarnation alive news refutes our suspicion too.
				aliveOf = append(aliveOf, ev.Rank)
			}
		case EvSuspect:
			if int64(ev.Inc) > s.suspectInc[ev.Rank] && ev.Inc >= s.inc[ev.Rank] {
				s.suspectInc[ev.Rank] = int64(ev.Inc)
				if ev.Inc > s.inc[ev.Rank] {
					s.inc[ev.Rank] = ev.Inc
				}
				fresh = true
			}
		case EvConfirm:
			// The registry is the ground truth for failure state; gossip
			// only spreads the news. Fresh when the registry agrees and we
			// have not relayed it yet.
			fresh = s.reg.Failed(ev.Rank)
		}
		if fresh && s.buf.Add(ev) {
			learned = append(learned, ev)
		}
	}
	s.mu.Unlock()
	for _, rank := range aliveOf {
		s.aliveEvidence(rank, now)
	}
	if refuted != nil && s.Hooks.GossipOrigin != nil {
		s.Hooks.GossipOrigin(s.rank, *refuted)
	}
	if s.Hooks.GossipLearn != nil {
		for _, ev := range learned {
			s.Hooks.GossipLearn(s.rank, ev)
		}
	}
}
