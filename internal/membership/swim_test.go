package membership

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/detector"
)

// swimNet wires n SWIM monitors into each other's OnControl
// synchronously on a shared ManualClock with no pump goroutines: tests
// drive every monitor tick by hand, so probe deadlines, gossip spread
// and fencing are fully deterministic.
type swimNet struct {
	clock *detector.ManualClock
	reg   *detector.Registry
	sws   []*Swim
	cut   func(from, to int, op detector.ControlOp) bool
	mu    sync.Mutex
	sent  map[detector.ControlOp]int
}

func newSwimNet(t *testing.T, n int, opts Options, cut func(from, to int, op detector.ControlOp) bool) *swimNet {
	t.Helper()
	p := &swimNet{
		clock: detector.NewManualClock(time.Unix(1000, 0)),
		reg:   detector.New(n),
		sws:   make([]*Swim, n),
		cut:   cut,
		sent:  make(map[detector.ControlOp]int),
	}
	p.reg.SetConfirmGate(true)
	opts.Clock = p.clock
	for rank := 0; rank < n; rank++ {
		from := rank
		p.sws[rank] = NewSwim(p.reg, rank, n, opts, func(to int, op detector.ControlOp, seq uint64, payload []byte) {
			p.mu.Lock()
			p.sent[op]++
			p.mu.Unlock()
			if p.cut != nil && p.cut(from, to, op) {
				return
			}
			p.sws[to].OnControl(from, op, seq, payload)
		})
		p.sws[rank].prime(p.clock.Now())
	}
	return p
}

// round advances the clock by a quarter period (the pump resolution) and
// ticks every monitor once, in rank order.
func (p *swimNet) round() {
	p.clock.Advance(p.sws[0].opts.Period / 4)
	now := p.clock.Now()
	for _, sw := range p.sws {
		sw.tick(now)
	}
}

func (p *swimNet) count(op detector.ControlOp) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent[op]
}

var swimTestOpts = Options{
	Period:         4 * time.Millisecond,
	SelfFenceAfter: time.Hour, // self-fencing has its own test
	Seed:           42,
}

// TestSwimHealthyNoSuspicion: on a healthy synchronous net, hundreds of
// protocol periods never raise a suspicion or kill anyone, and probes
// actually flow.
func TestSwimHealthyNoSuspicion(t *testing.T) {
	p := newSwimNet(t, 5, swimTestOpts, nil)
	for i := 0; i < 400; i++ {
		p.round()
	}
	if p.reg.AliveCount() != 5 {
		t.Fatalf("alive %d after healthy run", p.reg.AliveCount())
	}
	for r := 0; r < 5; r++ {
		if p.reg.Suspected(r) {
			t.Fatalf("rank %d suspected on a healthy net", r)
		}
	}
	if p.count(detector.OpProbe) == 0 || p.count(detector.OpProbeAck) == 0 {
		t.Fatal("no probes flowed")
	}
	if p.count(detector.OpProbeReq) != 0 {
		t.Fatal("indirect probes launched on a healthy net")
	}
}

// TestSwimDetectsDeadRank: a killed rank is suspected by some prober
// within a few protocol periods and confirmed via the fence machinery's
// ground-truth path — detection end-to-end.
func TestSwimDetectsDeadRank(t *testing.T) {
	p := newSwimNet(t, 5, swimTestOpts, nil)
	for i := 0; i < 40; i++ {
		p.round()
	}
	p.reg.Kill(3)
	for i := 0; i < 200 && !p.reg.Confirmed(3); i++ {
		p.round()
	}
	if !p.reg.Confirmed(3) {
		t.Fatal("dead rank never confirmed")
	}
	if p.reg.FailedCount() != 1 {
		t.Fatalf("collateral deaths: %v", p.reg.Snapshot())
	}
}

// TestSwimIndirectProbeSavesPartitionedLink: the direct link 0->1 (and
// the ack path 1->0) is cut, but relays can still reach rank 1 — the
// indirect probe must keep rank 0 from ever suspecting it.
func TestSwimIndirectProbeSavesPartitionedLink(t *testing.T) {
	p := newSwimNet(t, 5, swimTestOpts, func(from, to int, op detector.ControlOp) bool {
		direct := (from == 0 && to == 1) || (from == 1 && to == 0)
		return direct && (op == detector.OpProbe || op == detector.OpProbeAck)
	})
	for i := 0; i < 600; i++ {
		p.round()
	}
	if p.count(detector.OpProbeReq) == 0 {
		t.Fatal("cut direct link never triggered an indirect probe")
	}
	if p.reg.FailedCount() != 0 {
		t.Fatalf("somebody died across a relay-covered cut: %v", p.reg.Snapshot())
	}
	if p.reg.Suspected(1) || p.reg.Suspected(0) {
		t.Fatal("relay-covered cut still left a suspicion standing")
	}
}

// TestSwimGossipSpreadsConfirm: after a death, the confirmation must
// reach every surviving rank through piggybacked gossip.
func TestSwimGossipSpreadsConfirm(t *testing.T) {
	p := newSwimNet(t, 6, swimTestOpts, nil)
	learned := make([]atomic.Bool, 6)
	for r := range p.sws {
		rank := r
		p.sws[r].Hooks.GossipLearn = func(_ int, ev Event) {
			if ev.Kind == EvConfirm && ev.Rank == 2 {
				learned[rank].Store(true)
			}
		}
	}
	for i := 0; i < 40; i++ {
		p.round()
	}
	p.reg.Kill(2)
	for i := 0; i < 400; i++ {
		p.round()
	}
	if !p.reg.Confirmed(2) {
		t.Fatal("death never confirmed")
	}
	spread := 0
	for r := 0; r < 6; r++ {
		if r != 2 && learned[r].Load() {
			spread++
		}
	}
	// The confirmer knows first-hand (no learn event); every OTHER
	// survivor must have heard via gossip.
	if spread < 4 {
		t.Fatalf("confirm gossip reached only %d/5 survivors", spread)
	}
}

// TestSwimRefutationClearsSuspicion: rank 1 is temporarily silenced (its
// outbound probes/acks dropped, fences dropped too so it survives); once
// the silence lifts, the suspicion must clear — either by the refutation
// gossip (bumped incarnation) or by direct alive evidence draining the
// fence — and nobody dies.
func TestSwimRefutationClearsSuspicion(t *testing.T) {
	var silent atomic.Bool
	p := newSwimNet(t, 5, swimTestOpts, func(from, to int, op detector.ControlOp) bool {
		if op == detector.OpFence {
			return true // fences lose the race for this test
		}
		return silent.Load() && from == 1
	})
	for i := 0; i < 40; i++ {
		p.round()
	}
	silent.Store(true)
	for i := 0; i < 200 && !p.reg.Suspected(1); i++ {
		p.round()
	}
	if !p.reg.Suspected(1) {
		t.Fatal("silenced rank never suspected")
	}
	silent.Store(false)
	for i := 0; i < 400 && p.reg.Suspected(1); i++ {
		p.round()
	}
	if p.reg.Suspected(1) {
		t.Fatal("suspicion never cleared after the silence lifted")
	}
	if p.reg.FailedCount() != 0 {
		t.Fatalf("a refuted suspicion killed someone: %v", p.reg.Snapshot())
	}
	// The refutation must have bumped rank 1's incarnation via gossip.
	if p.sws[1].Incarnation() == 0 {
		t.Fatal("suspected rank never refuted (incarnation still 0)")
	}
}

// TestSwimFenceKillsUnreachableSuspect: rank 1's outbound goes dark for
// good (one-way partition) but fences still reach it — accuracy demands
// it is killed by the fence BEFORE being reported failed.
func TestSwimFenceKillsUnreachableSuspect(t *testing.T) {
	var silent atomic.Bool
	deadBeforeNotify := true
	p := newSwimNet(t, 4, swimTestOpts, func(from, to int, op detector.ControlOp) bool {
		return silent.Load() && from == 1 && op != detector.OpFenceAck
	})
	p.reg.Subscribe(func(rank int) {
		if rank == 1 && !p.reg.Failed(1) {
			deadBeforeNotify = false
		}
	})
	for i := 0; i < 40; i++ {
		p.round()
	}
	silent.Store(true)
	for i := 0; i < 400 && !p.reg.Confirmed(1); i++ {
		p.round()
	}
	if !p.reg.Confirmed(1) || !p.reg.Failed(1) {
		t.Fatal("partitioned rank never fenced and confirmed")
	}
	if !deadBeforeNotify {
		t.Fatal("rank reported failed before ground-truth death")
	}
	if p.reg.FailedCount() != 1 {
		t.Fatalf("collateral deaths: %v", p.reg.Snapshot())
	}
}

// TestSwimSelfFenceOnIsolation: a rank cut off in both directions, with
// live peers remaining, must fence itself once its probes go
// unacknowledged past the deadline.
func TestSwimSelfFenceOnIsolation(t *testing.T) {
	opts := swimTestOpts
	opts.SelfFenceAfter = 100 * time.Millisecond
	var isolated atomic.Bool
	p := newSwimNet(t, 4, opts, func(from, to int, op detector.ControlOp) bool {
		return isolated.Load() && (from == 1 || to == 1)
	})
	var selfFenced atomic.Bool
	p.sws[1].Hooks.SelfFence = func(int) { selfFenced.Store(true) }
	for i := 0; i < 40; i++ {
		p.round()
	}
	isolated.Store(true)
	for i := 0; i < 400 && !p.reg.Confirmed(1); i++ {
		p.round()
	}
	if !selfFenced.Load() || !p.reg.Failed(1) {
		t.Fatalf("isolated rank did not self-fence: hook=%v failed=%v", selfFenced.Load(), p.reg.Failed(1))
	}
	if !p.reg.Confirmed(1) {
		t.Fatal("survivors never confirmed the isolated rank")
	}
	if p.reg.FailedCount() != 1 {
		t.Fatalf("collateral deaths: %v", p.reg.Snapshot())
	}
}

// TestSwimControlTrafficPerRankIsFlat pins the scaling claim that
// justifies SWIM over the heartbeat mesh: frames sent per rank per
// protocol period stay bounded by a small constant as N grows.
func TestSwimControlTrafficPerRankIsFlat(t *testing.T) {
	perRank := func(n int) float64 {
		p := newSwimNet(t, n, swimTestOpts, nil)
		const periods = 50
		for i := 0; i < periods*4; i++ {
			p.round()
		}
		p.mu.Lock()
		total := 0
		for _, c := range p.sent {
			total += c
		}
		p.mu.Unlock()
		return float64(total) / float64(n) / float64(periods)
	}
	small, large := perRank(8), perRank(64)
	// Every frame triggers at most one reply, and each rank launches one
	// probe per period: a generous constant bound, independent of N.
	const bound = 8.0
	if small > bound || large > bound {
		t.Fatalf("control traffic per rank per period: n=8 %.2f, n=64 %.2f (bound %.1f)", small, large, bound)
	}
	if large > 2*small+1 {
		t.Fatalf("control traffic grew with N: n=8 %.2f -> n=64 %.2f", small, large)
	}
}

// TestSwimStartStopNoGoroutineLeak mirrors the heartbeat leak
// regression for the SWIM pump.
func TestSwimStartStopNoGoroutineLeak(t *testing.T) {
	for i := 0; i < 100; i++ {
		clock := detector.NewManualClock(time.Unix(1000, 0))
		reg := detector.New(2)
		reg.SetConfirmGate(true)
		opts := swimTestOpts
		opts.Clock = clock
		s := NewSwim(reg, 0, 2, opts, func(int, detector.ControlOp, uint64, []byte) {})
		s.Start()
		s.Stop()
		reg.Close()
	}
}
