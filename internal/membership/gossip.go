// Package membership implements a SWIM-style membership protocol
// (Das, Gupta & Motivala 2002) as an alternative failure-detection mode
// for the run-through stabilization runtime: instead of the heartbeat
// mesh's O(N²) pings per interval, each rank probes ONE randomized peer
// per protocol period, falls back to k indirect probes via relays on
// timeout, and disseminates suspect/alive/confirm events epidemically by
// piggybacking a bounded gossip buffer on the control frames it was
// sending anyway — O(1) control traffic per rank per period.
//
// Accuracy is NOT weakened relative to the heartbeat detector: suspicion
// feeds the same fencing protocol (a suspect is killed before anyone is
// told it failed) and the same confirm-gated Registry. A falsely
// suspected rank refutes by bumping its incarnation and gossiping alive;
// the refutation drains the pending fence exactly like a late heartbeat
// does in the mesh detector.
package membership

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// EventKind classifies one gossip event.
type EventKind uint8

const (
	// EvAlive asserts Rank is alive at incarnation Inc (a refutation, or
	// a relayed one).
	EvAlive EventKind = iota + 1
	// EvSuspect asserts some member suspects Rank at incarnation Inc.
	EvSuspect
	// EvConfirm asserts Rank's failure was confirmed (fenced and dead).
	// Incarnation is irrelevant: confirmation is final.
	EvConfirm
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case EvAlive:
		return "alive"
	case EvSuspect:
		return "suspect"
	case EvConfirm:
		return "confirm"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one membership assertion spread by gossip.
type Event struct {
	Kind EventKind
	Rank int
	Inc  uint32 // incarnation number of Rank the assertion refers to
}

// Supersedes reports whether event a makes event b (about the same rank)
// obsolete, per the SWIM order: confirm beats everything, a higher
// incarnation beats a lower one, and at equal incarnation suspect beats
// alive (so a refutation must bump the incarnation to win).
func Supersedes(a, b Event) bool {
	if a.Rank != b.Rank {
		return false
	}
	if b.Kind == EvConfirm {
		return false // nothing supersedes a confirmation
	}
	if a.Kind == EvConfirm {
		return true
	}
	if a.Inc != b.Inc {
		return a.Inc > b.Inc
	}
	return a.Kind == EvSuspect && b.Kind == EvAlive
}

// Buffer is the bounded piggyback buffer: at most one current event per
// rank, each retransmitted on at most TTL outbound frames, lowest
// send-count first (freshest news travels first). All methods are safe
// for concurrent use.
type Buffer struct {
	mu      sync.Mutex
	cap     int // max distinct events held
	ttl     int // piggyback transmissions per event before retirement
	entries map[int]*bufEntry
}

type bufEntry struct {
	ev    Event
	sends int
}

// NewBuffer creates a buffer holding at most capacity events, each
// piggybacked on at most ttl frames.
func NewBuffer(capacity, ttl int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("membership: buffer capacity must be positive, got %d", capacity))
	}
	if ttl <= 0 {
		panic(fmt.Sprintf("membership: buffer ttl must be positive, got %d", ttl))
	}
	return &Buffer{cap: capacity, ttl: ttl, entries: make(map[int]*bufEntry)}
}

// Add offers an event for dissemination. A superseded existing entry for
// the same rank is replaced (send count reset — it is fresh news again);
// an event the buffer already carries equal-or-fresher news about is
// dropped. When the buffer is full, the most-transmitted entry is
// evicted to make room: it has had the most chances to spread.
// Returns true when the event was accepted.
func (b *Buffer) Add(ev Event) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cur, ok := b.entries[ev.Rank]; ok {
		if !Supersedes(ev, cur.ev) {
			return false
		}
		cur.ev, cur.sends = ev, 0
		return true
	}
	if len(b.entries) >= b.cap {
		victim, most := -1, -1
		for rank, e := range b.entries {
			if e.sends > most || (e.sends == most && rank > victim) {
				victim, most = rank, e.sends
			}
		}
		delete(b.entries, victim)
	}
	b.entries[ev.Rank] = &bufEntry{ev: ev}
	return true
}

// Pick selects up to k events to piggyback on one outbound frame,
// least-transmitted first (ties broken by rank for determinism), bumps
// their send counts, and retires entries that reach the TTL.
func (b *Buffer) Pick(k int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if k <= 0 || len(b.entries) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(b.entries))
	for rank := range b.entries {
		ranks = append(ranks, rank)
	}
	sort.Slice(ranks, func(i, j int) bool {
		ei, ej := b.entries[ranks[i]], b.entries[ranks[j]]
		if ei.sends != ej.sends {
			return ei.sends < ej.sends
		}
		return ranks[i] < ranks[j]
	})
	if k > len(ranks) {
		k = len(ranks)
	}
	out := make([]Event, 0, k)
	for _, rank := range ranks[:k] {
		e := b.entries[rank]
		out = append(out, e.ev)
		e.sends++
		if e.sends >= b.ttl {
			delete(b.entries, rank)
		}
	}
	return out
}

// Len returns the number of events currently buffered.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// --- wire format --------------------------------------------------------------

// Envelope is the payload of every SWIM control frame: the origin of the
// probe transaction (which differs from the packet source on relayed
// probes and forwarded acks), the probe target (used by OpProbeReq and
// echoed in acks), and the piggybacked gossip.
type Envelope struct {
	Origin int
	Target int
	Events []Event
}

// envelopeMagic guards against feeding a non-SWIM payload (or a
// chaos-corrupted one whose CRC was unchecked) to the decoder.
const envelopeMagic = 0x5A

// maxEnvelopeEvents bounds decode-side allocation: no legitimate frame
// piggybacks more events than a full default buffer.
const maxEnvelopeEvents = 256

// Encode serializes the envelope: magic byte, then varint origin,
// target, event count, and per event a kind byte plus varint rank and
// incarnation.
func (e Envelope) Encode() []byte {
	buf := make([]byte, 0, 8+10*len(e.Events))
	buf = append(buf, envelopeMagic)
	buf = binary.AppendUvarint(buf, uint64(e.Origin))
	buf = binary.AppendUvarint(buf, uint64(e.Target))
	buf = binary.AppendUvarint(buf, uint64(len(e.Events)))
	for _, ev := range e.Events {
		buf = append(buf, byte(ev.Kind))
		buf = binary.AppendUvarint(buf, uint64(ev.Rank))
		buf = binary.AppendUvarint(buf, uint64(ev.Inc))
	}
	return buf
}

// DecodeEnvelope parses a SWIM payload. It fails (never panics) on any
// malformed input — truncation, bad magic, absurd counts, unknown event
// kinds — because control frames cross the chaos fabric, which corrupts
// payloads; a frame that does not decode is dropped and the protocol's
// retry/resend loops recover.
func DecodeEnvelope(data []byte) (Envelope, error) {
	var e Envelope
	if len(data) == 0 || data[0] != envelopeMagic {
		return e, fmt.Errorf("membership: bad envelope magic")
	}
	rest := data[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("membership: truncated envelope varint")
		}
		rest = rest[n:]
		return v, nil
	}
	origin, err := next()
	if err != nil {
		return e, err
	}
	target, err := next()
	if err != nil {
		return e, err
	}
	count, err := next()
	if err != nil {
		return e, err
	}
	if origin > 1<<31 || target > 1<<31 {
		return e, fmt.Errorf("membership: envelope rank out of range")
	}
	if count > maxEnvelopeEvents {
		return e, fmt.Errorf("membership: envelope event count %d too large", count)
	}
	e.Origin, e.Target = int(origin), int(target)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return Envelope{}, fmt.Errorf("membership: truncated envelope event")
		}
		kind := EventKind(rest[0])
		rest = rest[1:]
		if kind != EvAlive && kind != EvSuspect && kind != EvConfirm {
			return Envelope{}, fmt.Errorf("membership: unknown event kind %d", kind)
		}
		rank, err := next()
		if err != nil {
			return Envelope{}, err
		}
		inc, err := next()
		if err != nil {
			return Envelope{}, err
		}
		if rank > 1<<31 || inc > 1<<32-1 {
			return Envelope{}, fmt.Errorf("membership: envelope event field out of range")
		}
		e.Events = append(e.Events, Event{Kind: kind, Rank: int(rank), Inc: uint32(inc)})
	}
	if len(rest) != 0 {
		return Envelope{}, fmt.Errorf("membership: %d trailing bytes after envelope", len(rest))
	}
	return e, nil
}
