package collective

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Typed operand codecs and reduction operators over []byte payloads. MPI
// datatypes are a large surface; the experiments need int64 and float64
// vectors, which these helpers provide with explicit little-endian
// encoding so the TCP fabric sees identical bytes.

// EncodeInt64s packs v into a little-endian byte payload.
func EncodeInt64s(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// DecodeInt64s unpacks a payload produced by EncodeInt64s.
func DecodeInt64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("collective: int64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// EncodeFloat64s packs v into a little-endian byte payload.
func EncodeFloat64s(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// DecodeFloat64s unpacks a payload produced by EncodeFloat64s.
func DecodeFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("collective: float64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// int64Op lifts an elementwise int64 operator to an Op. Mismatched
// lengths truncate to the shorter side (MPI would call this erroneous; we
// keep it total to stay panic-free in reduction trees).
func int64Op(f func(a, b int64) int64) Op {
	return func(a, b []byte) []byte {
		av, errA := DecodeInt64s(a)
		bv, errB := DecodeInt64s(b)
		if errA != nil || errB != nil {
			return a
		}
		n := min(len(av), len(bv))
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			out[i] = f(av[i], bv[i])
		}
		return EncodeInt64s(out)
	}
}

// float64Op lifts an elementwise float64 operator to an Op.
func float64Op(f func(a, b float64) float64) Op {
	return func(a, b []byte) []byte {
		av, errA := DecodeFloat64s(a)
		bv, errB := DecodeFloat64s(b)
		if errA != nil || errB != nil {
			return a
		}
		n := min(len(av), len(bv))
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = f(av[i], bv[i])
		}
		return EncodeFloat64s(out)
	}
}

// Predefined reduction operators, mirroring MPI_SUM / MPI_MIN / MPI_MAX
// over int64 and float64 vectors.
var (
	// SumInt64 adds int64 vectors elementwise (MPI_SUM).
	SumInt64 = int64Op(func(a, b int64) int64 { return a + b })
	// MinInt64 takes the elementwise minimum (MPI_MIN).
	MinInt64 = int64Op(func(a, b int64) int64 {
		if b < a {
			return b
		}
		return a
	})
	// MaxInt64 takes the elementwise maximum (MPI_MAX).
	MaxInt64 = int64Op(func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	})
	// SumFloat64 adds float64 vectors elementwise (MPI_SUM).
	SumFloat64 = float64Op(func(a, b float64) float64 { return a + b })
	// MaxFloat64 takes the elementwise maximum (MPI_MAX).
	MaxFloat64 = float64Op(math.Max)
	// MinFloat64 takes the elementwise minimum (MPI_MIN).
	MinFloat64 = float64Op(math.Min)
)
