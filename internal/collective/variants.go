package collective

import "repro/internal/mpi"

// Alternative collective algorithms. Real MPI implementations select
// among several algorithms per collective (the paper's Section II notes
// that re-enabling collectives after validate_all gives the library "an
// opportunity to re-optimize collective operations"); providing two
// broadcast and two allgather shapes lets the ablation benchmarks show
// why that matters: the binomial tree wins on latency, the chain on
// pipelining regularity, and Bruck on non-power-of-two counts.

// BcastChain broadcasts root's buffer along a linear chain (rank i
// forwards to i+1 in participant order, wrapping from the root). It has
// n-1 sequential hops — worse latency than the binomial tree but a
// strictly regular communication pattern, and under failure it orphans
// at most the suffix of the chain.
func BcastChain(c *mpi.Comm, root int, buf []byte) ([]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	rootIdx, err := r.indexOfComm(root)
	if err != nil {
		return nil, err
	}
	vrank := (r.me - rootIdx + r.n) % r.n
	data := buf
	if vrank != 0 {
		prev := (r.me - 1 + r.n) % r.n
		data, err = r.recv(c, prev)
		if err != nil {
			return nil, err
		}
	}
	if vrank != r.n-1 {
		next := (r.me + 1) % r.n
		if err := r.send(c, next, data); err != nil {
			return data, err
		}
	}
	return data, nil
}

// AllgatherBruck is the Bruck allgather: ceil(log2 n) rounds, each
// sending the blocks collected so far to (me - 2^k) and receiving from
// (me + 2^k). It beats the ring algorithm's n-1 rounds at larger n and
// handles non-power-of-two participant counts without a fold-in phase.
func AllgatherBruck(c *mpi.Comm, contrib []byte) ([][]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	// blocks[j] holds the contribution of participant (me+j) mod n.
	blocks := make([][]byte, r.n)
	blocks[0] = append([]byte(nil), contrib...)
	have := 1
	for dist := 1; have < r.n; dist *= 2 {
		sendCount := min(have, r.n-have)
		to := (r.me - dist + r.n) % r.n
		from := (r.me + dist) % r.n
		req := c.IrecvInternal(r.comm[from], r.tag)
		payload, err := encodeBlocks(blocks[:sendCount])
		if err != nil {
			req.Cancel()
			return nil, err
		}
		if err := r.send(c, to, payload); err != nil {
			req.Cancel()
			return nil, err
		}
		if _, err := req.Wait(); err != nil {
			return nil, err
		}
		got, err := decodeBlocks(req.Payload())
		if err != nil {
			return nil, err
		}
		for j, blk := range got {
			if have+j < r.n {
				blocks[have+j] = blk
			}
		}
		have += len(got)
		if have > r.n {
			have = r.n
		}
	}
	// Rotate into participant order: out[i] = contribution of participant i.
	out := make([][]byte, r.n)
	for j := 0; j < r.n; j++ {
		out[(r.me+j)%r.n] = blocks[j]
	}
	return out, nil
}

// encodeBlocks frames a list of byte blocks (4-byte little-endian length
// prefixes), for the Bruck rounds that ship several blocks per message.
func encodeBlocks(blocks [][]byte) ([]byte, error) {
	total := 0
	for _, b := range blocks {
		total += 4 + len(b)
	}
	out := make([]byte, 0, total)
	for _, b := range blocks {
		n := len(b)
		out = append(out, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		out = append(out, b...)
	}
	return out, nil
}

func decodeBlocks(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, errTruncatedBlocks
		}
		n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
		data = data[4:]
		if n < 0 || n > len(data) {
			return nil, errTruncatedBlocks
		}
		out = append(out, append([]byte(nil), data[:n]...))
		data = data[n:]
	}
	return out, nil
}

var errTruncatedBlocks = mpi.ErrInvalidArg
