package collective

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
)

// runReplicated builds a replicated world (lsize logical ranks, degree r,
// the given replication mode and validate_all topology) and runs fn on
// every physical replica. It does NOT assert per-rank success — callers
// exempt their designated victim.
func runReplicated(t *testing.T, lsize, r int, mode, agree string, fn func(w *mpi.World, p *mpi.Proc) error) (*mpi.World, *mpi.RunResult) {
	t.Helper()
	w, err := mpi.NewWorld(lsize,
		mpi.WithDeadline(60*time.Second),
		mpi.WithReplication(mpi.ReplicationOptions{R: r, Mode: mode}),
		mpi.WithAgreement(agree),
		mpi.WithMetrics(metrics.NewWorld(lsize*r)),
	)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		p.World().SetErrhandler(mpi.ErrorsReturn)
		return fn(w, p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return w, res
}

// replCases crosses both replication modes with both validate_all
// topologies: promotion must be collective-transparent under each.
var replCases = []struct{ mode, agree string }{
	{mpi.ReplFanout, mpi.AgreementCoordinator},
	{mpi.ReplFanout, mpi.AgreementTree},
	{mpi.ReplChain, mpi.AgreementCoordinator},
	{mpi.ReplChain, mpi.AgreementTree},
}

// TestCollectivesSurvivePrimaryKill is the replica-group-aware collective
// property: the PRIMARY of a logical rank dies while the other
// participants are already inside the lap's collectives, and the
// promotion happens entirely below the collective layer — every
// surviving physical rank completes all laps of Bcast + Allreduce +
// Barrier with correct values and no error, in both replication modes
// and both agreement topologies.
func TestCollectivesSurvivePrimaryKill(t *testing.T) {
	for _, tc := range replCases {
		t.Run(tc.mode+"/"+tc.agree, func(t *testing.T) {
			const laps = 6
			victim := 1 // primary of logical 1 (L=3, R=2: group {1, 4})
			w, res := runReplicated(t, 3, 2, tc.mode, tc.agree, func(w *mpi.World, p *mpi.Proc) error {
				c := p.World()
				for lap := 0; lap < laps; lap++ {
					if lap == 2 && p.PhysRank() == victim {
						p.Die()
					}
					want := []byte(fmt.Sprintf("lap-%d", lap))
					var buf []byte
					if p.Rank() == 0 {
						buf = want
					}
					got, err := Bcast(c, 0, buf)
					if err != nil {
						return fmt.Errorf("lap %d Bcast: %w", lap, err)
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("lap %d Bcast got %q, want %q", lap, got, want)
					}
					sum, err := Allreduce(c, EncodeInt64s([]int64{int64(p.Rank())}), SumInt64)
					if err != nil {
						return fmt.Errorf("lap %d Allreduce: %w", lap, err)
					}
					vals, err := DecodeInt64s(sum)
					if err != nil {
						return err
					}
					if len(vals) != 1 || vals[0] != 3 { // 0+1+2 over the logical ranks
						return fmt.Errorf("lap %d Allreduce got %v, want [3]", lap, vals)
					}
					if err := Barrier(c); err != nil {
						return fmt.Errorf("lap %d Barrier: %w", lap, err)
					}
				}
				return nil
			})
			for phys, rr := range res.Ranks {
				if phys != victim && (rr.Err != nil || rr.Killed) {
					t.Fatalf("phys %d saw the failure: %+v", phys, rr)
				}
			}
			if got := w.Metrics().Total(metrics.ReplicaPromotions); got != 1 {
				t.Fatalf("promotions: %d, want exactly 1", got)
			}
		})
	}
}

// TestRecoveryVariantsUnderReplication runs the recovery-oriented
// collectives — RecoveryBlock, BcastChain, AllgatherBruck, and the
// non-blocking Ibcast/Ibarrier pair — over a replicated world with a
// primary kill in the middle of the block. Replication absorbs the
// failure below the collective layer, so the block must complete on its
// FIRST attempt: a retry would mean a rank-fail-stop error leaked through
// the promotion, which is exactly the regression this guards against.
func TestRecoveryVariantsUnderReplication(t *testing.T) {
	for _, tc := range replCases {
		t.Run(tc.mode+"/"+tc.agree, func(t *testing.T) {
			victim := 2 // primary of logical 2 (L=3, R=2: group {2, 5})
			var retries atomic.Int32
			w, res := runReplicated(t, 3, 2, tc.mode, tc.agree, func(w *mpi.World, p *mpi.Proc) error {
				c := p.World()
				attempt := 0
				err := RecoveryBlock(c, 2, func() error {
					attempt++
					if attempt > 1 {
						retries.Add(1)
					}
					want := []byte("chain-payload")
					var buf []byte
					if p.Rank() == 1 {
						buf = want
					}
					got, err := BcastChain(c, 1, buf)
					if err != nil {
						return fmt.Errorf("BcastChain: %w", err)
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("BcastChain got %q, want %q", got, want)
					}
					if attempt == 1 && p.PhysRank() == victim {
						p.Die()
					}
					all, err := AllgatherBruck(c, []byte{byte('a' + p.Rank())})
					if err != nil {
						return fmt.Errorf("AllgatherBruck: %w", err)
					}
					if len(all) != 3 {
						return fmt.Errorf("AllgatherBruck width %d, want 3", len(all))
					}
					for r, pl := range all {
						if len(pl) != 1 || pl[0] != byte('a'+r) {
							return fmt.Errorf("AllgatherBruck[%d] = %q", r, pl)
						}
					}
					return nil
				})
				if err != nil {
					return fmt.Errorf("RecoveryBlock: %w", err)
				}
				// Non-blocking pair over the already-promoted group.
				want := []byte("post-promotion")
				var buf []byte
				if p.Rank() == 0 {
					buf = want
				}
				req, fetch := Ibcast(c, 0, buf)
				if _, err := req.Wait(); err != nil {
					return fmt.Errorf("Ibcast: %w", err)
				}
				if got := fetch(); !bytes.Equal(got, want) {
					return fmt.Errorf("Ibcast got %q, want %q", got, want)
				}
				if _, err := Ibarrier(c).Wait(); err != nil {
					return fmt.Errorf("Ibarrier: %w", err)
				}
				return nil
			})
			for phys, rr := range res.Ranks {
				if phys != victim && (rr.Err != nil || rr.Killed) {
					t.Fatalf("phys %d saw the failure: %+v", phys, rr)
				}
			}
			if got := retries.Load(); got != 0 {
				t.Fatalf("RecoveryBlock retried %d times: the failure leaked through replication", got)
			}
			if got := w.Metrics().Total(metrics.ReplicaPromotions); got != 1 {
				t.Fatalf("promotions: %d, want exactly 1", got)
			}
		})
	}
}
