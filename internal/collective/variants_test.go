package collective

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestBcastChainAllSizesAllRoots(t *testing.T) {
	for _, n := range sizes {
		for root := 0; root < n; root += 2 {
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				want := []byte(fmt.Sprintf("chain-%d", root))
				runWorld(t, n, func(p *mpi.Proc) error {
					var buf []byte
					if p.Rank() == root {
						buf = want
					}
					got, err := BcastChain(p.World(), root, buf)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("rank %d got %q", p.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestAllgatherBruckAllSizes(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				all, err := AllgatherBruck(p.World(), []byte{byte(p.Rank() * 2)})
				if err != nil {
					return err
				}
				if len(all) != n {
					return fmt.Errorf("got %d blocks", len(all))
				}
				for i, blk := range all {
					if len(blk) != 1 || blk[0] != byte(i*2) {
						return fmt.Errorf("rank %d block %d = %v", p.Rank(), i, blk)
					}
				}
				return nil
			})
		})
	}
}

func TestBruckMatchesRingAllgather(t *testing.T) {
	runWorld(t, 7, func(p *mpi.Proc) error {
		c := p.World()
		contrib := []byte(fmt.Sprintf("rank-%d-data", p.Rank()))
		ring, err := Allgather(c, contrib)
		if err != nil {
			return err
		}
		bruck, err := AllgatherBruck(c, contrib)
		if err != nil {
			return err
		}
		for i := range ring {
			if !bytes.Equal(ring[i], bruck[i]) {
				return fmt.Errorf("algorithms disagree at block %d: %q vs %q",
					i, ring[i], bruck[i])
			}
		}
		return nil
	})
}

func TestBlockFraming(t *testing.T) {
	in := [][]byte{{1, 2, 3}, {}, {9}}
	enc, err := encodeBlocks(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeBlocks(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || !bytes.Equal(out[0], in[0]) || len(out[1]) != 0 || !bytes.Equal(out[2], in[2]) {
		t.Fatalf("round trip %v", out)
	}
	if _, err := decodeBlocks([]byte{1, 0}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := decodeBlocks([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated body accepted")
	}
}

// TestRecoveryBlockRetriesThroughFailure: a collective block that fails
// because a participant died is repaired (validate_all) and retried over
// the survivors — the paper's Randell recovery-block pattern.
func TestRecoveryBlockRetriesThroughFailure(t *testing.T) {
	w, err := mpi.NewWorld(5, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 4 {
			time.Sleep(time.Millisecond)
		}
		attempts := 0
		err := RecoveryBlock(c, 2, func() error {
			attempts++
			if err := Barrier(c); err != nil {
				return err
			}
			out, err := Allreduce(c, EncodeInt64s([]int64{1}), SumInt64)
			if err != nil {
				return err
			}
			v, _ := DecodeInt64s(out)
			if v[0] != 4 {
				return fmt.Errorf("sum %d", v[0])
			}
			return nil
		})
		if err != nil {
			return err
		}
		if attempts != 2 {
			return fmt.Errorf("attempts %d, want 2 (fail, repair, succeed)", attempts)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, rank := range []int{0, 1, 2, 4} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}

// TestRecoveryBlockHeterogeneousFailurePoints is the hard case: rank 6
// dies INSIDE the broadcast, so within one failed block attempt the
// orphaned rank consumes one collective tag (bcast errors) while every
// other rank consumes two (bcast succeeds, the following barrier errors
// at the gate). The ValidateAll repair must re-align the collective
// sequence or the retry would mismatch tags and deadlock.
func TestRecoveryBlockHeterogeneousFailurePoints(t *testing.T) {
	w, err := mpi.NewWorld(8,
		mpi.WithDeadline(30*time.Second),
		mpi.WithHook(func(ev mpi.HookEvent) mpi.Action {
			if ev.Rank == 6 && ev.Point == mpi.HookAfterRecv {
				return mpi.ActKill
			}
			return mpi.ActNone
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		return RecoveryBlock(c, 3, func() error {
			if _, err := Bcast(c, 0, []byte("payload")); err != nil {
				return err
			}
			return Barrier(c)
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for rank, rr := range res.Ranks {
		if rank == 6 {
			if !rr.Killed {
				t.Fatal("rank 6 should have died mid-broadcast")
			}
			continue
		}
		if rr.Err != nil || !rr.Finished {
			t.Fatalf("rank %d: %+v", rank, rr)
		}
	}
}

// TestRecoveryBlockGivesUpAfterMaxRetries: exhausting the retry budget
// surfaces the failure error.
func TestRecoveryBlockGivesUpAfterMaxRetries(t *testing.T) {
	w, err := mpi.NewWorld(3, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() == 2 {
			p.Die()
		}
		for p.Registry().AliveCount() > 2 {
			time.Sleep(time.Millisecond)
		}
		err := RecoveryBlock(c, 0, func() error { return Barrier(c) })
		if !mpi.IsRankFailStop(err) {
			return fmt.Errorf("want fail-stop after 0 retries, got %v", err)
		}
		// Non-failure errors must pass through untouched.
		sentinel := fmt.Errorf("app error")
		if err := RecoveryBlock(c, 3, func() error { return sentinel }); err != sentinel {
			return fmt.Errorf("app error mangled: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, rank := range []int{0, 1} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}
