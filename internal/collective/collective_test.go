package collective

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mpi"
)

func runWorld(t *testing.T, n int, fn func(p *mpi.Proc) error) *mpi.RunResult {
	t.Helper()
	w, err := mpi.NewWorld(n, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		p.World().SetErrhandler(mpi.ErrorsReturn)
		return fn(p)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for rank, rr := range res.Ranks {
		if rr.Err != nil {
			t.Fatalf("rank %d: %v", rank, rr.Err)
		}
	}
	return res
}

// sizes exercises non-power-of-two and single-rank participant counts.
var sizes = []int{1, 2, 3, 4, 5, 7, 8}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				for i := 0; i < 3; i++ {
					if err := Barrier(p.World()); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range sizes {
		for root := 0; root < n; root++ {
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				want := []byte(fmt.Sprintf("payload-from-%d", root))
				runWorld(t, n, func(p *mpi.Proc) error {
					var buf []byte
					if p.Rank() == root {
						buf = want
					}
					got, err := Bcast(p.World(), root, buf)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("rank %d got %q", p.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			want := int64(n * (n - 1) / 2)
			runWorld(t, n, func(p *mpi.Proc) error {
				out, err := Reduce(p.World(), 0, EncodeInt64s([]int64{int64(p.Rank())}), SumInt64)
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					v, err := DecodeInt64s(out)
					if err != nil {
						return err
					}
					if v[0] != want {
						return fmt.Errorf("sum %d want %d", v[0], want)
					}
				} else if out != nil {
					return fmt.Errorf("non-root got result")
				}
				return nil
			})
		})
	}
}

func TestReduceEveryRoot(t *testing.T) {
	const n = 5
	for root := 0; root < n; root++ {
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				out, err := Reduce(p.World(), root,
					EncodeInt64s([]int64{int64(1 << p.Rank())}), SumInt64)
				if err != nil {
					return err
				}
				if p.Rank() != root {
					if out != nil {
						return fmt.Errorf("non-root %d got a result", p.Rank())
					}
					return nil
				}
				v, err := DecodeInt64s(out)
				if err != nil {
					return err
				}
				if v[0] != (1<<n)-1 {
					return fmt.Errorf("root %d sum %d want %d", root, v[0], (1<<n)-1)
				}
				return nil
			})
		})
	}
}

func TestScatterValidation(t *testing.T) {
	runWorld(t, 2, func(p *mpi.Proc) error {
		c := p.World()
		if p.Rank() == 0 {
			// Wrong part count at the root must error without deadlocking
			// (rank 1's receive is satisfied by a follow-up good scatter).
			if _, err := Scatter(c, 0, [][]byte{{1}}); err == nil {
				return fmt.Errorf("short parts accepted")
			}
			if _, err := Scatter(c, 0, [][]byte{{1}, {2}}); err != nil {
				return err
			}
			return nil
		}
		// First scatter fails at root before sending; second succeeds. The
		// tag sequence stays aligned because failed collectives consume
		// their tag too.
		if _, _, err := c.RecvInternal(0, 2); err != nil { // direct drain of scatter #2
			return err
		}
		return nil
	})
}

func TestOpsCodecEdgeCases(t *testing.T) {
	if _, err := DecodeInt64s([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged int64 payload accepted")
	}
	if _, err := DecodeFloat64s([]byte{1}); err == nil {
		t.Fatal("ragged float64 payload accepted")
	}
	v, err := DecodeFloat64s(EncodeFloat64s([]float64{1.5, -2.25}))
	if err != nil || v[0] != 1.5 || v[1] != -2.25 {
		t.Fatalf("float round trip %v %v", v, err)
	}
	// Mismatched operand lengths truncate rather than panic.
	out := SumInt64(EncodeInt64s([]int64{1, 2}), EncodeInt64s([]int64{10}))
	v2, _ := DecodeInt64s(out)
	if len(v2) != 1 || v2[0] != 11 {
		t.Fatalf("truncating op wrong: %v", v2)
	}
	// Corrupt operands fall back to the left side, staying total.
	if got := SumInt64([]byte{1, 2, 3}, EncodeInt64s([]int64{4})); string(got) != string([]byte{1, 2, 3}) {
		t.Fatalf("corrupt operand handling changed: %v", got)
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			wantSum := int64(n * (n - 1) / 2)
			runWorld(t, n, func(p *mpi.Proc) error {
				c := p.World()
				out, err := Allreduce(c, EncodeInt64s([]int64{int64(p.Rank()), 1}), SumInt64)
				if err != nil {
					return err
				}
				v, err := DecodeInt64s(out)
				if err != nil {
					return err
				}
				if v[0] != wantSum || v[1] != int64(n) {
					return fmt.Errorf("rank %d allreduce got %v", p.Rank(), v)
				}
				out, err = Allreduce(c, EncodeInt64s([]int64{int64(p.Rank())}), MaxInt64)
				if err != nil {
					return err
				}
				v, _ = DecodeInt64s(out)
				if v[0] != int64(n-1) {
					return fmt.Errorf("rank %d max got %v", p.Rank(), v)
				}
				return nil
			})
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				c := p.World()
				all, err := Gather(c, 0, []byte{byte(p.Rank() * 3)})
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					for i, pl := range all {
						if len(pl) != 1 || pl[0] != byte(i*3) {
							return fmt.Errorf("gathered[%d]=%v", i, pl)
						}
					}
				}
				// Scatter the gathered slices back out.
				mine, err := Scatter(c, 0, all)
				if err != nil {
					return err
				}
				if len(mine) != 1 || mine[0] != byte(p.Rank()*3) {
					return fmt.Errorf("rank %d scattered %v", p.Rank(), mine)
				}
				return nil
			})
		})
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				all, err := Allgather(p.World(), []byte{byte(p.Rank()), byte(p.Rank() + 1)})
				if err != nil {
					return err
				}
				for i, pl := range all {
					if len(pl) != 2 || pl[0] != byte(i) || pl[1] != byte(i+1) {
						return fmt.Errorf("rank %d block %d = %v", p.Rank(), i, pl)
					}
				}
				return nil
			})
		})
	}
}

func TestAlltoallPairwise(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				parts := make([][]byte, n)
				for i := range parts {
					parts[i] = []byte{byte(p.Rank()), byte(i)}
				}
				got, err := Alltoall(p.World(), parts)
				if err != nil {
					return err
				}
				for j, pl := range got {
					if len(pl) != 2 || pl[0] != byte(j) || pl[1] != byte(p.Rank()) {
						return fmt.Errorf("rank %d from %d = %v", p.Rank(), j, pl)
					}
				}
				return nil
			})
		})
	}
}

func TestScanPrefixSums(t *testing.T) {
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(p *mpi.Proc) error {
				out, err := Scan(p.World(), EncodeInt64s([]int64{int64(p.Rank() + 1)}), SumInt64)
				if err != nil {
					return err
				}
				v, err := DecodeInt64s(out)
				if err != nil {
					return err
				}
				r := int64(p.Rank() + 1)
				if v[0] != r*(r+1)/2 {
					return fmt.Errorf("rank %d scan %d", p.Rank(), v[0])
				}
				return nil
			})
		})
	}
}

func TestIbarrierCompletes(t *testing.T) {
	runWorld(t, 4, func(p *mpi.Proc) error {
		req := Ibarrier(p.World())
		_, err := req.Wait()
		return err
	})
}

func TestIbcastCompletes(t *testing.T) {
	want := []byte("nonblocking broadcast")
	runWorld(t, 5, func(p *mpi.Proc) error {
		var buf []byte
		if p.Rank() == 2 {
			buf = want
		}
		req, fetch := Ibcast(p.World(), 2, buf)
		if _, err := req.Wait(); err != nil {
			return err
		}
		if !bytes.Equal(fetch(), want) {
			return fmt.Errorf("rank %d got %q", p.Rank(), fetch())
		}
		return nil
	})
}

// TestCollectivesDisabledAfterFailure checks the run-through gate: after
// an unrecognized failure, collectives fail; after ValidateAll they run
// over the survivors.
func TestCollectivesDisabledAfterFailureUntilValidate(t *testing.T) {
	w, err := mpi.NewWorld(4, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() == 2 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		if err := Barrier(c); !mpi.IsRankFailStop(err) {
			return fmt.Errorf("barrier should be disabled, got %v", err)
		}
		if _, err := c.ValidateAll(); err != nil {
			return err
		}
		if err := Barrier(c); err != nil {
			return fmt.Errorf("barrier after validate: %w", err)
		}
		out, err := Allreduce(c, EncodeInt64s([]int64{1}), SumInt64)
		if err != nil {
			return err
		}
		v, _ := DecodeInt64s(out)
		if v[0] != 3 {
			return fmt.Errorf("allreduce over survivors got %d, want 3", v[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, rank := range []int{0, 1, 3} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}

// TestBcastInconsistentReturnCodes reproduces the paper's Section II
// observation: when a rank dies mid-broadcast, the root (which already
// forwarded to its children) may return success while orphaned ranks
// return an error — return codes are not consistent across ranks.
func TestBcastInconsistentReturnCodes(t *testing.T) {
	// Binomial tree from root 0 over 8 ranks: 0 -> {1,2,4}, 2 -> {3},
	// 4 -> {5,6}, 6 -> {7}. Kill rank 6 the moment it has received the
	// payload from its parent (4) and before it forwards to its child (7):
	// every rank except 7 leaves the broadcast successfully, while 7 gets
	// ErrRankFailStop — the paper's "some processes may receive success
	// and others an error" (Section III-C).
	w, err := mpi.NewWorld(8,
		mpi.WithDeadline(30*time.Second),
		mpi.WithHook(func(ev mpi.HookEvent) mpi.Action {
			if ev.Rank == 6 && ev.Point == mpi.HookAfterRecv {
				return mpi.ActKill
			}
			return mpi.ActNone
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]error, 8)
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		_, bErr := Bcast(c, 0, []byte("x"))
		outs[p.Rank()] = bErr
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Ranks[6].Killed {
		t.Fatalf("rank 6 should have been killed mid-tree: %+v", res.Ranks[6])
	}
	// Deterministic endpoints: the root completed all its sends before
	// rank 6 could have received (the payload flows root -> 4 -> 6), so
	// it must report success; rank 7 can never be served, so it must
	// report the fail-stop class. The ranks in between may see either
	// outcome depending on whether they passed the entry gate before the
	// death became known — which is precisely the paper's point about
	// inconsistent return codes.
	if outs[0] != nil {
		t.Fatalf("root should have left the broadcast successfully, got %v", outs[0])
	}
	if !mpi.IsRankFailStop(outs[7]) {
		t.Fatalf("orphaned rank 7 should report fail-stop, got %v", outs[7])
	}
	for _, rank := range []int{1, 2, 3, 4, 5} {
		if outs[rank] != nil && !mpi.IsRankFailStop(outs[rank]) {
			t.Fatalf("rank %d: unexpected error class %v", rank, outs[rank])
		}
	}
}

// TestTagAlignmentAfterErroredCollective is the regression test for a
// subtle sequencing bug: a rank whose collective call errors at the gate
// (because it already knows about a failure) must still consume the
// collective's tag, or its NEXT collective desynchronizes from ranks
// whose call proceeded. Rank 2 here learns of the death before entering
// the barrier (erroring at the gate); rank 0 and 1 may enter it and fail
// inside. After validate_all, the follow-up allreduce must still line up.
func TestTagAlignmentAfterErroredCollective(t *testing.T) {
	w, err := mpi.NewWorld(4, mpi.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(func(p *mpi.Proc) error {
		c := p.World()
		c.SetErrhandler(mpi.ErrorsReturn)
		if p.Rank() == 3 {
			p.Die()
		}
		for p.Registry().AliveCount() > 3 {
			time.Sleep(time.Millisecond)
		}
		if err := Barrier(c); !mpi.IsRankFailStop(err) {
			return fmt.Errorf("barrier should gate, got %v", err)
		}
		if _, err := c.ValidateAll(); err != nil {
			return err
		}
		out, err := Allreduce(c, EncodeInt64s([]int64{1}), SumInt64)
		if err != nil {
			return err
		}
		v, _ := DecodeInt64s(out)
		if v[0] != 3 {
			return fmt.Errorf("allreduce got %d", v[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, rank := range []int{0, 1, 2} {
		if res.Ranks[rank].Err != nil {
			t.Fatalf("rank %d: %v", rank, res.Ranks[rank].Err)
		}
	}
}

// TestAllreduceProperty: for arbitrary vectors, Allreduce(SumInt64)
// equals the local sum of all contributions, at every rank and size.
func TestAllreduceProperty(t *testing.T) {
	prop := func(seed uint16) bool {
		n := 2 + int(seed%6)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(int8(seed>>uint(i%8))) * int64(i+1)
		}
		var want int64
		for _, v := range vals {
			want += v
		}
		w, err := mpi.NewWorld(n, mpi.WithDeadline(30*time.Second))
		if err != nil {
			return false
		}
		res, err := w.Run(func(p *mpi.Proc) error {
			c := p.World()
			c.SetErrhandler(mpi.ErrorsReturn)
			out, err := Allreduce(c, EncodeInt64s([]int64{vals[p.Rank()]}), SumInt64)
			if err != nil {
				return err
			}
			v, err := DecodeInt64s(out)
			if err != nil {
				return err
			}
			if v[0] != want {
				return fmt.Errorf("got %d want %d", v[0], want)
			}
			return nil
		})
		if err != nil {
			return false
		}
		for _, rr := range res.Ranks {
			if rr.Err != nil {
				t.Log(rr.Err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
