package collective

import "repro/internal/mpi"

// RecoveryBlock implements the pattern the paper attributes to
// validate_all: "The MPI_Comm_validate_all function is useful in
// creating recovery blocks for sets of collective operations [Randell
// 1975]" (Section II).
//
// body is executed as one recovery block. If it returns a rank-fail-stop
// error — some participant died inside the block's collectives — the
// communicator is repaired with ValidateAll and the body is retried over
// the surviving participants, up to maxRetries times. Non-failure errors
// propagate immediately. All alive members of the communicator must call
// RecoveryBlock with equivalent bodies (the usual collective symmetry).
//
// The body must be idempotent from the application's point of view:
// partial collectives from a failed attempt have no visible effect
// besides their return codes, but application state mutated inside the
// body will see retries.
func RecoveryBlock(c *mpi.Comm, maxRetries int, body func() error) error {
	if maxRetries < 0 {
		maxRetries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = body()
		if err == nil || !mpi.IsRankFailStop(err) {
			return err
		}
		if attempt >= maxRetries {
			return err
		}
		if _, verr := c.ValidateAll(); verr != nil {
			return verr
		}
	}
}
