// Package collective implements MPI collective operations over the
// point-to-point layer of internal/mpi, with the failure semantics of the
// run-through stabilization proposal (paper Section II):
//
//   - Once any participant has failed, collectives return an error in the
//     ErrRankFailStop class until the communicator is repaired with
//     Comm.ValidateAll.
//   - Return codes are intentionally NOT consistent across ranks: the
//     binomial broadcast lets a rank return success as soon as it has
//     forwarded to its children, even if the failure strikes elsewhere in
//     the tree afterwards — the exact behaviour the paper cites as the
//     reason MPI_Barrier cannot implement termination detection.
//   - After ValidateAll, recognized failed ranks are excluded from the
//     participant list and the algorithms run over the survivors.
//
// Algorithms: dissemination barrier; binomial-tree broadcast, reduce,
// gather and scatter; recursive-doubling allreduce; ring and Bruck
// allgather; pairwise alltoall; linear inclusive scan. Non-blocking
// Ibarrier and Ibcast are provided for the paper's Section III-C
// discussion.
package collective

import (
	"fmt"

	"repro/internal/mpi"
)

// roster is the resolved participant view for one collective call.
type roster struct {
	members []int // world ranks, comm-rank order
	comm    []int // comm ranks, same order
	me      int   // my index in members
	n       int
	tag     int
}

// newRoster snapshots the communicator's collective participants and
// verifies the collective is currently permitted. Collectives operate on
// *indices within the participant list* so that algorithms are oblivious
// to gaps left by validated failures.
func newRoster(c *mpi.Comm) (*roster, error) {
	// The collective sequence number is consumed BEFORE the gate check:
	// every alive member calls the same collectives in the same program
	// order even when some of them return errors, so a rank whose call
	// errors at entry must still advance its tag to stay aligned with the
	// ranks whose call proceeds.
	tag := c.NextCollTag()
	if err := c.CollectiveOK(); err != nil {
		return nil, err
	}
	members := c.CollMembers()
	r := &roster{members: members, n: len(members), me: -1, tag: tag}
	r.comm = make([]int, len(members))
	group := c.Group()
	worldToComm := make(map[int]int, len(group))
	for cr, wr := range group {
		worldToComm[wr] = cr
	}
	myWorld := group[c.Rank()]
	for i, wr := range members {
		r.comm[i] = worldToComm[wr]
		if wr == myWorld {
			r.me = i
		}
	}
	if r.me < 0 {
		return nil, fmt.Errorf("collective: rank %d excluded from participants %v", c.Rank(), members)
	}
	return r, nil
}

// send transmits to participant index i on the collective's tag.
func (r *roster) send(c *mpi.Comm, i int, payload []byte) error {
	return c.SendInternal(r.comm[i], r.tag, payload)
}

// recv blocks for a message from participant index i.
func (r *roster) recv(c *mpi.Comm, i int) ([]byte, error) {
	pl, _, err := c.RecvInternal(r.comm[i], r.tag)
	return pl, err
}

// Barrier blocks until all participants arrive — dissemination algorithm,
// ceil(log2 n) rounds. With a failed participant it returns
// ErrRankFailStop (possibly at a subset of ranks; see package comment).
func Barrier(c *mpi.Comm) error {
	r, err := newRoster(c)
	if err != nil {
		return err
	}
	return r.runBarrier(c)
}

// Bcast distributes root's buffer to all participants along a binomial
// tree rooted at participant index of root (a comm rank). Non-root ranks
// receive the broadcast payload as the return value; the root gets its
// own buffer back.
func Bcast(c *mpi.Comm, root int, buf []byte) ([]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	return r.runBcast(c, root, buf)
}

func (r *roster) indexOfComm(commRank int) (int, error) {
	for i, cr := range r.comm {
		if cr == commRank {
			return i, nil
		}
	}
	return -1, fmt.Errorf("collective: root %d is not a participant: %w", commRank, mpi.ErrInvalidRank)
}

// Op combines two reduction operands (associative, commutative).
type Op func(a, b []byte) []byte

// Reduce combines every participant's contribution with op, delivering
// the result at root (comm rank); other ranks return nil. Binomial tree.
func Reduce(c *mpi.Comm, root int, contrib []byte, op Op) ([]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	rootIdx, err := r.indexOfComm(root)
	if err != nil {
		return nil, err
	}
	vrank := (r.me - rootIdx + r.n) % r.n
	acc := append([]byte(nil), contrib...)
	// Children send up the mirrored binomial tree used by Bcast.
	for bit := 1; bit < r.n; bit *= 2 {
		if vrank&bit != 0 {
			parent := (vrank&^bit + rootIdx) % r.n
			if err := r.send(c, parent, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if vrank+bit < r.n {
			child := (vrank + bit + rootIdx) % r.n
			pl, err := r.recv(c, child)
			if err != nil {
				return nil, err
			}
			acc = op(acc, pl)
		}
	}
	return acc, nil
}

// Allreduce combines all contributions and delivers the result
// everywhere, by recursive doubling with a fold-in pre-phase for
// non-power-of-two participant counts.
func Allreduce(c *mpi.Comm, contrib []byte, op Op) ([]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	acc := append([]byte(nil), contrib...)
	if r.n == 1 {
		return acc, nil
	}
	// Largest power of two <= n.
	pow := 1
	for pow*2 <= r.n {
		pow *= 2
	}
	rem := r.n - pow
	// Pre-phase: ranks >= pow send their contribution to (me - pow) and
	// sit out; partners fold it in.
	if r.me >= pow {
		if err := r.send(c, r.me-pow, acc); err != nil {
			return nil, err
		}
	} else {
		if r.me < rem {
			pl, err := r.recv(c, r.me+pow)
			if err != nil {
				return nil, err
			}
			acc = op(acc, pl)
		}
		// Recursive doubling among the pow-sized core.
		for dist := 1; dist < pow; dist *= 2 {
			partner := r.me ^ dist
			req := c.IrecvInternal(r.comm[partner], r.tag)
			if err := r.send(c, partner, acc); err != nil {
				req.Cancel()
				return nil, err
			}
			if _, err := req.Wait(); err != nil {
				return nil, err
			}
			acc = op(acc, req.Payload())
		}
		// Post-phase: return the result to the folded-in ranks.
		if r.me < rem {
			if err := r.send(c, r.me+pow, acc); err != nil {
				return nil, err
			}
		}
	}
	if r.me >= pow {
		pl, err := r.recv(c, r.me-pow)
		if err != nil {
			return nil, err
		}
		acc = pl
	}
	return acc, nil
}

// Gather collects every participant's contribution at root (comm rank):
// result[i] is participant i's payload (participant order). Non-roots
// return nil. Linear algorithm — gathers are root-bottlenecked anyway and
// the linear form keeps per-rank contributions intact.
func Gather(c *mpi.Comm, root int, contrib []byte) ([][]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	rootIdx, err := r.indexOfComm(root)
	if err != nil {
		return nil, err
	}
	if r.me != rootIdx {
		return nil, r.send(c, rootIdx, contrib)
	}
	out := make([][]byte, r.n)
	out[r.me] = append([]byte(nil), contrib...)
	for i := 0; i < r.n; i++ {
		if i == r.me {
			continue
		}
		pl, err := r.recv(c, i)
		if err != nil {
			return nil, err
		}
		out[i] = pl
	}
	return out, nil
}

// Scatter distributes parts[i] to participant i from root; every rank
// returns its own slice. parts is only read at the root and must have one
// entry per participant.
func Scatter(c *mpi.Comm, root int, parts [][]byte) ([]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	rootIdx, err := r.indexOfComm(root)
	if err != nil {
		return nil, err
	}
	if r.me == rootIdx {
		if len(parts) != r.n {
			return nil, fmt.Errorf("collective: scatter needs %d parts, got %d: %w",
				r.n, len(parts), mpi.ErrInvalidArg)
		}
		for i := 0; i < r.n; i++ {
			if i == r.me {
				continue
			}
			if err := r.send(c, i, parts[i]); err != nil {
				return nil, err
			}
		}
		return append([]byte(nil), parts[r.me]...), nil
	}
	return r.recv(c, rootIdx)
}

// Allgather collects every participant's contribution everywhere using
// the ring algorithm: n-1 steps, each forwarding the previously received
// block — fitting for a paper about ring communication.
func Allgather(c *mpi.Comm, contrib []byte) ([][]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, r.n)
	out[r.me] = append([]byte(nil), contrib...)
	right := (r.me + 1) % r.n
	left := (r.me - 1 + r.n) % r.n
	blk := r.me
	for step := 0; step < r.n-1; step++ {
		req := c.IrecvInternal(r.comm[left], r.tag)
		if err := r.send(c, right, out[blk]); err != nil {
			req.Cancel()
			return nil, err
		}
		if _, err := req.Wait(); err != nil {
			return nil, err
		}
		blk = (blk - 1 + r.n) % r.n
		out[blk] = req.Payload()
	}
	return out, nil
}

// Alltoall delivers parts[i] to participant i and returns the slice of
// payloads received (index j = from participant j). Pairwise-exchange
// algorithm: n rounds of Sendrecv-style exchanges.
func Alltoall(c *mpi.Comm, parts [][]byte) ([][]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	if len(parts) != r.n {
		return nil, fmt.Errorf("collective: alltoall needs %d parts, got %d: %w",
			r.n, len(parts), mpi.ErrInvalidArg)
	}
	out := make([][]byte, r.n)
	out[r.me] = append([]byte(nil), parts[r.me]...)
	for step := 1; step < r.n; step++ {
		sendTo := (r.me + step) % r.n
		recvFrom := (r.me - step + r.n) % r.n
		req := c.IrecvInternal(r.comm[recvFrom], r.tag)
		if err := r.send(c, sendTo, parts[sendTo]); err != nil {
			req.Cancel()
			return nil, err
		}
		if _, err := req.Wait(); err != nil {
			return nil, err
		}
		out[recvFrom] = req.Payload()
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: participant i receives
// op(contrib_0, ..., contrib_i). Linear pipeline.
func Scan(c *mpi.Comm, contrib []byte, op Op) ([]byte, error) {
	r, err := newRoster(c)
	if err != nil {
		return nil, err
	}
	acc := append([]byte(nil), contrib...)
	if r.me > 0 {
		pl, err := r.recv(c, r.me-1)
		if err != nil {
			return nil, err
		}
		acc = op(pl, acc)
	}
	if r.me < r.n-1 {
		if err := r.send(c, r.me+1, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}
