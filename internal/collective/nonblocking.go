package collective

import "repro/internal/mpi"

// Ibarrier is the non-blocking barrier scheduled for MPI 3.0 that the
// paper's Section III-C discusses (and rejects) as a termination-
// detection building block: a blocking barrier cannot progress the resend
// traffic to the right neighbor, and even the non-blocking form cannot
// guarantee consistent return codes across ranks.
//
// The returned request completes when all participants have entered the
// barrier, or with an error if a participant fails first.
func Ibarrier(c *mpi.Comm) *mpi.Request {
	tagged := barrierClosure(c)
	return c.GoRequest(func() (mpi.Status, error) {
		return mpi.Status{}, tagged()
	})
}

// barrierClosure captures the roster (and its collective tag) on the
// calling goroutine so that concurrent user collectives on the same
// communicator do not race the tag allocator.
func barrierClosure(c *mpi.Comm) func() error {
	r, err := newRoster(c)
	if err != nil {
		return func() error { return err }
	}
	return func() error { return r.runBarrier(c) }
}

// runBarrier is Barrier's body over a pre-built roster.
func (r *roster) runBarrier(c *mpi.Comm) error {
	if r.n <= 1 {
		return nil
	}
	for dist := 1; dist < r.n; dist *= 2 {
		to := (r.me + dist) % r.n
		from := (r.me - dist + r.n) % r.n
		req := c.IrecvInternal(r.comm[from], r.tag)
		if err := r.send(c, to, nil); err != nil {
			req.Cancel()
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Ibcast starts a non-blocking broadcast of buf from root (comm rank).
// The payload received at non-root ranks is available from the request's
// Payload once complete... it is returned through the completion status
// payload of GoRequest, so callers use the returned fetch function.
func Ibcast(c *mpi.Comm, root int, buf []byte) (*mpi.Request, func() []byte) {
	var out []byte
	r, rosterErr := newRoster(c)
	req := c.GoRequest(func() (mpi.Status, error) {
		if rosterErr != nil {
			return mpi.Status{}, rosterErr
		}
		data, err := r.runBcast(c, root, buf)
		out = data
		return mpi.Status{Len: len(data)}, err
	})
	return req, func() []byte { return out }
}

// runBcast is Bcast's body over a pre-built roster.
func (r *roster) runBcast(c *mpi.Comm, root int, buf []byte) ([]byte, error) {
	rootIdx, err := r.indexOfComm(root)
	if err != nil {
		return nil, err
	}
	vrank := (r.me - rootIdx + r.n) % r.n
	data := buf
	if vrank != 0 {
		parent := (vrank&(vrank-1) + rootIdx) % r.n
		data, err = r.recv(c, parent)
		if err != nil {
			return nil, err
		}
	}
	low := vrank & (-vrank)
	if vrank == 0 {
		low = 1 << 30
	}
	for bit := 1; bit < low && vrank+bit < r.n; bit *= 2 {
		child := (vrank + bit + rootIdx) % r.n
		if err := r.send(c, child, data); err != nil {
			return data, err
		}
	}
	return data, nil
}
